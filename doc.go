// Package picmcio is a simulation-grounded reproduction of "Enabling
// High-Throughput Parallel I/O in Particle-in-Cell Monte Carlo
// Simulations with openPMD and Darshan I/O Monitoring" (CLUSTER 2024):
// a 1D3V PIC MC code (BIT1-like), an openPMD/ADIOS2-BP4 I/O stack, a
// Darshan-style monitor, and simulated Lustre machines, all in pure Go.
//
// See README.md for the layout, DESIGN.md for the system inventory, and
// bench_test.go for one benchmark per paper table/figure.
package picmcio
