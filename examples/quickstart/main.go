// Quickstart: run a small PIC MC simulation, write its particle data as
// an openPMD series through the ADIOS2 BP4 engine on a simulated Lustre
// file system, and read it back — the full public API in ~100 lines.
package main

import (
	"fmt"
	"log"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/pic"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

func main() {
	const ranks = 4
	k := sim.NewKernel(sim.WithHeapQueue())
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(1e-6, 1.0/10e9))

	// Phase 1: every rank evolves its slice of the plasma and writes one
	// openPMD iteration with its electron positions.
	w.Run(func(r *mpisim.Rank) {
		s, err := pic.New(pic.Params{
			Cells: 64, Length: 1.0, Dt: 1e-9, Seed: uint64(r.ID) + 1,
			IonizationRate: 3e-15,
		}, []pic.SpeciesSpec{
			{Name: "e", Mass: pic.ElectronMass, Charge: -pic.ElementaryQ,
				NParticles: 2000, Density: 1e18, Temperature: 10},
			{Name: "D+", Mass: pic.DeuteronMass, Charge: pic.ElementaryQ,
				NParticles: 2000, Density: 1e18, Temperature: 1},
			{Name: "D", Mass: pic.DeuteronMass, Charge: 0,
				NParticles: 2000, Density: 1e18, Temperature: 0.1},
		})
		if err != nil {
			log.Fatal(err)
		}
		for step := 0; step < 50; step++ {
			if err := s.Advance(); err != nil {
				log.Fatal(err)
			}
		}
		e, _ := s.SpeciesByName("e")

		host := openpmd.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}, Rank: r.ID}, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, "/out/quickstart.bp4", openpmd.AccessCreate, `
[adios2.engine.parameters]
NumAggregators = "2"
`)
		if err != nil {
			log.Fatal(err)
		}
		it, err := series.WriteIteration(50)
		if err != nil {
			log.Fatal(err)
		}
		rc := it.Particles("e").Record("position").Component("x")
		local := int64(e.N())
		global := r.Comm.AllreduceI64(local, "sum")
		offset := r.Comm.ExscanI64(local)
		rc.ResetDataset(openpmd.Dataset{Type: openpmd.Float64, Extent: []uint64{uint64(global)}})
		if err := rc.StoreChunk([]uint64{uint64(offset)}, []uint64{uint64(local)}, e.X); err != nil {
			log.Fatal(err)
		}
		if err := it.Close(); err != nil {
			log.Fatal(err)
		}
		if err := series.Close(); err != nil {
			log.Fatal(err)
		}
		if r.ID == 0 {
			fmt.Printf("rank 0: wrote %d of %d electrons after %d PIC steps\n", local, global, s.Step)
		}
	})

	// Phase 2: read the series back and check the global array.
	w2 := mpisim.NewWorld(k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}}, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, "/out/quickstart.bp4", openpmd.AccessReadOnly, "")
		if err != nil {
			log.Fatal(err)
		}
		its, _ := series.Iterations()
		it, _ := series.ReadIteration(its[0])
		data, shape, err := it.Particles("e").Record("position").Component("x").Load()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read back iteration %d: %d electron positions (global extent %v)\n",
			its[0], len(data), shape)
		fmt.Printf("virtual I/O time elapsed: %.6f s\n", float64(k.Now()))
		series.Close()
	})
}
