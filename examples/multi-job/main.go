// Multi-job contention: two jobs co-scheduled on one simulated Dardel —
// a checkpoint-heavy job staging through node-local burst buffers next to
// a neighbour writing directly to the shared Lustre — so the staged job's
// drain traffic and the neighbour's writes fight over the same OSTs and
// backbone. The demo runs the co-schedule twice, with the drain
// scheduler's QoS off and with the checkpoint priority lane on, and
// prints what each job paid for sharing the machine (slowdown vs running
// alone, Jain's fairness index) and when each drain lane became
// PFS-durable: under priority QoS, checkpoint bytes jump the write-back
// backlog ahead of diagnostics.
package main

import (
	"fmt"
	"log"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
)

// specs is the two-job scenario. The staged job's write-back is
// rate-limited to 1 GB/s, so a backlog builds across epochs — exactly the
// condition where lane priority matters: without it, early diagnostics
// block later checkpoints from becoming restart-safe.
func specs(qos burst.QoS) []jobs.Spec {
	wl := jobs.Workload{
		Epochs:          4,
		CheckpointBytes: 96 * units.MiB,
		DiagBytes:       32 * units.MiB,
		ComputeSec:      0.02,
	}
	return []jobs.Spec{
		{
			Name:  "ckpt-heavy",
			Nodes: 4,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				Policy:        burst.PolicyEpochEnd,
				QoS:           qos,
			},
			Workload:    wl,
			StripeCount: -1,
		},
		{Name: "neighbour", Nodes: 4, Workload: wl, StripeCount: -1},
	}
}

func run(label string, qos burst.QoS) *jobs.ContentionResult {
	res, err := jobs.Contention(cluster.Dardel(), specs(qos), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", label)
	for i, j := range res.Jobs {
		fmt.Printf("  %-11s %d nodes  wrote %-8s durable in %-10s slowdown %.3fx vs isolated\n",
			j.Name, j.Nodes, units.Bytes(j.BytesWritten), units.Seconds(j.DurableSec), res.Slowdown[i])
	}
	staged := res.Jobs[0]
	ck := staged.Burst.Class[burst.ClassCheckpoint]
	dg := staged.Burst.Class[burst.ClassDiagnostic]
	fmt.Printf("  drain lanes: checkpoint %s durable at %s, diagnostics %s at %s\n",
		units.Bytes(ck.DrainedBytes), units.Seconds(float64(ck.LastDrainEnd)),
		units.Bytes(dg.DrainedBytes), units.Seconds(float64(dg.LastDrainEnd)))
	fmt.Printf("  Jain fairness index over achieved bandwidth: %.4f\n\n", res.Jain)
	return res
}

func main() {
	base := burst.QoS{DrainLimit: 1e9} // backlogged write-back, one FIFO lane
	prio := burst.QoS{DrainLimit: 1e9, PriorityLanes: true}

	off := run("QoS off (FIFO write-back)", base)
	on := run("checkpoint priority lane", prio)

	offCk := off.Jobs[0].Burst.Class[burst.ClassCheckpoint].LastDrainEnd
	onCk := on.Jobs[0].Burst.Class[burst.ClassCheckpoint].LastDrainEnd
	fmt.Printf("last checkpoint byte PFS-durable: %s (FIFO) -> %s (priority lane)\n",
		units.Seconds(float64(offCk)), units.Seconds(float64(onCk)))
	if onCk < offCk {
		fmt.Println("priority QoS makes checkpoints restart-safe sooner; diagnostics absorb the wait ✔")
	}
}
