// Multi-job contention: two jobs co-scheduled on one simulated Dardel —
// a checkpoint-heavy job staging through node-local burst buffers next to
// a neighbour writing directly to the shared Lustre — so the staged job's
// drain traffic and the neighbour's writes fight over the same OSTs and
// backbone. The demo runs the co-schedule twice, with the drain
// scheduler's QoS off and with the checkpoint priority lane on, and
// prints what each job paid for sharing the machine (slowdown vs running
// alone, Jain's fairness index) and when each drain lane became
// PFS-durable: under priority QoS, checkpoint bytes jump the write-back
// backlog ahead of diagnostics.
package main

import (
	"fmt"
	"log"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
)

// specs is the two-job scenario. The staged job's write-back is
// rate-limited to 1 GB/s, so a backlog builds across epochs — exactly the
// condition where lane priority matters: without it, early diagnostics
// block later checkpoints from becoming restart-safe.
func specs(qos burst.QoS) []jobs.Spec {
	wl := jobs.BulkWriter{
		Epochs:          4,
		CheckpointBytes: 96 * units.MiB,
		DiagBytes:       32 * units.MiB,
		ComputeSec:      0.02,
	}
	return []jobs.Spec{
		{
			Name:  "ckpt-heavy",
			Nodes: 4,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				Policy:        burst.PolicyEpochEnd,
				QoS:           qos,
			},
			Workload:    wl,
			StripeCount: -1,
		},
		{Name: "neighbour", Nodes: 4, Workload: wl, StripeCount: -1},
	}
}

func run(label string, qos burst.QoS, override ...[]jobs.Spec) *jobs.ContentionResult {
	s := specs(qos)
	if len(override) > 0 {
		s = override[0]
	}
	res, err := jobs.Contention(cluster.Dardel(), s, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", label)
	for i, j := range res.Jobs {
		fmt.Printf("  %-11s %d nodes  wrote %-8s durable in %-10s slowdown %.3fx vs isolated\n",
			j.Name, j.Nodes, units.Bytes(j.BytesWritten), units.Seconds(j.DurableSec), res.Slowdown[i])
	}
	staged := res.Jobs[0]
	ck := staged.Burst.Class[burst.ClassCheckpoint]
	dg := staged.Burst.Class[burst.ClassDiagnostic]
	fmt.Printf("  drain lanes: checkpoint %s durable at %s, diagnostics %s at %s\n",
		units.Bytes(ck.DrainedBytes), units.Seconds(float64(ck.LastDrainEnd)),
		units.Bytes(dg.DrainedBytes), units.Seconds(float64(dg.LastDrainEnd)))
	fmt.Printf("  Jain fairness index over achieved bandwidth: %.4f\n\n", res.Jain)
	return res
}

// rankJob swaps the staged job's flat writer for a BIT1-style rank
// schedule: 4 ranks per node funnel through aggr aggregator groups, so
// only the aggregator nodes physically write — same logical volume per
// node (4×24 MiB checkpoints + 4×8 MiB diagnostics), different traffic
// shape. Every other experiment axis (staging tier, QoS, contention
// accounting) composes with it unchanged.
func rankJob(qos burst.QoS, aggr int) []jobs.Spec {
	s := specs(qos)
	s[0].Workload = jobs.RankWorkload{
		Epochs:                 4,
		RanksPerNode:           4,
		Aggregators:            aggr,
		CheckpointBytesPerRank: 24 * units.MiB,
		DiagBytesPerRank:       8 * units.MiB,
		ComputeSec:             0.02,
	}
	return s
}

func main() {
	base := burst.QoS{DrainLimit: 1e9} // backlogged write-back, one FIFO lane
	prio := burst.QoS{DrainLimit: 1e9, PriorityLanes: true}

	off := run("QoS off (FIFO write-back)", base)
	on := run("checkpoint priority lane", prio)

	offCk := off.Jobs[0].Burst.Class[burst.ClassCheckpoint].LastDrainEnd
	onCk := on.Jobs[0].Burst.Class[burst.ClassCheckpoint].LastDrainEnd
	fmt.Printf("last checkpoint byte PFS-durable: %s (FIFO) -> %s (priority lane)\n",
		units.Seconds(float64(offCk)), units.Seconds(float64(onCk)))
	if onCk < offCk {
		fmt.Println("priority QoS makes checkpoints restart-safe sooner; diagnostics absorb the wait ✔")
	}
	fmt.Println()

	// The same co-schedule with a rank-level workload under test: the
	// drain rate is per node, so funnelling every group through one
	// aggregator defers PFS durability vs spreading over four writers.
	one := run("rank schedule, 1 aggregator group", base, rankJob(base, 1))
	four := run("rank schedule, 4 aggregator groups", base, rankJob(base, 4))
	fmt.Printf("staged job durable: %s (1 aggregator) -> %s (4 aggregators)\n",
		units.Seconds(one.Jobs[0].DurableSec), units.Seconds(four.Jobs[0].DurableSec))
	if four.Jobs[0].DurableSec < one.Jobs[0].DurableSec {
		fmt.Println("spreading aggregators across nodes drains in parallel and is durable sooner ✔")
	}
}
