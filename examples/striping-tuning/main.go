// Striping tuning: the §IV-E workflow as a user would run it — sweep
// Lustre stripe count × stripe size for a BIT1 openPMD+BP4+Blosc output
// on a simulated Dardel, print the write-time matrix, and report the best
// configuration (`lfs setstripe` parameters).
package main

import (
	"fmt"
	"log"

	"picmcio/internal/experiments"
	"picmcio/internal/units"
)

func main() {
	o := experiments.Options{
		Seed:         1,
		RanksPerNode: 16, // laptop-scale sweep; raise to 128 for paper scale
		DiagEpochs:   1,
	}
	nodes := 8
	sizes := []int64{1 << 20, 4 << 20, 16 << 20}
	counts := []int{1, 4, 16, 48}

	t, err := o.Fig9(nodes, sizes, counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t.Render())

	// Re-run to find the minimum cell.
	bestSec := -1.0
	var bestSize int64
	var bestCount int
	for _, size := range sizes {
		for _, count := range counts {
			sec, err := o.Fig9CellPublic(nodes, count, size)
			if err != nil {
				log.Fatal(err)
			}
			if bestSec < 0 || sec < bestSec {
				bestSec, bestSize, bestCount = sec, size, count
			}
		}
	}
	fmt.Printf("best configuration: lfs setstripe -c %d -S %s  (%s per write)\n",
		bestCount, units.Bytes(bestSize), units.Seconds(bestSec))
}
