// Ionization: the paper's §III-C physics scenario — an unbounded,
// unmagnetized plasma of electrons, D+ ions and D neutrals in which
// neutrals ionize against the electron background, so the neutral density
// decays as ∂n/∂t = −n·nₑ·R. The example runs the PIC MC kernel (field
// solver off, exactly as the paper's test), writes the density profile of
// each species per diagnostic epoch to a JSON openPMD series, and checks
// the decay against theory.
package main

import (
	"fmt"
	"log"
	"math"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/pic"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

func main() {
	const (
		n0    = 20000 // macro-particles per species
		rate  = 2e-15 // ionization rate coefficient R (m³/s)
		steps = 400
	)
	k := sim.NewKernel(sim.WithHeapQueue())
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, 2, mpisim.AlphaBeta(1e-6, 1.0/10e9))

	w.Run(func(r *mpisim.Rank) {
		s, err := pic.New(pic.Params{
			Cells: 100, Length: 1.0, Dt: 1e-9, Seed: 7 + uint64(r.ID),
			IonizationRate: rate,
			// The paper's test does not use the field solver and smoother.
			UseFieldSolver: false,
		}, []pic.SpeciesSpec{
			{Name: "e", Mass: pic.ElectronMass, Charge: -pic.ElementaryQ, NParticles: n0, Density: 1e18, Temperature: 10},
			{Name: "D+", Mass: pic.DeuteronMass, Charge: pic.ElementaryQ, NParticles: n0, Density: 1e18, Temperature: 1},
			{Name: "D", Mass: pic.DeuteronMass, Charge: 0, NParticles: n0, Density: 1e18, Temperature: 0.1},
		})
		if err != nil {
			log.Fatal(err)
		}
		e, _ := s.SpeciesByName("e")
		d, _ := s.SpeciesByName("D")
		ne := float64(e.N()) * e.Weight / s.P.Length

		host := openpmd.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}, Rank: r.ID}, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, "/out/ionization.json", openpmd.AccessCreate, "")
		if err != nil {
			log.Fatal(err)
		}

		for step := 1; step <= steps; step++ {
			if err := s.Advance(); err != nil {
				log.Fatal(err)
			}
			if step%100 != 0 {
				continue
			}
			// Diagnostic epoch: write each species' density profile.
			it, err := series.WriteIteration(uint64(step))
			if err != nil {
				log.Fatal(err)
			}
			for _, sp := range s.Species {
				prof := s.DensityProfile(sp)
				rc := it.Meshes("density_" + sp.Name).Component(openpmd.Scalar)
				cells := uint64(len(prof))
				rc.ResetDataset(openpmd.Dataset{Type: openpmd.Float64, Extent: []uint64{cells * uint64(r.Comm.Size())}})
				rc.StoreChunk([]uint64{cells * uint64(r.Comm.Rank())}, []uint64{cells}, prof)
			}
			it.Close()
			if r.ID == 0 {
				frac := float64(d.N()) / n0
				theory := math.Exp(-ne * rate * float64(step) * s.P.Dt)
				fmt.Printf("step %4d: neutral fraction %.4f (theory %.4f, err %+.2f%%)\n",
					step, frac, theory, 100*(frac-theory)/theory)
			}
		}
		series.Close()
		if r.ID == 0 {
			frac := float64(d.N()) / n0
			theory := math.Exp(-ne * rate * steps * s.P.Dt)
			if math.Abs(frac-theory)/theory > 0.2 {
				log.Fatalf("decay deviates from theory: %.4f vs %.4f", frac, theory)
			}
			fmt.Println("ionization decay matches ∂n/∂t = −n·nₑ·R within tolerance ✔")
		}
	})
}
