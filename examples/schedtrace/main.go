// Machine-queue scheduling: a multi-tenant job stream on a simulated
// Dardel partition, replayed under FCFS and under EASY backfill with
// priority aging. The demo synthesizes a few hundred submissions from 8
// tenants (exponential interarrivals per user, the same Poisson
// machinery the failure campaigns use), writes the stream out as a
// replayable trace, reads it back, and schedules the identical trace
// under both policies — so the wait-time and utilization deltas are
// properties of the schedule, not of workload luck. Each admitted job
// is priced by actually running its jobs.Spec through the co-schedule
// machinery, and concurrently running jobs stretch each other through
// the shared-PFS contention model.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"picmcio/internal/cluster"
	"picmcio/internal/sched"
)

const partitionNodes = 64

func main() {
	m := cluster.Dardel()
	pricer := sched.NewPricer(m, 1, 6)

	// Calibrate the submission rate to offer ~1.1× the partition's
	// node-hour capacity: enough pressure that a queue forms and the
	// policies have something to disagree about.
	s := sched.Synth{Tenants: 8, Users: 4, Seed: 1}
	mean, err := sched.SubmitMeanForLoad(pricer, m, s, 1.1, partitionNodes)
	if err != nil {
		log.Fatal(err)
	}
	s.SubmitMeanHours = mean
	s.SpanHours = 240 * mean / float64(8*4) // expect ~240 submissions
	stream, err := sched.Synthesize(m, s)
	if err != nil {
		log.Fatal(err)
	}

	// Round-trip the stream through the trace format: what a scheduler
	// comparison replays is a file you can store, diff, and hand-edit.
	var buf bytes.Buffer
	if err := sched.WriteTrace(&buf, stream); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 4)
	fmt.Printf("trace: %d jobs from %d tenants over %.0f h, first entries:\n  %s\n  %s\n  %s\n",
		len(stream), s.Tenants, s.SpanHours, lines[0], lines[1], lines[2])
	replay, err := sched.ReadTrace(&buf, m, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sched.Config{Machine: m, Nodes: partitionNodes, Seed: 1, Pricer: pricer}
	var results []*sched.Result
	for _, pol := range []sched.Policy{sched.FCFS{}, sched.EASY{}} {
		res, err := sched.Run(cfg, pol, replay)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("\n=== %s ===\n", res.Policy)
		fmt.Printf("  makespan %.0f h, utilization %.1f%%, mean wait %.1f h (p95 %.1f h), %d backfills\n",
			res.Makespan, 100*res.Utilization(), res.MeanWaitHours(), res.WaitQuantile(0.95), res.Backfills)
		fmt.Printf("  per-tenant Jain fairness (%d tenants): %.4f\n", len(res.TenantStats()), res.JainTenants())
		fmt.Println("  size classes:")
		for _, c := range res.ClassStats() {
			fmt.Printf("    %-8s %3d jobs  mean wait %7.1f h  mean slowdown %6.2fx\n",
				c.Name, c.Jobs, c.MeanWaitHours, c.MeanSlowdown)
		}
	}

	fcfs, easy := results[0], results[1]
	fmt.Printf("\nmean queue wait: %.1f h (FCFS) -> %.1f h (EASY backfill)\n",
		fcfs.MeanWaitHours(), easy.MeanWaitHours())
	if easy.MeanWaitHours() < fcfs.MeanWaitHours() && easy.Utilization() >= fcfs.Utilization() {
		fmt.Println("backfill cuts queue waits without giving up utilization ✔")
	}
}
