// Machine-queue scheduling: a multi-tenant job stream on a simulated
// Dardel partition, replayed under FCFS and under EASY backfill with
// priority aging. The demo synthesizes a few hundred submissions from 8
// tenants (exponential interarrivals per user, the same Poisson
// machinery the failure campaigns use), writes the stream out as a
// replayable trace, reads it back, and schedules the identical trace
// under both policies — so the wait-time and utilization deltas are
// properties of the schedule, not of workload luck. Each admitted job
// is priced by actually running its jobs.Spec through the co-schedule
// machinery, and concurrently running jobs stretch each other through
// the shared-PFS contention model.
//
// -nodes and -jobs scale the partition and the backlog. The defaults
// (64 nodes, ~240 jobs) run in a couple of seconds; the indexed event
// loop keeps whole-machine runs tractable too — -nodes 4096 -jobs
// 20000 replays in well under a minute, where the retired naive loop
// took tens of minutes.
//
// -fair skews the tenant submission rates and adds the fair-share
// policy to the comparison; -preempt enables checkpoint-and-requeue
// preemption once the queue head has waited that many hours; -mtbf
// turns on in-queue node failures (kill, requeue from the last drained
// checkpoint, repair window).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"strings"

	"picmcio/internal/cluster"
	"picmcio/internal/sched"
)

func main() {
	nodes := flag.Int("nodes", 64, "partition size in nodes")
	jobCount := flag.Int("jobs", 240, "approximate number of submissions to synthesize")
	fair := flag.Bool("fair", false, "skew the tenant submission rates and add the fair-share policy to the comparison")
	preemptW := flag.Float64("preempt", 0, "preempt running jobs once the queue head has waited this many hours (0 = off)")
	mtbf := flag.Float64("mtbf", 0, "per-node MTBF in hours for in-queue node failures (0 = off)")
	flag.Parse()

	m := cluster.Dardel()
	if *nodes > m.MaxNodes {
		m.MaxNodes = *nodes
	}
	pricer := sched.NewPricer(m, 1, 6)

	// Calibrate the submission rate to offer ~1.1× the partition's
	// node-hour capacity: enough pressure that a queue forms and the
	// policies have something to disagree about.
	s := sched.Synth{Tenants: 8, Users: 4, Seed: 1}
	if *fair {
		// One hog tenant at 6× the base rate: the workload fair-share
		// exists to push back on.
		s.TenantWeights = []float64{6, 3, 2, 1, 1, 1, 1, 1}
	}
	mean, err := sched.SubmitMeanForLoad(pricer, m, s, 1.1, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	s.SubmitMeanHours = mean
	s.SpanHours = float64(*jobCount) * mean / float64(8*4)
	stream, err := sched.Synthesize(m, s)
	if err != nil {
		log.Fatal(err)
	}
	// Price every distinct shape up front on a small worker pool; the
	// replayed schedules then never stall on a probe simulation.
	if err := pricer.Prewarm(stream, 4); err != nil {
		log.Fatal(err)
	}

	// Round-trip the stream through the trace format: what a scheduler
	// comparison replays is a file you can store, diff, and hand-edit.
	var buf bytes.Buffer
	if err := sched.WriteTrace(&buf, stream); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 4)
	fmt.Printf("trace: %d jobs from %d tenants over %.0f h, first entries:\n  %s\n  %s\n  %s\n",
		len(stream), s.Tenants, s.SpanHours, lines[0], lines[1], lines[2])
	replay, err := sched.ReadTrace(&buf, m, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sched.Config{Machine: m, Nodes: *nodes, Seed: 1, Pricer: pricer}
	if *preemptW > 0 {
		cfg.Preempt = sched.PreemptConfig{MaxHeadWaitHours: *preemptW, CheckpointHours: 0.5}
	}
	if *mtbf > 0 {
		cfg.Faults = sched.FaultConfig{MTBFNodeHours: *mtbf, RepairHours: 12, RestartOverheadHours: 0.5}
	}
	policies := []sched.Policy{sched.FCFS{}, sched.EASY{}}
	if *fair {
		policies = append(policies, sched.FairShare{})
	}
	var results []*sched.Result
	for _, pol := range policies {
		res, err := sched.Run(cfg, pol, replay)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("\n=== %s ===\n", res.Policy)
		fmt.Printf("  makespan %.0f h, utilization %.1f%%, mean wait %.1f h (p95 %.1f h), %d backfills\n",
			res.Makespan, 100*res.Utilization(), res.MeanWaitHours(), res.WaitQuantile(0.95), res.Backfills)
		fmt.Printf("  per-tenant Jain fairness (%d tenants): %.4f\n", len(res.TenantStats()), res.JainTenants())
		if *fair || *preemptW > 0 || *mtbf > 0 {
			fmt.Printf("  delivered-usage Jain %.4f (share error %.4f), %d preemptions, %d failure kills, %.0f node-h lost, %.0f node-h down\n",
				res.UsageJain, res.ShareErr, res.Preemptions, res.FailureKills, res.LostNodeHours, res.DownNodeHours)
		}
		fmt.Println("  size classes:")
		for _, c := range res.ClassStats() {
			fmt.Printf("    %-8s %3d jobs  mean wait %7.1f h  mean slowdown %6.2fx\n",
				c.Name, c.Jobs, c.MeanWaitHours, c.MeanSlowdown)
		}
	}

	fcfs, easy := results[0], results[1]
	fmt.Printf("\nmean queue wait: %.1f h (FCFS) -> %.1f h (EASY backfill)\n",
		fcfs.MeanWaitHours(), easy.MeanWaitHours())
	if easy.MeanWaitHours() < fcfs.MeanWaitHours() && easy.Utilization() >= fcfs.Utilization() {
		fmt.Println("backfill cuts queue waits without giving up utilization ✔")
	}
	if *fair {
		fs := results[2]
		fmt.Printf("delivered-usage Jain: %.4f (FCFS), %.4f (EASY) -> %.4f (fair-share)\n",
			fcfs.UsageJain, easy.UsageJain, fs.UsageJain)
		if fs.UsageJain > easy.UsageJain && fs.UsageJain > fcfs.UsageJain {
			fmt.Println("fair-share holds delivered usage nearest equal shares under the skew ✔")
		}
	}
}
