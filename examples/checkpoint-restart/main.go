// Checkpoint/restart: the resilience workflow the paper's openPMD
// integration enables — run the PIC simulation, periodically overwrite
// openPMD iteration 0 with the full particle state (the BIT1 pattern),
// then "crash", restart from the checkpoint, and verify the restored
// state is bit-identical.
//
// With -burst the checkpoints stage through a node-local burst buffer:
// each save returns at *buffered* durability (NVMe speed) while the drain
// scheduler writes back to Lustre in the background, and a second pass
// with burst_durability = "pfs" shows what the same checkpoints cost when
// every epoch close must wait for *PFS* durability.
//
// With -burst -kill the "crash" stops being rhetorical: the node dies
// mid-epoch at step 250, between checkpoints, and the run reports what a
// restart recovers at each durability level — both saves are buffered on
// the node's NVMe, but write-back may not have caught up, so a node that
// takes its NVMe with it rolls back further than one whose staged state
// survives. The demo then takes the surviving-NVMe path: redrain the
// staged bytes (the recovery cost internal/fault accounts) and restart
// bit-identically from the last buffered checkpoint.
package main

import (
	"flag"
	"fmt"
	"log"

	"picmcio/internal/burst"
	"picmcio/internal/ckptopt"
	"picmcio/internal/fault"
	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/pic"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/units"
)

func newSim(seed uint64) (*pic.Sim, error) {
	return pic.New(pic.Params{
		Cells: 64, Length: 1.0, Dt: 1e-9, Seed: seed, IonizationRate: 4e-15,
	}, []pic.SpeciesSpec{
		{Name: "e", Mass: pic.ElectronMass, Charge: -pic.ElementaryQ, NParticles: 5000, Density: 1e18, Temperature: 10},
		{Name: "D+", Mass: pic.DeuteronMass, Charge: pic.ElementaryQ, NParticles: 5000, Density: 1e18, Temperature: 1},
		{Name: "D", Mass: pic.DeuteronMass, Charge: 0, NParticles: 5000, Density: 1e18, Temperature: 0.1},
	})
}

// saveCheckpoint overwrites iteration 0 with the electron state.
func saveCheckpoint(series *openpmd.Series, s *pic.Sim) error {
	it, err := series.WriteIteration(0)
	if err != nil {
		return err
	}
	e, _ := s.SpeciesByName("e")
	n := uint64(e.N())
	for _, rec := range []struct {
		name string
		data []float64
	}{
		{"position/x", e.X}, {"momentum/x", e.VX}, {"momentum/y", e.VY}, {"momentum/z", e.VZ},
	} {
		rc := it.Particles("e").Record(rec.name[:8]).Component(rec.name[9:])
		rc.ResetDataset(openpmd.Dataset{Type: openpmd.Float64, Extent: []uint64{n}})
		if err := rc.StoreChunk([]uint64{0}, []uint64{n}, rec.data); err != nil {
			return err
		}
	}
	return it.Close()
}

// checkpointRun executes 300 PIC steps with a checkpoint every 100,
// returning the average virtual seconds one checkpoint save cost, the
// drain time waited at the end (staged runs only — measured in-run, while
// write-back is genuinely still pending), and the final electron state
// fingerprint.
func checkpointRun(k *sim.Kernel, env *posix.Env, tier *burst.Tier, path, toml string) (avgSaveSec, drainSec float64, n int, x0, vx0 float64) {
	w := mpisim.NewWorld(k, 1, nil)
	w.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, path, openpmd.AccessCreate, toml)
		if err != nil {
			log.Fatal(err)
		}
		s, err := newSim(42)
		if err != nil {
			log.Fatal(err)
		}
		var saves int
		var saveSec sim.Duration
		for step := 1; step <= 300; step++ {
			if err := s.Advance(); err != nil {
				log.Fatal(err)
			}
			if step%100 == 0 {
				t0 := r.Proc.Now()
				if err := saveCheckpoint(series, s); err != nil {
					log.Fatal(err)
				}
				saveSec += r.Proc.Now() - t0
				saves++
				fmt.Printf("checkpointed at step %d (%d electrons, %.1f µs)\n",
					step, mustN(s), 1e6*float64(r.Proc.Now()-t0))
			}
		}
		series.Close()
		if tier != nil {
			// Make the last checkpoint PFS-durable before the "crash":
			// a buffered-only checkpoint would not survive losing the
			// node. This must run inside the simulation, while the
			// drain is actually still pending.
			t0 := r.Proc.Now()
			tier.WaitDrained(r.Proc)
			drainSec = float64(r.Proc.Now() - t0)
		}
		e, _ := s.SpeciesByName("e")
		n, x0, vx0 = e.N(), e.X[0], e.VX[0]
		avgSaveSec = float64(saveSec) / float64(saves)
	})
	return
}

// ckptMark fingerprints one checkpoint: the step it covers and the state
// a restart from it must reproduce.
type ckptMark struct {
	step    int
	n       int
	x0, vx0 float64
}

// killRun is the -kill flow: run the staged checkpoint loop but lose the
// node at killStep, mid-epoch. It reports the recovery position at both
// durability levels from the fault ledger, then takes the NVMe-surviving
// path — redrain the staged bytes and leave a consistent last checkpoint
// on Lustre for the restart.
func killRun(k *sim.Kernel, env *posix.Env, tier *burst.Tier, path, toml string, killStep int) (marks []ckptMark, buffered, durable int, pendingAtKill int64, redrainSec float64) {
	led := &fault.Ledger{}
	w := mpisim.NewWorld(k, 1, nil)
	w.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, path, openpmd.AccessCreate, toml)
		if err != nil {
			log.Fatal(err)
		}
		s, err := newSim(42)
		if err != nil {
			log.Fatal(err)
		}
		for step := 1; step <= 300; step++ {
			// Unlike the timing passes above, the kill flow charges a
			// compute cost per step: the window in which the background
			// drain races the next overwrite — and loses it partway, so
			// the two durability levels genuinely diverge at the kill.
			r.Proc.Sleep(40e-6)
			if step == killStep {
				// The node dies here. Assess the recovery position at the
				// instant of death, before anything else moves.
				now := r.Proc.Now()
				buffered = led.BufferedEpochs(now)
				durable = led.DurableEpochs(tier.NodeStats(0).DrainedBytes)
				// Counterfactual node loss: what would die with the NVMe.
				pendingAtKill = tier.Durability().PendingBytes
				// Actual path: the staged state survives (SurviveNVMe) and
				// is redrained — the recovery cost of buffered restarts.
				tier.Crash(r.Proc, 0, true)
				t0 := r.Proc.Now()
				tier.WaitDrained(r.Proc)
				redrainSec = float64(r.Proc.Now() - t0)
				break
			}
			if err := s.Advance(); err != nil {
				log.Fatal(err)
			}
			if step%100 == 0 {
				if err := saveCheckpoint(series, s); err != nil {
					log.Fatal(err)
				}
				e, _ := s.SpeciesByName("e")
				marks = append(marks, ckptMark{step: step, n: e.N(), x0: e.X[0], vx0: e.VX[0]})
				led.Mark(r.Proc.Now(), tier.Durability().BufferedBytes)
			}
		}
		// The dead node wrote no more; closing the series stands in for
		// the restart-time index recovery that makes the per-iteration
		// BP4 metadata readable again.
		series.Close()
	})
	return
}

func main() {
	useBurst := flag.Bool("burst", false, "stage checkpoints through a node-local burst buffer")
	kill := flag.Bool("kill", false, "lose the node at step 250, mid-epoch (requires -burst)")
	autoInterval := flag.Bool("auto-interval", false,
		"derive the checkpoint cadence from the measured save costs (Young/Daly via internal/ckptopt) and rerun at it")
	mtbf := flag.Float64("mtbf", 0.05,
		"accelerated node MTBF in virtual seconds for -auto-interval (production MTBFs would recommend checkpointing less often than this demo runs)")
	flag.Parse()
	if *kill && !*useBurst {
		log.Fatal("-kill requires -burst: without staging every checkpoint is already PFS-durable")
	}
	if *kill && *autoInterval {
		log.Fatal("-auto-interval needs the timing passes the -kill flow skips: run them separately")
	}

	k := sim.NewKernel(sim.WithHeapQueue())
	fs := lustre.New(k, lustre.DefaultParams())
	env := &posix.Env{FS: fs, Client: &pfs.Client{}}
	toml := "[adios2.engine.parameters]\nNumAggregators = \"1\"\n"

	var tier *burst.Tier
	if *useBurst {
		// A deliberately slow drain (50 MB/s) makes the durability gap
		// visible: buffered saves cost NVMe time, PFS-durable saves wait
		// for write-back.
		tier = burst.NewTier(k, burst.Spec{
			CapacityBytes: 8 << 30, Rate: 2e9, DrainRate: 50e6,
			Policy: burst.PolicyImmediate,
		}, fs)
		env.Stage = tier.FS()
		toml = "burst_buffer = true\n" + toml
		if !*kill {
			fmt.Println("=== staged run (buffered-durable checkpoints) ===")
		}
	}

	ckptPath := "/scratch/checkpoint.bp4"

	if *kill {
		const killStep = 250
		fmt.Printf("=== staged run with node loss at step %d (-kill) ===\n", killStep)
		marks, buffered, durable, pendingAtKill, redrainSec := killRun(k, env, tier, ckptPath, toml, killStep)
		fmt.Printf("node died mid-epoch at step %d: %d checkpoint(s) buffered on NVMe, %d PFS-durable\n",
			killStep, buffered, durable)
		fmt.Printf("  restart from NVMe-surviving state: resume at step %d — %d step(s) of work lost\n",
			100*buffered, killStep-100*buffered)
		fmt.Printf("  restart after losing the NVMe:     resume at step %d — %d step(s) of work lost (%s staged-only state gone)\n",
			100*durable, killStep-100*durable, units.Bytes(pendingAtKill))
		fmt.Printf("surviving staged state: %s redrained to Lustre in %.1f µs before the restart could read it\n",
			units.Bytes(pendingAtKill), 1e6*redrainSec)
		fmt.Println("(in-place overwrite keeps only the last checkpoint on disk; per-epoch paths — as in")
		fmt.Println(" internal/jobs — are what make every PFS-durable epoch independently restartable)")

		// Take the surviving-NVMe path: the redrained last checkpoint is
		// consistent on Lustre, restart from it and verify bit-identity.
		want := marks[buffered-1]
		w2 := mpisim.NewWorld(k, 1, nil)
		w2.Run(func(r *mpisim.Rank) {
			host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
			series, err := openpmd.NewSeries(host, ckptPath, openpmd.AccessReadOnly, toml)
			if err != nil {
				log.Fatal(err)
			}
			it, _ := series.ReadIteration(0)
			x, _, err := it.Particles("e").Record("position").Component("x").Load()
			if err != nil {
				log.Fatal(err)
			}
			vx, _, err := it.Particles("e").Record("momentum").Component("x").Load()
			if err != nil {
				log.Fatal(err)
			}
			series.Close()
			if len(x) != want.n || x[0] != want.x0 || vx[0] != want.vx0 {
				log.Fatalf("restart mismatch: n=%d want %d, x0=%v want %v", len(x), want.n, x[0], want.x0)
			}
			fmt.Printf("restarted from the step-%d checkpoint: %d electrons restored bit-identically ✔\n", want.step, len(x))
		})
		return
	}

	bufferedSave, drainSec, wantN, wantX0, wantVX0 := checkpointRun(k, env, tier, ckptPath, toml)
	if tier != nil {
		st := tier.Stats()
		fmt.Printf("drained to Lustre in %.1f µs (%s absorbed, %s written back)\n",
			1e6*drainSec, units.Bytes(st.AbsorbedBytes), units.Bytes(st.DrainedBytes))
	}

	// "Crash" — now restart from the checkpoint and verify.
	w2 := mpisim.NewWorld(k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, ckptPath, openpmd.AccessReadOnly, toml)
		if err != nil {
			log.Fatal(err)
		}
		it, _ := series.ReadIteration(0)
		x, _, err := it.Particles("e").Record("position").Component("x").Load()
		if err != nil {
			log.Fatal(err)
		}
		vx, _, err := it.Particles("e").Record("momentum").Component("x").Load()
		if err != nil {
			log.Fatal(err)
		}
		series.Close()
		if len(x) != wantN || x[0] != wantX0 || vx[0] != wantVX0 {
			log.Fatalf("restart mismatch: n=%d want %d, x0=%v want %v", len(x), wantN, x[0], wantX0)
		}
		fmt.Printf("restarted from checkpoint: %d electrons restored bit-identically ✔\n", len(x))
		fmt.Printf("(only the LAST checkpoint is on disk — iteration 0 was overwritten in place)\n")
	})

	var durableSave float64
	if tier != nil {
		// Same workload, but every epoch close waits for PFS durability.
		fmt.Println("\n=== staged run (PFS-durable checkpoints, burst_durability = \"pfs\") ===")
		durableToml := "burst_durability = \"pfs\"\n" + toml
		durableSave, _, _, _, _ = checkpointRun(k, env, tier, "/scratch/checkpoint-pfs.bp4", durableToml)
		fmt.Printf("\navg checkpoint cost: buffered-durable %.1f µs vs PFS-durable %.1f µs (%.0fx)\n",
			1e6*bufferedSave, 1e6*durableSave, durableSave/bufferedSave)
		fmt.Println("buffered saves return at NVMe speed; the drain overlaps the next compute phase")
	}

	if *autoInterval {
		autoIntervalRun(k, env, tier, toml, *mtbf, bufferedSave, durableSave, drainSec)
	}
}

// stepComputeSec is the virtual compute charged per PIC step in the
// auto-interval pass — the clock the recommended interval converts into
// a steps-between-checkpoints cadence.
const stepComputeSec = 40e-6

// autoIntervalRun is the -auto-interval flow: price the measured save
// costs with ckptopt against the (accelerated) MTBF, print the
// per-level Young/Daly/numeric recommendations, and rerun the
// checkpoint loop at the recommended cadence instead of the hard-coded
// every-100-steps one.
func autoIntervalRun(k *sim.Kernel, env *posix.Env, tier *burst.Tier, toml string, mtbfSec, bufferedSave, durableSave, drainSec float64) {
	costs := ckptopt.Costs{
		MTBFSec: mtbfSec,
		// The demo's recovery path is the killRun one: staged state
		// survives and redrains.
		SurvivalProb:       1,
		DurableSaveSec:     durableSave,
		BufferedRestartSec: drainSec, // redrain before the restart reads
		DurableLagSec:      drainSec,
	}
	if tier != nil {
		costs.BufferedSaveSec = bufferedSave
	} else {
		// Without staging the timing pass measured direct PFS saves.
		costs.DurableSaveSec = bufferedSave
	}
	plan, err := ckptopt.Optimize(costs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== auto-interval: ckptopt on the measured save costs (accelerated MTBF %.3f s) ===\n", mtbfSec)
	for _, l := range plan.Levels() {
		fmt.Printf("%-8s save %7.1f µs → checkpoint every %.2f ms (Young %.2f, Daly %.2f, waste %.2f%%)\n",
			l.Name, 1e6*l.SaveSec, 1e3*l.NumericSec, 1e3*l.YoungSec, 1e3*l.DalySec, 100*l.WasteAtOpt)
	}
	rec := plan.Recommended()
	every := int(rec.NumericSec/stepComputeSec + 0.5)
	if every < 1 {
		every = 1
	}
	fmt.Printf("recommended: %s checkpoints every %d steps (at %.0f µs compute/step)\n",
		rec.Name, every, 1e6*stepComputeSec)

	// Rerun the loop at the recommended cadence.
	w := mpisim.NewWorld(k, 1, nil)
	w.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, "/scratch/checkpoint-auto.bp4", openpmd.AccessCreate, toml)
		if err != nil {
			log.Fatal(err)
		}
		s, err := newSim(42)
		if err != nil {
			log.Fatal(err)
		}
		t0 := r.Proc.Now()
		saves := 0
		for step := 1; step <= 300; step++ {
			r.Proc.Sleep(stepComputeSec)
			if err := s.Advance(); err != nil {
				log.Fatal(err)
			}
			if step%every == 0 {
				if err := saveCheckpoint(series, s); err != nil {
					log.Fatal(err)
				}
				saves++
			}
		}
		series.Close()
		if tier != nil {
			tier.WaitDrained(r.Proc)
		}
		fmt.Printf("ran 300 steps at the recommended cadence: %d checkpoint(s), %.1f ms virtual time, "+
			"at most %d step(s) ever at risk\n", saves, 1e3*float64(r.Proc.Now()-t0), every)
	})
}

func mustN(s *pic.Sim) int {
	e, _ := s.SpeciesByName("e")
	return e.N()
}
