// Checkpoint/restart: the resilience workflow the paper's openPMD
// integration enables — run the PIC simulation, periodically overwrite
// openPMD iteration 0 with the full particle state (the BIT1 pattern),
// then "crash", restart from the checkpoint, and verify the restored
// state is bit-identical.
package main

import (
	"fmt"
	"log"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/pic"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

const ckptPath = "/scratch/checkpoint.bp4"

func newSim(seed uint64) (*pic.Sim, error) {
	return pic.New(pic.Params{
		Cells: 64, Length: 1.0, Dt: 1e-9, Seed: seed, IonizationRate: 4e-15,
	}, []pic.SpeciesSpec{
		{Name: "e", Mass: pic.ElectronMass, Charge: -pic.ElementaryQ, NParticles: 5000, Density: 1e18, Temperature: 10},
		{Name: "D+", Mass: pic.DeuteronMass, Charge: pic.ElementaryQ, NParticles: 5000, Density: 1e18, Temperature: 1},
		{Name: "D", Mass: pic.DeuteronMass, Charge: 0, NParticles: 5000, Density: 1e18, Temperature: 0.1},
	})
}

// saveCheckpoint overwrites iteration 0 with the electron state.
func saveCheckpoint(host openpmd.Host, series *openpmd.Series, s *pic.Sim) error {
	it, err := series.WriteIteration(0)
	if err != nil {
		return err
	}
	e, _ := s.SpeciesByName("e")
	n := uint64(e.N())
	for _, rec := range []struct {
		name string
		data []float64
	}{
		{"position/x", e.X}, {"momentum/x", e.VX}, {"momentum/y", e.VY}, {"momentum/z", e.VZ},
	} {
		rc := it.Particles("e").Record(rec.name[:8]).Component(rec.name[9:])
		rc.ResetDataset(openpmd.Dataset{Type: openpmd.Float64, Extent: []uint64{n}})
		if err := rc.StoreChunk([]uint64{0}, []uint64{n}, rec.data); err != nil {
			return err
		}
	}
	return it.Close()
}

func main() {
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, 1, nil)

	var wantX0, wantVX0 float64
	var wantN int
	w.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}}, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, ckptPath, openpmd.AccessCreate, `
[adios2.engine.parameters]
NumAggregators = "1"
`)
		if err != nil {
			log.Fatal(err)
		}
		s, err := newSim(42)
		if err != nil {
			log.Fatal(err)
		}
		// Run 300 steps, checkpointing every 100 (iteration 0 overwrite).
		for step := 1; step <= 300; step++ {
			if err := s.Advance(); err != nil {
				log.Fatal(err)
			}
			if step%100 == 0 {
				if err := saveCheckpoint(host, series, s); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("checkpointed at step %d (%d electrons)\n", step, mustN(s))
			}
		}
		series.Close()
		e, _ := s.SpeciesByName("e")
		wantN, wantX0, wantVX0 = e.N(), e.X[0], e.VX[0]
	})

	// "Crash" — now restart from the checkpoint and verify.
	w2 := mpisim.NewWorld(k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		host := openpmd.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}}, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, ckptPath, openpmd.AccessReadOnly, "")
		if err != nil {
			log.Fatal(err)
		}
		it, _ := series.ReadIteration(0)
		x, _, err := it.Particles("e").Record("position").Component("x").Load()
		if err != nil {
			log.Fatal(err)
		}
		vx, _, err := it.Particles("e").Record("momentum").Component("x").Load()
		if err != nil {
			log.Fatal(err)
		}
		series.Close()
		if len(x) != wantN || x[0] != wantX0 || vx[0] != wantVX0 {
			log.Fatalf("restart mismatch: n=%d want %d, x0=%v want %v", len(x), wantN, x[0], wantX0)
		}
		fmt.Printf("restarted from checkpoint: %d electrons restored bit-identically ✔\n", len(x))
		fmt.Printf("(only the LAST checkpoint is on disk — iteration 0 was overwritten in place)\n")
	})
}

func mustN(s *pic.Sim) int {
	e, _ := s.SpeciesByName("e")
	return e.N()
}
