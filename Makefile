# Developer entry points. CI runs `make check`, `make bench-compare` and
# `make smoke` across the build matrix.

# -ec so every recipe line must succeed; pipefail as a belt-and-braces
# default, though bench deliberately avoids pipes: each stage writes an
# intermediate file, so a b.Fatal in `go test -bench` fails its own line
# instead of being masked by the consumer's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: check test vet bench bench-compare smoke sweep-smoke clean

check: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

# bench runs the scenario-axis benchmarks once (burst staging, multi-job
# contention, fault injection) and converts each text log into the
# machine-readable JSON record CI archives and gates on.
bench:
	$(GO) test -bench 'BenchmarkBurstBuffer$$|BenchmarkContention$$' -benchtime=1x -run '^$$' . > BENCH_contention.txt
	cat BENCH_contention.txt
	$(GO) run ./cmd/benchjson -o BENCH_contention.json < BENCH_contention.txt
	$(GO) test -bench 'BenchmarkFault$$' -benchtime=1x -run '^$$' . > BENCH_fault.txt
	cat BENCH_fault.txt
	$(GO) run ./cmd/benchjson -o BENCH_fault.json < BENCH_fault.txt
	$(GO) test -bench 'BenchmarkSweep$$' -benchtime=1x -run '^$$' . > BENCH_sweep.txt
	cat BENCH_sweep.txt
	$(GO) run ./cmd/benchjson -o BENCH_sweep.json < BENCH_sweep.txt

# bench-compare is the regression gate: fresh results must stay within
# 25% of the committed baselines (bench/*.json) on every throughput
# metric. Refresh a baseline deliberately with:
#   make bench && cp BENCH_contention.json BENCH_fault.json BENCH_sweep.json bench/
bench-compare: bench
	$(GO) run ./cmd/benchjson -compare -threshold 0.25 bench/BENCH_contention.json BENCH_contention.json
	$(GO) run ./cmd/benchjson -compare -threshold 0.25 bench/BENCH_fault.json BENCH_fault.json
	$(GO) run ./cmd/benchjson -compare -threshold 0.25 bench/BENCH_sweep.json BENCH_sweep.json

# smoke builds and runs every example with its interesting flag
# combinations so examples cannot silently rot.
smoke:
	$(GO) build ./...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ionization
	$(GO) run ./examples/striping-tuning
	$(GO) run ./examples/checkpoint-restart
	$(GO) run ./examples/checkpoint-restart -burst
	$(GO) run ./examples/checkpoint-restart -burst -kill
	$(GO) run ./examples/multi-job

# sweep-smoke runs the two sweep-native artifacts at tiny scale and
# writes their machine-readable JSON; CI archives the outputs.
sweep-smoke:
	$(GO) run ./cmd/experiments -parallel 4 figsizing campfail
	$(GO) run ./cmd/experiments -json -parallel 4 figsizing > figsizing.json
	$(GO) run ./cmd/experiments -json -parallel 4 -campaign-runs 1500 -campaign-mtbf 500 campfail > campfail.json

clean:
	rm -f BENCH_contention.json BENCH_contention.txt BENCH_fault.json BENCH_fault.txt
	rm -f BENCH_sweep.json BENCH_sweep.txt figsizing.json campfail.json
