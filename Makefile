# Developer entry points. CI runs `make check`, `make bench-compare` and
# `make smoke` across the build matrix.

# -ec so every recipe line must succeed; pipefail as a belt-and-braces
# default, though bench deliberately avoids pipes: each stage writes an
# intermediate file, so a b.Fatal in `go test -bench` fails its own line
# instead of being masked by the consumer's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: check test vet bench bench-compare profile smoke sweep-smoke clean

check: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

# bench runs the scenario-axis benchmarks once (burst staging, multi-job
# contention, fault injection) and converts each text log into the
# machine-readable JSON record CI archives and gates on.
bench:
	$(GO) test -bench 'BenchmarkBurstBuffer$$|BenchmarkContention$$' -benchtime=1x -run '^$$' . > BENCH_contention.txt
	cat BENCH_contention.txt
	$(GO) run ./cmd/benchjson -o BENCH_contention.json < BENCH_contention.txt
	$(GO) test -bench 'BenchmarkFault$$' -benchtime=1x -run '^$$' . > BENCH_fault.txt
	cat BENCH_fault.txt
	$(GO) run ./cmd/benchjson -o BENCH_fault.json < BENCH_fault.txt
	$(GO) test -bench 'BenchmarkSweep$$' -benchtime=1x -run '^$$' . > BENCH_sweep.txt
	cat BENCH_sweep.txt
	$(GO) run ./cmd/benchjson -o BENCH_sweep.json < BENCH_sweep.txt
	$(GO) test -bench 'BenchmarkInterval$$' -benchtime=1x -run '^$$' . > BENCH_interval.txt
	cat BENCH_interval.txt
	$(GO) run ./cmd/benchjson -o BENCH_interval.json < BENCH_interval.txt
	$(GO) test -bench 'BenchmarkSched$$|BenchmarkSchedScale$$' -benchtime=1x -run '^$$' -timeout 30m . > BENCH_sched.txt
	cat BENCH_sched.txt
	$(GO) run ./cmd/benchjson -o BENCH_sched.json < BENCH_sched.txt
	$(GO) test -bench 'BenchmarkWorkload$$' -benchtime=1x -run '^$$' . > BENCH_workload.txt
	cat BENCH_workload.txt
	$(GO) run ./cmd/benchjson -o BENCH_workload.json < BENCH_workload.txt
	$(GO) test -bench 'BenchmarkKernelScale$$' -benchtime=1x -run '^$$' . > BENCH_kernel.txt
	cat BENCH_kernel.txt
	$(GO) run ./cmd/benchjson -o BENCH_kernel.json < BENCH_kernel.txt

# BENCH_BASELINES lists the committed regression baselines the compare
# gate runs against, by stem.
BENCH_BASELINES := BENCH_contention BENCH_fault BENCH_sweep BENCH_interval BENCH_sched BENCH_workload BENCH_kernel

# bench-compare is the regression gate: fresh results must stay within
# 25% of the committed baselines (bench/*.json) on every throughput
# metric. A missing baseline fails up front with the full list of absent
# files (instead of whatever benchjson emits on ENOENT) — refresh them
# deliberately with:
#   make bench && cp $(BENCH_BASELINES:%=%.json) bench/
bench-compare: bench
	@missing=""; \
	for stem in $(BENCH_BASELINES); do \
		[ -f bench/$$stem.json ] || missing="$$missing bench/$$stem.json"; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "bench-compare: missing committed baseline file(s):$$missing" >&2; \
		echo "bench-compare: regenerate with 'make bench && cp $(BENCH_BASELINES:%=%.json) bench/'" >&2; \
		exit 1; \
	fi
	for stem in $(BENCH_BASELINES); do \
		$(GO) run ./cmd/benchjson -compare -threshold 0.25 bench/$$stem.json $$stem.json || exit 1; \
	done

# profile captures CPU and allocation profiles of the machine-scale
# benchmarks for pprof inspection:
#   go tool pprof kernel.test cpu.pprof
#   go tool pprof -alloc_space kernel.test mem.pprof
#   go tool pprof sched.test sched_cpu.pprof
#   go tool pprof -alloc_space sched.test sched_mem.pprof
profile:
	$(GO) test -bench 'BenchmarkKernelScale$$' -benchtime=1x -run '^$$' \
		-cpuprofile cpu.pprof -memprofile mem.pprof -o kernel.test .
	$(GO) test -bench 'BenchmarkSchedScale$$' -benchtime=1x -run '^$$' -timeout 30m \
		-cpuprofile sched_cpu.pprof -memprofile sched_mem.pprof -o sched.test .

# smoke builds and runs every example with its interesting flag
# combinations so examples cannot silently rot.
smoke:
	$(GO) build ./...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ionization
	$(GO) run ./examples/striping-tuning
	$(GO) run ./examples/checkpoint-restart
	$(GO) run ./examples/checkpoint-restart -burst
	$(GO) run ./examples/checkpoint-restart -burst -kill
	$(GO) run ./examples/checkpoint-restart -burst -auto-interval
	$(GO) run ./examples/multi-job
	$(GO) run ./examples/schedtrace
	$(GO) run ./examples/schedtrace -nodes 256 -jobs 1000
	$(GO) run ./examples/schedtrace -fair -preempt 8 -mtbf 1500

# sweep-smoke runs the sweep-native artifacts at tiny scale and writes
# their machine-readable JSON; CI archives the outputs. The -optimal
# campaign run doubles as the interval-recommendation validation at an
# accelerated MTBF.
sweep-smoke:
	$(GO) run ./cmd/experiments -parallel 4 figsizing campfail
	$(GO) run ./cmd/experiments -parallel 4 -optimal -campaign-mtbf 500 campfail
	$(GO) run ./cmd/experiments -json -parallel 4 figsizing > figsizing.json
	$(GO) run ./cmd/experiments -json -parallel 4 -campaign-runs 1500 -campaign-mtbf 500 campfail > campfail.json
	$(GO) run ./cmd/experiments -json -parallel 4 figinterval > figinterval.json
	$(GO) run ./cmd/experiments -parallel 4 figsched
	$(GO) run ./cmd/experiments -json -parallel 4 figsched > figsched.json
	$(GO) run ./cmd/experiments -parallel 4 figfair
	$(GO) run ./cmd/experiments -json -parallel 4 figfair > figfair.json
	$(GO) run ./cmd/experiments -parallel 4 figworkload
	$(GO) run ./cmd/experiments -json -parallel 4 figworkload > figworkload.json

clean:
	rm -f BENCH_*.json BENCH_*.txt
	rm -f cpu.pprof mem.pprof kernel.test sched_cpu.pprof sched_mem.pprof sched.test
	rm -f figsizing.json campfail.json figinterval.json figsched.json figfair.json figworkload.json
