# Developer entry points. CI runs `make check bench`.

# pipefail so a b.Fatal in a benchmark fails the bench recipe even though
# its output is piped into benchjson.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: check test vet bench clean

check: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

# bench runs the burst-buffer and multi-job contention benchmarks once and
# writes their metrics as machine-readable JSON (BENCH_contention.json),
# the regression record CI archives alongside the text log.
bench:
	$(GO) test -bench 'BenchmarkBurstBuffer$$|BenchmarkContention$$' -benchtime=1x -run '^$$' . \
		| tee BENCH_contention.txt \
		| $(GO) run ./cmd/benchjson -o BENCH_contention.json
	@cat BENCH_contention.json

clean:
	rm -f BENCH_contention.json BENCH_contention.txt
