module picmcio

go 1.24.0
