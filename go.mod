module picmcio

go 1.23.0
