// Package picmcio's root benchmark harness: one testing.B benchmark per
// table and figure of the paper, each exercising the exact experiment
// code path at a reduced-but-representative scale (full machine models,
// full code paths, smaller node sets so `go test -bench=.` finishes in
// minutes). cmd/experiments regenerates the artifacts at paper scale.
//
// Reported custom metrics carry the experiment's headline quantity
// (GiB/s, seconds, file counts) so the benchmark output doubles as a
// regression record for the reproduced results.
package picmcio

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"picmcio/internal/bit1"
	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/experiments"
	"picmcio/internal/jobs"
	"picmcio/internal/sched"
	"picmcio/internal/sim"
	"picmcio/internal/units"
)

// metricName turns a series label into a legal benchmark metric name.
func metricName(label, suffix string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "+", "_")
	return r.Replace(label) + "_" + suffix
}

// benchOptions keeps the per-iteration cost low: 16 ranks/node and a
// short epoch schedule, full machine models.
func benchOptions() experiments.Options {
	return experiments.Options{
		Seed:         1,
		RanksPerNode: 16,
		NodeCounts:   []int{1, 10, 50},
		DiagEpochs:   2,
	}
}

// BenchmarkFig2OriginalIO measures BIT1 original file I/O write
// throughput across the three machines (Fig. 2).
func BenchmarkFig2OriginalIO(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ss, err := o.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range ss {
			b.ReportMetric(s.Y[len(s.Y)-1], metricName(s.Label, "GiBps_at50nodes"))
		}
	}
}

// BenchmarkFig3OriginalVsBP4 compares the two output paths on Dardel
// (Fig. 3).
func BenchmarkFig3OriginalVsBP4(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ss, err := o.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		orig, bp4 := ss[0], ss[1]
		b.ReportMetric(orig.Y[len(orig.Y)-1], "original_GiBps")
		b.ReportMetric(bp4.Y[len(bp4.Y)-1], "openPMD_BP4_GiBps")
		if bp4.Y[len(bp4.Y)-1] <= orig.Y[len(orig.Y)-1] {
			b.Fatal("openPMD+BP4 must beat original I/O")
		}
	}
}

// BenchmarkFig4IORReference adds the IOR upper-bound lines (Fig. 4).
func BenchmarkFig4IORReference(b *testing.B) {
	o := benchOptions()
	o.NodeCounts = []int{1, 10}
	for i := 0; i < b.N; i++ {
		ss, err := o.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range ss {
			b.ReportMetric(s.Y[len(s.Y)-1], metricName(s.Label, "GiBps"))
		}
	}
}

// BenchmarkFig5PerProcessCosts measures the read/meta/write decomposition
// (Fig. 5) at a reduced 50-node scale.
func BenchmarkFig5PerProcessCosts(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := o.Fig5(50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Original.MetaSec, "original_meta_s")
		b.ReportMetric(r.OpenPMD.MetaSec, "openPMD_meta_s")
		b.ReportMetric(r.Original.WriteSec, "original_write_s")
		b.ReportMetric(r.OpenPMD.WriteSec, "openPMD_write_s")
		if r.OpenPMD.MetaSec >= r.Original.MetaSec {
			b.Fatal("metadata time must collapse under openPMD+BP4")
		}
	}
}

// BenchmarkFig6AggregatorSweep sweeps the BP4 aggregator count (Fig. 6).
func BenchmarkFig6AggregatorSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		s, err := o.Fig6(50, []int{1, 25, 100, 400, 800})
		if err != nil {
			b.Fatal(err)
		}
		peak, at := 0.0, 0.0
		for j := range s.X {
			if s.Y[j] > peak {
				peak, at = s.Y[j], s.X[j]
			}
		}
		b.ReportMetric(s.Y[0], "GiBps_1aggr")
		b.ReportMetric(peak, "GiBps_peak")
		b.ReportMetric(at, "peak_aggregators")
		if peak <= s.Y[0] {
			b.Fatal("aggregation must raise throughput above 1 aggregator")
		}
	}
}

// BenchmarkFig7BloscCompression compares Blosc+1AGGR with the original
// path as nodes scale (Fig. 7).
func BenchmarkFig7BloscCompression(b *testing.B) {
	o := benchOptions()
	o.NodeCounts = []int{1, 10}
	for i := 0; i < b.N; i++ {
		ss, err := o.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range ss {
			b.ReportMetric(s.Y[0], metricName(s.Label, "GiBps_1node"))
		}
	}
}

// BenchmarkFig8MemcpyProfile extracts the profiling.json memcpy totals
// with and without compression (Fig. 8).
func BenchmarkFig8MemcpyProfile(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := o.Fig8(10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MemcpyMicrosNoComp, "memcpy_us_plain")
		b.ReportMetric(r.MemcpyMicrosBlosc, "memcpy_us_blosc")
		if r.MemcpyMicrosBlosc != 0 || r.MemcpyMicrosNoComp == 0 {
			b.Fatal("Blosc must eliminate marshalling memcpy")
		}
	}
}

// BenchmarkBurstBuffer measures the burst-buffer staging tier (the
// post-paper scenario axis): staged writes must raise apparent client
// throughput above direct PFS writes, with the asynchronous drain
// overlapping compute.
func BenchmarkBurstBuffer(b *testing.B) {
	o := benchOptions()
	o.NodeCounts = []int{1, 10}
	for i := 0; i < b.N; i++ {
		benchBurstBuffer(b, o)
	}
}

// benchBurstBuffer is one iteration of the burst-buffer benchmark.
func benchBurstBuffer(b *testing.B, o experiments.Options) {
	_, pts, err := o.FigBurst()
	if err != nil {
		b.Fatal(err)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.DirectGiBs, "direct_GiBps")
	b.ReportMetric(last.StagedGiBs, "staged_GiBps")
	b.ReportMetric(last.DrainSec, "drain_s")
	b.ReportMetric(100*last.OverlapFrac, "drain_overlap_pct")
	for _, pt := range pts {
		if pt.StagedGiBs <= pt.DirectGiBs {
			b.Fatalf("staged writes must beat direct PFS writes (%d nodes: %.3f vs %.3f GiB/s)",
				pt.Nodes, pt.StagedGiBs, pt.DirectGiBs)
		}
	}
	if last.DrainSec <= 0 || last.OverlapFrac <= 0 {
		b.Fatal("drain must run and overlap compute")
	}
}

// BenchmarkContention measures the multi-job contention scenario (the
// second post-paper scenario axis): a staged checkpoint-heavy job next to
// a direct writer on one Dardel, across the drain-QoS policy grid.
// Co-scheduling must cost something (slowdown > 1) and the rate-limit
// policy must hand bandwidth back to the neighbour.
func BenchmarkContention(b *testing.B) {
	o := experiments.Options{Seed: 1}
	for i := 0; i < b.N; i++ {
		_, rows, err := o.FigContention()
		if err != nil {
			b.Fatal(err)
		}
		byPolicy := map[string]*experiments.ContentionRow{}
		for j := range rows {
			byPolicy[rows[j].Policy] = &rows[j]
		}
		off, lim := byPolicy["qos-off"], byPolicy["rate-limit"]
		if off == nil || lim == nil {
			b.Fatal("policy grid incomplete")
		}
		b.ReportMetric(off.Result.MaxSlowdown(), "qosoff_max_slowdown_x")
		b.ReportMetric(off.Result.Jain, "qosoff_jain")
		b.ReportMetric(lim.Result.Slowdown[1], "ratelimit_direct_slowdown_x")
		b.ReportMetric(lim.Result.Jain, "ratelimit_jain")
		// The gated throughput metric (benchjson -compare fails on >25%
		// drops of *Bps metrics): the staged job's achieved write-back
		// bandwidth under the plain scheduler.
		b.ReportMetric(off.Result.Jobs[0].DrainBps/(1<<30), "qosoff_staged_drain_GiBps")
		if off.Result.MaxSlowdown() <= 1.0 {
			b.Fatalf("co-scheduled slowdown %.4f, interference must be > 1.0", off.Result.MaxSlowdown())
		}
		if lim.Result.Slowdown[1] >= off.Result.Slowdown[1] {
			b.Fatal("rate-limit QoS must reduce the neighbour's slowdown")
		}
	}
}

// BenchmarkFault measures the fault-injection scenario (the third
// post-paper scenario axis): a staged victim job loses a node mid-epoch.
// Deferred write-back must cost strictly more restart work than immediate
// draining, and the NVMe-surviving restart must resume from at least as
// late an epoch as the node-loss restart while redraining at real drain
// bandwidth (the gated throughput metric).
func BenchmarkFault(b *testing.B) {
	o := experiments.Options{Seed: 1}
	for i := 0; i < b.N; i++ {
		_, cells, err := o.FigFault()
		if err != nil {
			b.Fatal(err)
		}
		lost := map[string]int{}
		cost := map[string]float64{}
		for _, c := range cells {
			if c.QoS != "qos-off" {
				continue
			}
			lost[c.Policy.String()] += c.Report.LostEpochsPFS
			cost[c.Policy.String()] += c.VictimDurable - c.CleanDurable
		}
		b.ReportMetric(float64(lost["immediate"]), "immediate_lost_epochs")
		b.ReportMetric(float64(lost["epoch-end"]), "epochend_lost_epochs")
		b.ReportMetric(float64(lost["watermark"]), "watermark_lost_epochs")
		b.ReportMetric(cost["immediate"], "immediate_fault_cost_s")
		b.ReportMetric(cost["epoch-end"], "epochend_fault_cost_s")
		if lost["epoch-end"] <= lost["immediate"] {
			b.Fatalf("epoch-end lost %d epochs vs immediate %d: deferring write-back must cost restart work",
				lost["epoch-end"], lost["immediate"])
		}
		if lost["watermark"] < lost["epoch-end"] {
			b.Fatalf("watermark lost %d epochs vs epoch-end %d", lost["watermark"], lost["epoch-end"])
		}
		sc, err := o.FigFaultSurvival()
		if err != nil {
			b.Fatal(err)
		}
		nl, nk := sc.NodeLoss, sc.NVMeKeep
		b.ReportMetric(float64(nl.Fault.LostBytes)/(1<<20), "nodeloss_lost_MiB")
		b.ReportMetric(float64(nk.Fault.RedrainBytes)/(1<<20), "redrain_MiB")
		b.ReportMetric(nk.DrainBps/(1<<30), "redrain_GiBps")
		if nk.Fault.RestartEpoch < nl.Fault.RestartEpoch {
			b.Fatal("NVMe survival must not restart earlier than node loss")
		}
		if nk.DrainBps <= 0 {
			b.Fatal("surviving staged state must redrain at nonzero bandwidth")
		}
	}
}

// BenchmarkInterval measures the checkpoint-interval optimizer stack
// (the fourth post-paper scenario axis): cost probes through the burst
// and PFS write paths priced into Young/Daly plans. The gated
// throughput metrics are the probes' effective checkpoint bandwidths —
// a regression there means the measured cost model drifted. Closed
// forms must agree with the numeric minimizer, and the buffered cadence
// must come out shorter than the PFS one (cheap saves ⇒ checkpoint more
// often).
func BenchmarkInterval(b *testing.B) {
	o := experiments.Options{Seed: 1}
	for i := 0; i < b.N; i++ {
		st, err := o.FigIntervalSweep()
		if err != nil {
			b.Fatal(err)
		}
		ckptBytes := float64(128 << 20)
		for _, p := range st.Points {
			cell := p.Extra.(experiments.IntervalCell)
			if cell.Machine != "Dardel" || cell.Policy != "immediate" || cell.Scale != 1 {
				continue
			}
			l := cell.Level
			switch cell.Durability {
			case "buffered":
				b.ReportMetric(ckptBytes/l.SaveSec/(1<<30), "buffered_ckpt_GiBps")
				b.ReportMetric(l.NumericSec, "buffered_opt_interval_s")
			case "pfs":
				b.ReportMetric(ckptBytes/l.SaveSec/(1<<30), "pfs_ckpt_GiBps")
				b.ReportMetric(l.NumericSec, "pfs_opt_interval_s")
			}
			if gap := math.Abs(l.NumericSec-l.DalySec) / l.NumericSec; gap > 0.02 {
				b.Fatalf("%s %s: numeric optimum %v vs Daly %v diverge by %.3f",
					cell.Machine, cell.Durability, l.NumericSec, l.DalySec, gap)
			}
		}
		byDur := map[string]float64{}
		for _, p := range st.Points {
			cell := p.Extra.(experiments.IntervalCell)
			if cell.Machine == "Dardel" && cell.Policy == "immediate" && cell.Scale == 1 {
				byDur[cell.Durability] = cell.Level.NumericSec
			}
		}
		if !(byDur["buffered"] > 0 && byDur["buffered"] < byDur["pfs"]) {
			b.Fatalf("buffered cadence %v must be shorter than PFS %v", byDur["buffered"], byDur["pfs"])
		}
	}
}

// BenchmarkTab2FileCounts regenerates the Table II file accounting.
func BenchmarkTab2FileCounts(b *testing.B) {
	o := benchOptions()
	o.NodeCounts = []int{1, 10}
	for i := 0; i < b.N; i++ {
		t, err := o.Tab2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "rows")
	}
}

// BenchmarkFig9StripingSweep sweeps Lustre striping (Fig. 9).
func BenchmarkFig9StripingSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := o.Fig9(10, []int64{1 << 20, 16 << 20}, []int{1, 8, 48})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)*len(t.Header)), "cells")
	}
}

// BenchmarkAblationMDSThreads is the design-note ablation: the original
// path's scalability hinges on metadata service concurrency; halving MDS
// threads must not change the BP4 path (which barely touches the MDS).
func BenchmarkAblationMDSThreads(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		m := cluster.Dardel()
		weak := m
		weak.Lustre.MDSThreads = 1
		strongOrig, err := o.RunBIT1Public(m, 10, bit1.IOOriginal, "")
		if err != nil {
			b.Fatal(err)
		}
		weakOrig, err := o.RunBIT1Public(weak, 10, bit1.IOOriginal, "")
		if err != nil {
			b.Fatal(err)
		}
		weakBP4, err := o.RunBIT1Public(weak, 10, bit1.IOOpenPMD, "[adios2.engine.parameters]\nNumAggregators = \"10\"")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(strongOrig.ThroughputGiBs, "orig_16mds_GiBps")
		b.ReportMetric(weakOrig.ThroughputGiBs, "orig_1mds_GiBps")
		b.ReportMetric(weakBP4.ThroughputGiBs, "bp4_1mds_GiBps")
		if weakOrig.MetaSec <= strongOrig.MetaSec {
			b.Fatal("weak MDS must raise original metadata time")
		}
	}
}

// BenchmarkAblationBackbone verifies the Fig. 6 peak is backbone-bound:
// doubling the storage fabric bandwidth must raise peak throughput.
func BenchmarkAblationBackbone(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		m := cluster.Dardel()
		fast := m
		fast.Lustre.BackboneRate *= 4
		fast.Lustre.OSTRate *= 4
		base, err := o.RunBIT1Public(m, 50, bit1.IOOpenPMD, "[adios2.engine.parameters]\nNumAggregators = \"400\"")
		if err != nil {
			b.Fatal(err)
		}
		boosted, err := o.RunBIT1Public(fast, 50, bit1.IOOpenPMD, "[adios2.engine.parameters]\nNumAggregators = \"400\"")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.ThroughputGiBs, "base_GiBps")
		b.ReportMetric(boosted.ThroughputGiBs, "boosted_GiBps")
		if boosted.ThroughputGiBs <= base.ThroughputGiBs {
			b.Fatal("faster fabric must raise aggregated throughput")
		}
	}
}

// BenchmarkSweep exercises the sweep engine end to end on the two
// sweep-native artifacts: the buffer-sizing grid (reporting the best
// achieved write-back bandwidth as the gated throughput metric) and an
// accelerated-MTBF failure campaign (loss ordering as context metrics).
// A serial run must be bit-identical to a -parallel 4 run — the
// engine's core guarantee — or the benchmark fails.
func BenchmarkSweep(b *testing.B) {
	o := experiments.Options{Seed: 1, CampaignRuns: 1200, CampaignMTBFHours: 500}
	par := o
	par.Parallel = 4
	for i := 0; i < b.N; i++ {
		sizing, err := o.FigSizing()
		if err != nil {
			b.Fatal(err)
		}
		sizingPar, err := par.FigSizing()
		if err != nil {
			b.Fatal(err)
		}
		if sizing.Render() != sizingPar.Render() {
			b.Fatal("sizing sweep diverged between serial and parallel runs")
		}
		var bestDrain, bestSpeedup float64
		for _, p := range sizing.Points {
			if v, ok := p.Get("drain_gibps"); ok && v > bestDrain {
				bestDrain = v
			}
			if v, ok := p.Get("app_speedup_x"); ok && v > bestSpeedup {
				bestSpeedup = v
			}
		}
		b.ReportMetric(bestDrain, "best_drain_GiBps")
		b.ReportMetric(bestSpeedup, "best_speedup_x")
		b.ReportMetric(float64(len(sizing.Points)), "sizing_points")

		camp, err := o.CampaignFailure()
		if err != nil {
			b.Fatal(err)
		}
		campPar, err := par.CampaignFailure()
		if err != nil {
			b.Fatal(err)
		}
		if camp.Render() != campPar.Render() {
			b.Fatal("failure campaign diverged between serial and parallel runs")
		}
		lost := map[string]float64{}
		for _, p := range camp.Points {
			cell := p.Extra.(experiments.CampaignCell)
			if cell.QoS == "qos-off" {
				lost[cell.Policy.String()] = cell.MeanLostPerFail
			}
		}
		if !(lost["immediate"] < lost["watermark"]) {
			b.Fatal("campaign must cost more lost node-hours under deferred write-back")
		}
		b.ReportMetric(lost["immediate"], "campaign_lost_nh_immediate")
		b.ReportMetric(lost["watermark"], "campaign_lost_nh_watermark")
	}
}

// BenchmarkWorkload measures the unified workload interface in a 4-job
// co-schedule on Dardel: two BIT1-style rank schedules (1 vs 4
// aggregator groups), a chunked flat writer and a direct neighbour, all
// contending for the same PFS. The gated throughput metric is the
// single-aggregator rank job's achieved write-back bandwidth — it drops
// if the mpisim gather path, the staging tier or the shared-PFS
// contention model regresses. Funnelling through one writer must not
// reach durability faster than spreading over four.
func BenchmarkWorkload(b *testing.B) {
	m := cluster.Dardel()
	tier := burst.Spec{
		CapacityBytes: 2 << 30,
		Rate:          6e9,
		PerOp:         25e-6,
		Policy:        burst.PolicyEpochEnd,
	}
	rank := func(aggr int) jobs.RankWorkload {
		return jobs.RankWorkload{
			Epochs:                 3,
			RanksPerNode:           4,
			Aggregators:            aggr,
			CheckpointBytesPerRank: 24 * units.MiB,
			DiagBytesPerRank:       8 * units.MiB,
			ComputeSec:             0.02,
			ChunkBytes:             16 * units.MiB,
		}
	}
	flat := jobs.BulkWriter{
		Epochs:          3,
		CheckpointBytes: 96 * units.MiB,
		DiagBytes:       32 * units.MiB,
		ComputeSec:      0.02,
	}
	specs := []jobs.Spec{
		{Name: "ranks-1agg", Nodes: 4, Burst: tier, Workload: rank(1), StripeCount: -1},
		{Name: "ranks-4agg", Nodes: 4, Burst: tier, Workload: rank(4), StripeCount: -1},
		{Name: "chunked", Nodes: 4, Burst: tier, Workload: jobs.ChunkedWriter{
			Epochs: 3, CheckpointBytes: 96 * units.MiB, DiagBytes: 32 * units.MiB,
			ComputeSec: 0.02, ChunkBytes: 16 * units.MiB,
		}, StripeCount: -1},
		{Name: "direct", Nodes: 4, Workload: flat, StripeCount: -1},
	}
	for i := 0; i < b.N; i++ {
		res, err := jobs.Run(m, specs, 1)
		if err != nil {
			b.Fatal(err)
		}
		shares := make([]float64, len(res))
		for j, r := range res {
			shares[j] = r.FairShareBps()
			if r.BytesWritten == 0 {
				b.Fatalf("job %s wrote nothing", r.Name)
			}
			if r.Burst != nil && r.Burst.PendingBytes != 0 {
				b.Fatalf("job %s left %d bytes staged", r.Name, r.Burst.PendingBytes)
			}
		}
		if res[0].BytesWritten != res[1].BytesWritten {
			b.Fatalf("aggregator count changed logical volume: %d vs %d",
				res[0].BytesWritten, res[1].BytesWritten)
		}
		if res[0].DurableSec < res[1].DurableSec {
			b.Fatal("one aggregator must not reach durability before four")
		}
		b.ReportMetric(res[0].DrainBps/(1<<30), "ranks_1aggr_drain_GiBps")
		b.ReportMetric(res[1].DrainBps/(1<<30), "ranks_4aggr_drain_GiBps")
		b.ReportMetric(res[0].DurableSec, "ranks_1aggr_durable_s")
		b.ReportMetric(res[1].DurableSec, "ranks_4aggr_durable_s")
		b.ReportMetric(jobs.JainIndex(shares), "jain")
	}
}

// BenchmarkSched measures the batch-scheduler subsystem under a deep
// backlog: ~1300 jobs offered at 8× the partition's capacity, so the
// wait queue builds past 1000 entries and EASY backfill's per-decision
// work (priority sort + shadow-time reservation) runs at its worst
// realistic depth. The gated throughput metric is the simulated
// delivered write bandwidth (workload bytes over makespan) — it drops
// if the scheduler or the contention model regresses into longer
// schedules. The wall-clock admission rate is a context metric only
// (host-speed dependent, so it must not gate).
func BenchmarkSched(b *testing.B) {
	m := cluster.Dardel()
	pr := sched.NewPricer(m, 1, 6)
	const partition = 64
	s := sched.Synth{Tenants: 8, Users: 4, Seed: 1}
	mean, err := sched.SubmitMeanForLoad(pr, m, s, 8, partition)
	if err != nil {
		b.Fatal(err)
	}
	s.SubmitMeanHours = mean
	s.SpanHours = 1300 * mean / float64(8*4) // expect ~1300 submissions
	stream, err := sched.Synthesize(m, s)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sched.Config{Machine: m, Nodes: partition, Seed: 1, Pricer: pr}
	// Nominal workload volume each job writes (checkpoints + diagnostics
	// across all epochs and nodes): deterministic, so delivered bandwidth
	// is a pure function of the schedule the run produces.
	var totalBytes float64
	for _, j := range stream {
		sh := j.Spec.Workload.Shape()
		totalBytes += float64(sh.Epochs) * float64(sh.BytesPerNode) * float64(j.Nodes)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := sched.Run(cfg, sched.EASY{}, stream)
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		// Reconstruct the backlog depth the run actually saw: +1 per
		// submission, -1 per start, max prefix over time order.
		type ev struct {
			at    float64
			delta int
		}
		evs := make([]ev, 0, 2*len(res.Jobs))
		for _, j := range res.Jobs {
			evs = append(evs, ev{j.SubmitHours, +1}, ev{j.StartHours, -1})
		}
		depth, maxDepth := 0, 0
		// Starts at the same instant as submissions drain first (a start
		// can only follow its own submission).
		sort.Slice(evs, func(a, b2 int) bool {
			if evs[a].at != evs[b2].at {
				return evs[a].at < evs[b2].at
			}
			return evs[a].delta < evs[b2].delta
		})
		for _, e := range evs {
			depth += e.delta
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		if maxDepth < 1000 {
			b.Fatalf("backlog peaked at %d jobs, benchmark requires >= 1000", maxDepth)
		}
		if len(res.Jobs) != len(stream) {
			b.Fatalf("scheduled %d of %d jobs", len(res.Jobs), len(stream))
		}
		b.ReportMetric(float64(len(res.Jobs))/elapsed, "admitted_jobs_per_s")
		b.ReportMetric(float64(maxDepth), "peak_queue_depth")
		b.ReportMetric(res.Utilization(), "utilization")
		b.ReportMetric(totalBytes/(res.Makespan*3600)/(1<<20), "delivered_MiBps")
	}
}

// schedScaleStream synthesizes the whole-machine scheduler workload:
// `jobs` submissions from 8 tenants × 4 users offered at 2.5× the
// partition's node-hour capacity, so the backlog grows to roughly
// (1 - 1/2.5) of the trace — thousands to tens of thousands of queued
// jobs, the regime ROADMAP item 1 calls whole-machine queues. The
// machine is the Dardel preset with its node ceiling raised to the
// partition size; its calendar-queue kernel preset applies to pricing
// probes automatically.
func schedScaleStream(nodes, jobCount int) (cluster.Machine, *sched.Pricer, []sched.Job, error) {
	m := cluster.Dardel()
	if nodes > m.MaxNodes {
		m.MaxNodes = nodes
	}
	pr := sched.NewPricer(m, 1, 6)
	s := sched.Synth{Tenants: 8, Users: 4, Seed: 1}
	mean, err := sched.SubmitMeanForLoad(pr, m, s, 2.5, nodes)
	if err != nil {
		return m, nil, nil, err
	}
	s.SubmitMeanHours = mean
	s.SpanHours = float64(jobCount) * mean / float64(8*4)
	stream, err := sched.Synthesize(m, s)
	if err != nil {
		return m, nil, nil, err
	}
	// Shape pricing is shared, prewarmed state — both loops must pay
	// event-loop costs, not first-sight simulation costs.
	if err := pr.Prewarm(stream, 4); err != nil {
		return m, nil, nil, err
	}
	return m, pr, stream, nil
}

// BenchmarkSchedScale is the scheduler's whole-machine throughput
// record: 1024- and 4096-node partitions under multi-thousand-job
// backlogs, each stream replayed through the retained naive event loop
// and the indexed one, with the Results asserted byte-identical before
// any rate is reported. Raw scheduled-jobs/sec metrics are
// host-dependent context; the gated metric is the 4096-node FCFS
// speedup ratio — host-independent, both sides measured in the same
// process — which the bench-compare gate ratchets and the acceptance
// floor below pins at ≥ 5×. EASY backfill runs at the 1024-node tier:
// its per-decision queue sort dominates both loops equally at 4096
// nodes, which would dilute the ratio the ratchet exists to protect.
// A second ratcheted leg replays the 1024-node stream under fair-share
// with preemption and node failures enabled, so the speedup guarantee
// also covers the realism stack (floor ≥ 1.5×: the added per-event
// bookkeeping is common to both loops and compresses the ratio —
// measured ~2× at record time).
func BenchmarkSchedScale(b *testing.B) {
	cases := []struct {
		nodes, jobs int
		policy      sched.Policy
		ratchet     bool
		// realism turns on the full scheduler-realism stack — fair-share
		// usage accounting, preemptive checkpoint-and-requeue, in-queue
		// node failures — so the gated speedup covers the event loop's
		// most feature-dense configuration, not just the clean path.
		realism bool
	}{
		{1024, 5000, sched.FCFS{}, false, false},
		{1024, 5000, sched.EASY{}, false, false},
		{1024, 5000, sched.FairShare{}, true, true},
		{4096, 20000, sched.FCFS{}, true, false},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			m, pr, stream, err := schedScaleStream(c.nodes, c.jobs)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sched.Config{Machine: m, Nodes: c.nodes, Seed: 1, Pricer: pr}
			if c.realism {
				cfg.Preempt = sched.PreemptConfig{MaxHeadWaitHours: 24, CheckpointHours: 0.5}
				cfg.Faults = sched.FaultConfig{MTBFNodeHours: 2000, RepairHours: 12, RestartOverheadHours: 0.5}
			}
			restore := sched.ForceNaiveLoopForTesting()
			start := time.Now()
			naive, err := sched.Run(cfg, c.policy, stream)
			naiveWall := time.Since(start).Seconds()
			restore()
			if err != nil {
				b.Fatal(err)
			}
			start = time.Now()
			indexed, err := sched.Run(cfg, c.policy, stream)
			indexedWall := time.Since(start).Seconds()
			if err != nil {
				b.Fatal(err)
			}
			if !reflect.DeepEqual(naive, indexed) {
				b.Fatalf("%d nodes %s: naive and indexed loops diverged", c.nodes, c.policy.Name())
			}
			if len(indexed.Jobs) != len(stream) {
				b.Fatalf("%d nodes %s: scheduled %d of %d jobs", c.nodes, c.policy.Name(), len(indexed.Jobs), len(stream))
			}
			rate := float64(len(indexed.Jobs)) / indexedWall
			speedup := naiveWall / indexedWall
			tag := fmt.Sprintf("%d_%s", c.nodes, c.policy.Name())
			b.ReportMetric(rate/1e3, "kjobs_per_s_"+tag)
			switch {
			case c.ratchet && c.realism:
				// The realism stack adds per-event usage folding and kill
				// bookkeeping to both loops; the indexed advantage shrinks
				// but must stay decisive.
				if speedup < 1.5 {
					b.Fatalf("%d nodes %s realism: indexed loop is %.1f× the naive loop, acceptance floor is 1.5×", c.nodes, c.policy.Name(), speedup)
				}
				b.ReportMetric(speedup, "speedup_1024_realism_ratchet")
			case c.ratchet:
				if speedup < 5 {
					b.Fatalf("%d nodes %s: indexed loop is %.1f× the naive loop, acceptance floor is 5×", c.nodes, c.policy.Name(), speedup)
				}
				b.ReportMetric(speedup, "speedup_4096_ratchet")
			default:
				b.ReportMetric(speedup, "speedup_"+tag+"_x")
			}
		}
	}
}

// kernelScaleRun is the BenchmarkKernelScale workload: `nodes` node
// processes, each running epochs of a staggered drain burst (32 short
// chunk events) followed by a long compute sleep. The stagger keeps
// bursts from overlapping — the same shape a machine-scale co-schedule
// produces once epochs de-synchronize — so the event population is
// dominated by pure timer sleeps, which is precisely the pattern the
// run-to-completion fast path and the calendar queue are built for.
// It returns the kernel's exact event count, the final virtual time
// (for cross-configuration determinism checks) and the wall-clock
// seconds spent inside Run.
func kernelScaleRun(nodes int, opts ...sim.Option) (events uint64, end sim.Time, wallSec float64) {
	k := sim.NewKernel(opts...)
	const (
		chunks   = 32
		chunkSec = sim.Duration(2e-6)
		epochs   = 3
	)
	period := sim.Duration(nodes) * chunks * chunkSec * 4
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) {
			p.Sleep(period * sim.Duration(i) / sim.Duration(nodes))
			for e := 0; e < epochs; e++ {
				for c := 0; c < chunks; c++ {
					p.Sleep(chunkSec)
				}
				p.Sleep(period - chunks*chunkSec)
			}
		})
	}
	start := time.Now()
	k.Run()
	wallSec = time.Since(start).Seconds()
	return k.Stats().Events(), k.Now(), wallSec
}

// BenchmarkKernelScale is the kernel's nodes × events/sec record at
// machine scale: at 256, 1024 and 4096 nodes it runs the staggered-burst
// workload on the pre-redesign configuration (binary heap, every sleep
// through the scheduler channel) and on the machine-scale configuration
// (calendar queue + run-to-completion fast path), reporting both rates
// and their ratio. The raw events/sec metrics are host-dependent context;
// the gated metric is the 4096-node speedup ratio — host-independent,
// both sides measured in the same process — which the bench-compare gate
// ratchets and the acceptance floor below pins at ≥ 5×.
func BenchmarkKernelScale(b *testing.B) {
	nodeCounts := []int{256, 1024, 4096}
	for i := 0; i < b.N; i++ {
		for _, nodes := range nodeCounts {
			baseEv, baseEnd, baseWall := kernelScaleRun(nodes,
				sim.WithHeapQueue(), sim.WithTimerFastPath(false))
			fastEv, fastEnd, fastWall := kernelScaleRun(nodes,
				sim.WithCalendarQueue())
			if baseEnd != fastEnd {
				b.Fatalf("%d nodes: virtual end time diverged between configurations: %v vs %v", nodes, baseEnd, fastEnd)
			}
			if baseEv != fastEv {
				b.Fatalf("%d nodes: event count diverged between configurations: %d vs %d", nodes, baseEv, fastEv)
			}
			baseRate := float64(baseEv) / baseWall
			fastRate := float64(fastEv) / fastWall
			speedup := fastRate / baseRate
			b.ReportMetric(baseRate/1e6, fmt.Sprintf("heap_Mev_per_s_%d", nodes))
			b.ReportMetric(fastRate/1e6, fmt.Sprintf("cal_Mev_per_s_%d", nodes))
			if nodes == 4096 {
				if speedup < 5 {
					b.Fatalf("4096 nodes: calendar+fastpath kernel is %.1f× the heap kernel, acceptance floor is 5×", speedup)
				}
				b.ReportMetric(speedup, "speedup_4096_ratchet")
			} else {
				b.ReportMetric(speedup, fmt.Sprintf("speedup_%d_x", nodes))
			}
		}
	}
}
