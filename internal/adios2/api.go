// Package adios2 reimplements the slice of the ADIOS2 I/O framework that
// the paper's openPMD integration exercises: the IO/Engine/Variable API,
// the BP4 engine's on-disk layout (aggregator subfiles data.0…data.N, a
// global metadata log md.0, a step index md.idx and profiling.json),
// two-level aggregation with a configurable number of aggregators
// (the "OPENPMD_ADIOS2_BP5_NumAgg" knob of §IV-C), compression operators,
// and a metadata reader enabling the "rapid metadata extraction" the paper
// highlights.
//
// Engines run inside the simulation: every rank participates through its
// sim process, POSIX environment and MPI communicator, so data movement,
// marshalling (memcpy), compression and file writes all cost virtual time
// in the right places.
package adios2

import (
	"fmt"
	"sort"
	"strconv"

	"picmcio/internal/burst"
	"picmcio/internal/compress"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// Mode selects how an engine opens a dataset.
type Mode int

// Engine open modes.
const (
	ModeWrite Mode = iota
	ModeRead
)

// DType identifies an element type.
type DType int

// Element types.
const (
	TypeFloat64 DType = iota
	TypeUInt64
	TypeInt64
	TypeByte
)

// Size reports the element size in bytes.
func (t DType) Size() int64 {
	switch t {
	case TypeByte:
		return 1
	default:
		return 8
	}
}

// String implements fmt.Stringer.
func (t DType) String() string {
	switch t {
	case TypeFloat64:
		return "double"
	case TypeUInt64:
		return "uint64_t"
	case TypeInt64:
		return "int64_t"
	case TypeByte:
		return "uint8_t"
	}
	return fmt.Sprintf("DType(%d)", int(t))
}

// ADIOS is the factory object, mirroring adios2::ADIOS.
type ADIOS struct {
	ios map[string]*IO
}

// New returns an empty ADIOS factory.
func New() *ADIOS { return &ADIOS{ios: map[string]*IO{}} }

// DeclareIO creates (or returns) a named IO configuration object.
func (a *ADIOS) DeclareIO(name string) *IO {
	if io, ok := a.ios[name]; ok {
		return io
	}
	io := &IO{name: name, engine: "BP4", params: map[string]string{}, vars: map[string]*Variable{}}
	a.ios[name] = io
	return io
}

// IO holds engine choice, parameters, operators and variable definitions.
type IO struct {
	name     string
	engine   string
	params   map[string]string
	operator string // compression codec name; "" for none
	vars     map[string]*Variable
}

// Name reports the IO object's name.
func (io *IO) Name() string { return io.name }

// SetEngine selects the engine type ("BP4" is the engine of the paper;
// "BP5" is accepted and mapped onto the same writer with BP5's extra
// metadata file).
func (io *IO) SetEngine(e string) error {
	switch e {
	case "BP4", "BP5":
		io.engine = e
		return nil
	default:
		return fmt.Errorf("adios2: unsupported engine %q", e)
	}
}

// Engine reports the configured engine type.
func (io *IO) Engine() string { return io.engine }

// SetParameter sets an engine parameter. Recognized keys:
//
//	NumAggregators       number of subfiles (the paper's NumAgg knob)
//	Profile              "on"/"off" — write profiling.json
//	SimCompressionRatio  ratio to assume for volume-mode payloads
//	MemRate              marshalling memcpy bandwidth (bytes/s)
//	BurstBuffer          "on"/"true" — stage I/O through the host
//	                     environment's burst-buffer tier, if attached
//	BurstDurability      "buffered" (default) or "pfs" — whether EndStep
//	                     returns at buffered or PFS durability
//	BurstQoSPriority     "on"/"true" — drain checkpoint-class segments
//	                     before diagnostics (tier QoS priority lane)
//	BurstDrainLimit      per-node write-back bandwidth cap, bytes/second
//	BurstDrainDeadline   pace each epoch's write-back across this many
//	                     seconds instead of bursting ("drain by next epoch")
func (io *IO) SetParameter(k, v string) { io.params[k] = v }

// Parameter reads back a parameter with a default.
func (io *IO) Parameter(k, def string) string {
	if v, ok := io.params[k]; ok {
		return v
	}
	return def
}

func (io *IO) intParam(k string, def int) int {
	v, ok := io.params[k]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func (io *IO) floatParam(k string, def float64) float64 {
	v, ok := io.params[k]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def
	}
	return f
}

// AddOperation attaches a compression operator ("blosc" or "bzip2") to
// every variable of this IO, as openPMD's TOML config does.
func (io *IO) AddOperation(codec string) error {
	if codec != "" && codec != "none" {
		if _, err := compress.New(codec, 8); err != nil {
			return err
		}
	}
	io.operator = codec
	return nil
}

// Operator reports the attached compression operator name ("" if none).
func (io *IO) Operator() string { return io.operator }

// Variable describes an n-dimensional distributed array.
type Variable struct {
	Name  string
	Type  DType
	Shape []uint64 // global extent
	start []uint64
	count []uint64
}

// DefineVariable declares a variable with a global shape and this rank's
// initial selection.
func (io *IO) DefineVariable(name string, t DType, shape, start, count []uint64) (*Variable, error) {
	if len(shape) != len(start) || len(shape) != len(count) {
		return nil, fmt.Errorf("adios2: dimension mismatch for %q", name)
	}
	v := &Variable{Name: name, Type: t, Shape: shape, start: start, count: count}
	io.vars[name] = v
	return v, nil
}

// InquireVariable looks up a defined variable.
func (io *IO) InquireVariable(name string) (*Variable, bool) {
	v, ok := io.vars[name]
	return v, ok
}

// VariableNames lists defined variables, sorted.
func (io *IO) VariableNames() []string {
	out := make([]string, 0, len(io.vars))
	for n := range io.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetShape updates the variable's global extent — needed when a re-used
// variable (e.g. a checkpoint re-written each epoch) grows or shrinks.
func (v *Variable) SetShape(shape []uint64) error {
	if len(shape) != len(v.Shape) {
		return fmt.Errorf("adios2: shape rank change for %q", v.Name)
	}
	v.Shape = append([]uint64(nil), shape...)
	return nil
}

// SetSelection sets this rank's hyperslab (start, count).
func (v *Variable) SetSelection(start, count []uint64) error {
	if len(start) != len(v.Shape) || len(count) != len(v.Shape) {
		return fmt.Errorf("adios2: selection rank mismatch for %q", v.Name)
	}
	v.start, v.count = start, count
	return nil
}

// SelectionBytes reports the byte size of the current selection.
func (v *Variable) SelectionBytes() int64 {
	n := int64(1)
	for _, c := range v.count {
		n *= int64(c)
	}
	return n * v.Type.Size()
}

// Host ties an engine to the simulation: the calling rank's process, its
// POSIX environment, and its communicator.
type Host struct {
	Proc *sim.Proc
	Env  *posix.Env
	Comm *mpisim.Comm
}

// paramOn reports whether a parameter holds an affirmative value.
func paramOn(v string) bool {
	switch v {
	case "on", "true", "1", "yes":
		return true
	}
	return false
}

// applyBurstQoS forwards the BurstQoS* engine parameters to the staging
// tier's drain scheduler when the staged file system is a burst tier.
// Every rank applies the same values at open time, so the call is
// idempotent across the communicator. Malformed knob values are errors —
// a typo'd rate limit silently running uncapped would defeat the knob's
// purpose.
func (io *IO) applyBurstQoS(fs pfs.FileSystem) error {
	bfs, ok := fs.(*burst.FS)
	if !ok {
		return nil
	}
	tier := bfs.Tier()
	q := tier.QoS()
	changed := false
	if v, ok := io.params["BurstQoSPriority"]; ok {
		q.PriorityLanes = paramOn(v)
		changed = true
	}
	if v, ok := io.params["BurstDrainLimit"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("adios2: bad BurstDrainLimit %q (want non-negative bytes/second)", v)
		}
		q.DrainLimit = f
		changed = true
	}
	if v, ok := io.params["BurstDrainDeadline"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("adios2: bad BurstDrainDeadline %q (want non-negative seconds)", v)
		}
		q.Deadline = sim.Duration(f)
		changed = true
	}
	if changed {
		tier.SetQoS(q)
	}
	return nil
}

// Open creates an engine for path in the given mode. Every rank of the
// communicator must call Open collectively for write mode. With the
// BurstBuffer parameter on and a staging tier attached to the host
// environment, all engine I/O (write and read) goes through the tier.
func (io *IO) Open(h Host, path string, mode Mode) (*Engine, error) {
	if h.Proc == nil || h.Env == nil || h.Comm == nil {
		return nil, fmt.Errorf("adios2: incomplete host")
	}
	if paramOn(io.Parameter("BurstBuffer", "off")) {
		if st := h.Env.Staged(); st != nil {
			h.Env = st
			if err := io.applyBurstQoS(st.FS); err != nil {
				return nil, err
			}
		}
	}
	switch mode {
	case ModeWrite:
		return openWriter(io, h, path)
	case ModeRead:
		return openReader(io, h, path)
	default:
		return nil, fmt.Errorf("adios2: bad mode %d", mode)
	}
}
