package adios2

import (
	"encoding/json"
	"fmt"

	"picmcio/internal/compress"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// perPutHeaderBytes models the BP serialization header in front of every
// variable block inside the data payload.
const perPutHeaderBytes = 64

// mdEntryBytes is the binary metadata footprint per (rank, variable, step)
// charged in volume mode; it makes the global metadata log grow linearly
// with rank count, the effect that dominates Table II's 1-AGGR file sizes
// at 200 nodes.
const mdEntryBytes = 24

// idxRecordBytes is the fixed size of one md.idx step record.
const idxRecordBytes = 64

// Timers accumulates one rank's engine-internal time, reported via
// profiling.json (Fig. 8 reads the memcpy bucket).
type Timers struct {
	Memcpy   sim.Duration `json:"memcpy_seconds"`
	Compress sim.Duration `json:"compress_seconds"`
	Gather   sim.Duration `json:"gather_seconds"`
	Write    sim.Duration `json:"write_seconds"`
	Meta     sim.Duration `json:"meta_seconds"`
}

// chunkDesc describes one rank's contribution to one variable in one step;
// it is the unit of BP4 metadata.
type chunkDesc struct {
	Var     string   `json:"var"`
	Type    DType    `json:"type"`
	Shape   []uint64 `json:"shape"`
	Start   []uint64 `json:"start"`
	Count   []uint64 `json:"count"`
	RawLen  int64    `json:"raw"`
	Codec   string   `json:"codec,omitempty"`
	Subfile int      `json:"subfile"`
	Offset  int64    `json:"offset"` // absolute offset of the rank's block in the subfile
	Len     int64    `json:"len"`    // stored (possibly compressed) block length
}

type putRec struct {
	v     *Variable
	start []uint64
	count []uint64
	n     int64
	data  []byte
}

type stepLoc struct {
	off int64
	n   int64
}

// Engine is an open BP4 (or BP5) dataset.
type Engine struct {
	io   *IO
	h    Host
	path string
	mode Mode

	nAgg    int
	aggComm *mpisim.Comm
	ldrComm *mpisim.Comm
	isAgg   bool
	subfile int

	dataFD *posix.FD // aggregators only
	mdFD   *posix.FD // world rank 0 only
	idxFD  *posix.FD // world rank 0 only

	codec      compress.Codec
	cost       compress.CostModel
	volRatio   float64
	memRate    float64
	profile    bool
	pfsDurable bool // EndStep blocks until staged writes are PFS-durable

	puts      []putRec
	inStep    bool
	curStep   int64
	stepSeq   int
	steps     map[int64]stepLoc // aggregator-local step placement
	contentOK bool              // all puts so far carried real bytes

	Timers Timers

	rd *readerState // read mode only
}

// openWriter opens path for collective writing.
func openWriter(io *IO, h Host, path string) (*Engine, error) {
	e := &Engine{
		io:         io,
		h:          h,
		path:       pfs.Clean(path),
		mode:       ModeWrite,
		memRate:    io.floatParam("MemRate", 8e9),
		profile:    io.Parameter("Profile", "on") == "on",
		pfsDurable: io.Parameter("BurstDurability", "buffered") == "pfs",
		steps:      map[int64]stepLoc{},
		curStep:    -1,
	}
	size := h.Comm.Size()
	e.nAgg = io.intParam("NumAggregators", size)
	if e.nAgg < 1 {
		e.nAgg = 1
	}
	if e.nAgg > size {
		e.nAgg = size
	}
	if io.operator != "" && io.operator != "none" {
		c, err := compress.New(io.operator, 8)
		if err != nil {
			return nil, err
		}
		e.codec = c
		e.cost = compress.CostOf(io.operator)
		e.volRatio = io.floatParam("SimCompressionRatio", 0.8)
	} else {
		e.volRatio = 1
	}

	rank := h.Comm.Rank()
	if rank == 0 {
		if err := h.Env.MkdirAll(h.Proc, e.path); err != nil {
			return nil, err
		}
		var err error
		if e.mdFD, err = h.Env.Create(h.Proc, pfs.Join(e.path, "md.0")); err != nil {
			return nil, err
		}
		if e.idxFD, err = h.Env.Create(h.Proc, pfs.Join(e.path, "md.idx")); err != nil {
			return nil, err
		}
		if io.engine == "BP5" {
			fd, err := h.Env.Create(h.Proc, pfs.Join(e.path, "mmd.0"))
			if err != nil {
				return nil, err
			}
			fd.Close(h.Proc)
		}
	}
	color := rank * e.nAgg / size
	e.subfile = color
	e.aggComm = h.Comm.Split(color, rank)
	e.isAgg = e.aggComm.Rank() == 0
	if e.isAgg {
		e.ldrComm = h.Comm.Split(0, rank)
		var err error
		if e.dataFD, err = h.Env.Create(h.Proc, pfs.Join(e.path, fmt.Sprintf("data.%d", color))); err != nil {
			return nil, err
		}
	} else {
		e.ldrComm = h.Comm.Split(1, rank)
	}
	h.Comm.Barrier()
	return e, nil
}

// NumAggregators reports the effective aggregator (subfile) count.
func (e *Engine) NumAggregators() int { return e.nAgg }

// Path reports the dataset directory.
func (e *Engine) Path() string { return e.path }

// BeginStep starts writing step id. Re-using a previous id replaces that
// step's payload in place when it fits — the mechanism behind openPMD's
// "iteration 0 is periodically overwritten" checkpointing strategy.
func (e *Engine) BeginStep(id int64) error {
	if e.mode != ModeWrite {
		return fmt.Errorf("adios2: BeginStep on read engine")
	}
	if e.inStep {
		return fmt.Errorf("adios2: nested BeginStep")
	}
	e.inStep = true
	e.curStep = id
	e.puts = e.puts[:0]
	e.contentOK = true
	return nil
}

// Put stages variable data for the current step. data may carry the real
// bytes (content mode) or be nil with only the selection's size counted
// (volume mode). Without a compression operator the engine copies the
// payload into its serialization buffer, costing memcpy time; with an
// operator the payload is consumed directly by the compressor at EndStep
// — which is why Fig. 8 shows memcpy vanishing under Blosc.
func (e *Engine) Put(v *Variable, data []byte) error {
	if !e.inStep {
		return fmt.Errorf("adios2: Put outside step")
	}
	n := v.SelectionBytes()
	if data != nil && int64(len(data)) != n {
		return fmt.Errorf("adios2: %q payload %d bytes, selection %d", v.Name, len(data), n)
	}
	if data == nil {
		e.contentOK = false
	}
	start := append([]uint64(nil), v.start...)
	count := append([]uint64(nil), v.count...)
	e.puts = append(e.puts, putRec{v: v, start: start, count: count, n: n, data: data})
	if e.codec == nil && n > 0 {
		d := sim.Duration(float64(n) / e.memRate)
		e.Timers.Memcpy += d
		e.h.Proc.Sleep(d)
	}
	return nil
}

// PutFloat64s is a convenience for content-mode float64 payloads.
func (e *Engine) PutFloat64s(v *Variable, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, f := range vals {
		putF64(buf[8*i:], f)
	}
	return e.Put(v, buf)
}

// EndStep serializes, compresses, aggregates and writes the staged puts,
// then publishes the step's metadata. It is collective.
func (e *Engine) EndStep() error {
	if !e.inStep {
		return fmt.Errorf("adios2: EndStep outside step")
	}
	p, comm := e.h.Proc, e.h.Comm

	// Serialize this rank's payload: per put, a 64-byte block header
	// followed by the (individually compressed) body — compression
	// operators apply per variable block, as in real ADIOS2.
	var stored int64
	var storedContent []byte
	storedLens := make([]int64, len(e.puts))
	if e.codec != nil {
		var rawTotal int64
		for _, pr := range e.puts {
			rawTotal += pr.n
		}
		d := e.cost.CompressTime(rawTotal)
		e.Timers.Compress += d
		p.Sleep(d)
	}
	for i, pr := range e.puts {
		blockLen := perPutHeaderBytes + pr.n
		var body []byte
		if e.codec != nil && pr.n > 0 {
			if pr.data != nil {
				body = e.codec.Compress(pr.data)
				blockLen = perPutHeaderBytes + int64(len(body))
			} else {
				blockLen = perPutHeaderBytes + int64(float64(pr.n)*e.volRatio)
			}
		} else {
			body = pr.data
		}
		storedLens[i] = blockLen
		stored += blockLen
		if e.contentOK {
			if storedContent == nil {
				storedContent = make([]byte, 0, stored)
			}
			storedContent = append(storedContent, make([]byte, perPutHeaderBytes)...)
			storedContent = append(storedContent, body...)
		}
	}
	if !e.contentOK {
		storedContent = nil
	}

	// Build this rank's chunk table (offsets filled by the aggregator).
	// In volume mode the table itself is not materialized; only its
	// analytic binary footprint travels, so 25k-rank runs stay cheap.
	var tableJSON []byte
	tableBytes := int64(len(e.puts)) * mdEntryBytes
	if e.contentOK {
		table := make([]chunkDesc, len(e.puts))
		for i, pr := range e.puts {
			table[i] = chunkDesc{
				Var: pr.v.Name, Type: pr.v.Type, Shape: pr.v.Shape,
				Start: pr.start, Count: pr.count, RawLen: pr.n,
				Codec: e.io.operator, Subfile: e.subfile, Len: storedLens[i],
			}
		}
		var err error
		if tableJSON, err = json.Marshal(table); err != nil {
			return err
		}
		tableBytes = int64(len(tableJSON))
	}

	// Gather payloads and chunk tables to the group aggregator.
	t0 := p.Now()
	chunks := e.aggComm.GathervBytes(stored, storedContent, 0)
	tchunks := e.aggComm.GathervBytes(tableBytes, tableJSON, 0)
	e.Timers.Gather += p.Now() - t0

	// Aggregator writes its subfile and completes the chunk tables.
	var myMD []chunkDesc
	var myMDBytes int64 // analytic size when tables are not materialized
	if e.isAgg {
		var total int64
		for _, c := range chunks {
			total += c.N
		}
		var off int64
		if loc, replacing := e.steps[e.curStep]; replacing && total <= loc.n {
			off = loc.off // overwrite the previous payload in place
		} else {
			off = e.dataFD.Size()
			e.steps[e.curStep] = stepLoc{off: off, n: total}
		}
		var payload []byte
		allContent := true
		for _, c := range chunks {
			if c.Data == nil && c.N > 0 {
				allContent = false
				break
			}
		}
		if allContent {
			payload = make([]byte, 0, total)
			for _, c := range chunks {
				payload = append(payload, c.Data...)
			}
		}
		tw0 := p.Now()
		if total > 0 {
			e.dataFD.Pwrite(p, off, total, payload)
		}
		e.Timers.Write += p.Now() - tw0

		// Complete chunk descriptors with subfile offsets: each rank's
		// blocks land back to back in gather order, and every table
		// entry already carries its exact stored length.
		cur := off
		for ri, c := range tchunks {
			if c.Data == nil {
				myMDBytes += c.N
				cur += chunks[ri].N
				continue
			}
			var tbl []chunkDesc
			if err := json.Unmarshal(c.Data, &tbl); err != nil {
				return fmt.Errorf("adios2: chunk table: %w", err)
			}
			for i := range tbl {
				tbl[i].Offset = cur
				cur += tbl[i].Len
			}
			myMD = append(myMD, tbl...)
		}
	}

	// Leaders forward their step metadata to world rank 0, which appends
	// the global metadata log and the step index.
	if e.isAgg {
		var mdJSON []byte
		mdBytes := myMDBytes
		if myMDBytes == 0 { // fully materialized tables
			var err error
			if mdJSON, err = json.Marshal(myMD); err != nil {
				return err
			}
			mdBytes = int64(len(mdJSON))
		}
		gathered := e.ldrComm.GathervBytes(mdBytes, mdJSON, 0)
		if comm.Rank() == 0 {
			tm0 := p.Now()
			var all []chunkDesc
			var analyticBytes int64
			content := true
			for _, g := range gathered {
				if g.Data == nil {
					analyticBytes += g.N
					content = false
					continue
				}
				var tbl []chunkDesc
				if err := json.Unmarshal(g.Data, &tbl); err != nil {
					return fmt.Errorf("adios2: md gather: %w", err)
				}
				all = append(all, tbl...)
			}
			mdOff := e.mdFD.Size()
			if content {
				rec := mdStepRecord{Step: e.curStep, Seq: e.stepSeq, Chunks: all}
				line, err := json.Marshal(rec)
				if err != nil {
					return err
				}
				line = append(line, '\n')
				e.mdFD.Write(p, int64(len(line)), line)
			} else {
				// Volume mode: charge the analytic metadata footprint,
				// which grows linearly with total rank count.
				e.mdFD.Write(p, analyticBytes, nil)
			}
			var idx [idxRecordBytes]byte
			putU64(idx[0:], uint64(e.curStep))
			putU64(idx[8:], uint64(mdOff))
			putU64(idx[16:], uint64(e.mdFD.Size()-mdOff))
			putU64(idx[24:], uint64(e.stepSeq))
			e.idxFD.Write(p, idxRecordBytes, idx[:])
			e.Timers.Meta += p.Now() - tm0
		}
	}

	// Burst staging: at step close, nudge the tier's drain scheduler so
	// buffered epoch data starts flowing to the PFS in the background. If
	// PFS durability was requested, the writers fsync first — on a staged
	// file that forces the drain and blocks until write-back completes,
	// so the step is PFS-durable before EndStep returns.
	if st, ok := e.h.Env.FS.(pfs.Stager); ok {
		if e.pfsDurable {
			if e.isAgg && e.dataFD != nil {
				e.dataFD.Fsync(p)
			}
			if comm.Rank() == 0 {
				e.mdFD.Fsync(p)
				e.idxFD.Fsync(p)
			}
		}
		st.DrainEpoch(p)
	}

	comm.Barrier()
	e.inStep = false
	e.curStep = -1
	e.stepSeq++
	e.puts = e.puts[:0]
	return nil
}

// mdStepRecord is one line of md.0.
type mdStepRecord struct {
	Step   int64       `json:"step"`
	Seq    int         `json:"seq"`
	Chunks []chunkDesc `json:"chunks"`
}

// Close flushes profiling output and closes all files. It is collective.
func (e *Engine) Close() error {
	if e.mode == ModeRead {
		return e.closeReader()
	}
	p, comm := e.h.Proc, e.h.Comm
	if e.profile {
		sum := profileSummary{
			Ranks:       comm.Size(),
			Aggregators: e.nAgg,
			Engine:      e.io.engine,
			Operator:    e.io.operator,
		}
		sum.Total.Memcpy = sim.Duration(comm.AllreduceF64(float64(e.Timers.Memcpy), "sum"))
		sum.Total.Compress = sim.Duration(comm.AllreduceF64(float64(e.Timers.Compress), "sum"))
		sum.Total.Gather = sim.Duration(comm.AllreduceF64(float64(e.Timers.Gather), "sum"))
		sum.Total.Write = sim.Duration(comm.AllreduceF64(float64(e.Timers.Write), "sum"))
		sum.Total.Meta = sim.Duration(comm.AllreduceF64(float64(e.Timers.Meta), "sum"))
		sum.Max.Memcpy = sim.Duration(comm.AllreduceF64(float64(e.Timers.Memcpy), "max"))
		sum.Max.Compress = sim.Duration(comm.AllreduceF64(float64(e.Timers.Compress), "max"))
		sum.Max.Gather = sim.Duration(comm.AllreduceF64(float64(e.Timers.Gather), "max"))
		sum.Max.Write = sim.Duration(comm.AllreduceF64(float64(e.Timers.Write), "max"))
		sum.Max.Meta = sim.Duration(comm.AllreduceF64(float64(e.Timers.Meta), "max"))
		if comm.Rank() == 0 {
			body, err := json.MarshalIndent(sum, "", "  ")
			if err != nil {
				return err
			}
			fd, err := e.h.Env.Create(p, pfs.Join(e.path, "profiling.json"))
			if err != nil {
				return err
			}
			fd.Write(p, int64(len(body)), body)
			fd.Close(p)
		}
	}
	if e.dataFD != nil {
		e.dataFD.Close(p)
	}
	if e.mdFD != nil {
		e.mdFD.Close(p)
		e.idxFD.Close(p)
	}
	comm.Barrier()
	return nil
}

// profileSummary is the schema of profiling.json.
type profileSummary struct {
	Ranks       int    `json:"ranks"`
	Aggregators int    `json:"aggregators"`
	Engine      string `json:"engine"`
	Operator    string `json:"operator,omitempty"`
	Total       Timers `json:"total"`
	Max         Timers `json:"max_rank"`
}

// ParseProfile decodes a profiling.json body.
func ParseProfile(body []byte) (ranks, aggregators int, total, max Timers, err error) {
	var s profileSummary
	if err = json.Unmarshal(body, &s); err != nil {
		return
	}
	return s.Ranks, s.Aggregators, s.Total, s.Max, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
