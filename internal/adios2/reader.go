package adios2

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"picmcio/internal/compress"
	"picmcio/internal/pfs"
)

func putF64(b []byte, f float64) { putU64(b, math.Float64bits(f)) }

// getF64 decodes a little-endian float64.
func getF64(b []byte) float64 { return math.Float64frombits(getU64(b)) }

// Float64sFromBytes decodes a packed little-endian float64 payload.
func Float64sFromBytes(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = getF64(b[8*i:])
	}
	return out
}

// VarInfo summarizes a variable visible in one step.
type VarInfo struct {
	Name   string
	Type   DType
	Shape  []uint64
	Chunks int
	Bytes  int64 // raw (uncompressed) bytes across chunks
}

// readerState holds the parsed metadata of an opened dataset.
type readerState struct {
	steps    []int64                 // unique step ids, in first-seen order
	bySteps  map[int64]*mdStepRecord // latest record per step id
	idxCount int
}

// openReader opens path for reading. Only the two metadata files are
// touched — the "rapid metadata extraction in BP4 format" the paper's
// abstract credits: listing steps and variables never reads data.N.
func openReader(io *IO, h Host, path string) (*Engine, error) {
	e := &Engine{io: io, h: h, path: pfs.Clean(path), mode: ModeRead, curStep: -1}
	p := h.Proc

	idxFD, err := h.Env.Open(p, pfs.Join(e.path, "md.idx"))
	if err != nil {
		return nil, fmt.Errorf("adios2: %s: %w", path, err)
	}
	idxRaw := idxFD.Pread(p, 0, idxFD.Size())
	idxFD.Close(p)
	if idxRaw == nil && idxFD.Size() > 0 {
		return nil, fmt.Errorf("adios2: %s: metadata was written in volume mode and cannot be read back", path)
	}

	mdFD, err := h.Env.Open(p, pfs.Join(e.path, "md.0"))
	if err != nil {
		return nil, fmt.Errorf("adios2: %s: %w", path, err)
	}
	rd := &readerState{bySteps: map[int64]*mdStepRecord{}}
	rd.idxCount = len(idxRaw) / idxRecordBytes
	for i := 0; i < rd.idxCount; i++ {
		rec := idxRaw[i*idxRecordBytes:]
		step := int64(getU64(rec[0:]))
		mdOff := int64(getU64(rec[8:]))
		mdLen := int64(getU64(rec[16:]))
		line := mdFD.Pread(p, mdOff, mdLen)
		if line == nil {
			mdFD.Close(p)
			return nil, fmt.Errorf("adios2: %s: md.0 region [%d,%d) unavailable", path, mdOff, mdOff+mdLen)
		}
		var sr mdStepRecord
		if err := json.Unmarshal([]byte(strings.TrimSpace(string(line))), &sr); err != nil {
			mdFD.Close(p)
			return nil, fmt.Errorf("adios2: %s: bad md.0 record: %w", path, err)
		}
		if _, seen := rd.bySteps[step]; !seen {
			rd.steps = append(rd.steps, step)
		}
		rd.bySteps[step] = &sr // later records replace earlier (checkpoint overwrite)
	}
	mdFD.Close(p)
	e.rd = rd
	return e, nil
}

func (e *Engine) closeReader() error { return nil }

// Steps lists the step ids present in the dataset.
func (e *Engine) Steps() ([]int64, error) {
	if e.mode != ModeRead {
		return nil, fmt.Errorf("adios2: Steps on write engine")
	}
	return append([]int64(nil), e.rd.steps...), nil
}

// VariablesAt lists the variables recorded in a step, sorted by name.
func (e *Engine) VariablesAt(step int64) ([]VarInfo, error) {
	if e.mode != ModeRead {
		return nil, fmt.Errorf("adios2: VariablesAt on write engine")
	}
	sr, ok := e.rd.bySteps[step]
	if !ok {
		return nil, fmt.Errorf("adios2: no step %d", step)
	}
	agg := map[string]*VarInfo{}
	for _, c := range sr.Chunks {
		vi := agg[c.Var]
		if vi == nil {
			vi = &VarInfo{Name: c.Var, Type: c.Type, Shape: append([]uint64(nil), c.Shape...)}
			agg[c.Var] = vi
		}
		vi.Chunks++
		vi.Bytes += c.RawLen
	}
	out := make([]VarInfo, 0, len(agg))
	for _, vi := range agg {
		out = append(out, *vi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Get reads and reassembles a 1-D variable's global array for a step,
// reading only the subfile regions that hold its chunks and decompressing
// them as needed. It returns the packed little-endian payload.
func (e *Engine) Get(step int64, name string) ([]byte, []uint64, error) {
	if e.mode != ModeRead {
		return nil, nil, fmt.Errorf("adios2: Get on write engine")
	}
	sr, ok := e.rd.bySteps[step]
	if !ok {
		return nil, nil, fmt.Errorf("adios2: no step %d", step)
	}
	var chunks []chunkDesc
	var shape []uint64
	var dtype DType
	for _, c := range sr.Chunks {
		if c.Var == name {
			chunks = append(chunks, c)
			shape = c.Shape
			dtype = c.Type
		}
	}
	if len(chunks) == 0 {
		return nil, nil, fmt.Errorf("adios2: no variable %q in step %d", name, step)
	}
	if len(shape) != 1 {
		return nil, nil, fmt.Errorf("adios2: Get supports 1-D variables, %q is %d-D", name, len(shape))
	}
	esz := dtype.Size()
	out := make([]byte, int64(shape[0])*esz)
	p := e.h.Proc

	// Group chunk reads by subfile to open each data.N once.
	bySub := map[int][]chunkDesc{}
	for _, c := range chunks {
		bySub[c.Subfile] = append(bySub[c.Subfile], c)
	}
	subs := make([]int, 0, len(bySub))
	for s := range bySub {
		subs = append(subs, s)
	}
	sort.Ints(subs)
	for _, s := range subs {
		fd, err := e.h.Env.Open(p, pfs.Join(e.path, fmt.Sprintf("data.%d", s)))
		if err != nil {
			return nil, nil, err
		}
		for _, c := range bySub[s] {
			raw := fd.Pread(p, c.Offset, c.Len)
			if raw == nil {
				fd.Close(p)
				return nil, nil, fmt.Errorf("adios2: data.%d region for %q unavailable (volume mode)", s, name)
			}
			if int64(len(raw)) < perPutHeaderBytes {
				fd.Close(p)
				return nil, nil, fmt.Errorf("adios2: chunk for %q too short", name)
			}
			body := raw[perPutHeaderBytes:]
			if c.Codec != "" && c.Codec != "none" {
				// The 64-byte header is stored raw; only the body is
				// compressed, one operator application per block.
				codec, err := compress.New(c.Codec, int(dtype.Size()))
				if err != nil {
					fd.Close(p)
					return nil, nil, err
				}
				dec, err := codec.Decompress(body)
				if err != nil {
					fd.Close(p)
					return nil, nil, fmt.Errorf("adios2: decompress %q: %w", name, err)
				}
				body = dec
			}
			if int64(len(body)) < c.RawLen {
				fd.Close(p)
				return nil, nil, fmt.Errorf("adios2: chunk for %q too short: %d < %d", name, len(body), c.RawLen)
			}
			dst := int64(c.Start[0]) * esz
			copy(out[dst:], body[:c.RawLen])
		}
		fd.Close(p)
	}
	return out, shape, nil
}
