package adios2

import (
	"testing"

	"picmcio/internal/mpisim"
	"picmcio/internal/sim"
)

// TestSSTProducerConsumer runs a 4-rank producer streaming steps to a
// single in-situ consumer through a depth-2 broker — the paper's
// future-work SST workflow.
func TestSSTProducerConsumer(t *testing.T) {
	k := sim.NewKernel()
	b := NewBroker(k, "pipeline", 2)

	prodWorld := mpisim.NewWorld(k, 4, mpisim.AlphaBeta(1e-6, 1.0/10e9))
	consWorld := mpisim.NewWorld(k, 1, nil)

	const steps = 5
	prodWorld.Spawn(func(r *mpisim.Rank) {
		io := New().DeclareIO("prod")
		w, err := io.OpenSSTWriter(Host{Proc: r.Proc, Comm: r.Comm}, b)
		if err != nil {
			t.Error(err)
			return
		}
		v, _ := io.DefineVariable("density", TypeFloat64,
			[]uint64{16}, []uint64{uint64(4 * r.ID)}, []uint64{4})
		for s := 0; s < steps; s++ {
			w.BeginStep(int64(s))
			vals := make([]float64, 4)
			for i := range vals {
				vals[i] = float64(s*100 + r.ID*10 + i)
			}
			buf := make([]byte, 32)
			for i, f := range vals {
				putF64(buf[8*i:], f)
			}
			if err := w.Put(v, buf); err != nil {
				t.Error(err)
				return
			}
			if err := w.EndStep(); err != nil {
				t.Error(err)
				return
			}
		}
		w.Close()
	})

	var got []int64
	var firstStepVal float64
	consWorld.Spawn(func(r *mpisim.Rank) {
		io := New().DeclareIO("cons")
		rd, err := io.OpenSSTReader(Host{Proc: r.Proc, Comm: r.Comm}, b)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			id, ok := rd.NextStep()
			if !ok {
				break
			}
			got = append(got, id)
			vars := rd.Variables()
			if len(vars) != 1 || vars[0].Name != "density" || vars[0].Chunks != 4 {
				t.Errorf("step %d vars=%+v", id, vars)
			}
			if blob, ok := rd.Get("density"); ok && id == 1 {
				firstStepVal = Float64sFromBytes(blob)[0]
			}
		}
	})
	k.Run()

	if len(got) != steps {
		t.Fatalf("consumer saw %d steps, want %d", len(got), steps)
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("steps out of order: %v", got)
		}
	}
	if firstStepVal != 100 { // step 1, rank 0, i=0
		t.Fatalf("step-1 payload=%v, want 100", firstStepVal)
	}
}

// TestSSTBackPressure: with a depth-1 broker and a slow consumer the
// producer must block rather than run ahead.
func TestSSTBackPressure(t *testing.T) {
	k := sim.NewKernel()
	b := NewBroker(k, "bp", 1)
	prod := mpisim.NewWorld(k, 1, nil)
	cons := mpisim.NewWorld(k, 1, nil)

	var prodDone sim.Time
	prod.Spawn(func(r *mpisim.Rank) {
		io := New().DeclareIO("p")
		w, _ := io.OpenSSTWriter(Host{Proc: r.Proc, Comm: r.Comm}, b)
		v, _ := io.DefineVariable("x", TypeFloat64, []uint64{1}, []uint64{0}, []uint64{1})
		for s := 0; s < 4; s++ {
			w.BeginStep(int64(s))
			w.Put(v, make([]byte, 8))
			w.EndStep()
		}
		w.Close()
		prodDone = r.Proc.Now()
	})
	cons.Spawn(func(r *mpisim.Rank) {
		io := New().DeclareIO("c")
		rd, _ := io.OpenSSTReader(Host{Proc: r.Proc, Comm: r.Comm}, b)
		for {
			if _, ok := rd.NextStep(); !ok {
				break
			}
			r.Proc.Sleep(1.0) // slow in-situ analysis
		}
	})
	k.Run()
	// Producer must have been throttled by the consumer's 1 s/step pace:
	// with queue depth 1 it cannot finish before ~2 steps are consumed.
	if prodDone < 1.0 {
		t.Fatalf("producer finished at %v, was not back-pressured", prodDone)
	}
	if b.QueueDepth() != 0 {
		t.Fatalf("queue not drained: %d", b.QueueDepth())
	}
}

func TestSSTValidation(t *testing.T) {
	k := sim.NewKernel()
	b := NewBroker(k, "v", 0) // capacity clamps to 1
	w := mpisim.NewWorld(k, 1, nil)
	w.Spawn(func(r *mpisim.Rank) {
		io := New().DeclareIO("p")
		wr, _ := io.OpenSSTWriter(Host{Proc: r.Proc, Comm: r.Comm}, b)
		v, _ := io.DefineVariable("x", TypeFloat64, []uint64{1}, []uint64{0}, []uint64{1})
		if err := wr.Put(v, make([]byte, 8)); err == nil {
			t.Error("Put outside step accepted")
		}
		wr.BeginStep(0)
		if err := wr.BeginStep(1); err == nil {
			t.Error("nested BeginStep accepted")
		}
		if err := wr.Put(v, make([]byte, 3)); err == nil {
			t.Error("short payload accepted")
		}
		wr.EndStep()
		if err := wr.EndStep(); err == nil {
			t.Error("EndStep outside step accepted")
		}
		wr.Close()
	})
	k.Run()
}
