package adios2

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// rig wires a kernel, a Lustre FS and an MPI world together.
type rig struct {
	k  *sim.Kernel
	fs *lustre.FS
	w  *mpisim.World
}

func newRig(ranks int) *rig {
	k := sim.NewKernel()
	return &rig{
		k:  k,
		fs: lustre.New(k, lustre.DefaultParams()),
		w:  mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(1e-6, 1.0/10e9)),
	}
}

func (rg *rig) host(r *mpisim.Rank) Host {
	return Host{
		Proc: r.Proc,
		Env:  &posix.Env{FS: rg.fs, Client: &pfs.Client{}, Rank: r.ID},
		Comm: r.Comm,
	}
}

// writeSeries writes nSteps steps of a float64 variable distributed over
// the ranks, with per-rank slabs of slab elements each.
func writeSeries(t *testing.T, rg *rig, path string, engineParams map[string]string, operator string, nSteps, slab int) {
	t.Helper()
	rg.w.Run(func(r *mpisim.Rank) {
		a := New()
		io := a.DeclareIO("out")
		for k, v := range engineParams {
			io.SetParameter(k, v)
		}
		if operator != "" {
			if err := io.AddOperation(operator); err != nil {
				t.Error(err)
				return
			}
		}
		total := uint64(slab * r.Comm.Size())
		v, err := io.DefineVariable("e/position", TypeFloat64,
			[]uint64{total}, []uint64{uint64(slab * r.ID)}, []uint64{uint64(slab)})
		if err != nil {
			t.Error(err)
			return
		}
		e, err := io.Open(rg.host(r), path, ModeWrite)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < nSteps; s++ {
			if err := e.BeginStep(int64(s)); err != nil {
				t.Error(err)
				return
			}
			vals := make([]float64, slab)
			for i := range vals {
				vals[i] = float64(r.ID*1000 + s*100 + i)
			}
			if err := e.PutFloat64s(v, vals); err != nil {
				t.Error(err)
				return
			}
			if err := e.EndStep(); err != nil {
				t.Error(err)
				return
			}
		}
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	})
}

func listFiles(rg *rig, dir string) []string {
	var out []string
	rg.fs.Namespace().WalkFiles(dir, func(p string, n *pfs.Node) { out = append(out, p) })
	return out
}

func TestBP4DirectoryLayout(t *testing.T) {
	rg := newRig(8)
	writeSeries(t, rg, "/io/run.bp4", map[string]string{"NumAggregators": "2"}, "", 3, 16)
	files := listFiles(rg, "/io/run.bp4")
	want := map[string]bool{
		"/io/run.bp4/data.0": true, "/io/run.bp4/data.4": true,
		"/io/run.bp4/md.0": true, "/io/run.bp4/md.idx": true,
		"/io/run.bp4/profiling.json": true,
	}
	// Subfile names are data.<color>; with 8 ranks and 2 aggregators the
	// colors are 0 and 1 (rank*A/size).
	_ = want
	var names []string
	for _, f := range files {
		names = append(names, f)
	}
	joined := strings.Join(names, ",")
	for _, base := range []string{"md.0", "md.idx", "profiling.json"} {
		if !strings.Contains(joined, base) {
			t.Errorf("missing %s in %v", base, names)
		}
	}
	nData := 0
	for _, f := range files {
		if strings.Contains(f, "/data.") {
			nData++
		}
	}
	if nData != 2 {
		t.Errorf("data subfiles=%d, want 2 (files: %v)", nData, names)
	}
	if len(files) != 5 {
		t.Errorf("total files=%d, want 5: %v", len(files), names)
	}
}

func TestAggregatorCountRespected(t *testing.T) {
	for _, nAgg := range []int{1, 2, 4, 8} {
		rg := newRig(8)
		path := fmt.Sprintf("/io/a%d.bp4", nAgg)
		writeSeries(t, rg, path, map[string]string{"NumAggregators": fmt.Sprint(nAgg)}, "", 1, 8)
		nData := 0
		for _, f := range listFiles(rg, path) {
			if strings.Contains(f, "/data.") {
				nData++
			}
		}
		if nData != nAgg {
			t.Errorf("NumAggregators=%d produced %d subfiles", nAgg, nData)
		}
	}
}

func TestAggregatorClamped(t *testing.T) {
	rg := newRig(4)
	writeSeries(t, rg, "/io/c.bp4", map[string]string{"NumAggregators": "100"}, "", 1, 4)
	nData := 0
	for _, f := range listFiles(rg, "/io/c.bp4") {
		if strings.Contains(f, "/data.") {
			nData++
		}
	}
	if nData != 4 {
		t.Errorf("clamp failed: %d subfiles for 4 ranks", nData)
	}
}

func TestReadBackRoundTrip(t *testing.T) {
	rg := newRig(4)
	writeSeries(t, rg, "/io/rt.bp4", map[string]string{"NumAggregators": "2"}, "", 2, 8)
	// Read back from a fresh single-rank world on the same FS.
	k2 := rg.k
	w2 := mpisim.NewWorld(k2, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		a := New()
		io := a.DeclareIO("in")
		h := Host{Proc: r.Proc, Env: &posix.Env{FS: rg.fs, Client: &pfs.Client{}}, Comm: r.Comm}
		e, err := io.Open(h, "/io/rt.bp4", ModeRead)
		if err != nil {
			t.Error(err)
			return
		}
		steps, _ := e.Steps()
		if len(steps) != 2 {
			t.Errorf("steps=%v", steps)
			return
		}
		vars, err := e.VariablesAt(1)
		if err != nil {
			t.Error(err)
			return
		}
		if len(vars) != 1 || vars[0].Name != "e/position" || vars[0].Chunks != 4 {
			t.Errorf("vars=%+v", vars)
		}
		raw, shape, err := e.Get(1, "e/position")
		if err != nil {
			t.Error(err)
			return
		}
		if shape[0] != 32 {
			t.Errorf("shape=%v", shape)
		}
		vals := Float64sFromBytes(raw)
		for rank := 0; rank < 4; rank++ {
			for i := 0; i < 8; i++ {
				want := float64(rank*1000 + 100 + i)
				if got := vals[rank*8+i]; got != want {
					t.Errorf("vals[%d]=%v, want %v", rank*8+i, got, want)
					return
				}
			}
		}
		e.Close()
	})
}

func TestCompressionRoundTrip(t *testing.T) {
	for _, codec := range []string{"blosc", "bzip2"} {
		rg := newRig(4)
		path := "/io/" + codec + ".bp4"
		writeSeries(t, rg, path, map[string]string{"NumAggregators": "1"}, codec, 1, 32)
		w2 := mpisim.NewWorld(rg.k, 1, nil)
		w2.Run(func(r *mpisim.Rank) {
			a := New()
			h := Host{Proc: r.Proc, Env: &posix.Env{FS: rg.fs, Client: &pfs.Client{}}, Comm: r.Comm}
			e, err := a.DeclareIO("in").Open(h, path, ModeRead)
			if err != nil {
				t.Error(err)
				return
			}
			raw, _, err := e.Get(0, "e/position")
			if err != nil {
				t.Errorf("%s: %v", codec, err)
				return
			}
			vals := Float64sFromBytes(raw)
			if vals[33] != float64(1000+1) { // rank 1, i=1
				t.Errorf("%s: vals[33]=%v", codec, vals[33])
			}
			e.Close()
		})
	}
}

func TestStepReplaceOverwritesInPlace(t *testing.T) {
	// Writing the same step id repeatedly (checkpoint pattern) must not
	// grow the subfile.
	rg := newRig(2)
	var sizeAfter2, sizeAfter5 int64
	rg.w.Run(func(r *mpisim.Rank) {
		a := New()
		io := a.DeclareIO("ck")
		io.SetParameter("NumAggregators", "1")
		io.SetParameter("Profile", "off")
		v, _ := io.DefineVariable("state", TypeFloat64,
			[]uint64{64}, []uint64{uint64(32 * r.ID)}, []uint64{32})
		e, err := io.Open(rg.host(r), "/ck.bp4", ModeWrite)
		if err != nil {
			t.Error(err)
			return
		}
		vals := make([]float64, 32)
		for rep := 0; rep < 5; rep++ {
			e.BeginStep(0)
			e.PutFloat64s(v, vals)
			e.EndStep()
			if rep == 1 && r.ID == 0 {
				fi, _ := rg.host(r).Env.Stat(r.Proc, "/ck.bp4/data.0")
				sizeAfter2 = fi.Size
			}
		}
		if r.ID == 0 {
			fi, _ := rg.host(r).Env.Stat(r.Proc, "/ck.bp4/data.0")
			sizeAfter5 = fi.Size
		}
		e.Close()
	})
	if sizeAfter5 != sizeAfter2 || sizeAfter5 == 0 {
		t.Fatalf("checkpoint overwrite grew subfile: after2=%d after5=%d", sizeAfter2, sizeAfter5)
	}
}

func TestMemcpyVanishesWithOperator(t *testing.T) {
	// Fig. 8: without compression the engine pays memcpy; with Blosc the
	// payload goes straight into the compressor.
	run := func(op string) Timers {
		rg := newRig(4)
		writeSeries(t, rg, "/io/m.bp4", map[string]string{"NumAggregators": "1"}, op, 2, 1024)
		var tm Timers
		w2 := mpisim.NewWorld(rg.k, 1, nil)
		w2.Run(func(r *mpisim.Rank) {
			env := &posix.Env{FS: rg.fs, Client: &pfs.Client{}}
			fd, err := env.Open(r.Proc, "/io/m.bp4/profiling.json")
			if err != nil {
				t.Error(err)
				return
			}
			body := fd.Pread(r.Proc, 0, fd.Size())
			fd.Close(r.Proc)
			_, _, total, _, err := ParseProfile(body)
			if err != nil {
				t.Error(err)
				return
			}
			tm = total
		})
		return tm
	}
	plain := run("")
	blosc := run("blosc")
	if plain.Memcpy <= 0 {
		t.Fatalf("uncompressed run has no memcpy time: %+v", plain)
	}
	if blosc.Memcpy != 0 {
		t.Fatalf("blosc run still pays memcpy: %+v", blosc)
	}
	if blosc.Compress <= 0 {
		t.Fatalf("blosc run has no compress time: %+v", blosc)
	}
}

func TestVolumeModePayloads(t *testing.T) {
	// Volume-mode puts write no content but still produce correctly sized
	// subfiles and metadata.
	rg := newRig(8)
	rg.w.Run(func(r *mpisim.Rank) {
		a := New()
		io := a.DeclareIO("vol")
		io.SetParameter("NumAggregators", "2")
		io.SetParameter("Profile", "off")
		v, _ := io.DefineVariable("big", TypeFloat64,
			[]uint64{1 << 20}, []uint64{uint64(r.ID) << 17}, []uint64{1 << 17})
		e, err := io.Open(rg.host(r), "/vol.bp4", ModeWrite)
		if err != nil {
			t.Error(err)
			return
		}
		e.BeginStep(0)
		if err := e.Put(v, nil); err != nil {
			t.Error(err)
		}
		e.EndStep()
		e.Close()
	})
	var dataBytes int64
	for _, f := range listFiles(rg, "/vol.bp4") {
		n, _ := rg.fs.Namespace().Lookup(f)
		if strings.Contains(f, "data.") {
			dataBytes += n.Size
		}
	}
	want := int64(8)*(1<<17)*8 + 8*perPutHeaderBytes
	if dataBytes != want {
		t.Fatalf("volume data bytes=%d, want %d", dataBytes, want)
	}
}

func TestPutValidation(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		a := New()
		io := a.DeclareIO("x")
		io.SetParameter("Profile", "off")
		v, _ := io.DefineVariable("v", TypeFloat64, []uint64{4}, []uint64{0}, []uint64{4})
		e, _ := io.Open(rg.host(r), "/x.bp4", ModeWrite)
		if err := e.Put(v, nil); err == nil {
			t.Error("Put outside step accepted")
		}
		e.BeginStep(0)
		if err := e.BeginStep(1); err == nil {
			t.Error("nested BeginStep accepted")
		}
		if err := e.Put(v, []byte{1, 2, 3}); err == nil {
			t.Error("mis-sized payload accepted")
		}
		e.EndStep()
		if err := e.EndStep(); err == nil {
			t.Error("EndStep outside step accepted")
		}
		e.Close()
	})
}

func TestEngineSelection(t *testing.T) {
	io := New().DeclareIO("t")
	if err := io.SetEngine("BP4"); err != nil {
		t.Fatal(err)
	}
	if err := io.SetEngine("BP5"); err != nil {
		t.Fatal(err)
	}
	if err := io.SetEngine("HDF5"); err == nil {
		t.Fatal("HDF5 accepted (not implemented)")
	}
}

func TestBP5HasSecondMetadataFile(t *testing.T) {
	rg := newRig(2)
	rg.w.Run(func(r *mpisim.Rank) {
		a := New()
		io := a.DeclareIO("bp5")
		io.SetEngine("BP5")
		io.SetParameter("NumAggregators", "1")
		io.SetParameter("Profile", "off")
		v, _ := io.DefineVariable("v", TypeFloat64, []uint64{8}, []uint64{uint64(4 * r.ID)}, []uint64{4})
		e, err := io.Open(rg.host(r), "/b5.bp5", ModeWrite)
		if err != nil {
			t.Error(err)
			return
		}
		e.BeginStep(0)
		e.PutFloat64s(v, make([]float64, 4))
		e.EndStep()
		e.Close()
	})
	joined := strings.Join(listFiles(rg, "/b5.bp5"), ",")
	if !strings.Contains(joined, "mmd.0") {
		t.Fatalf("BP5 dir missing mmd.0: %s", joined)
	}
}

func TestReaderRejectsMissingDataset(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		a := New()
		_, err := a.DeclareIO("in").Open(rg.host(r), "/does-not-exist.bp4", ModeRead)
		if err == nil {
			t.Error("opened missing dataset")
		}
	})
}

func TestFloat64Bytes(t *testing.T) {
	vals := []float64{0, 1.5, -3.25, 1e300}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putF64(buf[8*i:], v)
	}
	got := Float64sFromBytes(buf)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("round trip %v -> %v", vals[i], got[i])
		}
	}
	if !bytes.Equal(buf[:8], make([]byte, 8)) {
		t.Fatal("zero must encode as zero bytes")
	}
}

func TestProfilingJSONSchema(t *testing.T) {
	rg := newRig(2)
	writeSeries(t, rg, "/p.bp4", map[string]string{"NumAggregators": "1"}, "", 1, 8)
	n, err := rg.fs.Namespace().Lookup("/p.bp4/profiling.json")
	if err != nil {
		t.Fatal(err)
	}
	ranks, aggs, total, max, err := ParseProfile(n.Content)
	if err != nil {
		t.Fatal(err)
	}
	if ranks != 2 || aggs != 1 {
		t.Fatalf("ranks=%d aggs=%d", ranks, aggs)
	}
	if total.Write <= 0 || max.Write <= 0 {
		t.Fatalf("timers: total=%+v max=%+v", total, max)
	}
}
