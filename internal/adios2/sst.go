package adios2

import (
	"encoding/json"
	"fmt"

	"picmcio/internal/sim"
)

// The SST (Sustainable Staging Transport) engine is the paper's named
// future-work item: it connects data producers and consumers directly via
// the ADIOS2 write/read APIs, moving data between processes for in-situ
// processing, analysis and visualization — no files touch the file system.
//
// The simulated SST engine stages steps in a Broker: the producer's
// EndStep publishes a step (charging network transfer time through the
// producer world's cost model), and the consumer's NextStep blocks in
// virtual time until a step is available. Back-pressure is modelled with
// a bounded queue: producers block when the consumer falls behind.

// Broker is the rendezvous point between one producer group and any
// number of consumers. Create one per stream and share it between the
// producing and consuming worlds on the same kernel.
type Broker struct {
	k        *sim.Kernel
	name     string
	capacity int // queued steps before the producer blocks

	queue    []*stagedStep
	waitingC []*sim.Proc // consumers parked waiting for data
	waitingP []*sim.Proc // producers parked on back-pressure
	closed   bool
}

// stagedStep is one published step.
type stagedStep struct {
	id     int64
	chunks []chunkDesc
	blobs  map[string][]byte // varName -> payload (content mode)
	bytes  int64
}

// NewBroker creates an SST stream rendezvous with the given queue depth
// (ADIOS2's QueueLimit; 1 reproduces fully synchronous staging).
func NewBroker(k *sim.Kernel, name string, capacity int) *Broker {
	if capacity < 1 {
		capacity = 1
	}
	return &Broker{k: k, name: name, capacity: capacity}
}

// SSTWriter publishes steps to a broker.
type SSTWriter struct {
	io     *IO
	h      Host
	b      *Broker
	inStep bool
	cur    *stagedStep
}

// OpenSSTWriter opens the producer side. Rank 0 of the communicator
// gathers each step and publishes it (as the real SST writer-side
// aggregates metadata); all ranks participate collectively.
func (io *IO) OpenSSTWriter(h Host, b *Broker) (*SSTWriter, error) {
	if h.Proc == nil || h.Comm == nil {
		return nil, fmt.Errorf("adios2: incomplete host")
	}
	return &SSTWriter{io: io, h: h, b: b}, nil
}

// BeginStep starts a new staged step.
func (w *SSTWriter) BeginStep(id int64) error {
	if w.inStep {
		return fmt.Errorf("adios2: sst nested BeginStep")
	}
	w.inStep = true
	w.cur = &stagedStep{id: id, blobs: map[string][]byte{}}
	return nil
}

// Put stages a variable chunk for the current step.
func (w *SSTWriter) Put(v *Variable, data []byte) error {
	if !w.inStep {
		return fmt.Errorf("adios2: sst Put outside step")
	}
	n := v.SelectionBytes()
	if data != nil && int64(len(data)) != n {
		return fmt.Errorf("adios2: sst %q payload size mismatch", v.Name)
	}
	w.cur.chunks = append(w.cur.chunks, chunkDesc{
		Var: v.Name, Type: v.Type, Shape: append([]uint64(nil), v.Shape...),
		Start: append([]uint64(nil), v.start...), Count: append([]uint64(nil), v.count...),
		RawLen: n,
	})
	w.cur.bytes += n
	if data != nil {
		w.cur.blobs[v.Name] = append(w.cur.blobs[v.Name], data...)
	}
	return nil
}

// EndStep gathers the step to rank 0 and publishes it to the broker,
// blocking on back-pressure when the queue is full. Collective.
func (w *SSTWriter) EndStep() error {
	if !w.inStep {
		return fmt.Errorf("adios2: sst EndStep outside step")
	}
	w.inStep = false
	p, comm := w.h.Proc, w.h.Comm

	// Gather the chunk tables and payloads to rank 0 — the writer-side
	// aggregation of the streaming transfer. Tables travel as JSON; the
	// payload cost model charges for the staged bytes.
	tableJSON, err := json.Marshal(w.cur.chunks)
	if err != nil {
		return err
	}
	tchunks := comm.GathervBytes(int64(len(tableJSON)), tableJSON, 0)
	// One gather per variable keeps payload reassembly simple; SST steps
	// typically carry a handful of variables.
	names := make([]string, 0, len(w.cur.chunks))
	seen := map[string]bool{}
	for _, c := range w.cur.chunks {
		if !seen[c.Var] {
			seen[c.Var] = true
			names = append(names, c.Var)
		}
	}
	merged := map[string][]byte{}
	var totalBytes int64
	for _, name := range names {
		blob := w.cur.blobs[name]
		var n int64
		for _, c := range w.cur.chunks {
			if c.Var == name {
				n += c.RawLen
			}
		}
		got := comm.GathervBytes(n, blob, 0)
		if comm.Rank() == 0 {
			var all []byte
			content := true
			for _, g := range got {
				totalBytes += g.N
				if g.Data == nil && g.N > 0 {
					content = false
					continue
				}
				all = append(all, g.Data...)
			}
			if content {
				merged[name] = all
			}
		}
	}
	if comm.Rank() == 0 {
		step := &stagedStep{id: w.cur.id, blobs: merged, bytes: totalBytes}
		for _, g := range tchunks {
			if g.Data == nil {
				continue
			}
			var tbl []chunkDesc
			if err := json.Unmarshal(g.Data, &tbl); err != nil {
				return err
			}
			step.chunks = append(step.chunks, tbl...)
		}
		for len(w.b.queue) >= w.b.capacity && !w.b.closed {
			w.b.waitingP = append(w.b.waitingP, p)
			p.Park()
		}
		w.b.queue = append(w.b.queue, step)
		for _, c := range w.b.waitingC {
			w.b.k.Wake(c)
		}
		w.b.waitingC = nil
	}
	comm.Barrier()
	w.cur = nil
	return nil
}

// Close marks the stream finished, releasing blocked consumers.
func (w *SSTWriter) Close() error {
	if w.h.Comm.Rank() == 0 {
		w.b.closed = true
		for _, c := range w.b.waitingC {
			w.b.k.Wake(c)
		}
		w.b.waitingC = nil
	}
	w.h.Comm.Barrier()
	return nil
}

// SSTReader consumes steps from a broker.
type SSTReader struct {
	h   Host
	b   *Broker
	cur *stagedStep
}

// OpenSSTReader opens the consumer side.
func (io *IO) OpenSSTReader(h Host, b *Broker) (*SSTReader, error) {
	if h.Proc == nil {
		return nil, fmt.Errorf("adios2: incomplete host")
	}
	return &SSTReader{h: h, b: b}, nil
}

// NextStep blocks in virtual time until a staged step is available and
// returns its id; ok is false once the stream is closed and drained.
func (r *SSTReader) NextStep() (id int64, ok bool) {
	p := r.h.Proc
	for len(r.b.queue) == 0 {
		if r.b.closed {
			return 0, false
		}
		r.b.waitingC = append(r.b.waitingC, p)
		p.Park()
	}
	r.cur = r.b.queue[0]
	r.b.queue = r.b.queue[1:]
	// Consuming frees a slot: release one blocked producer.
	if len(r.b.waitingP) > 0 {
		r.b.k.Wake(r.b.waitingP[0])
		r.b.waitingP = r.b.waitingP[1:]
	}
	// Receiving the step costs transfer time on the consumer side.
	p.Sleep(sim.Duration(float64(r.cur.bytes) / 10e9))
	return r.cur.id, true
}

// Variables lists the variables of the current step.
func (r *SSTReader) Variables() []VarInfo {
	if r.cur == nil {
		return nil
	}
	agg := map[string]*VarInfo{}
	var order []string
	for _, c := range r.cur.chunks {
		vi := agg[c.Var]
		if vi == nil {
			vi = &VarInfo{Name: c.Var, Type: c.Type, Shape: c.Shape}
			agg[c.Var] = vi
			order = append(order, c.Var)
		}
		vi.Chunks++
		vi.Bytes += c.RawLen
	}
	out := make([]VarInfo, 0, len(order))
	for _, n := range order {
		out = append(out, *agg[n])
	}
	return out
}

// Get returns the current step's payload for a variable (content mode
// producers only).
func (r *SSTReader) Get(name string) ([]byte, bool) {
	if r.cur == nil {
		return nil, false
	}
	b, ok := r.cur.blobs[name]
	return b, ok
}

// QueueDepth reports the broker's current staged-step count.
func (b *Broker) QueueDepth() int { return len(b.queue) }
