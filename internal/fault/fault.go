// Package fault injects node failures into simulated runs and computes
// what a restart loses at each durability level of the burst-buffer
// staging tier.
//
// Checkpointing only matters under failure: the staging tier (see
// internal/burst) makes checkpoints cheap by returning at *buffered*
// durability — data on node-local NVMe — while write-back to the parallel
// file system proceeds in the background. A node failure is exactly the
// event that separates the two levels. What a restart can recover from
// depends on the NVMe-survivability model:
//
//   - SurviveNone: the node takes its NVMe with it (on-board drive, node
//     replaced). Staged-only bytes are destroyed; the job restarts from
//     the last checkpoint that is fully PFS-durable.
//   - SurviveNVMe: the staged state outlives the node (fabric-attached
//     enclosure, or a reboot that keeps the drive). The job restarts from
//     the last *buffered* checkpoint, but the surviving staged bytes must
//     still be written back — the redrain cost — re-contending drain
//     bandwidth with every co-scheduled neighbour.
//
// The package provides the ledger that maps a kill time onto "last
// restartable epoch" at each level (Ledger, Assess), and the injector
// that orchestrates a kill inside a running simulation (Arm): kill the
// victim processes via the kernel's abort primitive, crash their nodes'
// buffers per the survivability model, wait out the restart delay, and
// hand control back to the caller's restart path. internal/jobs threads
// Spec through co-schedules so a victim job restarts while its neighbours
// keep running.
package fault

import (
	"fmt"
	"math"

	"picmcio/internal/burst"
	"picmcio/internal/sim"
	"picmcio/internal/xrand"
)

// Survivability models what happens to a node's staged NVMe state when
// the node fails.
type Survivability int

const (
	// SurviveNone: node loss destroys the node-local buffer; staged-only
	// bytes are gone and restart falls back to PFS-durable state.
	SurviveNone Survivability = iota
	// SurviveNVMe: the staged state outlives the node and is written back
	// (redrained) during recovery; restart resumes from buffered state.
	SurviveNVMe
)

// String implements fmt.Stringer.
func (s Survivability) String() string {
	switch s {
	case SurviveNone:
		return "none"
	case SurviveNVMe:
		return "nvme"
	}
	return fmt.Sprintf("Survivability(%d)", int(s))
}

// Prob is the survivability model as a probability that staged state
// outlives a node failure — the weight the checkpoint-interval
// optimizer (internal/ckptopt) applies to the buffered restart path.
// The enum models the two physical designs exactly, so the
// probabilities are the endpoints; a mixed fleet would interpolate.
func (s Survivability) Prob() float64 {
	if s == SurviveNVMe {
		return 1
	}
	return 0
}

// ParseSurvivability maps a configuration string to a Survivability.
func ParseSurvivability(s string) (Survivability, error) {
	switch s {
	case "none", "node-loss":
		return SurviveNone, nil
	case "nvme", "nvme-survives":
		return SurviveNVMe, nil
	}
	return 0, fmt.Errorf("fault: unknown survivability model %q", s)
}

// Spec configures one injected failure inside a job's epoch schedule.
type Spec struct {
	// KillEpoch is the epoch (0-based) during whose compute phase the
	// victim dies: its writes for that epoch have returned at buffered
	// durability, write-back may or may not have caught up — the window
	// where the two durability levels diverge.
	KillEpoch int
	// KillFrac places the kill within the epoch's compute phase, as a
	// fraction in [0, 1).
	KillFrac float64
	// Node is the victim node (job-relative). Ignored when WholeJob.
	Node int
	// WholeJob kills every node of the job at once — the co-schedule-wide
	// failure where the whole allocation restarts together.
	WholeJob bool
	// Survival selects the NVMe-survivability model.
	Survival Survivability
	// RestartDelay is the reboot/reschedule time before recovery begins.
	RestartDelay sim.Duration
}

// Validate checks the spec against a job's shape.
func (s Spec) Validate(nodes, epochs int) error {
	if s.KillEpoch < 0 || s.KillEpoch >= epochs {
		return fmt.Errorf("fault: kill epoch %d outside schedule of %d epoch(s)", s.KillEpoch, epochs)
	}
	if s.KillFrac < 0 || s.KillFrac >= 1 {
		return fmt.Errorf("fault: kill fraction %v outside [0, 1)", s.KillFrac)
	}
	if !s.WholeJob && (s.Node < 0 || s.Node >= nodes) {
		return fmt.Errorf("fault: victim node %d outside job of %d node(s)", s.Node, nodes)
	}
	if s.RestartDelay < 0 {
		return fmt.Errorf("fault: negative restart delay %v", s.RestartDelay)
	}
	return nil
}

// Ledger records, per epoch, when the epoch's output became fully
// buffered-durable and the cumulative staged bytes per node it ends at —
// for a uniform per-node output pattern, the two numbers that map a kill
// time plus a node's drained-byte counter back onto "last restartable
// epoch" at each durability level.
type Ledger struct {
	bufferedAt []sim.Time // epoch i: every node's writes returned
	cumPerNode []int64    // epoch i: cumulative staged bytes per node
}

// Mark records the completion of the next epoch: at time now, every node
// has buffered its writes, ending at cum cumulative staged bytes per node.
func (l *Ledger) Mark(now sim.Time, cum int64) {
	l.bufferedAt = append(l.bufferedAt, now)
	l.cumPerNode = append(l.cumPerNode, cum)
}

// UniformLedger builds the ledger of an epoch-uniform checkpoint
// schedule: epochs checkpoints buffered at start + k·perEpoch
// (k = 1..epochs), each ending at cumBase+k cumulative units per node.
// This is the nominal schedule the batch scheduler (internal/sched)
// reconstructs for queued jobs — their epoch structure is priced, not
// replayed event-by-event, so the kill-time→restartable-epoch mapping
// uses the same Ledger the event-level injector fills, just with
// uniformly spaced marks.
func UniformLedger(epochs int, start, perEpoch sim.Duration, cumBase int64) *Ledger {
	l := &Ledger{}
	for k := 1; k <= epochs; k++ {
		l.Mark(start+sim.Duration(k)*perEpoch, cumBase+int64(k))
	}
	return l
}

// Epochs reports how many epochs have been marked.
func (l *Ledger) Epochs() int { return len(l.bufferedAt) }

// BufferedEpochs reports how many epochs were fully buffered-durable by
// time t — the restart position when staged state survives the failure.
func (l *Ledger) BufferedEpochs(t sim.Time) int {
	n := 0
	for _, at := range l.bufferedAt {
		if at <= t {
			n++
		}
	}
	return n
}

// DurableEpochs reports how many epochs are fully PFS-durable given the
// minimum per-node drained-byte counter across the restarting nodes — the
// restart position when the failure destroys staged state. A drained
// value of -1 means "everything staged has been written back" (a job with
// no staging tier is always fully durable).
func (l *Ledger) DurableEpochs(drained int64) int {
	if drained < 0 {
		return len(l.cumPerNode)
	}
	n := 0
	for _, cum := range l.cumPerNode {
		if cum <= drained {
			n++
		}
	}
	return n
}

// Report is what one injected failure cost.
type Report struct {
	Spec     Spec
	KillTime sim.Time

	// Recovery positions at the two durability levels, in epochs: how far
	// back a restart reaches with NVMe-surviving staged state vs from the
	// parallel file system alone.
	BufferedEpochs int
	DurableEpochs  int
	// RestartEpoch is where the victim actually resumed: BufferedEpochs
	// under SurviveNVMe, DurableEpochs under SurviveNone.
	RestartEpoch int

	// Lost work in whole epochs at each level. The kill epoch's partially
	// computed phase is lost at every level and not counted here — the
	// restart re-executes it before writing its first checkpoint.
	LostEpochsBuffered int // epochs to redo restarting from buffered state
	LostEpochsPFS      int // epochs to redo restarting from PFS-durable state

	LostBytes    int64 // staged-only bytes destroyed with the node(s)
	RedrainBytes int64 // surviving staged bytes still owed to the PFS
	// ReplayedBytes is the rewrite traffic recovery re-issues: the bytes
	// of already-checkpointed epochs (RestartEpoch through the kill
	// epoch) the restarting nodes write again. The caller that knows the
	// workload's byte layout fills it in; jobs.Result.BytesWritten
	// deliberately excludes it so faulted and clean runs report the same
	// logical output.
	ReplayedBytes int64
}

// Assess computes the recovery position for a failure at time t during
// epoch killEpoch, given the run's ledger and the minimum drained-byte
// counter across the restarting nodes (-1 for a job with no staging
// tier). It fills every Report field the crash itself does not determine.
func Assess(spec Spec, l *Ledger, t sim.Time, drained int64) *Report {
	attempted := spec.KillEpoch + 1 // epochs whose writes were issued by the kill
	r := &Report{
		Spec:           spec,
		KillTime:       t,
		BufferedEpochs: l.BufferedEpochs(t),
		DurableEpochs:  l.DurableEpochs(drained),
	}
	if r.DurableEpochs > r.BufferedEpochs {
		// Fallback writes can make bytes PFS-durable before the epoch's
		// buffered mark lands; durability never exceeds what was written.
		r.DurableEpochs = r.BufferedEpochs
	}
	r.LostEpochsBuffered = attempted - r.BufferedEpochs
	r.LostEpochsPFS = attempted - r.DurableEpochs
	r.RestartEpoch = r.DurableEpochs
	if spec.Survival == SurviveNVMe {
		r.RestartEpoch = r.BufferedEpochs
	}
	return r
}

// Victim is one process/node pair an injection kills.
type Victim struct {
	Proc *sim.Proc
	Node int // tier-level node id (the pfs.Client node)
}

// Injector carries an armed injection's outcome.
type Injector struct {
	// Report is filled at kill time; nil until the injection fires.
	Report *Report
}

// Arm schedules an injection on kernel k: at virtual time at, kill every
// victim process, crash each victim node's buffer per the survivability
// model (tier may be nil for a direct-to-PFS job), assess the recovery
// position from the ledger, wait out the restart delay, and call restart
// with the epoch the victims resume from. The victims are the restarting
// set: the durable position is the minimum over their drained counters,
// since the restart needs its checkpoint back on every restarting node
// (surviving nodes keep their staged state and need no rollback). The
// caller's restart func runs inside the injection process and typically
// respawns the victims' writers. Killing a victim that already finished
// is a no-op (sim.Kernel.Kill on a done process), so a restart callback
// should respawn only processes whose Killed() reports true — a victim
// that completed before the kill fired needs no recovery, and its node's
// Crash finds nothing staged (a finished writer drained before exiting).
func Arm(k *sim.Kernel, at sim.Time, spec Spec, victims []Victim, tier *burst.Tier,
	led *Ledger, restart func(p *sim.Proc, fromEpoch int)) *Injector {
	return ArmWith(k, at, spec, victims, tier, led, nil, restart)
}

// ArmWith is Arm with an explicit durable-position probe: drained is
// sampled at kill time (before the crash destroys staged state) and fed
// to Assess in place of the default minimum over the victims'
// drained-byte counters. Callers whose staged output is not uniform
// across nodes — aggregating workloads whose ledger counts epochs
// rather than bytes — supply a closure that reports the position in the
// ledger's own units; nil keeps the default.
func ArmWith(k *sim.Kernel, at sim.Time, spec Spec, victims []Victim, tier *burst.Tier,
	led *Ledger, drainedFn func() int64, restart func(p *sim.Proc, fromEpoch int)) *Injector {
	inj := &Injector{}
	k.SpawnAt(at, "fault.inject", func(p *sim.Proc) {
		drained := int64(-1)
		switch {
		case drainedFn != nil:
			drained = drainedFn()
		case tier != nil:
			drained = math.MaxInt64
			for _, v := range victims {
				if d := tier.NodeStats(v.Node).DrainedBytes; d < drained {
					drained = d
				}
			}
		}
		rep := Assess(spec, led, p.Now(), drained)
		for _, v := range victims {
			k.Kill(v.Proc)
		}
		if tier != nil {
			for _, v := range victims {
				cr := tier.Crash(p, v.Node, spec.Survival == SurviveNVMe)
				rep.LostBytes += cr.LostBytes
				rep.RedrainBytes += cr.SurvivingBytes
			}
		}
		inj.Report = rep
		if spec.RestartDelay > 0 {
			p.Sleep(spec.RestartDelay)
		}
		restart(p, rep.RestartEpoch)
	})
	return inj
}

// ExpectedFailures converts a per-node mean time between failures into
// the expected number of node failures across a run: node-hours divided
// by the MTBF (failures as independent exponentials). It contextualizes a
// single-kill experiment against a machine's availability knobs — at a
// 500k-hour node MTBF, a 24 h run on 1000 nodes expects ~0.05 failures;
// a petascale campaign of such runs sees one every ~20 runs.
//
// Degenerate inputs — zero or negative span, no nodes, a non-positive,
// NaN or infinite MTBF, a NaN or infinite span — return an explicit 0
// rather than letting NaN/Inf leak into downstream campaign math: a
// campaign multiplied by a NaN expectation would silently poison every
// aggregate it feeds. A sub-hour MTBF is legitimate (heavily accelerated
// test campaigns) and passes through untouched.
func ExpectedFailures(mtbfHours float64, nodes int, span sim.Duration) float64 {
	if math.IsNaN(mtbfHours) || math.IsInf(mtbfHours, 0) || mtbfHours <= 0 || nodes <= 0 {
		return 0
	}
	s := float64(span)
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
		return 0
	}
	return s / 3600 * float64(nodes) / mtbfHours
}

// maxArrivals bounds one Arrivals call: a span holding more failures
// than this (span/MTBF pathologically large, e.g. a sub-second MTBF fed
// through a CLI flag) truncates after the first maxArrivals draws
// instead of spinning and allocating without bound. Campaigns consume
// arrivals from the front, so truncating the tail never changes which
// failure a run observes first.
const maxArrivals = 1 << 16

// Arrivals samples node-failure arrival times over a span of production
// hours: failures across the allocation's nodes form a Poisson process
// with aggregate rate nodes/mtbfHours per hour, so inter-arrival gaps
// are exponential draws (xrand.ExpFloat64) scaled by the mean gap. The
// returned times are strictly increasing, in hours, all < spanHours,
// truncated at maxArrivals. Degenerate inputs (guarded exactly as in
// ExpectedFailures) return nil — no arrivals — rather than NaN-timed
// failures.
func Arrivals(r *xrand.RNG, mtbfHours float64, nodes int, spanHours float64) []float64 {
	if math.IsNaN(mtbfHours) || math.IsInf(mtbfHours, 0) || mtbfHours <= 0 || nodes <= 0 {
		return nil
	}
	if math.IsNaN(spanHours) || math.IsInf(spanHours, 0) || spanHours <= 0 {
		return nil
	}
	meanGap := mtbfHours / float64(nodes)
	var out []float64
	for t := r.ExpFloat64() * meanGap; t < spanHours && len(out) < maxArrivals; t += r.ExpFloat64() * meanGap {
		out = append(out, t)
	}
	return out
}
