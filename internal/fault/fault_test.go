package fault_test

import (
	"math"
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/fault"
	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
	"picmcio/internal/xrand"
)

const dMB = 1_000_000

func TestParseSurvivability(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want fault.Survivability
	}{
		{"none", fault.SurviveNone},
		{"node-loss", fault.SurviveNone},
		{"nvme", fault.SurviveNVMe},
		{"nvme-survives", fault.SurviveNVMe},
	} {
		got, err := fault.ParseSurvivability(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSurvivability(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Errorf("empty String for %v", got)
		}
	}
	if _, err := fault.ParseSurvivability("raid"); err == nil {
		t.Error("unknown survivability must error")
	}
}

func TestSpecValidate(t *testing.T) {
	ok := fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 1}
	if err := ok.Validate(4, 5); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, s := range map[string]fault.Spec{
		"epoch past end": {KillEpoch: 5},
		"negative epoch": {KillEpoch: -1},
		"frac at 1":      {KillFrac: 1},
		"node past end":  {Node: 4},
		"negative delay": {RestartDelay: -1},
	} {
		if err := s.Validate(4, 5); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	// WholeJob ignores the victim node field.
	whole := fault.Spec{WholeJob: true, Node: 99}
	if err := whole.Validate(4, 5); err != nil {
		t.Errorf("whole-job spec rejected: %v", err)
	}
}

// TestLedgerQueries exercises the epoch ledger's buffered/durable math.
func TestLedgerQueries(t *testing.T) {
	l := &fault.Ledger{}
	l.Mark(1.0, 10*dMB)
	l.Mark(2.0, 20*dMB)
	l.Mark(3.0, 30*dMB)
	if l.Epochs() != 3 {
		t.Fatalf("Epochs() = %d, want 3", l.Epochs())
	}
	for _, tc := range []struct {
		t    sim.Time
		want int
	}{{0.5, 0}, {1.0, 1}, {2.5, 2}, {9, 3}} {
		if got := l.BufferedEpochs(tc.t); got != tc.want {
			t.Errorf("BufferedEpochs(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	for _, tc := range []struct {
		drained int64
		want    int
	}{{0, 0}, {10*dMB - 1, 0}, {10 * dMB, 1}, {25 * dMB, 2}, {-1, 3}} {
		if got := l.DurableEpochs(tc.drained); got != tc.want {
			t.Errorf("DurableEpochs(%d) = %d, want %d", tc.drained, got, tc.want)
		}
	}
}

func TestUniformLedger(t *testing.T) {
	// 3 epochs, first checkpoint 0.5 h of overhead plus one 2 h epoch in,
	// cumulative-bytes counter resuming from a prior segment's 4 epochs.
	l := fault.UniformLedger(3, 0.5, 2.0, 4)
	if l.Epochs() != 3 {
		t.Fatalf("Epochs() = %d, want 3", l.Epochs())
	}
	for _, tc := range []struct {
		t    sim.Time
		want int
	}{{0, 0}, {2.4, 0}, {2.5, 1}, {4.5, 2}, {6.5, 3}, {100, 3}} {
		if got := l.BufferedEpochs(tc.t); got != tc.want {
			t.Errorf("BufferedEpochs(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	// The cumulative counter continues from the base: each continuation
	// epoch is durable once its (base+k)th unit is on the PFS.
	for _, tc := range []struct {
		drained int64
		want    int
	}{{4, 0}, {5, 1}, {6, 2}, {7, 3}} {
		if got := l.DurableEpochs(tc.drained); got != tc.want {
			t.Errorf("DurableEpochs(%d) = %d, want %d", tc.drained, got, tc.want)
		}
	}
	if got := fault.UniformLedger(0, 1, 1, 0).Epochs(); got != 0 {
		t.Fatalf("empty ledger has %d epochs", got)
	}
}

// TestAssess checks the lost-work math at both survivability levels.
func TestAssess(t *testing.T) {
	l := &fault.Ledger{}
	l.Mark(1.0, 10*dMB)
	l.Mark(2.0, 20*dMB)
	l.Mark(3.0, 30*dMB)

	// Killed during epoch 2's compute (3 epochs buffered), with only
	// epoch 0 drained back: node loss rolls back two epochs, surviving
	// NVMe loses none.
	spec := fault.Spec{KillEpoch: 2, Survival: fault.SurviveNone}
	r := fault.Assess(spec, l, 3.5, 10*dMB)
	if r.BufferedEpochs != 3 || r.DurableEpochs != 1 {
		t.Fatalf("positions %d/%d, want 3 buffered / 1 durable", r.BufferedEpochs, r.DurableEpochs)
	}
	if r.LostEpochsBuffered != 0 || r.LostEpochsPFS != 2 {
		t.Fatalf("lost %d/%d, want 0 buffered / 2 PFS", r.LostEpochsBuffered, r.LostEpochsPFS)
	}
	if r.RestartEpoch != 1 {
		t.Fatalf("restart epoch %d under SurviveNone, want 1", r.RestartEpoch)
	}
	spec.Survival = fault.SurviveNVMe
	if r := fault.Assess(spec, l, 3.5, 10*dMB); r.RestartEpoch != 3 {
		t.Fatalf("restart epoch %d under SurviveNVMe, want 3", r.RestartEpoch)
	}

	// A straggler kill mid-write: epoch 1's writes incomplete, so even
	// buffered recovery loses an epoch.
	spec = fault.Spec{KillEpoch: 1}
	if r := fault.Assess(spec, l, 1.5, -1); r.LostEpochsBuffered != 1 || r.LostEpochsPFS != 1 {
		t.Fatalf("straggler lost %d/%d, want 1/1 (durable clamped to buffered)", r.LostEpochsBuffered, r.LostEpochsPFS)
	}
}

// TestArmEndToEnd injects a failure into a one-node staged writer: the
// victim dies mid-sleep, its queued staged bytes are destroyed, and the
// restart callback resumes from the PFS-durable epoch.
func TestArmEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	back := lustre.New(k, lustre.DefaultParams())
	tier := burst.NewTier(k, burst.Spec{
		CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd,
	}, back)
	c := &pfs.Client{Node: 0, NIC: sim.NewServer(k, 25e9, 0)}
	led := &fault.Ledger{}

	write := func(p *sim.Proc, path string, n int64) {
		f, err := tier.FS().Create(p, c, path)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, c, 0, n, nil)
		f.Close(p, c)
	}

	epochsRun := 0
	victim := k.Spawn("writer", func(p *sim.Proc) {
		for e := 0; e < 4; e++ {
			write(p, pathOf(e), dMB)
			led.Mark(p.Now(), int64(e+1)*dMB)
			tier.DrainEpoch(p)
			epochsRun++
			p.Sleep(1.5) // drains one segment per 1.5 s window at 1e6 B/s
		}
	})

	restartedFrom := -1
	var resumed int
	spec := fault.Spec{KillEpoch: 2, Survival: fault.SurviveNone, RestartDelay: 2.0}
	// Kill inside epoch 2's compute window. Epoch boundaries land near
	// t = 0, 1.5, 3.0 (writes and metadata cost only milliseconds), so
	// t = 3.5 is mid-epoch-2 with epoch 0 drained and epoch 1 in flight.
	inj := fault.Arm(k, 3.5, spec, []fault.Victim{{Proc: victim, Node: 0}}, tier, led,
		func(p *sim.Proc, from int) {
			restartedFrom = from
			for e := from; e < 4; e++ {
				write(p, pathOf(e), dMB)
				resumed++
			}
			tier.WaitDrained(p)
		})
	k.Run()

	if epochsRun != 3 {
		t.Errorf("victim ran %d epochs before dying, want 3 (killed mid-epoch 2)", epochsRun)
	}
	rep := inj.Report
	if rep == nil {
		t.Fatal("injection never fired")
	}
	if rep.BufferedEpochs != 3 {
		t.Errorf("buffered position %d, want 3", rep.BufferedEpochs)
	}
	// At t=3.5 the drain (started at the first nudge, one segment per
	// second) has completed epoch 0's and epoch 1's segments and holds
	// epoch 2's in flight or queued: durable position 2, one epoch lost.
	if rep.DurableEpochs != 2 || rep.LostEpochsPFS != 1 {
		t.Errorf("durable position %d lost %d, want 2 lost 1", rep.DurableEpochs, rep.LostEpochsPFS)
	}
	if restartedFrom != rep.DurableEpochs {
		t.Errorf("restarted from %d, want durable position %d", restartedFrom, rep.DurableEpochs)
	}
	if resumed != 4-rep.DurableEpochs {
		t.Errorf("restart re-ran %d epochs, want %d", resumed, 4-rep.DurableEpochs)
	}
	if got := tier.Durability(); got.PendingBytes != 0 {
		t.Errorf("pending %d after restart drain, want 0", got.PendingBytes)
	}
}

func pathOf(e int) string {
	return "/scratch/ckpt_" + string(rune('0'+e)) + ".dmp"
}

func TestExpectedFailures(t *testing.T) {
	// 1000 nodes for 24 h at a 480k-hour node MTBF: 24000/480000 = 0.05.
	got := fault.ExpectedFailures(480_000, 1000, 24*3600)
	if got < 0.0499 || got > 0.0501 {
		t.Errorf("ExpectedFailures = %v, want 0.05", got)
	}
	if fault.ExpectedFailures(0, 10, 100) != 0 || fault.ExpectedFailures(100, 0, 100) != 0 {
		t.Error("degenerate inputs must report 0")
	}
}

// TestExpectedFailuresEdgeCases pins the guard behavior campaign math
// relies on: degenerate inputs report an explicit 0 instead of leaking
// NaN/Inf into expected-loss aggregates, while legitimately extreme
// inputs (sub-hour MTBF) pass through finite.
func TestExpectedFailuresEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name  string
		mtbf  float64
		nodes int
		span  sim.Duration
		want  float64 // -1: any finite positive value
	}{
		{"zero span", 500e3, 1000, 0, 0},
		{"negative span", 500e3, 1000, -3600, 0},
		{"zero nodes", 500e3, 0, 24 * 3600, 0},
		{"negative nodes", 500e3, -4, 24 * 3600, 0},
		{"zero mtbf", 0, 1000, 24 * 3600, 0},
		{"negative mtbf", -1, 1000, 24 * 3600, 0},
		{"nan mtbf", nan, 1000, 24 * 3600, 0},
		{"inf mtbf", inf, 1000, 24 * 3600, 0},
		{"nan span", 500e3, 1000, sim.Duration(nan), 0},
		{"inf span", 500e3, 1000, sim.Duration(inf), 0},
		{"sub-hour mtbf", 0.5, 10, 3600, -1},
		{"everything degenerate", 0, 0, 0, 0},
	}
	for _, c := range cases {
		got := fault.ExpectedFailures(c.mtbf, c.nodes, c.span)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: ExpectedFailures leaked %v", c.name, got)
			continue
		}
		if c.want == -1 {
			if got <= 0 {
				t.Errorf("%s: ExpectedFailures = %v, want finite positive", c.name, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s: ExpectedFailures = %v, want %v", c.name, got, c.want)
		}
	}
	// The sub-hour value itself: 10 node-hours at a 0.5 h MTBF = 20.
	if got := fault.ExpectedFailures(0.5, 10, 3600); got != 20 {
		t.Errorf("sub-hour MTBF expectation = %v, want 20", got)
	}
}

// TestArrivals pins the campaign sampler: guards mirror
// ExpectedFailures, times are strictly increasing inside the span, and
// the draw count tracks the analytic expectation.
func TestArrivals(t *testing.T) {
	// Degenerate inputs: no arrivals, never NaN-timed ones.
	for name, got := range map[string][]float64{
		"zero mtbf":  fault.Arrivals(xrand.New(1), 0, 10, 100),
		"zero nodes": fault.Arrivals(xrand.New(1), 100, 0, 100),
		"zero span":  fault.Arrivals(xrand.New(1), 100, 10, 0),
		"nan mtbf":   fault.Arrivals(xrand.New(1), math.NaN(), 10, 100),
		"inf span":   fault.Arrivals(xrand.New(1), 100, 10, math.Inf(1)),
	} {
		if got != nil {
			t.Errorf("%s: arrivals = %v, want nil", name, got)
		}
	}
	// λ = span·nodes/mtbf = 1000·10/100 = 100 expected arrivals.
	ts := fault.Arrivals(xrand.New(7), 100, 10, 1000)
	if len(ts) < 70 || len(ts) > 130 {
		t.Fatalf("arrivals = %d, want ~100", len(ts))
	}
	last := 0.0
	for _, x := range ts {
		if x <= last || x >= 1000 {
			t.Fatalf("arrival %v out of order or span (prev %v)", x, last)
		}
		last = x
	}
	// Same generator state ⇒ same draws (bit-reproducible campaigns).
	a := fault.Arrivals(xrand.New(9), 500e3, 2, 36)
	b := fault.Arrivals(xrand.New(9), 500e3, 2, 36)
	if len(a) != len(b) {
		t.Fatalf("replayed arrivals diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replayed arrivals diverged at %d", i)
		}
	}
}

// TestArrivalsSchedulerScale exercises the sampler the way internal/sched
// reuses it — as a job-submission stream over large populations and long
// windows — where the failure campaigns never pushed it.
func TestArrivalsSchedulerScale(t *testing.T) {
	// Truncation: a population × span holding far more than 2^16 events
	// must clamp at exactly the documented cap, not allocate unboundedly.
	// λ = 10 000 nodes × 100 h / 1 h MTBF = 1e6 expected ≫ 65 536.
	ts := fault.Arrivals(xrand.New(3), 1, 10_000, 100)
	if len(ts) != 1<<16 {
		t.Fatalf("oversaturated draw returned %d arrivals, want the 1<<16 cap", len(ts))
	}
	last := 0.0
	for i, x := range ts {
		if x <= last || x >= 100 {
			t.Fatalf("arrival %d = %v out of order or span (prev %v)", i, x, last)
		}
		last = x
	}

	// Rate sanity at submission-sampler parameters: 32 users with a mean
	// gap of 4 h each over 400 h ⇒ λ = 32·400/(4·32)·... i.e. span·users/
	// meanGapTotal = 400·32/128 = 100 expected submissions.
	subs := fault.Arrivals(xrand.New(11), 128, 32, 400)
	if len(subs) < 70 || len(subs) > 130 {
		t.Fatalf("submission-scale draw = %d arrivals, want ~100", len(subs))
	}

	// SeedAt-derived streams: the scheduler gives every tenant its own
	// derived seed. Equal derivations replay identically; sibling indices
	// must not alias each other's streams.
	base := uint64(42)
	s0 := fault.Arrivals(xrand.New(xrand.SeedAt(base, 0)), 128, 32, 400)
	s0again := fault.Arrivals(xrand.New(xrand.SeedAt(base, 0)), 128, 32, 400)
	s1 := fault.Arrivals(xrand.New(xrand.SeedAt(base, 1)), 128, 32, 400)
	if len(s0) == 0 || len(s1) == 0 {
		t.Fatal("derived streams empty")
	}
	if len(s0) != len(s0again) {
		t.Fatalf("same derived seed diverged: %d vs %d arrivals", len(s0), len(s0again))
	}
	for i := range s0 {
		if s0[i] != s0again[i] {
			t.Fatalf("same derived seed diverged at %d", i)
		}
	}
	alias := len(s0) == len(s1)
	if alias {
		for i := range s0 {
			if s0[i] != s1[i] {
				alias = false
				break
			}
		}
	}
	if alias {
		t.Fatal("sibling SeedAt indices produced identical streams")
	}
}
