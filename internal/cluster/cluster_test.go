package cluster

import (
	"testing"

	"picmcio/internal/fault"
	"picmcio/internal/sim"
)

func TestPresetsMatchPaper(t *testing.T) {
	d := Discoverer()
	if d.Lustre.NumOSTs != 4 {
		t.Errorf("Discoverer OSTs=%d, want 4", d.Lustre.NumOSTs)
	}
	da := Dardel()
	if da.Lustre.NumOSTs != 48 {
		t.Errorf("Dardel OSTs=%d, want 48", da.Lustre.NumOSTs)
	}
	v := Vega()
	if v.Lustre.NumOSTs != 80 {
		t.Errorf("Vega OSTs=%d, want 80", v.Lustre.NumOSTs)
	}
	if v.Lustre.JitterFrac <= 0 {
		t.Error("Vega must be jittered (erratic scaling)")
	}
	for _, m := range Machines() {
		if m.CoresPerNode != 128 {
			t.Errorf("%s cores/node=%d, want 128 (2×64-core EPYC)", m.Name, m.CoresPerNode)
		}
		if m.MaxNodes < 200 {
			t.Errorf("%s max nodes=%d", m.Name, m.MaxNodes)
		}
	}
}

func TestBuildAndClients(t *testing.T) {
	k := sim.NewKernel()
	sys, err := Dardel().Build(k, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Lustre == nil || sys.FS == nil {
		t.Fatal("lustre not attached")
	}
	if len(sys.Clients) != 3 {
		t.Fatalf("clients=%d", len(sys.Clients))
	}
	if sys.Ranks() != 3*128 {
		t.Fatalf("ranks=%d", sys.Ranks())
	}
	if sys.ClientFor(0) != sys.Clients[0] || sys.ClientFor(129) != sys.Clients[1] {
		t.Fatal("rank->node mapping wrong")
	}
	if sys.ClientFor(99999) != sys.Clients[2] {
		t.Fatal("rank clamp wrong")
	}
}

func TestBuildValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := Dardel().Build(k, 0, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := Dardel().Build(k, 99999, 1); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestCollectiveTime(t *testing.T) {
	m := Dardel()
	if m.CollectiveTime(1, 1000) != 0 {
		t.Error("single-rank collective should be free")
	}
	small := m.CollectiveTime(2, 0)
	big := m.CollectiveTime(25600, 0)
	if big <= small {
		t.Errorf("collective cost must grow with ranks: %v vs %v", small, big)
	}
	withBytes := m.CollectiveTime(2, 1<<30)
	if withBytes <= small {
		t.Error("bytes must cost time")
	}
}

func TestStorageKindString(t *testing.T) {
	if StorageLustre.String() != "lustre" || StorageNFS.String() != "nfs" || StorageCephFS.String() != "cephfs" {
		t.Fatal("StorageKind strings wrong")
	}
}

func TestBurstBufferPresets(t *testing.T) {
	if !Dardel().Burst.Enabled() || !Vega().Burst.Enabled() {
		t.Error("Dardel and Vega presets must carry a burst-buffer spec")
	}
	if Discoverer().Burst.Enabled() {
		t.Error("Discoverer has no burst buffer; its spec must be zero")
	}
	k := sim.NewKernel()
	sys, err := Dardel().Build(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Burst == nil || sys.StagedFS() == nil {
		t.Fatal("building a machine with a burst spec must attach a tier")
	}
	if sys.Burst.Backing() != sys.FS {
		t.Error("the tier must wrap the machine's file system")
	}
	k2 := sim.NewKernel()
	sys2, err := Discoverer().Build(k2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Burst != nil || sys2.StagedFS() != nil {
		t.Error("a machine without a burst spec must not get a tier")
	}
}

func TestAllocateSlicesNodes(t *testing.T) {
	k := sim.NewKernel()
	sys, err := Dardel().Build(k, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Allocate(6)
	if err != nil {
		t.Fatal(err)
	}
	if a.First != 0 || a.Nodes != 4 || b.First != 4 || b.Nodes != 6 {
		t.Fatalf("allocations overlap or misplace: %+v %+v", a, b)
	}
	if len(a.Clients) != 4 || len(b.Clients) != 6 {
		t.Fatalf("client slices: %d %d", len(a.Clients), len(b.Clients))
	}
	if a.Clients[3] == b.Clients[0] {
		t.Fatal("allocations must not share clients")
	}
	if a.Clients[0] != sys.Clients[0] || b.Clients[0] != sys.Clients[4] {
		t.Fatal("allocation clients must alias the system's per-node clients")
	}
	if sys.FreeNodes() != 0 {
		t.Fatalf("free nodes=%d, want 0", sys.FreeNodes())
	}
	if _, err := sys.Allocate(1); err == nil {
		t.Fatal("allocating past the build size must fail")
	}
	if _, err := sys.Allocate(0); err == nil {
		t.Fatal("zero-node allocation must fail")
	}
}

func TestAvailabilityKnobs(t *testing.T) {
	for _, m := range Machines() {
		if m.MTBFNodeHours <= 0 || m.NodeRestartSec <= 0 {
			t.Errorf("%s: availability knobs unset: MTBF=%v restart=%v", m.Name, m.MTBFNodeHours, m.NodeRestartSec)
		}
		f := m.FaultSpec(3, 0.5, 1)
		if f.KillEpoch != 3 || f.KillFrac != 0.5 || f.Node != 1 {
			t.Errorf("%s: FaultSpec mangled the kill point: %+v", m.Name, f)
		}
		if f.Survival != m.NVMeSurvival || float64(f.RestartDelay) != m.NodeRestartSec {
			t.Errorf("%s: FaultSpec dropped the machine knobs: %+v", m.Name, f)
		}
		if err := f.Validate(4, 5); err != nil {
			t.Errorf("%s: preset fault spec invalid: %v", m.Name, err)
		}
	}
	// Dardel's on-board NVMe dies with the node; Vega's enclosures do not.
	if Dardel().NVMeSurvival != fault.SurviveNone {
		t.Error("Dardel must model node-loss NVMe")
	}
	if Vega().NVMeSurvival != fault.SurviveNVMe {
		t.Error("Vega must model NVMe-surviving staging")
	}
}

// TestSizingRanges pins the buffer-sizing sweep declarations: machines
// with a burst tier declare usable capacity × drain-rate ranges, and
// the ranges stay sane (positive, burst-backed).
func TestSizingRanges(t *testing.T) {
	for _, m := range Machines() {
		if !m.Sizing.Enabled() {
			if m.Burst.Enabled() {
				t.Errorf("%s: burst tier without sizing ranges", m.Name)
			}
			continue
		}
		if !m.Burst.Enabled() {
			t.Errorf("%s: sizing ranges without a burst tier to size", m.Name)
		}
		for _, c := range m.Sizing.CapacityEpochs {
			if c <= 0 {
				t.Errorf("%s: non-positive capacity multiple %v", m.Name, c)
			}
		}
		for _, d := range m.Sizing.DrainScale {
			if d <= 0 {
				t.Errorf("%s: non-positive drain scale %v", m.Name, d)
			}
		}
	}
	// The sweepable fleet is exactly the burst-carrying presets.
	if !Dardel().Sizing.Enabled() || !Vega().Sizing.Enabled() {
		t.Error("Dardel and Vega must declare sizing ranges")
	}
	if Discoverer().Sizing.Enabled() {
		t.Error("Discoverer has no burst tier to size")
	}
}

// TestCheckpointCosts pins the availability-derived optimizer inputs:
// job-level MTBF scales inversely with node count, the survival
// probability mirrors the NVMe survivability model, and the reschedule
// delay seeds both restart paths while the measured fields stay zero.
func TestCheckpointCosts(t *testing.T) {
	m := Dardel()
	c := m.CheckpointCosts(4)
	if want := m.MTBFNodeHours * 3600 / 4; c.MTBFSec != want {
		t.Errorf("4-node MTBF %v, want %v", c.MTBFSec, want)
	}
	if c.SurvivalProb != 0 {
		t.Errorf("Dardel survival probability %v, want 0 (on-board NVMe)", c.SurvivalProb)
	}
	if c.BufferedRestartSec != m.NodeRestartSec || c.DurableRestartSec != m.NodeRestartSec {
		t.Errorf("restart bases (%v, %v), want the preset delay %v",
			c.BufferedRestartSec, c.DurableRestartSec, m.NodeRestartSec)
	}
	if c.BufferedSaveSec != 0 || c.DurableSaveSec != 0 || c.DurableLagSec != 0 {
		t.Error("measured fields must stay zero until a probe fills them")
	}
	if got := Vega().CheckpointCosts(1).SurvivalProb; got != 1 {
		t.Errorf("Vega survival probability %v, want 1 (fabric-attached)", got)
	}
	// A degenerate node count falls back to one node rather than
	// dividing by zero.
	if got := m.CheckpointCosts(0).MTBFSec; got != m.MTBFNodeHours*3600 {
		t.Errorf("0-node MTBF %v, want the single-node value", got)
	}
	if fault.SurviveNone.Prob() != 0 || fault.SurviveNVMe.Prob() != 1 {
		t.Error("survivability probabilities must be the enum endpoints")
	}
}

// TestLeaseChurnMatrix is the scheduler-grade lease matrix: the batch
// scheduler (internal/sched) allocates and frees node sets millions of
// times per campaign, so exhaustion, double-free and interleaved
// release patterns must all behave — one node handed to two jobs would
// silently corrupt every queue metric downstream.
func TestLeaseChurnMatrix(t *testing.T) {
	build := func(nodes int) *System {
		sys, err := Dardel().Build(sim.NewKernel(), nodes, 1)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	t.Run("exhaustion-and-refill", func(t *testing.T) {
		sys := build(8)
		a, err := sys.Allocate(5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Allocate(4); err == nil {
			t.Fatal("over-allocation past the free count must fail")
		}
		// A failed Allocate must not leak nodes.
		if got := sys.FreeNodes(); got != 3 {
			t.Fatalf("free after failed allocate = %d, want 3", got)
		}
		if err := sys.Free(a); err != nil {
			t.Fatal(err)
		}
		if got := sys.FreeNodes(); got != 8 {
			t.Fatalf("free after release = %d, want 8", got)
		}
		// The whole machine is allocatable again after the release.
		if _, err := sys.Allocate(8); err != nil {
			t.Fatalf("full re-allocation after release: %v", err)
		}
	})

	t.Run("double-free", func(t *testing.T) {
		sys := build(4)
		a, err := sys.Allocate(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Free(a); err != nil {
			t.Fatal(err)
		}
		if err := sys.Free(a); err == nil {
			t.Fatal("double free must be rejected")
		}
		// Free of a stale lease whose nodes were re-issued must fail too.
		b, err := sys.Allocate(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Free(a); err == nil {
			t.Fatal("free of a superseded lease must be rejected")
		}
		if err := sys.Free(b); err != nil {
			t.Fatal(err)
		}
		if err := sys.Free(nil); err == nil {
			t.Fatal("nil free must be rejected")
		}
		other := build(4)
		c, err := other.Allocate(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Free(c); err == nil {
			t.Fatal("free of another system's allocation must be rejected")
		}
	})

	t.Run("interleaved-reuse", func(t *testing.T) {
		sys := build(10)
		a, _ := sys.Allocate(3) // nodes 0-2
		b, _ := sys.Allocate(4) // nodes 3-6
		c, _ := sys.Allocate(3) // nodes 7-9
		if err := sys.Free(b); err != nil {
			t.Fatal(err)
		}
		// The next lease reuses b's released nodes before any fresh ones.
		d, err := sys.Allocate(2)
		if err != nil {
			t.Fatal(err)
		}
		if d.NodeIDs[0] != 3 || d.NodeIDs[1] != 4 {
			t.Fatalf("reuse lease nodes %v, want [3 4]", d.NodeIDs)
		}
		if err := sys.Free(a); err != nil {
			t.Fatal(err)
		}
		// A lease spanning scattered released nodes: 0-2 from a, 5-6 from
		// b's remainder. NodeIDs stay ascending and clients alias the
		// system's per-node clients at the matching global indices.
		e, err := sys.Allocate(5)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 1, 2, 5, 6}
		for i, id := range e.NodeIDs {
			if id != want[i] {
				t.Fatalf("scattered lease nodes %v, want %v", e.NodeIDs, want)
			}
			if e.Clients[i] != sys.Clients[id] {
				t.Fatalf("client %d does not alias system client for node %d", i, id)
			}
		}
		if sys.FreeNodes() != 0 {
			t.Fatalf("free nodes = %d, want 0", sys.FreeNodes())
		}
		// No node is leased twice across the live allocations.
		seen := map[int]bool{}
		for _, al := range []*Allocation{c, d, e} {
			for _, id := range al.NodeIDs {
				if seen[id] {
					t.Fatalf("node %d leased twice", id)
				}
				seen[id] = true
			}
		}
	})

	t.Run("heavy-churn-conserves-nodes", func(t *testing.T) {
		// A scheduler-shaped workload: a rolling window of live leases of
		// mixed widths, freed oldest-first, for thousands of cycles. The
		// free count must be exact at every step and the machine fully
		// reusable at the end.
		sys := build(32)
		var live []*Allocation
		liveNodes := 0
		for i := 0; i < 5000; i++ {
			n := 1 + i%7
			if n <= sys.FreeNodes() {
				a, err := sys.Allocate(n)
				if err != nil {
					t.Fatalf("cycle %d: %v", i, err)
				}
				live = append(live, a)
				liveNodes += n
			} else if len(live) > 0 {
				a := live[0]
				live = live[1:]
				if err := sys.Free(a); err != nil {
					t.Fatalf("cycle %d: %v", i, err)
				}
				liveNodes -= a.Nodes
			}
			if got := sys.FreeNodes(); got != 32-liveNodes {
				t.Fatalf("cycle %d: free=%d, want %d", i, got, 32-liveNodes)
			}
		}
		for _, a := range live {
			if err := sys.Free(a); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sys.Allocate(32); err != nil {
			t.Fatalf("machine not fully reusable after churn: %v", err)
		}
	})
}
