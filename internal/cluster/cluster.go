// Package cluster describes the simulated HPC machines used in the paper's
// evaluation — Discoverer, Dardel and Vega — as parameter presets: node
// counts, cores per node, per-node injection bandwidth, collective network
// coefficients, and the attached storage system (Lustre, NFS or CephFS).
//
// Build instantiates a machine on a simulation kernel, producing the file
// system and one pfs.Client per allocated node. Numerical values are
// calibrated so that the experiment harness reproduces the throughput
// *shapes* (and approximate magnitudes) the paper reports; they are not
// claims about the real hardware.
package cluster

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cephfs"
	"picmcio/internal/ckptopt"
	"picmcio/internal/fault"
	"picmcio/internal/lustre"
	"picmcio/internal/nfs"
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

// StorageKind selects which file-system model a machine attaches.
type StorageKind int

const (
	StorageLustre StorageKind = iota
	StorageNFS
	StorageCephFS
)

// String implements fmt.Stringer.
func (s StorageKind) String() string {
	switch s {
	case StorageLustre:
		return "lustre"
	case StorageNFS:
		return "nfs"
	case StorageCephFS:
		return "cephfs"
	}
	return fmt.Sprintf("StorageKind(%d)", int(s))
}

// Machine is a cluster preset.
type Machine struct {
	Name         string
	MaxNodes     int
	CoresPerNode int
	NICRate      float64 // bytes/second injection bandwidth per node

	// Collective network model: time = Alpha*ceil(log2 P) + bytes*Beta.
	NetAlpha float64 // seconds per hop
	NetBeta  float64 // seconds per byte

	// StdioWriteOverhead is the synchronous client-side cost each stdio
	// buffer flush pays in BIT1's original writer (formatting + VFS +
	// sync RPC); bulk POSIX writes (BP4, IOR) do not pay it.
	StdioWriteOverhead float64 // seconds

	Storage StorageKind
	Lustre  lustre.Params
	NFS     nfs.Params
	Ceph    cephfs.Params

	// Burst describes an optional node-local burst-buffer tier (NVMe
	// capacity + bandwidth per node). The zero value means the machine
	// has no staging tier; workloads opt in per engine (burst_buffer
	// TOML option), so presets carrying a spec change nothing by default.
	Burst burst.Spec

	// Availability knobs for the fault-injection subsystem
	// (internal/fault). MTBFNodeHours is the per-node mean time between
	// failures — fault.ExpectedFailures turns it into the failure count a
	// run of a given scale should plan for. NVMeSurvival says whether the
	// machine's staged burst-buffer state outlives a node failure
	// (on-board drives die with the node; fabric-attached enclosures do
	// not). NodeRestartSec is the reboot/reschedule delay before a victim
	// node resumes. Like the burst spec, these change nothing by default:
	// only a jobs.Spec carrying a fault.Spec exercises them.
	MTBFNodeHours  float64
	NVMeSurvival   fault.Survivability
	NodeRestartSec float64

	// Sizing declares the machine's buffer-sizing sweep ranges — the
	// capacity × drain-rate grid a FigSizing run explores to locate the
	// knee where staging stops helping. Empty ranges exclude the machine
	// from the sweep (no burst tier, nothing to size).
	Sizing Sizing

	// CalendarQueueNodes opts runs of this machine into the kernel's
	// calendar event queue at or above the given node count; zero keeps
	// the binary heap at every scale. Replay is bit-identical across the
	// two queue implementations, so the knob only moves the event-cost
	// curve — presets set it where machine-scale runs hold enough
	// in-flight events for the calendar to win.
	CalendarQueueNodes int
}

// KernelOptions returns the sim.NewKernel options for an n-node run of
// this machine: the calendar event queue once the run reaches
// CalendarQueueNodes, the default binary heap below it.
func (m Machine) KernelOptions(nodes int) []sim.Option {
	if m.CalendarQueueNodes > 0 && nodes >= m.CalendarQueueNodes {
		return []sim.Option{sim.WithCalendarQueue()}
	}
	return []sim.Option{sim.WithHeapQueue()}
}

// NewKernel constructs a kernel sized for an n-node run of this machine
// (see KernelOptions).
func (m Machine) NewKernel(nodes int) *sim.Kernel {
	return sim.NewKernel(m.KernelOptions(nodes)...)
}

// Sizing is a machine's buffer-sizing sweep declaration, relative rather
// than absolute so one grid serves any workload scale: capacities as
// multiples of one epoch's per-node output, drain rates as fractions of
// the preset drain rate.
type Sizing struct {
	CapacityEpochs []float64 // NVMe capacity / (per-node bytes per epoch)
	DrainScale     []float64 // drain rate / preset burst.Spec.DrainRate
}

// Enabled reports whether the machine declares a sizing sweep.
func (s Sizing) Enabled() bool {
	return len(s.CapacityEpochs) > 0 && len(s.DrainScale) > 0
}

// FaultSpec builds a single-node failure spec from the machine's
// availability knobs: the victim dies during epoch killEpoch's compute
// phase, killFrac of the way through.
func (m Machine) FaultSpec(killEpoch int, killFrac float64, node int) *fault.Spec {
	return &fault.Spec{
		KillEpoch:    killEpoch,
		KillFrac:     killFrac,
		Node:         node,
		Survival:     m.NVMeSurvival,
		RestartDelay: sim.Duration(m.NodeRestartSec),
	}
}

// CheckpointCosts derives the availability-side inputs of the
// checkpoint-interval optimizer from the preset's knobs, for a job of
// the given node count: the job-level MTBF (any of the job's nodes
// failing forces a restart, so the per-node MTBF divides by the node
// count), the NVMe survival probability, and the reboot/reschedule
// delay as the base of both restart paths. The measured fields —
// per-level save costs, drain lag — stay zero here;
// jobs.MeasureCheckpointCosts fills them from probe runs through the
// staging tier rather than hand-fed constants.
func (m Machine) CheckpointCosts(nodes int) ckptopt.Costs {
	if nodes < 1 {
		nodes = 1
	}
	return ckptopt.Costs{
		MTBFSec:            m.MTBFNodeHours * 3600 / float64(nodes),
		SurvivalProb:       m.NVMeSurvival.Prob(),
		BufferedRestartSec: m.NodeRestartSec,
		DurableRestartSec:  m.NodeRestartSec,
	}
}

// Discoverer is the petascale EuroHPC system: 1128 nodes, 2×64-core EPYC,
// Lustre with only 4 OSTs (2.1 PB). The tiny OST count plus a modest MDS
// is what makes its file-per-process throughput decline with scale.
func Discoverer() Machine {
	lp := lustre.DefaultParams()
	lp.NumOSTs = 4
	lp.OSTRate = 1.4e9
	lp.OSTPerOp = 60e-6
	lp.MDSThreads = 8
	lp.MDSCreate = 90e-6
	lp.MDSOpen = 45e-6
	lp.MDSStat = 30e-6
	lp.MDSClose = 25e-6
	lp.RPCLatency = 40e-6
	lp.BackboneRate = 6e9
	return Machine{
		Name:               "Discoverer",
		MaxNodes:           1128,
		CoresPerNode:       128,
		NICRate:            10e9,
		StdioWriteOverhead: 500e-6,
		NetAlpha:           2.0e-6,
		NetBeta:            1.0 / 25e9,
		Storage:            StorageLustre,
		Lustre:             lp,
		// Availability: an older EuroHPC fleet without node-local staging —
		// a failure rolls back to whatever the PFS holds.
		MTBFNodeHours:  300e3,
		NVMeSurvival:   fault.SurviveNone,
		NodeRestartSec: 300,
		// Machine-scale runs (a noticeable fraction of the 1128 nodes)
		// switch to the calendar event queue.
		CalendarQueueNodes: 256,
	}
}

// Dardel is the HPE Cray EX system: 1270 nodes, 2×64-core EPYC Zen2,
// Slingshot network, Lustre with 48 OSTs (12 PB). It is the system every
// tuning experiment of the paper runs on.
func Dardel() Machine {
	lp := lustre.DefaultParams()
	lp.NumOSTs = 48
	lp.OSTRate = 0.65e9
	lp.OSTPerOp = 220e-6
	lp.MDSThreads = 16
	lp.MDSCreate = 70e-6
	lp.MDSOpen = 40e-6
	lp.MDSStat = 30e-6
	lp.MDSClose = 25e-6
	lp.RPCLatency = 40e-6
	lp.BackboneRate = 18.2e9
	return Machine{
		Name:               "Dardel",
		MaxNodes:           1270,
		CoresPerNode:       128,
		NICRate:            25e9,
		StdioWriteOverhead: 5e-3,
		NetAlpha:           1.3e-6,
		NetBeta:            1.0 / 50e9,
		Storage:            StorageLustre,
		Lustre:             lp,
		// Cray EX nodes carry local NVMe usable as a burst buffer:
		// ~6 GB/s absorb, drain capped by the NVMe read side sharing the
		// injection path with foreground traffic.
		Burst: burst.Spec{
			CapacityBytes: 1536 << 30,
			Rate:          6e9,
			PerOp:         25e-6,
			DrainRate:     3e9,
			Policy:        burst.PolicyImmediate,
		},
		// Availability: on-board node NVMe dies with its node, so a node
		// loss destroys staged-only checkpoints; warm spares keep the
		// reschedule delay short.
		MTBFNodeHours:  500e3,
		NVMeSurvival:   fault.SurviveNone,
		NodeRestartSec: 120,
		// Sizing sweep: the on-board NVMe is generous, so the interesting
		// range is undersized capacity and throttled drain — where the
		// staging win collapses.
		Sizing: Sizing{
			CapacityEpochs: []float64{0.5, 1, 2, 4},
			DrainScale:     []float64{0.25, 0.5, 1, 2},
		},
		CalendarQueueNodes: 256,
	}
}

// Vega is the petascale EuroHPC system: 960 nodes, Lustre with 80 OSTs
// (1 PB) plus a large CephFS. Its Lustre partition is heavily shared, which
// we model with a large jitter fraction — hence the erratic scaling the
// paper observes.
func Vega() Machine {
	lp := lustre.DefaultParams()
	lp.NumOSTs = 80
	lp.OSTRate = 0.40e9
	lp.OSTPerOp = 260e-6
	lp.MDSThreads = 12
	lp.MDSCreate = 110e-6
	lp.MDSOpen = 60e-6
	lp.MDSStat = 40e-6
	lp.MDSClose = 30e-6
	lp.RPCLatency = 60e-6
	lp.BackboneRate = 11e9
	lp.JitterFrac = 0.75
	return Machine{
		Name:               "Vega",
		MaxNodes:           960,
		CoresPerNode:       128,
		NICRate:            12.5e9,
		StdioWriteOverhead: 2.5e-3,
		NetAlpha:           1.6e-6,
		NetBeta:            1.0 / 60e9,
		Storage:            StorageLustre,
		Lustre:             lp,
		Ceph:               cephfs.DefaultParams(),
		// Vega's heavily shared Lustre makes batched write-back the
		// sensible default: buffer until the high watermark, then burst.
		Burst: burst.Spec{
			CapacityBytes: 1 << 40,
			Rate:          4e9,
			PerOp:         30e-6,
			DrainRate:     2e9,
			Policy:        burst.PolicyWatermark,
			HighWater:     0.6,
			LowWater:      0.2,
		},
		// Availability: Vega's staging sits in fabric-attached enclosures
		// that outlive individual nodes, so restarts resume from buffered
		// state at the price of redraining it.
		MTBFNodeHours:  400e3,
		NVMeSurvival:   fault.SurviveNVMe,
		NodeRestartSec: 180,
		// Sizing sweep: the watermark policy holds more back, so the grid
		// reaches deeper capacities before the drain-rate axis bites.
		Sizing: Sizing{
			CapacityEpochs: []float64{0.5, 1, 2, 4},
			DrainScale:     []float64{0.5, 1, 2},
		},
		CalendarQueueNodes: 256,
	}
}

// Machines returns the three evaluation systems in paper order.
func Machines() []Machine { return []Machine{Discoverer(), Dardel(), Vega()} }

// System is an instantiated machine: a file system plus per-node clients.
type System struct {
	Machine Machine
	K       *sim.Kernel
	FS      pfs.FileSystem
	Lustre  *lustre.FS  // non-nil when Storage == StorageLustre
	Burst   *burst.Tier // non-nil when the machine has a burst-buffer spec
	Nodes   int
	Clients []*pfs.Client // one per node, shared by the node's ranks

	allocated int   // high-water mark of the bump region leased via Allocate
	released  []int // node indices returned by Free, ascending, reused first
	leased    []int // per-node lease generation; 0 = free (lazily sized)
	leaseGen  int   // generation counter stamped onto each new lease
}

// Allocation is a set of a system's nodes leased to one job: the
// node-level scheduling unit of a multi-job co-schedule and of the batch
// scheduler's queue churn. Jobs never share nodes, but every allocation
// shares the machine's file system (and backbone), which is where
// cross-job contention lives. On a freshly built system allocations are
// contiguous; once leases have been released and reused (a scheduler
// freeing finished jobs), an allocation may span scattered node indices —
// NodeIDs lists them in ascending order and Clients matches index-for-
// index.
type Allocation struct {
	First   int // lowest node index of the set (kept for existing callers)
	Nodes   int
	NodeIDs []int         // the leased node indices, ascending
	Clients []*pfs.Client // the set's per-node clients, parallel to NodeIDs

	gen   int     // lease generation stamped at Allocate time
	owner *System // issuing system; guards against cross-system Free
}

// Allocate leases n free nodes to a job, lowest node indices first
// (released nodes are reused before the untouched tail of the machine).
// Allocations never overlap; Allocate fails once the machine is full.
func (s *System) Allocate(n int) (*Allocation, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: allocation needs at least one node")
	}
	if free := s.FreeNodes(); n > free {
		return nil, fmt.Errorf("cluster: %s build has %d free node(s), asked for %d",
			s.Machine.Name, free, n)
	}
	if s.leased == nil {
		s.leased = make([]int, s.Nodes)
	}
	s.leaseGen++
	ids := make([]int, 0, n)
	// Reused nodes carry lower indices than the bump tail by construction
	// (released is ascending and only ever holds indices < allocated), so
	// taking released first keeps NodeIDs ascending.
	for len(ids) < n && len(s.released) > 0 {
		ids = append(ids, s.released[0])
		s.released = s.released[1:]
	}
	for len(ids) < n {
		ids = append(ids, s.allocated)
		s.allocated++
	}
	a := &Allocation{First: ids[0], Nodes: n, NodeIDs: ids, gen: s.leaseGen, owner: s}
	a.Clients = make([]*pfs.Client, n)
	for i, id := range ids {
		s.leased[id] = s.leaseGen
		a.Clients[i] = s.Clients[id]
	}
	return a, nil
}

// Free returns an allocation's nodes to the system for reuse — the
// release half of the lease cycle a batch scheduler exercises once per
// finished job. Freeing an allocation twice, an allocation issued by a
// different system, or one whose nodes have since been re-leased is an
// error: silent double-frees would hand one node to two jobs.
func (s *System) Free(a *Allocation) error {
	if a == nil {
		return fmt.Errorf("cluster: Free of nil allocation")
	}
	if a.owner != s {
		return fmt.Errorf("cluster: Free of allocation not issued by this %s build", s.Machine.Name)
	}
	for _, id := range a.NodeIDs {
		if id < 0 || id >= s.Nodes || s.leased[id] != a.gen {
			return fmt.Errorf("cluster: double free of node %d (lease already released or re-issued)", id)
		}
	}
	for _, id := range a.NodeIDs {
		s.leased[id] = 0
	}
	s.released = mergeAscending(s.released, a.NodeIDs)
	return nil
}

// mergeAscending merges two ascending, disjoint index slices.
func mergeAscending(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// FreeNodes reports how many nodes remain unleased.
func (s *System) FreeNodes() int { return s.Nodes - s.allocated + len(s.released) }

// StagedFS returns the burst-buffer staging file system, or nil when the
// machine has none. Attach it to posix.Env.Stage so engines can opt in.
func (s *System) StagedFS() pfs.FileSystem {
	if s.Burst == nil {
		return nil
	}
	return s.Burst.FS()
}

// Build instantiates the machine with the given node allocation on kernel
// k. Seed perturbs the storage system's stochastic elements.
func (m Machine) Build(k *sim.Kernel, nodes int, seed uint64) (*System, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if nodes > m.MaxNodes {
		return nil, fmt.Errorf("cluster: %s has only %d nodes (asked for %d)", m.Name, m.MaxNodes, nodes)
	}
	s := &System{Machine: m, K: k, Nodes: nodes}
	switch m.Storage {
	case StorageLustre:
		lp := m.Lustre
		lp.Seed = seed
		lfs := lustre.New(k, lp)
		s.FS, s.Lustre = lfs, lfs
	case StorageNFS:
		s.FS = nfs.New(k, m.NFS)
	case StorageCephFS:
		cp := m.Ceph
		cp.Seed = seed
		s.FS = cephfs.New(k, cp)
	default:
		return nil, fmt.Errorf("cluster: unknown storage kind %v", m.Storage)
	}
	if m.Burst.Enabled() {
		s.Burst = burst.NewTier(k, m.Burst, s.FS)
	}
	s.Clients = make([]*pfs.Client, nodes)
	for i := range s.Clients {
		s.Clients[i] = &pfs.Client{Node: i, NIC: sim.NewServer(k, m.NICRate, 0)}
	}
	return s, nil
}

// Ranks reports the total MPI rank count for the node allocation
// (cores-per-node ranks per node, as the paper runs BIT1).
func (s *System) Ranks() int { return s.Nodes * s.Machine.CoresPerNode }

// ClientFor returns the client (node NIC) a given world rank issues I/O
// through, with ranks laid out block-wise across nodes.
func (s *System) ClientFor(rank int) *pfs.Client {
	node := rank / s.Machine.CoresPerNode
	if node >= s.Nodes {
		node = s.Nodes - 1
	}
	return s.Clients[node]
}

// CollectiveTime evaluates the machine's analytic collective cost model
// for a P-rank operation moving the given total bytes.
func (m Machine) CollectiveTime(p int, bytes int64) sim.Duration {
	if p <= 1 {
		return 0
	}
	hops := 0
	for v := p - 1; v > 0; v >>= 1 {
		hops++
	}
	return sim.Duration(m.NetAlpha*float64(hops) + m.NetBeta*float64(bytes))
}
