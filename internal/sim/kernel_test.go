package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var got Time
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		p.Sleep(2.5)
		got = p.Now()
	})
	end := k.Run()
	if got != 4.0 {
		t.Fatalf("proc observed t=%v, want 4.0", got)
	}
	if end != 4.0 {
		t.Fatalf("Run returned %v, want 4.0", end)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for _, n := range []string{"p0", "p1", "p2"} {
			n := n
			k.Spawn(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(1)
					order = append(order, n)
				}
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("lengths %d %d, want 9", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
	// Same-time events run in spawn (seq) order.
	want := []string{"p0", "p1", "p2", "p0", "p1", "p2", "p0", "p1", "p2"}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("order %v, want %v", a, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var first, second Time
	k.SpawnAt(5, "late", func(p *Proc) { second = p.Now() })
	k.Spawn("early", func(p *Proc) { first = p.Now() })
	k.Run()
	if first != 0 || second != 5 {
		t.Fatalf("start times %v %v, want 0 and 5", first, second)
	}
}

func TestParkWake(t *testing.T) {
	k := NewKernel()
	var wakeTime Time
	var sleeper *Proc
	sleeper = k.Spawn("sleeper", func(p *Proc) {
		p.Park()
		wakeTime = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(3)
		k.Wake(sleeper)
	})
	k.Run()
	if wakeTime != 3 {
		t.Fatalf("woke at %v, want 3", wakeTime)
	}
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	k.Run()
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic propagation")
		}
	}()
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) { panic("boom") })
	k.Run()
}

func TestServerFCFS(t *testing.T) {
	k := NewKernel()
	// 100 B/s, no per-op cost. Two 100-byte ops arriving together must
	// serialize: completions at t=1 and t=2.
	var ends []Time
	k.Spawn("setup", func(p *Proc) {
		s := NewServer(k, 100, 0)
		for i := 0; i < 2; i++ {
			i := i
			k.Spawn("w", func(p *Proc) {
				s.Acquire(p, 100)
				ends = append(ends, p.Now())
				_ = i
			})
		}
	})
	k.Run()
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	if len(ends) != 2 || ends[0] != 1 || ends[1] != 2 {
		t.Fatalf("ends=%v, want [1 2]", ends)
	}
}

func TestServerPerOpLatency(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("w", func(p *Proc) {
		s := NewServer(k, 0, 0.25) // latency-only server
		s.Acquire(p, 1<<20)
		end = p.Now()
	})
	k.Run()
	if end != 0.25 {
		t.Fatalf("end=%v, want 0.25", end)
	}
}

func TestMultiServerParallelism(t *testing.T) {
	k := NewKernel()
	var ends []Time
	k.Spawn("setup", func(p *Proc) {
		m := NewMultiServer(k, 2, 0, 1.0)
		for i := 0; i < 4; i++ {
			k.Spawn("w", func(p *Proc) {
				m.Acquire(p, 0)
				ends = append(ends, p.Now())
			})
		}
	})
	k.Run()
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	want := []Time{1, 1, 2, 2}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends=%v, want %v", ends, want)
		}
	}
}

func TestMutexFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Spawn("setup", func(p *Proc) {
		mu := NewMutex(k)
		for i := 0; i < 3; i++ {
			i := i
			k.Spawn("w", func(p *Proc) {
				p.Sleep(Time(i) * 0.001) // stagger arrivals
				mu.Lock(p)
				p.Sleep(1)
				order = append(order, i)
				mu.Unlock()
			})
		}
	})
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order=%v, want FIFO [0 1 2]", order)
		}
	}
}

func TestConditionBroadcast(t *testing.T) {
	k := NewKernel()
	woken := 0
	k.Spawn("setup", func(p *Proc) {
		c := NewCondition(k)
		for i := 0; i < 5; i++ {
			k.Spawn("waiter", func(p *Proc) {
				c.Wait(p)
				woken++
			})
		}
		k.Spawn("b", func(p *Proc) {
			p.Sleep(2)
			c.Broadcast()
		})
	})
	k.Run()
	if woken != 5 {
		t.Fatalf("woken=%d, want 5", woken)
	}
}

// Property: for a single FCFS server, total completion time of a batch of
// same-instant jobs equals the sum of their service times, regardless of
// order, and per-job completion times are non-decreasing in arrival order.
func TestServerWorkConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 64 {
			return true
		}
		k := NewKernel()
		ok := true
		k.Spawn("setup", func(p *Proc) {
			s := NewServer(k, 1000, 0.001)
			var want Duration
			prev := Time(-1)
			for _, n := range sizes {
				want += s.ServiceTime(int64(n))
				end := s.Reserve(int64(n))
				if end < prev {
					ok = false
				}
				prev = end
			}
			if diff := float64(prev - want); diff > 1e-9 || diff < -1e-9 {
				ok = false
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MultiServer with c servers finishes n identical latency-1 jobs
// at time ceil(n/c).
func TestMultiServerMakespanProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%50) + 1
		c := int(cRaw%8) + 1
		k := NewKernel()
		var last Time
		k.Spawn("setup", func(p *Proc) {
			m := NewMultiServer(k, c, 0, 1.0)
			for i := 0; i < n; i++ {
				end := m.Reserve(0)
				if end > last {
					last = end
				}
			}
		})
		k.Run()
		want := Time((n + c - 1) / c)
		return last == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsStress(t *testing.T) {
	k := NewKernel()
	const n = 2000
	count := 0
	for i := 0; i < n; i++ {
		d := Time(rand.New(rand.NewSource(int64(i))).Float64())
		k.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			count++
		})
	}
	k.Run()
	if count != n {
		t.Fatalf("count=%d, want %d", count, n)
	}
}
