package sim

import "container/heap"

// Server models a single FCFS pipe with fixed per-operation latency and a
// service rate in bytes per second: an operation of n bytes arriving at
// time t on a server next free at time a occupies the interval
// [max(t,a), max(t,a)+PerOp+n/Rate]. This is the basic model for an OST,
// a NIC stream, or a disk.
type Server struct {
	k      *Kernel
	rate   float64 // bytes per second; <=0 means infinitely fast
	perOp  Duration
	freeAt Time
	busy   Duration // total busy time, for utilization reporting
	ops    uint64
	bytes  uint64
}

// NewServer returns a server with service rate rate (bytes/second) and
// fixed per-operation latency perOp seconds.
func NewServer(k *Kernel, rate float64, perOp Duration) *Server {
	return &Server{k: k, rate: rate, perOp: perOp}
}

// ServiceTime reports the raw service time for n bytes (no queueing).
func (s *Server) ServiceTime(n int64) Duration {
	d := s.perOp
	if s.rate > 0 && n > 0 {
		d += Duration(float64(n) / s.rate)
	}
	return d
}

// Reserve books an operation of n bytes arriving now and returns the time
// at which the operation completes, without blocking the caller. Use this
// when one process fans an operation out across several servers (e.g. a
// striped write) and then waits for the max completion time.
func (s *Server) Reserve(n int64) Time { return s.ReserveAt(s.k.now, n) }

// ReserveAt books an operation of n bytes arriving at time at (not before
// the current virtual time) and returns its completion time. It is the
// building block for pipelined multi-stage transfers such as
// client NIC → OST.
func (s *Server) ReserveAt(at Time, n int64) Time {
	start := at
	if start < s.k.now {
		start = s.k.now
	}
	if s.freeAt > start {
		start = s.freeAt
	}
	d := s.ServiceTime(n)
	s.freeAt = start + d
	s.busy += d
	s.ops++
	if n > 0 {
		s.bytes += uint64(n)
	}
	return s.freeAt
}

// Acquire books an operation of n bytes and blocks p until it completes.
func (s *Server) Acquire(p *Proc, n int64) {
	p.SleepUntil(s.Reserve(n))
}

// Stats reports the cumulative number of operations, bytes and busy time.
func (s *Server) Stats() (ops, bytes uint64, busy Duration) {
	return s.ops, s.bytes, s.busy
}

// FreeAt reports when the server next becomes idle.
func (s *Server) FreeAt() Time { return s.freeAt }

// MultiServer models a station with c identical servers and a single FCFS
// queue, e.g. a metadata server with a fixed service-thread count. Jobs are
// dispatched to the earliest-free server.
type MultiServer struct {
	k     *Kernel
	free  timeHeap // freeAt per server
	perOp Duration
	rate  float64
	ops   uint64
	busy  Duration
}

type timeHeap []Time

func (h timeHeap) Len() int           { return len(h) }
func (h timeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)        { *h = append(*h, x.(Time)) }
func (h *timeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// NewMultiServer returns a c-server station with per-op latency perOp and
// optional per-byte service rate (bytes/second; <=0 disables).
func NewMultiServer(k *Kernel, c int, rate float64, perOp Duration) *MultiServer {
	if c < 1 {
		c = 1
	}
	m := &MultiServer{k: k, perOp: perOp, rate: rate, free: make(timeHeap, c)}
	heap.Init(&m.free)
	return m
}

// Reserve books one operation of n bytes arriving now and returns its
// completion time.
func (m *MultiServer) Reserve(n int64) Time {
	start := m.k.now
	if m.free[0] > start {
		start = m.free[0]
	}
	d := m.perOp
	if m.rate > 0 && n > 0 {
		d += Duration(float64(n) / m.rate)
	}
	end := start + d
	m.free[0] = end
	heap.Fix(&m.free, 0)
	m.ops++
	m.busy += d
	return end
}

// Acquire books one operation and blocks p until it completes.
func (m *MultiServer) Acquire(p *Proc, n int64) { p.SleepUntil(m.Reserve(n)) }

// ReserveDur books an operation with an explicit service duration d,
// ignoring the station's default per-op latency and rate. It returns the
// completion time. Used for stations whose operations have heterogeneous
// costs (e.g. a metadata server where create is dearer than stat).
func (m *MultiServer) ReserveDur(d Duration) Time {
	if d < 0 {
		d = 0
	}
	start := m.k.now
	if m.free[0] > start {
		start = m.free[0]
	}
	end := start + d
	m.free[0] = end
	heap.Fix(&m.free, 0)
	m.ops++
	m.busy += d
	return end
}

// AcquireDur books an operation of duration d and blocks p until done.
func (m *MultiServer) AcquireDur(p *Proc, d Duration) { p.SleepUntil(m.ReserveDur(d)) }

// Ops reports the number of operations served so far.
func (m *MultiServer) Ops() uint64 { return m.ops }

// Busy reports cumulative busy time across all servers.
func (m *MultiServer) Busy() Duration { return m.busy }

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff.
type Mutex struct {
	k     *Kernel
	held  bool
	queue []*Proc
}

// NewMutex returns an unlocked mutex bound to kernel k.
func NewMutex(k *Kernel) *Mutex { return &Mutex{k: k} }

// Lock acquires the mutex, parking p until it is available.
func (mu *Mutex) Lock(p *Proc) {
	if !mu.held {
		mu.held = true
		return
	}
	mu.queue = append(mu.queue, p)
	p.Park()
}

// Unlock releases the mutex, handing it to the longest-waiting process.
func (mu *Mutex) Unlock() {
	if len(mu.queue) == 0 {
		mu.held = false
		return
	}
	next := mu.queue[0]
	mu.queue = mu.queue[1:]
	mu.k.Wake(next) // mutex stays held on behalf of next
}
