package sim

import (
	"math/rand"
	"testing"
)

// TestQueueImplementationsAgree drains a randomized event population —
// clustered times, exact ties, far-future and Infinity entries, pops
// interleaved with pushes — through both queue implementations and
// requires identical (at, seq) order. This is the property every replay
// guarantee reduces to: the queue choice must be invisible.
func TestQueueImplementationsAgree(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		hq := &heapQueue{}
		cq := newCalendarQueue()
		var seq uint64
		now := Time(0)
		// Mixed phases of pushes and pops, with monotonically
		// non-decreasing push times relative to the last pop — the
		// contract the kernel upholds.
		for phase := 0; phase < 40; phase++ {
			nPush := rng.Intn(60)
			for i := 0; i < nPush; i++ {
				at := now
				switch rng.Intn(10) {
				case 0: // exact tie with the current time
				case 1: // far future
					at += Time(rng.Float64()) * 1e12
				case 2: // beyond any calendar bucket
					at = Infinity
				default: // clustered near now
					at += Time(rng.Float64()) * 10
				}
				seq++
				e := event{at: at, seq: seq}
				hq.push(e)
				cq.push(e)
			}
			if hq.len() != cq.len() {
				t.Fatalf("trial %d: len mismatch: heap %d calendar %d", trial, hq.len(), cq.len())
			}
			if ha, hok := hq.peekAt(); hok {
				ca, cok := cq.peekAt()
				if !cok || ha != ca {
					t.Fatalf("trial %d: peekAt mismatch: heap %v calendar %v (ok=%v)", trial, ha, ca, cok)
				}
			}
			nPop := rng.Intn(50)
			for i := 0; i < nPop; i++ {
				he, hok := hq.pop()
				ce, cok := cq.pop()
				if hok != cok {
					t.Fatalf("trial %d: pop ok mismatch: heap %v calendar %v", trial, hok, cok)
				}
				if !hok {
					break
				}
				if he.at != ce.at || he.seq != ce.seq {
					t.Fatalf("trial %d: pop order diverged: heap (%v,%d) calendar (%v,%d)",
						trial, he.at, he.seq, ce.at, ce.seq)
				}
				now = he.at
			}
		}
		// Drain the remainder.
		for {
			he, hok := hq.pop()
			ce, cok := cq.pop()
			if hok != cok {
				t.Fatalf("trial %d: drain ok mismatch", trial)
			}
			if !hok {
				break
			}
			if he.at != ce.at || he.seq != ce.seq {
				t.Fatalf("trial %d: drain order diverged: heap (%v,%d) calendar (%v,%d)",
					trial, he.at, he.seq, ce.at, ce.seq)
			}
		}
	}
}

// TestCalendarQueueResizeCycles pushes enough to force repeated grows,
// then drains to force shrinks, checking order throughout.
func TestCalendarQueueResizeCycles(t *testing.T) {
	cq := newCalendarQueue()
	const n = 5000
	for i := 0; i < n; i++ {
		cq.push(event{at: Time(i%97) * 0.013, seq: uint64(i + 1)})
	}
	if cq.len() != n {
		t.Fatalf("len = %d, want %d", cq.len(), n)
	}
	var last event
	for i := 0; i < n; i++ {
		e, ok := cq.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if i > 0 && !evLess(last, e) {
			t.Fatalf("pop %d: order violated: (%v,%d) before (%v,%d)", i, last.at, last.seq, e.at, e.seq)
		}
		last = e
	}
	if _, ok := cq.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestCalendarQueueSingleInstant floods one instant — the degenerate
// width case — and expects strict seq order out.
func TestCalendarQueueSingleInstant(t *testing.T) {
	cq := newCalendarQueue()
	const n = 500
	for i := 0; i < n; i++ {
		cq.push(event{at: 42, seq: uint64(i + 1)})
	}
	for i := 0; i < n; i++ {
		e, ok := cq.pop()
		if !ok || e.seq != uint64(i+1) {
			t.Fatalf("pop %d: got (%v, ok=%v), want seq %d", i, e.seq, ok, i+1)
		}
	}
}

// TestCalendarQueueLongHorizon is the regression test for the scan-drift
// bug: thousands of staggered sleepers crossing tens of thousands of
// bucket windows, the exact shape of BenchmarkKernelScale. When window
// boundaries were accumulated additively (anchor += width) instead of
// derived from the same floored division push uses for placement, float
// drift eventually made the scan skip a bucket still holding the
// minimum, and the kernel panicked with "event queue went backwards"
// around 2048 nodes. The fast path is disabled so every timer traverses
// the queue.
func TestCalendarQueueLongHorizon(t *testing.T) {
	run := func(opts ...Option) (Time, uint64) {
		k := NewKernel(opts...)
		const (
			nodes    = 2048
			chunks   = 32
			epochs   = 3
			chunkSec = Duration(2e-6)
		)
		period := Duration(nodes) * chunks * chunkSec * 4
		for i := 0; i < nodes; i++ {
			i := i
			k.Spawn("node", func(p *Proc) {
				p.Sleep(period * Duration(i) / Duration(nodes))
				for e := 0; e < epochs; e++ {
					for c := 0; c < chunks; c++ {
						p.Sleep(chunkSec)
					}
					p.Sleep(period - chunks*chunkSec)
				}
			})
		}
		return k.Run(), k.Stats().Events()
	}
	endH, evH := run(WithHeapQueue(), WithTimerFastPath(false))
	endC, evC := run(WithCalendarQueue(), WithTimerFastPath(false))
	if endH != endC {
		t.Fatalf("finish time diverged: heap %v calendar %v", endH, endC)
	}
	if evH != evC {
		t.Fatalf("event count diverged: heap %d calendar %d", evH, evC)
	}
}

// TestForceQueueForTesting checks the override hook swaps the queue of
// subsequently built kernels and restores cleanly.
func TestForceQueueForTesting(t *testing.T) {
	restore := ForceQueueForTesting("calendar")
	k := NewKernel(WithHeapQueue()) // option is overridden by the hook
	if _, ok := k.q.(*calendarQueue); !ok {
		t.Fatalf("forced kernel queue is %T, want *calendarQueue", k.q)
	}
	restore()
	k2 := NewKernel()
	if _, ok := k2.q.(*heapQueue); !ok {
		t.Fatalf("restored kernel queue is %T, want *heapQueue", k2.q)
	}
}

// TestKernelEndToEndBothQueues runs an identical contended workload on
// both queue implementations and requires the same finish time and the
// same per-proc resume trace.
func TestKernelEndToEndBothQueues(t *testing.T) {
	run := func(opt Option) (Time, []Time) {
		k := NewKernel(opt)
		srv := NewServer(k, 100, 0.5)
		var trace []Time
		for i := 0; i < 50; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(i%7) * 0.25)
					srv.Acquire(p, int64(10+i%3))
					trace = append(trace, p.Now())
				}
			})
		}
		return k.Run(), trace
	}
	endH, traceH := run(WithHeapQueue())
	endC, traceC := run(WithCalendarQueue())
	if endH != endC {
		t.Fatalf("finish time diverged: heap %v calendar %v", endH, endC)
	}
	if len(traceH) != len(traceC) {
		t.Fatalf("trace length diverged: heap %d calendar %d", len(traceH), len(traceC))
	}
	for i := range traceH {
		if traceH[i] != traceC[i] {
			t.Fatalf("trace[%d] diverged: heap %v calendar %v", i, traceH[i], traceC[i])
		}
	}
}
