package sim

import "testing"

// TestKillSleeping kills a process mid-sleep: it must die at the kill
// time, never resume, and not count as a panic or a deadlock.
func TestKillSleeping(t *testing.T) {
	k := NewKernel()
	resumed := false
	var diedAt Time
	victim := k.Spawn("victim", func(p *Proc) {
		defer func() { diedAt = p.Now() }()
		p.Sleep(10)
		resumed = true
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(3)
		p.Kernel().Kill(victim)
	})
	end := k.Run()
	if resumed {
		t.Fatal("killed process resumed past its sleep")
	}
	if diedAt != 3 {
		t.Fatalf("victim died at t=%v, want t=3 (deferred funcs must run at kill time)", diedAt)
	}
	if end != 3 {
		t.Fatalf("run ended at t=%v, want 3 (victim's stale wake must not advance the clock)", end)
	}
	if !victim.Killed() {
		t.Fatal("Killed() must report true after Kill")
	}
}

// TestKillParked kills a process parked on a gauge that never reaches
// zero; without the kill this run would deadlock.
func TestKillParked(t *testing.T) {
	k := NewKernel()
	g := NewGauge(k)
	victim := k.Spawn("victim", func(p *Proc) {
		g.Add(1)
		g.WaitZero(p)
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(1)
		p.Kernel().Kill(victim)
	})
	k.Run() // must not panic with a deadlock
}

// TestKillBeforeStart kills a process scheduled but not yet begun: its
// body must never run.
func TestKillBeforeStart(t *testing.T) {
	k := NewKernel()
	ran := false
	victim := k.SpawnAt(5, "victim", func(p *Proc) { ran = true })
	k.Spawn("killer", func(p *Proc) { p.Kernel().Kill(victim) })
	k.Run()
	if ran {
		t.Fatal("killed process body ran")
	}
}

// TestKillIdempotent verifies double kills and kills of finished
// processes are no-ops.
func TestKillIdempotent(t *testing.T) {
	k := NewKernel()
	fast := k.Spawn("fast", func(p *Proc) {})
	victim := k.Spawn("victim", func(p *Proc) { p.Sleep(10) })
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(1)
		p.Kernel().Kill(victim)
		p.Kernel().Kill(victim)
		p.Kernel().Kill(fast)
		p.Kernel().Kill(nil)
	})
	k.Run()
}

// TestKillThenWake verifies a Wake racing a Kill at the same instant does
// not resurrect the victim.
func TestKillThenWake(t *testing.T) {
	k := NewKernel()
	resumed := false
	victim := k.Spawn("victim", func(p *Proc) {
		p.Park()
		resumed = true
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(2)
		p.Kernel().Kill(victim)
		p.Kernel().Wake(victim)
	})
	k.Run()
	if resumed {
		t.Fatal("wake resurrected a killed process")
	}
}

// TestKillLeavesOthersRunning checks the rest of the schedule is
// untouched by a kill.
func TestKillLeavesOthersRunning(t *testing.T) {
	k := NewKernel()
	done := 0
	victim := k.Spawn("victim", func(p *Proc) { p.Sleep(100) })
	for i := 0; i < 3; i++ {
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(5)
			done++
		})
	}
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(1)
		p.Kernel().Kill(victim)
	})
	if end := k.Run(); end != 5 {
		t.Fatalf("run ended at t=%v, want 5", end)
	}
	if done != 3 {
		t.Fatalf("%d workers finished, want 3", done)
	}
}
