package sim

// Completion is a one-shot broadcast event: processes Wait until some
// other process calls Complete, after which every current and future Wait
// returns immediately. It is the handshake primitive for background
// activities (e.g. a burst-buffer drain) whose consumers need to observe
// "that batch of work is finished".
type Completion struct {
	k       *Kernel
	done    bool
	waiters []*Proc
}

// NewCompletion returns an incomplete completion bound to kernel k.
func NewCompletion(k *Kernel) *Completion { return &Completion{k: k} }

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.done }

// Complete marks the event done and wakes every waiter, in wait order.
// Completing twice is a no-op.
func (c *Completion) Complete() {
	if c.done {
		return
	}
	c.done = true
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.k.Wake(w)
	}
}

// Wait parks the calling process until Complete; it returns immediately if
// the event is already done.
func (c *Completion) Wait(p *Proc) {
	if c.done {
		return
	}
	c.waiters = append(c.waiters, p)
	p.Park()
}

// Gauge is a non-negative counter processes can wait to reach zero — the
// bookkeeping primitive for background write-back tracking: producers Add
// pending work, the background worker subtracts as it completes, and
// barrier-style consumers WaitZero.
type Gauge struct {
	k       *Kernel
	v       int64
	waiters []*Proc
}

// NewGauge returns a zero gauge bound to kernel k.
func NewGauge(k *Kernel) *Gauge { return &Gauge{k: k} }

// Value reports the current gauge value.
func (g *Gauge) Value() int64 { return g.v }

// Add changes the gauge by d. Dropping to zero wakes all WaitZero waiters;
// going negative panics (it means release without matching acquire).
func (g *Gauge) Add(d int64) {
	g.v += d
	if g.v < 0 {
		panic("sim: gauge went negative")
	}
	if g.v == 0 {
		ws := g.waiters
		g.waiters = nil
		for _, w := range ws {
			g.k.Wake(w)
		}
	}
}

// WaitZero parks the calling process until the gauge value is zero; it
// returns immediately when the gauge is already zero. A waiter woken by a
// zero crossing re-checks, so transient zero→nonzero races while several
// waiters resume still leave every returned waiter having observed zero.
func (g *Gauge) WaitZero(p *Proc) {
	for g.v != 0 {
		g.waiters = append(g.waiters, p)
		p.Park()
	}
}
