package sim

// Awaitable is the common face of the kernel's blocking primitives: a
// condition a process can block on until some other process makes it
// ready. Completion (one-shot broadcast) and Gauge (counter reaching
// zero) both implement it, so higher layers can hold "something to wait
// for" without caring which primitive backs it.
type Awaitable interface {
	// Wait parks the calling process until the condition is ready; it
	// returns immediately if the condition is already ready.
	Wait(p *Proc)
	// Ready reports whether Wait would return without blocking.
	Ready() bool
}

var (
	_ Awaitable = (*Completion)(nil)
	_ Awaitable = (*Gauge)(nil)
)

// waitQueue is the pooled wait list behind every blocking primitive
// (Completion, Gauge, Condition). Backing arrays come from the kernel's
// free pool and return to it after a broadcast, so steady-state
// park/wake cycles allocate nothing. The pooling is safe because wakes
// only schedule queue entries — a woken process re-parking into the
// same primitive gets a fresh array, never the one being drained — and
// because stale entries for superseded wakes are tombstoned by seq, a
// recycled array can never resurrect or double-wake a process.
type waitQueue struct {
	k  *Kernel
	ws []*Proc
}

// park appends p to the wait list and parks it.
func (w *waitQueue) park(p *Proc) {
	if w.ws == nil {
		w.ws = w.k.grabWaiters()
	}
	w.ws = append(w.ws, p)
	p.Park()
}

// wakeAllAt schedules every current waiter to resume at time t, in wait
// order, then recycles the backing array.
func (w *waitQueue) wakeAllAt(t Time) {
	ws := w.ws
	if ws == nil {
		return
	}
	w.ws = nil
	for _, q := range ws {
		w.k.WakeAt(t, q)
	}
	w.k.releaseWaiters(ws)
}

func (w *waitQueue) len() int { return len(w.ws) }

// Completion is a one-shot broadcast event: processes Wait until some
// other process calls Complete, after which every current and future Wait
// returns immediately. It is the handshake primitive for background
// activities (e.g. a burst-buffer drain) whose consumers need to observe
// "that batch of work is finished".
type Completion struct {
	done bool
	w    waitQueue
}

// NewCompletion returns an incomplete completion bound to kernel k.
func NewCompletion(k *Kernel) *Completion { return &Completion{w: waitQueue{k: k}} }

// Ready reports whether Complete has been called.
func (c *Completion) Ready() bool { return c.done }

// Done reports whether Complete has been called.
//
// Deprecated: use Ready, the Awaitable form.
func (c *Completion) Done() bool { return c.Ready() }

// Complete marks the event done and wakes every waiter, in wait order.
// Completing twice is a no-op.
func (c *Completion) Complete() { c.CompleteAt(c.w.k.now) }

// CompleteAt marks the event done now but resumes the waiters at time
// t >= now — a timed broadcast for primitives (collectives, timed
// handshakes) that decide completion early but release at a computed
// instant. Completing twice is a no-op.
func (c *Completion) CompleteAt(t Time) {
	if c.done {
		return
	}
	c.done = true
	c.w.wakeAllAt(t)
}

// Wait parks the calling process until Complete; it returns immediately if
// the event is already done.
func (c *Completion) Wait(p *Proc) {
	if c.done {
		return
	}
	c.w.park(p)
}

// Gauge is a non-negative counter processes can wait to reach zero — the
// bookkeeping primitive for background write-back tracking: producers Add
// pending work, the background worker subtracts as it completes, and
// barrier-style consumers Wait.
type Gauge struct {
	v int64
	w waitQueue
}

// NewGauge returns a zero gauge bound to kernel k.
func NewGauge(k *Kernel) *Gauge { return &Gauge{w: waitQueue{k: k}} }

// Value reports the current gauge value.
func (g *Gauge) Value() int64 { return g.v }

// Ready reports whether the gauge is at zero (Wait would not block).
func (g *Gauge) Ready() bool { return g.v == 0 }

// Add changes the gauge by d. Dropping to zero wakes all waiters;
// going negative panics (it means release without matching acquire).
func (g *Gauge) Add(d int64) {
	g.v += d
	if g.v < 0 {
		panic("sim: gauge went negative")
	}
	if g.v == 0 {
		g.w.wakeAllAt(g.w.k.now)
	}
}

// Wait parks the calling process until the gauge value is zero; it
// returns immediately when the gauge is already zero. A waiter woken by a
// zero crossing re-checks, so transient zero→nonzero races while several
// waiters resume still leave every returned waiter having observed zero.
func (g *Gauge) Wait(p *Proc) {
	for g.v != 0 {
		g.w.park(p)
	}
}

// WaitZero parks the calling process until the gauge value is zero.
//
// Deprecated: use Wait, the Awaitable form.
func (g *Gauge) WaitZero(p *Proc) { g.Wait(p) }
