package sim

import "testing"

// TestWakeAtSupersedesPendingWake is the regression test for the stale
// heap entry bug: a WakeAt earlier than a pending scheduled resumption
// used to leave the later entry in the queue, and it re-fired — resuming
// the process a second time without anyone waking it. With tombstoning,
// the latest wake is the only one delivered.
func TestWakeAtSupersedesPendingWake(t *testing.T) {
	k := NewKernel()
	var resumes []Time
	sleeper := k.Spawn("sleeper", func(p *Proc) {
		p.Park() // woken by the waker below
		resumes = append(resumes, p.Now())
		p.Park() // must stay parked until the t=20 wake, not the stale t=10 entry
		resumes = append(resumes, p.Now())
	})
	k.Spawn("waker", func(p *Proc) {
		p.Kernel().WakeAt(10, sleeper) // pending resumption at 10...
		p.Kernel().WakeAt(2, sleeper)  // ...superseded by an earlier one
		p.Sleep(20)
		p.Kernel().Wake(sleeper) // the only legitimate second wake, at 20
	})
	k.Run()
	if len(resumes) != 2 || resumes[0] != 2 || resumes[1] != 20 {
		t.Fatalf("resumes = %v, want [2 20] (stale entry at 10 must not re-fire)", resumes)
	}
}

// TestWakeAtLaterSupersedes is the mirror case: re-waking at a later
// time moves the pending resumption instead of delivering both.
func TestWakeAtLaterSupersedes(t *testing.T) {
	k := NewKernel()
	var resumes []Time
	sleeper := k.Spawn("sleeper", func(p *Proc) {
		p.Park()
		resumes = append(resumes, p.Now())
	})
	k.Spawn("waker", func(p *Proc) {
		p.Kernel().WakeAt(3, sleeper)
		p.Kernel().WakeAt(7, sleeper)
	})
	k.Run()
	if len(resumes) != 1 || resumes[0] != 7 {
		t.Fatalf("resumes = %v, want [7] (latest wake wins, delivered once)", resumes)
	}
}

// TestKillSupersedesPendingSleep kills a victim whose sleep resumption is
// already queued: the kill must land at the kill time, and the victim's
// own (now stale) sleep event must neither resume it nor advance the
// clock past the rest of the run.
func TestKillSupersedesPendingSleep(t *testing.T) {
	k := NewKernel()
	resumed := false
	var diedAt Time
	victim := k.Spawn("victim", func(p *Proc) {
		defer func() { diedAt = p.Now() }()
		p.Sleep(1000)
		resumed = true
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(4)
		p.Kernel().Kill(victim)
	})
	if end := k.Run(); end != 4 {
		t.Fatalf("run ended at %v, want 4", end)
	}
	if resumed || diedAt != 4 {
		t.Fatalf("victim resumed=%v diedAt=%v, want death at 4 without resuming", resumed, diedAt)
	}
}

// TestSelfKillThenSleep has a process kill itself while running: the
// pending kill must not be overtaken by the subsequent sleep, and the
// process must die at the kill instant.
func TestSelfKillThenSleep(t *testing.T) {
	k := NewKernel()
	var diedAt Time
	resumed := false
	k.Spawn("suicidal", func(p *Proc) {
		defer func() { diedAt = p.Now() }()
		p.Sleep(2)
		p.Kernel().Kill(p) // takes effect at the next suspension
		p.Sleep(50)
		resumed = true
	})
	end := k.Run()
	if resumed {
		t.Fatal("self-killed process resumed past its sleep")
	}
	if diedAt != 2 || end != 2 {
		t.Fatalf("diedAt=%v end=%v, want both 2 (kill beats the t=52 sleep entry)", diedAt, end)
	}
}

// TestKillDuringPooledWait parks several waiters on a Completion, kills
// some of them, then completes — and then reuses the (recycled) wait
// list for a second cycle. Dead procs must never resurrect, and the
// recycled backing array must not leak wakes between primitives.
func TestKillDuringPooledWait(t *testing.T) {
	k := NewKernel()
	c1 := NewCompletion(k)
	c2 := NewCompletion(k)
	var woke1, woke2 []string
	victims := make([]*Proc, 0, 2)
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		p := k.Spawn(name, func(p *Proc) {
			c1.Wait(p)
			woke1 = append(woke1, p.Name())
			c2.Wait(p)
			woke2 = append(woke2, p.Name())
		})
		if name == "b" || name == "d" {
			victims = append(victims, p)
		}
	}
	k.Spawn("driver", func(p *Proc) {
		p.Sleep(1)
		for _, v := range victims {
			p.Kernel().Kill(v)
		}
		p.Sleep(1)
		c1.Complete() // wait list recycles into the kernel pool here
		p.Sleep(1)
		c2.Complete() // second cycle runs on a recycled array
	})
	k.Run()
	if got, want := len(woke1), 2; got != want {
		t.Fatalf("first cycle woke %v, want the 2 surviving procs", woke1)
	}
	for _, n := range woke1 {
		if n == "b" || n == "d" {
			t.Fatalf("killed proc %q resurrected through the pooled wait list", n)
		}
	}
	if len(woke2) != 2 {
		t.Fatalf("second cycle woke %v, want the same 2 survivors", woke2)
	}
}

// TestKillDuringFastPathSleepStorm interleaves a killer with a victim
// running mostly fast-path (run-to-completion) sleeps: the kill must
// still land at the next suspension after it is issued, proving the fast
// path checks for a pending death and no recycled event resurrects the
// victim afterwards.
func TestKillDuringFastPathSleepStorm(t *testing.T) {
	k := NewKernel()
	steps := 0
	victim := k.Spawn("victim", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(0.5)
			steps++
		}
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(10.25)
		p.Kernel().Kill(victim)
	})
	end := k.Run()
	if end != 10.25 {
		t.Fatalf("run ended at %v, want 10.25", end)
	}
	// The victim completed the sleeps that ended at or before 10.25
	// (t=0.5 … 10) and died inside the next one.
	if steps != 20 {
		t.Fatalf("victim completed %d steps, want 20", steps)
	}
}

// TestStatsCounters sanity-checks the scheduler counters: a pure timer
// workload should resume mostly through the fast path, and superseded
// wakes should surface as stale tombstones.
func TestStatsCounters(t *testing.T) {
	k := NewKernel()
	sleeper := k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1)
		}
	})
	_ = sleeper
	k.Run()
	st := k.Stats()
	if st.FastPathEvents < 90 {
		t.Fatalf("FastPathEvents = %d, want nearly all of the 100 sleeps", st.FastPathEvents)
	}
	if st.Events() != st.QueueEvents+st.FastPathEvents {
		t.Fatalf("Events() = %d, want QueueEvents+FastPathEvents", st.Events())
	}

	k2 := NewKernel()
	parked := k2.Spawn("parked", func(p *Proc) { p.Park() })
	k2.Spawn("waker", func(p *Proc) {
		p.Kernel().WakeAt(5, parked)
		p.Kernel().WakeAt(1, parked)
	})
	k2.Run()
	if st2 := k2.Stats(); st2.Stale == 0 {
		t.Fatalf("Stale = 0, want the superseded wake counted; stats %+v", st2)
	}
}

// TestFastPathDisabled checks WithTimerFastPath(false) routes every sleep
// through the queue, with identical timing.
func TestFastPathDisabled(t *testing.T) {
	k := NewKernel(WithTimerFastPath(false))
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1)
		}
	})
	end := k.Run()
	if end != 10 {
		t.Fatalf("end = %v, want 10", end)
	}
	st := k.Stats()
	if st.FastPathEvents != 0 {
		t.Fatalf("FastPathEvents = %d with the fast path disabled", st.FastPathEvents)
	}
	if st.QueueEvents == 0 {
		t.Fatal("QueueEvents = 0: sleeps must go through the queue")
	}
}
