package sim

// eventQueue is the kernel's pending-event store. Implementations must
// return events in exact (at, seq) order — the total order every replay
// guarantee in the repository rests on — so the queue choice is purely a
// cost decision, never a behavioural one.
//
// Two implementations exist: heapQueue, the classic binary heap (O(log n)
// per operation, cache-friendly at small scale), and calendarQueue, a
// bucketed time wheel (amortized O(1) per operation) that wins once a
// machine-scale run keeps thousands of events in flight. Both store
// events by value in recycled backing arrays, so steady-state scheduling
// allocates nothing.
type eventQueue interface {
	// push inserts an event. Events arrive with at >= the time of the
	// last pop (the kernel never schedules into the past), except before
	// the first pop, where any order is possible.
	push(e event)
	// pop removes and returns the earliest event by (at, seq).
	pop() (event, bool)
	// peekAt reports the earliest pending event time without removing
	// it. The kernel's run-to-completion fast path asks this before
	// every timer sleep, so implementations keep it cheap.
	peekAt() (Time, bool)
	// len reports the number of stored events (tombstoned entries
	// included — the kernel filters those at pop).
	len() int
}

// evLess is the kernel's total event order: time, then schedule sequence.
func evLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// evPush inserts e into the min-heap h and returns the grown slice.
func evPush(h []event, e event) []event {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// evPop removes the minimum of the min-heap h, returning it and the
// shrunk slice (which reuses h's backing array).
func evPop(h []event) (event, []event) {
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the *Proc reference for the collector
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && evLess(h[l], h[least]) {
			least = l
		}
		if r < n && evLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return min, h
}

// heapQueue is the binary-heap event queue — the implementation the
// kernel has always had, minus the container/heap interface boxing that
// used to allocate on every push.
type heapQueue struct {
	h []event
}

func (q *heapQueue) push(e event) { q.h = evPush(q.h, e) }

func (q *heapQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	var e event
	e, q.h = evPop(q.h)
	return e, true
}

func (q *heapQueue) peekAt() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) len() int { return len(q.h) }

const (
	// calMinBuckets is the smallest bucket array a calendar queue keeps.
	calMinBuckets = 16
	// calMaxIndex caps the bucket index computed from at/width; events
	// further out (Infinity sleeps, pathological widths) go to the
	// overflow heap instead of risking float->int overflow.
	calMaxIndex = float64(1 << 50)
)

// calendarQueue is a classic Brown calendar queue: buckets of width
// `width` seconds addressed by floor(at/width) mod len(buckets), scanned
// one bucket-window at a time from the current clock position. Each
// bucket is itself a small (at, seq) min-heap, so same-bucket events —
// including exact-time ties, which always hash to the same bucket — pop
// in exactly the order the binary heap would give. Events too far in the
// future to index safely live in a plain overflow heap; since every
// indexable event is earlier than any overflow event, the overflow only
// serves pops once the buckets are empty.
//
// The scan tracks its position as win, the unwrapped integer window
// index, and decides window membership with calWindow — the same
// floored division push uses for bucket placement. Keeping one shared
// computation is load-bearing: deriving window boundaries separately
// (e.g. accumulating anchor += width) drifts away from the placement
// arithmetic after enough windows, and the scan then skips a bucket
// that still holds the minimum — an out-of-order pop a full wrap later.
type calendarQueue struct {
	buckets  [][]event
	width    Time
	size     int   // events in buckets (overflow excluded)
	cur      int   // bucket the scan is positioned on: int(win) % len
	win      int64 // unwrapped window index the scan is positioned on
	overflow heapQueue
	scratch  []event // recycled collection buffer for resizes
}

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]event, calMinBuckets),
		width:   1e-3,
	}
}

func (q *calendarQueue) len() int { return q.size + q.overflow.len() }

// calWindow maps a time to its unwrapped window index under the current
// width. Push placement, scan membership and reanchoring all go through
// this one function so their arithmetic can never disagree.
func (q *calendarQueue) calWindow(at Time) int64 {
	return int64(float64(at) / float64(q.width))
}

// reanchor positions the scan on the bucket window containing time at.
func (q *calendarQueue) reanchor(at Time) {
	q.win = q.calWindow(at)
	q.cur = int(q.win) & (len(q.buckets) - 1)
}

func (q *calendarQueue) push(e event) {
	f := float64(e.at) / float64(q.width)
	if !(f < calMaxIndex) { // NaN-safe: also catches Infinity
		q.overflow.push(e)
		return
	}
	w := int64(f)
	if q.size == 0 || w < q.win {
		// Empty queue, or an out-of-order pre-run push (SpawnAt before
		// earlier Spawns): move the scan back so the event is found
		// without a full wrap.
		q.win = w
		q.cur = int(w) & (len(q.buckets) - 1)
	}
	i := int(w) & (len(q.buckets) - 1)
	q.buckets[i] = evPush(q.buckets[i], e)
	q.size++
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// findMin positions the scan on the bucket holding the earliest event
// and reports whether the buckets hold any event at all. The fast path:
// the event is within the current window of the current bucket. Each
// empty window advances the scan one bucket; a full wrap without a hit
// (sparse far-future events) falls back to a direct minimum search.
func (q *calendarQueue) findMin() bool {
	if q.size == 0 {
		return false
	}
	n := len(q.buckets)
	for i := 0; i < n; i++ {
		if b := q.buckets[q.cur]; len(b) > 0 && q.calWindow(b[0].at) <= q.win {
			return true
		}
		q.cur++
		if q.cur == n {
			q.cur = 0
		}
		q.win++
	}
	// Direct search: jump the scan to the globally earliest event.
	best := -1
	for i, b := range q.buckets {
		if len(b) == 0 {
			continue
		}
		if best < 0 || evLess(b[0], q.buckets[best][0]) {
			best = i
		}
	}
	q.reanchor(q.buckets[best][0].at)
	q.cur = best
	return true
}

func (q *calendarQueue) pop() (event, bool) {
	if !q.findMin() {
		return q.overflow.pop()
	}
	var e event
	e, q.buckets[q.cur] = evPop(q.buckets[q.cur])
	q.size--
	if q.size < len(q.buckets)/4 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return e, true
}

func (q *calendarQueue) peekAt() (Time, bool) {
	if !q.findMin() {
		return q.overflow.peekAt()
	}
	return q.buckets[q.cur][0].at, true
}

// resize rebuilds the bucket array at the new size and re-estimates the
// bucket width from the current event population: the occupied time span
// divided by the event count, doubled, so a bucket window holds a couple
// of events on average. Degenerate spans (all events at one instant)
// keep the previous width — the per-bucket heaps absorb the clustering.
func (q *calendarQueue) resize(n int) {
	all := q.scratch[:0]
	for i, b := range q.buckets {
		all = append(all, b...)
		q.buckets[i] = b[:0]
	}
	minAt, maxAt := Infinity, Time(0)
	for _, e := range all {
		if e.at < minAt {
			minAt = e.at
		}
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	if len(all) > 0 {
		if w := (maxAt - minAt) * 2 / Time(len(all)); w > 0 && w < Infinity {
			q.width = w
		}
	}
	if n < calMinBuckets {
		n = calMinBuckets
	}
	if n != len(q.buckets) {
		q.buckets = make([][]event, n)
	}
	q.size = 0
	for _, e := range all {
		// Events re-enter through push so overflow routing re-applies
		// under the new width.
		q.push(e)
	}
	for i := range all {
		all[i] = event{}
	}
	q.scratch = all
	if q.size > 0 {
		q.findMin()
	}
}
