// Package sim provides a deterministic discrete-event simulation kernel.
//
// Processes are goroutines that advance a shared virtual clock by sleeping
// or by blocking on simulated resources. Exactly one process runs at a time;
// the kernel hands control to the process whose next event is earliest,
// breaking ties by event sequence number, so runs are bit-reproducible.
//
// The kernel is the substrate for the simulated MPI runtime and the
// simulated parallel file systems: storage devices are modeled as FCFS
// bandwidth/latency servers (see Server and MultiServer) and rank programs
// are ordinary Go code executed inside processes.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Infinity is a time later than any event the kernel will ever schedule.
const Infinity Time = math.MaxFloat64

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Kernel owns the virtual clock and the event queue.
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	live   int // processes spawned and not yet finished

	yield  chan yieldMsg // processes signal the scheduler here
	panics []any         // panics propagated out of processes
}

type yieldKind int

const (
	yieldSleep yieldKind = iota // process scheduled its own resumption
	yieldPark                   // process blocks until someone wakes it
	yieldDone                   // process finished
	yieldPanic                  // process panicked
)

type yieldMsg struct {
	kind yieldKind
	val  any // panic value for yieldPanic
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan yieldMsg)}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Proc is a simulated process. Methods on Proc must only be called from
// inside the process's own goroutine (the function passed to Spawn).
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	parked bool
	done   bool
	killed bool
}

// Name reports the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// killSignal is the panic payload a killed process unwinds with; the
// spawn wrapper recognizes it and reports a clean death, not a panic.
type killSignal struct{ name string }

// Spawn creates a process and schedules it to start at the current virtual
// time. The function fn runs in its own goroutine but is only ever executed
// while the kernel has handed it control.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt is like Spawn but delays the start of the process to time at,
// which must not be earlier than the current virtual time.
func (k *Kernel) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	if at < k.now {
		panic("sim: SpawnAt in the past")
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	k.schedule(at, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					k.yield <- yieldMsg{kind: yieldPanic, val: fmt.Sprintf("sim: process %q panicked: %v", p.name, r)}
					return
				}
			}
			p.done = true
			k.yield <- yieldMsg{kind: yieldDone}
		}()
		p.await()
		fn(p)
	}()
	return p
}

func (k *Kernel) schedule(at Time, p *Proc) {
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, p: p})
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If any process panicked, Run panics with the first such
// panic value after the event queue drains or immediately on detection.
func (k *Kernel) Run() Time {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		if e.p.done {
			continue // stale wake of a finished process
		}
		if e.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = e.at
		e.p.parked = false
		e.p.resume <- struct{}{}
		msg := <-k.yield
		switch msg.kind {
		case yieldDone:
			k.live--
		case yieldPanic:
			panic(msg.val)
		case yieldPark, yieldSleep:
			// nothing: either a future event exists (sleep) or another
			// process is responsible for waking it (park).
		}
	}
	if k.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events at t=%v", k.live, k.now))
	}
	return k.now
}

// Sleep suspends the process for d seconds of virtual time.
// Negative durations are treated as zero.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.k.now + d)
}

// SleepUntil suspends the process until virtual time t. Times in the past
// are treated as "now" (the process still yields, giving other processes
// scheduled at the same instant a chance to run in seq order).
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.schedule(t, p)
	p.k.yield <- yieldMsg{kind: yieldSleep}
	p.await()
}

// await blocks until the kernel hands the process control again, then
// unwinds it if a Kill arrived while it was suspended. Every suspension
// point funnels through here, so a kill takes effect at the victim's next
// scheduling boundary — the discrete-event analogue of "the node died
// while the program was blocked".
func (p *Proc) await() {
	<-p.resume
	if p.killed {
		panic(killSignal{p.name})
	}
}

// Yield lets other processes scheduled at the current instant run first.
func (p *Proc) Yield() { p.SleepUntil(p.k.now) }

// Park suspends the process indefinitely; some other process must call
// Wake (or WakeAt) to resume it. Parking with no eventual waker is a
// deadlock, which Run reports.
func (p *Proc) Park() {
	p.parked = true
	p.k.yield <- yieldMsg{kind: yieldPark}
	p.await()
}

// Killed reports whether the process has been marked for termination.
func (p *Proc) Killed() bool { return p.killed }

// Kill marks process q for termination and schedules it to resume at the
// current virtual time: instead of continuing, q unwinds (running its
// deferred functions) and counts as finished, never as a panic. This is
// the fault-injection primitive — a victim blocked in a sleep, a resource
// wait, or a park dies at that point in virtual time. Killing a finished
// or already-killed process is a no-op. Any event still queued for q is
// discarded when it pops (finished processes are skipped), and a Wake of
// a killed process is likewise harmless.
func (k *Kernel) Kill(q *Proc) {
	if q == nil || q.done || q.killed {
		return
	}
	q.killed = true
	k.schedule(k.now, q)
}

// Wake schedules parked process q to resume at the current virtual time.
// It must be called from within a running process or before Run.
func (k *Kernel) Wake(q *Proc) { k.WakeAt(k.now, q) }

// WakeAt schedules parked process q to resume at time t >= now.
func (k *Kernel) WakeAt(t Time, q *Proc) {
	if t < k.now {
		t = k.now
	}
	if q.done {
		return
	}
	k.schedule(t, q)
}

// WaitGroup-style helper: Condition is a simple broadcast condition for
// processes. Waiters park; Broadcast wakes all current waiters.
type Condition struct {
	k       *Kernel
	waiters []*Proc
}

// NewCondition returns a condition bound to kernel k.
func NewCondition(k *Kernel) *Condition { return &Condition{k: k} }

// Wait parks the calling process until the next Broadcast.
func (c *Condition) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.Park()
}

// Broadcast wakes every currently waiting process, in wait order.
func (c *Condition) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.k.Wake(w)
	}
}

// Len reports the number of parked waiters.
func (c *Condition) Len() int { return len(c.waiters) }

// SortProcsByName sorts a slice of processes by name; useful for
// deterministic bookkeeping in higher layers.
func SortProcsByName(ps []*Proc) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].name < ps[j].name })
}
