// Package sim provides a deterministic discrete-event simulation kernel.
//
// Processes are goroutines that advance a shared virtual clock by sleeping
// or by blocking on simulated resources. Exactly one process runs at a time;
// the kernel hands control to the process whose next event is earliest,
// breaking ties by event sequence number, so runs are bit-reproducible.
//
// The kernel is the substrate for the simulated MPI runtime and the
// simulated parallel file systems: storage devices are modeled as FCFS
// bandwidth/latency servers (see Server and MultiServer) and rank programs
// are ordinary Go code executed inside processes.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Infinity is a time later than any event the kernel will ever schedule.
const Infinity Time = math.MaxFloat64

// event is a scheduled resumption of a process. Only the entry whose seq
// matches the process's pendingSeq is live; earlier entries for the same
// process are tombstones that the run loop discards when they pop, so a
// re-schedule (WakeAt racing a pending wake, a Kill superseding a sleep)
// can never resume a process twice or out of order.
type event struct {
	at  Time
	seq uint64
	p   *Proc
}

// Kernel owns the virtual clock and the event queue.
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now      Time
	q        eventQueue
	seq      uint64
	live     int  // processes spawned and not yet finished
	fastPath bool // run-to-completion timer sleeps (see Proc.SleepUntil)

	yield chan yieldMsg // processes signal the scheduler here
	stats KernelStats

	waitPool [][]*Proc // recycled wait-list backing arrays (see waitQueue)
}

// KernelStats counts scheduler work for benchmarks and tuning. All
// counters are cumulative over the kernel's lifetime.
type KernelStats struct {
	// QueueEvents is the number of process resumptions delivered through
	// the event queue (one channel round-trip each).
	QueueEvents uint64
	// FastPathEvents is the number of timer sleeps that ran to completion
	// in-line: no earlier event existed, so the clock advanced without
	// touching the queue or handing control to the scheduler.
	FastPathEvents uint64
	// Stale is the number of tombstoned queue entries discarded at pop
	// (superseded wakes, kills overtaking sleeps, finished processes).
	Stale uint64
}

// Events reports the total number of process resumptions, however they
// were delivered.
func (s KernelStats) Events() uint64 { return s.QueueEvents + s.FastPathEvents }

// Stats returns a snapshot of the kernel's scheduler counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

type yieldKind int

const (
	yieldSleep yieldKind = iota // process scheduled its own resumption
	yieldPark                   // process blocks until someone wakes it
	yieldDone                   // process finished
	yieldPanic                  // process panicked
)

type yieldMsg struct {
	kind yieldKind
	val  any // panic value for yieldPanic
}

// Option configures a Kernel at construction time.
type Option func(k *Kernel)

// WithHeapQueue selects the binary-heap event queue (the default):
// O(log n) per operation, lowest constant factors at small scale.
func WithHeapQueue() Option {
	return func(k *Kernel) { k.q = &heapQueue{} }
}

// WithCalendarQueue selects the calendar event queue: a bucketed time
// wheel with amortized O(1) scheduling that outpaces the heap once a
// machine-scale run keeps thousands of events in flight. Replay is
// bit-identical to the heap — the (at, seq) total order is preserved —
// so the choice is purely a performance knob.
func WithCalendarQueue() Option {
	return func(k *Kernel) { k.q = newCalendarQueue() }
}

// WithTimerFastPath enables or disables the run-to-completion fast path
// for pure timer sleeps (enabled by default). Disabling it forces every
// sleep through the scheduler channel round-trip; the only reason to do
// that is benchmarking the fast path itself.
func WithTimerFastPath(on bool) Option {
	return func(k *Kernel) { k.fastPath = on }
}

// forcedQueue, when non-nil, overrides the queue choice of every kernel
// constructed in the process. Cross-implementation determinism suites use
// it to replay unmodified artifact runners on the non-default queue.
var forcedQueue func() eventQueue

// ForceQueueForTesting overrides the event-queue implementation of every
// subsequently constructed kernel — "heap" or "calendar" — and returns a
// function restoring the previous behaviour. Test-only; not safe for
// concurrent use with kernel construction.
func ForceQueueForTesting(kind string) (restore func()) {
	prev := forcedQueue
	switch kind {
	case "heap":
		forcedQueue = func() eventQueue { return &heapQueue{} }
	case "calendar":
		forcedQueue = func() eventQueue { return newCalendarQueue() }
	default:
		panic(fmt.Sprintf("sim: ForceQueueForTesting: unknown queue kind %q", kind))
	}
	return func() { forcedQueue = prev }
}

// NewKernel returns an empty kernel at virtual time zero. With no options
// it uses the binary-heap event queue and the timer fast path.
func NewKernel(opts ...Option) *Kernel {
	k := &Kernel{
		yield:    make(chan yieldMsg),
		q:        &heapQueue{},
		fastPath: true,
	}
	for _, o := range opts {
		o(k)
	}
	if forcedQueue != nil {
		k.q = forcedQueue()
	}
	return k
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Proc is a simulated process. Methods on Proc must only be called from
// inside the process's own goroutine (the function passed to Spawn).
type Proc struct {
	k          *Kernel
	name       string
	resume     chan struct{}
	pendingSeq uint64 // seq of the live queue entry; earlier ones are stale
	parked     bool
	done       bool
	killed     bool
}

// Name reports the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// killSignal is the panic payload a killed process unwinds with; the
// spawn wrapper recognizes it and reports a clean death, not a panic.
type killSignal struct{ name string }

// Spawn creates a process and schedules it to start at the current virtual
// time. The function fn runs in its own goroutine but is only ever executed
// while the kernel has handed it control.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt is like Spawn but delays the start of the process to time at,
// which must not be earlier than the current virtual time.
func (k *Kernel) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	if at < k.now {
		panic("sim: SpawnAt in the past")
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	k.schedule(at, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					k.yield <- yieldMsg{kind: yieldPanic, val: fmt.Sprintf("sim: process %q panicked: %v", p.name, r)}
					return
				}
			}
			p.done = true
			k.yield <- yieldMsg{kind: yieldDone}
		}()
		p.await()
		fn(p)
	}()
	return p
}

// schedule queues a resumption of p at time at. The new entry supersedes
// any still-queued earlier entry for p (which becomes a tombstone) —
// unless p has been killed, in which case the kill's own entry stays
// authoritative so nothing can reschedule past a pending death.
func (k *Kernel) schedule(at Time, p *Proc) {
	k.seq++
	if !p.killed {
		p.pendingSeq = k.seq
	}
	k.q.push(event{at: at, seq: k.seq, p: p})
}

// popLive pops queue entries until one is live, discarding tombstones:
// entries for finished processes and entries superseded by a later
// schedule of the same process.
func (k *Kernel) popLive() (event, bool) {
	for {
		e, ok := k.q.pop()
		if !ok {
			return event{}, false
		}
		if e.p.done || e.seq != e.p.pendingSeq {
			k.stats.Stale++
			continue
		}
		return e, true
	}
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If any process panicked, Run panics with the first such
// panic value after the event queue drains or immediately on detection.
func (k *Kernel) Run() Time {
	for {
		e, ok := k.popLive()
		if !ok {
			break
		}
		if e.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = e.at
		k.stats.QueueEvents++
		e.p.parked = false
		e.p.resume <- struct{}{}
		msg := <-k.yield
		switch msg.kind {
		case yieldDone:
			k.live--
		case yieldPanic:
			panic(msg.val)
		case yieldPark, yieldSleep:
			// nothing: either a future event exists (sleep) or another
			// process is responsible for waking it (park).
		}
	}
	if k.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events at t=%v", k.live, k.now))
	}
	return k.now
}

// Sleep suspends the process for d seconds of virtual time.
// Negative durations are treated as zero.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.k.now + d)
}

// SleepUntil suspends the process until virtual time t. Times in the past
// are treated as "now" (the process still yields, giving other processes
// scheduled at the same instant a chance to run in seq order).
//
// Fast path: when no pending event is due at or before t, nothing can run
// before this process resumes — only the running process can create new
// events, and kills or wakes can only be issued by running processes. The
// sleep therefore runs to completion in-line: the clock jumps to t and the
// process keeps going, with no queue traffic and no channel round-trip.
// The strict `> t` comparison keeps replay bit-identical: an event at
// exactly t was scheduled earlier, so it holds a smaller seq and must run
// first, which only the slow path can arrange.
func (p *Proc) SleepUntil(t Time) {
	k := p.k
	if t < k.now {
		t = k.now
	}
	if k.fastPath && !p.killed {
		if at, ok := k.q.peekAt(); !ok || at > t {
			k.now = t
			k.stats.FastPathEvents++
			return
		}
	}
	k.schedule(t, p)
	k.yield <- yieldMsg{kind: yieldSleep}
	p.await()
}

// await blocks until the kernel hands the process control again, then
// unwinds it if a Kill arrived while it was suspended. Every suspension
// point funnels through here, so a kill takes effect at the victim's next
// scheduling boundary — the discrete-event analogue of "the node died
// while the program was blocked".
func (p *Proc) await() {
	<-p.resume
	if p.killed {
		panic(killSignal{p.name})
	}
}

// Yield lets other processes scheduled at the current instant run first.
func (p *Proc) Yield() { p.SleepUntil(p.k.now) }

// Park suspends the process indefinitely; some other process must call
// Wake (or WakeAt) to resume it. Parking with no eventual waker is a
// deadlock, which Run reports.
func (p *Proc) Park() {
	p.parked = true
	p.k.yield <- yieldMsg{kind: yieldPark}
	p.await()
}

// Killed reports whether the process has been marked for termination.
func (p *Proc) Killed() bool { return p.killed }

// Kill marks process q for termination and schedules it to resume at the
// current virtual time: instead of continuing, q unwinds (running its
// deferred functions) and counts as finished, never as a panic. This is
// the fault-injection primitive — a victim blocked in a sleep, a resource
// wait, or a park dies at that point in virtual time. Killing a finished
// or already-killed process is a no-op. The kill supersedes any pending
// scheduled resumption of q (the stale entry is tombstoned), and a Wake
// of a killed process is likewise harmless.
func (k *Kernel) Kill(q *Proc) {
	if q == nil || q.done || q.killed {
		return
	}
	// Order matters: schedule first so the kill takes q's pendingSeq slot,
	// then set killed so no later schedule can take it back.
	k.schedule(k.now, q)
	q.killed = true
}

// Wake schedules parked process q to resume at the current virtual time.
// It must be called from within a running process or before Run.
func (k *Kernel) Wake(q *Proc) { k.WakeAt(k.now, q) }

// WakeAt schedules parked process q to resume at time t >= now. Re-waking
// a process whose wake is still pending moves the resumption to t — the
// previous entry is tombstoned, never delivered — so a second wake cannot
// make the process resume twice. Waking a finished or killed process is a
// no-op.
func (k *Kernel) WakeAt(t Time, q *Proc) {
	if t < k.now {
		t = k.now
	}
	if q == nil || q.done || q.killed {
		return
	}
	k.schedule(t, q)
}

// grabWaiters hands out a recycled wait-list backing array, or a fresh
// one when the pool is empty.
func (k *Kernel) grabWaiters() []*Proc {
	if n := len(k.waitPool); n > 0 {
		ws := k.waitPool[n-1]
		k.waitPool = k.waitPool[:n-1]
		return ws
	}
	return make([]*Proc, 0, 4)
}

// releaseWaiters returns a drained wait list to the pool. The caller must
// have forgotten its own reference: a recycled array may be handed to any
// other primitive on this kernel.
func (k *Kernel) releaseWaiters(ws []*Proc) {
	for i := range ws {
		ws[i] = nil
	}
	k.waitPool = append(k.waitPool, ws[:0])
}

// WaitGroup-style helper: Condition is a simple broadcast condition for
// processes. Waiters park; Broadcast wakes all current waiters.
type Condition struct {
	w waitQueue
}

// NewCondition returns a condition bound to kernel k.
func NewCondition(k *Kernel) *Condition { return &Condition{w: waitQueue{k: k}} }

// Wait parks the calling process until the next Broadcast.
func (c *Condition) Wait(p *Proc) {
	c.w.park(p)
}

// Broadcast wakes every currently waiting process, in wait order.
func (c *Condition) Broadcast() {
	c.w.wakeAllAt(c.w.k.now)
}

// Len reports the number of parked waiters.
func (c *Condition) Len() int { return c.w.len() }

// SortProcsByName sorts a slice of processes by name; useful for
// deterministic bookkeeping in higher layers.
func SortProcsByName(ps []*Proc) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].name < ps[j].name })
}
