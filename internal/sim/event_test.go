package sim

import "testing"

func TestCompletionBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCompletion(k)
	var wokeA, wokeB Time
	k.Spawn("a", func(p *Proc) { c.Wait(p); wokeA = p.Now() })
	k.Spawn("b", func(p *Proc) { c.Wait(p); wokeB = p.Now() })
	k.Spawn("completer", func(p *Proc) {
		p.Sleep(2)
		c.Complete()
		c.Complete() // idempotent
	})
	k.Run()
	if wokeA != 2 || wokeB != 2 {
		t.Errorf("waiters woke at %v/%v, want 2", wokeA, wokeB)
	}
	if !c.Done() {
		t.Error("completion must report done")
	}
	// Waiting after completion returns immediately.
	var late Time
	k2 := NewKernel()
	c2 := NewCompletion(k2)
	c2.Complete()
	k2.Spawn("late", func(p *Proc) { c2.Wait(p); late = p.Now() })
	k2.Run()
	if late != 0 {
		t.Errorf("late waiter blocked until %v", late)
	}
}

func TestGaugeWaitZero(t *testing.T) {
	k := NewKernel()
	g := NewGauge(k)
	g.Add(3)
	var woke Time
	k.Spawn("waiter", func(p *Proc) { g.WaitZero(p); woke = p.Now() })
	k.Spawn("worker", func(p *Proc) {
		p.Sleep(1)
		g.Add(-1)
		p.Sleep(1)
		g.Add(-2)
	})
	k.Run()
	if woke != 2 {
		t.Errorf("waiter woke at %v, want 2", woke)
	}
	if g.Value() != 0 {
		t.Errorf("gauge value %d, want 0", g.Value())
	}
	// WaitZero on an already-zero gauge must not park.
	k.Spawn("instant", func(p *Proc) {
		t0 := p.Now()
		g.WaitZero(p)
		if p.Now() != t0 {
			t.Error("WaitZero blocked on a zero gauge")
		}
	})
	k.Run()
}

func TestGaugeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative gauge must panic")
		}
	}()
	g := NewGauge(NewKernel())
	g.Add(-1)
}
