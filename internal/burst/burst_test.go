package burst_test

import (
	"bytes"
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

const MB = 1 << 20

// rig is a one-node test harness: a Lustre backing store and a burst tier.
type rig struct {
	k    *sim.Kernel
	back *lustre.FS
	tier *burst.Tier
	c    *pfs.Client
}

func newRig(spec burst.Spec) *rig {
	k := sim.NewKernel()
	back := lustre.New(k, lustre.DefaultParams())
	return &rig{
		k:    k,
		back: back,
		tier: burst.NewTier(k, spec, back),
		c:    &pfs.Client{Node: 0, NIC: sim.NewServer(k, 25e9, 0)},
	}
}

// run executes fn in a simulated process and drains the kernel.
func (r *rig) run(fn func(p *sim.Proc)) sim.Time {
	r.k.Spawn("test", fn)
	return r.k.Run()
}

// directWriteTime measures how long a direct PFS write of n bytes takes.
func directWriteTime(t *testing.T, n int64) sim.Duration {
	t.Helper()
	k := sim.NewKernel()
	back := lustre.New(k, lustre.DefaultParams())
	c := &pfs.Client{Node: 0, NIC: sim.NewServer(k, 25e9, 0)}
	var d sim.Duration
	k.Spawn("direct", func(p *sim.Proc) {
		f, err := back.Create(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		t0 := p.Now()
		f.WriteAt(p, c, 0, n, nil)
		d = p.Now() - t0
		f.Close(p, c)
	})
	k.Run()
	return d
}

func TestZeroCapacityDegradesToDirect(t *testing.T) {
	r := newRig(burst.Spec{}) // zero spec: no buffer
	var staged sim.Duration
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		f.WriteAt(p, r.c, 0, 8*MB, nil)
		staged = p.Now() - t0
		f.Close(p, r.c)
	})
	if direct := directWriteTime(t, 8*MB); staged != direct {
		t.Errorf("zero-capacity write took %v, direct takes %v", staged, direct)
	}
	st := r.tier.Stats()
	if st.AbsorbedBytes != 0 || st.PendingBytes != 0 {
		t.Errorf("zero-capacity tier buffered data: %+v", st)
	}
}

func TestAbsorbAtLocalSpeedThenDrain(t *testing.T) {
	r := newRig(burst.Spec{CapacityBytes: 256 * MB, Rate: 10e9, Policy: burst.PolicyImmediate})
	var absorbed sim.Duration
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		f.WriteAt(p, r.c, 0, 64*MB, nil)
		absorbed = p.Now() - t0
		if got := f.Size(); got != 64*MB {
			t.Errorf("logical size %d, want %d", got, 64*MB)
		}
		f.Close(p, r.c)
	})
	if direct := directWriteTime(t, 64*MB); absorbed >= direct/4 {
		t.Errorf("buffered write took %v, want well under direct %v", absorbed, direct)
	}
	st := r.tier.Stats()
	if st.AbsorbedBytes != 64*MB || st.DrainedBytes != 64*MB || st.PendingBytes != 0 {
		t.Errorf("drain accounting wrong after Run: %+v", st)
	}
	// The backing file is fully written once the kernel drains.
	n, err := r.back.Namespace().Lookup("/x/f")
	if err != nil || n.Size != 64*MB {
		t.Errorf("backing size %v err %v, want %d", n, err, 64*MB)
	}
}

func TestCapacityPressureFallsBackToPFS(t *testing.T) {
	// Epoch-end policy never drains on its own, so the 1 MB buffer fills
	// and the overflow must go through at PFS rates.
	r := newRig(burst.Spec{CapacityBytes: 1 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	var wrote sim.Duration
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		f.WriteAt(p, r.c, 0, 3*MB, nil)
		wrote = p.Now() - t0
		st := r.tier.Stats()
		if st.AbsorbedBytes != 1*MB || st.FallbackBytes != 2*MB {
			t.Errorf("absorbed %d fallback %d, want 1 MB / 2 MB", st.AbsorbedBytes, st.FallbackBytes)
		}
		if f.Size() != 3*MB {
			t.Errorf("logical size %d, want %d", f.Size(), 3*MB)
		}
		r.tier.WaitDrained(p)
		f.Close(p, r.c)
	})
	if direct := directWriteTime(t, 2*MB); wrote < direct {
		t.Errorf("overflow write took %v, must pay at least the direct cost of 2 MB (%v)", wrote, direct)
	}
	n, err := r.back.Namespace().Lookup("/x/f")
	if err != nil || n.Size != 3*MB {
		t.Errorf("backing size after WaitDrained: %v err %v, want %d", n, err, 3*MB)
	}
}

func TestWatermarkPolicy(t *testing.T) {
	r := newRig(burst.Spec{
		CapacityBytes: 10 * MB, Rate: 10e9,
		Policy: burst.PolicyWatermark, HighWater: 0.5, LowWater: 0.2,
	})
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 4*MB, nil) // below high watermark: no drain
		p.Sleep(1.0)
		if st := r.tier.Stats(); st.DrainedBytes != 0 || st.PendingBytes != 4*MB {
			t.Errorf("below watermark the tier must not drain: %+v", st)
		}
		f.WriteAt(p, r.c, 4*MB, 2*MB, nil) // crosses 5 MB: drain starts
		p.Sleep(1.0)
		st := r.tier.Stats()
		if st.DrainedBytes == 0 {
			t.Error("crossing the high watermark must start a drain")
		}
		if st.PendingBytes > 2*MB {
			t.Errorf("drain must run down to the low watermark (2 MB), pending %d", st.PendingBytes)
		}
		f.Close(p, r.c)
	})
}

func TestSyncForcesPFSDurability(t *testing.T) {
	r := newRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 16*MB, nil)
		if n, _ := r.back.Namespace().Lookup("/x/f"); n != nil && n.Size != 0 {
			t.Errorf("before sync the backing file must be empty, got %d", n.Size)
		}
		f.Sync(p, r.c) // fsync == drain + backing sync
		if n, _ := r.back.Namespace().Lookup("/x/f"); n == nil || n.Size != 16*MB {
			t.Errorf("after Sync the backing file must hold all 16 MB")
		}
		st := r.tier.Stats()
		if st.PendingBytes != 0 || st.LastDrainEnd > p.Now() {
			t.Errorf("sync returned before drain completed: %+v at %v", st, p.Now())
		}
		f.Close(p, r.c)
	})
}

func TestReadWaitsForDrainAndSeesContent(t *testing.T) {
	r := newRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	payload := []byte("staged bytes must not be observed stale")
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, int64(len(payload)), payload)
		got := f.ReadAt(p, r.c, 0, int64(len(payload)))
		if !bytes.Equal(got, payload) {
			t.Errorf("read %q, want %q", got, payload)
		}
		if st := r.tier.Stats(); st.PendingBytes != 0 {
			t.Errorf("read must force the drain, pending %d", st.PendingBytes)
		}
		f.Close(p, r.c)
	})
}

func TestTruncateCancelsPendingSegments(t *testing.T) {
	r := newRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 8*MB, nil)
		f.Close(p, r.c)
		// Re-create (truncate): the staged 8 MB must be discarded, not
		// drained into the truncated file later.
		f2, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		if st := r.tier.Stats(); st.PendingBytes != 0 {
			t.Errorf("truncate must cancel pending segments, pending %d", st.PendingBytes)
		}
		f2.WriteAt(p, r.c, 0, 1*MB, nil)
		r.tier.WaitDrained(p)
		f2.Close(p, r.c)
	})
	if n, _ := r.back.Namespace().Lookup("/x/f"); n == nil || n.Size != 1*MB {
		t.Errorf("backing file must hold only the post-truncate write")
	}
}

func TestWaitDrainedBarrier(t *testing.T) {
	r := newRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, DrainRate: 1e9, Policy: burst.PolicyEpochEnd})
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 32*MB, nil)
		t0 := p.Now()
		r.tier.WaitDrained(p)
		if waited := p.Now() - t0; waited <= 0 {
			t.Error("WaitDrained must block until write-back completes")
		}
		if st := r.tier.Stats(); st.PendingBytes != 0 || st.DrainedBytes != 32*MB {
			t.Errorf("after WaitDrained: %+v", st)
		}
		// A second wait with nothing pending returns immediately.
		t1 := p.Now()
		r.tier.WaitDrained(p)
		if p.Now() != t1 {
			t.Error("idle WaitDrained must not block")
		}
		f.Close(p, r.c)
	})
}

func TestFallbackPreservesWriteOrder(t *testing.T) {
	// Overwrite-in-place under buffer pressure: an older buffered segment
	// must never drain over newer bytes that went to the backing store
	// directly when the buffer was full.
	r := newRig(burst.Spec{CapacityBytes: 1 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	old := bytes.Repeat([]byte{'a'}, 1*MB)
	new_ := bytes.Repeat([]byte{'b'}, 1*MB)
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 1*MB, old)  // fills the buffer
		f.WriteAt(p, r.c, 0, 1*MB, new_) // same range, buffer full
		got := f.ReadAt(p, r.c, 0, 4)
		if !bytes.Equal(got, []byte("bbbb")) {
			t.Errorf("read %q after overwrite under pressure, want last-write-wins %q", got, "bbbb")
		}
		f.Close(p, r.c)
	})
}
