package burst_test

import (
	"fmt"
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

// dMB is a decimal megabyte: at the test's 1e6 B/s drain cap one dMB
// drains in exactly one virtual second, so sleep windows map cleanly onto
// "how many whole segments have been written back". Lustre RPC/transfer
// costs add only milliseconds, well inside the half-second margins the
// expectations leave.
const dMB = 1_000_000

// durStep is one step of a durability scenario: write a file, nudge the
// epoch-end drain, sleep a window, crash the node, or force a full drain —
// then (when want != nil) compare the tier's durability snapshot.
type durStep struct {
	write    int64 // create a fresh file of this many bytes
	rewrite  bool  // ... at a fixed shared path (truncate semantics)
	nudge    bool  // DrainEpoch (epoch boundary)
	sleep    sim.Duration
	crash    bool  // crash node 0
	survive  bool  // ... with NVMe-survivable staged state
	wantLost int64 // expected CrashReport.LostBytes (crash steps only)
	wantSurv int64 // expected CrashReport.SurvivingBytes (survive crashes)
	wait     bool  // WaitDrained barrier
	want     *burst.Durability
}

// TestDurabilityAccounting drives the buffered/PFS-durable ledger through
// epoch boundaries, partial drains, crashes at both survivability levels,
// and capacity fallback, asserting the exact snapshot after each step.
// This is the accounting the fault layer's lost-work math depends on.
func TestDurabilityAccounting(t *testing.T) {
	cases := []struct {
		name  string
		spec  burst.Spec
		steps []durStep
	}{
		{
			// Three 1 dMB files in epoch 0, two more in epoch 1, drain
			// running continuously from the first nudge: snapshots catch
			// the drain mid-backlog on both sides of the epoch boundary.
			name: "partial drain across epoch boundary",
			spec: burst.Spec{CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd},
			steps: []durStep{
				{write: dMB}, {write: dMB}, {write: dMB},
				{nudge: true, sleep: 1.5, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 1 * dMB, PendingBytes: 2 * dMB}},
				{write: dMB}, {write: dMB},
				{nudge: true, sleep: 2.2, want: &burst.Durability{
					BufferedBytes: 5 * dMB, DurableBytes: 3 * dMB, PendingBytes: 2 * dMB}},
				{wait: true, want: &burst.Durability{
					BufferedBytes: 5 * dMB, DurableBytes: 5 * dMB}},
			},
		},
		{
			// Node loss 1.5 s into a 3 dMB backlog: the first segment is
			// durable, the second dies mid-transfer with the node (its
			// device time streamed nowhere), the queued third is destroyed
			// outright — everything not yet written back is gone.
			name: "node loss destroys in-flight and queued staged state",
			spec: burst.Spec{CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd},
			steps: []durStep{
				{write: dMB}, {write: dMB}, {write: dMB},
				{nudge: true, sleep: 1.5},
				{crash: true, wantLost: 2 * dMB, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 1 * dMB, LostBytes: 2 * dMB}},
				{wait: true, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 1 * dMB, LostBytes: 2 * dMB}},
			},
		},
		{
			// The same kill with NVMe survival: the aborted in-flight
			// segment is requeued for retransmission, nothing is lost, and
			// the redrain makes everything durable.
			name: "nvme survival requeues the aborted in-flight transfer",
			spec: burst.Spec{CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd},
			steps: []durStep{
				{write: dMB}, {write: dMB}, {write: dMB},
				{nudge: true, sleep: 1.5},
				{crash: true, survive: true, wantSurv: 2 * dMB, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 1 * dMB, PendingBytes: 2 * dMB}},
				{wait: true, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 3 * dMB}},
			},
		},
		{
			// NVMe-survivable crash: nothing is lost, the staged bytes stay
			// owed to the PFS and the forced drain (the redrain a restart
			// pays) makes them durable.
			name: "nvme survival preserves staged state for redrain",
			spec: burst.Spec{CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd},
			steps: []durStep{
				{write: 2 * dMB, sleep: 1.0, want: &burst.Durability{
					BufferedBytes: 2 * dMB, PendingBytes: 2 * dMB}},
				{crash: true, survive: true, wantSurv: 2 * dMB, want: &burst.Durability{
					BufferedBytes: 2 * dMB, PendingBytes: 2 * dMB}},
				{wait: true, want: &burst.Durability{
					BufferedBytes: 2 * dMB, DurableBytes: 2 * dMB}},
			},
		},
		{
			// Overwrite-in-place: re-creating a path truncate-cancels its
			// undrained staged backlog — those bytes are neither durable
			// nor lost, they were deliberately discarded.
			name: "truncate cancels undrained staged state",
			spec: burst.Spec{CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd},
			steps: []durStep{
				{write: 2 * dMB, rewrite: true, want: &burst.Durability{
					BufferedBytes: 2 * dMB, PendingBytes: 2 * dMB}},
				{write: dMB, rewrite: true, want: &burst.Durability{
					BufferedBytes: 3 * dMB, PendingBytes: 1 * dMB, CancelledBytes: 2 * dMB}},
				{wait: true, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 1 * dMB, CancelledBytes: 2 * dMB}},
			},
		},
		{
			// Overflow past a 1 dMB buffer: fallback bytes go straight to
			// the PFS and are durable the moment the write returns.
			name: "capacity fallback is immediately durable",
			spec: burst.Spec{CapacityBytes: 1 * dMB, Rate: 1e12, Policy: burst.PolicyEpochEnd},
			steps: []durStep{
				{write: 3 * dMB, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 2 * dMB, PendingBytes: 1 * dMB}},
				{wait: true, want: &burst.Durability{
					BufferedBytes: 3 * dMB, DurableBytes: 3 * dMB}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(tc.spec)
			r.run(func(p *sim.Proc) {
				for i, s := range tc.steps {
					if s.write > 0 {
						path := fmt.Sprintf("/x/f%03d", i)
						if s.rewrite {
							path = "/x/rw"
						}
						f, err := r.tier.FS().Create(p, r.c, path)
						if err != nil {
							t.Fatalf("step %d: %v", i, err)
						}
						f.WriteAt(p, r.c, 0, s.write, nil)
						f.Close(p, r.c)
					}
					if s.nudge {
						r.tier.DrainEpoch(p)
					}
					if s.sleep > 0 {
						p.Sleep(s.sleep)
					}
					if s.crash {
						rep := r.tier.Crash(p, 0, s.survive)
						if rep.LostBytes != s.wantLost {
							t.Errorf("step %d: crash lost %d bytes, want %d", i, rep.LostBytes, s.wantLost)
						}
						if rep.SurvivingBytes != s.wantSurv {
							t.Errorf("step %d: crash surviving %d bytes, want %d", i, rep.SurvivingBytes, s.wantSurv)
						}
					}
					if s.wait {
						r.tier.WaitDrained(p)
					}
					d := r.tier.Durability()
					if sum := d.DurableBytes + d.PendingBytes + d.LostBytes + d.CancelledBytes; d.BufferedBytes != sum {
						t.Errorf("step %d: invariant broken: buffered %d != durable+pending+lost+cancelled %d", i, d.BufferedBytes, sum)
					}
					if s.want != nil && d != *s.want {
						t.Errorf("step %d: durability %+v, want %+v", i, d, *s.want)
					}
				}
			})
		})
	}
}

// TestNodeStatsAndCrashByClass checks the per-node drained/lost split and
// the per-lane crash accounting on a two-node tier.
func TestNodeStatsAndCrashByClass(t *testing.T) {
	r := newRig(burst.Spec{CapacityBytes: 64 * dMB, Rate: 1e12, DrainRate: 1e6, Policy: burst.PolicyEpochEnd})
	c1 := &pfs.Client{Node: 1, NIC: sim.NewServer(r.k, 25e9, 0)}
	r.run(func(p *sim.Proc) {
		write := func(c *pfs.Client, path string, n int64) {
			f, err := r.tier.FS().Create(p, c, path)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteAt(p, c, 0, n, nil)
			f.Close(p, c)
		}
		write(r.c, "/x/ckpt_000.dmp", dMB)
		write(r.c, "/x/diag_000.dat", dMB)
		write(c1, "/x/ckpt_001.dmp", dMB)

		// Node 1 dies before anything drained: one checkpoint-lane dMB lost.
		rep := r.tier.Crash(p, 1, false)
		if rep.LostBytes != dMB || rep.LostByClass[burst.ClassCheckpoint] != dMB || rep.LostByClass[burst.ClassDiagnostic] != 0 {
			t.Errorf("node 1 crash report %+v, want 1 dMB checkpoint-lane loss", rep)
		}
		r.tier.WaitDrained(p)

		if ns := r.tier.NodeStats(0); ns.DrainedBytes != 2*dMB || ns.LostBytes != 0 || ns.PendingBytes != 0 {
			t.Errorf("node 0 stats %+v, want 2 dMB drained", ns)
		}
		if ns := r.tier.NodeStats(1); ns.DrainedBytes != 0 || ns.LostBytes != dMB || ns.PendingBytes != 0 {
			t.Errorf("node 1 stats %+v, want 1 dMB lost", ns)
		}
		if ns := r.tier.NodeStats(99); ns != (burst.NodeStats{}) {
			t.Errorf("unknown node stats %+v, want zero", ns)
		}
	})
}
