// Package burst models a node-local burst-buffer staging tier: per-node
// NVMe devices (capacity + bandwidth as sim.Servers) absorb client writes
// at local speed and drain them asynchronously to a backing parallel file
// system through a pluggable drain scheduler.
//
// The tier is exposed as a pfs.FileSystem wrapper (Tier.FS), so every
// layer that programs against pfs — POSIX descriptors, the ADIOS2 BP
// engine, stdio — can stage transparently. Metadata operations pass
// through to the backing store at full cost (burst buffers absorb data,
// not metadata); data writes are absorbed locally and become pending
// write-back segments. Completion is tracked at two durability levels:
//
//   - buffered-durable: the client write returned (data is on node-local
//     NVMe) — the fast path checkpoints take by default;
//   - PFS-durable: the drain scheduler has written the segment back to
//     the parallel file system (file Sync, or Tier.WaitDrained, blocks
//     until this point).
//
// Reads and Syncs of a file with pending segments force a drain and wait,
// so staged data is never observed stale. When a node's buffer fills,
// writes fall back to direct PFS-rate I/O for the overflow; a
// zero-capacity Spec degrades to direct I/O entirely.
package burst

import (
	"fmt"
	"strings"

	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

// Policy selects when buffered data drains to the backing store.
type Policy int

const (
	// PolicyImmediate starts draining as soon as data is buffered,
	// maximizing overlap with compute.
	PolicyImmediate Policy = iota
	// PolicyWatermark starts draining when a node's buffer use passes the
	// high watermark and stops once it falls below the low watermark,
	// batching write-back into few large bursts.
	PolicyWatermark
	// PolicyEpochEnd drains only when nudged (DrainEpoch, at ADIOS2 step
	// close) or forced (Sync, read, WaitDrained), keeping the PFS idle
	// during an output epoch.
	PolicyEpochEnd
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyImmediate:
		return "immediate"
	case PolicyWatermark:
		return "watermark"
	case PolicyEpochEnd:
		return "epoch-end"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps a configuration string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "immediate":
		return PolicyImmediate, nil
	case "watermark":
		return PolicyWatermark, nil
	case "epoch-end", "epochend":
		return PolicyEpochEnd, nil
	}
	return 0, fmt.Errorf("burst: unknown drain policy %q", s)
}

// Class is a drain QoS lane. Checkpoint segments are the data a restart
// depends on; diagnostics are analysis output that can tolerate latency.
type Class int

// Drain lanes in priority order (lower drains first under priority QoS).
const (
	ClassCheckpoint Class = iota
	ClassDiagnostic
	NumClasses // lane count, for per-class accounting arrays
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCheckpoint:
		return "checkpoint"
	case ClassDiagnostic:
		return "diagnostic"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// DefaultClassify maps a path to its drain lane by the file's naming
// convention: BIT1 checkpoint artifacts (.dmp dumps, "ckpt"/"checkpoint"
// file names) are ClassCheckpoint; everything else (diagnostic .dat
// snapshots, BP subfiles, logs) is ClassDiagnostic. Only the base name is
// inspected so a job directory named after checkpoints does not drag its
// diagnostics into the priority lane.
func DefaultClassify(path string) Class {
	_, base := pfs.Split(path)
	b := strings.ToLower(base)
	if strings.HasSuffix(b, ".dmp") || strings.Contains(b, "ckpt") || strings.Contains(b, "checkpoint") {
		return ClassCheckpoint
	}
	return ClassDiagnostic
}

// QoS configures the drain scheduler's quality-of-service behaviour. The
// zero value reproduces the plain scheduler: one FIFO lane, write-back as
// fast as the drain path allows.
type QoS struct {
	// PriorityLanes drains checkpoint-class segments strictly before
	// diagnostic-class segments (per-file ordering is preserved because a
	// file's segments all share its lane).
	PriorityLanes bool
	// DrainLimit caps each node's write-back bandwidth in bytes/second on
	// top of the device-side DrainRate (which is also per node) — the
	// "good neighbour" knob that keeps one job's write-back from
	// monopolizing shared OSTs. The job-aggregate cap is DrainLimit ×
	// draining nodes. 0 = no extra cap.
	DrainLimit float64
	// Deadline switches the scheduler from drain-ASAP to drain-by-deadline:
	// each batch of buffered bytes is paced so it becomes PFS-durable
	// within this window (refreshed at every DrainEpoch nudge — "drain by
	// next epoch"), smoothing write-back across the compute phase instead
	// of bursting. Forced drains (Sync, reads, WaitDrained) ignore pacing.
	Deadline sim.Duration
}

// Spec sizes one node's burst buffer. The zero value means "no burst
// buffer" (Enabled reports false and the tier passes through).
type Spec struct {
	CapacityBytes int64        // per-node buffer capacity; <=0 disables
	Rate          float64      // absorb bandwidth, bytes/second
	PerOp         sim.Duration // fixed cost per buffered write
	DrainRate     float64      // drain-side bandwidth cap; 0 = PFS-limited
	Policy        Policy
	HighWater     float64 // watermark start fraction (default 0.7)
	LowWater      float64 // watermark stop fraction (default 0.3)

	// DrainBatchBytes coalesces contiguous same-file volume-mode segments
	// into one backing write-back of up to this many bytes, so a
	// steady-state drain phase schedules O(batches) kernel events per node
	// instead of O(chunks). Zero (the default) drains segment-by-segment,
	// preserving exact per-chunk timing: batching merges the per-operation
	// costs of the backing writes, so it is an explicit fidelity/speed
	// trade a machine-scale run opts into.
	DrainBatchBytes int64

	// QoS is the drain scheduler's initial quality-of-service setting;
	// Tier.SetQoS can adjust it at run time (e.g. from engine TOML).
	QoS QoS
	// Classify assigns staged paths to drain lanes; nil = DefaultClassify.
	Classify func(path string) Class
}

// Enabled reports whether the spec describes an actual buffer.
func (s Spec) Enabled() bool { return s.CapacityBytes > 0 }

func (s Spec) withDefaults() Spec {
	if s.HighWater <= 0 || s.HighWater > 1 {
		s.HighWater = 0.7
	}
	if s.LowWater <= 0 || s.LowWater >= s.HighWater {
		s.LowWater = s.HighWater / 2
	}
	return s
}

// ClassStats is one drain lane's accounting.
type ClassStats struct {
	DrainedBytes    int64    // lane bytes written back
	FirstDrainStart sim.Time // when the lane's first segment started draining
	LastDrainEnd    sim.Time // when the lane's latest segment became PFS-durable
}

// Stats is the tier's cumulative accounting.
type Stats struct {
	AbsorbedBytes   int64    // written buffered-durable at local speed
	FallbackBytes   int64    // overflowed to direct PFS writes (buffer full)
	DrainedBytes    int64    // written back, now PFS-durable
	LostBytes       int64    // buffered-only bytes destroyed by node crashes
	CancelledBytes  int64    // staged bytes discarded by truncate/unlink before draining
	DrainOps        int64    // backing write-back operations issued
	DrainBusySec    float64  // cumulative drain-worker busy time
	FirstDrainStart sim.Time // when the first segment started draining
	LastDrainEnd    sim.Time // when the most recent segment became PFS-durable
	MaxUsedBytes    int64    // peak buffer occupancy on any node
	PendingBytes    int64    // still buffered, not yet PFS-durable

	// Class breaks the drain accounting down by QoS lane; the achieved
	// drain bandwidth DrainedBytes/(LastDrainEnd-FirstDrainStart) is the
	// per-job fairness input (see internal/jobs).
	Class [NumClasses]ClassStats
}

// DrainBandwidth reports the achieved write-back bandwidth in
// bytes/second over the tier's active drain window (0 before any drain).
func (s Stats) DrainBandwidth() float64 {
	if s.DrainedBytes == 0 || s.LastDrainEnd <= s.FirstDrainStart {
		return 0
	}
	return float64(s.DrainedBytes) / float64(s.LastDrainEnd-s.FirstDrainStart)
}

// segment is one pending write-back unit.
type segment struct {
	st   *fileState
	off  int64
	n    int64
	seq  uint64 // global enqueue order, for cross-lane FIFO
	data []byte // nil in volume mode
}

// fileState is the shared per-path staging record: all open handles of a
// path, and the drain scheduler, see the same pending/size bookkeeping.
type fileState struct {
	path         string
	class        Class
	backing      pfs.File
	size         int64 // logical size including buffered-but-undrained writes
	pending      int64 // undrained bytes
	refs         int   // open wrapper handles
	closeOnDrain bool
	drained      *sim.Completion // armed while a process waits for PFS durability
}

// nodeState is one node's device and drain queues (one per QoS lane).
type nodeState struct {
	id       int
	dev      *sim.Server // absorb-side NVMe pipe
	drainDev *sim.Server // drain-side cap; nil when uncapped
	client   *pfs.Client // client the drain worker issues backing I/O through
	used     int64
	drained  int64 // cumulative bytes this node wrote back
	lost     int64 // cumulative bytes Crash discarded from this node
	queues   [NumClasses][]*segment
	draining bool
	force    bool // drain past the low watermark (flush requested)

	limitDev   *sim.Server // QoS rate limiter; rebuilt when the limit changes
	limitRate  float64
	deadlineAt sim.Time // drain-by-deadline target for the current batch

	worker   *sim.Proc // the node's drain worker while one is running
	cur      *segment  // segment the worker is mid-transfer on
	inFlight bool      // worker is mid-segment; segStart is its begin time
	segStart sim.Time
}

// queuedSegs reports the number of segments across all lanes.
func (ns *nodeState) queuedSegs() int {
	n := 0
	for cl := range ns.queues {
		n += len(ns.queues[cl])
	}
	return n
}

// pop removes the next segment to drain: the head of the highest-priority
// nonempty lane when priority is on, otherwise the globally oldest
// (restoring strict cross-lane FIFO).
func (ns *nodeState) pop(priority bool) *segment {
	best := -1
	for cl := range ns.queues {
		if len(ns.queues[cl]) == 0 {
			continue
		}
		if priority {
			best = cl
			break
		}
		if best < 0 || ns.queues[cl][0].seq < ns.queues[best][0].seq {
			best = cl
		}
	}
	if best < 0 {
		return nil
	}
	seg := ns.queues[best][0]
	ns.queues[best] = ns.queues[best][1:]
	return seg
}

// peek returns the segment pop would hand out next without removing it.
func (ns *nodeState) peek(priority bool) *segment {
	best := -1
	for cl := range ns.queues {
		if len(ns.queues[cl]) == 0 {
			continue
		}
		if priority {
			best = cl
			break
		}
		if best < 0 || ns.queues[cl][0].seq < ns.queues[best][0].seq {
			best = cl
		}
	}
	if best < 0 {
		return nil
	}
	return ns.queues[best][0]
}

// Tier is a burst-buffer staging tier over a backing file system.
type Tier struct {
	k        *sim.Kernel
	spec     Spec
	qos      QoS
	classify func(string) Class
	backing  pfs.FileSystem
	fs       *FS
	nodes    map[int]*nodeState
	order    []*nodeState // deterministic iteration order (creation order)
	files    map[string]*fileState
	pending  *sim.Gauge // total undrained bytes, for WaitDrained
	segSeq   uint64
	stats    Stats
}

// NewTier creates a staging tier on kernel k over the backing file system.
func NewTier(k *sim.Kernel, spec Spec, backing pfs.FileSystem) *Tier {
	t := &Tier{
		k:        k,
		spec:     spec.withDefaults(),
		qos:      spec.QoS,
		classify: spec.Classify,
		backing:  backing,
		nodes:    map[int]*nodeState{},
		files:    map[string]*fileState{},
		pending:  sim.NewGauge(k),
	}
	if t.classify == nil {
		t.classify = DefaultClassify
	}
	t.fs = &FS{t: t}
	return t
}

// Spec reports the tier's per-node buffer spec (its QoS field is the
// initial setting; QoS reports the live one).
func (t *Tier) Spec() Spec { return t.spec }

// QoS reports the drain scheduler's current quality-of-service setting.
func (t *Tier) QoS() QoS { return t.qos }

// SetQoS adjusts the drain scheduler's quality of service; it applies to
// every subsequent drain decision (queued segments included). Engines set
// it at open time from the burst_* TOML knobs.
func (t *Tier) SetQoS(q QoS) { t.qos = q }

// FS returns the staging file system: writes through it are absorbed by
// the node-local buffer and drained in the background.
func (t *Tier) FS() pfs.FileSystem { return t.fs }

// Backing returns the wrapped parallel file system.
func (t *Tier) Backing() pfs.FileSystem { return t.backing }

// Stats reports the tier's cumulative accounting. Busy time includes the
// elapsed part of any segment currently in flight, so a mid-run snapshot
// (e.g. "how much drain work overlapped the app") sees partial progress
// instead of quantizing to whole segments.
func (t *Tier) Stats() Stats {
	s := t.stats
	s.PendingBytes = t.pending.Value()
	for _, ns := range t.order {
		if ns.inFlight {
			s.DrainBusySec += float64(t.k.Now() - ns.segStart)
		}
	}
	return s
}

// Durability is a point-in-time snapshot of the tier's two durability
// levels. The invariant BufferedBytes = DurableBytes + PendingBytes +
// LostBytes + CancelledBytes holds at every instant: every byte a client
// write returned for is either written back, still staged, destroyed by
// a crash, or deliberately discarded because its file was truncated or
// unlinked before the drain reached it (overwrite-in-place checkpoints
// cancel their predecessor's backlog this way).
type Durability struct {
	BufferedBytes  int64 // every byte whose client write returned (buffered-durable or better)
	DurableBytes   int64 // PFS-durable: drained write-back plus direct fallback writes
	PendingBytes   int64 // staged on node-local NVMe only
	LostBytes      int64 // staged-only bytes destroyed by node crashes
	CancelledBytes int64 // staged bytes discarded by truncate/unlink before draining
}

// Durability reports the tier's current durability snapshot. The fault
// layer samples it at epoch boundaries and at kill time to compute what a
// restart loses at each durability level.
func (t *Tier) Durability() Durability {
	return Durability{
		BufferedBytes:  t.stats.AbsorbedBytes + t.stats.FallbackBytes,
		DurableBytes:   t.stats.DrainedBytes + t.stats.FallbackBytes,
		PendingBytes:   t.pending.Value(),
		LostBytes:      t.stats.LostBytes,
		CancelledBytes: t.stats.CancelledBytes,
	}
}

// NodeStats is one node's staging accounting.
type NodeStats struct {
	PendingBytes int64 // buffer occupancy: absorbed, not yet drained or lost
	DrainedBytes int64 // written back through this node, PFS-durable
	LostBytes    int64 // discarded by Crash
}

// NodeStats reports the accounting of one node's buffer (zero value for a
// node the tier has never seen).
func (t *Tier) NodeStats(node int) NodeStats {
	ns, ok := t.nodes[node]
	if !ok {
		return NodeStats{}
	}
	return NodeStats{PendingBytes: ns.used, DrainedBytes: ns.drained, LostBytes: ns.lost}
}

// CrashReport accounts what one node's crash did to staged state.
type CrashReport struct {
	Node           int
	LostBytes      int64 // buffered-only bytes destroyed with the node's NVMe
	SurvivingBytes int64 // staged bytes preserved on NVMe, still owed to the PFS
	LostByClass    [NumClasses]int64
}

// Crash models losing node id mid-run, per the NVMe-survivability model:
// with survive=true the staged state outlives the node (fabric-attached
// enclosure, or a reboot that keeps the drive) — queued segments stay and
// must still be written back, which is the redrain cost a restart pays;
// with survive=false the node takes its NVMe with it — every queued
// segment on the node is discarded, those bytes were buffered-durable
// only and are now lost, and affected files' logical sizes revert to what
// the backing store actually holds.
//
// A transfer in flight on the node's drain worker dies with the node in
// both cases: the worker process is killed mid-segment (device time
// already spent streams nowhere). Under survival the aborted segment's
// data is still on the NVMe, so it is requeued at the head of its lane
// for retransmission; under node loss it is accounted lost with the
// rest. Durability waiters of a file whose last pending bytes were lost
// are released: there is nothing left to wait for.
func (t *Tier) Crash(p *sim.Proc, node int, survive bool) CrashReport {
	rep := CrashReport{Node: node}
	ns, ok := t.nodes[node]
	if !ok {
		return rep
	}
	if ns.inFlight && ns.cur != nil {
		// Abort the in-flight transfer: the worker dies at its next
		// scheduling point without running its completion accounting.
		// Requeue the segment at the head of its lane — under survival
		// it awaits retransmission; under node loss the discard sweep
		// below takes it with the rest.
		t.k.Kill(ns.worker)
		seg := ns.cur
		ns.cur, ns.inFlight = nil, false
		ns.draining, ns.worker = false, nil
		lane := &ns.queues[seg.st.class]
		*lane = append([]*segment{seg}, *lane...)
	} else if ns.draining {
		// Worker exists but is between segments (never observable with
		// the serialized kernel; defensive): let it die with the node.
		t.k.Kill(ns.worker)
		ns.draining, ns.worker = false, nil
	}
	if survive {
		for cl := range ns.queues {
			for _, seg := range ns.queues[cl] {
				rep.SurvivingBytes += seg.n
			}
		}
		return rep
	}
	var touched []*fileState
	seen := map[*fileState]bool{}
	for cl := range ns.queues {
		for _, seg := range ns.queues[cl] {
			rep.LostBytes += seg.n
			rep.LostByClass[seg.st.class] += seg.n
			ns.used -= seg.n
			ns.lost += seg.n
			seg.st.pending -= seg.n
			t.pending.Add(-seg.n)
			t.stats.LostBytes += seg.n
			if !seen[seg.st] {
				seen[seg.st] = true
				touched = append(touched, seg.st)
			}
		}
		ns.queues[cl] = nil
	}
	for _, st := range touched {
		if st.backing != nil {
			if sz := st.backing.Size(); sz < st.size {
				st.size = sz
			}
		}
		t.settle(p, ns.client, st)
	}
	return rep
}

// node returns (creating on first use) the buffer state of the client's
// node. The first client seen for a node supplies the NIC drain traffic
// shares with foreground I/O.
func (t *Tier) node(c *pfs.Client) *nodeState {
	id := 0
	if c != nil {
		id = c.Node
	}
	ns, ok := t.nodes[id]
	if !ok {
		ns = &nodeState{id: id, dev: sim.NewServer(t.k, t.spec.Rate, t.spec.PerOp)}
		if t.spec.DrainRate > 0 {
			ns.drainDev = sim.NewServer(t.k, t.spec.DrainRate, 0)
		}
		t.nodes[id] = ns
		t.order = append(t.order, ns)
	}
	if ns.client == nil {
		ns.client = c
	}
	return ns
}

// state returns (creating if needed) the staging record for path, adopting
// the given backing handle and observing its current size. A previously
// adopted handle this one supersedes is closed — every backing open must
// pay exactly one backing close, or metadata costs are undercounted and
// the superseded handle leaks.
func (t *Tier) state(p *sim.Proc, c *pfs.Client, path string, backing pfs.File) *fileState {
	cp := pfs.Clean(path)
	st, ok := t.files[cp]
	if !ok {
		st = &fileState{path: cp, class: t.classify(cp)}
		t.files[cp] = st
	}
	if st.backing != nil && st.backing != backing {
		st.backing.Close(p, c)
	}
	st.backing = backing
	if sz := backing.Size(); sz > st.size {
		st.size = sz
	}
	return st
}

// cancel discards every queued segment of st (truncate/unlink), releasing
// buffer capacity and pending accounting, and completes a deferred close
// the drain worker would otherwise have issued. A segment already in
// flight on a drain worker completes against the backing store; with the
// sim's single-writer usage that window is empty in practice.
func (t *Tier) cancel(p *sim.Proc, c *pfs.Client, st *fileState) {
	for _, ns := range t.order {
		for cl := range ns.queues {
			kept := ns.queues[cl][:0]
			for _, seg := range ns.queues[cl] {
				if seg.st != st {
					kept = append(kept, seg)
					continue
				}
				ns.used -= seg.n
				st.pending -= seg.n
				t.pending.Add(-seg.n)
				t.stats.CancelledBytes += seg.n
			}
			ns.queues[cl] = kept
		}
	}
	t.settle(p, c, st)
}

// settle completes durability waiters and performs the deferred close once
// a file has no pending segments left. Safe to call at any time.
func (t *Tier) settle(p *sim.Proc, c *pfs.Client, st *fileState) {
	if st.pending != 0 {
		return
	}
	if st.drained != nil {
		st.drained.Complete()
		st.drained = nil
	}
	if st.closeOnDrain && st.refs == 0 {
		st.closeOnDrain = false
		st.backing.Close(p, c)
		st.backing = nil // closed: a later open must not close it again
	}
}

// forceDrainAll starts a drain worker on every node with queued segments,
// draining fully regardless of watermark state.
func (t *Tier) forceDrainAll() {
	for _, ns := range t.order {
		if ns.queuedSegs() > 0 {
			ns.force = true
			t.ensureDrainer(ns)
		}
	}
}

// DrainEpoch is the epoch-close nudge (pfs.Stager): under PolicyEpochEnd
// it starts a full drain of every queue. Under the other policies it is a
// no-op — immediate drains as data arrives, and watermark batching would
// be defeated if every step close forced a flush. With a QoS deadline the
// nudge also re-arms every node's drain-by-next-epoch target.
func (t *Tier) DrainEpoch(_ *sim.Proc) {
	if t.qos.Deadline > 0 {
		for _, ns := range t.order {
			ns.deadlineAt = t.k.Now() + t.qos.Deadline
		}
	}
	if t.spec.Policy != PolicyEpochEnd {
		return
	}
	if t.qos.Deadline > 0 {
		for _, ns := range t.order { // paced drain, not a forced flush
			t.ensureDrainer(ns)
		}
		return
	}
	t.forceDrainAll()
}

// WaitDrained forces a full drain (whatever the policy) and parks p until
// every buffered byte is PFS-durable.
func (t *Tier) WaitDrained(p *sim.Proc) {
	t.forceDrainAll()
	t.pending.Wait(p)
}

// ensureDrainer spawns a background drain worker for the node unless one
// is already running or there is nothing to drain. Workers are on-demand
// processes: they exit when their stop condition holds, so an idle tier
// leaves no parked processes behind.
func (t *Tier) ensureDrainer(ns *nodeState) {
	if ns.draining || ns.queuedSegs() == 0 {
		return
	}
	ns.draining = true
	ns.worker = t.k.Spawn(fmt.Sprintf("burst.drain.%d", ns.id), func(p *sim.Proc) { t.drain(p, ns) })
}

// drain is the worker body: pop segments (FIFO, or priority-lane order
// under QoS) and write them back through the node's drain path, stopping
// at the policy's stop condition. The QoS rate limit and deadline pacing
// both stretch a segment's completion without consuming device time.
func (t *Tier) drain(p *sim.Proc, ns *nodeState) {
	for ns.queuedSegs() > 0 {
		if t.spec.Policy == PolicyWatermark && !ns.force &&
			float64(ns.used) <= t.spec.LowWater*float64(t.spec.CapacityBytes) {
			break
		}
		seg := ns.pop(t.qos.PriorityLanes)
		if batch := t.spec.DrainBatchBytes; batch > 0 && seg.data == nil {
			// Coalesce the run of contiguous same-file volume segments at
			// the front of the drain order — ascending or descending, so
			// out-of-order chunk arrivals (aggregator fan-in) merge too —
			// into one backing write. Only segments pop would hand out next
			// are merged, so cross-lane ordering (and hence replay) is the
			// same as draining them one by one; the batch just pays the
			// backing write's per-op cost once and schedules one completion
			// event instead of many. (The absorb side already merges
			// in-order contiguous writes at enqueue time, so this catches
			// what that pass structurally cannot.)
			for seg.n < batch {
				next := ns.peek(t.qos.PriorityLanes)
				if next == nil || next.st != seg.st || next.data != nil {
					break
				}
				if next.off == seg.off+seg.n {
					// ascending run: next extends the tail
				} else if next.off+next.n == seg.off {
					// descending run: next extends the head
					seg.off = next.off
				} else {
					break
				}
				ns.pop(t.qos.PriorityLanes)
				seg.n += next.n
			}
		}
		t0 := p.Now()
		ns.cur, ns.inFlight, ns.segStart = seg, true, t0
		var devEnd sim.Time
		if ns.drainDev != nil {
			devEnd = ns.drainDev.Reserve(seg.n)
		}
		if lim := t.qos.DrainLimit; lim > 0 {
			if ns.limitDev == nil || ns.limitRate != lim {
				ns.limitDev, ns.limitRate = sim.NewServer(t.k, lim, 0), lim
			}
			if e := ns.limitDev.Reserve(seg.n); e > devEnd {
				devEnd = e
			}
		}
		if t.qos.Deadline > 0 && !ns.force {
			// Pace the batch: this segment gets the share of the remaining
			// deadline window proportional to its share of the node's
			// pending bytes, so the whole batch lands at the deadline
			// instead of bursting onto the shared backbone.
			if window := ns.deadlineAt - t0; window > 0 && ns.used > 0 {
				share := sim.Duration(float64(seg.n) / float64(ns.used))
				if e := t0 + window*share; e > devEnd {
					devEnd = e
				}
			}
		}
		// Keep the earliest start: with several nodes' workers mid-first-
		// segment, DrainOps is still 0 for each and a plain set would
		// record the latest first-wave start, shrinking DrainBandwidth's
		// window.
		if t.stats.DrainOps == 0 && (t.stats.FirstDrainStart == 0 || t0 < t.stats.FirstDrainStart) {
			t.stats.FirstDrainStart = t0
		}
		cs := &t.stats.Class[seg.st.class]
		if cs.DrainedBytes == 0 && (cs.FirstDrainStart == 0 || t0 < cs.FirstDrainStart) {
			cs.FirstDrainStart = t0
		}
		seg.st.backing.WriteAt(p, ns.client, seg.off, seg.n, seg.data)
		if devEnd > p.Now() {
			p.SleepUntil(devEnd)
		}
		ns.cur, ns.inFlight = nil, false
		ns.used -= seg.n
		ns.drained += seg.n
		seg.st.pending -= seg.n
		t.stats.DrainedBytes += seg.n
		t.stats.DrainOps++
		t.stats.DrainBusySec += float64(p.Now() - t0)
		t.stats.LastDrainEnd = p.Now()
		cs.DrainedBytes += seg.n
		cs.LastDrainEnd = p.Now()
		t.settle(p, ns.client, seg.st)
		t.pending.Add(-seg.n)
	}
	if ns.queuedSegs() == 0 {
		ns.force = false
	}
	ns.draining = false
	ns.worker = nil
}

// FS is the staging tier's pfs.FileSystem face.
type FS struct {
	t *Tier
}

var (
	_ pfs.FileSystem = (*FS)(nil)
	_ pfs.Stager     = (*FS)(nil)
)

// Tier returns the tier behind the staging file system.
func (f *FS) Tier() *Tier { return f.t }

// Name implements pfs.FileSystem.
func (f *FS) Name() string { return "burst+" + f.t.backing.Name() }

// DrainEpoch implements pfs.Stager.
func (f *FS) DrainEpoch(p *sim.Proc) { f.t.DrainEpoch(p) }

// WaitDrained forces a full drain and blocks until PFS durability.
func (f *FS) WaitDrained(p *sim.Proc) { f.t.WaitDrained(p) }

// wrap stages a freshly opened backing handle, or returns it unwrapped
// when the tier is disabled (zero capacity degrades to direct I/O).
func (f *FS) wrap(p *sim.Proc, c *pfs.Client, bf pfs.File, err error, path string) (pfs.File, error) {
	if err != nil {
		return nil, err
	}
	if !f.t.spec.Enabled() {
		return bf, nil
	}
	st := f.t.state(p, c, path, bf)
	st.refs++
	st.closeOnDrain = false
	return &file{t: f.t, st: st}, nil
}

// Create implements pfs.FileSystem: metadata goes to the backing store,
// and any staged data of a previous incarnation of the path is discarded
// (truncate semantics). The staged state is mutated only after the
// backing create succeeds — a failed create must leave it intact.
func (f *FS) Create(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	bf, err := f.t.backing.Create(p, c, path)
	if err != nil {
		return nil, err
	}
	if f.t.spec.Enabled() {
		if st, ok := f.t.files[pfs.Clean(path)]; ok {
			f.t.cancel(p, c, st)
			st.size = 0
		}
	}
	return f.wrap(p, c, bf, nil, path)
}

// Open implements pfs.FileSystem.
func (f *FS) Open(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	bf, err := f.t.backing.Open(p, c, path)
	return f.wrap(p, c, bf, err, path)
}

// OpenAppend implements pfs.FileSystem.
func (f *FS) OpenAppend(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	bf, err := f.t.backing.OpenAppend(p, c, path)
	return f.wrap(p, c, bf, err, path)
}

// Stat implements pfs.FileSystem, reporting the logical size (including
// buffered-but-undrained bytes).
func (f *FS) Stat(p *sim.Proc, c *pfs.Client, path string) (pfs.FileInfo, error) {
	fi, err := f.t.backing.Stat(p, c, path)
	if err != nil {
		return fi, err
	}
	if st, ok := f.t.files[pfs.Clean(path)]; ok && st.size > fi.Size {
		fi.Size = st.size
	}
	return fi, nil
}

// Unlink implements pfs.FileSystem, discarding staged data for the path.
func (f *FS) Unlink(p *sim.Proc, c *pfs.Client, path string) error {
	if st, ok := f.t.files[pfs.Clean(path)]; ok {
		f.t.cancel(p, c, st)
		st.size = 0
		delete(f.t.files, pfs.Clean(path))
	}
	return f.t.backing.Unlink(p, c, path)
}

// MkdirAll implements pfs.FileSystem.
func (f *FS) MkdirAll(p *sim.Proc, c *pfs.Client, path string) error {
	return f.t.backing.MkdirAll(p, c, path)
}

// ReadDir implements pfs.FileSystem. Entry sizes are the backing store's
// view; a staged file's logical size is visible through Stat.
func (f *FS) ReadDir(p *sim.Proc, c *pfs.Client, path string) ([]pfs.FileInfo, error) {
	return f.t.backing.ReadDir(p, c, path)
}

// file is a staged open file.
type file struct {
	t  *Tier
	st *fileState
}

var _ pfs.File = (*file)(nil)

// Path implements pfs.File.
func (f *file) Path() string { return f.st.path }

// Size implements pfs.File: the logical size, counting buffered writes.
func (f *file) Size() int64 { return f.st.size }

// WriteAt implements pfs.File: absorb what fits into the node buffer at
// local NVMe speed and enqueue it for write-back; overflow beyond the
// remaining capacity falls back to a direct PFS-rate write.
func (f *file) WriteAt(p *sim.Proc, c *pfs.Client, off, n int64, data []byte) {
	t := f.t
	ns := t.node(c)
	free := t.spec.CapacityBytes - ns.used
	if free < 0 {
		free = 0
	}
	if n > free && f.st.pending > 0 {
		// Buffer pressure would send part of this write straight to the
		// backing store while older segments of the same file are still
		// queued — an older segment must never drain over newer direct
		// bytes, so drain first (a full buffer stalls the writer anyway).
		f.waitDrained(p)
		free = t.spec.CapacityBytes - ns.used
		if free < 0 {
			free = 0
		}
	}
	buffered := n
	if buffered > free {
		buffered = free
	}
	fallback := n - buffered
	if end := off + n; end > f.st.size {
		f.st.size = end
	}
	var devEnd sim.Time
	if buffered > 0 {
		devEnd = ns.dev.Reserve(buffered)
		lane := &ns.queues[f.st.class]
		var seg *segment
		if len(*lane) > 0 {
			seg = (*lane)[len(*lane)-1]
		}
		if data == nil && seg != nil && seg.st == f.st && seg.data == nil && seg.off+seg.n == off {
			seg.n += buffered // coalesce contiguous volume-mode write-back
		} else {
			t.segSeq++
			seg = &segment{st: f.st, off: off, n: buffered, seq: t.segSeq}
			if data != nil {
				seg.data = append([]byte(nil), data[:buffered]...)
			}
			*lane = append(*lane, seg)
		}
		ns.used += buffered
		if ns.used > t.stats.MaxUsedBytes {
			t.stats.MaxUsedBytes = ns.used
		}
		f.st.pending += buffered
		t.pending.Add(buffered)
		t.stats.AbsorbedBytes += buffered
		if t.qos.Deadline > 0 && ns.deadlineAt <= p.Now() {
			ns.deadlineAt = p.Now() + t.qos.Deadline
		}
	}
	if fallback > 0 {
		var tail []byte
		if data != nil {
			tail = data[buffered:]
		}
		t.stats.FallbackBytes += fallback
		f.st.backing.WriteAt(p, c, off+buffered, fallback, tail)
	}
	if devEnd > p.Now() {
		p.SleepUntil(devEnd)
	}
	switch t.spec.Policy {
	case PolicyImmediate:
		t.ensureDrainer(ns)
	case PolicyWatermark:
		if float64(ns.used) >= t.spec.HighWater*float64(t.spec.CapacityBytes) {
			t.ensureDrainer(ns)
		}
	}
}

// waitDrained forces a full drain and parks p until this file has no
// pending segments.
func (f *file) waitDrained(p *sim.Proc) {
	t := f.t
	for f.st.pending > 0 {
		t.forceDrainAll()
		if f.st.drained == nil {
			f.st.drained = sim.NewCompletion(t.k)
		}
		f.st.drained.Wait(p)
	}
}

// ReadAt implements pfs.File: staged data is drained first so reads never
// observe a stale backing file.
func (f *file) ReadAt(p *sim.Proc, c *pfs.Client, off, n int64) []byte {
	f.waitDrained(p)
	return f.st.backing.ReadAt(p, c, off, n)
}

// Sync implements pfs.File: fsync on a staged file means PFS durability —
// drain everything pending, then sync the backing file.
func (f *file) Sync(p *sim.Proc, c *pfs.Client) {
	f.waitDrained(p)
	f.st.backing.Sync(p, c)
}

// Close implements pfs.File. With pending segments the backing handle
// stays open on behalf of the drain worker (write-back cache semantics)
// and is closed by it after the last segment lands.
func (f *file) Close(p *sim.Proc, c *pfs.Client) {
	st := f.st
	if st.refs > 0 {
		st.refs--
	}
	if st.refs > 0 {
		return
	}
	if st.pending > 0 {
		st.closeOnDrain = true
		return
	}
	st.backing.Close(p, c)
	st.backing = nil // closed: a later open must not close it again
}
