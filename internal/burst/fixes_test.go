package burst_test

import (
	"errors"
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

// countFS wraps a backing file system and counts backing opens/closes,
// with an injectable create failure — the harness for the handle-leak and
// create-failure regression tests.
type countFS struct {
	pfs.FileSystem
	opens, closes int
	failCreate    bool
}

var errInjected = errors.New("injected create failure")

func (c *countFS) Create(p *sim.Proc, cl *pfs.Client, path string) (pfs.File, error) {
	if c.failCreate {
		return nil, errInjected
	}
	f, err := c.FileSystem.Create(p, cl, path)
	if err != nil {
		return nil, err
	}
	c.opens++
	return &countFile{File: f, fs: c}, nil
}

func (c *countFS) Open(p *sim.Proc, cl *pfs.Client, path string) (pfs.File, error) {
	f, err := c.FileSystem.Open(p, cl, path)
	if err != nil {
		return nil, err
	}
	c.opens++
	return &countFile{File: f, fs: c}, nil
}

func (c *countFS) OpenAppend(p *sim.Proc, cl *pfs.Client, path string) (pfs.File, error) {
	f, err := c.FileSystem.OpenAppend(p, cl, path)
	if err != nil {
		return nil, err
	}
	c.opens++
	return &countFile{File: f, fs: c}, nil
}

type countFile struct {
	pfs.File
	fs     *countFS
	closed bool
}

func (f *countFile) Close(p *sim.Proc, c *pfs.Client) {
	if f.closed {
		f.fs.closes = -1000 // poison: double close must fail the test
		return
	}
	f.closed = true
	f.fs.closes++
	f.File.Close(p, c)
}

// countRig is a one-node tier over a counting backing store.
func countRig(spec burst.Spec) (*sim.Kernel, *countFS, *burst.Tier, *pfs.Client) {
	k := sim.NewKernel()
	cfs := &countFS{FileSystem: lustre.New(k, lustre.DefaultParams())}
	tier := burst.NewTier(k, spec, cfs)
	c := &pfs.Client{Node: 0, NIC: sim.NewServer(k, 25e9, 0)}
	return k, cfs, tier, c
}

// TestSupersededBackingHandlesClose pins the handle-leak fix: re-opening
// an already-staged path must close the superseded backing handle, so
// after all wrapper handles are closed every backing open has paid
// exactly one backing close.
func TestSupersededBackingHandlesClose(t *testing.T) {
	k, cfs, tier, c := countRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	k.Spawn("test", func(p *sim.Proc) {
		f1, err := tier.FS().Create(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		f1.WriteAt(p, c, 0, 1*MB, nil)
		f1.Close(p, c) // pending write-back keeps the backing handle open

		// Each re-open of the staged path opens a fresh backing handle
		// and must retire the one it supersedes.
		f2, err := tier.FS().Open(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		f3, err := tier.FS().OpenAppend(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		tier.WaitDrained(p)
		f2.Close(p, c)
		f3.Close(p, c)
	})
	k.Run()
	if cfs.opens != 3 || cfs.closes != cfs.opens {
		t.Fatalf("backing opens=%d closes=%d, want every open closed exactly once", cfs.opens, cfs.closes)
	}
}

// TestCloseAfterDrainStillBalances covers the deferred-close path: the
// drain worker performs the close after the last segment lands, and a
// later reopen of the path must not double-close that handle.
func TestCloseAfterDrainStillBalances(t *testing.T) {
	k, cfs, tier, c := countRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, DrainRate: 1e9, Policy: burst.PolicyImmediate})
	k.Spawn("test", func(p *sim.Proc) {
		f, err := tier.FS().Create(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(p, c, 0, 8*MB, nil)
		f.Close(p, c) // drain in flight: close deferred to the worker
		tier.WaitDrained(p)
		// Reopen after the deferred close has happened.
		f2, err := tier.FS().Open(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		f2.Close(p, c)
	})
	k.Run()
	if cfs.opens != 2 || cfs.closes != cfs.opens {
		t.Fatalf("backing opens=%d closes=%d, want balanced without double close", cfs.opens, cfs.closes)
	}
}

// TestCreateFailurePreservesStagedState pins the Create-ordering fix: a
// failed backing create must leave the staged state (pending segments,
// logical size) untouched instead of destroying it on the error path.
func TestCreateFailurePreservesStagedState(t *testing.T) {
	k, cfs, tier, c := countRig(burst.Spec{CapacityBytes: 64 * MB, Rate: 10e9, Policy: burst.PolicyEpochEnd})
	k.Spawn("test", func(p *sim.Proc) {
		f, err := tier.FS().Create(p, c, "/x/f")
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(p, c, 0, 4*MB, nil)

		cfs.failCreate = true
		if _, err := tier.FS().Create(p, c, "/x/f"); !errors.Is(err, errInjected) {
			t.Errorf("injected create failure not surfaced: %v", err)
		}
		cfs.failCreate = false

		if st := tier.Stats(); st.PendingBytes != 4*MB {
			t.Errorf("failed create destroyed pending state: %d bytes left, want %d", st.PendingBytes, 4*MB)
		}
		if got := f.Size(); got != 4*MB {
			t.Errorf("failed create zeroed the logical size: %d, want %d", got, 4*MB)
		}
		fi, err := tier.FS().Stat(p, c, "/x/f")
		if err != nil || fi.Size != 4*MB {
			t.Errorf("Stat after failed create: %+v err=%v, want size %d", fi, err, 4*MB)
		}
		tier.WaitDrained(p)
		f.Close(p, c)
	})
	k.Run()
	if st := tier.Stats(); st.DrainedBytes != 4*MB {
		t.Fatalf("staged bytes lost: drained %d, want %d", st.DrainedBytes, 4*MB)
	}
}
