package burst_test

import (
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// writeIteration runs a 2-rank openPMD save through a staged environment
// and reports the tier's pending bytes at the instant the iteration close
// (ADIOS2 EndStep) returned on rank 0.
func writeIteration(t *testing.T, toml string, drainRate float64) (pendingAtClose int64, tier *burst.Tier) {
	t.Helper()
	k := sim.NewKernel()
	back := lustre.New(k, lustre.DefaultParams())
	tier = burst.NewTier(k, burst.Spec{
		CapacityBytes: 1 << 30, Rate: 10e9, DrainRate: drainRate,
		Policy: burst.PolicyEpochEnd,
	}, back)
	w := mpisim.NewWorld(k, 2, nil)
	w.Run(func(r *mpisim.Rank) {
		env := &posix.Env{
			FS:     back,
			Stage:  tier.FS(),
			Client: &pfs.Client{Node: 0, NIC: sim.NewServer(k, 25e9, 0)},
			Rank:   r.ID,
		}
		host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
		series, err := openpmd.NewSeries(host, "/scratch/out.bp4", openpmd.AccessCreate, toml)
		if err != nil {
			t.Error(err)
			return
		}
		it, err := series.WriteIteration(0)
		if err != nil {
			t.Error(err)
			return
		}
		rc := it.Particles("e").Record("position").Component("x")
		rc.ResetDataset(openpmd.Dataset{Type: openpmd.Float64, Extent: []uint64{2 << 20}})
		if err := rc.StoreChunk([]uint64{uint64(r.ID) << 20}, []uint64{1 << 20}, nil); err != nil {
			t.Error(err)
			return
		}
		if err := it.Close(); err != nil {
			t.Error(err)
			return
		}
		if r.ID == 0 {
			pendingAtClose = tier.Stats().PendingBytes
		}
		if err := series.Close(); err != nil {
			t.Error(err)
		}
	})
	return pendingAtClose, tier
}

// TestDrainOrderingVsEpochClose pins the two durability contracts: with
// the default buffered durability, iteration close returns while write-back
// is still pending (the drain overlaps whatever comes next); with
// burst_durability = "pfs", close does not return until every staged byte
// of the step is on the parallel file system.
func TestDrainOrderingVsEpochClose(t *testing.T) {
	const slowDrain = 50e6 // make write-back visibly slower than absorb

	buffered, tier := writeIteration(t, "burst_buffer = true\n", slowDrain)
	if buffered == 0 {
		t.Error("buffered durability: EndStep must return before write-back completes")
	}
	if st := tier.Stats(); st.PendingBytes != 0 {
		t.Errorf("after the run the tier must have drained, pending %d", st.PendingBytes)
	}

	pfsDurable, _ := writeIteration(t, "burst_buffer = true\nburst_durability = \"pfs\"\n", slowDrain)
	if pfsDurable != 0 {
		t.Errorf("pfs durability: EndStep returned with %d bytes still buffered", pfsDurable)
	}
}

// TestStagingIsOptIn checks that a staged environment without the
// burst_buffer option keeps writing directly to the PFS.
func TestStagingIsOptIn(t *testing.T) {
	_, tier := writeIteration(t, "", 50e6)
	if st := tier.Stats(); st.AbsorbedBytes != 0 {
		t.Errorf("tier absorbed %d bytes without burst_buffer = true", st.AbsorbedBytes)
	}
}

// TestQoSKnobsFlowFromTOML checks the full plumbing of the drain QoS
// knobs: openPMD TOML keys → ADIOS2 engine parameters → tier QoS.
func TestQoSKnobsFlowFromTOML(t *testing.T) {
	toml := "burst_buffer = true\n" +
		"burst_qos_priority = true\n" +
		"burst_drain_limit = \"2e9\"\n" +
		"burst_drain_deadline = \"0.25\"\n"
	_, tier := writeIteration(t, toml, 50e6)
	q := tier.QoS()
	if !q.PriorityLanes {
		t.Error("burst_qos_priority = true did not reach the tier")
	}
	if q.DrainLimit != 2e9 {
		t.Errorf("burst_drain_limit: got %v, want 2e9", q.DrainLimit)
	}
	if q.Deadline != 0.25 {
		t.Errorf("burst_drain_deadline: got %v, want 0.25", q.Deadline)
	}
}

// TestQoSKnobTypoIsAnError checks that a malformed QoS value fails the
// engine open instead of silently running with the knob ignored.
func TestQoSKnobTypoIsAnError(t *testing.T) {
	k := sim.NewKernel()
	back := lustre.New(k, lustre.DefaultParams())
	tier := burst.NewTier(k, burst.Spec{CapacityBytes: 1 << 30, Rate: 10e9}, back)
	w := mpisim.NewWorld(k, 1, nil)
	w.Run(func(r *mpisim.Rank) {
		env := &posix.Env{
			FS:     back,
			Stage:  tier.FS(),
			Client: &pfs.Client{Node: 0, NIC: sim.NewServer(k, 25e9, 0)},
		}
		host := openpmd.Host{Proc: r.Proc, Env: env, Comm: r.Comm}
		toml := "burst_buffer = true\nburst_drain_limit = \"1.5 GB\"\n"
		if _, err := openpmd.NewSeries(host, "/scratch/bad.bp4", openpmd.AccessCreate, toml); err == nil {
			t.Error("malformed burst_drain_limit must fail the open")
		}
	})
}
