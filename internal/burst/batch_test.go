package burst_test

import (
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/sim"
)

// batchRun drives one staged checkpoint-style workload — contiguous
// volume-mode chunks landing out of order in one file (the aggregator
// fan-in pattern the absorb-side tail coalescing cannot merge), then a
// forced drain to durability — and reports the tier stats and kernel
// event counts.
func batchRun(t *testing.T, batch int64) (burst.Stats, sim.KernelStats) {
	t.Helper()
	spec := burst.Spec{
		CapacityBytes:   256 * MB,
		Rate:            6e9,
		PerOp:           25e-6,
		DrainRate:       3e9,
		Policy:          burst.PolicyEpochEnd,
		DrainBatchBytes: batch,
	}
	r := newRig(spec)
	r.run(func(p *sim.Proc) {
		fs := r.tier.FS()
		f, err := fs.Create(p, r.c, "/ckpt/state")
		if err != nil {
			t.Error(err)
			return
		}
		const chunk = 1 * MB
		for i := int64(63); i >= 0; i-- {
			f.WriteAt(p, r.c, i*chunk, chunk, nil)
		}
		f.Close(p, r.c)
		r.tier.WaitDrained(p)
	})
	return r.tier.Stats(), r.k.Stats()
}

// TestDrainBatchReducesEvents is the O(chunks) → O(batches) check: with
// DrainBatchBytes set, the same staged bytes reach durability through
// far fewer backing write-backs and far fewer kernel events, and the
// byte accounting is identical to the unbatched run.
func TestDrainBatchReducesEvents(t *testing.T) {
	plain, plainK := batchRun(t, 0)
	batched, batchedK := batchRun(t, 16*MB)

	if plain.DrainedBytes != batched.DrainedBytes || batched.DrainedBytes != 64*MB {
		t.Fatalf("drained bytes diverged: plain %d batched %d, want %d", plain.DrainedBytes, batched.DrainedBytes, 64*MB)
	}
	if plain.PendingBytes != 0 || batched.PendingBytes != 0 {
		t.Fatalf("pending after WaitDrained: plain %d batched %d, want 0", plain.PendingBytes, batched.PendingBytes)
	}
	// The absorb side coalesces contiguous writes into the lane tail, so
	// the unbatched run may already merge some; the knob must still cut
	// the op count by at least the 16 MB batch factor over 1 MB chunks
	// relative to whatever the absorb side left queued.
	if batched.DrainOps*4 > plain.DrainOps {
		t.Fatalf("DrainOps %d (batched) vs %d (plain): batching did not reduce write-backs", batched.DrainOps, plain.DrainOps)
	}
	if be, pe := batchedK.Events(), plainK.Events(); be >= pe {
		t.Fatalf("kernel events %d (batched) vs %d (plain): batching did not reduce event count", be, pe)
	}
}

// TestDrainBatchRespectsFileBoundary checks a batch never merges across
// files: two interleaved files' segments drain as separate write-backs.
func TestDrainBatchRespectsFileBoundary(t *testing.T) {
	spec := burst.Spec{
		CapacityBytes:   256 * MB,
		Rate:            6e9,
		PerOp:           25e-6,
		DrainRate:       3e9,
		Policy:          burst.PolicyEpochEnd,
		DrainBatchBytes: 64 * MB,
	}
	r := newRig(spec)
	r.run(func(p *sim.Proc) {
		fs := r.tier.FS()
		fa, err := fs.Create(p, r.c, "/ckpt/a")
		if err != nil {
			t.Error(err)
			return
		}
		fb, err := fs.Create(p, r.c, "/ckpt/b")
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(0); i < 8; i++ {
			fa.WriteAt(p, r.c, i*MB, MB, nil)
			fb.WriteAt(p, r.c, i*MB, MB, nil)
		}
		fa.Close(p, r.c)
		fb.Close(p, r.c)
		r.tier.WaitDrained(p)
	})
	st := r.tier.Stats()
	if st.DrainedBytes != 16*MB {
		t.Fatalf("drained %d, want %d", st.DrainedBytes, 16*MB)
	}
	// Interleaved absorb order alternates files in the lane, so merging
	// runs stop at every file switch: at least two ops must remain.
	if st.DrainOps < 2 {
		t.Fatalf("DrainOps = %d: a batch merged across file boundaries", st.DrainOps)
	}
}
