package burst_test

import (
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/sim"
)

// stageTwoLanes writes a diagnostic file FIRST and a checkpoint file
// second (so FIFO would drain diagnostics first), then forces a full
// drain, returning the tier's stats.
func stageTwoLanes(t *testing.T, qos burst.QoS) burst.Stats {
	t.Helper()
	r := newRig(burst.Spec{
		CapacityBytes: 64 * MB, Rate: 10e9, DrainRate: 1e9,
		Policy: burst.PolicyEpochEnd, QoS: qos,
	})
	r.run(func(p *sim.Proc) {
		diag, err := r.tier.FS().Create(p, r.c, "/x/diag_000.dat")
		if err != nil {
			t.Fatal(err)
		}
		diag.WriteAt(p, r.c, 0, 8*MB, nil)
		ckpt, err := r.tier.FS().Create(p, r.c, "/x/ckpt_000.dmp")
		if err != nil {
			t.Fatal(err)
		}
		ckpt.WriteAt(p, r.c, 0, 8*MB, nil)
		r.tier.WaitDrained(p)
		diag.Close(p, r.c)
		ckpt.Close(p, r.c)
	})
	return r.tier.Stats()
}

// TestPriorityLaneReordersCheckpointAhead is the QoS ordering contract:
// with the priority lane on, every checkpoint byte drains before the
// first diagnostic byte even though the diagnostics were queued first;
// with QoS off, FIFO order drains the diagnostics first.
func TestPriorityLaneReordersCheckpointAhead(t *testing.T) {
	st := stageTwoLanes(t, burst.QoS{PriorityLanes: true})
	ck, dg := st.Class[burst.ClassCheckpoint], st.Class[burst.ClassDiagnostic]
	if ck.DrainedBytes != 8*MB || dg.DrainedBytes != 8*MB {
		t.Fatalf("lane bytes: ckpt=%d diag=%d", ck.DrainedBytes, dg.DrainedBytes)
	}
	if ck.LastDrainEnd > dg.FirstDrainStart {
		t.Errorf("priority lane: checkpoint finished at %v, diagnostics started at %v — want ckpt strictly first",
			ck.LastDrainEnd, dg.FirstDrainStart)
	}

	st = stageTwoLanes(t, burst.QoS{})
	ck, dg = st.Class[burst.ClassCheckpoint], st.Class[burst.ClassDiagnostic]
	if dg.LastDrainEnd > ck.FirstDrainStart {
		t.Errorf("FIFO: diagnostics finished at %v, checkpoint started at %v — want enqueue order",
			dg.LastDrainEnd, ck.FirstDrainStart)
	}
}

// TestDrainRateLimitStretchesWriteBack checks the QoS bandwidth cap: a
// 1 MB/s limit must stretch an 8 MB write-back to at least 8 seconds,
// even though the drain device itself is far faster.
func TestDrainRateLimitStretchesWriteBack(t *testing.T) {
	r := newRig(burst.Spec{
		CapacityBytes: 64 * MB, Rate: 10e9,
		Policy: burst.PolicyImmediate, QoS: burst.QoS{DrainLimit: 1e6},
	})
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 8*MB, nil)
		f.Close(p, r.c)
	})
	st := r.tier.Stats()
	if st.DrainedBytes != 8*MB {
		t.Fatalf("drained %d", st.DrainedBytes)
	}
	if want := float64(8*MB) / 1e6; float64(st.LastDrainEnd) < want {
		t.Errorf("rate-limited drain finished at %vs, want >= %vs", st.LastDrainEnd, want)
	}
}

// TestDeadlinePacingSpreadsDrain checks drain-by-deadline: with a 1 s
// deadline an 8 MB write-back that would naturally finish in well under
// 100 ms is paced out to land near the deadline — and a forced drain
// (WaitDrained) ignores the pacing.
func TestDeadlinePacingSpreadsDrain(t *testing.T) {
	spec := burst.Spec{
		CapacityBytes: 64 * MB, Rate: 10e9,
		Policy: burst.PolicyImmediate, QoS: burst.QoS{Deadline: 1.0},
	}
	r := newRig(spec)
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 8*MB, nil)
		f.Close(p, r.c)
	})
	st := r.tier.Stats()
	if end := float64(st.LastDrainEnd); end < 0.5 || end > 1.05 {
		t.Errorf("paced drain finished at %vs, want near the 1 s deadline", end)
	}

	// Forced drains must not be paced: WaitDrained flushes at full speed.
	r = newRig(spec)
	var waited sim.Duration
	r.run(func(p *sim.Proc) {
		f, err := r.tier.FS().Create(p, r.c, "/x/f")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, r.c, 0, 8*MB, nil)
		t0 := p.Now()
		r.tier.WaitDrained(p)
		waited = p.Now() - t0
		f.Close(p, r.c)
	})
	if waited > 0.5 {
		t.Errorf("forced drain waited %vs, pacing must not apply to flushes", waited)
	}
}

// TestDefaultClassify pins the lane classifier's naming convention.
func TestDefaultClassify(t *testing.T) {
	for path, want := range map[string]burst.Class{
		"/out/bit1_000007.dmp":          burst.ClassCheckpoint,
		"/scratch/a/ckpt_001_e002.dmp":  burst.ClassCheckpoint,
		"/scratch/checkpoint.bp4/md.0":  burst.ClassDiagnostic, // dir name alone doesn't promote
		"/scratch/Checkpoint_42":        burst.ClassCheckpoint,
		"/out/diag_000.dat":             burst.ClassDiagnostic,
		"/scratch/out.bp4/data.0":       burst.ClassDiagnostic,
		"/scratch/ckptdir/profiling.js": burst.ClassDiagnostic,
	} {
		if got := burst.DefaultClassify(path); got != want {
			t.Errorf("DefaultClassify(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestQoSZeroValueKeepsFIFO guards against QoS regressions in the plain
// scheduler: with the zero QoS, cross-file drain order is enqueue order.
func TestQoSZeroValueKeepsFIFO(t *testing.T) {
	st := stageTwoLanes(t, burst.QoS{})
	if st.DrainedBytes != 16*MB || st.DrainOps != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.FirstDrainStart != st.Class[burst.ClassDiagnostic].FirstDrainStart {
		t.Error("zero QoS must start with the first-enqueued (diagnostic) segment")
	}
}
