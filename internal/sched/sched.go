// Package sched is the trace-driven datacenter batch scheduler: the
// queue-level layer above internal/jobs, where the ROADMAP's "millions
// of users" live. A machine partition (cluster.System) serves a stream
// of job submissions — synthesized from per-tenant user populations via
// fault.Arrivals-style exponential interarrivals, or replayed from a
// trace file (see trace.go) — under a pluggable scheduling Policy
// (FCFS, EASY-backfill with priority aging).
//
// The simulator is a discrete-event loop over two event kinds, arrivals
// and completions, on a clock measured in production hours (the same
// campaign clock internal/experiments' failure campaigns use). Each
// admitted job leases its nodes through cluster.System.Allocate and
// returns them through Free, so the allocator sees exactly the churn a
// real resource manager produces. A job's isolated service time and
// parallel-file-system drain demand are priced by actually running its
// jobs.Spec through jobs.Run on the machine preset (see Pricer) — queued
// work inherits the full burst/QoS/fault machinery of the lower layers
// rather than being assigned a made-up runtime.
//
// Cross-job PFS contention emerges from the scheduling mix: the running
// set's aggregate drain demand is compared against the machine's
// backbone bandwidth, and when oversubscribed every running job's
// remaining I/O stretches proportionally (a processor-sharing
// approximation re-evaluated at every queue event). Packing more
// I/O-heavy jobs side by side therefore slows them all down — the
// system-wide burst-drain contention the single-co-schedule layer cannot
// see.
package sched

import (
	"fmt"
	"sort"

	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/xrand"
)

// Job is one queued batch job: submission metadata plus the jobs.Spec
// the scheduler launches when the job is admitted.
type Job struct {
	ID     int
	Tenant string
	Class  string // size-class label ("small", "wide", ...)
	Nodes  int
	// SubmitHours is the submission time on the campaign clock.
	SubmitHours float64
	// Spec is the work itself; Spec.Nodes must equal Nodes.
	Spec jobs.Spec
}

// JobResult is one job's scheduling outcome. A job killed mid-service
// (preemption or node failure) requeues as a continuation and may run in
// several segments: StartHours is then the final segment's start,
// WaitHours the queue time accumulated across all segments, and the
// kill damage shows up in the kill counters and LostNodeHours.
type JobResult struct {
	Job
	StartHours   float64 // start of the job's final segment
	EndHours     float64
	WaitHours    float64 // total queued time across segments
	ServiceHours float64 // isolated (uncontended) full-job service time
	// StretchX is the final segment's actual runtime over its nominal
	// service: > 1 means PFS contention from the co-running mix slowed
	// the job down.
	StretchX float64
	// Backfilled marks a (final) start ahead of a blocked queue head.
	Backfilled bool
	// Segments counts admissions: 1 for a job never killed.
	Segments int
	// Preemptions and FailureKills count the checkpoint-and-requeue
	// kills this job absorbed.
	Preemptions  int
	FailureKills int
	// LostNodeHours is nodes × (service executed past the last recovered
	// checkpoint) summed over kills — the work the machine redoes.
	LostNodeHours float64
}

// Slowdown is the job's bounded slowdown: (wait + actual runtime) over
// isolated service time, the standard queue-fairness quantity. A job
// that never waited and ran uncontended scores 1.
func (r JobResult) Slowdown() float64 {
	if r.ServiceHours <= 0 {
		return 1
	}
	return (r.WaitHours + r.EndHours - r.StartHours) / r.ServiceHours
}

// Pending is a queued job as a Policy sees it.
type Pending struct {
	Job       *Job
	WaitHours float64 // time in queue so far
	// ServiceHours is the walltime estimate the policy plans against:
	// the pricer's EstimateHours, i.e. the true service time padded by
	// its EstimateError (a perfect estimate at the zero default). The
	// simulator still runs jobs for their true service time, so a padded
	// estimate misleads only the planning.
	ServiceHours float64
}

// Active is a running job as a Policy sees it: how many nodes it holds
// and when the simulator currently predicts it will release them.
type Active struct {
	Nodes    int
	EndHours float64
}

// QueueView is the scheduling state handed to a Policy at each decision
// point: the current clock, the free-node count, the wait queue in
// submission order, and the running set with predicted release times.
type QueueView struct {
	NowHours float64
	Free     int
	Queue    []Pending
	Running  []Active
	// Usage is the per-tenant decayed delivered node-hours ledger (see
	// Config.UsageHalfLifeHours) — the quantity FairShare orders by.
	// Read-only; policies must not sum over its iteration order (raw
	// per-tenant lookups and comparisons are order-free, a float sum over
	// a Go map is not deterministic).
	Usage map[string]float64
}

// Decision is one job a policy starts now.
type Decision struct {
	QueueIndex int // index into QueueView.Queue
	// Backfilled marks a start that jumped a blocked higher-priority job.
	Backfilled bool
}

// Policy picks which queued jobs start at this decision point. It must
// be deterministic (no wall clock, no shared RNG) — the sweep engine's
// serial-vs-parallel bit-identity guarantee rests on it. Decisions are
// applied in order; a decision that exceeds the free nodes remaining
// after the ones before it is a policy bug and fails the run.
type Policy interface {
	Name() string
	Pick(v QueueView) []Decision
}

// Config parameterizes a scheduler run.
type Config struct {
	Machine cluster.Machine
	// Nodes is the schedulable partition size (0 = Machine.MaxNodes).
	Nodes int
	// EpochHours anchors the campaign clock: one workload epoch's compute
	// phase stands for this many production hours (default 6, matching
	// the failure campaigns).
	EpochHours float64
	// Seed feeds the pricing runs' storage stochastics.
	Seed uint64
	// PFSBandwidth is the shared write-back capacity the contention model
	// divides among running jobs, bytes/second in simulation terms
	// (0 = derive from the machine's storage backbone).
	PFSBandwidth float64
	// Pricer overrides the service-time pricer (nil = NewPricer on the
	// config's machine/seed/epoch clock). Sharing one pricer across runs
	// of the same machine skips re-simulating known job shapes.
	Pricer *Pricer
	// TimelineEvery, when positive, downsamples Result.Timeline: beyond
	// the always-on coalescing of equal-Busy steps, at most one sample is
	// retained per TimelineEvery hours — later steps inside a window fold
	// into the window's sample, which keeps the latest busy count. The
	// zero default keeps every distinct step: exact, and fine below
	// machine scale; at thousands of nodes and tens of thousands of jobs
	// the exact timeline is O(events) memory, and a downsampled one
	// trades Utilization() precision for a bounded footprint.
	TimelineEvery float64
	// UsageHalfLifeHours is the decay half-life of the per-tenant usage
	// ledger (delivered node-hours) the FairShare policy and the
	// preemptor order tenants by. Default 168 — one week, the customary
	// fair-share decay. The ledger is maintained for every run (it is
	// cheap and feeds Result.UsageJain); only FairShare and preemption
	// act on it.
	UsageHalfLifeHours float64
	// Preempt enables preemption via checkpoint-and-requeue (off by
	// default; see PreemptConfig).
	Preempt PreemptConfig
	// Faults injects node failures into the queue (off by default; see
	// FaultConfig).
	Faults FaultConfig
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = c.Machine.MaxNodes
	}
	if c.EpochHours == 0 {
		c.EpochHours = 6
	}
	if c.PFSBandwidth == 0 {
		c.PFSBandwidth = PFSBandwidth(c.Machine)
	}
	if c.UsageHalfLifeHours <= 0 {
		c.UsageHalfLifeHours = 168
	}
	if c.Faults.enabled() {
		if c.Faults.RepairHours == 0 {
			c.Faults.RepairHours = 12
		}
		switch {
		case c.Faults.DrainLagEpochs == 0:
			c.Faults.DrainLagEpochs = 1
		case c.Faults.DrainLagEpochs < 0:
			c.Faults.DrainLagEpochs = 0
		}
	}
	return c
}

// PFSBandwidth is the machine's shared write-back capacity: the storage
// backbone for Lustre machines, the aggregate server bandwidth
// otherwise. It is the denominator of the contention stretch model.
func PFSBandwidth(m cluster.Machine) float64 {
	switch m.Storage {
	case cluster.StorageLustre:
		return m.Lustre.BackboneRate
	case cluster.StorageNFS:
		return m.NFS.Rate
	case cluster.StorageCephFS:
		return float64(m.Ceph.NumOSDs) * m.Ceph.OSDRate
	}
	return m.NICRate
}

// UtilSample is one step of the machine-utilization timeline: from
// Hours onward, Busy nodes were leased.
type UtilSample struct {
	Hours float64
	Busy  int
}

// Result is one scheduler run's outcome.
type Result struct {
	Policy    string
	Nodes     int // partition size
	Jobs      []JobResult
	Timeline  []UtilSample // busy-node step function over the run
	Makespan  float64      // hours until the last job completed
	LeaseOps  int          // Allocate+Free calls issued against the system
	Backfills int

	// Preemption and failure accounting (zero when both are disabled).
	Preemptions  int // checkpoint-and-requeue kills by the preemptor
	FailureKills int // running jobs killed by node failures
	IdleFailures int // failures that landed on idle or already-down nodes
	// LostNodeHours is the redone work: node-hours executed past the
	// last recovered checkpoint, summed over kills. RequeuedNodeHours is
	// the continuation service put back on the queue (remaining epochs
	// plus restart overheads, node-weighted). DownNodeHours is repair
	// capacity taken out of the pool (repair windows × 1 node).
	LostNodeHours     float64
	RequeuedNodeHours float64
	DownNodeHours     float64

	// UsageJain is the time-weighted Jain fairness index over active
	// tenants' decayed delivered usage during contended intervals (two or
	// more tenants with work in the system); 1 when never contended.
	// This is the quantity fair-share scheduling equalizes — unlike
	// JainTenants' slowdown basis, which a strict FCFS queue maximizes by
	// giving every tenant the same misery.
	UsageJain float64
	// ShareErr is the time-weighted mean |usage share − equal share|
	// over active tenants during contended intervals; 0 is perfect
	// fair-share delivery.
	ShareErr float64
	// TenantShares is the per-tenant share-error breakdown, in
	// first-seen order.
	TenantShares []TenantShare
}

// MeanWaitHours is the mean queue wait over all jobs.
func (r *Result) MeanWaitHours() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	sum := 0.0
	for _, j := range r.Jobs {
		sum += j.WaitHours
	}
	return sum / float64(len(r.Jobs))
}

// WaitQuantile returns the q-quantile (0..1) of the queue-wait
// distribution.
func (r *Result) WaitQuantile(q float64) float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	ws := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		ws[i] = j.WaitHours
	}
	sort.Float64s(ws)
	idx := int(q * float64(len(ws)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ws) {
		idx = len(ws) - 1
	}
	return ws[idx]
}

// Utilization is the node-hour-weighted machine utilization over the
// makespan: leased node-hours / (partition × makespan).
func (r *Result) Utilization() float64 {
	if r.Makespan <= 0 || r.Nodes == 0 {
		return 0
	}
	busyNH := 0.0
	for i, s := range r.Timeline {
		end := r.Makespan
		if i+1 < len(r.Timeline) {
			end = r.Timeline[i+1].Hours
		}
		if end > s.Hours {
			busyNH += float64(s.Busy) * (end - s.Hours)
		}
	}
	return busyNH / (float64(r.Nodes) * r.Makespan)
}

// GroupStats is one tenant's or size class's queue experience.
type GroupStats struct {
	Name          string
	Jobs          int
	NodeHours     float64 // delivered node-hours (nodes × actual runtime)
	MeanWaitHours float64
	MeanSlowdown  float64
}

// groupBy folds job results into named groups in first-seen order.
func groupBy(jobsDone []JobResult, key func(JobResult) string) []GroupStats {
	idx := map[string]int{}
	var out []GroupStats
	for _, j := range jobsDone {
		k := key(j)
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, GroupStats{Name: k})
		}
		g := &out[i]
		g.Jobs++
		g.NodeHours += float64(j.Nodes) * (j.EndHours - j.StartHours)
		g.MeanWaitHours += j.WaitHours
		g.MeanSlowdown += j.Slowdown()
	}
	for i := range out {
		if out[i].Jobs > 0 {
			out[i].MeanWaitHours /= float64(out[i].Jobs)
			out[i].MeanSlowdown /= float64(out[i].Jobs)
		}
	}
	return out
}

// TenantStats groups the run's jobs by tenant.
func (r *Result) TenantStats() []GroupStats {
	return groupBy(r.Jobs, func(j JobResult) string { return j.Tenant })
}

// ClassStats groups the run's jobs by size class.
func (r *Result) ClassStats() []GroupStats {
	return groupBy(r.Jobs, func(j JobResult) string { return j.Class })
}

// JainTenants is Jain's fairness index over the tenants' mean bounded
// slowdowns, inverted so 1.0 means every tenant experienced the same
// queue treatment. Computed via jobs.JainIndex at N ≫ 2 — the N-tenant
// generalization of the two-job fairness the contention figure reports.
func (r *Result) JainTenants() float64 {
	ts := r.TenantStats()
	xs := make([]float64, len(ts))
	for i, t := range ts {
		// Fairness over per-tenant service quality: the reciprocal of the
		// mean slowdown, so an even queue experience scores 1 regardless
		// of how hard each tenant hammered the machine.
		if t.MeanSlowdown > 0 {
			xs[i] = 1 / t.MeanSlowdown
		}
	}
	return jobs.JainIndex(xs)
}

// Run replays the job stream (sorted by SubmitHours; ties broken by ID)
// through the policy on the config's machine partition.
//
// Two event-loop implementations exist behind this entry point. The
// default indexed loop (loop.go) finds the next completion through a
// lazily invalidated min-heap, reuses QueueView buffers across decision
// points, removes started jobs from the wait queue in O(1) amortized,
// and lets prefix-order policies veto provably idle decision points in
// O(1) — the machinery that makes whole-machine runs (thousands of
// nodes, tens of thousands of queued jobs) tractable. The retained
// naive loop (ForceNaiveLoopForTesting) keeps the pre-index structure;
// both share every piece of event arithmetic, and the differential
// suite holds them byte-identical.
func Run(cfg Config, pol Policy, stream []Job) (*Result, error) {
	cfg = cfg.withDefaults()
	if pol == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	pr := cfg.Pricer
	if pr == nil {
		pr = NewPricer(cfg.Machine, cfg.Seed, cfg.EpochHours)
	}
	// The lease substrate: a real cluster.System build, so Allocate/Free
	// churn exercises the allocator the co-schedule layer uses.
	sys, err := cfg.Machine.Build(cfg.Machine.NewKernel(cfg.Nodes), cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}

	arrivals := make([]*Job, len(stream))
	seen := map[int]bool{}
	for i := range stream {
		j := stream[i]
		if seen[j.ID] {
			return nil, fmt.Errorf("sched: duplicate job ID %d in stream", j.ID)
		}
		seen[j.ID] = true
		if j.Nodes < 1 || j.Nodes > cfg.Nodes {
			return nil, fmt.Errorf("sched: job %d needs %d nodes on a %d-node partition", j.ID, j.Nodes, cfg.Nodes)
		}
		if j.Spec.Nodes != j.Nodes {
			return nil, fmt.Errorf("sched: job %d: spec nodes %d != job nodes %d", j.ID, j.Spec.Nodes, j.Nodes)
		}
		arrivals[i] = &j
	}
	sort.SliceStable(arrivals, func(a, b int) bool {
		if arrivals[a].SubmitHours != arrivals[b].SubmitHours {
			return arrivals[a].SubmitHours < arrivals[b].SubmitHours
		}
		return arrivals[a].ID < arrivals[b].ID
	})

	if err := cfg.Faults.validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg: cfg, pol: pol, pr: pr, sys: sys,
		arrivals: arrivals,
		res:      &Result{Policy: pol.Name(), Nodes: cfg.Nodes},
		lastOver: 1,
		tenantIx: map[string]*tenantState{},
	}
	if cfg.Faults.enabled() {
		lastSubmit := 0.0
		if n := len(arrivals); n > 0 {
			lastSubmit = arrivals[n-1].SubmitHours
		}
		e.fails = cfg.Faults.arrivalTimes(cfg.Seed, cfg.Nodes, lastSubmit)
		e.failRng = xrand.New(xrand.SeedAt(cfg.Seed^failSeedSalt, 1))
	}
	if forceNaiveLoop {
		e.naive = true
		e.qued = map[int]float64{}
	} else if pp, ok := pol.(PrefixPolicy); ok {
		e.prefix = pp
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	return e.res, nil
}
