package sched

import (
	"fmt"
	"math"
	"sort"
)

// FCFS is strict first-come-first-served: jobs start in submission
// order, and a queue head that does not fit blocks everything behind it
// — the baseline whose head-of-line blocking EASY backfill exists to
// remove.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Policy: start queue-order jobs while they fit; stop at
// the first that does not.
func (FCFS) Pick(v QueueView) []Decision {
	free := v.Free
	var ds []Decision
	for i, p := range v.Queue {
		if p.Job.Nodes > free {
			break
		}
		ds = append(ds, Decision{QueueIndex: i})
		free -= p.Job.Nodes
	}
	return ds
}

// PrefixBlocked implements PrefixPolicy: Pick stops at the first job
// that does not fit, so a blocked head blocks the whole pass. The
// indexed event loop uses this to skip decision points in O(1) —
// arrivals behind a blocked head, completions too narrow to unblock it.
func (FCFS) PrefixBlocked(free, headNodes int) bool { return headNodes > free }

// EASY is EASY backfill with priority aging. The queue is ordered by an
// aged priority score; the highest-priority job that does not fit gets
// the sole reservation (the earliest future instant enough nodes come
// free), and lower-priority jobs may start ahead of it only if they
// cannot delay that reservation — either they finish before it, or they
// use nodes the reservation does not need. With perfect service
// estimates (the pricer's) the reserved job is never pushed back by a
// backfill, the property that makes EASY safe to run aggressively.
//
// Priority aging keeps the ordering from degenerating into
// widest-job-starves: small jobs get a head start (they backfill well),
// but every AgingHours of queue wait cancels one doubling of node count,
// so a wide job's priority overtakes a stream of fresh narrow ones
// instead of waiting forever.
type EASY struct {
	// AgingHours is the queue wait that outweighs one log2(nodes) of job
	// width (default 2). Smaller values converge on FCFS ordering faster.
	AgingHours float64
}

// Name implements Policy.
func (p EASY) Name() string { return "easy-backfill" }

func (p EASY) agingHours() float64 {
	if p.AgingHours <= 0 {
		return 2
	}
	return p.AgingHours
}

// score is the aged priority: higher runs earlier.
func (p EASY) score(q Pending) float64 {
	return q.WaitHours/p.agingHours() - math.Log2(float64(q.Job.Nodes))
}

// Pick implements Policy.
func (p EASY) Pick(v QueueView) []Decision {
	order := make([]int, len(v.Queue))
	// Scores are computed once per entry rather than inside the sort
	// comparator: score is a pure function of the entry, so the ordering
	// is unchanged, but a deep queue no longer pays two Log2 calls per
	// comparison — the comparator cost that used to dominate
	// machine-scale Picks.
	scores := make([]float64, len(v.Queue))
	for i := range order {
		order[i] = i
		scores[i] = p.score(v.Queue[i])
	}
	// Stable sort on descending score: ties resolve in submission order,
	// keeping the policy deterministic for bit-identical parallel sweeps.
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]] > scores[order[b]]
	})
	return pickOrdered(v, order)
}

// pickOrdered is the single-reservation backfill pass shared by every
// priority-ordered policy (EASY, FairShare): start jobs in priority
// order while they fit, give the first that does not the sole
// reservation, and backfill behind it only with starts that cannot
// delay the reserved instant.
func pickOrdered(v QueueView, order []int) []Decision {
	free := v.Free
	var ds []Decision
	reserved := -1 // order position of the blocked head, -1 while none
	var shadowHours float64
	var shadowExtra int // nodes still free at the shadow time after the reservation
	for _, qi := range order {
		job := v.Queue[qi].Job
		if reserved < 0 {
			if job.Nodes <= free {
				ds = append(ds, Decision{QueueIndex: qi})
				free -= job.Nodes
				continue
			}
			// First blocked job: it owns the run's single reservation.
			reserved = qi
			shadowHours, shadowExtra = reservation(v, free, ds, job.Nodes)
			continue
		}
		// Backfill candidates behind the reservation: must fit now and
		// must not delay the reserved start — either by finishing before
		// the shadow time (borrowing nodes the reservation will reclaim),
		// or by running on spare nodes the reservation does not need.
		if job.Nodes > free {
			continue
		}
		endsBy := v.NowHours + v.Queue[qi].ServiceHours
		if endsBy > shadowHours {
			if job.Nodes > shadowExtra {
				continue
			}
			shadowExtra -= job.Nodes
		}
		ds = append(ds, Decision{QueueIndex: qi, Backfilled: true})
		free -= job.Nodes
	}
	return ds
}

// FairShare is usage-ordered scheduling with EASY-style backfill: the
// queue is ordered by each job's tenant's decayed delivered usage
// (QueueView.Usage) — least-served tenant first — with the aged EASY
// score breaking ties within a tenant, then the single-reservation
// backfill pass applies unchanged. Ordering compares raw usage rather
// than normalized shares: the denominator would be a float sum over a
// map, identical ordering either way, but only the raw comparison is
// iteration-order-free.
//
// FairShare deliberately does not implement PrefixPolicy: like EASY it
// starts jobs around a blocked head, so no decision point is provably
// idle from the head alone.
type FairShare struct {
	// AgingHours is the within-tenant tiebreak aging (default 2, as EASY).
	AgingHours float64
}

// Name implements Policy.
func (p FairShare) Name() string { return "fair-share" }

func (p FairShare) agingHours() float64 {
	if p.AgingHours <= 0 {
		return 2
	}
	return p.AgingHours
}

// Pick implements Policy.
func (p FairShare) Pick(v QueueView) []Decision {
	order := make([]int, len(v.Queue))
	usage := make([]float64, len(v.Queue))
	scores := make([]float64, len(v.Queue))
	for i := range order {
		order[i] = i
		q := v.Queue[i]
		usage[i] = v.Usage[q.Job.Tenant]
		scores[i] = q.WaitHours/p.agingHours() - math.Log2(float64(q.Job.Nodes))
	}
	sort.SliceStable(order, func(a, b int) bool {
		if usage[order[a]] != usage[order[b]] {
			return usage[order[a]] < usage[order[b]]
		}
		return scores[order[a]] > scores[order[b]]
	})
	return pickOrdered(v, order)
}

// reservation computes the blocked head's shadow time — the earliest
// instant enough nodes are free for it, assuming the decisions already
// taken start now and running jobs end at their predicted times — and
// how many nodes remain spare at that instant beyond the head's need.
func reservation(v QueueView, freeNow int, started []Decision, need int) (shadow float64, extra int) {
	type release struct {
		at    float64
		nodes int
	}
	var rels []release
	for _, a := range v.Running {
		rels = append(rels, release{a.EndHours, a.Nodes})
	}
	// Jobs this Pick already started hold their nodes until now+service.
	for _, d := range started {
		q := v.Queue[d.QueueIndex]
		rels = append(rels, release{v.NowHours + q.ServiceHours, q.Job.Nodes})
	}
	sort.Slice(rels, func(a, b int) bool { return rels[a].at < rels[b].at })
	avail := freeNow
	for _, r := range rels {
		avail += r.nodes
		if avail >= need {
			return r.at, avail - need
		}
	}
	// Unreachable with a sane partition (the head fits an empty machine);
	// treat as "never" so no backfill is constrained by it.
	return math.Inf(1), 0
}

// Policies returns the named policy (the set the figsched artifact
// sweeps over).
func Policies(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "easy-backfill", "easy":
		return EASY{}, nil
	case "fair-share", "fair":
		return FairShare{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q", name)
}
