// Trace format and synthetic workload generation for the batch
// scheduler. A trace is the replayable submission log — plain text, one
// job per line — so a scheduling comparison can be pinned to an exact
// job stream (the figsched artifact replays the same trace through
// every policy, which is what makes its policy deltas meaningful).
package sched

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
	"picmcio/internal/xrand"
)

// SizeClass is a named job shape: the node width and workload a class
// member runs, and the weight with which the synthesizer draws it. The
// Spec method instantiates the shape on a machine preset, so one class
// list serves every machine in a sweep.
type SizeClass struct {
	Name   string
	Nodes  int
	Weight float64
	// Workload is the per-class science payload (epochs, checkpoint and
	// diagnostic bytes, compute per epoch).
	Workload jobs.Workload
	// Direct bypasses the machine's burst-buffer preset: the class writes
	// straight to the PFS, making it the I/O bully of a mixed queue.
	Direct bool
}

// Spec instantiates the class on a machine preset, staging through the
// machine's burst-buffer preset unless the class is Direct.
func (c SizeClass) Spec(m cluster.Machine) jobs.Spec {
	s := jobs.Spec{
		Name:        c.Name,
		Nodes:       c.Nodes,
		Workload:    c.Workload,
		StripeCount: -1,
	}
	if !c.Direct {
		s.Burst = m.Burst
	}
	return s
}

// DefaultClasses is the standard four-shape mix the figsched artifact
// queues: narrow and medium staged jobs (the bulk of a production
// queue), a wide staged job (the backfill problem case), and a direct
// PFS writer (the contention source). Weights follow the usual
// many-small/few-wide skew of real batch logs.
func DefaultClasses() []SizeClass {
	base := jobs.BulkWriter{
		Epochs:          3,
		CheckpointBytes: 96 * units.MiB,
		DiagBytes:       32 * units.MiB,
		// Compute dominates an epoch (as it does in production PIC runs);
		// the I/O share is what stretches under PFS contention.
		ComputeSec: 0.2,
	}
	narrow, medium, wide, bully := base, base, base, base
	medium.CheckpointBytes = 192 * units.MiB
	wide.CheckpointBytes = 256 * units.MiB
	wide.ComputeSec = 0.3
	bully.CheckpointBytes = 512 * units.MiB
	bully.DiagBytes = 128 * units.MiB
	return []SizeClass{
		{Name: "narrow", Nodes: 2, Weight: 0.45, Workload: narrow},
		{Name: "medium", Nodes: 4, Weight: 0.30, Workload: medium},
		{Name: "wide", Nodes: 16, Weight: 0.10, Workload: wide},
		{Name: "direct", Nodes: 4, Weight: 0.15, Workload: bully, Direct: true},
	}
}

// Synth parameterizes synthetic job-stream generation: per-tenant user
// populations submitting with exponential interarrival gaps (the same
// Poisson machinery fault.Arrivals uses for node failures, repurposed
// for submissions).
type Synth struct {
	// Tenants is the number of independent tenants (default 8 — enough
	// for an N ≫ 2 Jain fairness reading).
	Tenants int
	// Users is the submitting-user population per tenant (default 4).
	Users int
	// SubmitMeanHours is each user's mean gap between submissions; the
	// tenant's aggregate rate is Users/SubmitMeanHours (required > 0).
	SubmitMeanHours float64
	// SpanHours is the submission window; jobs arrive in [0, SpanHours)
	// (default 48).
	SpanHours float64
	// Classes is the shape mix (default DefaultClasses()).
	Classes []SizeClass
	// Seed drives arrival times and class draws. Each tenant consumes an
	// independent SeedAt-derived stream, so adding a tenant never
	// perturbs the others' submissions.
	Seed uint64
	// TenantWeights skews the per-tenant offered load: tenant t submits
	// at TenantWeights[t] times the base rate (its users' mean submission
	// gap is SubmitMeanHours/TenantWeights[t]). Entries must be > 0;
	// tenants beyond the slice default to weight 1. Nil keeps the uniform
	// historical stream byte-identical. SubmitMeanForLoad accounts for
	// the weights, so a calibrated load factor means the same thing
	// skewed or not.
	TenantWeights []float64
}

func (s Synth) withDefaults() Synth {
	if s.Tenants == 0 {
		s.Tenants = 8
	}
	if s.Users == 0 {
		s.Users = 4
	}
	if s.SpanHours == 0 {
		s.SpanHours = 48
	}
	if len(s.Classes) == 0 {
		s.Classes = DefaultClasses()
	}
	return s
}

// Synthesize generates the job stream: one fault.Arrivals draw per
// tenant (mean SubmitMeanHours per user, Users users, over SpanHours),
// each arrival assigned a weighted-random size class. Jobs are returned
// in submission order with IDs 1..n; the result is a pure function of
// the Synth fields, so equal configs replay identical streams.
func Synthesize(m cluster.Machine, s Synth) ([]Job, error) {
	s = s.withDefaults()
	if s.SubmitMeanHours <= 0 {
		return nil, fmt.Errorf("sched: Synth.SubmitMeanHours must be > 0 (got %v)", s.SubmitMeanHours)
	}
	total := 0.0
	for _, c := range s.Classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("sched: class %q has negative weight", c.Name)
		}
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("sched: class weights sum to zero")
	}
	if len(s.TenantWeights) > s.Tenants {
		return nil, fmt.Errorf("sched: %d tenant weights for %d tenants", len(s.TenantWeights), s.Tenants)
	}
	for t, w := range s.TenantWeights {
		if w <= 0 {
			return nil, fmt.Errorf("sched: tenant %d weight %v must be > 0", t, w)
		}
	}
	var js []Job
	for t := 0; t < s.Tenants; t++ {
		rng := xrand.New(xrand.SeedAt(s.Seed, uint64(t)))
		mean := s.SubmitMeanHours
		if t < len(s.TenantWeights) {
			mean = s.SubmitMeanHours / s.TenantWeights[t]
		}
		times := fault.Arrivals(rng.Split(0), mean, s.Users, s.SpanHours)
		pick := rng.Split(1)
		tenant := fmt.Sprintf("tenant%02d", t)
		for _, at := range times {
			w := pick.Float64() * total
			ci := 0
			for ci < len(s.Classes)-1 && w >= s.Classes[ci].Weight {
				w -= s.Classes[ci].Weight
				ci++
			}
			c := s.Classes[ci]
			js = append(js, Job{
				Tenant:      tenant,
				Class:       c.Name,
				Nodes:       c.Nodes,
				SubmitHours: at,
				Spec:        c.Spec(m),
			})
		}
	}
	// Merge the per-tenant streams into one submission-ordered log and
	// assign IDs in that order (ties break by tenant, which is fixed
	// before IDs exist — keeps the merge deterministic).
	sort.SliceStable(js, func(a, b int) bool {
		if js[a].SubmitHours != js[b].SubmitHours {
			return js[a].SubmitHours < js[b].SubmitHours
		}
		return js[a].Tenant < js[b].Tenant
	})
	for i := range js {
		js[i].ID = i + 1
	}
	return js, nil
}

// SubmitMeanForLoad calibrates Synth.SubmitMeanHours so the synthetic
// stream offers the given load factor on a partition: load 1.0 means
// the expected node-hour demand rate equals the partition's capacity
// (load > 1 saturates, building a persistent queue). The expectation is
// taken over the class weights with service times from the pricer, so
// the calibration reflects what the jobs actually cost on the machine.
func SubmitMeanForLoad(pr *Pricer, m cluster.Machine, s Synth, load float64, partition int) (float64, error) {
	s = s.withDefaults()
	if load <= 0 || partition <= 0 {
		return 0, fmt.Errorf("sched: load %v on %d nodes is not calibratable", load, partition)
	}
	wsum, nsvc := 0.0, 0.0
	for _, c := range s.Classes {
		p, err := pr.Price(c.Spec(m))
		if err != nil {
			return 0, err
		}
		wsum += c.Weight
		nsvc += c.Weight * float64(c.Nodes) * p.ServiceHours
	}
	if wsum <= 0 || nsvc <= 0 {
		return 0, fmt.Errorf("sched: degenerate class mix (weight sum %v, node-service %v)", wsum, nsvc)
	}
	meanNodeServiceH := nsvc / wsum
	// jobs/hour needed to offer load×partition node-hours per hour,
	// spread over the total submitting-user population (weighted: a
	// tenant at weight w submits like w tenants' worth of users).
	rate := load * float64(partition) / meanNodeServiceH
	if len(s.TenantWeights) > 0 {
		wsumT := 0.0
		for t := 0; t < s.Tenants; t++ {
			w := 1.0
			if t < len(s.TenantWeights) {
				w = s.TenantWeights[t]
			}
			wsumT += w
		}
		return wsumT * float64(s.Users) / rate, nil
	}
	return float64(s.Tenants*s.Users) / rate, nil
}

// traceHeader identifies the trace format; bump the version if the
// column set changes.
const traceHeader = "#schedtrace v1"

// WriteTrace serializes the stream as a replayable text trace: a header
// line, then one "id tenant class nodes submit_hours" line per job.
// Specs are not serialized — ReadTrace reconstructs them from a class
// list — so a trace stays machine-portable.
func WriteTrace(w io.Writer, js []Job) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceHeader)
	fmt.Fprintln(bw, "# id tenant class nodes submit_hours")
	for _, j := range js {
		// Shortest exact float form, so replaying a written trace is
		// bit-identical to running the stream it came from.
		fmt.Fprintf(bw, "%d %s %s %d %s\n", j.ID, j.Tenant, j.Class, j.Nodes,
			strconv.FormatFloat(j.SubmitHours, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace, instantiating each
// job's spec from the named class on the given machine (the line's node
// count overrides the class default, so hand-edited traces can resize
// jobs without defining a new class). Blank lines and #-comments after
// the header are ignored.
func ReadTrace(r io.Reader, m cluster.Machine, classes []SizeClass) ([]Job, error) {
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	byName := map[string]SizeClass{}
	for _, c := range classes {
		byName[c.Name] = c
	}
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("sched: empty trace")
	}
	if got := strings.TrimSpace(sc.Text()); got != traceHeader {
		return nil, fmt.Errorf("sched: bad trace header %q (want %q)", got, traceHeader)
	}
	var js []Job
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var (
			id, nodes    int
			tenant, name string
			at           float64
		)
		if _, err := fmt.Sscanf(text, "%d %s %s %d %g", &id, &tenant, &name, &nodes, &at); err != nil {
			return nil, fmt.Errorf("sched: trace line %d: %v", line, err)
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("sched: trace line %d: unknown size class %q", line, name)
		}
		spec := c.Spec(m)
		spec.Nodes = nodes
		js = append(js, Job{ID: id, Tenant: tenant, Class: name, Nodes: nodes, SubmitHours: at, Spec: spec})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return js, nil
}
