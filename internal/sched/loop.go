package sched

import (
	"fmt"
	"math"
	"sort"

	"picmcio/internal/cluster"
	"picmcio/internal/xrand"
)

// This file is the DES event loop behind Run, in two structures that
// share every piece of event arithmetic:
//
//   - The indexed loop (the default): next-completion lookup through a
//     lazily invalidated min-heap (heap.go), admission-time prices and
//     submit times carried on queue entries, reused QueueView buffers,
//     tombstoned O(1)-amortized queue removal, and an O(1) veto of
//     provably idle decision points for prefix-order policies.
//   - The naive loop (ForceNaiveLoopForTesting): the pre-index
//     structure — O(run) completion scans, per-pass shape pricing
//     through the memo map, fresh view allocations, splice queue
//     removal — kept as the differential oracle and the speedup
//     baseline for BenchmarkSchedScale.
//
// Because the shared core performs the exact same float operations in
// the exact same order for both structures, the two loops produce
// byte-identical Results; the differential suite enforces that on
// randomized streams.
//
// Remaining work is accounted in stretched virtual time: a running job
// carries its last touch point (touchH, remH, slowdown) and between
// touches
//
//	remaining(t) = remH - (t-touchH)/slowdown
//	endOf        = touchH + remH*slowdown   (constant between touches)
//
// so the clock can jump event-to-event without walking the running set
// (the old advance-everyone-every-event pass), and a job is touched —
// its elapsed time folded into remH — only when its slowdown is about
// to change. Slowdowns are a pure function of each job's I/O fraction
// and the shared contention factor `over`, and `over` moves only when
// aggregate drain demand does, so the engine maintains demand
// incrementally on start/complete and restretches only when `over`
// actually changed.

// forceNaiveLoop routes Run through the retained naive event loop.
var forceNaiveLoop bool

// ForceNaiveLoopForTesting routes every subsequent Run through the
// retained naive event loop — the pre-index structure (O(run)
// completion scans, per-pass shape pricing, fresh view allocations,
// splice queue removal) sharing the indexed loop's arithmetic — and
// returns a function restoring the previous behaviour. The
// differential suite and BenchmarkSchedScale use it to prove the
// indexed loop byte-identical and to measure its speedup. Test-only;
// not safe for concurrent use with Run.
func ForceNaiveLoopForTesting() (restore func()) {
	prev := forceNaiveLoop
	forceNaiveLoop = true
	return func() { forceNaiveLoop = prev }
}

// PrefixPolicy is an optional Policy refinement for strict
// in-queue-order policies: PrefixBlocked(free, headNodes) reports that
// a Pick under `free` free nodes with a queue head needing `headNodes`
// is guaranteed to start nothing. The indexed event loop uses it to
// skip queue-view construction entirely on events that cannot change
// the schedule — the common case for a deep backlog behind a blocked
// FCFS head. A policy that can start later jobs around a blocked head
// (EASY backfill) must not implement it.
type PrefixPolicy interface {
	Policy
	PrefixBlocked(free, headNodes int) bool
}

// qent is one queued job's admission record. The indexed loop prices
// the job once on admission and tombstones the entry on start; the
// naive loop re-prices per decision point through the memo map and
// splices entries out, leaving dead always false.
type qent struct {
	job     *Job
	submitH float64
	price   Price
	dead    bool
	// cont marks a continuation segment of a killed job: its price is
	// the remainder's (set at requeue time in both loops — the naive
	// loop's per-pass re-pricing would recover the full job's price,
	// which is no longer what is queued).
	cont  bool
	track *jobTrack
}

// running is one admitted job's live state under stretched virtual
// time (see the file comment for the accounting).
type running struct {
	job   *Job
	res   *JobResult
	alloc *cluster.Allocation

	touchH   float64 // clock of the last touch
	remH     float64 // service time still owed at nominal rate, as of touchH
	slowdown float64
	drainBps float64
	ioFrac   float64
	// epoch versions the (touchH, remH, slowdown) triple; completion-heap
	// entries snapshot it, and a snapshot whose epoch no longer matches is
	// stale and discarded on pop (lazy invalidation).
	epoch uint64

	track *jobTrack // cross-segment bookkeeping (kills, recovered epochs)
}

// endOf is the predicted completion under the current stretch.
func (rj *running) endOf() float64 { return rj.touchH + rj.remH*rj.slowdown }

// touch folds elapsed time into the job's remaining work at its current
// rate, so the slowdown can change at `now` without rewriting history.
func (rj *running) touch(now float64) {
	rj.remH -= (now - rj.touchH) / rj.slowdown
	if rj.remH < 0 {
		rj.remH = 0
	}
	rj.touchH = now
}

// engine is one Run's event-loop state.
type engine struct {
	cfg Config
	pol Policy
	pr  *Pricer
	sys *cluster.System
	res *Result

	arrivals []*Job
	next     int // next arrival index

	queue []*qent
	live  int             // non-tombstoned queue entries
	qued  map[int]float64 // naive loop's job ID -> submit time bookkeeping

	run      []*running // running set in start order
	demand   float64    // aggregate drain demand, maintained incrementally
	lastOver float64    // contention factor of the last restretch
	now      float64
	busy     int

	naive  bool
	prefix PrefixPolicy // non-nil when pol can veto idle passes in O(1)

	heap endHeap // the indexed loop's completion index

	// Reused QueueView backing buffers (indexed loop). viewSlots maps
	// view queue indices back to e.queue slots across tombstones.
	view      QueueView
	viewSlots []int

	// Realism-layer state (realism.go): the per-tenant usage ledger and
	// its fairness integrals, the failure schedule, and the repair list.
	tenants     []*tenantState
	tenantIx    map[string]*tenantState
	usageView   map[string]float64
	jainInt     float64
	shareErrInt float64
	contendH    float64
	fails       []float64
	nextFail    int
	failRng     *xrand.RNG
	repairs     []repair
	downNodes   int
}

// sample records the busy-node step function at `now`. Consecutive
// samples with unchanged Busy coalesce (they are one step), and with
// TimelineEvery > 0 later steps inside a window fold into the window's
// retained sample.
func (e *engine) sample() {
	tl := e.res.Timeline
	n := len(tl)
	if n > 0 && tl[n-1].Hours == e.now {
		tl[n-1].Busy = e.busy
		if n > 1 && tl[n-2].Busy == e.busy {
			e.res.Timeline = tl[:n-1] // step collapsed into its predecessor
		}
		return
	}
	if n > 0 && tl[n-1].Busy == e.busy {
		return // busy unchanged since the last step: not a new step
	}
	if n > 1 && e.cfg.TimelineEvery > 0 && e.now-tl[n-1].Hours < e.cfg.TimelineEvery {
		tl[n-1].Busy = e.busy // downsample: fold into the window's sample
		if tl[n-2].Busy == e.busy {
			e.res.Timeline = tl[:n-1]
		}
		return
	}
	e.res.Timeline = append(tl, UtilSample{Hours: e.now, Busy: e.busy})
}

// overOf is the contention factor for the current aggregate demand:
// how far the running set oversubscribes the shared PFS write-back.
func (e *engine) overOf() float64 {
	if e.cfg.PFSBandwidth > 0 && e.demand > e.cfg.PFSBandwidth {
		return e.demand / e.cfg.PFSBandwidth
	}
	return 1
}

// restretch re-evaluates the processor-sharing contention model after
// the running set changed. Each slowdown is a pure function of (ioFrac,
// over), so when `over` is unchanged every rewrite would reproduce the
// value the job already carries — the pass is skipped entirely and no
// job is touched. When `over` moved, every running job is touched at
// `now`, re-stretched, and (indexed loop) the completion heap is
// rebuilt in one O(run) heapify: stale keys are not one-sided bounds
// when contention can both rise and fall, so re-keying must be eager.
func (e *engine) restretch() {
	over := e.overOf()
	if over == e.lastOver {
		return
	}
	e.lastOver = over
	for _, rj := range e.run {
		rj.touch(e.now)
		rj.slowdown = 1 + rj.ioFrac*(over-1)
		rj.epoch++
	}
	if !e.naive {
		e.heap.rebuild(e.run)
	}
}

// nextEnd is the earliest predicted completion: a heap peek for the
// indexed loop, a min scan over the running set for the naive one.
func (e *engine) nextEnd() float64 {
	if !e.naive {
		return e.heap.min()
	}
	tEnd := math.Inf(1)
	for _, rj := range e.run {
		if t := rj.endOf(); t < tEnd {
			tEnd = t
		}
	}
	return tEnd
}

// admit starts job j now: lease its nodes, open its result, and join
// the running set. The start-time slowdown anticipates the pass-end
// restretch: when this batch of starts leaves `over` unchanged the
// restretch is skipped, so the value must already be what the rewrite
// would produce.
func (e *engine) admit(j *Job, p Price, tr *jobTrack, backfilled bool) error {
	alloc, err := e.sys.Allocate(j.Nodes)
	if err != nil {
		return fmt.Errorf("sched: policy %s overcommitted: %w", e.pol.Name(), err)
	}
	e.res.LeaseOps++
	if tr.res.Segments == 0 {
		// First admission anchors the cross-segment bookkeeping on the
		// ground-truth price; a never-killed job's single segment is the
		// whole job, so this path reproduces the historical result fields
		// byte for byte.
		tr.base = p
		tr.epochs = epochsOf(j)
		tr.perEpochH = p.ServiceHours / float64(tr.epochs)
		tr.segSvcH = p.ServiceHours
	}
	if tr.segLed == nil {
		tr.buildLedger()
	}
	tr.res.Segments++
	tr.waitH += e.now - tr.lastEnqueue
	jr := tr.res
	jr.StartHours = e.now
	jr.WaitHours = tr.waitH
	jr.ServiceHours = tr.base.ServiceHours
	jr.Backfilled = backfilled
	if backfilled {
		e.res.Backfills++
	}
	rj := &running{
		job: j, res: jr, alloc: alloc,
		touchH:   e.now,
		remH:     p.ServiceHours,
		slowdown: 1 + p.IOFrac*(e.lastOver-1),
		drainBps: p.DrainBps,
		ioFrac:   p.IOFrac,
		track:    tr,
	}
	e.run = append(e.run, rj)
	e.demand += p.DrainBps
	e.busy += j.Nodes
	e.tenant(j.Tenant).rate += float64(j.Nodes)
	if !e.naive {
		e.heap.push(rj)
	}
	return nil
}

// completeAt retires every running job predicted to finish within a
// nano-hour of tEnd. tEnd came from nextEnd, so the argmin job always
// qualifies and every completion event retires at least one job; the
// slack merges near-simultaneous finishes into one deterministic
// instant. Retirement runs in start order (the running list's), which
// pins the allocator's Free sequence.
func (e *engine) completeAt(tEnd float64) error {
	e.advance(tEnd)
	kept := e.run[:0]
	for _, rj := range e.run {
		if rj.endOf() <= tEnd+1e-9 {
			rj.res.EndHours = tEnd
			actual := tEnd - rj.res.StartHours
			// Stretch is measured against the final segment's nominal
			// service (== ServiceHours for a never-killed job), so it keeps
			// reading "contention slowdown of what actually ran last".
			if sv := rj.track.segSvcH; sv > 0 {
				rj.res.StretchX = actual / sv
			}
			e.res.Jobs = append(e.res.Jobs, *rj.res)
			if err := e.sys.Free(rj.alloc); err != nil {
				return err
			}
			e.res.LeaseOps++
			e.busy -= rj.job.Nodes
			e.demand -= rj.drainBps
			ts := e.tenant(rj.job.Tenant)
			ts.rate -= float64(rj.job.Nodes)
			ts.active--
			rj.epoch++ // strand any completion-heap snapshot
		} else {
			kept = append(kept, rj)
		}
	}
	e.run = kept
	e.restretch()
	e.sample()
	return nil
}

// enqueue admits an arrival to the wait queue. The indexed loop prices
// the shape here — once per job instead of once per decision point.
func (e *engine) enqueue(j *Job) error {
	tr := &jobTrack{res: &JobResult{Job: *j}, lastEnqueue: e.now}
	ent := &qent{job: j, submitH: e.now, track: tr}
	if e.naive {
		e.qued[j.ID] = e.now
	} else {
		p, err := e.pr.Price(j.Spec)
		if err != nil {
			return err
		}
		ent.price = p
	}
	e.queue = append(e.queue, ent)
	e.live++
	e.tenant(j.Tenant).active++
	return nil
}

// loop is the shared event skeleton over four event kinds — arrivals,
// completions, node failures, repairs — plus the preemption deadline.
// Ties resolve in a fixed priority: completions free nodes first (as a
// real scheduler's event loop would), then repairs restore capacity,
// then failures land, then arrivals, then the preemption wake-up. Every
// event is followed by a scheduling pass and preemption rounds. The
// loop also runs while only requeued continuations remain (killed jobs
// can outlive the arrival stream and the running set).
func (e *engine) loop() error {
	e.sample()
	for e.next < len(e.arrivals) || len(e.run) > 0 || e.live > 0 {
		tArr := math.Inf(1)
		if e.next < len(e.arrivals) {
			tArr = e.arrivals[e.next].SubmitHours
		}
		tEnd := e.nextEnd()
		tRep := math.Inf(1)
		if len(e.repairs) > 0 {
			tRep = e.repairs[0].at
		}
		tFail := math.Inf(1)
		if e.nextFail < len(e.fails) {
			tFail = e.fails[e.nextFail]
		}
		tPre := e.preemptDeadline()
		switch {
		case tEnd <= tArr && tEnd <= tRep && tEnd <= tFail && tEnd <= tPre && !math.IsInf(tEnd, 1):
			if err := e.completeAt(tEnd); err != nil {
				return err
			}
		case tRep <= tArr && tRep <= tFail && tRep <= tPre && !math.IsInf(tRep, 1):
			if err := e.repairAt(tRep); err != nil {
				return err
			}
		case tFail <= tArr && tFail <= tPre && !math.IsInf(tFail, 1):
			e.nextFail++
			if err := e.failAt(tFail); err != nil {
				return err
			}
		case tArr <= tPre && !math.IsInf(tArr, 1):
			e.advance(tArr)
			// Admit every arrival at this instant before scheduling.
			for e.next < len(e.arrivals) && e.arrivals[e.next].SubmitHours == e.now {
				if err := e.enqueue(e.arrivals[e.next]); err != nil {
					return err
				}
				e.next++
			}
		case !math.IsInf(tPre, 1):
			e.advance(tPre)
		default:
			// Live queue entries but no event can ever fire again: a
			// policy refused a job that fits an empty partition.
			return fmt.Errorf("sched: policy %s deadlocked with %d queued job(s) at t=%v", e.pol.Name(), e.live, e.now)
		}
		if err := e.scheduleAndPreempt(); err != nil {
			return err
		}
	}
	e.res.Makespan = e.now
	e.finishFairness()
	// Jobs complete in event order; report them in submission order so
	// the result is keyed the way the trace was.
	sort.SliceStable(e.res.Jobs, func(a, b int) bool { return e.res.Jobs[a].ID < e.res.Jobs[b].ID })
	return nil
}

func (e *engine) schedule() error {
	if e.naive {
		return e.scheduleNaive()
	}
	return e.scheduleIndexed()
}

// scheduleNaive is the pre-index decision loop: a fresh QueueView per
// pass, every queued shape re-priced through the memo map, started
// jobs spliced out of the queue.
func (e *engine) scheduleNaive() error {
	for {
		v := QueueView{NowHours: e.now, Free: e.sys.FreeNodes(), Usage: e.usageSnapshot()}
		for _, ent := range e.queue {
			p := ent.price
			if !ent.cont {
				var err error
				p, err = e.pr.Price(ent.job.Spec)
				if err != nil {
					return err
				}
			}
			v.Queue = append(v.Queue, Pending{Job: ent.job, WaitHours: e.now - e.qued[ent.job.ID], ServiceHours: p.EstimateHours})
		}
		for _, rj := range e.run {
			v.Running = append(v.Running, Active{Nodes: rj.job.Nodes, EndHours: rj.endOf()})
		}
		ds := e.pol.Pick(v)
		if len(ds) == 0 {
			return nil
		}
		// Indices reference the view's queue; apply back-to-front so
		// earlier removals do not shift later picks.
		sort.Slice(ds, func(a, b int) bool { return ds[a].QueueIndex > ds[b].QueueIndex })
		for _, d := range ds {
			if d.QueueIndex < 0 || d.QueueIndex >= len(e.queue) {
				return fmt.Errorf("sched: policy %s picked queue index %d of %d", e.pol.Name(), d.QueueIndex, len(e.queue))
			}
			ent := e.queue[d.QueueIndex]
			p := ent.price
			if !ent.cont {
				var err error
				p, err = e.pr.Price(ent.job.Spec)
				if err != nil {
					return err
				}
			}
			if err := e.admit(ent.job, p, ent.track, d.Backfilled); err != nil {
				return err
			}
			// Started jobs no longer wait: drop the submit-time entry so a
			// long trace does not hold every ID's bookkeeping forever.
			delete(e.qued, ent.job.ID)
			e.queue = append(e.queue[:d.QueueIndex], e.queue[d.QueueIndex+1:]...)
			e.live--
		}
		e.restretch()
		e.sample()
		// Loop: starting jobs changed the view; give the policy another
		// look (it may have been conservative about a now-free slot).
		if e.live == 0 {
			return nil
		}
	}
}

// scheduleIndexed is the scaled decision loop: reused view buffers,
// admission-time prices, tombstoned queue removal, and the
// PrefixPolicy veto for decision points that provably start nothing.
func (e *engine) scheduleIndexed() error {
	for {
		if e.live == 0 {
			return nil
		}
		free := e.sys.FreeNodes()
		if e.prefix != nil {
			if head := e.headEnt(); head != nil && e.prefix.PrefixBlocked(free, head.job.Nodes) {
				return nil // O(1): this pass cannot start anything
			}
		}
		e.view.NowHours = e.now
		e.view.Free = free
		e.view.Usage = e.usageSnapshot()
		e.view.Queue = e.view.Queue[:0]
		e.viewSlots = e.viewSlots[:0]
		for si, ent := range e.queue {
			if ent.dead {
				continue
			}
			e.view.Queue = append(e.view.Queue, Pending{Job: ent.job, WaitHours: e.now - ent.submitH, ServiceHours: ent.price.EstimateHours})
			e.viewSlots = append(e.viewSlots, si)
		}
		e.view.Running = e.view.Running[:0]
		for _, rj := range e.run {
			e.view.Running = append(e.view.Running, Active{Nodes: rj.job.Nodes, EndHours: rj.endOf()})
		}
		ds := e.pol.Pick(e.view)
		if len(ds) == 0 {
			return nil
		}
		// Same back-to-front application order as the naive loop: the
		// allocator's lease sequence is part of the byte-identity contract.
		sort.Slice(ds, func(a, b int) bool { return ds[a].QueueIndex > ds[b].QueueIndex })
		for _, d := range ds {
			if d.QueueIndex < 0 || d.QueueIndex >= len(e.viewSlots) {
				return fmt.Errorf("sched: policy %s picked queue index %d of %d", e.pol.Name(), d.QueueIndex, len(e.view.Queue))
			}
			ent := e.queue[e.viewSlots[d.QueueIndex]]
			if ent.dead {
				return fmt.Errorf("sched: policy %s picked queue index %d twice", e.pol.Name(), d.QueueIndex)
			}
			if err := e.admit(ent.job, ent.price, ent.track, d.Backfilled); err != nil {
				return err
			}
			ent.dead = true
			e.live--
		}
		e.compactQueue()
		e.restretch()
		e.sample()
	}
}

// headEnt is the first live queue entry (the policy-visible head).
func (e *engine) headEnt() *qent {
	for _, ent := range e.queue {
		if !ent.dead {
			return ent
		}
	}
	return nil
}

// compactQueue drops tombstones once they outnumber live entries, so
// removal stays O(1) amortized and headEnt's dead-prefix walk stays
// short without ever shifting live entries out of submission order.
func (e *engine) compactQueue() {
	if dead := len(e.queue) - e.live; dead > e.live && dead > 32 {
		kept := e.queue[:0]
		for _, ent := range e.queue {
			if !ent.dead {
				kept = append(kept, ent)
			}
		}
		e.queue = kept
	}
}
