package sched

import (
	"math"
	"reflect"
	"testing"

	"picmcio/internal/cluster"
	"picmcio/internal/xrand"
)

// TestNaiveIndexedEquivalence is the differential proof behind the
// indexed event loop: randomized Synth streams — varied tenant counts,
// offered loads, size-class mixes, both policies — replay through the
// indexed loop and the retained naive loop, and every Result must be
// byte-identical (reflect.DeepEqual over the full struct, floats
// included). The indexed loop's heap, tombstoned queue, admission-time
// prices, and PrefixPolicy veto are all on trial here: any divergence
// in event ordering, allocator lease sequence, restretch gating, or
// wait arithmetic shows up as a mismatch.
func TestNaiveIndexedEquivalence(t *testing.T) {
	m := cluster.Dardel()
	cases := []struct {
		tenants, users int
		load           float64
		classes        []SizeClass
		timelineEvery  float64
	}{
		{tenants: 2, users: 1, load: 0.7, classes: nil},
		{tenants: 5, users: 3, load: 1.4, classes: nil},
		{tenants: 3, users: 2, load: 1.0, classes: DefaultClasses()[:2]},
		{tenants: 4, users: 2, load: 1.2, classes: nil, timelineEvery: 24},
	}
	for ci, c := range cases {
		pr := NewPricer(m, 7, 6)
		s := Synth{Tenants: c.tenants, Users: c.users, Classes: c.classes, Seed: xrand.SeedAt(11, uint64(ci))}
		mean, err := SubmitMeanForLoad(pr, m, s, c.load, 64)
		if err != nil {
			t.Fatalf("case %d: calibrate: %v", ci, err)
		}
		s.SubmitMeanHours = mean
		s.SpanHours = 180 * mean / float64(c.tenants*c.users)
		stream, err := Synthesize(m, s)
		if err != nil {
			t.Fatalf("case %d: synthesize: %v", ci, err)
		}
		for _, pol := range []Policy{FCFS{}, EASY{}} {
			cfg := Config{Machine: m, Nodes: 64, Seed: 7, Pricer: pr, TimelineEvery: c.timelineEvery}
			indexed, err := Run(cfg, pol, stream)
			if err != nil {
				t.Fatalf("case %d %s: indexed: %v", ci, pol.Name(), err)
			}
			restore := ForceNaiveLoopForTesting()
			naive, err := Run(cfg, pol, stream)
			restore()
			if err != nil {
				t.Fatalf("case %d %s: naive: %v", ci, pol.Name(), err)
			}
			if !reflect.DeepEqual(indexed, naive) {
				t.Errorf("case %d (%d tenants, load %g) %s: indexed and naive loops diverged (%d jobs, %d timeline samples vs %d, %d)",
					ci, c.tenants, c.load, pol.Name(), len(indexed.Jobs), len(indexed.Timeline), len(naive.Jobs), len(naive.Timeline))
			}
			if len(indexed.Jobs) != len(stream) {
				t.Errorf("case %d %s: %d of %d jobs completed", ci, pol.Name(), len(indexed.Jobs), len(stream))
			}
		}
	}
}

// TestForceNaiveLoopRestores pins the hook contract: the restore
// function reinstates the previous loop choice, nesting included.
func TestForceNaiveLoopRestores(t *testing.T) {
	if forceNaiveLoop {
		t.Fatal("naive loop forced at test entry")
	}
	restore := ForceNaiveLoopForTesting()
	inner := ForceNaiveLoopForTesting()
	if !forceNaiveLoop {
		t.Fatal("hook did not force the naive loop")
	}
	inner()
	if !forceNaiveLoop {
		t.Fatal("nested restore cleared the outer force")
	}
	restore()
	if forceNaiveLoop {
		t.Fatal("restore did not clear the force")
	}
}

// TestEndHeapLazyInvalidation exercises the completion index around
// the restretch-epoch discipline directly: stale snapshots (epoch
// bumped after push) must be discarded on pop, a rebuild must re-key
// to the running set's current predictions, and min() must track the
// true earliest completion throughout.
func TestEndHeapLazyInvalidation(t *testing.T) {
	mk := func(touchH, remH, slowdown float64) *running {
		return &running{touchH: touchH, remH: remH, slowdown: slowdown}
	}
	a, b, c := mk(0, 10, 1), mk(0, 6, 1), mk(0, 8, 1)
	var h endHeap
	for _, rj := range []*running{a, b, c} {
		h.push(rj)
	}
	if got := h.min(); got != 6 {
		t.Fatalf("min = %g, want 6 (job b)", got)
	}
	// Retirement strands b's snapshot: bump its epoch and the heap must
	// skip it, surfacing c.
	b.epoch++
	if got := h.min(); got != 8 {
		t.Fatalf("min after retiring b = %g, want 8 (job c)", got)
	}
	// A restretch re-keys the survivors: a slows down 2x (endOf 20), c
	// speeds up (endOf 7.2). A lazy re-push would be wrong here — c's
	// stale key (8) overstates its true completion — which is exactly
	// why the engine rebuilds.
	a.touch(1)
	a.slowdown = 2
	a.epoch++
	c.touch(1)
	c.slowdown = 0.886
	c.epoch++
	h.rebuild([]*running{a, c})
	want := c.endOf()
	if want >= a.endOf() || math.Abs(want-7.2) > 0.01 {
		t.Fatalf("test setup broken: c.endOf = %g, a.endOf = %g", want, a.endOf())
	}
	if got := h.min(); got != want {
		t.Fatalf("min after rebuild = %g, want %g", got, want)
	}
	// Drain: retiring both leaves only stale snapshots, and min reports
	// an empty horizon.
	a.epoch++
	c.epoch++
	if got := h.min(); !math.IsInf(got, 1) {
		t.Fatalf("min of fully stale heap = %g, want +Inf", got)
	}
	if len(h.es) != 0 {
		t.Fatalf("stale snapshots survived draining: %d left", len(h.es))
	}
}

// TestTimelineCoalescing pins the satellite behaviour: the exact
// timeline (TimelineEvery == 0) never records two consecutive samples
// with the same busy count, and a downsampled run retains fewer
// samples while reporting a utilization close to the exact one.
func TestTimelineCoalescing(t *testing.T) {
	m := cluster.Dardel()
	pr := NewPricer(m, 3, 6)
	s := Synth{Tenants: 3, Users: 2, Seed: 5}
	mean, err := SubmitMeanForLoad(pr, m, s, 1.1, 64)
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitMeanHours = mean
	s.SpanHours = 150 * mean / 6
	stream, err := Synthesize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Machine: m, Nodes: 64, Seed: 3, Pricer: pr}
	exact, err := Run(cfg, FCFS{}, stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(exact.Timeline); i++ {
		if exact.Timeline[i].Busy == exact.Timeline[i-1].Busy {
			t.Fatalf("timeline samples %d and %d share busy=%d: equal-busy steps must coalesce",
				i-1, i, exact.Timeline[i].Busy)
		}
		if exact.Timeline[i].Hours <= exact.Timeline[i-1].Hours {
			t.Fatalf("timeline not strictly increasing at %d", i)
		}
	}
	cfg.TimelineEvery = 48
	coarse, err := Run(cfg, FCFS{}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Timeline) >= len(exact.Timeline) {
		t.Fatalf("TimelineEvery=48 kept %d samples, exact kept %d: downsampling did nothing",
			len(coarse.Timeline), len(exact.Timeline))
	}
	// The downsampled step function is an approximation; scheduling
	// outcomes must be untouched and utilization must stay in the same
	// ballpark.
	if !reflect.DeepEqual(exact.Jobs, coarse.Jobs) {
		t.Fatal("TimelineEvery changed job outcomes")
	}
	ue, uc := exact.Utilization(), coarse.Utilization()
	if math.Abs(ue-uc) > 0.15*ue {
		t.Fatalf("downsampled utilization %g strays too far from exact %g", uc, ue)
	}
}

// TestPrewarmMatchesSerialPricing pins Prewarm's contract: the cache a
// parallel Prewarm fills is byte-identical to the one cold serial
// Price calls build — same shapes, same prices, and no residual
// simulations triggered when the stream then prices on demand.
func TestPrewarmMatchesSerialPricing(t *testing.T) {
	m := cluster.Dardel()
	s := Synth{Tenants: 4, Users: 2, SubmitMeanHours: 8, SpanHours: 400, Seed: 9}
	stream, err := Synthesize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewPricer(m, 5, 6)
	warm := NewPricer(m, 5, 6)
	if err := warm.Prewarm(stream, 4); err != nil {
		t.Fatal(err)
	}
	shapes := warm.Shapes()
	if shapes == 0 {
		t.Fatal("Prewarm priced nothing")
	}
	for _, j := range stream {
		cp, err := cold.Price(j.Spec)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := warm.Price(j.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if cp != wp {
			t.Fatalf("job %d: prewarmed price %+v != serial price %+v", j.ID, wp, cp)
		}
	}
	if warm.Shapes() != shapes {
		t.Fatalf("pricing the prewarmed stream simulated %d extra shapes", warm.Shapes()-shapes)
	}
	if cold.Shapes() != shapes {
		t.Fatalf("serial pricing saw %d shapes, Prewarm saw %d", cold.Shapes(), shapes)
	}
	// Idempotence: a second Prewarm on a warmed cache is free.
	if err := warm.Prewarm(stream, 4); err != nil {
		t.Fatal(err)
	}
	if warm.Shapes() != shapes {
		t.Fatal("re-Prewarm grew the cache")
	}
}
