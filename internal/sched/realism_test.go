package sched

import (
	"math"
	"reflect"
	"testing"

	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/xrand"
)

// realismHarness prices one size class on a machine and returns the
// pieces the deterministic kill tests aim with: the stream-ready spec,
// the full-job service hours, and the per-epoch checkpoint spacing.
func realismHarness(t *testing.T, m cluster.Machine, class SizeClass, nodes int) (pr *Pricer, svcH, perEpochH float64) {
	t.Helper()
	pr = NewPricer(m, 7, 6)
	spec := class.Spec(m)
	spec.Nodes = nodes
	p, err := pr.Price(spec)
	if err != nil {
		t.Fatalf("price: %v", err)
	}
	epochs := class.Workload.Shape().Epochs
	if epochs <= 0 {
		t.Fatalf("harness class has no epochs")
	}
	return pr, p.ServiceHours, p.ServiceHours / float64(epochs)
}

func classJob(id int, tenant string, m cluster.Machine, class SizeClass, nodes int, submitH float64) Job {
	spec := class.Spec(m)
	spec.Nodes = nodes
	return Job{ID: id, Tenant: tenant, Class: class.Name, Nodes: nodes, SubmitHours: submitH, Spec: spec}
}

func near(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestFailureDuringFinalEpoch kills a lone job inside its final epoch:
// with NVMe-surviving staged state the continuation keeps both completed
// epochs, redoes only the final one (plus the restart overhead), and
// cannot restart until the failed node's repair window ends — the
// partition is exactly the job's width.
func TestFailureDuringFinalEpoch(t *testing.T) {
	m := cluster.Dardel()
	class := DefaultClasses()[0] // narrow: 2 nodes, 3 epochs
	pr, svcH, peH := realismHarness(t, m, class, 2)
	tKill := 2.5 * peH
	const repairH, overheadH = 5.0, 0.5
	cfg := Config{
		Machine: m, Nodes: 2, Seed: 7, Pricer: pr,
		Faults: FaultConfig{
			ArrivalHours:         []float64{tKill},
			RepairHours:          repairH,
			RestartOverheadHours: overheadH,
			Survival:             fault.SurviveNVMe,
		},
	}
	res, err := Run(cfg, FCFS{}, []Job{classJob(1, "a", m, class, 2, 0)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	j := res.Jobs[0]
	if j.FailureKills != 1 || j.Segments != 2 || j.Preemptions != 0 {
		t.Fatalf("job absorbed %d failure kills in %d segments (%d preemptions), want 1 kill, 2 segments",
			j.FailureKills, j.Segments, j.Preemptions)
	}
	tol := 1e-6 * svcH
	// The kill lands half an epoch past the second checkpoint: 2 nodes ×
	// 0.5 epoch of service is redone.
	if wantLost := 2 * 0.5 * peH; !near(j.LostNodeHours, wantLost, tol) {
		t.Fatalf("lost %.6f node-hours, want %.6f (per-epoch %.4f)", j.LostNodeHours, wantLost, peH)
	}
	// Restart waits out the 2-wide partition's 1-node repair, then runs
	// overhead + the one lost epoch.
	if wantEnd := tKill + repairH + overheadH + peH; !near(j.EndHours, wantEnd, tol) {
		t.Fatalf("job ended at %.6f, want %.6f", j.EndHours, wantEnd)
	}
	if res.FailureKills != 1 || res.DownNodeHours != repairH {
		t.Fatalf("result counted %d kills, %.2f down node-hours, want 1, %.2f",
			res.FailureKills, res.DownNodeHours, repairH)
	}
	if res.RequeuedNodeHours <= 0 || res.LostNodeHours != j.LostNodeHours {
		t.Fatalf("requeued %.4f / lost %.4f node-hours inconsistent with the job's %.4f",
			res.RequeuedNodeHours, res.LostNodeHours, j.LostNodeHours)
	}
}

// TestPreemptZeroDrainedEpochs preempts a job before its first
// checkpoint: the continuation restarts from scratch (full service plus
// the checkpoint overhead) and every executed hour counts as lost.
func TestPreemptZeroDrainedEpochs(t *testing.T) {
	m := cluster.Dardel()
	class := DefaultClasses()[1] // medium: 4 nodes, 3 epochs
	pr, svcH, peH := realismHarness(t, m, class, 4)
	const tB, waitW, ckptH = 0.5, 1.0, 0.25
	if tB+waitW >= peH {
		t.Fatalf("trigger %.2f not inside the first epoch (%.2f)", tB+waitW, peH)
	}
	cfg := Config{
		Machine: m, Nodes: 4, Seed: 7, Pricer: pr,
		Preempt: PreemptConfig{MaxHeadWaitHours: waitW, CheckpointHours: ckptH},
	}
	stream := []Job{
		classJob(1, "hog", m, class, 4, 0),
		classJob(2, "newbie", m, class, 4, tB),
	}
	res, err := Run(cfg, FCFS{}, stream)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	hog, newbie := res.Jobs[0], res.Jobs[1]
	if hog.Preemptions != 1 || hog.Segments != 2 {
		t.Fatalf("hog absorbed %d preemptions in %d segments, want 1 in 2", hog.Preemptions, hog.Segments)
	}
	tol := 1e-6 * svcH
	// The preemption wake-up fires exactly when the head's wait crosses
	// the threshold, and the hog had banked no checkpoint.
	if wantStart := tB + waitW; !near(newbie.StartHours, wantStart, tol) {
		t.Fatalf("preempting job started at %.6f, want %.6f", newbie.StartHours, wantStart)
	}
	if wantLost := 4 * (tB + waitW); !near(hog.LostNodeHours, wantLost, tol) {
		t.Fatalf("hog lost %.6f node-hours, want %.6f (restart from scratch)", hog.LostNodeHours, wantLost)
	}
	// Continuation = checkpoint overhead + the full three epochs again,
	// starting after the preemptor's beneficiary finishes.
	if wantEnd := newbie.EndHours + ckptH + svcH; !near(hog.EndHours, wantEnd, tol) {
		t.Fatalf("hog ended at %.6f, want %.6f", hog.EndHours, wantEnd)
	}
	if res.Preemptions != 1 || res.FailureKills != 0 {
		t.Fatalf("result counted %d preemptions, %d failure kills, want 1, 0", res.Preemptions, res.FailureKills)
	}
}

// TestBackToBackKillsOfContinuation kills the same job twice — the
// second failure lands just after the continuation restarts, before any
// new checkpoint — so the job runs three segments and never banks an
// epoch until the third try.
func TestBackToBackKillsOfContinuation(t *testing.T) {
	m := cluster.Dardel()
	class := DefaultClasses()[0]
	pr, svcH, peH := realismHarness(t, m, class, 2)
	const repairH = 0.001
	t1 := 0.5 * peH
	t2 := t1 + repairH + 0.01 // shortly after the restart at t1+repairH
	cfg := Config{
		Machine: m, Nodes: 2, Seed: 7, Pricer: pr,
		Faults: FaultConfig{
			ArrivalHours: []float64{t1, t2},
			RepairHours:  repairH,
			Survival:     fault.SurviveNVMe,
		},
	}
	res, err := Run(cfg, FCFS{}, []Job{classJob(1, "a", m, class, 2, 0)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	j := res.Jobs[0]
	if j.FailureKills != 2 || j.Segments != 3 {
		t.Fatalf("job absorbed %d kills in %d segments, want 2 in 3", j.FailureKills, j.Segments)
	}
	tol := 1e-6 * svcH
	// Neither segment reached a checkpoint: the final segment is the
	// whole job again, started at the second repair's end.
	if wantEnd := t2 + repairH + svcH; !near(j.EndHours, wantEnd, tol) {
		t.Fatalf("job ended at %.6f, want %.6f", j.EndHours, wantEnd)
	}
	if wantLost := 2 * (t1 + (t2 - (t1 + repairH))); !near(j.LostNodeHours, wantLost, tol) {
		t.Fatalf("lost %.6f node-hours, want %.6f", j.LostNodeHours, wantLost)
	}
}

// TestIdleFailureShrinksPool lands a failure on an empty partition: no
// job dies, but the node is out for the repair window and a
// full-partition job submitted meanwhile cannot start until it returns.
func TestIdleFailureShrinksPool(t *testing.T) {
	m := cluster.Dardel()
	class := DefaultClasses()[1]
	pr, svcH, _ := realismHarness(t, m, class, 4)
	const tFail, repairH, tSubmit = 1.0, 3.0, 2.0
	cfg := Config{
		Machine: m, Nodes: 4, Seed: 7, Pricer: pr,
		Faults: FaultConfig{ArrivalHours: []float64{tFail}, RepairHours: repairH},
	}
	res, err := Run(cfg, FCFS{}, []Job{classJob(1, "a", m, class, 4, tSubmit)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.IdleFailures != 1 || res.FailureKills != 0 {
		t.Fatalf("counted %d idle failures, %d kills, want 1, 0", res.IdleFailures, res.FailureKills)
	}
	j := res.Jobs[0]
	tol := 1e-6 * svcH
	if wantStart := tFail + repairH; !near(j.StartHours, wantStart, tol) {
		t.Fatalf("job started at %.6f, want %.6f (after the repair window)", j.StartHours, wantStart)
	}
	if j.Segments != 1 || j.FailureKills != 0 {
		t.Fatalf("job ran %d segments with %d kills, want a clean single segment", j.Segments, j.FailureKills)
	}
}

// TestFairSharePickOrdersByUsage drives the policy directly: with equal
// waits, the job of the least-served tenant starts first regardless of
// queue position.
func TestFairSharePickOrdersByUsage(t *testing.T) {
	v := view(4, []Pending{pend(1, 4, 1, 5), pend(2, 4, 1, 5)}, nil)
	v.Queue[0].Job.Tenant = "hog"
	v.Queue[1].Job.Tenant = "light"
	v.Usage = map[string]float64{"hog": 100, "light": 1}
	ds := FairShare{}.Pick(v)
	if len(ds) != 1 || v.Queue[ds[0].QueueIndex].Job.Tenant != "light" {
		t.Fatalf("FairShare picked %+v, want only the light tenant's job", ds)
	}
	if _, err := Policies("fair-share"); err != nil {
		t.Fatalf("Policies(fair-share): %v", err)
	}
	if _, err := Policies("fair"); err != nil {
		t.Fatalf("Policies(fair): %v", err)
	}
}

// TestNaiveIndexedEquivalenceRealism extends the differential proof to
// the realism layer: randomized skewed Synth streams with fair-share,
// preemption, and in-queue node failures all enabled replay through
// both loops, and the full Result — kill counters, usage-fairness
// integrals, repair bookkeeping included — must stay byte-identical.
func TestNaiveIndexedEquivalenceRealism(t *testing.T) {
	m := cluster.Dardel()
	cases := []struct {
		tenants, users int
		load           float64
		weights        []float64
		survival       fault.Survivability
		mtbf           float64
	}{
		{tenants: 4, users: 2, load: 1.2, weights: []float64{6, 2, 1, 1}, survival: fault.SurviveNVMe, mtbf: 400},
		{tenants: 3, users: 2, load: 1.0, weights: []float64{4, 1, 1}, survival: fault.SurviveNone, mtbf: 250},
	}
	for ci, c := range cases {
		pr := NewPricer(m, 7, 6)
		pr.EstimateError = 0.3
		s := Synth{Tenants: c.tenants, Users: c.users, Seed: xrand.SeedAt(23, uint64(ci)), TenantWeights: c.weights}
		mean, err := SubmitMeanForLoad(pr, m, s, c.load, 64)
		if err != nil {
			t.Fatalf("case %d: calibrate: %v", ci, err)
		}
		s.SubmitMeanHours = mean
		s.SpanHours = 150 * mean / float64(c.tenants*c.users)
		stream, err := Synthesize(m, s)
		if err != nil {
			t.Fatalf("case %d: synthesize: %v", ci, err)
		}
		for _, pol := range []Policy{FCFS{}, EASY{}, FairShare{}} {
			cfg := Config{
				Machine: m, Nodes: 64, Seed: 7, Pricer: pr,
				Preempt: PreemptConfig{MaxHeadWaitHours: 8, CheckpointHours: 0.5},
				Faults: FaultConfig{
					MTBFNodeHours:        c.mtbf,
					RepairHours:          4,
					RestartOverheadHours: 0.5,
					Survival:             c.survival,
				},
			}
			indexed, err := Run(cfg, pol, stream)
			if err != nil {
				t.Fatalf("case %d %s: indexed: %v", ci, pol.Name(), err)
			}
			restore := ForceNaiveLoopForTesting()
			naive, err := Run(cfg, pol, stream)
			restore()
			if err != nil {
				t.Fatalf("case %d %s: naive: %v", ci, pol.Name(), err)
			}
			if !reflect.DeepEqual(indexed, naive) {
				t.Errorf("case %d %s: loops diverged with realism on (%d vs %d jobs, %d vs %d kills, usage jain %v vs %v)",
					ci, pol.Name(), len(indexed.Jobs), len(naive.Jobs),
					indexed.FailureKills, naive.FailureKills, indexed.UsageJain, naive.UsageJain)
			}
			if indexed.FailureKills == 0 && indexed.IdleFailures == 0 {
				t.Errorf("case %d %s: no failures landed — the case exercises nothing", ci, pol.Name())
			}
		}
	}
}

// TestRealismOffIsByteIdenticalToBaseline pins the refactor's
// no-feature path: a Config without preemption or failures must produce
// exactly the pre-realism result shape — one segment per job, no kill
// counters, wait arithmetic unchanged (covered byte-for-byte by the
// golden figsched test, spot-checked here).
func TestRealismOffIsByteIdenticalToBaseline(t *testing.T) {
	m := cluster.Dardel()
	pr := NewPricer(m, 7, 6)
	s := Synth{Tenants: 3, Users: 2, Seed: 5}
	mean, err := SubmitMeanForLoad(pr, m, s, 1.0, 32)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	s.SubmitMeanHours = mean
	s.SpanHours = 60 * mean / 6
	stream, err := Synthesize(m, s)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	res, err := Run(Config{Machine: m, Nodes: 32, Seed: 7, Pricer: pr}, EASY{}, stream)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, j := range res.Jobs {
		if j.Segments != 1 || j.Preemptions != 0 || j.FailureKills != 0 || j.LostNodeHours != 0 {
			t.Fatalf("clean run produced a multi-segment job: %+v", j)
		}
		if j.WaitHours != j.StartHours-j.SubmitHours {
			t.Fatalf("job %d wait %v != start-submit %v", j.ID, j.WaitHours, j.StartHours-j.SubmitHours)
		}
	}
	if res.Preemptions != 0 || res.FailureKills != 0 || res.DownNodeHours != 0 || res.LeaseOps != 2*len(stream) {
		t.Fatalf("clean run's failure accounting is not zero: %+v", res)
	}
	if res.UsageJain <= 0 || res.UsageJain > 1 {
		t.Fatalf("usage Jain %v outside (0, 1]", res.UsageJain)
	}
}
