package sched

import "math"

// endHeap is the indexed event loop's completion index: a binary
// min-heap of predicted completion times with lazy invalidation.
// Entries are snapshots (endH, epoch) of a running job's stretch
// state; a snapshot whose epoch no longer matches its job's is stale
// and silently discarded when it surfaces at the top.
//
// Invalidation discipline: a job's epoch bumps on retirement (its
// snapshot strands and is discarded on a later pop) and on every
// restretch that moved the contention factor. A moved factor re-keys
// the whole running set, and the engine rebuilds the heap in one
// O(run) heapify rather than re-pushing per job — stale keys are not
// one-sided bounds (contention both rises at starts and falls at
// completions, so a stale endH can sit on either side of the true
// one), which rules out the pop-recompute-repush shortcut, and a
// heapify costs less than run heap pushes anyway. Between rebuilds
// slowdowns are constant, so every live snapshot is exact and min()
// is the true earliest completion.
//
// The rebuild also bounds memory for free: stale entries never
// accumulate past the retirements since the last restretch.
type endHeap struct {
	es []endEntry
}

type endEntry struct {
	endH  float64
	rj    *running
	epoch uint64
}

// push snapshots rj's current predicted completion.
func (h *endHeap) push(rj *running) {
	h.es = append(h.es, endEntry{endH: rj.endOf(), rj: rj, epoch: rj.epoch})
	h.up(len(h.es) - 1)
}

// min discards stale snapshots from the top and returns the earliest
// live predicted completion, +Inf when nothing is running.
func (h *endHeap) min() float64 {
	for len(h.es) > 0 {
		if top := h.es[0]; top.epoch == top.rj.epoch {
			return top.endH
		}
		h.popTop()
	}
	return math.Inf(1)
}

// rebuild re-keys the heap to exactly the running set's current
// snapshots in one heapify.
func (h *endHeap) rebuild(run []*running) {
	h.es = h.es[:0]
	for _, rj := range run {
		h.es = append(h.es, endEntry{endH: rj.endOf(), rj: rj, epoch: rj.epoch})
	}
	for i := len(h.es)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *endHeap) popTop() {
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es = h.es[:n]
	if n > 0 {
		h.down(0)
	}
}

func (h *endHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.es[p].endH <= h.es[i].endH {
			break
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

func (h *endHeap) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.es[l].endH < h.es[least].endH {
			least = l
		}
		if r < n && h.es[r].endH < h.es[least].endH {
			least = r
		}
		if least == i {
			return
		}
		h.es[i], h.es[least] = h.es[least], h.es[i]
		i = least
	}
}
