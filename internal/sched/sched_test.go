package sched

import (
	"math"
	"reflect"
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/units"
)

// view builds a QueueView by hand for direct policy tests.
func view(free int, queue []Pending, running []Active) QueueView {
	return QueueView{NowHours: 10, Free: free, Queue: queue, Running: running}
}

func pend(id, nodes int, waitH, svcH float64) Pending {
	return Pending{Job: &Job{ID: id, Nodes: nodes}, WaitHours: waitH, ServiceHours: svcH}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	// Queue: 4-node head fits, 8-node second blocks on 6 free, 2-node
	// third would fit but FCFS must not jump the blocker.
	v := view(10,
		[]Pending{pend(1, 4, 1, 5), pend(2, 8, 1, 5), pend(3, 2, 1, 5)},
		nil)
	ds := FCFS{}.Pick(v)
	if len(ds) != 1 || ds[0].QueueIndex != 0 {
		t.Fatalf("FCFS picked %+v, want only queue index 0", ds)
	}
}

func TestEASYBackfillsBehindReservation(t *testing.T) {
	// 6 free nodes; an 8-node job is blocked until the running 4-node
	// job releases at t=14 (shadow). A 2-node backfill that finishes by
	// then (service 3h < 4h) must start; a 2-node job that would overrun
	// the shadow may still start only on the spare nodes.
	v := view(6,
		[]Pending{
			pend(1, 8, 10, 5), // blocked head (aged hardest: longest wait)
			pend(2, 2, 1, 3),  // finishes before shadow
			pend(3, 2, 1, 50), // overruns shadow: needs spare nodes
			pend(4, 2, 1, 50), // overruns shadow: no spare left after 3
		},
		[]Active{{Nodes: 4, EndHours: 14}})
	ds := EASY{}.Pick(v)
	// Shadow: at t=14 avail = 6+4 = 10 ≥ 8, spare = 2. Job 2 backfills
	// (ends 13 ≤ 14); job 3 takes the 2 spare; job 4 must not start.
	got := map[int]bool{}
	for _, d := range ds {
		if !d.Backfilled {
			t.Fatalf("decision %+v not marked backfilled behind a reservation", d)
		}
		got[v.Queue[d.QueueIndex].Job.ID] = true
	}
	if !got[2] || !got[3] || got[4] || got[1] {
		t.Fatalf("EASY backfilled job set %v, want {2,3}", got)
	}
}

func TestEASYAgingPrioritizesOldWideJobs(t *testing.T) {
	// A wide job that has waited long outranks a fresh narrow one:
	// score(wide) = 20/2 - log2(16) = 6 > score(narrow) = 0/2 - 1 = -1.
	v := view(16,
		[]Pending{pend(1, 2, 0, 5), pend(2, 16, 20, 5)},
		nil)
	ds := EASY{}.Pick(v)
	if len(ds) != 1 || v.Queue[ds[0].QueueIndex].Job.ID != 2 {
		t.Fatalf("EASY started %+v, want only the aged wide job (id 2)", ds)
	}
}

func TestPoliciesResolver(t *testing.T) {
	for _, name := range []string{"fcfs", "easy-backfill", "easy", "fair-share", "fair"} {
		if _, err := Policies(name); err != nil {
			t.Fatalf("Policies(%q): %v", name, err)
		}
	}
	if _, err := Policies("lottery"); err == nil {
		t.Fatal("Policies(lottery) = nil error, want failure")
	}
}

func TestPFSBandwidthPerStorage(t *testing.T) {
	for _, m := range cluster.Machines() {
		if bw := PFSBandwidth(m); bw <= 0 {
			t.Errorf("%s: PFSBandwidth = %v, want > 0", m.Name, bw)
		}
	}
}

func TestPricerMemoizesShapes(t *testing.T) {
	m := cluster.Discoverer()
	pr := NewPricer(m, 42, 6)
	c := DefaultClasses()[0]
	p1, err := pr.Price(c.Spec(m))
	if err != nil {
		t.Fatal(err)
	}
	// Second job of the same shape (different name) must hit the cache.
	s2 := c.Spec(m)
	s2.Name = "other-job"
	p2, err := pr.Price(s2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Shapes() != 1 {
		t.Fatalf("Shapes() = %d after two same-shape prices, want 1", pr.Shapes())
	}
	if p1 != p2 {
		t.Fatalf("same shape priced differently: %+v vs %+v", p1, p2)
	}
	if p1.ServiceHours <= 0 || p1.DrainBps <= 0 {
		t.Fatalf("degenerate price %+v", p1)
	}
	if p1.IOFrac < 0 || p1.IOFrac > 1 {
		t.Fatalf("IOFrac %v outside [0,1]", p1.IOFrac)
	}
}

func TestPricerRejectsClassifyFunc(t *testing.T) {
	m := cluster.Discoverer()
	pr := NewPricer(m, 1, 6)
	s := DefaultClasses()[0].Spec(m)
	s.Burst.Classify = burst.DefaultClassify
	if _, err := pr.Price(s); err == nil {
		t.Fatal("spec with Classify func priced without error (cache key cannot cover it)")
	}
}

func testStream(t *testing.T, m cluster.Machine, seed uint64) []Job {
	t.Helper()
	js, err := Synthesize(m, Synth{
		Tenants:         8,
		Users:           3,
		SubmitMeanHours: 6,
		SpanHours:       24,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(js) < 20 {
		t.Fatalf("synthesized only %d jobs; test wants a real queue", len(js))
	}
	return js
}

func TestRunCompletesEveryJob(t *testing.T) {
	m := cluster.Discoverer()
	cfg := Config{Machine: m, Nodes: 24, Seed: 7}
	stream := testStream(t, m, 7)
	res, err := Run(cfg, FCFS{}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(stream) {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(stream))
	}
	if res.LeaseOps != 2*len(stream) {
		t.Fatalf("LeaseOps = %d, want %d (one Allocate and one Free per job)", res.LeaseOps, 2*len(stream))
	}
	for i, j := range res.Jobs {
		if j.ID != stream[i].ID {
			t.Fatalf("results not in submission-ID order at %d", i)
		}
		if j.StartHours < j.SubmitHours {
			t.Fatalf("job %d started before submission", j.ID)
		}
		if j.EndHours <= j.StartHours {
			t.Fatalf("job %d has non-positive runtime", j.ID)
		}
		if j.StretchX < 1-1e-9 {
			t.Fatalf("job %d finished faster than its isolated service time (stretch %v)", j.ID, j.StretchX)
		}
		if math.Abs(j.WaitHours-(j.StartHours-j.SubmitHours)) > 1e-9 {
			t.Fatalf("job %d wait inconsistent", j.ID)
		}
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v outside (0,1]", u)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if f := res.JainTenants(); f <= 0 || f > 1+1e-9 {
		t.Fatalf("Jain fairness %v outside (0,1]", f)
	}
	if got := len(res.TenantStats()); got != 8 {
		t.Fatalf("TenantStats has %d tenants, want 8", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	m := cluster.Dardel()
	cfg := Config{Machine: m, Nodes: 24, Seed: 11}
	stream := testStream(t, m, 11)
	for _, pol := range []Policy{FCFS{}, EASY{}} {
		a, err := Run(cfg, pol, stream)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg, pol, stream)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical runs diverged", pol.Name())
		}
	}
}

func TestEASYBeatsFCFSOnMeanWait(t *testing.T) {
	// Under a queue with 16-node wide jobs mixed into narrow traffic,
	// EASY backfill must cut mean wait without losing utilization —
	// the property the figsched artifact reports at campaign scale.
	m := cluster.Discoverer()
	cfg := Config{Machine: m, Nodes: 24, Seed: 3}
	shared := NewPricer(m, cfg.Seed, 6)
	cfg.Pricer = shared
	s := Synth{Tenants: 8, Users: 4, SpanHours: 400, Seed: 3}
	mean, err := SubmitMeanForLoad(shared, m, s, 1.2, cfg.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitMeanHours = mean
	js, err := Synthesize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) < 50 {
		t.Fatalf("only %d jobs at load 1.2 over %vh", len(js), s.SpanHours)
	}
	fcfs, err := Run(cfg, FCFS{}, js)
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Run(cfg, EASY{}, js)
	if err != nil {
		t.Fatal(err)
	}
	if easy.Backfills == 0 {
		t.Fatal("EASY made no backfills on a congested queue")
	}
	if easy.MeanWaitHours() >= fcfs.MeanWaitHours() {
		t.Fatalf("EASY mean wait %.2fh not better than FCFS %.2fh",
			easy.MeanWaitHours(), fcfs.MeanWaitHours())
	}
	if easy.Utilization() < fcfs.Utilization()-1e-9 {
		t.Fatalf("EASY utilization %.3f below FCFS %.3f", easy.Utilization(), fcfs.Utilization())
	}
}

func TestRunValidation(t *testing.T) {
	m := cluster.Discoverer()
	cfg := Config{Machine: m, Nodes: 8, Seed: 1}
	c := DefaultClasses()[0]
	mk := func(id, nodes int, at float64) Job {
		s := c.Spec(m)
		s.Nodes = nodes
		return Job{ID: id, Tenant: "t", Class: c.Name, Nodes: nodes, SubmitHours: at, Spec: s}
	}
	if _, err := Run(cfg, nil, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := Run(cfg, FCFS{}, []Job{mk(1, 2, 0), mk(1, 2, 1)}); err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
	if _, err := Run(cfg, FCFS{}, []Job{mk(1, 9, 0)}); err == nil {
		t.Fatal("job wider than partition accepted")
	}
	bad := mk(1, 2, 0)
	bad.Spec.Nodes = 4
	if _, err := Run(cfg, FCFS{}, []Job{bad}); err == nil {
		t.Fatal("spec/job node mismatch accepted")
	}
}

func TestJobResultSlowdown(t *testing.T) {
	r := JobResult{StartHours: 10, EndHours: 16, WaitHours: 2, ServiceHours: 4}
	if got, want := r.Slowdown(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Slowdown = %v, want %v", got, want)
	}
	zero := JobResult{}
	if zero.Slowdown() != 1 {
		t.Fatalf("zero-service Slowdown = %v, want 1", zero.Slowdown())
	}
}

func TestWaitQuantileAndTimeline(t *testing.T) {
	r := &Result{Nodes: 10, Makespan: 10,
		Jobs: []JobResult{
			{WaitHours: 0}, {WaitHours: 1}, {WaitHours: 2}, {WaitHours: 3}, {WaitHours: 40},
		},
		Timeline: []UtilSample{{Hours: 0, Busy: 10}, {Hours: 5, Busy: 0}},
	}
	if got := r.WaitQuantile(0.5); got != 2 {
		t.Fatalf("median wait %v, want 2", got)
	}
	if got := r.WaitQuantile(1); got != 40 {
		t.Fatalf("max wait %v, want 40", got)
	}
	if got := r.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization %v, want 0.5", got)
	}
}

func TestDefaultClassesWellFormed(t *testing.T) {
	m := cluster.Vega()
	for _, c := range DefaultClasses() {
		if c.Weight <= 0 || c.Nodes <= 0 {
			t.Fatalf("class %q degenerate: %+v", c.Name, c)
		}
		s := c.Spec(m)
		if s.Nodes != c.Nodes || s.Workload.Shape().BytesPerNode < 64*units.MiB {
			t.Fatalf("class %q spec malformed: %+v", c.Name, s)
		}
		if c.Direct && s.Burst.CapacityBytes != 0 {
			t.Fatalf("direct class %q still staging", c.Name)
		}
		if !c.Direct && s.Burst.CapacityBytes == 0 {
			t.Fatalf("staged class %q lost its burst preset", c.Name)
		}
	}
}

// TestPricerEstimateError: the padding multiplier stamps EstimateHours
// on both the first price and cache hits, without disturbing the cached
// ground truth.
func TestPricerEstimateError(t *testing.T) {
	m := cluster.Discoverer()
	pr := NewPricer(m, 42, 6)
	spec := DefaultClasses()[0].Spec(m)
	p0, err := pr.Price(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p0.EstimateHours != p0.ServiceHours {
		t.Fatalf("oracle default: estimate %v != service %v", p0.EstimateHours, p0.ServiceHours)
	}
	pr.EstimateError = 0.5
	p1, err := pr.Price(spec) // cache hit: no re-simulation
	if err != nil {
		t.Fatal(err)
	}
	if pr.Shapes() != 1 {
		t.Fatalf("Shapes() = %d, want the cache hit", pr.Shapes())
	}
	if want := p0.ServiceHours * 1.5; math.Abs(p1.EstimateHours-want) > 1e-12 {
		t.Fatalf("padded estimate %v, want %v", p1.EstimateHours, want)
	}
	if p1.ServiceHours != p0.ServiceHours {
		t.Fatalf("padding disturbed ground truth: %v vs %v", p1.ServiceHours, p0.ServiceHours)
	}
}

// TestEstimateErrorShrinksBackfillAdvantage: backfill plans against the
// padded estimates, so inflating walltime requests must cost backfill
// opportunities and eat into EASY's mean-wait advantage over FCFS — the
// classic result that backfill quality degrades with estimate quality.
func TestEstimateErrorShrinksBackfillAdvantage(t *testing.T) {
	m := cluster.Discoverer()
	cfg := Config{Machine: m, Nodes: 32, Seed: 1}
	shared := NewPricer(m, cfg.Seed, 6)
	cfg.Pricer = shared
	s := Synth{Tenants: 8, Users: 4, SpanHours: 400, Seed: 1}
	mean, err := SubmitMeanForLoad(shared, m, s, 0.9, cfg.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitMeanHours = mean
	js, err := Synthesize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := Run(cfg, FCFS{}, js)
	if err != nil {
		t.Fatal(err)
	}
	easyOracle, err := Run(cfg, EASY{}, js)
	if err != nil {
		t.Fatal(err)
	}
	shared.EstimateError = 3.0 // 4× walltime padding, the cache is reused
	easyPadded, err := Run(cfg, EASY{}, js)
	if err != nil {
		t.Fatal(err)
	}
	if easyPadded.Backfills >= easyOracle.Backfills {
		t.Errorf("padding grew backfills: %d with 4× estimates vs %d with the oracle",
			easyPadded.Backfills, easyOracle.Backfills)
	}
	advOracle := fcfs.MeanWaitHours() - easyOracle.MeanWaitHours()
	advPadded := fcfs.MeanWaitHours() - easyPadded.MeanWaitHours()
	if advOracle <= 0 {
		t.Fatalf("oracle EASY shows no advantage to shrink: %v", advOracle)
	}
	if advPadded >= advOracle {
		t.Errorf("EASY advantage grew under padded estimates: %.3fh vs %.3fh oracle",
			advPadded, advOracle)
	}
	// Padded estimates must not change any job's true service time.
	if easyPadded.Utilization() <= 0 {
		t.Errorf("padded run degenerate: utilization %v", easyPadded.Utilization())
	}
}
