package sched

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
)

// Price is one job shape's scheduling-relevant cost summary, measured by
// running the shape through the full co-schedule machinery on an
// otherwise idle machine.
type Price struct {
	// ServiceHours is the isolated durable-completion time on the
	// campaign clock: sim seconds scaled by EpochHours per compute phase.
	ServiceHours float64
	// DrainBps is the job's PFS write-back demand in simulation
	// bytes/second (drain bandwidth for staged jobs, client bandwidth for
	// direct writers) — the numerator of the contention stretch model.
	DrainBps float64
	// IOFrac is the fraction of the service time attributable to I/O
	// rather than compute; only this fraction stretches under contention.
	IOFrac float64
}

// Pricer prices job shapes via jobs.Run and memoizes by shape: a queue
// of thousands of jobs drawn from a handful of size classes costs a
// handful of simulations, not thousands. The cache key covers every
// spec field that changes the simulation, so two jobs price identically
// exactly when their runs would be identical.
type Pricer struct {
	m          cluster.Machine
	seed       uint64
	epochHours float64
	cache      map[shapeKey]Price
}

// shapeKey is the comparable projection of a jobs.Spec (the Classify
// func is deliberately excluded: stream specs must leave it nil).
type shapeKey struct {
	nodes       int
	wl          jobs.Workload
	burst       burstKey
	stripeCount int
	stripeSize  int64
}

type burstKey struct {
	capacity  int64
	rate      float64
	perOp     float64
	drainRate float64
	policy    burst.Policy
	highWater float64
	lowWater  float64
	qos       burst.QoS
}

func keyOf(s jobs.Spec) shapeKey {
	return shapeKey{
		nodes: s.Nodes,
		wl:    s.Workload,
		burst: burstKey{
			capacity:  s.Burst.CapacityBytes,
			rate:      s.Burst.Rate,
			perOp:     float64(s.Burst.PerOp),
			drainRate: s.Burst.DrainRate,
			policy:    s.Burst.Policy,
			highWater: s.Burst.HighWater,
			lowWater:  s.Burst.LowWater,
			qos:       s.Burst.QoS,
		},
		stripeCount: s.StripeCount,
		stripeSize:  s.StripeSize,
	}
}

// NewPricer builds a pricer for machine m. epochHours anchors the
// campaign clock (one compute phase = one epoch = epochHours production
// hours, the convention the failure campaigns use).
func NewPricer(m cluster.Machine, seed uint64, epochHours float64) *Pricer {
	if epochHours <= 0 {
		epochHours = 6
	}
	return &Pricer{m: m, seed: seed, epochHours: epochHours, cache: map[shapeKey]Price{}}
}

// Price returns the shape's cost summary, simulating it on first sight.
func (p *Pricer) Price(spec jobs.Spec) (Price, error) {
	if spec.Burst.Classify != nil {
		return Price{}, fmt.Errorf("sched: job spec %q carries a Classify func (not memoizable)", spec.Name)
	}
	k := keyOf(spec)
	if pr, ok := p.cache[k]; ok {
		return pr, nil
	}
	// Isolated run under a canonical name: the price must depend on the
	// shape, not on which queued job first exercised it.
	probe := spec
	probe.Name = "price"
	probe.Fault = nil
	res, err := jobs.Run(p.m, []jobs.Spec{probe}, p.seed)
	if err != nil {
		return Price{}, fmt.Errorf("sched: pricing %q: %w", spec.Name, err)
	}
	r := res[0]
	wl := spec.Workload
	computeSec := float64(wl.Epochs) * float64(wl.ComputeSec)
	// Clock anchor: one compute phase stands for epochHours production
	// hours. A pure-I/O shape (no compute) falls back to 1 sim second =
	// one production hour, so it still gets a nonzero, deterministic
	// service time.
	hoursPerSimSec := 1.0
	if wl.ComputeSec > 0 {
		hoursPerSimSec = p.epochHours / float64(wl.ComputeSec)
	}
	pr := Price{ServiceHours: r.DurableSec * hoursPerSimSec, DrainBps: r.FairShareBps()}
	if r.DurableSec > 0 && computeSec < r.DurableSec {
		pr.IOFrac = (r.DurableSec - computeSec) / r.DurableSec
	}
	p.cache[k] = pr
	return pr, nil
}

// Shapes reports how many distinct shapes have been priced (i.e. how
// many simulations the memoization has paid for).
func (p *Pricer) Shapes() int { return len(p.cache) }
