package sched

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/sweep"
)

// Price is one job shape's scheduling-relevant cost summary, measured by
// running the shape through the full co-schedule machinery on an
// otherwise idle machine.
type Price struct {
	// ServiceHours is the isolated durable-completion time on the
	// campaign clock: sim seconds scaled by EpochHours per compute phase.
	ServiceHours float64
	// EstimateHours is the walltime estimate the scheduler plans against:
	// ServiceHours padded by the pricer's EstimateError multiplier. With
	// a zero error it equals ServiceHours (the perfect-oracle default).
	EstimateHours float64
	// DrainBps is the job's PFS write-back demand in simulation
	// bytes/second (drain bandwidth for staged jobs, client bandwidth for
	// direct writers) — the numerator of the contention stretch model.
	DrainBps float64
	// IOFrac is the fraction of the service time attributable to I/O
	// rather than compute; only this fraction stretches under contention.
	IOFrac float64
}

// Pricer prices job shapes via jobs.Run and memoizes by shape: a queue
// of thousands of jobs drawn from a handful of size classes costs a
// handful of simulations, not thousands. The cache key covers every
// spec field that changes the simulation, so two jobs price identically
// exactly when their runs would be identical.
type Pricer struct {
	m          cluster.Machine
	seed       uint64
	epochHours float64
	cache      map[shapeKey]Price

	// EstimateError is the deterministic walltime-estimate error the
	// scheduler plans against: every Price's EstimateHours is
	// ServiceHours × (1 + EstimateError). Production users pad their
	// walltime requests — often severely — and backfill planners see the
	// padded number, not the truth; 0 (the default) keeps the historical
	// perfect oracle. Must be >= 0: estimates are padded, never short.
	EstimateError float64

	// ProbeDrainBatchBytes, when positive, sets burst.Spec.DrainBatchBytes
	// on priced specs that leave it zero, so pricing probe runs ride the
	// kernel's batched drain write-backs (they already ride the
	// calendar-queue presets automatically: probes run through jobs.Run,
	// which sizes its kernel via Machine.KernelOptions). Opt-in because
	// batching changes drain completion timing and therefore prices; the
	// zero default keeps historical prices byte-identical. The effective
	// (overridden) spec is what the cache is keyed on.
	ProbeDrainBatchBytes int64
}

// shapeKey is the comparable projection of a jobs.Spec (the Classify
// func is deliberately excluded: stream specs must leave it nil). The
// workload contributes its comparable Key fingerprint, so two specs
// share a cache entry exactly when their workloads behave identically.
type shapeKey struct {
	nodes       int
	wl          any
	burst       burstKey
	stripeCount int
	stripeSize  int64
}

type burstKey struct {
	capacity   int64
	rate       float64
	perOp      float64
	drainRate  float64
	policy     burst.Policy
	highWater  float64
	lowWater   float64
	qos        burst.QoS
	drainBatch int64
}

func keyOf(s jobs.Spec) shapeKey {
	var wl any
	if s.Workload != nil {
		wl = s.Workload.Key()
	}
	return shapeKey{
		nodes: s.Nodes,
		wl:    wl,
		burst: burstKey{
			capacity:  s.Burst.CapacityBytes,
			rate:      s.Burst.Rate,
			perOp:     float64(s.Burst.PerOp),
			drainRate: s.Burst.DrainRate,
			policy:    s.Burst.Policy,
			highWater: s.Burst.HighWater,
			lowWater:  s.Burst.LowWater,
			qos:       s.Burst.QoS,
			// Batched write-backs change drain completion timing; without
			// this field two specs differing only in DrainBatchBytes would
			// alias one cache entry and price identically.
			drainBatch: s.Burst.DrainBatchBytes,
		},
		stripeCount: s.StripeCount,
		stripeSize:  s.StripeSize,
	}
}

// NewPricer builds a pricer for machine m. epochHours anchors the
// campaign clock (one compute phase = one epoch = epochHours production
// hours, the convention the failure campaigns use).
func NewPricer(m cluster.Machine, seed uint64, epochHours float64) *Pricer {
	if epochHours <= 0 {
		epochHours = 6
	}
	return &Pricer{m: m, seed: seed, epochHours: epochHours, cache: map[shapeKey]Price{}}
}

// withProbeOptions applies the pricer's opt-in probe overrides to a
// spec (a value copy), so both the probe run and the cache key see the
// effective shape.
func (p *Pricer) withProbeOptions(spec jobs.Spec) jobs.Spec {
	if p.ProbeDrainBatchBytes > 0 && spec.Burst.DrainBatchBytes == 0 {
		spec.Burst.DrainBatchBytes = p.ProbeDrainBatchBytes
	}
	return spec
}

// Price returns the shape's cost summary, simulating it on first sight.
func (p *Pricer) Price(spec jobs.Spec) (Price, error) {
	if spec.Burst.Classify != nil {
		return Price{}, fmt.Errorf("sched: job spec %q carries a Classify func (not memoizable)", spec.Name)
	}
	spec = p.withProbeOptions(spec)
	k := keyOf(spec)
	if pr, ok := p.cache[k]; ok {
		return p.estimate(pr), nil
	}
	pr, err := p.priceUncached(spec)
	if err != nil {
		return Price{}, err
	}
	p.cache[k] = pr
	return p.estimate(pr), nil
}

// priceUncached measures one shape by simulation, without touching the
// cache — the shared core of Price and Prewarm. The result depends
// only on the shape, the machine, and the pricer's seed, so concurrent
// callers on distinct shapes are independent.
func (p *Pricer) priceUncached(spec jobs.Spec) (Price, error) {
	// Isolated run under a canonical name: the price must depend on the
	// shape, not on which queued job first exercised it.
	probe := spec
	probe.Name = "price"
	probe.Fault = nil
	res, err := jobs.Run(p.m, []jobs.Spec{probe}, p.seed)
	if err != nil {
		return Price{}, fmt.Errorf("sched: pricing %q: %w", spec.Name, err)
	}
	r := res[0]
	sh := spec.Workload.Shape()
	computeSec := float64(sh.Epochs) * float64(sh.ComputeSec)
	// Clock anchor: one compute phase stands for epochHours production
	// hours. A pure-I/O shape (no compute) falls back to 1 sim second =
	// one production hour, so it still gets a nonzero, deterministic
	// service time.
	hoursPerSimSec := 1.0
	if sh.ComputeSec > 0 {
		hoursPerSimSec = p.epochHours / float64(sh.ComputeSec)
	}
	pr := Price{ServiceHours: r.DurableSec * hoursPerSimSec, DrainBps: r.FairShareBps()}
	if r.DurableSec > 0 && computeSec < r.DurableSec {
		pr.IOFrac = (r.DurableSec - computeSec) / r.DurableSec
	}
	return pr, nil
}

// Prewarm prices every distinct shape of the stream up front, running
// the probe simulations concurrently on the sweep engine's bounded
// worker pool (parallel <= 1: serial). Every probe uses the same seed
// a cold Price call would, and the cache is filled serially after the
// pool drains, so the cache Prewarm builds is byte-identical to the
// one lazy serial pricing would have built — only the wall-clock cost
// moves. Already-cached and duplicate shapes cost nothing; on error
// the lowest-stream-index failure is returned and no result is cached.
func (p *Pricer) Prewarm(stream []Job, parallel int) error {
	var specs []jobs.Spec
	var keys []shapeKey
	seen := map[shapeKey]bool{}
	for i := range stream {
		spec := stream[i].Spec
		if spec.Burst.Classify != nil {
			return fmt.Errorf("sched: job spec %q carries a Classify func (not memoizable)", spec.Name)
		}
		spec = p.withProbeOptions(spec)
		k := keyOf(spec)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := p.cache[k]; ok {
			continue
		}
		specs = append(specs, spec)
		keys = append(keys, k)
	}
	prices := make([]Price, len(specs))
	err := sweep.ForEach(len(specs), parallel, func(i int) error {
		pr, err := p.priceUncached(specs[i])
		if err != nil {
			return err
		}
		prices[i] = pr
		return nil
	})
	if err != nil {
		return err
	}
	for i, k := range keys {
		p.cache[k] = prices[i]
	}
	return nil
}

// estimate stamps the pricer's walltime-estimate padding onto a cached
// base price; the cache stores ground truth so EstimateError can change
// between Price calls without re-simulating.
func (p *Pricer) estimate(pr Price) Price {
	pr.EstimateHours = pr.ServiceHours * (1 + p.EstimateError)
	return pr
}

// Shapes reports how many distinct shapes have been priced (i.e. how
// many simulations the memoization has paid for).
func (p *Pricer) Shapes() int { return len(p.cache) }
