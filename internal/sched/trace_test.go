package sched

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"picmcio/internal/cluster"
)

func TestSynthesizeDeterministicAndOrdered(t *testing.T) {
	m := cluster.Discoverer()
	s := Synth{Tenants: 8, Users: 3, SubmitMeanHours: 5, SpanHours: 24, Seed: 9}
	a, err := Synthesize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical Synth configs produced different streams")
	}
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	tenants := map[string]bool{}
	for i, j := range a {
		if j.ID != i+1 {
			t.Fatalf("job %d has ID %d, want sequential IDs in submission order", i, j.ID)
		}
		if i > 0 && j.SubmitHours < a[i-1].SubmitHours {
			t.Fatalf("stream not submission-ordered at index %d", i)
		}
		if j.SubmitHours < 0 || j.SubmitHours >= s.SpanHours {
			t.Fatalf("job %d submitted at %v, outside [0,%v)", j.ID, j.SubmitHours, s.SpanHours)
		}
		if j.Spec.Nodes != j.Nodes {
			t.Fatalf("job %d spec/job node mismatch", j.ID)
		}
		tenants[j.Tenant] = true
	}
	if len(tenants) != s.Tenants {
		t.Fatalf("stream spans %d tenants, want %d", len(tenants), s.Tenants)
	}
}

func TestSynthesizeTenantIndependence(t *testing.T) {
	// Adding tenants must not perturb the existing tenants' submissions:
	// each tenant draws from its own SeedAt stream.
	m := cluster.Discoverer()
	base := Synth{Tenants: 4, Users: 2, SubmitMeanHours: 5, SpanHours: 24, Seed: 9}
	wide := base
	wide.Tenants = 8
	a, err := Synthesize(m, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(m, wide)
	if err != nil {
		t.Fatal(err)
	}
	key := func(j Job) [3]interface{} { return [3]interface{}{j.Tenant, j.Class, j.SubmitHours} }
	got := map[[3]interface{}]bool{}
	for _, j := range b {
		got[key(j)] = true
	}
	for _, j := range a {
		if !got[key(j)] {
			t.Fatalf("tenant %s submission at %v vanished when tenants grew 4→8", j.Tenant, j.SubmitHours)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	m := cluster.Discoverer()
	if _, err := Synthesize(m, Synth{}); err == nil {
		t.Fatal("zero SubmitMeanHours accepted")
	}
	if _, err := Synthesize(m, Synth{SubmitMeanHours: 1, Classes: []SizeClass{{Name: "x", Nodes: 1, Weight: -1}}}); err == nil {
		t.Fatal("negative class weight accepted")
	}
	if _, err := Synthesize(m, Synth{SubmitMeanHours: 1, Classes: []SizeClass{{Name: "x", Nodes: 1, Weight: 0}}}); err == nil {
		t.Fatal("all-zero class weights accepted")
	}
}

func TestSynthesizeClassMixCoverage(t *testing.T) {
	m := cluster.Discoverer()
	js, err := Synthesize(m, Synth{Tenants: 8, Users: 4, SubmitMeanHours: 2, SpanHours: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, j := range js {
		count[j.Class]++
	}
	var names []string
	for _, c := range DefaultClasses() {
		names = append(names, c.Name)
		if count[c.Name] == 0 {
			t.Errorf("class %q never drawn over %d jobs", c.Name, len(js))
		}
	}
	sort.Strings(names)
	// The heavy-weight class should dominate the light one.
	if count["narrow"] <= count["wide"] {
		t.Errorf("narrow (w=0.45) drawn %d times vs wide (w=0.10) %d — weights ignored?",
			count["narrow"], count["wide"])
	}
}

func TestTraceRoundTrip(t *testing.T) {
	m := cluster.Dardel()
	js, err := Synthesize(m, Synth{Tenants: 3, Users: 2, SubmitMeanHours: 4, SpanHours: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, js); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(js, back) {
		t.Fatal("trace round trip lost information")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	m := cluster.Discoverer()
	cases := map[string]string{
		"empty":         "",
		"bad header":    "jobs go here\n1 t narrow 2 0.5\n",
		"unknown class": "#schedtrace v1\n1 t gigantic 2 0.5\n",
		"malformed":     "#schedtrace v1\nnot a job line at all\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in), m, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadTraceSkipsCommentsAndResizes(t *testing.T) {
	m := cluster.Discoverer()
	in := "#schedtrace v1\n# a comment\n\n1 acme narrow 6 0.25\n"
	js, err := ReadTrace(strings.NewReader(in), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 1 {
		t.Fatalf("parsed %d jobs, want 1", len(js))
	}
	j := js[0]
	if j.Nodes != 6 || j.Spec.Nodes != 6 {
		t.Fatalf("line node count 6 not applied: job %d spec %d", j.Nodes, j.Spec.Nodes)
	}
	if j.Tenant != "acme" || j.Class != "narrow" || j.SubmitHours != 0.25 {
		t.Fatalf("parsed job %+v", j)
	}
}
