package sched

import (
	"fmt"
	"math"
	"sort"

	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/sim"
	"picmcio/internal/xrand"
)

// This file is the scheduler's realism layer on top of the loop.go event
// skeleton: the per-tenant decayed-usage ledger the FairShare policy and
// the preemptor read, checkpoint-and-requeue kills (preemption and node
// failures share one path), and the repair-window bookkeeping that
// shrinks the free-node count while a failed node is out. Everything
// here is engine-shared code — the naive and indexed loops run the exact
// same float operations in the same order, so the differential suite's
// byte-identity contract extends over all of it.

// PreemptConfig enables preemption via checkpoint-and-requeue.
type PreemptConfig struct {
	// MaxHeadWaitHours enables preemption when > 0: once the queue head
	// has waited at least this long and still cannot start, the engine
	// checkpoints and kills running jobs belonging to tenants whose
	// decayed usage strictly exceeds the head's tenant's — most
	// over-served tenant first, youngest job first within a tenant —
	// until the head's node need is covered, requeueing each victim's
	// remainder as a continuation job. If no victim set can cover the
	// need, nothing is preempted (no thrashing for an unwinnable start).
	MaxHeadWaitHours float64
	// CheckpointHours is the service-time overhead added to every
	// preempted continuation: the forced checkpoint plus relaunch cost.
	// A preemption kill is clean — the victim restarts from its last
	// buffered epoch (it checkpoints on the way out).
	CheckpointHours float64
}

func (p PreemptConfig) enabled() bool { return p.MaxHeadWaitHours > 0 }

// FaultConfig injects node failures into the queue: fault.Arrivals
// drives kills of running jobs mid-service, the victim requeues from its
// recovery epoch, and the failed node leaves the schedulable pool for a
// repair window.
type FaultConfig struct {
	// MTBFNodeHours is the per-node mean time between failures on the
	// campaign clock; 0 disables failures (unless ArrivalHours is set).
	MTBFNodeHours float64
	// RepairHours is how long a failed node stays out of the pool
	// (default 12 when failures are enabled).
	RepairHours float64
	// RestartOverheadHours is the service-time overhead added to a
	// failure-killed continuation (reboot, relaunch, state reload).
	RestartOverheadHours float64
	// Survival selects the NVMe-survivability model for the recovery
	// position: SurviveNVMe restarts from the last buffered epoch,
	// SurviveNone additionally loses the newest DrainLagEpochs buffered
	// checkpoints (their write-back had not caught up when the node died).
	Survival fault.Survivability
	// DrainLagEpochs is the queue-level abstraction of the write-back
	// tail under SurviveNone (see Survival). Default 1; -1 means no lag.
	DrainLagEpochs int
	// HorizonHours bounds the failure-arrival draw (0 = derived from the
	// stream: 4× the last submission + 48 h, comfortably past any sane
	// makespan).
	HorizonHours float64
	// ArrivalHours, when non-empty, replaces the Poisson draw with
	// explicit failure instants (strictly increasing) — the hook the
	// requeue edge-case tests aim kills with.
	ArrivalHours []float64
}

func (f FaultConfig) enabled() bool { return f.MTBFNodeHours > 0 || len(f.ArrivalHours) > 0 }

// failSeedSalt decorrelates the failure stream from every other
// consumer of Config.Seed (pricing stochastics, synthesis).
const failSeedSalt = 0x6661756c74 // "fault"

// arrivalTimes is the failure schedule for one run: the explicit
// override when set, otherwise a fault.Arrivals Poisson draw over the
// configured or derived horizon.
func (f FaultConfig) arrivalTimes(seed uint64, nodes int, lastSubmitH float64) []float64 {
	if len(f.ArrivalHours) > 0 {
		return f.ArrivalHours
	}
	span := f.HorizonHours
	if span <= 0 {
		span = 4*lastSubmitH + 48
	}
	return fault.Arrivals(xrand.New(xrand.SeedAt(seed^failSeedSalt, 0)), f.MTBFNodeHours, nodes, span)
}

func (f FaultConfig) validate() error {
	if f.MTBFNodeHours < 0 || math.IsNaN(f.MTBFNodeHours) {
		return fmt.Errorf("sched: negative failure MTBF %v", f.MTBFNodeHours)
	}
	if f.RepairHours < 0 {
		return fmt.Errorf("sched: negative repair window %v", f.RepairHours)
	}
	if f.RestartOverheadHours < 0 {
		return fmt.Errorf("sched: negative restart overhead %v", f.RestartOverheadHours)
	}
	for i := 1; i < len(f.ArrivalHours); i++ {
		if f.ArrivalHours[i] <= f.ArrivalHours[i-1] {
			return fmt.Errorf("sched: failure arrivals must be strictly increasing (index %d)", i)
		}
	}
	return nil
}

// TenantShare is one tenant's fair-share outcome: the time-weighted mean
// absolute deviation of its decayed-usage share from the equal share,
// integrated while the tenant was active on a contended machine.
type TenantShare struct {
	Tenant string
	// MeanAbsErr is ∫|share − 1/active| dt / ActiveHours; 0 is a tenant
	// that always held exactly its fair share while competing.
	MeanAbsErr float64
	// ActiveHours is how long the tenant had work queued or running while
	// at least one other tenant did too.
	ActiveHours float64
}

// tenantState is one tenant's usage-ledger entry: decayed delivered
// node-hours (the quantity fair-share equalizes), its current accrual
// rate, and the fairness integrals. All tenants fold together at every
// event-time advance — never in between — so the decay arithmetic is a
// pure function of the event history and identical in both loops.
type tenantState struct {
	name    string
	usage   float64 // decayed delivered node-hours, folded to engine.now
	rate    float64 // nodes currently running for this tenant
	active  int     // jobs queued or running
	errInt  float64 // ∫|share − fair| dt while active and contended
	activeH float64
}

// tenant returns (creating on first sight, in deterministic first-seen
// order) the usage-ledger entry for a tenant name.
func (e *engine) tenant(name string) *tenantState {
	ts := e.tenantIx[name]
	if ts == nil {
		ts = &tenantState{name: name}
		e.tenantIx[name] = ts
		e.tenants = append(e.tenants, ts)
	}
	return ts
}

// advance moves the clock to t, integrating the fairness metrics over
// [now, t) at start-of-interval usage and then folding every tenant's
// decayed usage forward. An interval is contended when two or more
// tenants are active; uncontended time is excluded from the fairness
// integrals (there is nothing to share).
func (e *engine) advance(t float64) {
	dt := t - e.now
	if dt <= 0 {
		e.now = t
		return
	}
	n, sum := 0, 0.0
	for _, ts := range e.tenants {
		if ts.active > 0 {
			n++
			sum += ts.usage
		}
	}
	if n >= 2 {
		fair := 1 / float64(n)
		sumSq, errSum := 0.0, 0.0
		for _, ts := range e.tenants {
			if ts.active == 0 {
				continue
			}
			share := fair // all-zero usage: nobody is over-served
			if sum > 0 {
				share = ts.usage / sum
			}
			sumSq += ts.usage * ts.usage
			aerr := math.Abs(share - fair)
			ts.errInt += aerr * dt
			ts.activeH += dt
			errSum += aerr
		}
		jain := 1.0
		if sum > 0 {
			jain = sum * sum / (float64(n) * sumSq)
		}
		e.jainInt += jain * dt
		e.shareErrInt += errSum / float64(n) * dt
		e.contendH += dt
	}
	// Constant-rate exponential decay over the interval, in closed form:
	// dU/dt = rate − U·ln2/H  ⇒  U(t+dt) = U·2^(−dt/H) + rate·H/ln2·(1−2^(−dt/H)).
	decay := math.Exp2(-dt / e.cfg.UsageHalfLifeHours)
	gain := e.cfg.UsageHalfLifeHours / math.Ln2 * (1 - decay)
	for _, ts := range e.tenants {
		ts.usage = ts.usage*decay + ts.rate*gain
	}
	e.now = t
}

// usageSnapshot refreshes and returns the policy-visible usage map
// (QueueView.Usage). The backing map is reused across decision points;
// policies must treat it as read-only and must not sum over its
// iteration order (raw per-tenant lookups are order-free).
func (e *engine) usageSnapshot() map[string]float64 {
	if e.usageView == nil {
		e.usageView = make(map[string]float64, len(e.tenants))
	}
	for _, ts := range e.tenants {
		e.usageView[ts.name] = ts.usage
	}
	return e.usageView
}

// finishFairness folds the fairness integrals into the Result once the
// loop drains.
func (e *engine) finishFairness() {
	e.res.UsageJain = 1
	if e.contendH > 0 {
		e.res.UsageJain = e.jainInt / e.contendH
		e.res.ShareErr = e.shareErrInt / e.contendH
	}
	for _, ts := range e.tenants {
		tsh := TenantShare{Tenant: ts.name, ActiveHours: ts.activeH}
		if ts.activeH > 0 {
			tsh.MeanAbsErr = ts.errInt / ts.activeH
		}
		e.res.TenantShares = append(e.res.TenantShares, tsh)
	}
}

// jobTrack is one job's cross-segment scheduling state: the ground-truth
// price of the whole job, its checkpoint-epoch structure, how many
// epochs survived previous kills, and the current segment's shape. A
// never-killed job has exactly one segment whose service equals the
// base price — the historical path, byte for byte.
type jobTrack struct {
	res  *JobResult
	base Price // full-job ground-truth price

	epochs    int     // checkpoint epochs in the full job
	perEpochH float64 // base service hours per epoch

	doneEpochs   int           // epochs recovered across all kills so far
	segSvcH      float64       // current segment's nominal service hours
	segOverheadH float64       // restart/checkpoint overhead inside segSvcH
	segLed       *fault.Ledger // buffered-checkpoint marks, segment-relative

	waitH       float64 // queue wait accumulated across segments
	lastEnqueue float64
}

// epochsOf is a job's checkpoint granularity: its workload's epoch
// count, or 1 for an epoch-less shape (kills lose everything).
func epochsOf(j *Job) int {
	if j.Spec.Workload != nil {
		if ep := j.Spec.Workload.Shape().Epochs; ep > 0 {
			return ep
		}
	}
	return 1
}

// buildLedger reconstructs the segment's nominal checkpoint schedule —
// the remaining epochs buffered at overhead + k·perEpoch — through the
// same fault.Ledger the event-level injector uses, so kill-time →
// restartable-epoch mapping is one shared mechanism.
func (tr *jobTrack) buildLedger() {
	rem := tr.epochs - tr.doneEpochs
	tr.segLed = fault.UniformLedger(rem, sim.Time(tr.segOverheadH), sim.Duration(tr.perEpochH), int64(tr.doneEpochs))
}

// segmentPrice is the Price a continuation is queued under: remaining
// nominal service (plus restart overhead), the base shape's drain
// demand and I/O fraction, and the pricer's estimate padding.
func (e *engine) segmentPrice(tr *jobTrack) Price {
	p := tr.base
	p.ServiceHours = tr.segSvcH
	p.EstimateHours = tr.segSvcH * (1 + e.pr.EstimateError)
	return p
}

// recoveredEpochs maps a kill at nominal segment progress doneH onto the
// epochs the continuation keeps: the segment ledger's buffered count,
// minus the SurviveNone drain lag on a crash (preemption checkpoints
// cleanly and always restarts from buffered state).
func (e *engine) recoveredEpochs(tr *jobTrack, doneH float64, byFailure bool) int {
	buf := tr.segLed.BufferedEpochs(sim.Time(doneH))
	if byFailure && e.cfg.Faults.Survival == fault.SurviveNone {
		buf -= e.cfg.Faults.DrainLagEpochs
		if buf < 0 {
			buf = 0
		}
	}
	return buf
}

// killRunning checkpoints-and-kills a running job at the current
// instant and requeues its remainder as a continuation segment at the
// queue tail. byFailure selects crash recovery semantics (drain lag,
// restart overhead) over the clean preemption checkpoint.
func (e *engine) killRunning(rj *running, byFailure bool) error {
	rj.touch(e.now)
	tr := rj.track
	doneH := tr.segSvcH - rj.remH
	if doneH < 0 {
		doneH = 0
	}
	rec := e.recoveredEpochs(tr, doneH, byFailure)
	tr.doneEpochs += rec
	lostH := doneH - float64(rec)*tr.perEpochH
	if lostH < 0 {
		lostH = 0
	}
	lostNH := float64(rj.job.Nodes) * lostH
	tr.res.LostNodeHours += lostNH
	e.res.LostNodeHours += lostNH
	if byFailure {
		tr.res.FailureKills++
		e.res.FailureKills++
	} else {
		tr.res.Preemptions++
		e.res.Preemptions++
	}
	if err := e.sys.Free(rj.alloc); err != nil {
		return err
	}
	e.res.LeaseOps++
	e.busy -= rj.job.Nodes
	e.demand -= rj.drainBps
	rj.epoch++ // strand any completion-heap snapshot
	kept := e.run[:0]
	for _, r := range e.run {
		if r != rj {
			kept = append(kept, r)
		}
	}
	e.run = kept
	e.tenant(rj.job.Tenant).rate -= float64(rj.job.Nodes)

	overhead := e.cfg.Preempt.CheckpointHours
	if byFailure {
		overhead = e.cfg.Faults.RestartOverheadHours
	}
	remEpochs := tr.epochs - tr.doneEpochs
	if remEpochs < 0 {
		remEpochs = 0
	}
	tr.segOverheadH = overhead
	tr.segSvcH = overhead + float64(remEpochs)*tr.perEpochH
	tr.segLed = nil // rebuilt on the next admission
	tr.lastEnqueue = e.now
	e.res.RequeuedNodeHours += float64(rj.job.Nodes) * tr.segSvcH
	ent := &qent{job: rj.job, submitH: e.now, price: e.segmentPrice(tr), cont: true, track: tr}
	if e.naive {
		e.qued[rj.job.ID] = e.now
	}
	e.queue = append(e.queue, ent)
	e.live++
	e.restretch()
	e.sample()
	return nil
}

// preemptDeadline is the instant the queue head's wait crosses the
// preemption threshold — an event the loop must wake for even when no
// arrival or completion lands first. Once the deadline has passed it
// returns +Inf: maybePreempt re-evaluates after every event anyway, and
// a finite past deadline would spin the loop.
func (e *engine) preemptDeadline() float64 {
	if !e.cfg.Preempt.enabled() {
		return math.Inf(1)
	}
	head := e.headEnt()
	if head == nil {
		return math.Inf(1)
	}
	if t := head.submitH + e.cfg.Preempt.MaxHeadWaitHours; t > e.now {
		return t
	}
	return math.Inf(1)
}

// maybePreempt fires the preemptor once: if the queue head has waited
// past the threshold and still cannot start, kill enough running jobs of
// strictly-more-served tenants to cover its need. Jobs started at this
// very instant are never victims — killing freshly admitted work would
// let a blocked head and an eager backfiller trade the same nodes
// forever within one event. Returns whether anything was preempted.
func (e *engine) maybePreempt() (bool, error) {
	if !e.cfg.Preempt.enabled() {
		return false, nil
	}
	head := e.headEnt()
	if head == nil {
		return false, nil
	}
	if e.now < head.submitH+e.cfg.Preempt.MaxHeadWaitHours {
		return false, nil
	}
	need := head.job.Nodes - e.sys.FreeNodes()
	if need <= 0 {
		return false, nil
	}
	headUsage := e.tenant(head.job.Tenant).usage
	var cands []*running
	for _, rj := range e.run {
		if rj.res.StartHours == e.now {
			continue
		}
		if e.tenant(rj.job.Tenant).usage > headUsage {
			cands = append(cands, rj)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ua, ub := e.tenant(cands[a].job.Tenant).usage, e.tenant(cands[b].job.Tenant).usage
		if ua != ub {
			return ua > ub
		}
		if cands[a].res.StartHours != cands[b].res.StartHours {
			return cands[a].res.StartHours > cands[b].res.StartHours
		}
		return cands[a].job.ID > cands[b].job.ID
	})
	freed, take := 0, 0
	for _, rj := range cands {
		if freed >= need {
			break
		}
		freed += rj.job.Nodes
		take++
	}
	if freed < need {
		return false, nil
	}
	for _, rj := range cands[:take] {
		if err := e.killRunning(rj, false); err != nil {
			return false, err
		}
	}
	return true, nil
}

// scheduleAndPreempt is the per-event decision step: a scheduling pass,
// then preemption rounds — each killing at least one previously started
// job, so the alternation terminates — until the preemptor declines.
func (e *engine) scheduleAndPreempt() error {
	if err := e.schedule(); err != nil {
		return err
	}
	for e.cfg.Preempt.enabled() {
		did, err := e.maybePreempt()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
		if err := e.schedule(); err != nil {
			return err
		}
	}
	return nil
}

// repair is one failed node's repair window: when it ends and the lease
// holding the node out of the schedulable pool.
type repair struct {
	at    float64
	alloc *cluster.Allocation
}

// failAt processes one node-failure arrival: the failure lands uniformly
// on the partition's nodes — a running job's node kills and requeues the
// job, an already-down node changes nothing, an idle node just starts a
// repair — and the failed node leaves the pool for the repair window.
func (e *engine) failAt(t float64) error {
	e.advance(t)
	u := e.failRng.Float64() * float64(e.cfg.Nodes)
	acc := 0.0
	var victim *running
	for _, rj := range e.run {
		acc += float64(rj.job.Nodes)
		if u < acc {
			victim = rj
			break
		}
	}
	if victim == nil {
		if u < acc+float64(e.downNodes) {
			// Lands on a node already under repair: no new outage.
			e.res.IdleFailures++
			return nil
		}
		e.res.IdleFailures++
	}
	if victim != nil {
		if err := e.killRunning(victim, true); err != nil {
			return err
		}
	}
	return e.startRepair()
}

// startRepair takes the failed node out of the schedulable pool by
// holding a 1-node lease until the repair window ends. The lease is
// always satisfiable: a busy victim's nodes were just freed, and an
// idle-node hit implies a free node exists.
func (e *engine) startRepair() error {
	if e.cfg.Faults.RepairHours <= 0 {
		return nil
	}
	alloc, err := e.sys.Allocate(1)
	if err != nil {
		return fmt.Errorf("sched: repair lease: %w", err)
	}
	e.res.LeaseOps++
	e.downNodes++
	e.res.DownNodeHours += e.cfg.Faults.RepairHours
	e.repairs = append(e.repairs, repair{at: e.now + e.cfg.Faults.RepairHours, alloc: alloc})
	return nil
}

// repairAt returns the oldest down node to the pool (RepairHours is
// constant, so the repair list is FIFO in end time).
func (e *engine) repairAt(t float64) error {
	e.advance(t)
	r := e.repairs[0]
	e.repairs = e.repairs[1:]
	if err := e.sys.Free(r.alloc); err != nil {
		return err
	}
	e.res.LeaseOps++
	e.downNodes--
	return nil
}
