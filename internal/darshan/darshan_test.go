package darshan

import (
	"bytes"
	"strings"
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// runInstrumented performs a small instrumented workload and returns the
// resulting log.
func runInstrumented(t *testing.T) *Log {
	t.Helper()
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	col := NewCollector()
	for rank := 0; rank < 4; rank++ {
		rank := rank
		k.Spawn("r", func(p *sim.Proc) {
			env := &posix.Env{FS: fs, Client: &pfs.Client{}, Rank: rank, Monitor: col}
			fd, err := env.Create(p, pfs.Join("/out", "file", string(rune('a'+rank))))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 10; i++ {
				fd.Write(p, 4096, nil)
			}
			fd.Fsync(p)
			fd.Close(p)
			rd, err := env.Open(p, fd.Path())
			if err != nil {
				t.Error(err)
				return
			}
			rd.Read(p, 1024)
			rd.Close(p)
		})
	}
	k.Run()
	return col.Snapshot(JobMeta{Executable: "test", NProcs: 4, Machine: "testbox", RunSeconds: float64(k.Now())})
}

func TestCountersAccumulate(t *testing.T) {
	l := runInstrumented(t)
	if got := l.TotalBytesWritten(); got != 4*10*4096 {
		t.Fatalf("bytes written=%d, want %d", got, 4*10*4096)
	}
	if got := l.TotalBytesRead(); got != 4*1024 {
		t.Fatalf("bytes read=%d", got)
	}
	// 4 ranks × 1 file, each opened twice (create + reopen) → 4 records
	// with OPENS=2.
	if len(l.Records) != 4 {
		t.Fatalf("records=%d, want 4", len(l.Records))
	}
	for _, r := range l.Records {
		if r.Counters[POSIX_OPENS] != 2 {
			t.Errorf("rank %d opens=%d, want 2", r.Rank, r.Counters[POSIX_OPENS])
		}
		if r.Counters[POSIX_WRITES] != 10 {
			t.Errorf("rank %d writes=%d", r.Rank, r.Counters[POSIX_WRITES])
		}
		if r.Counters[POSIX_FSYNCS] != 1 {
			t.Errorf("rank %d fsyncs=%d", r.Rank, r.Counters[POSIX_FSYNCS])
		}
		if r.Counters[POSIX_SIZE_WRITE_1K_10K] != 10 {
			t.Errorf("rank %d histogram=%v", r.Rank, r.Counters)
		}
		if r.FCount[POSIX_F_WRITE_TIME] <= 0 {
			t.Errorf("rank %d has zero write time", r.Rank)
		}
		if r.FCount[POSIX_F_META_TIME] <= 0 {
			t.Errorf("rank %d has zero meta time", r.Rank)
		}
	}
}

func TestThroughputEstimators(t *testing.T) {
	l := runInstrumented(t)
	if tp := l.WriteThroughputByElapsed(); tp <= 0 {
		t.Fatalf("elapsed throughput=%v", tp)
	}
	if tp := l.WriteThroughputBySlowest(); tp <= 0 {
		t.Fatalf("slowest throughput=%v", tp)
	}
}

func TestPerProcessTimes(t *testing.T) {
	l := runInstrumented(t)
	r, m, w := l.PerProcessTimes()
	if r <= 0 || m <= 0 || w <= 0 {
		t.Fatalf("times r=%v m=%v w=%v, want all positive", r, m, w)
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	l := runInstrumented(t)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(l.Records) {
		t.Fatalf("records %d != %d", len(got.Records), len(l.Records))
	}
	if got.TotalBytesWritten() != l.TotalBytesWritten() {
		t.Fatal("byte totals differ after round trip")
	}
	if got.Meta.Version != l.Meta.Version {
		t.Fatal("meta differs")
	}
}

func TestParseRejectsJunk(t *testing.T) {
	if _, err := Parse(strings.NewReader("not a log")); err == nil {
		t.Fatal("expected error")
	}
}

func TestFileSummaries(t *testing.T) {
	l := runInstrumented(t)
	sums := l.FileSummaries()
	if len(sums) != 4 {
		t.Fatalf("files=%d, want 4", len(sums))
	}
	for _, s := range sums {
		if s.BytesWritten != 10*4096 || s.Writers != 1 {
			t.Errorf("summary %+v", s)
		}
	}
	// Sorted by path.
	for i := 1; i < len(sums); i++ {
		if sums[i-1].Path >= sums[i].Path {
			t.Fatal("summaries not sorted")
		}
	}
}

func TestReportContainsKeyLines(t *testing.T) {
	rep := runInstrumented(t).Report()
	for _, want := range []string{
		"total_POSIX_BYTES_WRITTEN", "agg_perf_by_slowest",
		"avg_per_process_meta_time", "POSIX_SIZE_WRITE_1K_10K",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestWriteWindow(t *testing.T) {
	l := runInstrumented(t)
	s, e, ok := l.WriteWindow()
	if !ok || e <= s {
		t.Fatalf("window [%v,%v] ok=%v", s, e, ok)
	}
}

func TestSharedFileAggregation(t *testing.T) {
	// Two ranks writing the same path yield two records, one file summary
	// with Writers == 2.
	col := NewCollector()
	col.Record(0, posix.OpWrite, "/shared", 100, 0, 1)
	col.Record(1, posix.OpWrite, "/shared", 200, 0, 2)
	l := col.Snapshot(JobMeta{})
	sums := l.FileSummaries()
	if len(sums) != 1 || sums[0].Writers != 2 || sums[0].BytesWritten != 300 {
		t.Fatalf("sums=%+v", sums)
	}
}
