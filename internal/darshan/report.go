package darshan

import (
	"fmt"
	"sort"
	"strings"

	"picmcio/internal/units"
)

// TotalBytesWritten sums bytes written across all records.
func (l *Log) TotalBytesWritten() int64 {
	var n int64
	for i := range l.Records {
		n += l.Records[i].Counters[POSIX_BYTES_WRITTEN]
	}
	return n
}

// TotalBytesRead sums bytes read across all records.
func (l *Log) TotalBytesRead() int64 {
	var n int64
	for i := range l.Records {
		n += l.Records[i].Counters[POSIX_BYTES_READ]
	}
	return n
}

// WriteWindow reports the earliest write start and latest write end
// timestamps across all records. ok is false if nothing was written.
func (l *Log) WriteWindow() (start, end float64, ok bool) {
	first := true
	for i := range l.Records {
		r := &l.Records[i]
		if r.Counters[POSIX_WRITES] == 0 {
			continue
		}
		s := r.FCount[POSIX_F_WRITE_START_TIMESTAMP]
		e := r.FCount[POSIX_F_WRITE_END_TIMESTAMP]
		if first {
			start, end, first = s, e, false
			continue
		}
		if s < start {
			start = s
		}
		if e > end {
			end = e
		}
	}
	return start, end, !first
}

// WriteThroughputByElapsed estimates aggregate write throughput as total
// bytes written divided by the wall span of the write window — the
// headline "write throughput" number of the paper's figures.
func (l *Log) WriteThroughputByElapsed() float64 {
	s, e, ok := l.WriteWindow()
	if !ok || e <= s {
		return 0
	}
	return float64(l.TotalBytesWritten()) / (e - s)
}

// WriteThroughputBySlowest mirrors Darshan's agg_perf_by_slowest: total
// bytes divided by the largest per-rank cumulative I/O time (write + meta).
func (l *Log) WriteThroughputBySlowest() float64 {
	perRank := map[int]float64{}
	for i := range l.Records {
		r := &l.Records[i]
		perRank[r.Rank] += r.FCount[POSIX_F_WRITE_TIME] + r.FCount[POSIX_F_META_TIME]
	}
	var slowest float64
	for _, t := range perRank {
		if t > slowest {
			slowest = t
		}
	}
	if slowest <= 0 {
		return 0
	}
	return float64(l.TotalBytesWritten()) / slowest
}

// PerProcessTimes reports the average cumulative read, metadata and write
// seconds per process — the decomposition of Fig. 5. The divisor is the
// job's process count (Meta.NProcs) when known, so ranks that performed no
// POSIX I/O (e.g. non-aggregators under BP4) still count in the average,
// exactly as Darshan averages over all procs.
func (l *Log) PerProcessTimes() (read, meta, write float64) {
	ranks := map[int]bool{}
	for i := range l.Records {
		r := &l.Records[i]
		ranks[r.Rank] = true
		read += r.FCount[POSIX_F_READ_TIME]
		meta += r.FCount[POSIX_F_META_TIME]
		write += r.FCount[POSIX_F_WRITE_TIME]
	}
	n := float64(l.Meta.NProcs)
	if n == 0 {
		n = float64(len(ranks))
	}
	if n == 0 {
		return 0, 0, 0
	}
	return read / n, meta / n, write / n
}

// Filter returns a shallow copy of the log containing only the records
// for which keep returns true (same job metadata). Used to separate
// one-time I/O (input decks) from per-epoch I/O when extrapolating.
func (l *Log) Filter(keep func(r *Record) bool) *Log {
	out := &Log{Meta: l.Meta}
	for i := range l.Records {
		if keep(&l.Records[i]) {
			out.Records = append(out.Records, l.Records[i])
		}
	}
	return out
}

// FileSummary describes one file aggregated across ranks.
type FileSummary struct {
	Path         string
	BytesWritten int64
	BytesRead    int64
	Writers      int
}

// FileSummaries aggregates records per file, sorted by path.
func (l *Log) FileSummaries() []FileSummary {
	agg := map[string]*FileSummary{}
	for i := range l.Records {
		r := &l.Records[i]
		fs := agg[r.Path]
		if fs == nil {
			fs = &FileSummary{Path: r.Path}
			agg[r.Path] = fs
		}
		fs.BytesWritten += r.Counters[POSIX_BYTES_WRITTEN]
		fs.BytesRead += r.Counters[POSIX_BYTES_READ]
		if r.Counters[POSIX_WRITES] > 0 {
			fs.Writers++
		}
	}
	out := make([]FileSummary, 0, len(agg))
	for _, fs := range agg {
		out = append(out, *fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// WriteSizeHistogram sums the access-size histogram across records,
// returning bucket label → count.
func (l *Log) WriteSizeHistogram() []struct {
	Bucket string
	Count  int64
} {
	buckets := []Counter{
		POSIX_SIZE_WRITE_0_100, POSIX_SIZE_WRITE_100_1K, POSIX_SIZE_WRITE_1K_10K,
		POSIX_SIZE_WRITE_10K_100K, POSIX_SIZE_WRITE_100K_1M, POSIX_SIZE_WRITE_1M_4M,
		POSIX_SIZE_WRITE_4M_10M, POSIX_SIZE_WRITE_10M_100M, POSIX_SIZE_WRITE_100M_PLUS,
	}
	out := make([]struct {
		Bucket string
		Count  int64
	}, len(buckets))
	for bi, b := range buckets {
		out[bi].Bucket = b.String()
		for i := range l.Records {
			out[bi].Count += l.Records[i].Counters[b]
		}
	}
	return out
}

// Report renders a human-readable summary in the spirit of darshan-parser
// --total output.
func (l *Log) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s log\n", l.Meta.Version)
	fmt.Fprintf(&b, "# exe: %s\n", l.Meta.Executable)
	fmt.Fprintf(&b, "# machine: %s  nprocs: %d  run: %s\n",
		l.Meta.Machine, l.Meta.NProcs, units.Seconds(l.Meta.RunSeconds))
	fmt.Fprintf(&b, "# records: %d  files: %d\n", len(l.Records), len(l.FileSummaries()))
	fmt.Fprintf(&b, "total_POSIX_BYTES_WRITTEN: %d (%s)\n",
		l.TotalBytesWritten(), units.Bytes(l.TotalBytesWritten()))
	fmt.Fprintf(&b, "total_POSIX_BYTES_READ: %d (%s)\n",
		l.TotalBytesRead(), units.Bytes(l.TotalBytesRead()))
	fmt.Fprintf(&b, "agg_perf_by_elapsed: %s\n", units.Throughput(l.WriteThroughputByElapsed()))
	fmt.Fprintf(&b, "agg_perf_by_slowest: %s\n", units.Throughput(l.WriteThroughputBySlowest()))
	r, m, w := l.PerProcessTimes()
	fmt.Fprintf(&b, "avg_per_process_read_time: %s\n", units.Seconds(r))
	fmt.Fprintf(&b, "avg_per_process_meta_time: %s\n", units.Seconds(m))
	fmt.Fprintf(&b, "avg_per_process_write_time: %s\n", units.Seconds(w))
	fmt.Fprintf(&b, "write size histogram:\n")
	for _, h := range l.WriteSizeHistogram() {
		if h.Count > 0 {
			fmt.Fprintf(&b, "  %-28s %d\n", h.Bucket, h.Count)
		}
	}
	return b.String()
}
