// Package darshan reimplements the essentials of the Darshan HPC I/O
// characterization tool against the simulated POSIX layer: per-rank,
// per-file counter records (operation counts, byte totals, access-size
// histogram, cumulative read/write/metadata timers), a compressed log
// format, a parser, and the throughput estimators the paper uses to report
// every figure ("we evaluate the I/O performance of BIT1 in terms of write
// throughput by extracting the throughput and amount of data stored by
// each file ... using Darshan logs").
package darshan

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// Counter indexes the integer counters of a record; names mirror the real
// Darshan POSIX module.
type Counter int

// Integer counters.
const (
	POSIX_OPENS Counter = iota
	POSIX_WRITES
	POSIX_READS
	POSIX_SEEKS
	POSIX_STATS
	POSIX_FSYNCS
	POSIX_BYTES_WRITTEN
	POSIX_BYTES_READ
	POSIX_SIZE_WRITE_0_100
	POSIX_SIZE_WRITE_100_1K
	POSIX_SIZE_WRITE_1K_10K
	POSIX_SIZE_WRITE_10K_100K
	POSIX_SIZE_WRITE_100K_1M
	POSIX_SIZE_WRITE_1M_4M
	POSIX_SIZE_WRITE_4M_10M
	POSIX_SIZE_WRITE_10M_100M
	POSIX_SIZE_WRITE_100M_PLUS
	NumCounters
)

var counterNames = [NumCounters]string{
	"POSIX_OPENS", "POSIX_WRITES", "POSIX_READS", "POSIX_SEEKS",
	"POSIX_STATS", "POSIX_FSYNCS", "POSIX_BYTES_WRITTEN", "POSIX_BYTES_READ",
	"POSIX_SIZE_WRITE_0_100", "POSIX_SIZE_WRITE_100_1K",
	"POSIX_SIZE_WRITE_1K_10K", "POSIX_SIZE_WRITE_10K_100K",
	"POSIX_SIZE_WRITE_100K_1M", "POSIX_SIZE_WRITE_1M_4M",
	"POSIX_SIZE_WRITE_4M_10M", "POSIX_SIZE_WRITE_10M_100M",
	"POSIX_SIZE_WRITE_100M_PLUS",
}

// String implements fmt.Stringer.
func (c Counter) String() string {
	if c >= 0 && c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", int(c))
}

// FCounter indexes the floating-point (time) counters of a record.
type FCounter int

// Floating-point counters (all in seconds of virtual time).
const (
	POSIX_F_READ_TIME FCounter = iota
	POSIX_F_WRITE_TIME
	POSIX_F_META_TIME
	POSIX_F_OPEN_START_TIMESTAMP
	POSIX_F_WRITE_START_TIMESTAMP
	POSIX_F_WRITE_END_TIMESTAMP
	POSIX_F_READ_START_TIMESTAMP
	POSIX_F_READ_END_TIMESTAMP
	POSIX_F_CLOSE_END_TIMESTAMP
	NumFCounters
)

var fcounterNames = [NumFCounters]string{
	"POSIX_F_READ_TIME", "POSIX_F_WRITE_TIME", "POSIX_F_META_TIME",
	"POSIX_F_OPEN_START_TIMESTAMP", "POSIX_F_WRITE_START_TIMESTAMP",
	"POSIX_F_WRITE_END_TIMESTAMP", "POSIX_F_READ_START_TIMESTAMP",
	"POSIX_F_READ_END_TIMESTAMP", "POSIX_F_CLOSE_END_TIMESTAMP",
}

// String implements fmt.Stringer.
func (c FCounter) String() string {
	if c >= 0 && c < NumFCounters {
		return fcounterNames[c]
	}
	return fmt.Sprintf("FCounter(%d)", int(c))
}

// Record is one (rank, file) characterization record.
type Record struct {
	Rank     int                   `json:"rank"`
	Path     string                `json:"path"`
	Counters [NumCounters]int64    `json:"counters"`
	FCount   [NumFCounters]float64 `json:"fcounters"`
}

type recKey struct {
	rank int
	path string
}

// Collector gathers records during a run. It implements posix.Monitor and
// is attached to every rank's POSIX environment, exactly where the real
// Darshan library interposes.
type Collector struct {
	recs map[recKey]*Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{recs: map[recKey]*Record{}} }

func writeSizeBucket(n int64) Counter {
	switch {
	case n < 100:
		return POSIX_SIZE_WRITE_0_100
	case n < 1<<10:
		return POSIX_SIZE_WRITE_100_1K
	case n < 10<<10:
		return POSIX_SIZE_WRITE_1K_10K
	case n < 100<<10:
		return POSIX_SIZE_WRITE_10K_100K
	case n < 1<<20:
		return POSIX_SIZE_WRITE_100K_1M
	case n < 4<<20:
		return POSIX_SIZE_WRITE_1M_4M
	case n < 10<<20:
		return POSIX_SIZE_WRITE_4M_10M
	case n < 100<<20:
		return POSIX_SIZE_WRITE_10M_100M
	default:
		return POSIX_SIZE_WRITE_100M_PLUS
	}
}

// Record implements posix.Monitor.
func (c *Collector) Record(rank int, op posix.Op, path string, bytes int64, start, end sim.Time) {
	key := recKey{rank, path}
	r := c.recs[key]
	if r == nil {
		r = &Record{Rank: rank, Path: path}
		r.FCount[POSIX_F_OPEN_START_TIMESTAMP] = float64(start)
		c.recs[key] = r
	}
	dur := float64(end - start)
	switch op {
	case posix.OpOpen, posix.OpCreate:
		r.Counters[POSIX_OPENS]++
		r.FCount[POSIX_F_META_TIME] += dur
	case posix.OpWrite:
		if r.Counters[POSIX_WRITES] == 0 {
			r.FCount[POSIX_F_WRITE_START_TIMESTAMP] = float64(start)
		}
		r.Counters[POSIX_WRITES]++
		r.Counters[POSIX_BYTES_WRITTEN] += bytes
		r.Counters[writeSizeBucket(bytes)]++
		r.FCount[POSIX_F_WRITE_TIME] += dur
		r.FCount[POSIX_F_WRITE_END_TIMESTAMP] = float64(end)
	case posix.OpRead:
		if r.Counters[POSIX_READS] == 0 {
			r.FCount[POSIX_F_READ_START_TIMESTAMP] = float64(start)
		}
		r.Counters[POSIX_READS]++
		r.Counters[POSIX_BYTES_READ] += bytes
		r.FCount[POSIX_F_READ_TIME] += dur
		r.FCount[POSIX_F_READ_END_TIMESTAMP] = float64(end)
	case posix.OpSeek:
		r.Counters[POSIX_SEEKS]++
		r.FCount[POSIX_F_META_TIME] += dur
	case posix.OpStat:
		r.Counters[POSIX_STATS]++
		r.FCount[POSIX_F_META_TIME] += dur
	case posix.OpFsync:
		r.Counters[POSIX_FSYNCS]++
		r.FCount[POSIX_F_META_TIME] += dur
	case posix.OpClose:
		r.FCount[POSIX_F_META_TIME] += dur
		r.FCount[POSIX_F_CLOSE_END_TIMESTAMP] = float64(end)
	default:
		r.FCount[POSIX_F_META_TIME] += dur
	}
}

// JobMeta describes the instrumented job, mirroring a Darshan log header.
type JobMeta struct {
	Executable string  `json:"exe"`
	NProcs     int     `json:"nprocs"`
	Machine    string  `json:"machine"`
	RunSeconds float64 `json:"run_seconds"`
	Version    string  `json:"version"`
}

// Log is a finalized set of records plus job metadata.
type Log struct {
	Meta    JobMeta  `json:"meta"`
	Records []Record `json:"records"`
}

// Snapshot freezes the collector into a Log, sorted by (rank, path) for
// deterministic output.
func (c *Collector) Snapshot(meta JobMeta) *Log {
	meta.Version = "darshan-sim 3.4.2-go"
	l := &Log{Meta: meta}
	for _, r := range c.recs {
		l.Records = append(l.Records, *r)
	}
	sort.Slice(l.Records, func(i, j int) bool {
		if l.Records[i].Rank != l.Records[j].Rank {
			return l.Records[i].Rank < l.Records[j].Rank
		}
		return l.Records[i].Path < l.Records[j].Path
	})
	return l
}

// Encode writes the log in its on-disk format (gzip-compressed JSON, as
// real Darshan logs are compressed).
func (l *Log) Encode(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := json.NewEncoder(zw).Encode(l); err != nil {
		zw.Close()
		return fmt.Errorf("darshan: encode: %w", err)
	}
	return zw.Close()
}

// Parse reads a log produced by Encode.
func Parse(r io.Reader) (*Log, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("darshan: not a darshan-sim log: %w", err)
	}
	defer zr.Close()
	var l Log
	if err := json.NewDecoder(zr).Decode(&l); err != nil {
		return nil, fmt.Errorf("darshan: parse: %w", err)
	}
	return &l, nil
}
