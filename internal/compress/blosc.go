package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// bloscCodec is a Blosc-like fast compressor: data is byte-shuffled by the
// element type size (grouping the k-th byte of every element together,
// which makes IEEE-754 particle data highly compressible) and then packed
// with a speed-oriented LZ stage, block by block. Like the real Blosc it
// trades ratio for throughput; BIT1 uses it so compression can keep up
// with the I/O pipeline (§III-B, Fig. 7/8).
type bloscCodec struct {
	typeSize  int
	blockSize int
	level     int
}

// newBlosc returns a Blosc-like codec for elements of typeSize bytes.
func newBlosc(typeSize int) *bloscCodec {
	if typeSize < 1 {
		typeSize = 1
	}
	return &bloscCodec{typeSize: typeSize, blockSize: 1 << 20, level: flate.BestSpeed}
}

// Name implements Codec.
func (c *bloscCodec) Name() string { return "blosc" }

const bloscMagic = "BLgo"

// shuffle performs the byte transposition: output groups byte lane k of
// every element contiguously. Trailing bytes that do not fill a whole
// element are appended unshuffled.
func shuffle(data []byte, typeSize int) []byte {
	n := len(data)
	if typeSize <= 1 || n < typeSize {
		out := make([]byte, n)
		copy(out, data)
		return out
	}
	elems := n / typeSize
	out := make([]byte, n)
	for lane := 0; lane < typeSize; lane++ {
		base := lane * elems
		for e := 0; e < elems; e++ {
			out[base+e] = data[e*typeSize+lane]
		}
	}
	copy(out[elems*typeSize:], data[elems*typeSize:])
	return out
}

// unshuffle inverts shuffle.
func unshuffle(data []byte, typeSize int) []byte {
	n := len(data)
	if typeSize <= 1 || n < typeSize {
		out := make([]byte, n)
		copy(out, data)
		return out
	}
	elems := n / typeSize
	out := make([]byte, n)
	for lane := 0; lane < typeSize; lane++ {
		base := lane * elems
		for e := 0; e < elems; e++ {
			out[e*typeSize+lane] = data[base+e]
		}
	}
	copy(out[elems*typeSize:], data[elems*typeSize:])
	return out
}

// Compress implements Codec.
func (c *bloscCodec) Compress(data []byte) []byte {
	var out bytes.Buffer
	out.WriteString(bloscMagic)
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(data)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.typeSize))
	out.Write(hdr[:])
	for off := 0; off < len(data); off += c.blockSize {
		end := off + c.blockSize
		if end > len(data) {
			end = len(data)
		}
		block := shuffle(data[off:end], c.typeSize)
		var comp bytes.Buffer
		fw, _ := flate.NewWriter(&comp, c.level)
		fw.Write(block)
		fw.Close()
		var bh [8]byte
		payload := comp.Bytes()
		stored := false
		if len(payload) >= len(block) {
			// Incompressible block: store raw, as Blosc does.
			payload = block
			stored = true
		}
		binary.LittleEndian.PutUint32(bh[:4], uint32(len(block)))
		v := uint32(len(payload))
		if stored {
			v |= 1 << 31
		}
		binary.LittleEndian.PutUint32(bh[4:], v)
		out.Write(bh[:])
		out.Write(payload)
	}
	return out.Bytes()
}

// Decompress implements Codec.
func (c *bloscCodec) Decompress(data []byte) ([]byte, error) {
	if len(data) < 16 || string(data[:4]) != bloscMagic {
		return nil, fmt.Errorf("compress: not a blosc-sim stream")
	}
	total := binary.LittleEndian.Uint64(data[4:12])
	typeSize := int(binary.LittleEndian.Uint32(data[12:16]))
	pos := 16
	out := make([]byte, 0, total)
	for uint64(len(out)) < total {
		if pos+8 > len(data) {
			return nil, fmt.Errorf("compress: truncated blosc-sim block header")
		}
		rawLen := int(binary.LittleEndian.Uint32(data[pos:]))
		v := binary.LittleEndian.Uint32(data[pos+4:])
		stored := v&(1<<31) != 0
		compLen := int(v &^ (1 << 31))
		pos += 8
		if pos+compLen > len(data) {
			return nil, fmt.Errorf("compress: truncated blosc-sim block")
		}
		var block []byte
		if stored {
			block = data[pos : pos+compLen]
		} else {
			fr := flate.NewReader(bytes.NewReader(data[pos : pos+compLen]))
			var err error
			block, err = io.ReadAll(fr)
			fr.Close()
			if err != nil {
				return nil, fmt.Errorf("compress: blosc-sim inflate: %w", err)
			}
		}
		if len(block) != rawLen {
			return nil, fmt.Errorf("compress: blosc-sim block length mismatch")
		}
		out = append(out, unshuffle(block, typeSize)...)
		pos += compLen
	}
	return out, nil
}
