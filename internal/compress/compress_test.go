package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"picmcio/internal/xrand"
)

// picPayload builds a buffer shaped like BIT1 particle data: float64
// positions and Maxwellian velocities — smooth, correlated values that
// shuffle-based codecs exploit.
func picPayload(n int, seed uint64) []byte {
	rng := xrand.New(seed)
	buf := make([]byte, 0, n*8)
	x := 0.0
	var scratch [8]byte
	for i := 0; i < n; i++ {
		x += 0.001
		v := math.Sin(x)*3 + rng.NormFloat64()*0.01
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf = append(buf, scratch[:]...)
	}
	return buf
}

func codecs(t *testing.T) []Codec {
	t.Helper()
	var out []Codec
	for _, name := range Names() {
		c, err := New(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestRoundTripAllCodecs(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("hello world hello world hello world"),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("abc"), 5000),
		picPayload(4096, 1),
	}
	for _, c := range codecs(t) {
		for i, in := range inputs {
			comp := c.Compress(in)
			got, err := c.Decompress(comp)
			if err != nil {
				t.Fatalf("%s input %d: %v", c.Name(), i, err)
			}
			if !bytes.Equal(got, in) {
				t.Fatalf("%s input %d: round trip mismatch (%d vs %d bytes)", c.Name(), i, len(got), len(in))
			}
		}
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	for _, name := range []string{"blosc", "bzip2"} {
		c, _ := New(name, 8)
		f := func(data []byte) bool {
			got, err := c.Decompress(c.Compress(data))
			return err == nil && bytes.Equal(got, data)
		}
		cfg := &quick.Config{MaxCount: 50}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPICPayloadCompresses(t *testing.T) {
	// On raw float64 particle data the shuffling codec compresses well
	// while bzip2 barely reduces it — exactly the Table II observation
	// (bzip2+1AGGR ≈ uncompressed sizes, Blosc ≈ 11% smaller).
	payload := picPayload(1<<15, 7)
	blosc, _ := New("blosc", 8)
	bz, _ := New("bzip2", 8)
	rb, rz := Ratio(blosc, payload), Ratio(bz, payload)
	t.Logf("blosc ratio %.3f, bzip2 ratio %.3f", rb, rz)
	if rb >= 0.92 {
		t.Errorf("blosc ratio %.3f on PIC payload — should compress", rb)
	}
	if rz >= 1.05 {
		t.Errorf("bzip2 ratio %.3f — should not expand badly", rz)
	}
	if rb >= rz {
		t.Errorf("blosc (%.3f) should beat bzip2 (%.3f) on float64 PIC data", rb, rz)
	}
}

func TestBzip2BeatsBloscOnRatio(t *testing.T) {
	// bzip2 is the "high-quality data compressor" of the paper; blosc
	// trades ratio for speed. On text-like data bzip2 must win.
	payload := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog 0123456789 "), 2000)
	blosc, _ := New("blosc", 1)
	bz, _ := New("bzip2", 1)
	rb, rz := Ratio(blosc, payload), Ratio(bz, payload)
	if rz >= rb {
		t.Fatalf("bzip2 ratio %.4f not better than blosc %.4f", rz, rb)
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	f := func(data []byte, tsRaw uint8) bool {
		ts := int(tsRaw%16) + 1
		out := unshuffle(shuffle(data, ts), ts)
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleGroupsLanes(t *testing.T) {
	// Elements [1,2][1,2][1,2] with typeSize 2 shuffle to 111222.
	in := []byte{1, 2, 1, 2, 1, 2}
	want := []byte{1, 1, 1, 2, 2, 2}
	if got := shuffle(in, 2); !bytes.Equal(got, want) {
		t.Fatalf("shuffle=%v, want %v", got, want)
	}
}

func TestBWTRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		bwt, primary := bwtForward(data)
		got, err := bwtInverse(bwt, primary)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBWTKnownVector(t *testing.T) {
	// Classic example: BWT of "banana" (cyclic) is "nnbaaa" with primary 3.
	bwt, primary := bwtForward([]byte("banana"))
	got, err := bwtInverse(bwt, primary)
	if err != nil || string(got) != "banana" {
		t.Fatalf("bwt=%q primary=%d inverse=%q err=%v", bwt, primary, got, err)
	}
}

func TestMTFRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(mtfInverse(mtfForward(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMTFFrontLoading(t *testing.T) {
	// Runs of the same byte become runs of zeros after the first hit.
	out := mtfForward([]byte{5, 5, 5, 5})
	if out[1] != 0 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("mtf=%v", out)
	}
}

func TestZRLERoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := zrleDecode(zrleEncode(data), len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZRLECompactsZeroRuns(t *testing.T) {
	in := make([]byte, 10000) // all zeros
	syms := zrleEncode(in)
	if len(syms) > 20 {
		t.Fatalf("10k zero bytes encoded as %d symbols", len(syms))
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		syms := make([]uint16, len(raw))
		for i, b := range raw {
			syms[i] = uint16(b) % 300 % zrleAlphabet
		}
		lens, stream := huffEncode(syms, zrleAlphabet)
		got, err := huffDecode(lens, stream, len(syms))
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	syms := []uint16{42, 42, 42}
	lens, stream := huffEncode(syms, 256)
	got, err := huffDecode(lens, stream, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s != 42 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestDecompressRejectsJunk(t *testing.T) {
	for _, name := range []string{"blosc", "bzip2"} {
		c, _ := New(name, 8)
		if _, err := c.Decompress([]byte("garbage data here")); err == nil {
			t.Errorf("%s accepted junk", name)
		}
	}
}

func TestUnknownCodecRejected(t *testing.T) {
	if _, err := New("zstd", 8); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestCostModel(t *testing.T) {
	blosc := CostOf("blosc")
	bz := CostOf("bzip2")
	if blosc.CompressTime(1<<20) >= bz.CompressTime(1<<20) {
		t.Fatal("blosc should be much faster than bzip2")
	}
	none := CostOf("none")
	if none.CompressTime(1<<30) != 0 {
		t.Fatal("none codec must be free")
	}
	if bz.CompressTime(0) != 0 || bz.DecompressTime(-5) != 0 {
		t.Fatal("degenerate sizes must cost zero")
	}
}

func BenchmarkBloscCompressPIC(b *testing.B) {
	payload := picPayload(1<<16, 3)
	c, _ := New("blosc", 8)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(payload)
	}
}

func BenchmarkBzip2CompressPIC(b *testing.B) {
	payload := picPayload(1<<14, 3)
	c, _ := New("bzip2", 8)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(payload)
	}
}
