package compress

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// bzip2Codec is a bzip2-style block compressor: per block it applies the
// Burrows-Wheeler transform, move-to-front coding, zero-run-length coding
// and canonical Huffman entropy coding — the same pipeline as bzip2,
// in a private container format (the paper only relies on bzip2's ratio
// and speed class, not on its bitstream).
type bzip2Codec struct {
	blockSize int
}

// newBzip2 returns the codec with bzip2's default 900 KiB blocks scaled by
// level (1..9 → 100 KiB .. 900 KiB).
func newBzip2(level int) *bzip2Codec {
	if level < 1 {
		level = 1
	}
	if level > 9 {
		level = 9
	}
	return &bzip2Codec{blockSize: level * 100_000}
}

// Name implements Codec.
func (c *bzip2Codec) Name() string { return "bzip2" }

const bzMagic = "BZgo"

// Compress implements Codec.
func (c *bzip2Codec) Compress(data []byte) []byte {
	out := make([]byte, 0, len(data)/2+64)
	out = append(out, bzMagic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	out = append(out, hdr[:]...)
	for off := 0; off < len(data); off += c.blockSize {
		end := off + c.blockSize
		if end > len(data) {
			end = len(data)
		}
		out = appendBlock(out, data[off:end])
	}
	if len(data) == 0 {
		return out
	}
	return out
}

func appendBlock(out []byte, block []byte) []byte {
	bwt, primary := bwtForward(block)
	mtf := mtfForward(bwt)
	syms := zrleEncode(mtf)
	lens, stream := huffEncode(syms, zrleAlphabet)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(block)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(primary))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(syms)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(stream)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(lens)))
	out = append(out, hdr[:]...)
	out = append(out, lens...)
	out = append(out, stream...)
	return out
}

// Decompress implements Codec.
func (c *bzip2Codec) Decompress(data []byte) ([]byte, error) {
	if len(data) < len(bzMagic)+8 || string(data[:4]) != bzMagic {
		return nil, fmt.Errorf("compress: not a bzip2-sim stream")
	}
	total := binary.LittleEndian.Uint64(data[4:12])
	pos := 12
	out := make([]byte, 0, total)
	for uint64(len(out)) < total {
		if pos+20 > len(data) {
			return nil, fmt.Errorf("compress: truncated bzip2-sim block header")
		}
		rawLen := int(binary.LittleEndian.Uint32(data[pos:]))
		primary := int(binary.LittleEndian.Uint32(data[pos+4:]))
		nsyms := int(binary.LittleEndian.Uint32(data[pos+8:]))
		streamLen := int(binary.LittleEndian.Uint32(data[pos+12:]))
		lensLen := int(binary.LittleEndian.Uint32(data[pos+16:]))
		pos += 20
		if pos+lensLen+streamLen > len(data) {
			return nil, fmt.Errorf("compress: truncated bzip2-sim block")
		}
		lens := data[pos : pos+lensLen]
		pos += lensLen
		stream := data[pos : pos+streamLen]
		pos += streamLen
		syms, err := huffDecode(lens, stream, nsyms)
		if err != nil {
			return nil, err
		}
		mtf, err := zrleDecode(syms, rawLen)
		if err != nil {
			return nil, err
		}
		bwt := mtfInverse(mtf)
		block, err := bwtInverse(bwt, primary)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
	}
	if uint64(len(out)) != total {
		return nil, fmt.Errorf("compress: bzip2-sim length mismatch: %d != %d", len(out), total)
	}
	return out, nil
}

// bwtForward computes the Burrows-Wheeler transform of block, returning
// the transformed bytes and the index of the original rotation. Rotation
// order is computed by prefix doubling in O(n log² n).
func bwtForward(block []byte) ([]byte, int) {
	n := len(block)
	if n == 0 {
		return nil, 0
	}
	rank := make([]int, n)
	tmp := make([]int, n)
	sa := make([]int, n)
	for i := 0; i < n; i++ {
		sa[i] = i
		rank[i] = int(block[i])
	}
	// Prefix doubling; k is capped at n because rotations of a periodic
	// block can be genuinely identical (e.g. an all-zero block), in which
	// case ranks never become distinct and any tie order is valid.
	for k := 1; k < n; k <<= 1 {
		key := func(i int) (int, int) { return rank[i], rank[(i+k)%n] }
		sort.Slice(sa, func(a, b int) bool {
			ra, rb := key(sa[a])
			sa2a, sa2b := key(sa[b])
			if ra != sa2a {
				return ra < sa2a
			}
			return rb < sa2b
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			pa, pb := key(sa[i-1])
			ca, cb := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if pa != ca || pb != cb {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == n-1 {
			break
		}
	}
	out := make([]byte, n)
	primary := 0
	for i, rot := range sa {
		out[i] = block[(rot+n-1)%n]
		if rot == 0 {
			primary = i
		}
	}
	return out, primary
}

// bwtInverse inverts the Burrows-Wheeler transform.
func bwtInverse(bwt []byte, primary int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return nil, nil
	}
	if primary < 0 || primary >= n {
		return nil, fmt.Errorf("compress: bad BWT primary index %d", primary)
	}
	// Standard LF-mapping reconstruction.
	var counts [256]int
	for _, b := range bwt {
		counts[b]++
	}
	var starts [256]int
	sum := 0
	for v := 0; v < 256; v++ {
		starts[v] = sum
		sum += counts[v]
	}
	next := make([]int, n)
	var seen [256]int
	for i, b := range bwt {
		next[starts[b]+seen[b]] = i
		seen[b]++
	}
	out := make([]byte, n)
	p := next[primary]
	for i := 0; i < n; i++ {
		out[i] = bwt[p]
		p = next[p]
	}
	return out, nil
}

// mtfForward applies move-to-front coding.
func mtfForward(data []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, b := range data {
		var j int
		for table[j] != b {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = b
	}
	return out
}

// mtfInverse inverts move-to-front coding.
func mtfInverse(data []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, idx := range data {
		b := table[idx]
		out[i] = b
		copy(table[1:int(idx)+1], table[:idx])
		table[0] = b
	}
	return out
}

// Zero-run-length symbol space: 0..255 are literal byte values shifted by
// the run symbols; symbols 256.. encode runs of zeros in a bijective
// base-2 code (RUNA/RUNB), as bzip2 does.
const (
	symRunA      = 256
	symRunB      = 257
	zrleAlphabet = 258
)

// zrleEncode converts MTF output into the RUNA/RUNB + literal symbol
// stream. Literal value v (1..255) maps to symbol v.
func zrleEncode(mtf []byte) []uint16 {
	var out []uint16
	emitRun := func(run int) {
		// Bijective base 2: digits are 1 (RUNA) and 2 (RUNB).
		for run > 0 {
			if run&1 == 1 {
				out = append(out, symRunA)
				run = (run - 1) / 2
			} else {
				out = append(out, symRunB)
				run = (run - 2) / 2
			}
		}
	}
	run := 0
	for _, b := range mtf {
		if b == 0 {
			run++
			continue
		}
		emitRun(run)
		run = 0
		out = append(out, uint16(b))
	}
	emitRun(run)
	return out
}

// zrleDecode inverts zrleEncode; n is the expected output length.
func zrleDecode(syms []uint16, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	i := 0
	for i < len(syms) {
		s := syms[i]
		if s == symRunA || s == symRunB {
			run, place := 0, 1
			for i < len(syms) && (syms[i] == symRunA || syms[i] == symRunB) {
				if syms[i] == symRunA {
					run += place
				} else {
					run += 2 * place
				}
				place *= 2
				i++
			}
			for j := 0; j < run; j++ {
				out = append(out, 0)
			}
			continue
		}
		if s > 255 {
			return nil, fmt.Errorf("compress: bad zrle symbol %d", s)
		}
		out = append(out, byte(s))
		i++
	}
	if len(out) != n {
		return nil, fmt.Errorf("compress: zrle length mismatch: %d != %d", len(out), n)
	}
	return out, nil
}
