// Package compress provides the data-reduction operators BIT1's openPMD
// integration enables on its ADIOS2 backend: a Blosc-like shuffling fast
// codec and a bzip2-style BWT codec, plus a registry and the throughput
// cost model used to charge simulated compute time for (de)compression.
//
// Both codecs are real, lossless implementations verified by round-trip
// and property tests; compression *ratios* measured on actual PIC payloads
// feed the storage-efficiency results (Table II), while the cost model
// feeds the timing results (Figs. 7–9).
package compress

import (
	"fmt"

	"picmcio/internal/sim"
)

// Codec is a lossless block compressor.
type Codec interface {
	// Name reports the registry name ("blosc", "bzip2", "none").
	Name() string
	// Compress returns the encoded form of data.
	Compress(data []byte) []byte
	// Decompress inverts Compress.
	Decompress(data []byte) ([]byte, error)
}

// noneCodec passes data through unchanged.
type noneCodec struct{}

func (noneCodec) Name() string                           { return "none" }
func (noneCodec) Compress(data []byte) []byte            { return data }
func (noneCodec) Decompress(data []byte) ([]byte, error) { return data, nil }

// New returns a codec by name. typeSize informs shuffling codecs about the
// element width (8 for float64 particle data).
func New(name string, typeSize int) (Codec, error) {
	switch name {
	case "", "none":
		return noneCodec{}, nil
	case "blosc":
		return newBlosc(typeSize), nil
	case "bzip2":
		return newBzip2(9), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// Names lists the registered codec names.
func Names() []string { return []string{"none", "blosc", "bzip2"} }

// CostModel holds the per-codec compute-throughput figures used to charge
// virtual time: bytes/second of input processed. They reflect the speed
// *classes* of the real libraries (Blosc ≈ memory bandwidth, bzip2 ≈ tens
// of MB/s).
type CostModel struct {
	CompressRate   float64 // input bytes per second
	DecompressRate float64
}

// CostOf returns the cost model for a codec name.
func CostOf(name string) CostModel {
	switch name {
	case "blosc":
		return CostModel{CompressRate: 1.8e9, DecompressRate: 3.0e9}
	case "bzip2":
		return CostModel{CompressRate: 18e6, DecompressRate: 45e6}
	default: // none
		return CostModel{CompressRate: 0, DecompressRate: 0}
	}
}

// CompressTime reports the virtual time to compress n input bytes.
func (m CostModel) CompressTime(n int64) sim.Duration {
	if m.CompressRate <= 0 || n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / m.CompressRate)
}

// DecompressTime reports the virtual time to decompress to n output bytes.
func (m CostModel) DecompressTime(n int64) sim.Duration {
	if m.DecompressRate <= 0 || n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / m.DecompressRate)
}

// Ratio measures the compression ratio (compressed/original) of codec on
// a sample payload; 1.0 for empty input.
func Ratio(c Codec, sample []byte) float64 {
	if len(sample) == 0 {
		return 1
	}
	return float64(len(c.Compress(sample))) / float64(len(sample))
}
