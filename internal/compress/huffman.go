package compress

import (
	"container/heap"
	"fmt"
	"sort"
)

// bitWriter accumulates bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nbit uint
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		take := 8 - w.nbit
		if take > n {
			take = n
		}
		w.cur = (w.cur << take) | ((v >> (n - take)) & ((1 << take) - 1))
		w.nbit += take
		n -= take
		if w.nbit == 8 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur, w.nbit = 0, 0
		}
	}
}

func (w *bitWriter) flush() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	buf  []byte
	pos  int
	cur  uint64
	nbit uint
}

func (r *bitReader) readBit() (uint64, error) {
	if r.nbit == 0 {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("compress: bitstream truncated")
		}
		r.cur = uint64(r.buf[r.pos])
		r.pos++
		r.nbit = 8
	}
	r.nbit--
	return (r.cur >> r.nbit) & 1, nil
}

// huffNode is a node of the code-construction tree.
type huffNode struct {
	sym   int
	freq  int64
	left  *huffNode
	right *huffNode
	order int // tie-breaker for determinism
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// huffCodeLengths derives canonical code lengths from symbol frequencies.
// Symbols with zero frequency get length 0 (absent).
func huffCodeLengths(freqs []int64) []uint8 {
	lens := make([]uint8, len(freqs))
	var hh huffHeap
	order := 0
	for s, f := range freqs {
		if f > 0 {
			hh = append(hh, &huffNode{sym: s, freq: f, order: order})
			order++
		}
	}
	switch len(hh) {
	case 0:
		return lens
	case 1:
		lens[hh[0].sym] = 1
		return lens
	}
	heap.Init(&hh)
	for hh.Len() > 1 {
		a := heap.Pop(&hh).(*huffNode)
		b := heap.Pop(&hh).(*huffNode)
		heap.Push(&hh, &huffNode{sym: -1, freq: a.freq + b.freq, left: a, right: b, order: order})
		order++
	}
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.left == nil {
			lens[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(hh[0], 0)
	return lens
}

// canonicalCodes assigns canonical Huffman codes given code lengths.
func canonicalCodes(lens []uint8) []uint64 {
	type sl struct {
		sym int
		l   uint8
	}
	var order []sl
	for s, l := range lens {
		if l > 0 {
			order = append(order, sl{s, l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	codes := make([]uint64, len(lens))
	var code uint64
	var prev uint8
	for _, e := range order {
		code <<= (e.l - prev)
		codes[e.sym] = code
		code++
		prev = e.l
	}
	return codes
}

// huffEncode encodes syms (values < nsyms) and returns the code-length
// table plus the packed bitstream.
func huffEncode(syms []uint16, nsyms int) (lens []uint8, stream []byte) {
	freqs := make([]int64, nsyms)
	for _, s := range syms {
		freqs[s]++
	}
	lens = huffCodeLengths(freqs)
	codes := canonicalCodes(lens)
	w := &bitWriter{}
	for _, s := range syms {
		w.writeBits(codes[s], uint(lens[s]))
	}
	return lens, w.flush()
}

// huffDecode decodes count symbols from stream using the length table.
func huffDecode(lens []uint8, stream []byte, count int) ([]uint16, error) {
	codes := canonicalCodes(lens)
	// Build a decode map from (length, code) to symbol.
	type lc struct {
		l uint8
		c uint64
	}
	dec := map[lc]uint16{}
	maxLen := uint8(0)
	for s, l := range lens {
		if l > 0 {
			dec[lc{l, codes[s]}] = uint16(s)
			if l > maxLen {
				maxLen = l
			}
		}
	}
	out := make([]uint16, 0, count)
	r := &bitReader{buf: stream}
	for len(out) < count {
		var code uint64
		var l uint8
		found := false
		for l < maxLen {
			b, err := r.readBit()
			if err != nil {
				return nil, err
			}
			code = code<<1 | b
			l++
			if s, ok := dec[lc{l, code}]; ok {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("compress: invalid huffman code")
		}
	}
	return out, nil
}
