// Package core implements the paper's primary contribution: the openPMD
// I/O adaptor for BIT1 (the writeparallel integration of §III-A/B).
//
// The adaptor follows the published recipe exactly:
//
//  1. a single Series object, rooted over all iterations, opened with the
//     global communicator and a TOML-based dynamic configuration;
//  2. per-rank local vectors that accumulate diagnostic and state data
//     between outputs (any_function_save pattern);
//  3. at save time, each rank's local extent and its offset in the global
//     extent are obtained with MPI (allreduce + exscan);
//  4. all accumulated data is flushed in a single action per iteration for
//     optimal I/O efficiency, then the iteration is closed;
//  5. iteration 0 is periodically overwritten with the latest system
//     state for checkpoint/restart.
//
// Aggregation (NumAggregators), compression (Blosc/bzip2) and Lustre
// striping are controlled through the TOML options and the file system,
// giving the tuning surface the paper's §IV explores.
package core

import (
	"fmt"

	"picmcio/internal/openpmd"
)

// Adaptor buffers per-rank data and writes it through openPMD.
type Adaptor struct {
	host   openpmd.Host
	series *openpmd.Series

	order   []string
	floats  map[string][]float64 // content-mode accumulators
	volumes map[string]int64     // volume-mode accumulators (elements)
	closed  bool
}

// NewAdaptor opens the series at path (extension selects the backend;
// .bp4 for the paper's configuration) with the given TOML options.
func NewAdaptor(h openpmd.Host, path, tomlOptions string) (*Adaptor, error) {
	s, err := openpmd.NewSeries(h, path, openpmd.AccessCreate, tomlOptions)
	if err != nil {
		return nil, err
	}
	s.SetAttribute("software", "BIT1")
	s.SetAttribute("iterationEncoding", "groupBased")
	return &Adaptor{
		host:    h,
		series:  s,
		floats:  map[string][]float64{},
		volumes: map[string]int64{},
	}, nil
}

// Series exposes the underlying openPMD series.
func (a *Adaptor) Series() *openpmd.Series { return a.series }

func (a *Adaptor) track(name string) {
	if _, f := a.floats[name]; f {
		return
	}
	if _, v := a.volumes[name]; v {
		return
	}
	a.order = append(a.order, name)
}

// AccumulateFloats appends values to the named record component's local
// vector (content mode) — the any_function_save pattern: each rank builds
// a local vector, appended to the global vector kept until flush.
func (a *Adaptor) AccumulateFloats(name string, vals []float64) {
	a.track(name)
	a.floats[name] = append(a.floats[name], vals...)
}

// AccumulateVolume adds elems float64 elements to the named component in
// volume mode (sizes only) — used for at-scale runs where payload bytes
// are modelled, not materialized.
func (a *Adaptor) AccumulateVolume(name string, elems int64) {
	a.track(name)
	a.volumes[name] += elems
}

// PendingVars reports how many record components have accumulated data.
func (a *Adaptor) PendingVars() int { return len(a.order) }

// SaveIteration writes all accumulated vectors as iteration id and clears
// them. Offsets in each component's global extent are computed with MPI
// exscan, the store is staged per component, flushed once, and the
// iteration is closed. It is collective.
func (a *Adaptor) SaveIteration(id uint64) error {
	if a.closed {
		return fmt.Errorf("core: adaptor is closed")
	}
	it, err := a.series.WriteIteration(id)
	if err != nil {
		return err
	}
	comm := a.host.Comm
	// One collective computes every component's offset and global extent
	// (the MPI step of §III-B), instead of two per component.
	locals := make([]int64, len(a.order))
	for i, name := range a.order {
		if data := a.floats[name]; data != nil {
			locals[i] = int64(len(data))
		} else {
			locals[i] = a.volumes[name]
		}
	}
	offsets, totals := comm.ExscanVecI64(locals)
	for i, name := range a.order {
		data := a.floats[name]
		local, offset, global := locals[i], offsets[i], totals[i]
		if global == 0 {
			continue
		}
		rc, err := componentFor(it, name)
		if err != nil {
			return err
		}
		if err := rc.ResetDataset(openpmd.Dataset{Type: openpmd.Float64, Extent: []uint64{uint64(global)}}); err != nil {
			return err
		}
		if local > 0 {
			if err := rc.StoreChunk([]uint64{uint64(offset)}, []uint64{uint64(local)}, data); err != nil {
				return err
			}
		} else {
			// Zero-extent ranks still participate in the collective
			// close below; nothing to store.
			_ = rc
		}
	}
	if err := a.series.Flush(); err != nil {
		return err
	}
	if err := it.Close(); err != nil {
		return err
	}
	// Clear global vectors after the flush, as the paper prescribes.
	a.floats = map[string][]float64{}
	a.volumes = map[string]int64{}
	a.order = a.order[:0]
	return nil
}

// componentFor resolves a dotted component name "species/record/comp" or
// "meshes/name" into the iteration's record component.
func componentFor(it *openpmd.Iteration, name string) (*openpmd.RecordComponent, error) {
	parts := splitName(name)
	switch len(parts) {
	case 2:
		if parts[0] == "meshes" {
			return it.Meshes(parts[1]).Component(openpmd.Scalar), nil
		}
		return it.Particles(parts[0]).Record(parts[1]).Component(openpmd.Scalar), nil
	case 3:
		return it.Particles(parts[0]).Record(parts[1]).Component(parts[2]), nil
	default:
		return nil, fmt.Errorf("core: bad component name %q (want species/record[/component] or meshes/name)", name)
	}
}

func splitName(name string) []string {
	var out []string
	start := 0
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			out = append(out, name[start:i])
			start = i + 1
		}
	}
	return append(out, name[start:])
}

// Close closes the series. It is collective.
func (a *Adaptor) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	return a.series.Close()
}
