package core

import (
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

type rig struct {
	k  *sim.Kernel
	fs *lustre.FS
	w  *mpisim.World
}

func newRig(ranks int) *rig {
	k := sim.NewKernel()
	return &rig{k: k, fs: lustre.New(k, lustre.DefaultParams()),
		w: mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(1e-6, 1.0/10e9))}
}

func (rg *rig) host(r *mpisim.Rank) openpmd.Host {
	return openpmd.Host{Proc: r.Proc, Env: &posix.Env{FS: rg.fs, Client: &pfs.Client{}, Rank: r.ID}, Comm: r.Comm}
}

func TestAdaptorAccumulateAndSave(t *testing.T) {
	rg := newRig(4)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, err := NewAdaptor(rg.host(r), "/io/adapt.bp4", `
[adios2.engine.parameters]
NumAggregators = "1"
`)
		if err != nil {
			t.Error(err)
			return
		}
		// Variable-length per-rank vectors: rank i holds i+1 values, the
		// exscan-offset case BIT1 hits with unequal particle counts.
		vals := make([]float64, r.ID+1)
		for i := range vals {
			vals[i] = float64(100*r.ID + i)
		}
		ad.AccumulateFloats("e/position/x", vals[:1])
		ad.AccumulateFloats("e/position/x", vals[1:]) // appends, any_function_save style
		if ad.PendingVars() != 1 {
			t.Errorf("pending=%d", ad.PendingVars())
		}
		if err := ad.SaveIteration(0); err != nil {
			t.Error(err)
			return
		}
		if ad.PendingVars() != 0 {
			t.Error("vectors not cleared after save")
		}
		if err := ad.Close(); err != nil {
			t.Error(err)
		}
	})
	// Read back: global extent 1+2+3+4 = 10, rank-ordered.
	w2 := mpisim.NewWorld(rg.k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		s, err := openpmd.NewSeries(rg.host(r), "/io/adapt.bp4", openpmd.AccessReadOnly, "")
		if err != nil {
			t.Error(err)
			return
		}
		it, _ := s.ReadIteration(0)
		data, shape, err := it.Particles("e").Record("position").Component("x").Load()
		if err != nil {
			t.Error(err)
			return
		}
		if shape[0] != 10 {
			t.Errorf("global extent=%v, want 10", shape)
		}
		want := []float64{0, 100, 101, 200, 201, 202, 300, 301, 302, 303}
		for i := range want {
			if data[i] != want[i] {
				t.Errorf("data=%v, want %v", data, want)
				return
			}
		}
		s.Close()
	})
}

func TestAdaptorVolumeMode(t *testing.T) {
	rg := newRig(8)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, err := NewAdaptor(rg.host(r), "/v.bp4", `
[adios2.engine.parameters]
NumAggregators = "2"
Profile = "off"
`)
		if err != nil {
			t.Error(err)
			return
		}
		ad.AccumulateVolume("D+/position/x", 1000)
		ad.AccumulateVolume("D+/momentum/x", 1000)
		if err := ad.SaveIteration(0); err != nil {
			t.Error(err)
			return
		}
		if err := ad.Close(); err != nil {
			t.Error(err)
		}
	})
	var data int64
	rg.fs.Namespace().WalkFiles("/v.bp4", func(p string, n *pfs.Node) {
		if len(p) > 5 && p[len(p)-6:len(p)-1] == "data." {
			data += n.Size
		}
	})
	want := int64(8 * 2 * (1000*8 + 64))
	if data != want {
		t.Fatalf("volume payload=%d, want %d", data, want)
	}
}

func TestAdaptorMeshComponent(t *testing.T) {
	rg := newRig(2)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, err := NewAdaptor(rg.host(r), "/m.json", "")
		if err != nil {
			t.Error(err)
			return
		}
		ad.AccumulateFloats("meshes/density", []float64{float64(r.ID), float64(r.ID)})
		if err := ad.SaveIteration(5); err != nil {
			t.Error(err)
			return
		}
		ad.Close()
	})
	if _, err := rg.fs.Namespace().Lookup("/m.json/data/5.json"); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptorRepeatedIterationZero(t *testing.T) {
	// The checkpoint pattern: save iteration 0 many times; payload stays
	// bounded at one snapshot.
	rg := newRig(2)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, err := NewAdaptor(rg.host(r), "/ck.bp4", `
[adios2.engine.parameters]
NumAggregators = "1"
Profile = "off"
`)
		if err != nil {
			t.Error(err)
			return
		}
		for rep := 0; rep < 6; rep++ {
			ad.AccumulateVolume("e/position/x", 500)
			if err := ad.SaveIteration(0); err != nil {
				t.Error(err)
				return
			}
		}
		ad.Close()
	})
	n, err := rg.fs.Namespace().Lookup("/ck.bp4/data.0")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * (500*8 + 64))
	if n.Size != want {
		t.Fatalf("data.0=%d after 6 overwrites, want %d", n.Size, want)
	}
}

func TestAdaptorBadComponentName(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, _ := NewAdaptor(rg.host(r), "/b.bp4", "[adios2.engine.parameters]\nProfile = \"off\"")
		ad.AccumulateFloats("way/too/deep/name", []float64{1})
		if err := ad.SaveIteration(0); err == nil {
			t.Error("4-part name accepted")
		}
		ad.Close()
	})
}

func TestAdaptorClosedRejectsSave(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, _ := NewAdaptor(rg.host(r), "/c.bp4", "[adios2.engine.parameters]\nProfile = \"off\"")
		ad.Close()
		if err := ad.SaveIteration(0); err == nil {
			t.Error("save after close accepted")
		}
		if err := ad.Close(); err != nil {
			t.Error("double close should be a no-op")
		}
	})
}

func TestTOMLAggregatorsReachEngine(t *testing.T) {
	rg := newRig(8)
	rg.w.Run(func(r *mpisim.Rank) {
		ad, err := NewAdaptor(rg.host(r), "/agg.bp4", `
[adios2.engine.parameters]
NumAggregators = "4"
Profile = "off"
`)
		if err != nil {
			t.Error(err)
			return
		}
		ad.AccumulateVolume("e/position/x", 10)
		ad.SaveIteration(0)
		ad.Close()
	})
	nData := 0
	rg.fs.Namespace().WalkFiles("/agg.bp4", func(p string, n *pfs.Node) {
		if len(p) >= 6 && p[:6] == "/agg.b" && p[len(p)-6:len(p)-1] == "data." {
			nData++
		}
	})
	if nData != 4 {
		t.Fatalf("subfiles=%d, want 4", nData)
	}
}
