package ior

import (
	"strings"
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

func run(t *testing.T, cfg Config, ranks int) (*Result, *lustre.FS) {
	t.Helper()
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(1e-6, 1.0/10e9))
	res, err := Run(cfg, w, func(r *mpisim.Rank) *posix.Env {
		return &posix.Env{FS: fs, Client: &pfs.Client{}, Rank: r.ID}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, fs
}

func TestFilePerProcCreatesNFiles(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.FilePerProc = true
	cfg.BlockSize = 4 << 20
	res, fs := run(t, cfg, 8)
	if res.FilesCreated != 8 {
		t.Fatalf("files=%d", res.FilesCreated)
	}
	n := 0
	fs.Namespace().WalkFiles("/ior", func(p string, node *pfs.Node) {
		n++
		if node.Size != 4<<20 {
			t.Errorf("%s size=%d", p, node.Size)
		}
	})
	if n != 8 {
		t.Fatalf("on-disk files=%d", n)
	}
	if res.WriteBandwidth <= 0 || res.WriteBytes != 8*4<<20 {
		t.Fatalf("result=%+v", res)
	}
}

func TestSharedFileSingleFile(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.BlockSize = 1 << 20
	res, fs := run(t, cfg, 8)
	if res.FilesCreated != 1 {
		t.Fatalf("files=%d", res.FilesCreated)
	}
	node, err := fs.Namespace().Lookup("/ior/testFile")
	if err != nil {
		t.Fatal(err)
	}
	if node.Size != 8<<20 {
		t.Fatalf("shared file size=%d, want 8 MiB", node.Size)
	}
}

func TestReadBackWithReorder(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.FilePerProc = true
	cfg.BlockSize = 1 << 20
	cfg.ReadBack = true
	res, _ := run(t, cfg, 4)
	if res.ReadBytes != res.WriteBytes || res.ReadBandwidth <= 0 {
		t.Fatalf("read result=%+v", res)
	}
}

func TestFPPBeatsSharedOnWrite(t *testing.T) {
	// The Fig. 4 ordering: file-per-process avoids shared-file
	// serialization and single-layout limits.
	shared := DefaultConfig(16)
	shared.BlockSize = 8 << 20
	fpp := shared
	fpp.FilePerProc = true
	rs, _ := run(t, shared, 16)
	rf, _ := run(t, fpp, 16)
	if rf.WriteBandwidth <= rs.WriteBandwidth {
		t.Fatalf("FPP %.3g not above shared %.3g", rf.WriteBandwidth, rs.WriteBandwidth)
	}
}

func TestCommandLineRendering(t *testing.T) {
	cfg := DefaultConfig(25600)
	cfg.FilePerProc = true
	got := cfg.CommandLine()
	want := "srun -n 25600 ior -N=25600 -a POSIX -F -C -e"
	if got != want {
		t.Fatalf("cmdline=%q, want %q", got, want)
	}
	cfg.FilePerProc = false
	if !strings.Contains(cfg.CommandLine(), "-a POSIX -C -e") {
		t.Fatalf("shared cmdline=%q", cfg.CommandLine())
	}
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.API = HDF5
	if err := cfg.Validate(); err == nil {
		t.Error("HDF5 accepted")
	}
	cfg = DefaultConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Error("0 tasks accepted")
	}
	cfg = DefaultConfig(2)
	cfg.TransferSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("0 transfer accepted")
	}
}
