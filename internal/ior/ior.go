// Package ior reimplements the IOR parallel I/O benchmark semantics the
// paper uses as its upper-bound reference (Table I / Fig. 4): N tasks
// write (and optionally read back) block-sized files through the POSIX
// API, either file-per-process (-F) or to a single shared file, with
// optional fsync-on-close (-e) and task reordering for readback (-C).
package ior

import (
	"fmt"
	"strings"

	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// API selects the I/O interface. Only POSIX is implemented; the constant
// set mirrors IOR's -a option values.
type API string

// Supported and recognized APIs.
const (
	POSIX API = "POSIX"
	MPIIO API = "MPIIO"
	HDF5  API = "HDF5"
)

// Config mirrors the IOR command-line options used in Table I.
type Config struct {
	NumTasks     int   // -N
	API          API   // -a
	FilePerProc  bool  // -F
	ReorderTasks bool  // -C (read back rank n+1's data)
	Fsync        bool  // -e
	TransferSize int64 // -t
	BlockSize    int64 // -b (bytes written per task)
	ReadBack     bool  // perform the read phase
	TestDir      string
}

// DefaultConfig mirrors `ior -a POSIX -C -e` with 1 MiB transfers and a
// 16 MiB block per task.
func DefaultConfig(tasks int) Config {
	return Config{
		NumTasks:     tasks,
		API:          POSIX,
		ReorderTasks: true,
		Fsync:        true,
		TransferSize: 1 << 20,
		BlockSize:    16 << 20,
		TestDir:      "/ior",
	}
}

// CommandLine renders the equivalent IOR invocation (Table I style).
func (c Config) CommandLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "srun -n %d ior -N=%d -a %s", c.NumTasks, c.NumTasks, c.API)
	if c.FilePerProc {
		b.WriteString(" -F")
	}
	if c.ReorderTasks {
		b.WriteString(" -C")
	}
	if c.Fsync {
		b.WriteString(" -e")
	}
	return b.String()
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.API != POSIX {
		return fmt.Errorf("ior: API %s not supported (POSIX only)", c.API)
	}
	if c.NumTasks < 1 {
		return fmt.Errorf("ior: need at least one task")
	}
	if c.TransferSize < 1 || c.BlockSize < 1 {
		return fmt.Errorf("ior: transfer and block sizes must be positive")
	}
	return nil
}

// Result reports a run's aggregate performance, matching IOR's summary.
type Result struct {
	WriteBytes     int64
	WriteSeconds   float64
	WriteBandwidth float64 // bytes/second
	ReadBytes      int64
	ReadSeconds    float64
	ReadBandwidth  float64
	FilesCreated   int
}

// EnvFor builds the per-rank POSIX environment; supplied by the caller so
// IOR shares the machinery (clients, monitors) of the other experiments.
type EnvFor func(r *mpisim.Rank) *posix.Env

// Run executes the benchmark on an existing world and returns the result
// (valid on every rank after the final barrier).
func Run(cfg Config, w *mpisim.World, envFor EnvFor) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	w.Run(func(r *mpisim.Rank) {
		p, env := r.Proc, envFor(r)
		if r.ID == 0 {
			if err := env.MkdirAll(p, cfg.TestDir); err != nil {
				return
			}
		}
		r.Comm.Barrier()

		path := pfs.Join(cfg.TestDir, "testFile")
		if cfg.FilePerProc {
			path = pfs.Join(cfg.TestDir, fmt.Sprintf("testFile.%08d", r.ID))
		}

		// Write phase.
		t0 := p.Now()
		var fd *posix.FD
		var err error
		if cfg.FilePerProc || r.ID == 0 {
			fd, err = env.Create(p, path)
		} else {
			r.Comm.Barrier() // shared file: wait for rank 0's create
			fd, err = env.Open(p, path)
		}
		if cfg.FilePerProc {
			r.Comm.Barrier() // match the shared-file barrier
		} else if r.ID == 0 {
			r.Comm.Barrier()
		}
		if err != nil {
			return
		}
		base := int64(0)
		if !cfg.FilePerProc {
			base = int64(r.ID) * cfg.BlockSize
		}
		for off := int64(0); off < cfg.BlockSize; off += cfg.TransferSize {
			n := cfg.TransferSize
			if off+n > cfg.BlockSize {
				n = cfg.BlockSize - off
			}
			fd.Pwrite(p, base+off, n, nil)
		}
		if cfg.Fsync {
			fd.Fsync(p)
		}
		fd.Close(p)
		r.Comm.Barrier()
		writeEnd := p.Now()

		// Read phase (optionally reordered so ranks do not read their
		// own cached data — IOR's -C).
		var readEnd sim.Time
		if cfg.ReadBack {
			readID := r.ID
			if cfg.ReorderTasks {
				readID = (r.ID + 1) % cfg.NumTasks
			}
			rpath := path
			if cfg.FilePerProc {
				rpath = pfs.Join(cfg.TestDir, fmt.Sprintf("testFile.%08d", readID))
			}
			rfd, err := env.Open(p, rpath)
			if err != nil {
				return
			}
			rbase := int64(0)
			if !cfg.FilePerProc {
				rbase = int64(readID) * cfg.BlockSize
			}
			for off := int64(0); off < cfg.BlockSize; off += cfg.TransferSize {
				n := cfg.TransferSize
				if off+n > cfg.BlockSize {
					n = cfg.BlockSize - off
				}
				rfd.Pread(p, rbase+off, n)
			}
			rfd.Close(p)
			r.Comm.Barrier()
			readEnd = p.Now()
		}

		if r.ID == 0 {
			res.WriteBytes = cfg.BlockSize * int64(cfg.NumTasks)
			res.WriteSeconds = float64(writeEnd - t0)
			if res.WriteSeconds > 0 {
				res.WriteBandwidth = float64(res.WriteBytes) / res.WriteSeconds
			}
			if cfg.ReadBack {
				res.ReadBytes = res.WriteBytes
				res.ReadSeconds = float64(readEnd - writeEnd)
				if res.ReadSeconds > 0 {
					res.ReadBandwidth = float64(res.ReadBytes) / res.ReadSeconds
				}
			}
			if cfg.FilePerProc {
				res.FilesCreated = cfg.NumTasks
			} else {
				res.FilesCreated = 1
			}
		}
	})
	return res, nil
}
