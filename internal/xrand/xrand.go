// Package xrand provides a small deterministic, splittable random number
// generator (SplitMix64 seeding a xoshiro256** core). Every stochastic
// element of the simulation — Monte-Carlo collisions, CephFS placement
// jitter, Vega variability — derives its stream from a run seed through
// Split, so experiments are bit-reproducible and independent sub-streams
// never correlate.
package xrand

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances x and returns a well-mixed 64-bit value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// SeedAt derives the seed of sweep trial index from a run's base seed:
// two SplitMix64 steps keyed by base and index. Trial seeds depend only
// on (base, index), never on evaluation order, so a parallel parameter
// sweep draws bit-identical streams to a serial one; and because
// SplitMix64 is a bijective mixer, distinct indices under one base never
// collide into the same seed.
func SeedAt(base, index uint64) uint64 {
	x := base
	h := splitmix64(&x)
	x = h ^ (index+1)*0xd1342543de82ef95
	return splitmix64(&x)
}

// Split derives an independent generator from this one, keyed by label.
// Splitting does not perturb the parent stream.
func (r *RNG) Split(label uint64) *RNG {
	x := r.s[0] ^ (r.s[2] * 0x9e3779b97f4a7c15) ^ (label * 0xd1342543de82ef95)
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed deviate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Maxwellian returns a velocity component drawn from a Maxwellian with
// thermal speed vth (standard deviation of each component).
func (r *RNG) Maxwellian(vth float64) float64 {
	return vth * r.NormFloat64()
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
