package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	// Parent stream must be unperturbed by splitting.
	ref := New(7)
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatal("Split perturbed parent stream")
		}
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits correlate on first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean=%v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean=%v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance=%v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean=%v, want ~1", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("only saw %d of 7 values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxwellianVariance(t *testing.T) {
	r := New(23)
	const n = 100000
	const vth = 3.5
	var sum2 float64
	for i := 0; i < n; i++ {
		v := r.Maxwellian(vth)
		sum2 += v * v
	}
	got := math.Sqrt(sum2 / n)
	if math.Abs(got-vth)/vth > 0.02 {
		t.Fatalf("thermal speed=%v, want ~%v", got, vth)
	}
}

func TestSeedAt(t *testing.T) {
	// Deterministic and base-dependent.
	if SeedAt(1, 0) != SeedAt(1, 0) {
		t.Fatal("SeedAt not deterministic")
	}
	if SeedAt(1, 0) == SeedAt(2, 0) {
		t.Error("SeedAt ignores the base seed")
	}
	// Distinct across indexes under one base (SplitMix64 is bijective,
	// so collisions would indicate a broken mix): check a window.
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		s := SeedAt(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("SeedAt(42,%d) == SeedAt(42,%d)", i, j)
		}
		seen[s] = i
	}
	// Derived seeds must yield decorrelated streams: adjacent trial
	// indexes should not produce correlated first draws.
	var same int
	for i := uint64(0); i < 64; i++ {
		a := New(SeedAt(9, i)).Uint64()
		b := New(SeedAt(9, i+1)).Uint64()
		if a == b {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d adjacent trial streams started identically", same)
	}
}
