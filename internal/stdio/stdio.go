// Package stdio models the C standard-I/O buffered layer (fopen/fprintf/
// fwrite/fflush/fclose) that BIT1's original output path uses. Writes
// accumulate in a user-space buffer (default 4 KiB, like glibc) and are
// flushed to the POSIX layer when full — which is precisely why the
// original BIT1 I/O issues storms of small writes and per-snapshot
// metadata operations at scale.
package stdio

import (
	"fmt"

	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// DefaultBufSize is the stdio buffer size (glibc BUFSIZ-like).
const DefaultBufSize = 4096

// File is a buffered stream over a POSIX descriptor.
type File struct {
	fd       *posix.FD
	buf      int64 // bytes currently buffered
	bufSize  int64
	content  []byte       // retained only in content mode
	volume   bool         // true once any volume-mode write happened
	overhead sim.Duration // synchronous client-side cost per flush
}

// Fopen opens path with C-style modes "w" (truncate), "a" (append) or
// "r" (read). Only the writing modes buffer.
func Fopen(p *sim.Proc, env *posix.Env, path, mode string) (*File, error) {
	var fd *posix.FD
	var err error
	switch mode {
	case "w":
		fd, err = env.Create(p, path)
	case "a":
		fd, err = env.OpenAppend(p, path)
	case "r":
		fd, err = env.Open(p, path)
	default:
		return nil, fmt.Errorf("stdio: unsupported mode %q", mode)
	}
	if err != nil {
		return nil, err
	}
	return &File{fd: fd, bufSize: DefaultBufSize}, nil
}

// SetBufSize overrides the buffer size (setvbuf). Must be called before
// the first write; n <= 0 means unbuffered.
func (f *File) SetBufSize(n int64) {
	if n <= 0 {
		n = 1
	}
	f.bufSize = n
}

// SetWriteOverhead charges a fixed synchronous client-side cost per
// buffer flush: the formatting + VFS + synchronous-RPC round trip that
// makes BIT1's original stdio output slow even on an idle file system.
func (f *File) SetWriteOverhead(d sim.Duration) { f.overhead = d }

// Fwrite appends n bytes to the stream. data may be nil (volume mode) or
// must have length n. Buffered data spills to POSIX in bufSize chunks.
func (f *File) Fwrite(p *sim.Proc, n int64, data []byte) {
	if data != nil {
		f.content = append(f.content, data...)
	} else {
		f.volume = true
	}
	f.buf += n
	for f.buf >= f.bufSize {
		f.flushChunk(p, f.bufSize)
	}
}

// Fprintf formats and appends text to the stream (content mode).
func (f *File) Fprintf(p *sim.Proc, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	f.Fwrite(p, int64(len(s)), []byte(s))
}

// flushChunk writes exactly n buffered bytes through POSIX.
func (f *File) flushChunk(p *sim.Proc, n int64) {
	if n <= 0 || f.buf <= 0 {
		return
	}
	if f.overhead > 0 {
		p.Sleep(f.overhead)
	}
	if n > f.buf {
		n = f.buf
	}
	var payload []byte
	if !f.volume && int64(len(f.content)) >= n {
		payload = f.content[:n:n]
		f.content = f.content[n:]
	} else {
		// Mixed or volume mode: drop content fidelity, keep volume.
		if int64(len(f.content)) >= n {
			f.content = f.content[n:]
		} else {
			f.content = nil
		}
	}
	f.fd.Write(p, n, payload)
	f.buf -= n
}

// Fflush drains the buffer to the POSIX layer.
func (f *File) Fflush(p *sim.Proc) {
	for f.buf > 0 {
		f.flushChunk(p, f.bufSize)
	}
}

// Fread reads up to n bytes from the current position.
func (f *File) Fread(p *sim.Proc, n int64) []byte {
	return f.fd.Read(p, n)
}

// Fclose flushes and closes the stream.
func (f *File) Fclose(p *sim.Proc) {
	f.Fflush(p)
	f.fd.Close(p)
}

// FD exposes the underlying descriptor (for fsync etc.).
func (f *File) FD() *posix.FD { return f.fd }

// Buffered reports the number of bytes currently in the stdio buffer.
func (f *File) Buffered() int64 { return f.buf }
