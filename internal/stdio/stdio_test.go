package stdio

import (
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

type countWrites struct {
	writes []int64
}

func (m *countWrites) Record(rank int, op posix.Op, path string, bytes int64, start, end sim.Time) {
	if op == posix.OpWrite {
		m.writes = append(m.writes, bytes)
	}
}

func setup(t *testing.T) (*sim.Kernel, *posix.Env, *countWrites) {
	t.Helper()
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	mon := &countWrites{}
	return k, &posix.Env{FS: fs, Client: &pfs.Client{}, Monitor: mon}, mon
}

func TestBufferingCoalescesSmallWrites(t *testing.T) {
	k, env, mon := setup(t)
	k.Spawn("r", func(p *sim.Proc) {
		f, err := Fopen(p, env, "/diag.dat", "w")
		if err != nil {
			t.Error(err)
			return
		}
		// 100 writes of 100 bytes: 10 000 bytes through a 4 KiB buffer
		// → two full 4 KiB flushes while writing, remainder at close.
		for i := 0; i < 100; i++ {
			f.Fwrite(p, 100, nil)
		}
		f.Fclose(p)
	})
	k.Run()
	if len(mon.writes) != 3 {
		t.Fatalf("POSIX writes=%v, want 3 flushes", mon.writes)
	}
	if mon.writes[0] != DefaultBufSize || mon.writes[1] != DefaultBufSize {
		t.Fatalf("flush sizes=%v", mon.writes)
	}
	var total int64
	for _, w := range mon.writes {
		total += w
	}
	if total != 10000 {
		t.Fatalf("total flushed=%d", total)
	}
}

func TestFprintfContent(t *testing.T) {
	k, env, _ := setup(t)
	var got string
	k.Spawn("r", func(p *sim.Proc) {
		f, _ := Fopen(p, env, "/t.txt", "w")
		f.Fprintf(p, "step=%d t=%.2f\n", 42, 1.5)
		f.Fclose(p)
		r, err := Fopen(p, env, "/t.txt", "r")
		if err != nil {
			t.Error(err)
			return
		}
		got = string(r.Fread(p, 1024))
		r.Fclose(p)
	})
	k.Run()
	if got != "step=42 t=1.50\n" {
		t.Fatalf("content=%q", got)
	}
}

func TestAppendMode(t *testing.T) {
	k, env, _ := setup(t)
	var size int64
	k.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			f, _ := Fopen(p, env, "/a.log", "a")
			f.Fwrite(p, 500, nil)
			f.Fclose(p)
		}
		fd, _ := env.Stat(p, "/a.log")
		size = fd.Size
	})
	k.Run()
	if size != 1500 {
		t.Fatalf("size=%d, want 1500", size)
	}
}

func TestSetBufSize(t *testing.T) {
	k, env, mon := setup(t)
	k.Spawn("r", func(p *sim.Proc) {
		f, _ := Fopen(p, env, "/b", "w")
		f.SetBufSize(1024)
		f.Fwrite(p, 4096, nil)
		f.Fclose(p)
	})
	k.Run()
	if len(mon.writes) != 4 {
		t.Fatalf("writes=%v, want 4 × 1 KiB", mon.writes)
	}
}

func TestBadModeRejected(t *testing.T) {
	k, env, _ := setup(t)
	k.Spawn("r", func(p *sim.Proc) {
		if _, err := Fopen(p, env, "/x", "rw+"); err == nil {
			t.Error("mode rw+ accepted")
		}
	})
	k.Run()
}

func TestFflushDrains(t *testing.T) {
	k, env, mon := setup(t)
	k.Spawn("r", func(p *sim.Proc) {
		f, _ := Fopen(p, env, "/f", "w")
		f.Fwrite(p, 100, nil)
		if f.Buffered() != 100 {
			t.Errorf("buffered=%d", f.Buffered())
		}
		f.Fflush(p)
		if f.Buffered() != 0 {
			t.Errorf("buffered after flush=%d", f.Buffered())
		}
		f.Fclose(p)
	})
	k.Run()
	if len(mon.writes) != 1 || mon.writes[0] != 100 {
		t.Fatalf("writes=%v", mon.writes)
	}
}
