// Package cephfs models a Ceph-like file system: data is chunked into
// fixed-size objects placed pseudo-randomly (CRUSH-like hashing) across a
// pool of OSDs, and metadata is served by a small MDS cluster. Random
// placement plus configurable latency variance gives the erratic
// throughput behaviour the paper observes on Vega.
package cephfs

import (
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
	"picmcio/internal/xrand"
)

// Params configures the simulated Ceph cluster.
type Params struct {
	NumOSDs    int
	OSDRate    float64      // bytes/second per OSD
	OSDPerOp   sim.Duration // per-object-op latency
	ObjectSize int64        // CRUSH object size (default 4 MiB)
	MDSThreads int
	MetaOp     sim.Duration
	RPCLatency sim.Duration
	// LatencyVar adds an exponential tail with this mean (seconds) to
	// each object operation, modelling multi-tenant interference.
	LatencyVar float64
	Seed       uint64
}

// DefaultParams returns a Vega-class CephFS configuration.
func DefaultParams() Params {
	return Params{
		NumOSDs:    60,
		OSDRate:    0.35e9,
		OSDPerOp:   300e-6,
		ObjectSize: 4 << 20,
		MDSThreads: 8,
		MetaOp:     350e-6,
		RPCLatency: 60e-6,
		LatencyVar: 2e-3,
	}
}

// FS is a simulated CephFS.
type FS struct {
	k    *sim.Kernel
	ns   *pfs.Namespace
	p    Params
	osds []*sim.Server
	mds  *sim.MultiServer
	rng  *xrand.RNG

	nextIno      uint64
	bytesWritten uint64
	bytesRead    uint64
}

// New creates a CephFS on kernel k.
func New(k *sim.Kernel, p Params) *FS {
	if p.NumOSDs < 1 {
		p.NumOSDs = 1
	}
	if p.ObjectSize <= 0 {
		p.ObjectSize = 4 << 20
	}
	if p.MDSThreads < 1 {
		p.MDSThreads = 1
	}
	fs := &FS{
		k:   k,
		ns:  pfs.NewNamespace(),
		p:   p,
		mds: sim.NewMultiServer(k, p.MDSThreads, 0, 0),
		rng: xrand.New(p.Seed ^ 0xcef5),
	}
	for i := 0; i < p.NumOSDs; i++ {
		fs.osds = append(fs.osds, sim.NewServer(k, p.OSDRate, p.OSDPerOp))
	}
	return fs
}

// Name implements pfs.FileSystem.
func (fs *FS) Name() string { return "cephfs" }

// Namespace exposes the file tree for offline inspection.
func (fs *FS) Namespace() *pfs.Namespace { return fs.ns }

// TotalBytesWritten reports cumulative bytes written.
func (fs *FS) TotalBytesWritten() uint64 { return fs.bytesWritten }

func (fs *FS) metaOp(p *sim.Proc) {
	p.SleepUntil(fs.mds.ReserveDur(fs.p.MetaOp) + fs.p.RPCLatency)
}

// placement hashes (inode, objectIndex) to an OSD, CRUSH-style.
func (fs *FS) placement(ino uint64, obj int64) *sim.Server {
	x := ino*0x9e3779b97f4a7c15 + uint64(obj)*0xd1342543de82ef95
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return fs.osds[x%uint64(len(fs.osds))]
}

func (fs *FS) tail() sim.Duration {
	if fs.p.LatencyVar <= 0 {
		return 0
	}
	return sim.Duration(fs.p.LatencyVar * fs.rng.ExpFloat64())
}

type auxIno struct{ ino uint64 }

type file struct {
	fs   *FS
	node *pfs.Node
	path string
	ino  uint64
}

func (fs *FS) fileFor(n *pfs.Node, path string) *file {
	a, ok := n.Aux.(*auxIno)
	if !ok {
		fs.nextIno++
		a = &auxIno{ino: fs.nextIno}
		n.Aux = a
	}
	return &file{fs: fs, node: n, path: pfs.Clean(path), ino: a.ino}
}

// Create implements pfs.FileSystem.
func (fs *FS) Create(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	fs.metaOp(p)
	n, err := fs.ns.CreateFile(path)
	if err != nil {
		return nil, err
	}
	return fs.fileFor(n, path), nil
}

// Open implements pfs.FileSystem.
func (fs *FS) Open(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	fs.metaOp(p)
	n, err := fs.ns.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return fs.fileFor(n, path), nil
}

// OpenAppend implements pfs.FileSystem.
func (fs *FS) OpenAppend(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	if _, err := fs.ns.Lookup(path); err != nil {
		return fs.Create(p, c, path)
	}
	return fs.Open(p, c, path)
}

// Stat implements pfs.FileSystem.
func (fs *FS) Stat(p *sim.Proc, c *pfs.Client, path string) (pfs.FileInfo, error) {
	fs.metaOp(p)
	n, err := fs.ns.Lookup(path)
	if err != nil {
		return pfs.FileInfo{}, err
	}
	return pfs.FileInfo{Path: pfs.Clean(path), Size: n.Size, IsDir: n.Dir}, nil
}

// Unlink implements pfs.FileSystem.
func (fs *FS) Unlink(p *sim.Proc, c *pfs.Client, path string) error {
	fs.metaOp(p)
	return fs.ns.Unlink(path)
}

// MkdirAll implements pfs.FileSystem.
func (fs *FS) MkdirAll(p *sim.Proc, c *pfs.Client, path string) error {
	fs.metaOp(p)
	_, err := fs.ns.MkdirAll(path)
	return err
}

// ReadDir implements pfs.FileSystem.
func (fs *FS) ReadDir(p *sim.Proc, c *pfs.Client, path string) ([]pfs.FileInfo, error) {
	fs.metaOp(p)
	return fs.ns.ReadDir(path)
}

func (f *file) Path() string { return f.path }
func (f *file) Size() int64  { return f.node.Size }

// objSpan issues per-object operations covering [off, off+n) and returns
// the latest completion time.
func (f *file) objSpan(off, n int64) sim.Time {
	fs := f.fs
	end := fs.k.Now()
	os := fs.p.ObjectSize
	for n > 0 {
		obj := off / os
		within := off % os
		chunk := os - within
		if chunk > n {
			chunk = n
		}
		e := fs.placement(f.ino, obj).Reserve(chunk) + fs.tail()
		if e > end {
			end = e
		}
		off += chunk
		n -= chunk
	}
	return end
}

// WriteAt implements pfs.File.
func (f *file) WriteAt(p *sim.Proc, c *pfs.Client, off, n int64, data []byte) {
	end := p.Now()
	if c != nil && c.NIC != nil && n > 0 {
		end = c.NIC.Reserve(n)
	}
	if e := f.objSpan(off, n); e > end {
		end = e
	}
	pfs.NodeWrite(f.node, off, n, data)
	f.fs.bytesWritten += uint64(n)
	p.SleepUntil(end + f.fs.p.RPCLatency)
}

// ReadAt implements pfs.File.
func (f *file) ReadAt(p *sim.Proc, c *pfs.Client, off, n int64) []byte {
	if off >= f.node.Size {
		return nil
	}
	if off+n > f.node.Size {
		n = f.node.Size - off
	}
	end := f.objSpan(off, n)
	if c != nil && c.NIC != nil && n > 0 {
		if e := c.NIC.Reserve(n); e > end {
			end = e
		}
	}
	f.fs.bytesRead += uint64(n)
	p.SleepUntil(end + f.fs.p.RPCLatency)
	return pfs.NodeRead(f.node, off, n)
}

// Sync implements pfs.File.
func (f *file) Sync(p *sim.Proc, c *pfs.Client) {
	p.Sleep(f.fs.p.RPCLatency + f.fs.tail())
}

// Close implements pfs.File.
func (f *file) Close(p *sim.Proc, c *pfs.Client) { f.fs.metaOp(p) }

var _ pfs.FileSystem = (*FS)(nil)
