package cephfs

import (
	"testing"

	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

func TestPlacementIsDeterministic(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, DefaultParams())
	a := fs.placement(42, 7)
	b := fs.placement(42, 7)
	if a != b {
		t.Fatal("placement not deterministic")
	}
}

func TestPlacementSpreads(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, DefaultParams())
	seen := map[*sim.Server]bool{}
	for obj := int64(0); obj < 500; obj++ {
		seen[fs.placement(1, obj)] = true
	}
	if len(seen) < fs.p.NumOSDs/2 {
		t.Fatalf("placement used only %d of %d OSDs", len(seen), fs.p.NumOSDs)
	}
}

func TestWriteReadStat(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, DefaultParams())
	var size int64
	var got string
	k.Spawn("w", func(pr *sim.Proc) {
		c := &pfs.Client{}
		f, err := fs.Create(pr, c, "/vega/out.dat")
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(pr, c, 0, 4, []byte("ceph"))
		got = string(f.ReadAt(pr, c, 0, 4))
		f.Close(pr, c)
		fi, _ := fs.Stat(pr, c, "/vega/out.dat")
		size = fi.Size
	})
	k.Run()
	if got != "ceph" || size != 4 {
		t.Fatalf("got=%q size=%d", got, size)
	}
}

func TestLatencyVarianceIsErratic(t *testing.T) {
	// With variance enabled, identical back-to-back writes take varying
	// amounts of time — the Vega signature.
	k := sim.NewKernel()
	p := DefaultParams()
	p.LatencyVar = 5e-3
	fs := New(k, p)
	var durs []sim.Duration
	k.Spawn("w", func(pr *sim.Proc) {
		c := &pfs.Client{}
		f, _ := fs.Create(pr, c, "/v")
		for i := 0; i < 20; i++ {
			t0 := pr.Now()
			f.WriteAt(pr, c, int64(i)<<20, 1<<20, nil)
			durs = append(durs, pr.Now()-t0)
		}
	})
	k.Run()
	distinct := map[sim.Duration]bool{}
	for _, d := range durs {
		distinct[d] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("write durations suspiciously uniform: %d distinct of %d", len(distinct), len(durs))
	}
}

func TestObjectChunking(t *testing.T) {
	// A write spanning multiple 4 MiB objects must land on several OSDs:
	// time for 64 MiB spread over 16 objects should be far below the
	// single-OSD serial time.
	k := sim.NewKernel()
	p := DefaultParams()
	p.LatencyVar = 0
	fs := New(k, p)
	var end sim.Time
	k.Spawn("w", func(pr *sim.Proc) {
		c := &pfs.Client{}
		f, _ := fs.Create(pr, c, "/big")
		f.WriteAt(pr, c, 0, 64<<20, nil)
		end = pr.Now()
	})
	k.Run()
	serial := float64(64<<20) / p.OSDRate
	if float64(end) > 0.6*serial {
		t.Fatalf("object spread ineffective: end=%v, serial=%v", end, serial)
	}
}
