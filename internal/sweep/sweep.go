// Package sweep is the declarative parameter-grid and campaign engine
// behind every evaluation artifact: named axes crossed into a grid, one
// Trial function evaluated per grid cell, a bounded worker pool with
// deterministic per-trial seed derivation (so a parallel run is
// bit-identical to a serial one), and a unified Table/Point result
// schema with aligned-text and JSON emitters.
//
// The engine deliberately knows nothing about simulations: a Trial is a
// pure function of its Config (parameter values plus a derived seed) to
// a Point (named numeric values plus an optional runner-specific Extra
// payload). Determinism under -parallel N follows from that purity:
// results land at their grid index regardless of completion order, and
// each trial's seed depends only on the run seed and the trial index,
// never on scheduling.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"picmcio/internal/xrand"
)

// Axis is one named sweep parameter and the values it takes. Values may
// be of any type a trial knows how to read back (int, int64, float64,
// string, fmt.Stringer, ...); the typed constructors below cover the
// common cases.
type Axis struct {
	Name   string
	Values []any
}

// Ints builds an int-valued axis.
func Ints(name string, vs []int) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// Int64s builds an int64-valued axis.
func Int64s(name string, vs []int64) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// Floats builds a float64-valued axis.
func Floats(name string, vs []float64) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// Strings builds a string-valued axis.
func Strings(name string, vs []string) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// MarshalJSON renders the axis with its values as display strings, so a
// grid of machine presets or policy enums serializes without the trial's
// domain types leaking into the JSON schema.
func (a Axis) MarshalJSON() ([]byte, error) {
	vs := make([]string, len(a.Values))
	for i, v := range a.Values {
		vs[i] = formatValue(v)
	}
	return json.Marshal(struct {
		Name   string   `json:"name"`
		Values []string `json:"values"`
	}{a.Name, vs})
}

// Grid is the cross product of its axes, enumerated row-major: the last
// axis varies fastest, the first slowest — the nested-loop order the
// hand-rolled figure runners used.
type Grid []Axis

// Size is the number of grid cells (1 for an empty grid: a single
// unparameterized trial, the degenerate campaign).
func (g Grid) Size() int {
	n := 1
	for _, a := range g {
		n *= len(a.Values)
	}
	return n
}

// Validate rejects grids the enumeration cannot handle: empty axes and
// duplicate axis names.
func (g Grid) Validate() error {
	seen := map[string]bool{}
	for _, a := range g {
		if a.Name == "" {
			return fmt.Errorf("sweep: axis with empty name")
		}
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// At returns the configuration of grid cell i (row-major), without a
// derived seed — Run fills that in from its options.
func (g Grid) At(i int) Config {
	c := Config{Index: i, axes: g, ords: make([]int, len(g))}
	for ax := len(g) - 1; ax >= 0; ax-- {
		n := len(g[ax].Values)
		c.ords[ax] = i % n
		i /= n
	}
	return c
}

// Config is one trial's parameter assignment: the cell's value on every
// axis, the trial index, and the per-trial derived seed.
type Config struct {
	// Index is the trial's row-major position in the grid.
	Index int
	// Seed is derived from the run seed and Index via xrand.SeedAt:
	// stable across worker counts, independent across trials. Trials
	// that need randomness (stochastic campaigns) must draw from it
	// rather than any shared stream, or parallel runs would diverge.
	Seed uint64

	axes Grid
	ords []int
}

// Value returns the cell's value on the named axis; it panics on an
// unknown axis name (a programming error in the sweep declaration).
func (c Config) Value(name string) any {
	for i, a := range c.axes {
		if a.Name == name {
			return a.Values[c.ords[i]]
		}
	}
	panic(fmt.Sprintf("sweep: no axis %q", name))
}

// Ordinal returns the cell's index along the named axis.
func (c Config) Ordinal(name string) int {
	for i, a := range c.axes {
		if a.Name == name {
			return c.ords[i]
		}
	}
	panic(fmt.Sprintf("sweep: no axis %q", name))
}

// Int reads an int-valued axis.
func (c Config) Int(name string) int { return c.Value(name).(int) }

// Int64 reads an int64-valued axis.
func (c Config) Int64(name string) int64 { return c.Value(name).(int64) }

// Float reads a float64-valued axis.
func (c Config) Float(name string) float64 { return c.Value(name).(float64) }

// Str reads a string-valued axis.
func (c Config) Str(name string) string { return c.Value(name).(string) }

// Params renders the cell's parameter assignment in axis order.
func (c Config) Params() []Param {
	ps := make([]Param, len(c.axes))
	for i, a := range c.axes {
		ps[i] = Param{Name: a.Name, Value: formatValue(a.Values[c.ords[i]])}
	}
	return ps
}

// Param is one name=value parameter of a point, rendered for display.
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Value is one named numeric result of a point.
type Value struct {
	Name string  `json:"name"`
	V    float64 `json:"value"`
}

// V builds a Value.
func V(name string, v float64) Value { return Value{Name: name, V: v} }

// Point is one grid cell's result: the parameters that produced it, the
// named numeric measurements, and an optional runner-specific payload
// (excluded from JSON — it is for the runner's own table builders).
type Point struct {
	Index  int     `json:"index"`
	Params []Param `json:"params"`
	Values []Value `json:"values"`
	Extra  any     `json:"-"`
}

// Get returns the named value and whether the point carries it.
func (p Point) Get(name string) (float64, bool) {
	for _, v := range p.Values {
		if v.Name == name {
			return v.V, true
		}
	}
	return 0, false
}

// Table is a completed sweep: every point in grid order plus the
// metadata needed to reproduce it.
type Table struct {
	Title  string  `json:"title"`
	Seed   uint64  `json:"seed"`
	Axes   Grid    `json:"axes"`
	Points []Point `json:"points"`
}

// JSON renders the table as stable, indented JSON — the machine-readable
// artifact CI archives next to the text tables.
func (t Table) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Render formats the table as aligned text: one column per axis, then
// one per value name (in first-appearance order across points).
func (t Table) Render() string {
	var header []string
	for _, a := range t.Axes {
		header = append(header, a.Name)
	}
	var names []string
	seen := map[string]bool{}
	for _, p := range t.Points {
		for _, v := range p.Values {
			if !seen[v.Name] {
				seen[v.Name] = true
				names = append(names, v.Name)
			}
		}
	}
	header = append(header, names...)
	rows := make([][]string, len(t.Points))
	for i, p := range t.Points {
		row := make([]string, 0, len(header))
		for _, prm := range p.Params {
			row = append(row, prm.Value)
		}
		for _, n := range names {
			if v, ok := p.Get(n); ok {
				row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	return FormatAligned(t.Title, header, rows)
}

// FormatAligned is the shared text-table formatter: a titled block of
// space-aligned columns. Every artifact's text table goes through it.
func FormatAligned(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// Trial evaluates one grid cell. It must be a pure function of its
// Config (any randomness drawn from Config.Seed) for parallel runs to
// be bit-identical to serial ones.
type Trial func(Config) (Point, error)

// Options parameterizes a sweep run.
type Options struct {
	Title string
	// Seed is the run seed every trial's Config.Seed derives from.
	Seed uint64
	// Parallel bounds the worker pool (<= 1: serial). Output is
	// identical at every width.
	Parallel int
}

// ForEach evaluates fn(i) for every i in [0, n) on a bounded worker
// pool of min(parallel, n) goroutines (parallel <= 1: serial, in index
// order). A failing index stops the dispatch — no further indices are
// handed out, though in-flight parallel ones finish — and ForEach
// returns the lowest-index error observed. It is the pool behind Run,
// exported so other deterministic fan-outs (the sched pricer's Prewarm)
// share one concurrency discipline instead of growing their own.
func ForEach(n, parallel int, fn func(i int) error) error {
	errs := make([]error, n)
	var failed atomic.Bool
	one := func(i int) {
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	}
	if workers := min(parallel, n); workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					one(i)
				}
			}()
		}
		for i := 0; i < n && !failed.Load(); i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := 0; i < n && !failed.Load(); i++ {
			one(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run evaluates the trial at every cell of the grid and returns the
// points in grid order. Trials run on min(Parallel, Size) workers. A
// failing trial stops the sweep — no further cells are dispatched
// (in-flight parallel trials finish) — and Run returns the
// lowest-index error observed, with its parameter assignment wrapped
// in.
func Run(g Grid, opt Options, trial Trial) (Table, error) {
	if err := g.Validate(); err != nil {
		return Table{}, err
	}
	if trial == nil {
		return Table{}, fmt.Errorf("sweep: nil trial")
	}
	n := g.Size()
	t := Table{Title: opt.Title, Seed: opt.Seed, Axes: g, Points: make([]Point, n)}
	err := ForEach(n, opt.Parallel, func(i int) error {
		c := g.At(i)
		c.Seed = xrand.SeedAt(opt.Seed, uint64(i))
		p, err := trial(c)
		if err != nil {
			return fmt.Errorf("sweep: trial %d (%s): %w", i, paramString(c.Params()), err)
		}
		p.Index = i
		if p.Params == nil {
			p.Params = c.Params()
		}
		t.Points[i] = p
		return nil
	})
	return t, err
}

// paramString renders a parameter assignment for error context.
func paramString(ps []Param) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Name + "=" + p.Value
	}
	return strings.Join(parts, " ")
}

// formatValue renders an axis value for display and JSON.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprintf("%v", v)
}
