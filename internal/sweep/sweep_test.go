package sweep

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"picmcio/internal/xrand"
)

func testGrid() Grid {
	return Grid{
		Strings("policy", []string{"a", "b"}),
		Ints("nodes", []int{1, 2, 4}),
	}
}

func TestGridSizeAndOrder(t *testing.T) {
	g := testGrid()
	if g.Size() != 6 {
		t.Fatalf("size=%d, want 6", g.Size())
	}
	// Row-major: last axis fastest.
	want := []struct {
		policy string
		nodes  int
	}{{"a", 1}, {"a", 2}, {"a", 4}, {"b", 1}, {"b", 2}, {"b", 4}}
	for i, w := range want {
		c := g.At(i)
		if c.Str("policy") != w.policy || c.Int("nodes") != w.nodes {
			t.Errorf("cell %d = (%s,%d), want (%s,%d)", i, c.Str("policy"), c.Int("nodes"), w.policy, w.nodes)
		}
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
	}
	if g.At(4).Ordinal("nodes") != 1 || g.At(4).Ordinal("policy") != 1 {
		t.Errorf("ordinals of cell 4: %d/%d", g.At(4).Ordinal("policy"), g.At(4).Ordinal("nodes"))
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		g    Grid
		want string
	}{
		{Grid{{Name: "", Values: []any{1}}}, "empty name"},
		{Grid{{Name: "x"}}, "no values"},
		{Grid{Ints("x", []int{1}), Ints("x", []int{2})}, "duplicate"},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate() = %v, want %q", err, c.want)
		}
	}
	if err := testGrid().Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	if _, err := Run(testGrid(), Options{}, nil); err == nil {
		t.Error("nil trial accepted")
	}
}

func TestEmptyGridIsSingleTrial(t *testing.T) {
	tbl, err := Run(nil, Options{Title: "t"}, func(c Config) (Point, error) {
		return Point{Values: []Value{V("x", 1)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 1 {
		t.Fatalf("points=%d, want 1 (degenerate campaign)", len(tbl.Points))
	}
}

// trial derives a value from the config's parameters plus its derived
// seed, standing in for a stochastic simulation.
func seededTrial(c Config) (Point, error) {
	r := xrand.New(c.Seed)
	v := float64(c.Int("nodes")) + r.Float64()
	return Point{Values: []Value{V("v", v)}, Extra: c.Str("policy")}, nil
}

func TestParallelBitIdenticalToSerial(t *testing.T) {
	g := testGrid()
	serial, err := Run(g, Options{Title: "x", Seed: 7}, seededTrial)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		parallel, err := Run(g, Options{Title: "x", Seed: 7, Parallel: par}, seededTrial)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Render() != parallel.Render() {
			t.Fatalf("parallel %d diverged:\n%s\nvs\n%s", par, serial.Render(), parallel.Render())
		}
		sj, _ := serial.JSON()
		pj, _ := parallel.JSON()
		if string(sj) != string(pj) {
			t.Fatalf("parallel %d JSON diverged", par)
		}
	}
	// A different run seed must perturb the derived streams.
	other, err := Run(g, Options{Title: "x", Seed: 8}, seededTrial)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() == other.Render() {
		t.Error("seed change did not perturb trial streams")
	}
}

func TestRunActuallyRunsConcurrently(t *testing.T) {
	var inFlight, peak atomic.Int32
	block := make(chan struct{})
	done := make(chan Table)
	go func() {
		tbl, _ := Run(Grid{Ints("i", []int{0, 1, 2, 3})}, Options{Parallel: 4}, func(c Config) (Point, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-block
			inFlight.Add(-1)
			return Point{}, nil
		})
		done <- tbl
	}()
	// All four trials park on the channel together only if the pool
	// really fans out; a bounded wait turns a pool regression into a
	// failure instead of a hang.
	deadline := time.Now().Add(5 * time.Second)
	for peak.Load() < 4 {
		if time.Now().After(deadline) {
			close(block)
			<-done
			t.Fatalf("worker pool never reached 4 concurrent trials (peak %d)", peak.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	<-done
}

func TestErrorCarriesTrialParams(t *testing.T) {
	boom := fmt.Errorf("boom")
	_, err := Run(testGrid(), Options{}, func(c Config) (Point, error) {
		if c.Str("policy") == "b" && c.Int("nodes") == 2 {
			return Point{}, boom
		}
		return Point{}, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	for _, want := range []string{"trial 4", "policy=b", "nodes=2", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestPointGetAndParams(t *testing.T) {
	tbl, err := Run(testGrid(), Options{Seed: 1}, seededTrial)
	if err != nil {
		t.Fatal(err)
	}
	p := tbl.Points[5]
	if v, ok := p.Get("v"); !ok || v < 4 || v >= 5 {
		t.Errorf("point 5 v=%v ok=%v, want 4+rand", v, ok)
	}
	if _, ok := p.Get("nope"); ok {
		t.Error("Get invented a value")
	}
	// Params are auto-filled from the config in axis order.
	if len(p.Params) != 2 || p.Params[0] != (Param{"policy", "b"}) || p.Params[1] != (Param{"nodes", "4"}) {
		t.Errorf("params=%v", p.Params)
	}
	if p.Extra.(string) != "b" {
		t.Errorf("extra=%v", p.Extra)
	}
}

func TestRenderAndJSON(t *testing.T) {
	tbl, err := Run(testGrid(), Options{Title: "demo", Seed: 1}, func(c Config) (Point, error) {
		return Point{Values: []Value{V("twice", float64(2*c.Int("nodes")))}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"# demo", "policy", "nodes", "twice", "8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title": "demo"`, `"seed": 1`, `"name": "nodes"`, `"value": 8`} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
	if strings.Contains(string(buf), "Extra") {
		t.Error("Extra payload leaked into JSON")
	}
}

func TestFormatValueTypes(t *testing.T) {
	cases := map[any]string{
		"s":            "s",
		42:             "42",
		int64(1 << 40): "1099511627776",
		1.5:            "1.5",
		true:           "true",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v)=%q, want %q", v, got, want)
		}
	}
}

func TestFormatAlignedMatchesLegacyLayout(t *testing.T) {
	out := FormatAligned("t", []string{"a", "long-header"}, [][]string{{"xxxx", "y"}})
	want := "# t\na     long-header  \nxxxx  y            \n"
	if out != want {
		t.Errorf("aligned output %q, want %q", out, want)
	}
}

func TestRunStopsAfterFailure(t *testing.T) {
	var calls atomic.Int32
	_, err := Run(Grid{Ints("i", []int{0, 1, 2, 3, 4, 5})}, Options{}, func(c Config) (Point, error) {
		calls.Add(1)
		if c.Int("i") == 1 {
			return Point{}, fmt.Errorf("boom")
		}
		return Point{}, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("serial run evaluated %d trials after the failure at index 1, want 2", got)
	}
}
