package units

import (
	"testing"
	"testing/quick"
)

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{13 * KiB, "13KiB"},
		{1945 * KiB, "1.9MiB"},
		{81 * MiB, "81MiB"},
		{326 * MiB, "326MiB"},
		{GiB + GiB/10, "1.1GiB"},
		{-4 * KiB, "-4.0KiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(0.41 * float64(GiB)); got != "0.41 GiB/s" {
		t.Errorf("got %q", got)
	}
	if got := Throughput(15.80 * float64(GiB)); got != "15.80 GiB/s" {
		t.Errorf("got %q", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"16M", 16 * MiB},
		{"16MiB", 16 * MiB},
		{"1MB", 1 * MiB},
		{"4k", 4 * KiB},
		{"512", 512},
		{"2G", 2 * GiB},
		{"1.5M", MiB + MiB/2},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q)=%d, want %d", c.in, got, c.want)
		}
	}
	if _, err := ParseBytes(""); err == nil {
		t.Error("expected error for empty string")
	}
	if _, err := ParseBytes("xMiB"); err == nil {
		t.Error("expected error for junk")
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{0.0000005, "0.5µs"},
		{0.0089, "8.900ms"},
		{1.043, "1.043s"},
		{17.868, "17.868s"},
		{123.4, "123.4s"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%v)=%q, want %q", c.in, got, c.want)
		}
	}
}

// Property: ParseBytes inverts simple integer MiB renderings.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int64(nRaw%2048) + 1
		got, err := ParseBytes(Bytes(n * MiB))
		if err != nil {
			return false
		}
		// Bytes may round to one decimal; accept 5% tolerance.
		diff := got - n*MiB
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= 0.05*float64(n*MiB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
