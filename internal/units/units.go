// Package units provides byte-size, throughput and time formatting and
// parsing helpers used throughout the experiment harness and reports.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Binary size constants.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
	PiB int64 = 1 << 50
)

// Bytes renders n as a compact human-readable binary size, matching the
// style the paper's tables use ("13KiB", "1.9MiB", "1.1GiB").
func Bytes(n int64) string {
	f := func(v float64, unit string) string {
		if v >= 100 {
			return fmt.Sprintf("%.0f%s", v, unit)
		}
		if v >= 10 {
			return fmt.Sprintf("%.0f%s", v, unit)
		}
		return fmt.Sprintf("%.1f%s", v, unit)
	}
	switch {
	case n < 0:
		return "-" + Bytes(-n)
	case n >= PiB:
		return f(float64(n)/float64(PiB), "PiB")
	case n >= TiB:
		return f(float64(n)/float64(TiB), "TiB")
	case n >= GiB:
		return f(float64(n)/float64(GiB), "GiB")
	case n >= MiB:
		return f(float64(n)/float64(MiB), "MiB")
	case n >= KiB:
		return f(float64(n)/float64(KiB), "KiB")
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Throughput renders a rate in bytes/second as GiB/s with two decimals,
// the unit used by every figure in the paper.
func Throughput(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GiB/s", bytesPerSec/float64(GiB))
}

// GiBps converts bytes/second to GiB/s.
func GiBps(bytesPerSec float64) float64 { return bytesPerSec / float64(GiB) }

// Seconds renders a duration in seconds with sensible precision.
func Seconds(s float64) string {
	switch {
	case s == 0:
		return "0s"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.3fms", s*1e3)
	case s < 100:
		return fmt.Sprintf("%.3fs", s)
	default:
		return fmt.Sprintf("%.1fs", s)
	}
}

// ParseBytes parses strings like "16M", "16MiB", "1MB", "4k", "512" into a
// byte count. Both SI-style (decimal ignored; treated binary like lfs) and
// IEC suffixes map to binary multiples, matching `lfs setstripe -S 16M`.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	upper := strings.ToUpper(t)
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"PIB", PiB}, {"TIB", TiB}, {"GIB", GiB}, {"MIB", MiB}, {"KIB", KiB},
		{"PB", PiB}, {"TB", TiB}, {"GB", GiB}, {"MB", MiB}, {"KB", KiB},
		{"P", PiB}, {"T", TiB}, {"G", GiB}, {"M", MiB}, {"K", KiB}, {"B", 1},
	} {
		if strings.HasSuffix(upper, suf.s) {
			mult = suf.m
			upper = strings.TrimSuffix(upper, suf.s)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(upper), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}
