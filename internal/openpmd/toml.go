package openpmd

import (
	"fmt"
	"sort"
	"strings"
)

// Config is the parsed form of the "TOML-based dynamic configuration" the
// paper's openPMD integration uses (§III-B): dotted-section tables of
// string keys. Only the TOML subset openPMD-api actually consumes is
// supported: [section.subsection] headers, `key = value` lines with
// string/number/bool values, comments, and blank lines.
type Config struct {
	kv map[string]string // fully-qualified dotted key → value
}

// ParseTOML parses the supported TOML subset.
func ParseTOML(src string) (*Config, error) {
	cfg := &Config{kv: map[string]string{}}
	section := ""
	for ln, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if strings.HasPrefix(s, "[") {
			if !strings.HasSuffix(s, "]") {
				return nil, fmt.Errorf("openpmd: toml line %d: unterminated section", ln+1)
			}
			section = strings.TrimSpace(s[1 : len(s)-1])
			if section == "" {
				return nil, fmt.Errorf("openpmd: toml line %d: empty section", ln+1)
			}
			continue
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("openpmd: toml line %d: expected key = value", ln+1)
		}
		key := strings.TrimSpace(s[:eq])
		val := strings.TrimSpace(s[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("openpmd: toml line %d: empty key", ln+1)
		}
		if i := strings.Index(val, " #"); i >= 0 {
			val = strings.TrimSpace(val[:i])
		}
		val = strings.Trim(val, `"'`)
		full := key
		if section != "" {
			full = section + "." + key
		}
		cfg.kv[full] = val
	}
	return cfg, nil
}

// Get returns the value for a dotted key and whether it was present.
func (c *Config) Get(key string) (string, bool) {
	v, ok := c.kv[key]
	return v, ok
}

// GetDefault returns the value for key or def when absent.
func (c *Config) GetDefault(key, def string) string {
	if v, ok := c.kv[key]; ok {
		return v
	}
	return def
}

// Keys lists all configured keys, sorted.
func (c *Config) Keys() []string {
	out := make([]string, 0, len(c.kv))
	for k := range c.kv {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
