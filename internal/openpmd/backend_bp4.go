package openpmd

import (
	"fmt"

	"picmcio/internal/adios2"
)

// bp4Backend drives the simulated ADIOS2 BP engine. Iterations map to
// ADIOS2 steps ("group-based iteration encoding with steps", §III-B), so
// one engine/directory holds the whole series.
type bp4Backend struct {
	s      *Series
	io     *adios2.IO
	eng    *adios2.Engine
	inIter bool
}

func newBP4Backend(s *Series) (*bp4Backend, error) {
	a := adios2.New()
	io := a.DeclareIO("openpmd")
	engine := s.cfg.GetDefault("adios2.engine.type", "bp4")
	switch engine {
	case "bp4", "BP4":
		io.SetEngine("BP4")
	case "bp5", "BP5":
		io.SetEngine("BP5")
	default:
		return nil, fmt.Errorf("openpmd: unsupported adios2 engine %q", engine)
	}
	// Engine parameters pass through from the TOML config; the aggregator
	// count is the paper's OPENPMD_ADIOS2_BP5_NumAgg knob.
	for _, key := range s.cfg.Keys() {
		const pfx = "adios2.engine.parameters."
		if len(key) > len(pfx) && key[:len(pfx)] == pfx {
			v, _ := s.cfg.Get(key)
			io.SetParameter(key[len(pfx):], v)
		}
	}
	if op, ok := s.cfg.Get("adios2.dataset.operators.type"); ok {
		if err := io.AddOperation(op); err != nil {
			return nil, err
		}
	}
	// Burst-buffer staging: `burst_buffer = true` (top level or under
	// [adios2.engine]) routes engine I/O through the host environment's
	// staging tier; `burst_durability = "pfs"` makes iteration close wait
	// for write-back instead of returning at buffered durability. The
	// drain QoS knobs tune the tier's write-back scheduler at open time:
	// `burst_qos_priority = true` drains checkpoint segments before
	// diagnostics, `burst_drain_limit` caps write-back bytes/second, and
	// `burst_drain_deadline` paces each epoch's write-back across the
	// given window in seconds ("drain by next epoch").
	burstKeys := []struct{ toml, param string }{
		{"burst_buffer", "BurstBuffer"},
		{"burst_durability", "BurstDurability"},
		{"burst_qos_priority", "BurstQoSPriority"},
		{"burst_drain_limit", "BurstDrainLimit"},
		{"burst_drain_deadline", "BurstDrainDeadline"},
	}
	for _, bk := range burstKeys {
		for _, key := range []string{bk.toml, "adios2.engine." + bk.toml} {
			if v, ok := s.cfg.Get(key); ok {
				io.SetParameter(bk.param, v)
			}
		}
	}
	b := &bp4Backend{s: s, io: io}
	h := adios2.Host{Proc: s.host.Proc, Env: s.host.Env, Comm: s.host.Comm}
	mode := adios2.ModeWrite
	if s.access == AccessReadOnly {
		mode = adios2.ModeRead
	}
	eng, err := io.Open(h, s.path, mode)
	if err != nil {
		return nil, err
	}
	b.eng = eng
	return b, nil
}

// IO exposes the underlying ADIOS2 IO for inspection.
func (b *bp4Backend) IO() *adios2.IO { return b.io }

// Engine exposes the underlying engine (e.g. for profiling counters).
func (b *bp4Backend) Engine() *adios2.Engine { return b.eng }

func (b *bp4Backend) beginIteration(id uint64) error {
	if b.inIter {
		return fmt.Errorf("openpmd: bp4 backend already in iteration")
	}
	if err := b.eng.BeginStep(int64(id)); err != nil {
		return err
	}
	b.inIter = true
	return nil
}

func (b *bp4Backend) store(varPath string, d Dataset, offset, extent []uint64, data []float64) error {
	v, ok := b.io.InquireVariable(varPath)
	if !ok {
		var err error
		v, err = b.io.DefineVariable(varPath, d.Type.adios(), d.Extent, offset, extent)
		if err != nil {
			return err
		}
	} else if err := v.SetShape(d.Extent); err != nil {
		return err
	}
	if err := v.SetSelection(offset, extent); err != nil {
		return err
	}
	if data == nil {
		return b.eng.Put(v, nil)
	}
	return b.eng.PutFloat64s(v, data)
}

func (b *bp4Backend) closeIteration() error {
	if !b.inIter {
		return fmt.Errorf("openpmd: no open iteration")
	}
	b.inIter = false
	return b.eng.EndStep()
}

func (b *bp4Backend) close() error { return b.eng.Close() }

func (b *bp4Backend) iterations() ([]uint64, error) {
	steps, err := b.eng.Steps()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(steps))
	for i, s := range steps {
		out[i] = uint64(s)
	}
	return out, nil
}

func (b *bp4Backend) load(it uint64, varPath string) ([]float64, []uint64, error) {
	raw, shape, err := b.eng.Get(int64(it), varPath)
	if err != nil {
		return nil, nil, err
	}
	return adios2.Float64sFromBytes(raw), shape, nil
}

func (b *bp4Backend) listVars(it uint64) ([]string, error) {
	vars, err := b.eng.VariablesAt(int64(it))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = v.Name
	}
	return out, nil
}
