package openpmd

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"picmcio/internal/pfs"
)

// jsonBackend writes real, human-readable JSON files — one per iteration
// under <series>/data/ plus a root attributes.json. Chunks from all ranks
// are gathered to rank 0 and assembled into whole arrays, so the on-disk
// form is directly inspectable. It is meant for small runs (examples,
// validation); the BP backend is the performance path.
type jsonBackend struct {
	s      *Series
	iterID uint64
	inIter bool
	staged []jsonChunkMsg // this rank's staged chunks
}

type jsonVar struct {
	Extent []uint64  `json:"extent"`
	Data   []float64 `json:"data"`
}

type jsonChunkMsg struct {
	Var    string    `json:"var"`
	Extent []uint64  `json:"global_extent"`
	Offset []uint64  `json:"offset"`
	Count  []uint64  `json:"count"`
	Data   []float64 `json:"data"`
}

func newJSONBackend(s *Series) (*jsonBackend, error) {
	b := &jsonBackend{s: s}
	if s.access == AccessCreate && s.host.Comm.Rank() == 0 {
		if err := s.host.Env.MkdirAll(s.host.Proc, pfs.Join(s.path, "data")); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (b *jsonBackend) beginIteration(id uint64) error {
	if b.inIter {
		return fmt.Errorf("openpmd: json backend already in iteration")
	}
	b.inIter = true
	b.iterID = id
	b.staged = nil
	return nil
}

func (b *jsonBackend) store(varPath string, d Dataset, offset, extent []uint64, data []float64) error {
	if data == nil {
		return fmt.Errorf("openpmd: json backend requires real data (content mode)")
	}
	if len(d.Extent) != 1 {
		return fmt.Errorf("openpmd: json backend supports 1-D datasets")
	}
	b.staged = append(b.staged, jsonChunkMsg{
		Var: varPath, Extent: d.Extent, Offset: offset, Count: extent, Data: data,
	})
	return nil
}

func (b *jsonBackend) closeIteration() error {
	if !b.inIter {
		return fmt.Errorf("openpmd: no open iteration")
	}
	b.inIter = false
	comm, p, env := b.s.host.Comm, b.s.host.Proc, b.s.host.Env

	mine, err := json.Marshal(b.staged)
	if err != nil {
		return err
	}
	gathered := comm.GathervBytes(int64(len(mine)), mine, 0)
	b.staged = nil
	if comm.Rank() != 0 {
		return nil
	}
	vars := map[string]*jsonVar{}
	for _, g := range gathered {
		var msgs []jsonChunkMsg
		if err := json.Unmarshal(g.Data, &msgs); err != nil {
			return err
		}
		for _, m := range msgs {
			v := vars[m.Var]
			if v == nil {
				v = &jsonVar{Extent: m.Extent, Data: make([]float64, m.Extent[0])}
				vars[m.Var] = v
			}
			copy(v.Data[m.Offset[0]:], m.Data)
		}
	}
	doc := map[string]any{
		"iteration":  b.iterID,
		"attributes": b.s.attrs,
		"records":    vars,
	}
	body, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	fd, err := env.Create(p, b.iterPath(b.iterID))
	if err != nil {
		return err
	}
	fd.Write(p, int64(len(body)), body)
	fd.Close(p)
	return nil
}

func (b *jsonBackend) iterPath(id uint64) string {
	return pfs.Join(b.s.path, "data", fmt.Sprintf("%d.json", id))
}

func (b *jsonBackend) close() error {
	comm, p, env := b.s.host.Comm, b.s.host.Proc, b.s.host.Env
	if b.s.access == AccessCreate && comm.Rank() == 0 {
		body, err := json.MarshalIndent(b.s.attrs, "", " ")
		if err != nil {
			return err
		}
		fd, err := env.Create(p, pfs.Join(b.s.path, "attributes.json"))
		if err != nil {
			return err
		}
		fd.Write(p, int64(len(body)), body)
		fd.Close(p)
	}
	return nil
}

func (b *jsonBackend) iterations() ([]uint64, error) {
	ents, err := b.s.host.Env.FS.ReadDir(b.s.host.Proc, b.s.host.Env.Client, pfs.Join(b.s.path, "data"))
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		base := e.Path[strings.LastIndexByte(e.Path, '/')+1:]
		if !strings.HasSuffix(base, ".json") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(base, ".json"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (b *jsonBackend) readIterDoc(it uint64) (map[string]*jsonVar, error) {
	p, env := b.s.host.Proc, b.s.host.Env
	fd, err := env.Open(p, b.iterPath(it))
	if err != nil {
		return nil, err
	}
	body := fd.Pread(p, 0, fd.Size())
	fd.Close(p)
	var doc struct {
		Records map[string]*jsonVar `json:"records"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("openpmd: bad iteration file: %w", err)
	}
	return doc.Records, nil
}

func (b *jsonBackend) load(it uint64, varPath string) ([]float64, []uint64, error) {
	recs, err := b.readIterDoc(it)
	if err != nil {
		return nil, nil, err
	}
	v, ok := recs[varPath]
	if !ok {
		return nil, nil, fmt.Errorf("openpmd: no record %q in iteration %d", varPath, it)
	}
	return v.Data, v.Extent, nil
}

func (b *jsonBackend) listVars(it uint64) ([]string, error) {
	recs, err := b.readIterDoc(it)
	if err != nil {
		return nil, err
	}
	var out []string
	for k := range recs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}
