package openpmd

import (
	"strings"
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

type rig struct {
	k  *sim.Kernel
	fs *lustre.FS
	w  *mpisim.World
}

func newRig(ranks int) *rig {
	k := sim.NewKernel()
	return &rig{k: k, fs: lustre.New(k, lustre.DefaultParams()),
		w: mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(1e-6, 1.0/10e9))}
}

func (rg *rig) host(r *mpisim.Rank) Host {
	return Host{Proc: r.Proc, Env: &posix.Env{FS: rg.fs, Client: &pfs.Client{}, Rank: r.ID}, Comm: r.Comm}
}

func TestTOMLParse(t *testing.T) {
	cfg, err := ParseTOML(`
# BIT1 openPMD runtime configuration
[adios2.engine]
type = "bp4"

[adios2.engine.parameters]
NumAggregators = "400"
Profile = "on"

[adios2.dataset.operators]
type = "blosc"
level = 5
`)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"adios2.engine.type":                      "bp4",
		"adios2.engine.parameters.NumAggregators": "400",
		"adios2.dataset.operators.type":           "blosc",
		"adios2.dataset.operators.level":          "5",
	} {
		if got, ok := cfg.Get(k); !ok || got != want {
			t.Errorf("%s = %q (ok=%v), want %q", k, got, ok, want)
		}
	}
	if len(cfg.Keys()) != 5 {
		t.Errorf("keys=%v", cfg.Keys())
	}
}

func TestTOMLErrors(t *testing.T) {
	for _, bad := range []string{"[unterminated", "[]", "just a line", "= novalue"} {
		if _, err := ParseTOML(bad); err == nil {
			t.Errorf("ParseTOML(%q) accepted", bad)
		}
	}
}

// writeParticleSeries writes one iteration of particle positions with the
// given backend suffix and returns the rig for inspection.
func writeParticleSeries(t *testing.T, path string, ranks, perRank int, toml string) *rig {
	t.Helper()
	rg := newRig(ranks)
	rg.w.Run(func(r *mpisim.Rank) {
		s, err := NewSeries(rg.host(r), path, AccessCreate, toml)
		if err != nil {
			t.Error(err)
			return
		}
		it, err := s.WriteIteration(100)
		if err != nil {
			t.Error(err)
			return
		}
		rc := it.Particles("e").Record("position").Component("x")
		total := uint64(ranks * perRank)
		if err := rc.ResetDataset(Dataset{Type: Float64, Extent: []uint64{total}}); err != nil {
			t.Error(err)
			return
		}
		// Offsets computed the BIT1 way: exscan over local extents.
		off := uint64(r.Comm.ExscanI64(int64(perRank)))
		data := make([]float64, perRank)
		for i := range data {
			data[i] = float64(r.ID) + float64(i)/1000
		}
		if err := rc.StoreChunk([]uint64{off}, []uint64{uint64(perRank)}, data); err != nil {
			t.Error(err)
			return
		}
		if err := s.Flush(); err != nil {
			t.Error(err)
			return
		}
		if err := it.Close(); err != nil {
			t.Error(err)
			return
		}
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	return rg
}

func TestBP4BackendWriteRead(t *testing.T) {
	rg := writeParticleSeries(t, "/io/series.bp4", 4, 16, `
[adios2.engine.parameters]
NumAggregators = "2"
`)
	w2 := mpisim.NewWorld(rg.k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		s, err := NewSeries(rg.host(r), "/io/series.bp4", AccessReadOnly, "")
		if err != nil {
			t.Error(err)
			return
		}
		its, err := s.Iterations()
		if err != nil || len(its) != 1 || its[0] != 100 {
			t.Errorf("iterations=%v err=%v", its, err)
			return
		}
		it, _ := s.ReadIteration(100)
		vars, err := it.ListRecordComponents()
		if err != nil {
			t.Error(err)
			return
		}
		if len(vars) != 1 || vars[0] != "/data/100/particles/e/position/x" {
			t.Errorf("vars=%v", vars)
		}
		rc := it.Particles("e").Record("position").Component("x")
		data, shape, err := rc.Load()
		if err != nil {
			t.Error(err)
			return
		}
		if shape[0] != 64 || len(data) != 64 {
			t.Errorf("shape=%v len=%d", shape, len(data))
		}
		if data[17] != 1.0+1.0/1000 { // rank 1, i=1
			t.Errorf("data[17]=%v", data[17])
		}
		s.Close()
	})
}

func TestJSONBackendWriteRead(t *testing.T) {
	rg := writeParticleSeries(t, "/io/series.json", 3, 8, "")
	// The JSON file must literally exist and contain the naming schema.
	n, err := rg.fs.Namespace().Lookup("/io/series.json/data/100.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(n.Content), "/data/100/particles/e/position/x") {
		t.Fatalf("JSON missing openPMD path:\n%.300s", n.Content)
	}
	w2 := mpisim.NewWorld(rg.k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		s, err := NewSeries(rg.host(r), "/io/series.json", AccessReadOnly, "")
		if err != nil {
			t.Error(err)
			return
		}
		it, _ := s.ReadIteration(100)
		data, shape, err := it.Particles("e").Record("position").Component("x").Load()
		if err != nil {
			t.Error(err)
			return
		}
		if shape[0] != 24 || data[9] != 1.0+1.0/1000 {
			t.Errorf("shape=%v data[9]=%v", shape, data[9])
		}
		s.Close()
	})
}

func TestMeshNamingSchema(t *testing.T) {
	rg := newRig(2)
	rg.w.Run(func(r *mpisim.Rank) {
		s, _ := NewSeries(rg.host(r), "/m.json", AccessCreate, "")
		it, _ := s.WriteIteration(7)
		rc := it.Meshes("density").Component(Scalar)
		rc.ResetDataset(Dataset{Type: Float64, Extent: []uint64{8}})
		off := uint64(4 * r.ID)
		rc.StoreChunk([]uint64{off}, []uint64{4}, make([]float64, 4))
		it.Close()
		s.Close()
	})
	n, err := rg.fs.Namespace().Lookup("/m.json/data/7.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(n.Content), "/data/7/meshes/density") {
		t.Fatal("mesh naming schema missing")
	}
}

func TestStandardAttributes(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		s, _ := NewSeries(rg.host(r), "/a.json", AccessCreate, "")
		if v, ok := s.Attribute("openPMD"); !ok || v != "1.1.0" {
			t.Errorf("openPMD attr = %q", v)
		}
		if v, _ := s.Attribute("iterationEncoding"); v != "groupBased" {
			t.Errorf("encoding attr = %q", v)
		}
		s.SetAttribute("author", "BIT1 team")
		s.Close()
	})
	n, err := rg.fs.Namespace().Lookup("/a.json/attributes.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(n.Content), "BIT1 team") {
		t.Fatal("custom attribute not persisted")
	}
}

func TestValidationErrors(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		s, _ := NewSeries(rg.host(r), "/v.json", AccessCreate, "")
		it, _ := s.WriteIteration(0)
		rc := it.Particles("e").Record("position").Component("x")
		if err := rc.StoreChunk([]uint64{0}, []uint64{4}, make([]float64, 4)); err == nil {
			t.Error("StoreChunk before ResetDataset accepted")
		}
		rc.ResetDataset(Dataset{Type: Float64, Extent: []uint64{8}})
		if err := rc.StoreChunk([]uint64{0}, []uint64{4}, make([]float64, 3)); err == nil {
			t.Error("mis-sized chunk accepted")
		}
		if _, err := s.WriteIteration(1); err == nil {
			t.Error("second concurrent iteration accepted")
		}
		it.Close()
		if err := it.Close(); err == nil {
			t.Error("double Close accepted")
		}
		s.Close()
	})
}

func TestUnknownBackendRejected(t *testing.T) {
	rg := newRig(1)
	rg.w.Run(func(r *mpisim.Rank) {
		if _, err := NewSeries(rg.host(r), "/x.h5", AccessCreate, ""); err == nil {
			t.Error("h5 backend accepted")
		}
	})
}

func TestCheckpointIterationOverwrite(t *testing.T) {
	// Re-writing iteration 0 (BIT1's checkpoint pattern) must not grow
	// the BP4 subfile.
	rg := newRig(2)
	var size2, size4 int64
	rg.w.Run(func(r *mpisim.Rank) {
		s, err := NewSeries(rg.host(r), "/ck.bp4", AccessCreate, `
[adios2.engine.parameters]
NumAggregators = "1"
Profile = "off"
`)
		if err != nil {
			t.Error(err)
			return
		}
		for rep := 0; rep < 4; rep++ {
			it, err := s.WriteIteration(0)
			if err != nil {
				t.Error(err)
				return
			}
			rc := it.Particles("D+").Record("position").Component("x")
			rc.ResetDataset(Dataset{Type: Float64, Extent: []uint64{64}})
			rc.StoreChunk([]uint64{uint64(32 * r.ID)}, []uint64{32}, make([]float64, 32))
			it.Close()
			if r.ID == 0 && rep == 1 {
				fi, _ := rg.host(r).Env.Stat(r.Proc, "/ck.bp4/data.0")
				size2 = fi.Size
			}
		}
		if r.ID == 0 {
			fi, _ := rg.host(r).Env.Stat(r.Proc, "/ck.bp4/data.0")
			size4 = fi.Size
		}
		s.Close()
	})
	if size4 != size2 || size2 == 0 {
		t.Fatalf("iteration-0 overwrite grew file: %d -> %d", size2, size4)
	}
}

func TestBloscConfigFlowsThrough(t *testing.T) {
	rg := writeParticleSeries(t, "/c.bp4", 2, 512, `
[adios2.engine.parameters]
NumAggregators = "1"

[adios2.dataset.operators]
type = "blosc"
`)
	// Compressed subfile should be smaller than raw payload.
	n, err := rg.fs.Namespace().Lookup("/c.bp4/data.0")
	if err != nil {
		t.Fatal(err)
	}
	raw := int64(2*512*8 + 2*64)
	if n.Size >= raw {
		t.Fatalf("blosc did not shrink: %d >= %d", n.Size, raw)
	}
	// And it must read back correctly.
	w2 := mpisim.NewWorld(rg.k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		s, err := NewSeries(rg.host(r), "/c.bp4", AccessReadOnly, "")
		if err != nil {
			t.Error(err)
			return
		}
		it, _ := s.ReadIteration(100)
		data, _, err := it.Particles("e").Record("position").Component("x").Load()
		if err != nil {
			t.Error(err)
			return
		}
		if data[512+3] != 1.0+3.0/1000 {
			t.Errorf("data=%v", data[512+3])
		}
		s.Close()
	})
}
