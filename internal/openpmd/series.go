// Package openpmd reimplements the slice of the openPMD standard and the
// openPMD-api library that BIT1's I/O integration uses: a Series of
// Iterations holding Meshes and ParticleSpecies whose Records store
// chunked, offset-addressed data through a pluggable backend. The BP4
// backend drives the simulated ADIOS2 engine (the paper's configuration);
// the JSON backend writes real, human-readable files for small runs.
//
// The standard's naming schema — /data/<iteration>/particles/<species>/
// <record>/<component> and /data/<iteration>/meshes/<mesh>/<component> —
// is preserved verbatim, which is the portability argument the paper's
// contribution #2 makes.
package openpmd

import (
	"fmt"
	"sort"
	"strings"

	"picmcio/internal/adios2"
	"picmcio/internal/mpisim"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// Access selects how a series is opened.
type Access int

// Access modes.
const (
	AccessCreate Access = iota
	AccessReadOnly
)

// Datatype identifies record component element types.
type Datatype int

// Datatypes.
const (
	Float64 Datatype = iota
	UInt64
)

func (d Datatype) adios() adios2.DType {
	if d == UInt64 {
		return adios2.TypeUInt64
	}
	return adios2.TypeFloat64
}

// Size reports the element size in bytes.
func (d Datatype) Size() int64 { return 8 }

// Scalar is the component name of scalar records.
const Scalar = "\x00scalar"

// Host ties a series to the simulation context of the calling rank.
type Host struct {
	Proc *sim.Proc
	Env  *posix.Env
	Comm *mpisim.Comm
}

// Dataset declares a record component's global shape.
type Dataset struct {
	Type   Datatype
	Extent []uint64
}

// backend is the storage engine behind a series.
type backend interface {
	// beginIteration opens iteration id for writing.
	beginIteration(id uint64) error
	// store stages one chunk of a record component.
	store(varPath string, d Dataset, offset, extent []uint64, data []float64) error
	// closeIteration finalizes the open iteration.
	closeIteration() error
	// close finalizes the series.
	close() error
	// iterations lists available iterations (read mode).
	iterations() ([]uint64, error)
	// load reads a whole record component (read mode).
	load(it uint64, varPath string) ([]float64, []uint64, error)
	// listVars lists record component paths of one iteration (read mode).
	listVars(it uint64) ([]string, error)
}

// Series is the root object of an openPMD hierarchy.
type Series struct {
	host    Host
	path    string
	access  Access
	cfg     *Config
	be      backend
	attrs   map[string]string
	curIter *Iteration
	closed  bool
}

// NewSeries opens (or creates) a series at path. The backend is chosen by
// extension: .bp/.bp4/.bp5 → ADIOS2 BP engine, .json → JSON files.
// options is a TOML document ("" for defaults).
func NewSeries(h Host, path string, access Access, options string) (*Series, error) {
	if h.Proc == nil || h.Env == nil || h.Comm == nil {
		return nil, fmt.Errorf("openpmd: incomplete host")
	}
	cfg, err := ParseTOML(options)
	if err != nil {
		return nil, err
	}
	s := &Series{host: h, path: path, access: access, cfg: cfg, attrs: map[string]string{
		"openPMD":           "1.1.0",
		"openPMDextension":  "0",
		"basePath":          "/data/%T/",
		"meshesPath":        "meshes/",
		"particlesPath":     "particles/",
		"iterationEncoding": "groupBased",
		"software":          "picmcio",
	}}
	switch {
	case strings.HasSuffix(path, ".bp"), strings.HasSuffix(path, ".bp4"), strings.HasSuffix(path, ".bp5"):
		s.be, err = newBP4Backend(s)
	case strings.HasSuffix(path, ".json"):
		s.be, err = newJSONBackend(s)
	default:
		return nil, fmt.Errorf("openpmd: no backend for %q (use .bp4 or .json)", path)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SetAttribute stores a root attribute.
func (s *Series) SetAttribute(key, value string) { s.attrs[key] = value }

// Attribute reads a root attribute.
func (s *Series) Attribute(key string) (string, bool) {
	v, ok := s.attrs[key]
	return v, ok
}

// Path reports the series path.
func (s *Series) Path() string { return s.path }

// WriteIteration opens iteration id for writing. Only one iteration may be
// open at a time; openPMD semantics allow re-opening a previously written
// id (BIT1 re-writes iteration 0 for checkpoints).
func (s *Series) WriteIteration(id uint64) (*Iteration, error) {
	if s.access != AccessCreate {
		return nil, fmt.Errorf("openpmd: series is read-only")
	}
	if s.curIter != nil {
		return nil, fmt.Errorf("openpmd: iteration %d still open", s.curIter.ID)
	}
	if err := s.be.beginIteration(id); err != nil {
		return nil, err
	}
	s.curIter = &Iteration{series: s, ID: id}
	return s.curIter, nil
}

// Flush commits staged chunks to the backend layer, as the paper's
// integration does once per iteration after all vectors are accumulated.
// With the BP engine the actual disk write happens when the iteration
// closes (ADIOS2 EndStep); Flush validates that all staged chunks belong
// to the open iteration.
func (s *Series) Flush() error {
	if s.curIter == nil {
		return nil
	}
	return nil
}

// Iterations lists the iteration ids available for reading.
func (s *Series) Iterations() ([]uint64, error) { return s.be.iterations() }

// ReadIteration returns a read handle for iteration id.
func (s *Series) ReadIteration(id uint64) (*Iteration, error) {
	if s.access != AccessReadOnly {
		return nil, fmt.Errorf("openpmd: series is write-only")
	}
	return &Iteration{series: s, ID: id, read: true}, nil
}

// Close finalizes the series; any open iteration is closed first.
func (s *Series) Close() error {
	if s.closed {
		return nil
	}
	if s.curIter != nil {
		if err := s.curIter.Close(); err != nil {
			return err
		}
	}
	s.closed = true
	return s.be.close()
}

// Iteration is one time point of a series.
type Iteration struct {
	series *Series
	ID     uint64
	read   bool
	closed bool
}

// Meshes returns the mesh record with the given name.
func (it *Iteration) Meshes(name string) *Record {
	return &Record{it: it, path: fmt.Sprintf("/data/%d/meshes/%s", it.ID, name)}
}

// Particles returns the particle species container with the given name.
func (it *Iteration) Particles(species string) *Species {
	return &Species{it: it, name: species}
}

// Close finalizes the iteration: with the BP backend this triggers the
// EndStep that aggregates and writes the data. After Close, the iteration
// must not be reopened (per openPMD-api docs) — BIT1 instead re-opens a
// *new* handle for id 0 when checkpointing.
func (it *Iteration) Close() error {
	if it.read {
		return nil
	}
	if it.closed {
		return fmt.Errorf("openpmd: iteration %d already closed", it.ID)
	}
	it.closed = true
	it.series.curIter = nil
	return it.series.be.closeIteration()
}

// Species is a particle species container.
type Species struct {
	it   *Iteration
	name string
}

// Record returns a named record of the species ("position", "momentum",
// "weighting", …).
func (sp *Species) Record(name string) *Record {
	return &Record{it: sp.it, path: fmt.Sprintf("/data/%d/particles/%s/%s", sp.it.ID, sp.name, name)}
}

// Record is a physical quantity; it may have several components.
type Record struct {
	it   *Iteration
	path string
}

// Component returns a record component; use Scalar for scalar records.
func (r *Record) Component(name string) *RecordComponent {
	p := r.path
	if name != Scalar {
		p = p + "/" + name
	}
	return &RecordComponent{it: r.it, path: p}
}

// RecordComponent is the leaf object data is stored into.
type RecordComponent struct {
	it      *Iteration
	path    string
	dataset Dataset
	hasDS   bool
}

// Path reports the full openPMD variable path of the component.
func (rc *RecordComponent) Path() string { return rc.path }

// ResetDataset declares the component's global datatype and extent.
func (rc *RecordComponent) ResetDataset(d Dataset) error {
	if len(d.Extent) == 0 {
		return fmt.Errorf("openpmd: empty extent for %s", rc.path)
	}
	rc.dataset = d
	rc.hasDS = true
	return nil
}

// StoreChunk stages this rank's chunk. data may be nil (volume mode) or
// must have exactly the extent's element count. Per openPMD rules the
// buffer must stay untouched until the iteration closes.
func (rc *RecordComponent) StoreChunk(offset, extent []uint64, data []float64) error {
	if rc.it.read {
		return fmt.Errorf("openpmd: StoreChunk on read iteration")
	}
	if !rc.hasDS {
		return fmt.Errorf("openpmd: %s: StoreChunk before ResetDataset", rc.path)
	}
	if len(offset) != len(rc.dataset.Extent) || len(extent) != len(rc.dataset.Extent) {
		return fmt.Errorf("openpmd: %s: chunk rank mismatch", rc.path)
	}
	if data != nil {
		n := uint64(1)
		for _, e := range extent {
			n *= e
		}
		if uint64(len(data)) != n {
			return fmt.Errorf("openpmd: %s: chunk has %d elements, extent wants %d", rc.path, len(data), n)
		}
	}
	return rc.it.series.be.store(rc.path, rc.dataset, offset, extent, data)
}

// Load reads the whole component (read mode).
func (rc *RecordComponent) Load() ([]float64, []uint64, error) {
	if !rc.it.read {
		return nil, nil, fmt.Errorf("openpmd: Load on write iteration")
	}
	return rc.it.series.be.load(rc.it.ID, rc.path)
}

// ListRecordComponents lists the component paths stored in an iteration,
// sorted (read mode).
func (it *Iteration) ListRecordComponents() ([]string, error) {
	vars, err := it.series.be.listVars(it.ID)
	if err != nil {
		return nil, err
	}
	sort.Strings(vars)
	return vars, nil
}
