package experiments

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/sim"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
)

// ContentionQoSPolicies names the drain-QoS grid of FigContention, in
// table order: the plain scheduler, the checkpoint priority lane, the
// write-back rate limit, and drain-by-next-epoch deadline pacing.
var ContentionQoSPolicies = []string{"qos-off", "priority", "rate-limit", "deadline"}

// contentionQoS maps a policy name to the staged job's drain QoS.
func contentionQoS(policy string, epochWindow float64) (burst.QoS, error) {
	switch policy {
	case "qos-off":
		return burst.QoS{}, nil
	case "priority":
		return burst.QoS{PriorityLanes: true}, nil
	case "rate-limit":
		// Per-node cap well under the PFS-limited burst rate: write-back
		// yields bandwidth to the neighbour at the cost of a longer tail.
		return burst.QoS{DrainLimit: 1.5e9}, nil
	case "deadline":
		return burst.QoS{Deadline: sim.Duration(epochWindow)}, nil
	}
	return burst.QoS{}, fmt.Errorf("figcontention: unknown QoS policy %q", policy)
}

// ContentionRow is one QoS policy's measurement of the two-job scenario.
type ContentionRow struct {
	Policy string
	Result *jobs.ContentionResult
}

// contentionSpecs builds the canonical two-job scenario on machine m: a
// checkpoint-heavy job staging through a per-node burst tier (epoch-end
// drain, so write-back bursts right when the neighbour writes) next to a
// job writing directly to the shared PFS. Both stripe across every OST.
func contentionSpecs(qos burst.QoS, epochs int) []jobs.Spec {
	wl := jobs.BulkWriter{
		Epochs:          epochs,
		CheckpointBytes: 96 * units.MiB,
		DiagBytes:       32 * units.MiB,
		ComputeSec:      0.02,
	}
	return []jobs.Spec{
		{
			Name:  "staged",
			Nodes: 4,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				// PFS-limited drain: write-back bursts at full fabric
				// speed unless a QoS knob reins it in.
				DrainRate: 0,
				Policy:    burst.PolicyEpochEnd,
				QoS:       qos,
			},
			Workload:    wl,
			StripeCount: -1,
		},
		{Name: "direct", Nodes: 4, Workload: wl, StripeCount: -1},
	}
}

// FigContentionSweep is FigContention as a grid declaration: one axis
// (the drain-QoS policy), one jobs.Contention run per cell. The Extra
// payload carries the ContentionRow the figure's table builder uses.
func (o Options) FigContentionSweep() (sweep.Table, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	g := sweep.Grid{sweep.Strings("policy", ContentionQoSPolicies)}
	return sweep.Run(g, o.sweepOptions("Fig C: multi-job contention on Dardel (staged ckpt-heavy job vs direct neighbour)"),
		func(c sweep.Config) (sweep.Point, error) {
			policy := c.Str("policy")
			// The deadline window is one epoch interval: absorb (~22 ms at
			// NVMe speed) plus the compute phase — "drain by next epoch".
			qos, err := contentionQoS(policy, 0.04)
			if err != nil {
				return sweep.Point{}, err
			}
			res, err := jobs.Contention(m, contentionSpecs(qos, 3), o.Seed)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figcontention: %w", err)
			}
			vals := []sweep.Value{
				sweep.V("max_slowdown_x", res.MaxSlowdown()),
				sweep.V("jain", res.Jain),
			}
			for i, j := range res.Jobs {
				vals = append(vals,
					sweep.V(j.Name+"_slowdown_x", res.Slowdown[i]),
					sweep.V(j.Name+"_client_gibps", units.GiBps(j.ClientBps)))
			}
			return sweep.Point{Values: vals, Extra: ContentionRow{Policy: policy, Result: res}}, nil
		})
}

// FigContention is the multi-job contention artifact: the two-job
// scenario on Dardel under each drain-QoS policy, reporting per-job
// slowdown vs an isolated run, apparent and write-back bandwidths, the
// per-lane drain split, and Jain's fairness index per policy.
func (o Options) FigContention() (Table, []ContentionRow, error) {
	st, err := o.FigContentionSweep()
	if err != nil {
		return Table{}, nil, err
	}
	t, rows := contentionTable(st)
	return t, rows, nil
}

// contentionTable builds the figure's text table and typed rows from the
// sweep table (shared by FigContention and the catalogue entry). The
// text table inherits the sweep's title, so text and JSON cannot drift.
func contentionTable(st sweep.Table) (Table, []ContentionRow) {
	t := Table{
		Title: st.Title,
		Header: []string{"policy", "job", "nodes", "durable", "slowdown",
			"client GiB/s", "drain GiB/s", "ckpt drained", "diag drained", "Jain"},
	}
	var rows []ContentionRow
	for _, p := range st.Points {
		row := p.Extra.(ContentionRow)
		rows = append(rows, row)
		res := row.Result
		for i, j := range res.Jobs {
			ck, dg := "-", "-"
			drain := "-"
			if j.Burst != nil {
				ck = units.Bytes(j.Burst.Class[burst.ClassCheckpoint].DrainedBytes)
				dg = units.Bytes(j.Burst.Class[burst.ClassDiagnostic].DrainedBytes)
				drain = fmt.Sprintf("%.3f", units.GiBps(j.DrainBps))
			}
			t.Rows = append(t.Rows, []string{
				row.Policy, j.Name, fmt.Sprint(j.Nodes),
				units.Seconds(j.DurableSec),
				fmt.Sprintf("%.3fx", res.Slowdown[i]),
				fmt.Sprintf("%.3f", units.GiBps(j.ClientBps)),
				drain, ck, dg,
				fmt.Sprintf("%.4f", res.Jain),
			})
		}
	}
	return t, rows
}
