package experiments

import (
	"strings"
	"testing"

	"picmcio/internal/cluster"
)

// TestFigSizingKnee is the new artifact's headline claim: on each swept
// machine, staging with generous capacity and the preset drain rate
// clearly beats direct writes, while starving either knob erodes the
// win — the knee the sizing grid exists to locate.
func TestFigSizingKnee(t *testing.T) {
	o := Options{Seed: 1}
	tab, err := o.FigSizing()
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[3]any]SizingPoint{}
	for _, p := range tab.Points {
		pt := p.Extra.(SizingPoint)
		byCell[[3]any{pt.Machine, pt.CapacityEpochs, pt.DrainScale}] = pt
	}
	for _, m := range []cluster.Machine{cluster.Dardel(), cluster.Vega()} {
		caps := m.Sizing.CapacityEpochs
		drains := m.Sizing.DrainScale
		big := byCell[[3]any{m.Name, caps[len(caps)-1], 1.0}]
		if big.AppSpeedup <= 1.1 {
			t.Errorf("%s: generous staging speedup %.3fx, want > 1.1x", m.Name, big.AppSpeedup)
		}
		small := byCell[[3]any{m.Name, caps[0], drains[0]}]
		if small.AppSpeedup >= big.AppSpeedup {
			t.Errorf("%s: starved cell (%.3fx) not below generous cell (%.3fx) — no knee",
				m.Name, small.AppSpeedup, big.AppSpeedup)
		}
		// Undersized capacity must show PFS fallback somewhere on the
		// smallest-capacity row: that is the mechanism behind the knee.
		var fallback bool
		for _, d := range drains {
			if byCell[[3]any{m.Name, caps[0], d}].FallbackFrac > 0 {
				fallback = true
			}
		}
		if !fallback {
			t.Errorf("%s: no PFS fallback at %.2g-epoch capacity", m.Name, caps[0])
		}
	}
	// Cells outside a machine's declared range stay empty (rectangular
	// union grid, no fabricated measurements): Vega declares no 0.25x
	// drain scale.
	if pt, ok := byCell[[3]any{"Vega", 0.5, 0.25}]; !ok || pt.AppSpeedup != 0 {
		t.Errorf("out-of-range Vega cell not empty: %+v", pt)
	}
	// The knee summary names every (machine, drain) pair of the sweep.
	knees := SizingKnees(tab)
	joined := strings.Join(knees, "\n")
	for _, want := range []string{"Dardel drain", "Vega drain", "epoch(s) of capacity"} {
		if !strings.Contains(joined, want) {
			t.Errorf("knee summary missing %q:\n%s", want, joined)
		}
	}
}

// TestCampaignFailure exercises the stochastic campaign at an
// accelerated MTBF so every cell observes failures, and pins the
// ordering the campaign exists to quantify: deferring write-back costs
// more expected node-hours per failure.
func TestCampaignFailure(t *testing.T) {
	o := Options{Seed: 1, CampaignRuns: 1200, CampaignMTBFHours: 500}
	tab, err := o.CampaignFailure()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Points) != len(FaultDrainPolicies)*len(FaultQoSPolicies) {
		t.Fatalf("cells=%d, want %d", len(tab.Points), len(FaultDrainPolicies)*len(FaultQoSPolicies))
	}
	lost := map[string]float64{}
	for _, p := range tab.Points {
		cell := p.Extra.(CampaignCell)
		if cell.Runs != 1200 {
			t.Errorf("%s/%s: runs=%d, want 1200", cell.Policy, cell.QoS, cell.Runs)
		}
		if cell.ExpectedPerRun <= 0 {
			t.Errorf("%s/%s: analytic expectation %v", cell.Policy, cell.QoS, cell.ExpectedPerRun)
		}
		if cell.Failures == 0 {
			t.Errorf("%s/%s: accelerated campaign observed no failures", cell.Policy, cell.QoS)
			continue
		}
		if cell.MeanLostPerFail <= 0 || cell.LostPerKiloRun <= 0 {
			t.Errorf("%s/%s: loss accounting empty: %+v", cell.Policy, cell.QoS, cell)
		}
		if cell.QoS == "qos-off" {
			lost[cell.Policy.String()] = cell.MeanLostPerFail
		}
	}
	if !(lost["immediate"] < lost["epoch-end"] && lost["epoch-end"] < lost["watermark"]) {
		t.Errorf("policy ordering violated: immediate %.2f, epoch-end %.2f, watermark %.2f",
			lost["immediate"], lost["epoch-end"], lost["watermark"])
	}
}

// TestCampaignAtPresetMTBF: at the real 500k-hour MTBF the analytic
// expectation is tiny; the auto-sizer must still draw enough runs to
// measure failures rather than reporting an empty campaign.
func TestCampaignAtPresetMTBF(t *testing.T) {
	o := Options{Seed: 1}
	tab, err := o.CampaignFailure()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tab.Points {
		cell := p.Extra.(CampaignCell)
		if cell.ExpectedPerRun >= 0.01 {
			t.Errorf("%s/%s: preset-MTBF expectation %v suspiciously high", cell.Policy, cell.QoS, cell.ExpectedPerRun)
		}
		if cell.Failures == 0 {
			t.Errorf("%s/%s: auto-sized campaign (%d runs) observed no failures", cell.Policy, cell.QoS, cell.Runs)
		}
	}
}
