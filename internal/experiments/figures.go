package experiments

import (
	"fmt"

	"picmcio/internal/bit1"
	"picmcio/internal/cluster"
	"picmcio/internal/darshan"
	"picmcio/internal/ior"
	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/units"
	"picmcio/internal/workload"
)

// defaultBP4TOML is the openPMD configuration with one aggregator per
// node, the ADIOS2 BP4 default the paper's "openPMD + BP4" curves use.
func (o Options) defaultBP4TOML(nodes int) string { return aggrTOML(nodes, "", 1) }

// Fig2 measures BIT1 original file I/O write throughput on Discoverer,
// Dardel and Vega up to 200 nodes.
func (o Options) Fig2() ([]Series, error) {
	o = o.WithDefaults()
	var out []Series
	for _, m := range cluster.Machines() {
		s := Series{Label: m.Name, XLabel: "nodes", YLabel: "GiB/s"}
		for _, nodes := range o.NodeCounts {
			r, err := o.runBIT1(m, nodes, bit1.IOOriginal, "")
			if err != nil {
				return nil, fmt.Errorf("fig2 %s/%d: %w", m.Name, nodes, err)
			}
			s.X = append(s.X, float64(nodes))
			s.Y = append(s.Y, r.ThroughputGiBs)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig3 compares original I/O with openPMD+BP4 on Dardel up to 200 nodes.
func (o Options) Fig3() ([]Series, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	orig := Series{Label: "BIT1 Original I/O", XLabel: "nodes", YLabel: "GiB/s"}
	bp4 := Series{Label: "BIT1 openPMD + BP4", XLabel: "nodes", YLabel: "GiB/s"}
	for _, nodes := range o.NodeCounts {
		ro, err := o.runBIT1(m, nodes, bit1.IOOriginal, "")
		if err != nil {
			return nil, err
		}
		rp, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, o.defaultBP4TOML(nodes))
		if err != nil {
			return nil, err
		}
		orig.X = append(orig.X, float64(nodes))
		orig.Y = append(orig.Y, ro.ThroughputGiBs)
		bp4.X = append(bp4.X, float64(nodes))
		bp4.Y = append(bp4.Y, rp.ThroughputGiBs)
	}
	return []Series{orig, bp4}, nil
}

// runIOR measures the IOR reference lines of Fig. 4 on Dardel.
func (o Options) runIOR(nodes int, filePerProc bool) (float64, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	k := m.NewKernel(nodes)
	sys, err := m.Build(k, nodes, o.Seed)
	if err != nil {
		return 0, err
	}
	// IOR benchmarks large-transfer performance: stripe the shared-file
	// directory wide, as benchmarkers do.
	if sys.Lustre != nil && !filePerProc {
		if err := sys.Lustre.SetStripe("/ior", -1, 16<<20); err != nil {
			return 0, err
		}
	}
	ranks := nodes * o.RanksPerNode
	cfg := ior.DefaultConfig(ranks)
	cfg.FilePerProc = filePerProc
	// Keep the per-task block proportional to the BIT1 per-rank payload
	// so event counts stay bounded at 25 600 tasks.
	cfg.BlockSize = workload.Default().PerRankCheckpoint(ranks) * 4
	if cfg.BlockSize < cfg.TransferSize {
		cfg.TransferSize = cfg.BlockSize
	}
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(m.NetAlpha, m.NetBeta))
	res, err := ior.Run(cfg, w, func(r *mpisim.Rank) *posix.Env {
		node := r.ID / o.RanksPerNode
		if node >= len(sys.Clients) {
			node = len(sys.Clients) - 1
		}
		return &posix.Env{FS: sys.FS, Client: sys.Clients[node], Rank: r.ID}
	})
	if err != nil {
		return 0, err
	}
	return units.GiBps(res.WriteBandwidth), nil
}

// Fig4 compares BIT1 configurations against the IOR reference.
func (o Options) Fig4() ([]Series, error) {
	o = o.WithDefaults()
	base, err := o.Fig3()
	if err != nil {
		return nil, err
	}
	fpp := Series{Label: "IOR (FilePerProc)", XLabel: "nodes", YLabel: "GiB/s"}
	shared := Series{Label: "IOR (Shared)", XLabel: "nodes", YLabel: "GiB/s"}
	for _, nodes := range o.NodeCounts {
		bf, err := o.runIOR(nodes, true)
		if err != nil {
			return nil, err
		}
		bs, err := o.runIOR(nodes, false)
		if err != nil {
			return nil, err
		}
		fpp.X = append(fpp.X, float64(nodes))
		fpp.Y = append(fpp.Y, bf)
		shared.X = append(shared.X, float64(nodes))
		shared.Y = append(shared.Y, bs)
	}
	return append(base, fpp, shared), nil
}

// Fig5Result holds the per-process cost decomposition.
type Fig5Result struct {
	Original, OpenPMD struct {
		ReadSec, MetaSec, WriteSec float64
	}
}

// Fig5 measures average per-process read/metadata/write seconds on 200
// nodes (full-run equivalent), original vs openPMD+BP4.
func (o Options) Fig5(nodes int) (*Fig5Result, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	ro, err := o.runBIT1(m, nodes, bit1.IOOriginal, "")
	if err != nil {
		return nil, err
	}
	rp, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, o.defaultBP4TOML(nodes))
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	res.Original.ReadSec, res.Original.MetaSec, res.Original.WriteSec = ro.ReadSec, ro.MetaSec, ro.WriteSec
	res.OpenPMD.ReadSec, res.OpenPMD.MetaSec, res.OpenPMD.WriteSec = rp.ReadSec, rp.MetaSec, rp.WriteSec
	return res, nil
}

// Fig6Aggregators is the sweep of the paper's Fig. 6.
var Fig6Aggregators = []int{1, 2, 25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600}

// Fig6 sweeps the aggregator count on a fixed node allocation (paper:
// 200 nodes = 25 600 ranks).
func (o Options) Fig6(nodes int, aggs []int) (Series, error) {
	o = o.WithDefaults()
	if len(aggs) == 0 {
		aggs = Fig6Aggregators
	}
	m := cluster.Dardel()
	s := Series{Label: fmt.Sprintf("openPMD+BP4 @%d nodes", nodes), XLabel: "aggregators", YLabel: "GiB/s"}
	ranks := nodes * o.RanksPerNode
	for _, a := range aggs {
		if a > ranks {
			continue
		}
		r, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(a, "", 1))
		if err != nil {
			return s, err
		}
		s.X = append(s.X, float64(a))
		s.Y = append(s.Y, r.ThroughputGiBs)
	}
	return s, nil
}

// Fig7 compares original I/O with openPMD+BP4+Blosc (1 aggregator) as
// node count scales.
func (o Options) Fig7() ([]Series, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	ratio, err := MeasuredRatio("blosc")
	if err != nil {
		return nil, err
	}
	orig := Series{Label: "BIT1 Original I/O", XLabel: "nodes", YLabel: "GiB/s"}
	blosc := Series{Label: "openPMD+BP4+Blosc 1AGGR", XLabel: "nodes", YLabel: "GiB/s"}
	plain := Series{Label: "openPMD+BP4 1AGGR", XLabel: "nodes", YLabel: "GiB/s"}
	for _, nodes := range o.NodeCounts {
		ro, err := o.runBIT1(m, nodes, bit1.IOOriginal, "")
		if err != nil {
			return nil, err
		}
		rb, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(1, "blosc", ratio))
		if err != nil {
			return nil, err
		}
		rp, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(1, "", 1))
		if err != nil {
			return nil, err
		}
		orig.X = append(orig.X, float64(nodes))
		orig.Y = append(orig.Y, ro.ThroughputGiBs)
		blosc.X = append(blosc.X, float64(nodes))
		blosc.Y = append(blosc.Y, rb.ThroughputGiBs)
		plain.X = append(plain.X, float64(nodes))
		plain.Y = append(plain.Y, rp.ThroughputGiBs)
	}
	return []Series{orig, blosc, plain}, nil
}

// Fig8Result reports the profiling.json memcpy times (µs) with and
// without compression.
type Fig8Result struct {
	MemcpyMicrosNoComp  float64
	MemcpyMicrosBlosc   float64
	CompressMicrosBlosc float64
}

// Fig8 extracts memory-copy times from profiling.json on a fixed node
// allocation, with and without Blosc (1 aggregator), reproducing the
// "memcpy eliminated under compression" observation.
func (o Options) Fig8(nodes int) (*Fig8Result, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	plain, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(1, "", 1))
	if err != nil {
		return nil, err
	}
	ratio, err := MeasuredRatio("blosc")
	if err != nil {
		return nil, err
	}
	blosc, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(1, "blosc", ratio))
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	if plain.Profile != nil {
		res.MemcpyMicrosNoComp = float64(plain.Profile.Memcpy) * 1e6
	}
	if blosc.Profile != nil {
		res.MemcpyMicrosBlosc = float64(blosc.Profile.Memcpy) * 1e6
		res.CompressMicrosBlosc = float64(blosc.Profile.Compress) * 1e6
	}
	return res, nil
}

// Tab1 renders the IOR command lines of Table I.
func Tab1() Table {
	fpp := ior.DefaultConfig(25600)
	fpp.FilePerProc = true
	shared := ior.DefaultConfig(25600)
	return Table{
		Title:  "Table I: IOR command lines on Dardel LFS (200 nodes)",
		Header: []string{"benchmark", "command"},
		Rows: [][]string{
			{"IOR (FilePerProc)", fpp.CommandLine()},
			{"IOR (Shared)", shared.CommandLine()},
		},
	}
}

// Tab2Configs names the four Table II configurations.
var Tab2Configs = []string{
	"BIT1 Original I/O",
	"BIT1 openPMD + BP4",
	"BIT1 openPMD + BP4 + 1 AGGR",
	"BIT1 openPMD + BP4 + Blosc + 1 AGGR",
}

// Tab2 regenerates Table II: written file counts and sizes per
// configuration and node count.
func (o Options) Tab2() (Table, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	t := Table{
		Title:  "Table II: BIT1 write files on Dardel CPU LFS",
		Header: []string{"configuration", "nodes", "total files", "avg size", "max size"},
	}
	ratio, err := MeasuredRatio("blosc")
	if err != nil {
		return t, err
	}
	for _, cfgName := range Tab2Configs {
		for _, nodes := range o.NodeCounts {
			var r *RunResult
			var err error
			switch cfgName {
			case "BIT1 Original I/O":
				r, err = o.runBIT1(m, nodes, bit1.IOOriginal, "")
			case "BIT1 openPMD + BP4":
				r, err = o.runBIT1(m, nodes, bit1.IOOpenPMD, o.defaultBP4TOML(nodes))
			case "BIT1 openPMD + BP4 + 1 AGGR":
				r, err = o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(1, "", 1))
			case "BIT1 openPMD + BP4 + Blosc + 1 AGGR":
				r, err = o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(1, "blosc", ratio))
			}
			if err != nil {
				return t, fmt.Errorf("tab2 %q/%d: %w", cfgName, nodes, err)
			}
			t.Rows = append(t.Rows, []string{
				cfgName, fmt.Sprint(nodes), fmt.Sprint(r.Files.Count),
				units.Bytes(r.Files.AvgBytes), units.Bytes(r.Files.MaxBytes),
			})
		}
	}
	return t, nil
}

// Fig9StripeSizes and Fig9OSTCounts are the paper's sweep axes.
var (
	Fig9StripeSizes = []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	Fig9OSTCounts   = []int{1, 2, 4, 8, 16, 32, 48}
)

// Fig9 sweeps Lustre stripe size × stripe count for openPMD+BP4+Blosc
// with one aggregator, reporting write seconds per cell.
func (o Options) Fig9(nodes int, sizes []int64, counts []int) (Table, error) {
	o = o.WithDefaults()
	if len(sizes) == 0 {
		sizes = Fig9StripeSizes
	}
	if len(counts) == 0 {
		counts = Fig9OSTCounts
	}
	m := cluster.Dardel()
	ratio, err := MeasuredRatio("blosc")
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("Fig 9: write time (s), openPMD+BP4+Blosc, 1 AGGR, %d nodes", nodes),
		Header: []string{"stripe size"},
	}
	for _, c := range counts {
		t.Header = append(t.Header, fmt.Sprintf("%d OST", c))
	}
	for _, size := range sizes {
		row := []string{units.Bytes(size)}
		for _, count := range counts {
			sec, err := o.fig9Cell(m, nodes, count, size, ratio)
			if err != nil {
				return t, err
			}
			row = append(row, units.Seconds(sec))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9CellPublic measures one striping cell on Dardel (exported for the
// striping-tuning example and ablation benches).
func (o Options) Fig9CellPublic(nodes, stripeCount int, stripeSize int64) (float64, error) {
	ratio, err := MeasuredRatio("blosc")
	if err != nil {
		return 0, err
	}
	return o.fig9Cell(cluster.Dardel(), nodes, stripeCount, stripeSize, ratio)
}

// fig9Cell measures the aggregator's data write time for one striping
// configuration.
func (o Options) fig9Cell(m cluster.Machine, nodes, stripeCount int, stripeSize int64, ratio float64) (float64, error) {
	o = o.WithDefaults()
	// One output epoch is what the paper times.
	o.DiagEpochs, o.CheckpointEpochs = 1, 1
	k := m.NewKernel(nodes)
	sys, err := m.Build(k, nodes, o.Seed)
	if err != nil {
		return 0, err
	}
	if err := sys.Lustre.SetStripe("/scratch", stripeCount, stripeSize); err != nil {
		return 0, err
	}
	ranks := nodes * o.RanksPerNode
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(m.NetAlpha, m.NetBeta))
	colr := darshan.NewCollector()
	cfg := bit1.Config{
		Deck:           o.deck(),
		Sizing:         workload.Default(),
		OutDir:         "/scratch/bit1",
		Mode:           bit1.IOOpenPMD,
		OpenPMDOptions: aggrTOML(1, "blosc", ratio),
		StdioOverhead:  sim.Duration(m.StdioWriteOverhead),
	}
	var firstErr error
	w.Run(func(r *mpisim.Rank) {
		node := r.ID / o.RanksPerNode
		if node >= len(sys.Clients) {
			node = len(sys.Clients) - 1
		}
		env := &posix.Env{FS: sys.FS, Stage: sys.StagedFS(), Client: sys.Clients[node], Rank: r.ID, Monitor: colr}
		if err := bit1.Run(cfg, bit1.RankEnv{Rank: r, Env: env}); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	if firstErr != nil {
		return 0, firstErr
	}
	log := colr.Snapshot(darshan.JobMeta{NProcs: ranks, Machine: m.Name, RunSeconds: float64(k.Now())})
	// The quantity Fig. 9 reports: time spent writing the BP4 data
	// payload (per write call, at the aggregator).
	var writeSec float64
	var writes int64
	for i := range log.Records {
		rec := &log.Records[i]
		if isDataSubfile(rec.Path) {
			writeSec += rec.FCount[darshan.POSIX_F_WRITE_TIME]
			writes += rec.Counters[darshan.POSIX_WRITES]
		}
	}
	if writes == 0 {
		return 0, fmt.Errorf("fig9: no data subfile writes recorded")
	}
	return writeSec / float64(writes), nil
}

func isDataSubfile(path string) bool {
	return pfs.Clean(path) != "" && len(path) > 6 && contains(path, ".bp4/data.")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Listing1 reproduces the paper's Listing 1 on a simulated Dardel: create
// a striped file and render its layout as `lfs getstripe` would.
func Listing1() (string, error) {
	m := cluster.Dardel()
	k := m.NewKernel(1)
	sys, err := m.Build(k, 1, 1)
	if err != nil {
		return "", err
	}
	if err := sys.Lustre.SetStripe("/io_openPMD", 8, 16<<20); err != nil {
		return "", err
	}
	k.Spawn("w", func(p *sim.Proc) {
		env := &posix.Env{FS: sys.FS, Client: sys.Clients[0]}
		fd, err := env.Create(p, "/io_openPMD/dat_file.bp4/data.0")
		if err != nil {
			return
		}
		fd.Write(p, 64<<20, nil)
		fd.Close(p)
	})
	k.Run()
	lay, err := sys.Lustre.GetStripe("/io_openPMD/dat_file.bp4/data.0")
	if err != nil {
		return "", err
	}
	return lustre.FormatGetStripe("io_openPMD/dat_file.bp4/data.0", lay), nil
}
