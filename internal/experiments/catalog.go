package experiments

import (
	"fmt"
	"strings"

	"picmcio/internal/fault"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
)

// Output is one rendered artifact: the text block cmd/experiments
// prints, plus — for sweep-backed artifacts — the machine-readable
// sweep table the -json emitter serializes.
type Output struct {
	Text  string
	Table *sweep.Table // nil for artifacts without a sweep form
}

// Artifact is one named entry of the evaluation catalogue.
type Artifact struct {
	Name string
	Desc string
	// Run renders the artifact; nodes is the fixed-scale node count the
	// node-parameterized artifacts (fig5, fig6, fig8, fig9) use.
	Run func(o Options, nodes int) (Output, error)
}

// Catalog lists every artifact in run-all order. cmd/experiments -list
// prints it; -run resolves names against it.
func Catalog() []Artifact { return catalog }

// Lookup finds an artifact by name.
func Lookup(name string) (Artifact, bool) {
	for _, a := range catalog {
		if a.Name == name {
			return a, true
		}
	}
	return Artifact{}, false
}

var catalog = []Artifact{
	{"fig2", "BIT1 original file I/O write throughput on all three machines", func(o Options, _ int) (Output, error) {
		ss, err := o.Fig2()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: RenderSeries("Fig 2: BIT1 original file I/O write throughput (GiB/s)", "nodes", ss) + "\n"}, nil
	}},
	{"fig3", "original I/O vs openPMD+BP4 scaling on Dardel", func(o Options, _ int) (Output, error) {
		ss, err := o.Fig3()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: RenderSeries("Fig 3: original vs openPMD+BP4 on Dardel (GiB/s)", "nodes", ss) + "\n"}, nil
	}},
	{"fig4", "BIT1 configurations vs the IOR reference lines on Dardel", func(o Options, _ int) (Output, error) {
		ss, err := o.Fig4()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: RenderSeries("Fig 4: BIT1 vs IOR on Dardel (GiB/s)", "nodes", ss) + "\n"}, nil
	}},
	{"fig5", "per-process read/metadata/write cost decomposition (full-run equivalent)", func(o Options, nodes int) (Output, error) {
		r, err := o.Fig5(nodes)
		if err != nil {
			return Output{}, err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# Fig 5: avg I/O cost per process on Dardel, %d nodes (full-run equivalent)\n", nodes)
		fmt.Fprintf(&b, "%-24s  %-12s %-12s %-12s\n", "configuration", "read", "metadata", "write")
		fmt.Fprintf(&b, "%-24s  %-12s %-12s %-12s\n", "BIT1 Original I/O",
			units.Seconds(r.Original.ReadSec), units.Seconds(r.Original.MetaSec), units.Seconds(r.Original.WriteSec))
		fmt.Fprintf(&b, "%-24s  %-12s %-12s %-12s\n", "BIT1 openPMD + BP4",
			units.Seconds(r.OpenPMD.ReadSec), units.Seconds(r.OpenPMD.MetaSec), units.Seconds(r.OpenPMD.WriteSec))
		if r.Original.MetaSec > 0 {
			fmt.Fprintf(&b, "metadata reduction: %.2f%%\n", 100*(1-r.OpenPMD.MetaSec/r.Original.MetaSec))
		}
		if r.Original.WriteSec > 0 {
			fmt.Fprintf(&b, "write reduction:    %.2f%%\n\n", 100*(1-r.OpenPMD.WriteSec/r.Original.WriteSec))
		}
		return Output{Text: b.String()}, nil
	}},
	{"fig6", "BP4 aggregator-count sweep at fixed node allocation", func(o Options, nodes int) (Output, error) {
		s, err := o.Fig6(nodes, nil)
		if err != nil {
			return Output{}, err
		}
		return Output{Text: RenderSeries(
			fmt.Sprintf("Fig 6: aggregator sweep on Dardel, %d nodes (GiB/s)", nodes), "aggregators", []Series{s}) + "\n"}, nil
	}},
	{"fig7", "openPMD+BP4+Blosc with one aggregator vs original I/O", func(o Options, _ int) (Output, error) {
		ss, err := o.Fig7()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: RenderSeries("Fig 7: Blosc + 1 AGGR vs original on Dardel (GiB/s)", "nodes", ss) + "\n"}, nil
	}},
	{"fig8", "BP4 memcpy elimination under compression (profiling.json)", func(o Options, nodes int) (Output, error) {
		r, err := o.Fig8(nodes)
		if err != nil {
			return Output{}, err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# Fig 8: BP4 memcpy time from profiling.json, %d nodes\n", nodes)
		fmt.Fprintf(&b, "without compression: %.1f µs total memcpy\n", r.MemcpyMicrosNoComp)
		fmt.Fprintf(&b, "with Blosc:          %.1f µs total memcpy (compress: %.1f µs)\n\n",
			r.MemcpyMicrosBlosc, r.CompressMicrosBlosc)
		return Output{Text: b.String()}, nil
	}},
	{"fig9", "Lustre stripe size × OST count write-time grid", func(o Options, nodes int) (Output, error) {
		t, err := o.Fig9(nodes, nil, nil)
		if err != nil {
			return Output{}, err
		}
		return Output{Text: t.Render() + "\n"}, nil
	}},
	{"figburst", "direct vs burst-buffer-staged openPMD+BP4 with drain accounting", func(o Options, _ int) (Output, error) {
		st, err := o.FigBurstSweep()
		if err != nil {
			return Output{}, err
		}
		ss, pts := burstSeriesAndPoints(st)
		var b strings.Builder
		b.WriteString(RenderSeries(st.Title, "nodes", ss) + "\n")
		t := Table{
			Title:  "Fig B drain accounting (Dardel burst tier)",
			Header: []string{"nodes", "drain busy", "drain tail", "overlap", "absorbed", "fallback"},
		}
		for _, pt := range pts {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(pt.Nodes),
				units.Seconds(pt.DrainSec),
				units.Seconds(pt.DrainTailSec),
				fmt.Sprintf("%.1f%%", 100*pt.OverlapFrac),
				units.Bytes(pt.AbsorbedBytes),
				units.Bytes(pt.FallbackBytes),
			})
		}
		b.WriteString(t.Render() + "\n")
		return Output{Text: b.String(), Table: &st}, nil
	}},
	{"figcontention", "two-job contention under each drain-QoS policy (slowdown, Jain)", func(o Options, _ int) (Output, error) {
		st, err := o.FigContentionSweep()
		if err != nil {
			return Output{}, err
		}
		t, rows := contentionTable(st)
		var b strings.Builder
		b.WriteString(t.Render() + "\n")
		for _, row := range rows {
			res := row.Result
			fmt.Fprintf(&b, "%-10s  max slowdown %.3fx  Jain %.4f\n", row.Policy, res.MaxSlowdown(), res.Jain)
		}
		b.WriteString("\n")
		return Output{Text: b.String(), Table: &st}, nil
	}},
	{"figworkload", "workload × drain-QoS × aggregator-count composition grid (chunked writer vs BIT1 rank schedule)", func(o Options, _ int) (Output, error) {
		st, err := o.FigWorkloadSweep()
		if err != nil {
			return Output{}, err
		}
		t, cells := workloadTable(st)
		var b strings.Builder
		b.WriteString(t.Render() + "\n")
		// Summary line the aggregator axis exists to show: funnelling the
		// same volume through fewer writer nodes changes when it is durable.
		for _, qos := range WorkloadQoSPolicies {
			fmt.Fprintf(&b, "rank schedule, %-11s staged durable by aggregator count:", qos+":")
			for _, c := range cells {
				if c.Kind == "ranks" && c.QoS == qos {
					fmt.Fprintf(&b, "  %d aggr %s", c.Aggr, units.Seconds(c.Result.Jobs[0].DurableSec))
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
		return Output{Text: b.String(), Table: &st}, nil
	}},
	{"figfault", "node-loss grid: kill-time × drain-policy × QoS, plus survivability", func(o Options, _ int) (Output, error) {
		st, err := o.FigFaultSweep()
		if err != nil {
			return Output{}, err
		}
		t, cells := faultTable(st)
		m := FaultMachine()
		var b strings.Builder
		fmt.Fprintf(&b, "# %s node MTBF %.0fk h: a 24 h full-machine run expects %.2f node failures\n",
			m.Name, m.MTBFNodeHours/1e3, fault.ExpectedFailures(m.MTBFNodeHours, m.MaxNodes, 24*3600))
		b.WriteString(t.Render() + "\n")
		// Sanity line the grid exists to show: deferring write-back
		// raises what a node loss costs.
		lost := map[string]int{}
		for _, c := range cells {
			if c.QoS == "qos-off" {
				lost[c.Policy.String()] += c.Report.LostEpochsPFS
			}
		}
		fmt.Fprintf(&b, "lost epochs on node loss (qos-off, summed over kill times): immediate %d < epoch-end %d <= watermark %d\n",
			lost["immediate"], lost["epoch-end"], lost["watermark"])
		sc, err := o.FigFaultSurvival()
		if err != nil {
			return Output{}, err
		}
		nl, nk := sc.NodeLoss.Fault, sc.NVMeKeep.Fault
		fmt.Fprintf(&b, "survivability (watermark drain, kill e%d+%.0f%%): node loss restarts from epoch %d (%s destroyed); "+
			"NVMe-surviving state restarts from epoch %d (%s redrained)\n\n",
			nl.Spec.KillEpoch, 100*nl.Spec.KillFrac, nl.RestartEpoch, units.Bytes(nl.LostBytes),
			nk.RestartEpoch, units.Bytes(nk.RedrainBytes))
		return Output{Text: b.String(), Table: &st}, nil
	}},
	{"figsizing", "burst capacity × drain-rate sizing grid per machine (the staging knee)", func(o Options, _ int) (Output, error) {
		st, err := o.FigSizing()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: renderSizing(st), Table: &st}, nil
	}},
	{"figinterval", "expected checkpoint waste vs epoch length, Young/Daly optima on measured costs", func(o Options, _ int) (Output, error) {
		st, err := o.FigIntervalSweep()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: renderInterval(st), Table: &st}, nil
	}},
	{"campfail", "stochastic MTBF failure campaign: expected lost node-hours per policy/QoS (-optimal: validate the ckptopt interval)", func(o Options, _ int) (Output, error) {
		if o.CampaignOptimal {
			st, err := o.CampaignOptimum()
			if err != nil {
				return Output{}, err
			}
			return Output{Text: renderOptimal(st), Table: &st}, nil
		}
		st, err := o.CampaignFailure()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: renderCampaign(st), Table: &st}, nil
	}},
	{"figsched", "batch-scheduling campaign: FCFS vs EASY backfill over multi-tenant job streams", func(o Options, _ int) (Output, error) {
		st, err := o.FigSched()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: renderSched(st), Table: &st}, nil
	}},
	{"figfair", "fairness-under-failures campaign: fair-share vs FCFS/EASY with preemption and node failures", func(o Options, _ int) (Output, error) {
		st, err := o.FigFair()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: renderFair(st), Table: &st}, nil
	}},
	{"tab1", "IOR command lines of Table I", func(Options, int) (Output, error) {
		return Output{Text: Tab1().Render() + "\n"}, nil
	}},
	{"tab2", "written file counts and sizes per configuration (Table II)", func(o Options, _ int) (Output, error) {
		t, err := o.Tab2()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: t.Render() + "\n"}, nil
	}},
	{"lst1", "lfs getstripe on a simulated striped file (Listing 1)", func(Options, int) (Output, error) {
		out, err := Listing1()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: "# Listing 1: lfs getstripe on simulated Dardel\n" +
			"$ lfs getstripe io_openPMD/dat_file.bp4/data.0\n" + out + "\n"}, nil
	}},
}

// burstSeriesAndPoints derives the figure's series and typed points from
// the sweep table (shared by FigBurst and the catalogue entry).
func burstSeriesAndPoints(t sweep.Table) ([]Series, []BurstPoint) {
	direct := Series{Label: "openPMD+BP4 direct", XLabel: "nodes", YLabel: "GiB/s"}
	staged := Series{Label: "openPMD+BP4 staged", XLabel: "nodes", YLabel: "GiB/s"}
	var pts []BurstPoint
	for _, p := range t.Points {
		pt := p.Extra.(BurstPoint)
		pts = append(pts, pt)
		direct.X = append(direct.X, float64(pt.Nodes))
		direct.Y = append(direct.Y, pt.DirectGiBs)
		staged.X = append(staged.X, float64(pt.Nodes))
		staged.Y = append(staged.Y, pt.StagedGiBs)
	}
	return []Series{direct, staged}, pts
}
