package experiments

import (
	"fmt"
	"strings"

	"picmcio/internal/burst"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/sim"
	"picmcio/internal/sweep"
	"picmcio/internal/xrand"
)

// campaignTargetFailures is what the auto-sized draw count aims for: at
// the preset MTBF a run almost never fails, so the campaign draws enough
// runs that each cell expects roughly this many failures to measure.
const campaignTargetFailures = 12

// campaignMaxRuns caps the auto-sized draw count: a draw is a couple of
// exponential samples, so even the cap is cheap. (Per-draw work is
// bounded separately by fault.Arrivals' own truncation.)
const campaignMaxRuns = 200_000

// CampaignCell is one (drain policy × QoS) cell of the stochastic
// failure campaign: the Monte-Carlo accounting over all sampled runs.
type CampaignCell struct {
	Policy burst.Policy
	QoS    string

	Runs             int     // production runs sampled
	ExpectedPerRun   float64 // analytic expected failures per run (λ)
	Failures         int     // runs whose first arrival landed inside the span
	LostNodeHours    float64 // total lost node-hours across failing runs
	MeanLostPerFail  float64 // mean lost node-hours per failure
	LostPerKiloRun   float64 // expected lost node-hours per 1000 runs
	MeanFaultCostSec float64 // mean simulated durable-completion cost per failure
}

// CampaignFailure is the stochastic failure campaign (ROADMAP: report
// expected lost node-hours per drain policy/QoS instead of single-kill
// grids). Per (drain policy × QoS) cell it samples a campaign of
// production runs of the FigFault victim/neighbour scenario, each run
// CampaignEpochHours of wall-clock per epoch long. Failure arrivals are
// exponential draws (fault.Arrivals over the victim job's nodes at the
// machine's MTBFNodeHours); a run whose first arrival lands inside the
// span is simulated with the kill mapped onto (epoch, fraction, node),
// and its recovery cost converted to lost node-hours via the campaign
// clock. Seeding comes from the sweep engine's per-trial derivation, so
// a parallel campaign draws the exact arrivals a serial one does.
func (o Options) CampaignFailure() (sweep.Table, error) {
	o = o.WithDefaults()
	m := FaultMachine()
	mtbf := m.MTBFNodeHours
	if o.CampaignMTBFHours > 0 {
		mtbf = o.CampaignMTBFHours
	}
	// The campaign's arrival rate and victim sampling derive from the
	// scenario's own victim job, so a resized faultScenario cannot
	// silently drift out of step with the sampler.
	victim := faultScenario(burst.PolicyImmediate, burst.QoS{}, nil)[0]
	wl := victim.Workload.Shape()
	victimNodes := victim.Nodes
	spanHours := float64(wl.Epochs) * o.CampaignEpochHours
	lambda := fault.ExpectedFailures(mtbf, victimNodes, sim.Duration(spanHours*3600))
	runs := o.CampaignRuns
	if runs <= 0 {
		runs = campaignMaxRuns
		// Compare in float space: a huge MTBF makes the needed draw count
		// overflow int, and a wrapped-negative count would silently empty
		// the campaign.
		if need := campaignTargetFailures / lambda; lambda > 0 && need+1 < float64(runs) {
			runs = int(need) + 1
		}
	}
	g := sweep.Grid{faultPolicyAxis(), sweep.Strings("qos", FaultQoSPolicies)}
	title := fmt.Sprintf("Campaign F: stochastic node failures on %s (MTBF %.3gk h, %d-epoch runs, %g h/epoch, %d runs/cell)",
		m.Name, mtbf/1e3, wl.Epochs, o.CampaignEpochHours, runs)
	return sweep.Run(g, o.sweepOptions(title),
		func(c sweep.Config) (sweep.Point, error) {
			pol := c.Value("policy").(burst.Policy)
			qosName := c.Str("qos")
			qos, err := faultQoS(qosName)
			if err != nil {
				return sweep.Point{}, err
			}
			cell := CampaignCell{Policy: pol, QoS: qosName, Runs: runs, ExpectedPerRun: lambda}
			rng := xrand.New(c.Seed)
			specs := faultScenario(pol, qos, nil)
			// One clean baseline serves every failing run of the cell: the
			// scenario is deterministic under o.Seed.
			clean, err := jobs.Run(m, specs, o.Seed)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("campfail clean: %w", err)
			}
			for run := 0; run < runs; run++ {
				arrivals := fault.Arrivals(rng, mtbf, victimNodes, spanHours)
				if len(arrivals) == 0 {
					continue
				}
				// First-failure truncation: λ ≪ 1 per run, so the chance of
				// a second failure inside one run's span is negligible and
				// the recovery dynamics of a single kill are what the drain
				// policies differ on.
				t := arrivals[0]
				epoch := int(t / o.CampaignEpochHours)
				if epoch >= wl.Epochs {
					epoch = wl.Epochs - 1
				}
				frac := t/o.CampaignEpochHours - float64(epoch)
				if frac >= 1 {
					frac = 0.999999
				}
				fs := &fault.Spec{
					KillEpoch: epoch,
					KillFrac:  frac,
					Node:      rng.Intn(victimNodes),
					Survival:  m.NVMeSurvival,
					// The figfault-scale reschedule delay keeps the sim
					// readable; the production-hours cost uses the machine's
					// real NodeRestartSec below.
					RestartDelay: 0.05,
				}
				res, err := jobs.Run(m, jobs.WithFault(specs, 0, fs), o.Seed)
				if err != nil {
					return sweep.Point{}, fmt.Errorf("campfail run %d: %w", run, err)
				}
				if res[0].Fault == nil {
					// The sampled victim finished before the kill fired (a
					// kill in the last epoch's tail): no recovery, nothing
					// lost.
					continue
				}
				cell.Failures++
				cell.LostNodeHours += res[0].LostNodeHours(o.CampaignEpochHours, m.NodeRestartSec/3600)
				cell.MeanFaultCostSec += res[0].DurableSec - clean[0].DurableSec
			}
			if cell.Failures > 0 {
				cell.MeanLostPerFail = cell.LostNodeHours / float64(cell.Failures)
				cell.MeanFaultCostSec /= float64(cell.Failures)
			}
			if runs > 0 {
				cell.LostPerKiloRun = cell.LostNodeHours / float64(runs) * 1000
			}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("runs", float64(cell.Runs)),
					sweep.V("exp_failures_per_run", cell.ExpectedPerRun),
					sweep.V("failures", float64(cell.Failures)),
					sweep.V("mean_lost_nh_per_fail", cell.MeanLostPerFail),
					sweep.V("lost_nh_per_kilorun", cell.LostPerKiloRun),
					sweep.V("mean_fault_cost_s", cell.MeanFaultCostSec),
				},
				Extra: cell,
			}, nil
		})
}

// renderCampaign builds the artifact's text block: the campaign table
// plus the policy ordering the campaign exists to quantify.
func renderCampaign(t sweep.Table) string {
	var b strings.Builder
	b.WriteString(t.Render())
	lost := map[string]float64{}
	for _, p := range t.Points {
		cell := p.Extra.(CampaignCell)
		if cell.QoS == "qos-off" {
			lost[cell.Policy.String()] = cell.MeanLostPerFail
		}
	}
	fmt.Fprintf(&b, "mean lost node-hours per failure (qos-off): immediate %.2f, epoch-end %.2f, watermark %.2f\n\n",
		lost["immediate"], lost["epoch-end"], lost["watermark"])
	return b.String()
}
