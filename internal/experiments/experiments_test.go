package experiments

import (
	"strings"
	"testing"

	"picmcio/internal/bit1"
	"picmcio/internal/cephfs"
	"picmcio/internal/cluster"
	"picmcio/internal/nfs"
)

// testOptions keeps unit-test runs light: 8 ranks/node, 2 epochs.
func testOptions() Options {
	return Options{Seed: 1, RanksPerNode: 8, NodeCounts: []int{1, 4}, DiagEpochs: 2}
}

func TestRunBIT1BothModes(t *testing.T) {
	o := testOptions()
	m := cluster.Dardel()
	orig, err := o.RunBIT1Public(m, 2, bit1.IOOriginal, "")
	if err != nil {
		t.Fatal(err)
	}
	bp4, err := o.RunBIT1Public(m, 2, bit1.IOOpenPMD, aggrTOML(2, "", 1))
	if err != nil {
		t.Fatal(err)
	}
	if orig.ThroughputGiBs <= 0 || bp4.ThroughputGiBs <= 0 {
		t.Fatalf("throughputs: %v %v", orig.ThroughputGiBs, bp4.ThroughputGiBs)
	}
	if bp4.ThroughputGiBs <= orig.ThroughputGiBs {
		t.Fatalf("BP4 (%v) must beat original (%v)", bp4.ThroughputGiBs, orig.ThroughputGiBs)
	}
	// Table II structure: original = 2·ranks + 6 (+1 for nothing else).
	if orig.Files.Count != 2*16+6 {
		t.Fatalf("original files=%d", orig.Files.Count)
	}
	if bp4.Files.Count != 2+5 {
		t.Fatalf("bp4 files=%d", bp4.Files.Count)
	}
}

func TestEpochExtrapolation(t *testing.T) {
	o := testOptions()
	if f := o.WithDefaults().EpochFactor(); f != 100 {
		t.Fatalf("epoch factor=%v, want 200/2", f)
	}
	m := cluster.Dardel()
	r, err := o.RunBIT1Public(m, 1, bit1.IOOriginal, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.MetaSec <= 0 || r.WriteSec <= 0 {
		t.Fatalf("per-proc times: meta=%v write=%v", r.MetaSec, r.WriteSec)
	}
}

func TestFig5Reduction(t *testing.T) {
	o := testOptions()
	r, err := o.Fig5(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.OpenPMD.MetaSec >= r.Original.MetaSec {
		t.Fatalf("metadata not reduced: %v -> %v", r.Original.MetaSec, r.OpenPMD.MetaSec)
	}
	if r.OpenPMD.WriteSec >= r.Original.WriteSec {
		t.Fatalf("write time not reduced: %v -> %v", r.Original.WriteSec, r.OpenPMD.WriteSec)
	}
	if r.Original.ReadSec <= 0 || r.OpenPMD.ReadSec <= 0 {
		t.Fatal("input-deck reads must appear in both configurations")
	}
}

func TestFig6ShapeRisesThenFalls(t *testing.T) {
	o := testOptions()
	s, err := o.Fig6(4, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 3 {
		t.Fatalf("points=%d", len(s.Y))
	}
	if s.Y[1] <= s.Y[0] {
		t.Fatalf("aggregation should help: %v", s.Y)
	}
}

func TestFig8MemcpyElimination(t *testing.T) {
	o := testOptions()
	r, err := o.Fig8(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemcpyMicrosNoComp <= 0 {
		t.Fatal("plain run must pay memcpy")
	}
	if r.MemcpyMicrosBlosc != 0 {
		t.Fatalf("blosc run paid %v µs memcpy", r.MemcpyMicrosBlosc)
	}
	if r.CompressMicrosBlosc <= 0 {
		t.Fatal("blosc run must pay compression time")
	}
}

func TestTab1CommandLines(t *testing.T) {
	tab := Tab1()
	out := tab.Render()
	for _, want := range []string{"srun -n 25600 ior", "-a POSIX -F -C -e", "-a POSIX -C -e"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTab2ConstantFilesWith1Aggr(t *testing.T) {
	o := testOptions()
	tab, err := o.Tab2()
	if err != nil {
		t.Fatal(err)
	}
	// Find the 1-AGGR rows: file count must be constant (6) across nodes.
	var counts []string
	for _, row := range tab.Rows {
		if row[0] == "BIT1 openPMD + BP4 + 1 AGGR" {
			counts = append(counts, row[2])
		}
	}
	if len(counts) != len(o.WithDefaults().NodeCounts) {
		t.Fatalf("rows=%d", len(counts))
	}
	for _, c := range counts {
		if c != "6" {
			t.Fatalf("1 AGGR file counts=%v, want constant 6", counts)
		}
	}
}

func TestFig9TableShape(t *testing.T) {
	o := testOptions()
	tab, err := o.Fig9(2, []int64{1 << 20, 16 << 20}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Header) != 3 {
		t.Fatalf("table %dx%d", len(tab.Rows), len(tab.Header))
	}
}

func TestFig9StripingHelps(t *testing.T) {
	o := testOptions()
	t1, err := o.Fig9CellPublic(2, 1, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := o.Fig9CellPublic(2, 8, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if t8 >= t1 {
		t.Fatalf("8-OST striping (%v) not faster than 1 OST (%v)", t8, t1)
	}
}

func TestListing1Format(t *testing.T) {
	out, err := Listing1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lmm_stripe_count:  8", "lmm_stripe_size:   16777216", "raid0", "obdidx"} {
		if !strings.Contains(out, want) {
			t.Errorf("Listing 1 missing %q:\n%s", want, out)
		}
	}
}

func TestMeasuredRatio(t *testing.T) {
	if r, err := MeasuredRatio("none"); err != nil || r != 1 {
		t.Fatalf("none ratio=%v err=%v", r, err)
	}
	rb, err := MeasuredRatio("blosc")
	if err != nil {
		t.Fatal(err)
	}
	if rb <= 0 || rb >= 1 {
		t.Fatalf("blosc ratio=%v, want in (0,1)", rb)
	}
	// Cached second call must agree.
	if rb2, err := MeasuredRatio("blosc"); err != nil || rb2 != rb {
		t.Fatalf("ratio cache inconsistent: %v vs %v (err=%v)", rb, rb2, err)
	}
	// An unknown codec must surface the error, not silently assume 1.
	if r, err := MeasuredRatio("lz-nope"); err == nil {
		t.Fatalf("unknown codec returned ratio %v with no error", r)
	}
}

// TestFileStatsOnAllBackends pins the namespaceOf fix: Table II file
// statistics must come back nonzero on NFS- and CephFS-backed machines,
// not only on Lustre.
func TestFileStatsOnAllBackends(t *testing.T) {
	o := Options{Seed: 1, RanksPerNode: 4, NodeCounts: []int{1}, DiagEpochs: 1}
	for _, m := range []cluster.Machine{nfsMachine(), cephMachine()} {
		r, err := o.RunBIT1Public(m, 1, bit1.IOOpenPMD, aggrTOML(1, "", 1))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if r.Files.Count == 0 || r.Files.TotalBytes == 0 {
			t.Errorf("%s: file stats empty: %+v", m.Name, r.Files)
		}
		if r.Profile == nil {
			t.Errorf("%s: BP4 profile missing", m.Name)
		}
	}
}

// nfsMachine is a small single-server NFS machine for backend coverage.
func nfsMachine() cluster.Machine {
	return cluster.Machine{
		Name: "nfs-box", MaxNodes: 8, CoresPerNode: 8, NICRate: 10e9,
		NetAlpha: 2e-6, NetBeta: 1.0 / 25e9,
		Storage: cluster.StorageNFS, NFS: nfs.DefaultParams(),
	}
}

// cephMachine is a small CephFS machine for backend coverage.
func cephMachine() cluster.Machine {
	return cluster.Machine{
		Name: "ceph-box", MaxNodes: 8, CoresPerNode: 8, NICRate: 10e9,
		NetAlpha: 2e-6, NetBeta: 1.0 / 25e9,
		Storage: cluster.StorageCephFS, Ceph: cephfs.DefaultParams(),
	}
}

func TestRunIOROrdering(t *testing.T) {
	o := testOptions()
	fpp, err := o.runIOR(2, true)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := o.runIOR(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if fpp <= 0 || shared <= 0 {
		t.Fatalf("ior: fpp=%v shared=%v", fpp, shared)
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("demo", "nodes", []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 1.5}},
		{Label: "b", X: []float64{1, 2}, Y: []float64{2.5, 3.5}},
	})
	for _, want := range []string{"# demo", "nodes", "a", "b", "0.5000", "3.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	o := testOptions()
	m := cluster.Vega() // the jittered machine is the hard case
	a, err := o.RunBIT1Public(m, 2, bit1.IOOriginal, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.RunBIT1Public(m, 2, bit1.IOOriginal, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputGiBs != b.ThroughputGiBs {
		t.Fatalf("runs diverged: %v vs %v", a.ThroughputGiBs, b.ThroughputGiBs)
	}
}

func TestFigContention(t *testing.T) {
	o := testOptions()
	tab, rows, err := o.FigContention()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ContentionQoSPolicies) {
		t.Fatalf("rows=%d, want one per policy", len(rows))
	}
	if len(tab.Rows) != 2*len(rows) {
		t.Fatalf("table rows=%d, want two jobs per policy", len(tab.Rows))
	}
	for _, row := range rows {
		res := row.Result
		// Acceptance: co-scheduling must show measurable interference.
		if res.MaxSlowdown() <= 1.0 {
			t.Errorf("%s: max slowdown %.4f, want > 1.0", row.Policy, res.MaxSlowdown())
		}
		if res.Jain <= 0 || res.Jain > 1 {
			t.Errorf("%s: Jain %.4f out of (0,1]", row.Policy, res.Jain)
		}
	}
	// The rate limit must take interference pressure off the neighbour.
	byPolicy := map[string]*ContentionRow{}
	for i := range rows {
		byPolicy[rows[i].Policy] = &rows[i]
	}
	off, lim := byPolicy["qos-off"], byPolicy["rate-limit"]
	if off == nil || lim == nil {
		t.Fatal("policy grid incomplete")
	}
	if lim.Result.Slowdown[1] >= off.Result.Slowdown[1] {
		t.Errorf("rate limit did not reduce the direct job's slowdown: %.3f vs %.3f",
			lim.Result.Slowdown[1], off.Result.Slowdown[1])
	}
}

func TestFigBurstStagedBeatsDirect(t *testing.T) {
	o := testOptions()
	ss, pts, err := o.FigBurst()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 2 || len(pts) != len(o.NodeCounts) {
		t.Fatalf("want 2 series and %d points, got %d/%d", len(o.NodeCounts), len(ss), len(pts))
	}
	for _, pt := range pts {
		if pt.StagedGiBs <= pt.DirectGiBs {
			t.Errorf("%d nodes: staged %.3f GiB/s must beat direct %.3f GiB/s",
				pt.Nodes, pt.StagedGiBs, pt.DirectGiBs)
		}
		if pt.DrainSec <= 0 {
			t.Errorf("%d nodes: drain time must be reported, got %v", pt.Nodes, pt.DrainSec)
		}
		if pt.DrainedBytes != pt.AbsorbedBytes {
			t.Errorf("%d nodes: all absorbed bytes must drain (%d vs %d)",
				pt.Nodes, pt.DrainedBytes, pt.AbsorbedBytes)
		}
	}
	// Some drain work must happen while ranks still run (the compute
	// windows between epochs are what the async drain overlaps).
	if last := pts[len(pts)-1]; last.OverlapFrac <= 0 {
		t.Errorf("drain must overlap compute at %d nodes, overlap %.2f", last.Nodes, last.OverlapFrac)
	}
}
