package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"picmcio/internal/sim"
)

// TestGoldenBothQueueImplementations replays the golden-pinned artifacts
// with every kernel in the process forced onto the calendar event queue.
// The captures were produced by the binary-heap kernel, so byte identity
// here is the acceptance proof that the queue choice is invisible to
// replay: same (at, seq) delivery order, same figures, to the byte.
func TestGoldenBothQueueImplementations(t *testing.T) {
	restore := sim.ForceQueueForTesting("calendar")
	defer restore()
	for _, c := range []struct {
		artifact string
		file     string
		opts     Options
	}{
		{"figfault", "golden_figfault.txt", Options{Seed: 1}},
		{"figworkload", "golden_figworkload.txt", Options{Seed: 1}},
	} {
		t.Run(c.artifact, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			a, ok := Lookup(c.artifact)
			if !ok {
				t.Fatalf("artifact %q missing from catalogue", c.artifact)
			}
			got, err := a.Run(c.opts, 200)
			if err != nil {
				t.Fatal(err)
			}
			if got.Text != string(want) {
				saved := writeGot(t, "calendar_"+c.file, got.Text)
				t.Fatalf("calendar-queue output diverged from the heap-kernel golden (saved to %s)", saved)
			}
		})
	}
}

// TestSchedBothQueueImplementations runs figsched — the whole-machine
// queue artifact, which exercises jobs, QoS lanes and the lease
// allocator — under both forced queue implementations and requires the
// outputs be byte-identical to each other (figsched has no pre-refactor
// capture, so the invariant is heap-vs-calendar self-consistency).
func TestSchedBothQueueImplementations(t *testing.T) {
	run := func(kind string) string {
		restore := sim.ForceQueueForTesting(kind)
		defer restore()
		a, ok := Lookup("figsched")
		if !ok {
			t.Fatal("figsched missing from catalogue")
		}
		res, err := a.Run(Options{Seed: 1}, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res.Text
	}
	heap := run("heap")
	cal := run("calendar")
	if heap != cal {
		t.Fatalf("figsched diverged between queue implementations:\n--- heap ---\n%s\n--- calendar ---\n%s", heap, cal)
	}
}
