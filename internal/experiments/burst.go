package experiments

import (
	"fmt"

	"picmcio/internal/bit1"
	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/sweep"
)

// BurstPoint is one node count of the burst-buffer figure: the direct vs
// staged apparent client throughput, plus the drain accounting that shows
// write-back overlapping compute.
type BurstPoint struct {
	Nodes        int
	DirectGiBs   float64 // openPMD+BP4 straight to the PFS
	StagedGiBs   float64 // openPMD+BP4 through the burst tier
	DrainSec     float64 // cumulative drain-worker busy time (all nodes)
	DrainTailSec float64 // wall-clock drain left after the last rank finished
	OverlapFrac  float64 // share of drain busy time accrued while ranks ran

	AbsorbedBytes, FallbackBytes, DrainedBytes int64
}

// burstTOML renders the adaptor TOML for a staged configuration. The
// burst_buffer key is what lets the core adaptor select staged I/O.
func burstTOML(numAgg int, durability string) string {
	s := "burst_buffer = true\n"
	if durability != "" {
		s += fmt.Sprintf("burst_durability = %q\n", durability)
	}
	return s + aggrTOML(numAgg, "", 1)
}

// FigBurstSweep is FigBurst as a grid declaration: one axis (node count),
// one trial measuring the direct and staged runs back to back. The Extra
// payload carries the typed BurstPoint the figure's table builders use.
func (o Options) FigBurstSweep() (sweep.Table, error) {
	o = o.WithDefaults()
	if o.ComputePerStep == 0 {
		// ~20 ms of compute per 100-step epoch gap: enough window for the
		// drain scheduler to overlap write-back with the next phase.
		o.ComputePerStep = 200e-6
	}
	m := cluster.Dardel()
	if o.BurstPolicy != "" {
		pol, err := burst.ParsePolicy(o.BurstPolicy)
		if err != nil {
			return sweep.Table{}, err
		}
		m.Burst.Policy = pol
	}
	g := sweep.Grid{sweep.Ints("nodes", o.NodeCounts)}
	return sweep.Run(g, o.sweepOptions("Fig B: direct vs burst-buffer-staged openPMD+BP4 on Dardel (GiB/s)"),
		func(c sweep.Config) (sweep.Point, error) {
			nodes := c.Int("nodes")
			rd, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(nodes, "", 1))
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figburst direct: %w", err)
			}
			rs, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, burstTOML(nodes, ""))
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figburst staged: %w", err)
			}
			pt := BurstPoint{Nodes: nodes, DirectGiBs: rd.ThroughputGiBs, StagedGiBs: rs.ThroughputGiBs}
			if rs.Burst != nil {
				pt.DrainSec = rs.Burst.DrainBusySec
				pt.DrainTailSec = rs.DrainTailSec
				if pt.DrainSec > 0 {
					pt.OverlapFrac = rs.DrainOverlapSec / pt.DrainSec
					if pt.OverlapFrac > 1 {
						pt.OverlapFrac = 1
					}
				}
				pt.AbsorbedBytes = rs.Burst.AbsorbedBytes
				pt.FallbackBytes = rs.Burst.FallbackBytes
				pt.DrainedBytes = rs.Burst.DrainedBytes
			}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("direct_gibps", pt.DirectGiBs),
					sweep.V("staged_gibps", pt.StagedGiBs),
					sweep.V("drain_busy_s", pt.DrainSec),
					sweep.V("drain_tail_s", pt.DrainTailSec),
					sweep.V("overlap_frac", pt.OverlapFrac),
					sweep.V("absorbed_bytes", float64(pt.AbsorbedBytes)),
					sweep.V("fallback_bytes", float64(pt.FallbackBytes)),
				},
				Extra: pt,
			}, nil
		})
}

// FigBurst is the burst-buffer staging figure (new scenario axis beyond
// the paper's §IV tuning surface): on Dardel, BIT1 openPMD+BP4 writing
// directly to Lustre vs staging through the node-local burst tier, across
// node counts. Staged runs charge compute between epochs so the
// asynchronous drain has something to overlap with.
func (o Options) FigBurst() ([]Series, []BurstPoint, error) {
	t, err := o.FigBurstSweep()
	if err != nil {
		return nil, nil, err
	}
	ss, pts := burstSeriesAndPoints(t)
	return ss, pts, nil
}
