package experiments

import (
	"fmt"

	"picmcio/internal/bit1"
	"picmcio/internal/burst"
	"picmcio/internal/cluster"
)

// BurstPoint is one node count of the burst-buffer figure: the direct vs
// staged apparent client throughput, plus the drain accounting that shows
// write-back overlapping compute.
type BurstPoint struct {
	Nodes        int
	DirectGiBs   float64 // openPMD+BP4 straight to the PFS
	StagedGiBs   float64 // openPMD+BP4 through the burst tier
	DrainSec     float64 // cumulative drain-worker busy time (all nodes)
	DrainTailSec float64 // wall-clock drain left after the last rank finished
	OverlapFrac  float64 // share of drain busy time accrued while ranks ran

	AbsorbedBytes, FallbackBytes, DrainedBytes int64
}

// burstTOML renders the adaptor TOML for a staged configuration. The
// burst_buffer key is what lets the core adaptor select staged I/O.
func burstTOML(numAgg int, durability string) string {
	s := "burst_buffer = true\n"
	if durability != "" {
		s += fmt.Sprintf("burst_durability = %q\n", durability)
	}
	return s + aggrTOML(numAgg, "", 1)
}

// FigBurst is the burst-buffer staging figure (new scenario axis beyond
// the paper's §IV tuning surface): on Dardel, BIT1 openPMD+BP4 writing
// directly to Lustre vs staging through the node-local burst tier, across
// node counts. Staged runs charge compute between epochs so the
// asynchronous drain has something to overlap with.
func (o Options) FigBurst() ([]Series, []BurstPoint, error) {
	o = o.WithDefaults()
	if o.ComputePerStep == 0 {
		// ~20 ms of compute per 100-step epoch gap: enough window for the
		// drain scheduler to overlap write-back with the next phase.
		o.ComputePerStep = 200e-6
	}
	m := cluster.Dardel()
	if o.BurstPolicy != "" {
		pol, err := burst.ParsePolicy(o.BurstPolicy)
		if err != nil {
			return nil, nil, err
		}
		m.Burst.Policy = pol
	}
	direct := Series{Label: "openPMD+BP4 direct", XLabel: "nodes", YLabel: "GiB/s"}
	staged := Series{Label: "openPMD+BP4 staged", XLabel: "nodes", YLabel: "GiB/s"}
	var pts []BurstPoint
	for _, nodes := range o.NodeCounts {
		rd, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, aggrTOML(nodes, "", 1))
		if err != nil {
			return nil, nil, fmt.Errorf("figburst direct/%d: %w", nodes, err)
		}
		rs, err := o.runBIT1(m, nodes, bit1.IOOpenPMD, burstTOML(nodes, ""))
		if err != nil {
			return nil, nil, fmt.Errorf("figburst staged/%d: %w", nodes, err)
		}
		pt := BurstPoint{Nodes: nodes, DirectGiBs: rd.ThroughputGiBs, StagedGiBs: rs.ThroughputGiBs}
		if rs.Burst != nil {
			pt.DrainSec = rs.Burst.DrainBusySec
			pt.DrainTailSec = rs.DrainTailSec
			if pt.DrainSec > 0 {
				pt.OverlapFrac = rs.DrainOverlapSec / pt.DrainSec
				if pt.OverlapFrac > 1 {
					pt.OverlapFrac = 1
				}
			}
			pt.AbsorbedBytes = rs.Burst.AbsorbedBytes
			pt.FallbackBytes = rs.Burst.FallbackBytes
			pt.DrainedBytes = rs.Burst.DrainedBytes
		}
		pts = append(pts, pt)
		direct.X = append(direct.X, float64(nodes))
		direct.Y = append(direct.Y, pt.DirectGiBs)
		staged.X = append(staged.X, float64(nodes))
		staged.Y = append(staged.Y, pt.StagedGiBs)
	}
	return []Series{direct, staged}, pts, nil
}
