package experiments

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
)

// WorkloadKinds is the workload axis of FigWorkload, in table order: the
// flat chunked per-node writer and the mpisim rank schedule with
// aggregator fan-in. Both emit the same logical volume per node per
// epoch (96 MiB checkpoint + 32 MiB diagnostics), so every difference
// between their rows is traffic shape, not traffic volume.
var WorkloadKinds = []string{"chunked", "ranks"}

// WorkloadQoSPolicies is the drain-QoS axis (a subset of the contention
// grid's policies: the deadline pacer needs a per-workload window and is
// left to FigContention).
var WorkloadQoSPolicies = []string{"qos-off", "priority", "rate-limit"}

// WorkloadAggregators is the aggregator-count axis for the rank
// workload: how many writer groups the node leaders gather into. The
// chunked workload has no aggregation stage, so its cells are invariant
// along this axis.
var WorkloadAggregators = []int{1, 2, 4}

const (
	workloadEpochs = 3
	workloadNodes  = 4
	workloadRanks  = 4 // ranks per node in the rank schedule
)

// workloadSpecs builds the two-job co-schedule of one FigWorkload cell
// on Dardel: the workload under test staging through an epoch-end burst
// tier next to a direct flat writer, both striped across every OST.
func workloadSpecs(kind string, aggr int, qos burst.QoS) ([]jobs.Spec, error) {
	var wl jobs.Workload
	switch kind {
	case "chunked":
		wl = jobs.ChunkedWriter{
			Epochs:          workloadEpochs,
			CheckpointBytes: 96 * units.MiB,
			DiagBytes:       32 * units.MiB,
			ComputeSec:      0.02,
			ChunkBytes:      16 * units.MiB,
		}
	case "ranks":
		// 4 ranks × 24 MiB checkpoint and 4 × 8 MiB diagnostics per node:
		// the chunked workload's volume, funnelled through aggr writers.
		wl = jobs.RankWorkload{
			Epochs:                 workloadEpochs,
			RanksPerNode:           workloadRanks,
			Aggregators:            aggr,
			CheckpointBytesPerRank: 24 * units.MiB,
			DiagBytesPerRank:       8 * units.MiB,
			ComputeSec:             0.02,
			ChunkBytes:             16 * units.MiB,
		}
	default:
		return nil, fmt.Errorf("figworkload: unknown workload kind %q", kind)
	}
	return []jobs.Spec{
		{
			Name:  "staged",
			Nodes: workloadNodes,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				DrainRate:     0, // PFS-limited unless a QoS knob caps it
				Policy:        burst.PolicyEpochEnd,
				QoS:           qos,
			},
			Workload:    wl,
			StripeCount: -1,
		},
		{
			Name:  "direct",
			Nodes: workloadNodes,
			Workload: jobs.BulkWriter{
				Epochs:          workloadEpochs,
				CheckpointBytes: 96 * units.MiB,
				DiagBytes:       32 * units.MiB,
				ComputeSec:      0.02,
			},
			StripeCount: -1,
		},
	}, nil
}

// WorkloadCell is one grid cell of the workload-composition figure.
type WorkloadCell struct {
	Kind string
	QoS  string
	Aggr int

	Result *jobs.ContentionResult
}

// FigWorkloadSweep is FigWorkload as a grid declaration: workload kind ×
// drain QoS × aggregator count, one jobs.Contention run per cell. The
// chunked workload has no aggregation stage, so its cells depend only on
// the QoS axis; they are precomputed once per policy into an immutable
// map the trials read (the FigFault baseline pattern), keeping trials
// pure for parallel determinism without re-simulating identical cells.
func (o Options) FigWorkloadSweep() (sweep.Table, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	chunked := map[string]*jobs.ContentionResult{}
	for _, qosName := range WorkloadQoSPolicies {
		qos, err := contentionQoS(qosName, 0)
		if err != nil {
			return sweep.Table{}, fmt.Errorf("figworkload: %w", err)
		}
		specs, err := workloadSpecs("chunked", 1, qos)
		if err != nil {
			return sweep.Table{}, err
		}
		res, err := jobs.Contention(m, specs, o.Seed)
		if err != nil {
			return sweep.Table{}, fmt.Errorf("figworkload chunked/%s: %w", qosName, err)
		}
		chunked[qosName] = res
	}
	g := sweep.Grid{
		sweep.Strings("workload", WorkloadKinds),
		sweep.Strings("qos", WorkloadQoSPolicies),
		sweep.Ints("aggregators", WorkloadAggregators),
	}
	return sweep.Run(g, o.sweepOptions("Fig W: workload composition on Dardel (staged workload-under-test vs direct neighbour)"),
		func(c sweep.Config) (sweep.Point, error) {
			kind := c.Str("workload")
			qosName := c.Str("qos")
			aggr := c.Int("aggregators")
			res := chunked[qosName]
			if kind != "chunked" {
				qos, err := contentionQoS(qosName, 0)
				if err != nil {
					return sweep.Point{}, err
				}
				specs, err := workloadSpecs(kind, aggr, qos)
				if err != nil {
					return sweep.Point{}, err
				}
				res, err = jobs.Contention(m, specs, o.Seed)
				if err != nil {
					return sweep.Point{}, fmt.Errorf("figworkload %s/%s/%d: %w", kind, qosName, aggr, err)
				}
			}
			staged := res.Jobs[0]
			cell := WorkloadCell{Kind: kind, QoS: qosName, Aggr: aggr, Result: res}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("staged_slowdown_x", res.Slowdown[0]),
					sweep.V("direct_slowdown_x", res.Slowdown[1]),
					sweep.V("jain", res.Jain),
					sweep.V("staged_durable_s", staged.DurableSec),
					sweep.V("staged_drain_gibps", units.GiBps(staged.DrainBps)),
					sweep.V("ckpt_drained_bytes", float64(staged.Burst.Class[burst.ClassCheckpoint].DrainedBytes)),
					sweep.V("diag_drained_bytes", float64(staged.Burst.Class[burst.ClassDiagnostic].DrainedBytes)),
				},
				Extra: cell,
			}, nil
		})
}

// FigWorkload is the workload-composition artifact: every workload kind
// through the same staged two-job scenario under every drain QoS, with
// the rank schedule additionally swept over aggregator counts — the
// composition the Workload interface exists to make a grid declaration
// instead of a per-combination rewrite.
func (o Options) FigWorkload() (Table, []WorkloadCell, error) {
	st, err := o.FigWorkloadSweep()
	if err != nil {
		return Table{}, nil, err
	}
	t, cells := workloadTable(st)
	return t, cells, nil
}

// workloadTable builds the figure's text table and typed cells from the
// sweep table. Chunked cells are identical along the aggregator axis, so
// the text table prints them once per QoS (the JSON keeps every cell);
// the dash in the aggr column marks the axis as not applicable.
func workloadTable(st sweep.Table) (Table, []WorkloadCell) {
	t := Table{
		Title: st.Title,
		Header: []string{"workload", "qos", "aggr", "job", "durable", "slowdown",
			"client GiB/s", "drain GiB/s", "ckpt drained", "diag drained", "Jain"},
	}
	var cells []WorkloadCell
	for _, p := range st.Points {
		cell := p.Extra.(WorkloadCell)
		cells = append(cells, cell)
		aggr := fmt.Sprint(cell.Aggr)
		if cell.Kind == "chunked" {
			if cell.Aggr != WorkloadAggregators[0] {
				continue
			}
			aggr = "-"
		}
		res := cell.Result
		for i, j := range res.Jobs {
			ck, dg, drain := "-", "-", "-"
			if j.Burst != nil {
				ck = units.Bytes(j.Burst.Class[burst.ClassCheckpoint].DrainedBytes)
				dg = units.Bytes(j.Burst.Class[burst.ClassDiagnostic].DrainedBytes)
				drain = fmt.Sprintf("%.3f", units.GiBps(j.DrainBps))
			}
			t.Rows = append(t.Rows, []string{
				cell.Kind, cell.QoS, aggr, j.Name,
				units.Seconds(j.DurableSec),
				fmt.Sprintf("%.3fx", res.Slowdown[i]),
				fmt.Sprintf("%.3f", units.GiBps(j.ClientBps)),
				drain, ck, dg,
				fmt.Sprintf("%.4f", res.Jain),
			})
		}
	}
	return t, cells
}
