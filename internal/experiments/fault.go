package experiments

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
)

// FaultDrainPolicies is the drain-policy axis of FigFault, in table order.
var FaultDrainPolicies = []burst.Policy{burst.PolicyImmediate, burst.PolicyEpochEnd, burst.PolicyWatermark}

// FaultQoSPolicies is the drain-QoS axis: the plain scheduler and the
// good-neighbour write-back cap (which slows the march to PFS durability
// and so raises what a node loss costs).
var FaultQoSPolicies = []string{"qos-off", "rate-limit"}

// FaultKillFracs is the kill-time axis: fractions through the kill
// epoch's compute phase. Both points sit after the immediate drain's
// write-back completes (~40% in) and before the epoch-end drain's does
// (~85% in), so the policy separation holds at every kill time.
var FaultKillFracs = []float64{0.45, 0.75}

// faultKillEpoch is the epoch (0-based, of faultEpochs) mid-whose compute
// phase the victim node dies.
const (
	faultEpochs    = 6
	faultKillEpoch = 3
)

// FaultMachine is the machine the fault grid runs on — the single source
// both FigFault and the cmd/experiments header derive it from.
func FaultMachine() cluster.Machine { return cluster.Dardel() }

// faultPolicyAxis is the drain-policy sweep axis FigFault and the
// failure campaign share.
func faultPolicyAxis() sweep.Axis {
	a := sweep.Axis{Name: "policy"}
	for _, p := range FaultDrainPolicies {
		a.Values = append(a.Values, p)
	}
	return a
}

// FaultCell is one grid cell of the fault-injection figure.
type FaultCell struct {
	Policy   burst.Policy
	QoS      string
	KillFrac float64

	Report        *fault.Report
	VictimDurable float64 // faulted run: victim durable-completion sec
	CleanDurable  float64 // same scenario, no fault
	NeighbourEnd  float64 // neighbour durable-completion sec in the faulted run
}

// faultQoS maps a QoS axis name to the staged job's drain QoS.
func faultQoS(name string) (burst.QoS, error) {
	switch name {
	case "qos-off":
		return burst.QoS{}, nil
	case "rate-limit":
		// Well under the production rate: a write-back backlog spans
		// epochs, so the durable position trails the buffered one by more.
		return burst.QoS{DrainLimit: 1.5e9}, nil
	}
	return burst.QoS{}, fmt.Errorf("figfault: unknown QoS policy %q", name)
}

// faultScenario builds the victim/neighbour co-schedule on Dardel: a
// staged checkpoint-only job (2 nodes, 128 MiB per node per epoch in
// 16 MiB chunks, 30 ms compute) whose node 0 carries the fault, next to
// a small direct writer that keeps running through the failure. The
// drain rate is sized so one epoch's write-back takes ~24 ms: an
// immediate drain starts with the first chunk and finishes inside the
// kill epoch's compute phase at every kill point, while an epoch-end
// drain starts ~22 ms later at the nudge and never finishes by the kill
// — the grid's headline separation between the policies' durability
// positions.
func faultScenario(pol burst.Policy, qos burst.QoS, f *fault.Spec) []jobs.Spec {
	wl := jobs.ChunkedWriter{
		Epochs:          faultEpochs,
		CheckpointBytes: 128 * units.MiB,
		ComputeSec:      0.03,
		ChunkBytes:      16 * units.MiB,
	}
	return []jobs.Spec{
		{
			Name:  "victim",
			Nodes: 2,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				DrainRate:     5.5e9,
				Policy:        pol,
				QoS:           qos,
			},
			Workload:    wl,
			StripeCount: -1,
			Fault:       f,
		},
		{
			Name:  "neighbour",
			Nodes: 2,
			Workload: jobs.BulkWriter{
				Epochs:     faultEpochs,
				DiagBytes:  16 * units.MiB,
				ComputeSec: 0.03,
			},
			StripeCount: -1,
		},
	}
}

// figFaultSpec is the injected failure: node 0 of the victim job dies
// during epoch 3's compute phase and its NVMe dies with it (node loss).
func figFaultSpec(frac float64) *fault.Spec {
	return &fault.Spec{
		KillEpoch: faultKillEpoch,
		KillFrac:  frac,
		Node:      0,
		Survival:  fault.SurviveNone,
		// A scaled-down reschedule delay: real warm-spare restarts take
		// minutes (cluster.Machine.NodeRestartSec); the grid uses 50 ms so
		// the redrain/rewrite dynamics stay visible at simulation scale.
		RestartDelay: 0.05,
	}
}

// FigFaultSweep is FigFault as a grid declaration: drain policy × QoS ×
// kill time. The clean baselines depend only on (policy, QoS), so they
// are precomputed once per pair into an immutable map the trials read —
// trials stay pure (parallel-deterministic) without re-simulating the
// same clean co-schedule per kill time. The Extra payload carries the
// FaultCell the figure's table builder uses.
func (o Options) FigFaultSweep() (sweep.Table, error) {
	o = o.WithDefaults()
	m := FaultMachine()
	type cleanKey struct {
		pol burst.Policy
		qos string
	}
	cleans := map[cleanKey]float64{}
	for _, pol := range FaultDrainPolicies {
		for _, qosName := range FaultQoSPolicies {
			qos, err := faultQoS(qosName)
			if err != nil {
				return sweep.Table{}, err
			}
			clean, err := jobs.Run(m, faultScenario(pol, qos, nil), o.Seed)
			if err != nil {
				return sweep.Table{}, fmt.Errorf("figfault clean %s/%s: %w", pol, qosName, err)
			}
			cleans[cleanKey{pol, qosName}] = clean[0].DurableSec
		}
	}
	g := sweep.Grid{
		faultPolicyAxis(),
		sweep.Strings("qos", FaultQoSPolicies),
		sweep.Floats("kill_frac", FaultKillFracs),
	}
	return sweep.Run(g, o.sweepOptions("Fig F: node-loss fault injection on Dardel (staged victim + direct neighbour, kill in epoch 3/6)"),
		func(c sweep.Config) (sweep.Point, error) {
			pol := c.Value("policy").(burst.Policy)
			qosName := c.Str("qos")
			frac := c.Float("kill_frac")
			qos, err := faultQoS(qosName)
			if err != nil {
				return sweep.Point{}, err
			}
			res, err := jobs.Run(m, faultScenario(pol, qos, figFaultSpec(frac)), o.Seed)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figfault: %w", err)
			}
			rep := res[0].Fault
			if rep == nil {
				return sweep.Point{}, fmt.Errorf("figfault: injection never fired")
			}
			cell := FaultCell{
				Policy: pol, QoS: qosName, KillFrac: frac,
				Report:        rep,
				VictimDurable: res[0].DurableSec,
				CleanDurable:  cleans[cleanKey{pol, qosName}],
				NeighbourEnd:  res[1].DurableSec,
			}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("buffered_epochs", float64(rep.BufferedEpochs)),
					sweep.V("durable_epochs", float64(rep.DurableEpochs)),
					sweep.V("lost_epochs_nvme", float64(rep.LostEpochsBuffered)),
					sweep.V("lost_epochs_node", float64(rep.LostEpochsPFS)),
					sweep.V("lost_bytes", float64(rep.LostBytes)),
					sweep.V("victim_durable_s", cell.VictimDurable),
					sweep.V("fault_cost_s", cell.VictimDurable-cell.CleanDurable),
				},
				Extra: cell,
			}, nil
		})
}

// FigFault is the fault-injection artifact: a kill-time × drain-policy ×
// drain-QoS grid on Dardel where a victim node dies mid-epoch and loses
// its NVMe. Per cell it reports the recovery position at both durability
// levels, the staged bytes destroyed, and what the failure cost in
// durable-completion time against an identical clean run. Lost work on
// node loss orders immediate < epoch-end < watermark: the longer
// write-back is deferred, the more epochs exist only on the NVMe that
// just died.
func (o Options) FigFault() (Table, []FaultCell, error) {
	st, err := o.FigFaultSweep()
	if err != nil {
		return Table{}, nil, err
	}
	t, cells := faultTable(st)
	return t, cells, nil
}

// faultTable builds the figure's text table and typed cells from the
// sweep table (shared by FigFault and the catalogue entry). The text
// table inherits the sweep's title, so text and JSON cannot drift.
func faultTable(st sweep.Table) (Table, []FaultCell) {
	t := Table{
		Title: st.Title,
		Header: []string{"policy", "qos", "kill@", "buffered", "durable",
			"lost(nvme)", "lost(node)", "lost bytes", "durable s", "fault cost"},
	}
	var cells []FaultCell
	for _, p := range st.Points {
		cell := p.Extra.(FaultCell)
		cells = append(cells, cell)
		rep := cell.Report
		t.Rows = append(t.Rows, []string{
			cell.Policy.String(), cell.QoS, fmt.Sprintf("e%d+%.0f%%", rep.Spec.KillEpoch, 100*cell.KillFrac),
			fmt.Sprintf("%d ep", rep.BufferedEpochs),
			fmt.Sprintf("%d ep", rep.DurableEpochs),
			fmt.Sprintf("%d ep", rep.LostEpochsBuffered),
			fmt.Sprintf("%d ep", rep.LostEpochsPFS),
			units.Bytes(rep.LostBytes),
			units.Seconds(cell.VictimDurable),
			units.Seconds(cell.VictimDurable - cell.CleanDurable),
		})
	}
	return t, cells
}

// FaultSurvivalComparison reruns one representative cell (watermark
// drain — the policy with the deepest staged backlog — QoS off, late
// kill) under both survivability models, for the buffered- vs
// PFS-restart contrast the staging tier exists to expose: the same
// staged bytes are either destroyed with the node or redrained.
type FaultSurvivalComparison struct {
	NodeLoss *jobs.Result // NVMe dies with the node
	NVMeKeep *jobs.Result // staged state survives and redrains
}

// FigFaultSurvival runs the survivability comparison.
func (o Options) FigFaultSurvival() (*FaultSurvivalComparison, error) {
	o = o.WithDefaults()
	m := FaultMachine()
	qos, _ := faultQoS("qos-off")
	frac := FaultKillFracs[len(FaultKillFracs)-1]
	var out FaultSurvivalComparison
	for _, surv := range []fault.Survivability{fault.SurviveNone, fault.SurviveNVMe} {
		fs := figFaultSpec(frac)
		fs.Survival = surv
		res, err := jobs.Run(m, faultScenario(burst.PolicyWatermark, qos, fs), o.Seed)
		if err != nil {
			return nil, fmt.Errorf("figfault survival %v: %w", surv, err)
		}
		r := res[0]
		if surv == fault.SurviveNone {
			out.NodeLoss = &r
		} else {
			out.NVMeKeep = &r
		}
	}
	return &out, nil
}
