package experiments

import (
	"fmt"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
)

// FaultDrainPolicies is the drain-policy axis of FigFault, in table order.
var FaultDrainPolicies = []burst.Policy{burst.PolicyImmediate, burst.PolicyEpochEnd, burst.PolicyWatermark}

// FaultQoSPolicies is the drain-QoS axis: the plain scheduler and the
// good-neighbour write-back cap (which slows the march to PFS durability
// and so raises what a node loss costs).
var FaultQoSPolicies = []string{"qos-off", "rate-limit"}

// FaultKillFracs is the kill-time axis: fractions through the kill
// epoch's compute phase. Both points sit after the immediate drain's
// write-back completes (~40% in) and before the epoch-end drain's does
// (~85% in), so the policy separation holds at every kill time.
var FaultKillFracs = []float64{0.45, 0.75}

// faultKillEpoch is the epoch (0-based, of faultEpochs) mid-whose compute
// phase the victim node dies.
const (
	faultEpochs    = 6
	faultKillEpoch = 3
)

// FaultMachine is the machine the fault grid runs on — the single source
// both FigFault and the cmd/experiments header derive it from.
func FaultMachine() cluster.Machine { return cluster.Dardel() }

// FaultCell is one grid cell of the fault-injection figure.
type FaultCell struct {
	Policy   burst.Policy
	QoS      string
	KillFrac float64

	Report        *fault.Report
	VictimDurable float64 // faulted run: victim durable-completion sec
	CleanDurable  float64 // same scenario, no fault
	NeighbourEnd  float64 // neighbour durable-completion sec in the faulted run
}

// faultQoS maps a QoS axis name to the staged job's drain QoS.
func faultQoS(name string) (burst.QoS, error) {
	switch name {
	case "qos-off":
		return burst.QoS{}, nil
	case "rate-limit":
		// Well under the production rate: a write-back backlog spans
		// epochs, so the durable position trails the buffered one by more.
		return burst.QoS{DrainLimit: 1.5e9}, nil
	}
	return burst.QoS{}, fmt.Errorf("figfault: unknown QoS policy %q", name)
}

// faultScenario builds the victim/neighbour co-schedule on Dardel: a
// staged checkpoint-only job (2 nodes, 128 MiB per node per epoch in
// 16 MiB chunks, 30 ms compute) whose node 0 carries the fault, next to
// a small direct writer that keeps running through the failure. The
// drain rate is sized so one epoch's write-back takes ~24 ms: an
// immediate drain starts with the first chunk and finishes inside the
// kill epoch's compute phase at every kill point, while an epoch-end
// drain starts ~22 ms later at the nudge and never finishes by the kill
// — the grid's headline separation between the policies' durability
// positions.
func faultScenario(pol burst.Policy, qos burst.QoS, f *fault.Spec) []jobs.Spec {
	wl := jobs.Workload{
		Epochs:          faultEpochs,
		CheckpointBytes: 128 * units.MiB,
		ComputeSec:      0.03,
		WriteChunkBytes: 16 * units.MiB,
	}
	return []jobs.Spec{
		{
			Name:  "victim",
			Nodes: 2,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				DrainRate:     5.5e9,
				Policy:        pol,
				QoS:           qos,
			},
			Workload:    wl,
			StripeCount: -1,
			Fault:       f,
		},
		{
			Name:  "neighbour",
			Nodes: 2,
			Workload: jobs.Workload{
				Epochs:     faultEpochs,
				DiagBytes:  16 * units.MiB,
				ComputeSec: 0.03,
			},
			StripeCount: -1,
		},
	}
}

// figFaultSpec is the injected failure: node 0 of the victim job dies
// during epoch 3's compute phase and its NVMe dies with it (node loss).
func figFaultSpec(frac float64) *fault.Spec {
	return &fault.Spec{
		KillEpoch: faultKillEpoch,
		KillFrac:  frac,
		Node:      0,
		Survival:  fault.SurviveNone,
		// A scaled-down reschedule delay: real warm-spare restarts take
		// minutes (cluster.Machine.NodeRestartSec); the grid uses 50 ms so
		// the redrain/rewrite dynamics stay visible at simulation scale.
		RestartDelay: 0.05,
	}
}

// FigFault is the fault-injection artifact: a kill-time × drain-policy ×
// drain-QoS grid on Dardel where a victim node dies mid-epoch and loses
// its NVMe. Per cell it reports the recovery position at both durability
// levels, the staged bytes destroyed, and what the failure cost in
// durable-completion time against an identical clean run. Lost work on
// node loss orders immediate < epoch-end < watermark: the longer
// write-back is deferred, the more epochs exist only on the NVMe that
// just died.
func (o Options) FigFault() (Table, []FaultCell, error) {
	o = o.WithDefaults()
	m := FaultMachine()
	t := Table{
		Title: "Fig F: node-loss fault injection on Dardel (staged victim + direct neighbour, kill in epoch 3/6)",
		Header: []string{"policy", "qos", "kill@", "buffered", "durable",
			"lost(nvme)", "lost(node)", "lost bytes", "durable s", "fault cost"},
	}
	var cells []FaultCell
	for _, pol := range FaultDrainPolicies {
		for _, qosName := range FaultQoSPolicies {
			qos, err := faultQoS(qosName)
			if err != nil {
				return t, nil, err
			}
			clean, err := jobs.Run(m, faultScenario(pol, qos, nil), o.Seed)
			if err != nil {
				return t, nil, fmt.Errorf("figfault clean %s/%s: %w", pol, qosName, err)
			}
			for _, frac := range FaultKillFracs {
				res, err := jobs.Run(m, faultScenario(pol, qos, figFaultSpec(frac)), o.Seed)
				if err != nil {
					return t, nil, fmt.Errorf("figfault %s/%s@%.2f: %w", pol, qosName, frac, err)
				}
				rep := res[0].Fault
				if rep == nil {
					return t, nil, fmt.Errorf("figfault %s/%s@%.2f: injection never fired", pol, qosName, frac)
				}
				cell := FaultCell{
					Policy: pol, QoS: qosName, KillFrac: frac,
					Report:        rep,
					VictimDurable: res[0].DurableSec,
					CleanDurable:  clean[0].DurableSec,
					NeighbourEnd:  res[1].DurableSec,
				}
				cells = append(cells, cell)
				t.Rows = append(t.Rows, []string{
					pol.String(), qosName, fmt.Sprintf("e%d+%.0f%%", rep.Spec.KillEpoch, 100*frac),
					fmt.Sprintf("%d ep", rep.BufferedEpochs),
					fmt.Sprintf("%d ep", rep.DurableEpochs),
					fmt.Sprintf("%d ep", rep.LostEpochsBuffered),
					fmt.Sprintf("%d ep", rep.LostEpochsPFS),
					units.Bytes(rep.LostBytes),
					units.Seconds(cell.VictimDurable),
					units.Seconds(cell.VictimDurable - cell.CleanDurable),
				})
			}
		}
	}
	return t, cells, nil
}

// FaultSurvivalComparison reruns one representative cell (watermark
// drain — the policy with the deepest staged backlog — QoS off, late
// kill) under both survivability models, for the buffered- vs
// PFS-restart contrast the staging tier exists to expose: the same
// staged bytes are either destroyed with the node or redrained.
type FaultSurvivalComparison struct {
	NodeLoss *jobs.Result // NVMe dies with the node
	NVMeKeep *jobs.Result // staged state survives and redrains
}

// FigFaultSurvival runs the survivability comparison.
func (o Options) FigFaultSurvival() (*FaultSurvivalComparison, error) {
	o = o.WithDefaults()
	m := FaultMachine()
	qos, _ := faultQoS("qos-off")
	frac := FaultKillFracs[len(FaultKillFracs)-1]
	var out FaultSurvivalComparison
	for _, surv := range []fault.Survivability{fault.SurviveNone, fault.SurviveNVMe} {
		fs := figFaultSpec(frac)
		fs.Survival = surv
		res, err := jobs.Run(m, faultScenario(burst.PolicyWatermark, qos, fs), o.Seed)
		if err != nil {
			return nil, fmt.Errorf("figfault survival %v: %w", surv, err)
		}
		r := res[0]
		if surv == fault.SurviveNone {
			out.NodeLoss = &r
		} else {
			out.NVMeKeep = &r
		}
	}
	return &out, nil
}
