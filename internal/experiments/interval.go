package experiments

import (
	"fmt"
	"math"
	"strings"

	"picmcio/internal/burst"
	"picmcio/internal/ckptopt"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/sim"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
	"picmcio/internal/xrand"
)

// IntervalScales is the epoch-length axis of the interval artifacts:
// multiples of the analytically optimal interval, bracketing it from a
// quarter to four times so both the overhead-dominated (short) and the
// exposure-dominated (long) flanks of the waste curve are on the grid.
var IntervalScales = []float64{0.25, 0.5, 1, 2, 4}

// IntervalDurabilities is the durability axis: the two-level buffered
// cadence through the staging tier vs synchronous PFS-durable saves.
var IntervalDurabilities = []string{"buffered", "pfs"}

// intervalMachines are the presets with a staging tier — the machines
// whose buffered/PFS cost split the optimizer exists to price.
func intervalMachines() []cluster.Machine {
	var ms []cluster.Machine
	for _, m := range cluster.Machines() {
		if m.Burst.Enabled() {
			ms = append(ms, m)
		}
	}
	return ms
}

// intervalProbeWorkload is the cost-measurement scenario shared by the
// interval figure and the -optimal campaign: the fault grid's chunked
// checkpoint writer.
func intervalProbeWorkload() jobs.ChunkedWriter {
	return jobs.ChunkedWriter{
		Epochs:          6,
		CheckpointBytes: 128 * units.MiB,
		ComputeSec:      0.03,
		ChunkBytes:      16 * units.MiB,
	}
}

// intervalProbeNodes is the probe and campaign job scale.
const intervalProbeNodes = 2

// intervalPlan measures machine m's checkpoint costs under the given
// drain policy and prices them into a plan. A zero mtbfHours keeps the
// preset MTBF; the override is what lets accelerated smoke campaigns
// observe failures.
func intervalPlan(m cluster.Machine, pol string, mtbfHours float64, seed uint64) (ckptopt.Plan, error) {
	if pol != "" {
		p, err := burst.ParsePolicy(pol)
		if err != nil {
			return ckptopt.Plan{}, err
		}
		m.Burst.Policy = p
	}
	if mtbfHours > 0 {
		m.MTBFNodeHours = mtbfHours
	}
	costs, err := jobs.MeasureCheckpointCosts(m, intervalProbeWorkload(), intervalProbeNodes, seed)
	if err != nil {
		return ckptopt.Plan{}, err
	}
	return ckptopt.Optimize(costs)
}

// IntervalCell is one point of the waste-vs-epoch-length figure.
type IntervalCell struct {
	Machine    string
	Policy     string
	Durability string
	Scale      float64 // interval as a multiple of the level's optimum

	IntervalSec float64
	WasteFrac   float64
	Level       ckptopt.Level
	Plan        ckptopt.Plan
}

// FigIntervalSweep is the checkpoint-interval figure as a grid
// declaration: machine × drain policy × durability level × interval
// scale. Costs are measured once per (machine, policy) by probe runs
// through the staging tier — the immutable map the pure trials read —
// and each cell evaluates the exact expected-waste model at a multiple
// of that level's numerically optimal interval, so the analytic optimum
// is marked on the grid at scale 1 with the Young/Daly closed forms
// alongside.
func (o Options) FigIntervalSweep() (sweep.Table, error) {
	o = o.WithDefaults()
	machines := intervalMachines()
	if len(machines) == 0 {
		return sweep.Table{}, fmt.Errorf("figinterval: no machine preset carries a staging tier")
	}
	type planKey struct {
		machine, policy string
	}
	mAxis := sweep.Axis{Name: "machine"}
	plans := map[planKey]ckptopt.Plan{}
	for _, m := range machines {
		mAxis.Values = append(mAxis.Values, m.Name)
		for _, pol := range FaultDrainPolicies {
			p, err := intervalPlan(m, pol.String(), o.CampaignMTBFHours, o.Seed)
			if err != nil {
				return sweep.Table{}, fmt.Errorf("figinterval %s/%s: %w", m.Name, pol, err)
			}
			plans[planKey{m.Name, pol.String()}] = p
		}
	}
	g := sweep.Grid{
		mAxis,
		faultPolicyAxis(),
		sweep.Strings("durability", IntervalDurabilities),
		sweep.Floats("interval_x", IntervalScales),
	}
	title := "Fig I: expected checkpoint waste vs epoch length (measured costs; analytic optimum at interval_x=1)"
	return sweep.Run(g, o.sweepOptions(title),
		func(c sweep.Config) (sweep.Point, error) {
			cell := IntervalCell{
				Machine:    c.Str("machine"),
				Policy:     c.Value("policy").(fmt.Stringer).String(),
				Durability: c.Str("durability"),
				Scale:      c.Float("interval_x"),
			}
			cell.Plan = plans[planKey{cell.Machine, cell.Policy}]
			switch cell.Durability {
			case "buffered":
				if cell.Plan.Buffered == nil {
					return sweep.Point{}, fmt.Errorf("figinterval: %s has no buffered level", cell.Machine)
				}
				cell.Level = *cell.Plan.Buffered
			case "pfs":
				cell.Level = cell.Plan.PFS
			default:
				return sweep.Point{}, fmt.Errorf("figinterval: unknown durability %q", cell.Durability)
			}
			cell.IntervalSec = cell.Scale * cell.Level.NumericSec
			cell.WasteFrac = cell.Level.Waste(cell.IntervalSec)
			atOpt := 0.0
			if cell.Scale == 1 {
				atOpt = 1
			}
			vs := []sweep.Value{
				sweep.V("interval_s", cell.IntervalSec),
				sweep.V("waste_pct", 100*cell.WasteFrac),
				sweep.V("young_s", cell.Level.YoungSec),
				sweep.V("daly_s", cell.Level.DalySec),
				sweep.V("numeric_s", cell.Level.NumericSec),
				sweep.V("at_opt", atOpt),
			}
			if cell.Durability == "buffered" {
				// 0 when the NVMe never survives: no buffered cadence alone
				// protects anything (the weighted optimum diverges).
				vs = append(vs, sweep.V("young_surv_s", cell.Plan.SurvivalYoungSec))
			}
			return sweep.Point{Values: vs, Extra: cell}, nil
		})
}

// renderInterval builds the artifact's text block: the waste grid plus
// one summary line per (machine, policy) with the recommended level and
// the closed-form vs numeric agreement the optimizer is cross-checked
// on.
func renderInterval(t sweep.Table) string {
	var b strings.Builder
	b.WriteString(t.Render())
	type key struct{ machine, policy string }
	seen := map[key]bool{}
	for _, p := range t.Points {
		cell := p.Extra.(IntervalCell)
		k := key{cell.Machine, cell.Policy}
		if seen[k] || cell.Scale != 1 || cell.Durability != "buffered" {
			continue
		}
		seen[k] = true
		rec := cell.Plan.Recommended()
		agree := 0.0
		if rec.NumericSec > 0 {
			agree = 100 * math.Abs(rec.NumericSec-rec.DalySec) / rec.NumericSec
		}
		fmt.Fprintf(&b, "%s %s: recommend %s every %s (Young %s, Daly %s, numeric-Daly gap %.2f%%, waste %.4f%%)\n",
			cell.Machine, cell.Policy, rec.Name,
			units.Seconds(rec.NumericSec), units.Seconds(rec.YoungSec), units.Seconds(rec.DalySec),
			agree, 100*rec.WasteAtOpt)
	}
	b.WriteByte('\n')
	return b.String()
}

// optimalTargetFailures sizes the -optimal campaign's draw count: well
// above the plain campaign's target because the verdict compares cells
// against each other rather than just ordering them, and the flanking
// baselines sit only ~25% above the optimum's waste — draws are cheap
// (only failing draws simulate), so buy the margin.
const optimalTargetFailures = 96

// OptimalCell is one (machine × interval) cell of the validation
// campaign.
type OptimalCell struct {
	Machine   string
	Scale     float64 // interval as a multiple of the recommendation
	IntervalH float64 // the interval in production hours

	Runs        int
	Failures    int
	OverheadNH  float64 // deterministic checkpoint overhead, node-hours/run
	MeanLossNH  float64 // mean lost node-hours per failure
	WastePerKNH float64 // total waste per 1000 useful node-hours
}

// CampaignOptimum is the -optimal mode of the failure campaign: the
// empirical validation that the ckptopt recommendation is worth
// following. Per staging-tier preset it measures checkpoint costs,
// prices the recommended interval, and then runs the stochastic MTBF
// campaign at that interval and at fixed baselines bracketing it
// (IntervalScales), with the simulated epoch compute phase set to the
// candidate interval itself — the simulation runs in real seconds, so
// measured save costs, drain lag and reschedule delays need no
// unit-mapping. Each cell's expected waste combines the deterministic
// checkpoint overhead of the clean run with the Monte-Carlo lost
// node-hours of sampled failures, normalized per 1000 useful node-hours
// so cells with different intervals (and so different run spans) are
// comparable.
//
// Draws use common random numbers: run r of machine m draws from the
// same derived seed in every interval cell, so the failure sets are
// nested across cells and the waste comparison is driven by the
// interval, not by sampling noise. The verdict the artifact prints —
// and TestCampaignOptimalValidates enforces — is that the recommended
// interval's waste is no worse than every fixed baseline on both
// presets.
func (o Options) CampaignOptimum() (sweep.Table, error) {
	o = o.WithDefaults()
	machines := intervalMachines()
	mAxis := sweep.Axis{Name: "machine"}
	type mstate struct {
		m    cluster.Machine
		plan ckptopt.Plan
		mtbf float64
		runs int
		seed uint64
	}
	states := map[string]*mstate{}
	for mi, m := range machines {
		mAxis.Values = append(mAxis.Values, m.Name)
		plan, err := intervalPlan(m, "", o.CampaignMTBFHours, o.Seed)
		if err != nil {
			return sweep.Table{}, fmt.Errorf("campfail -optimal %s: %w", m.Name, err)
		}
		st := &mstate{m: m, plan: plan, mtbf: m.MTBFNodeHours, seed: xrand.SeedAt(o.Seed, uint64(1000+mi))}
		if o.CampaignMTBFHours > 0 {
			st.mtbf = o.CampaignMTBFHours
		}
		tau := plan.IntervalSec()
		wl := intervalProbeWorkload()
		span := float64(wl.Epochs) * (tau + plan.Recommended().SaveSec)
		lambda := fault.ExpectedFailures(st.mtbf, intervalProbeNodes, sim.Duration(span))
		st.runs = o.CampaignRuns
		if st.runs <= 0 {
			st.runs = campaignMaxRuns
			if need := optimalTargetFailures / lambda; lambda > 0 && need+1 < float64(st.runs) {
				st.runs = int(need) + 1
			}
		}
		states[m.Name] = st
	}
	g := sweep.Grid{mAxis, sweep.Floats("interval_x", IntervalScales)}
	title := fmt.Sprintf("Campaign O: empirical waste at the ckptopt interval vs fixed baselines (%d-epoch runs, interval_x=1 is the recommendation)",
		intervalProbeWorkload().Epochs)
	return sweep.Run(g, o.sweepOptions(title),
		func(c sweep.Config) (sweep.Point, error) {
			st := states[c.Str("machine")]
			scale := c.Float("interval_x")
			tau := scale * st.plan.IntervalSec()
			wl := intervalProbeWorkload()
			wl.ComputeSec = sim.Duration(tau)
			spec := jobs.Spec{Name: "victim", Nodes: intervalProbeNodes, Burst: st.m.Burst, Workload: wl, StripeCount: -1}
			clean, err := jobs.Run(st.m, []jobs.Spec{spec}, o.Seed)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("campfail -optimal clean: %w", err)
			}
			overheadSec := clean[0].AppSec - tau*float64(wl.Epochs)
			if !(overheadSec > 0) {
				return sweep.Point{}, fmt.Errorf("campfail -optimal: non-positive overhead %v", overheadSec)
			}
			cell := OptimalCell{
				Machine:    st.m.Name,
				Scale:      scale,
				IntervalH:  tau / 3600,
				Runs:       st.runs,
				OverheadNH: overheadSec / 3600 * float64(spec.Nodes),
			}
			cycleH := (tau + overheadSec/float64(wl.Epochs)) / 3600
			spanH := clean[0].AppSec / 3600
			tauH := tau / 3600
			restartH := st.m.NodeRestartSec / 3600
			var lossNH float64
			for run := 0; run < st.runs; run++ {
				// Common random numbers: the seed depends on the machine and
				// the run index only, never on the interval cell.
				rng := xrand.New(xrand.SeedAt(st.seed, uint64(run)))
				arrivals := fault.Arrivals(rng, st.mtbf, spec.Nodes, spanH)
				if len(arrivals) == 0 {
					continue
				}
				epoch := int(arrivals[0] / cycleH)
				if epoch >= wl.Epochs {
					epoch = wl.Epochs - 1
				}
				frac := arrivals[0]/cycleH - float64(epoch)
				if frac >= 1 {
					frac = 0.999999
				}
				// Checkpointing here is coordinated (the whole job writes and
				// rolls back together, as an MPI application does), so any
				// node's failure restarts every node — the setting whose
				// job-level MTBF the plan prices.
				fs := &fault.Spec{
					KillEpoch:    epoch,
					KillFrac:     frac,
					WholeJob:     true,
					Survival:     st.m.NVMeSurvival,
					RestartDelay: sim.Duration(st.m.NodeRestartSec),
				}
				res, err := jobs.Run(st.m, jobs.WithFault([]jobs.Spec{spec}, 0, fs), o.Seed)
				if err != nil {
					return sweep.Point{}, fmt.Errorf("campfail -optimal run %d: %w", run, err)
				}
				if res[0].Fault == nil {
					continue
				}
				cell.Failures++
				lossNH += res[0].LostNodeHours(tauH, restartH)
			}
			if cell.Failures > 0 {
				cell.MeanLossNH = lossNH / float64(cell.Failures)
			}
			usefulNH := float64(wl.Epochs) * tauH * float64(spec.Nodes)
			cell.WastePerKNH = (cell.OverheadNH + lossNH/float64(cell.Runs)) / usefulNH * 1000
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("interval_h", cell.IntervalH),
					sweep.V("runs", float64(cell.Runs)),
					sweep.V("failures", float64(cell.Failures)),
					sweep.V("overhead_nh", cell.OverheadNH),
					sweep.V("mean_loss_nh", cell.MeanLossNH),
					sweep.V("waste_nh_per_knh", cell.WastePerKNH),
				},
				Extra: cell,
			}, nil
		})
}

// OptimalVerdicts extracts the per-machine validation verdicts from a
// CampaignOptimum table: whether the recommended interval's empirical
// waste is no worse than every fixed baseline.
func OptimalVerdicts(t sweep.Table) map[string]bool {
	atRec := map[string]float64{}
	for _, p := range t.Points {
		cell := p.Extra.(OptimalCell)
		if cell.Scale == 1 {
			atRec[cell.Machine] = cell.WastePerKNH
		}
	}
	out := map[string]bool{}
	for _, p := range t.Points {
		cell := p.Extra.(OptimalCell)
		if _, ok := out[cell.Machine]; !ok {
			out[cell.Machine] = true
		}
		if cell.Scale != 1 && cell.WastePerKNH < atRec[cell.Machine]*(1-1e-9) {
			out[cell.Machine] = false
		}
	}
	return out
}

// renderOptimal builds the -optimal artifact text: the waste grid plus
// a per-machine verdict line comparing the recommendation against the
// best fixed baseline.
func renderOptimal(t sweep.Table) string {
	var b strings.Builder
	b.WriteString(t.Render())
	verdicts := OptimalVerdicts(t)
	type best struct {
		waste float64
		atRec float64
		tauH  float64
		ok    bool
	}
	bests := map[string]*best{}
	var order []string
	for _, p := range t.Points {
		cell := p.Extra.(OptimalCell)
		bst, ok := bests[cell.Machine]
		if !ok {
			bst = &best{waste: math.Inf(1)}
			bests[cell.Machine] = bst
			order = append(order, cell.Machine)
		}
		if cell.Scale == 1 {
			bst.atRec = cell.WastePerKNH
			bst.tauH = cell.IntervalH
		} else if cell.WastePerKNH < bst.waste {
			bst.waste = cell.WastePerKNH
		}
	}
	for _, m := range order {
		bst := bests[m]
		mark := "✔ recommendation validated"
		if !verdicts[m] {
			mark = "✘ a fixed baseline beat the recommendation"
		}
		fmt.Fprintf(&b, "%s: ckptopt interval %.3g h wastes %.3f nh/knh vs best fixed baseline %.3f — %s\n",
			m, bst.tauH, bst.atRec, bst.waste, mark)
	}
	b.WriteByte('\n')
	return b.String()
}
