package experiments

import (
	"strings"
	"testing"
)

// TestFigFairAcceptance pins the fairness campaign's headline claim:
// under skewed offered load — with and without in-queue node failures —
// fair-share delivers strictly higher usage fairness (time-weighted
// Jain over delivered tenant usage) than both FCFS and EASY in every
// failure cell, at utilization within 5% of EASY's. The failure cells
// must actually land kills, and every cell replays the identical
// stream.
func TestFigFairAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fairness campaign")
	}
	o := Options{Seed: 1}
	st, err := o.FigFair()
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]map[string]FairPoint{}
	for _, p := range st.Points {
		pt := p.Extra.(FairPoint)
		if cells[pt.Failures] == nil {
			cells[pt.Failures] = map[string]FairPoint{}
		}
		cells[pt.Failures][pt.Policy] = pt
	}
	if len(cells) != len(fairFailureLevels) {
		t.Fatalf("campaign has %d failure cells, want %d", len(cells), len(fairFailureLevels))
	}
	for fl, pols := range cells {
		f, okF := pols["fcfs"]
		e, okE := pols["easy-backfill"]
		fs, okS := pols["fair-share"]
		if !okF || !okE || !okS {
			t.Fatalf("%s: missing a policy (have %d)", fl, len(pols))
		}
		if f.Jobs < 200 || f.Jobs != e.Jobs || f.Jobs != fs.Jobs {
			t.Errorf("%s: stream mismatch or too small (%d/%d/%d jobs, want >= 200 and equal)",
				fl, f.Jobs, e.Jobs, fs.Jobs)
		}
		// The headline: fair-share strictly fairest in delivered usage.
		if fs.UsageJain <= f.UsageJain || fs.UsageJain <= e.UsageJain {
			t.Errorf("%s: fair-share usage Jain %.4f not strictly above fcfs %.4f and easy %.4f",
				fl, fs.UsageJain, f.UsageJain, e.UsageJain)
		}
		if fs.ShareErr >= f.ShareErr || fs.ShareErr >= e.ShareErr {
			t.Errorf("%s: fair-share share error %.4f not strictly below fcfs %.4f and easy %.4f",
				fl, fs.ShareErr, f.ShareErr, e.ShareErr)
		}
		// ...and it pays at most 5% of EASY's utilization for it.
		if fs.Util < 0.95*e.Util {
			t.Errorf("%s: fair-share utilization %.4f below 95%% of easy's %.4f", fl, fs.Util, e.Util)
		}
		for _, pt := range []FairPoint{f, e, fs} {
			if pt.UsageJain <= 0 || pt.UsageJain > 1+1e-9 {
				t.Errorf("%s %s: usage Jain %.4f outside (0, 1]", fl, pt.Policy, pt.UsageJain)
			}
			if len(pt.Tenants) < schedTenants {
				t.Errorf("%s %s: %d tenant shares, want >= %d", fl, pt.Policy, len(pt.Tenants), schedTenants)
			}
			wantKills := fl != "none"
			if gotKills := pt.FailureKills+pt.Preemptions > 0; fl == "none" && pt.FailureKills > 0 {
				t.Errorf("%s %s: %d failure kills with failures disabled", fl, pt.Policy, pt.FailureKills)
			} else if wantKills && !gotKills && pt.DownNH == 0 {
				t.Errorf("%s %s: failure cell landed no kills, preemptions, or down time", fl, pt.Policy)
			}
		}
		if fl != "none" && f.FailureKills+e.FailureKills+fs.FailureKills == 0 {
			t.Errorf("%s: no policy absorbed a failure kill — the axis exercises nothing", fl)
		}
	}
	text := renderFair(st)
	if !strings.Contains(text, "usage Jain") || !strings.Contains(text, "fair-share") {
		t.Fatalf("renderFair missing the comparison summary:\n%s", text)
	}
}
