package experiments

import (
	"fmt"
	"strings"

	"picmcio/internal/sweep"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats series as an aligned text block, one column per series.
func RenderSeries(title, xlabel string, ss []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-12s", xlabel)
	for _, s := range ss {
		fmt.Fprintf(&b, "  %-22s", s.Label)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range ss {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		wrote := false
		for si, s := range ss {
			if i < len(s.X) {
				if !wrote {
					fmt.Fprintf(&b, "%-12g", s.X[i])
					wrote = true
				}
				_ = si
				fmt.Fprintf(&b, "  %-22.4f", s.Y[i])
			} else if wrote {
				fmt.Fprintf(&b, "  %-22s", "-")
			}
		}
		if wrote {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Render formats the table as aligned text via the sweep engine's shared
// formatter, so hand-built figure tables and generic sweep tables line
// up identically.
func (t Table) Render() string {
	return sweep.FormatAligned(t.Title, t.Header, t.Rows)
}
