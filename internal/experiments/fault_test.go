package experiments

import (
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/fault"
)

// TestFigFaultPolicySeparation is the artifact's headline claim: on node
// loss, deferring write-back costs restart work — per kill time under the
// plain scheduler, epoch-end draining loses strictly more epochs than
// immediate draining, and watermark (deepest backlog) at least as much as
// epoch-end.
func TestFigFaultPolicySeparation(t *testing.T) {
	o := Options{Seed: 1}
	_, cells, err := o.FigFault()
	if err != nil {
		t.Fatal(err)
	}
	lost := map[burst.Policy]map[float64]int{}
	for _, c := range cells {
		if c.QoS != "qos-off" {
			continue
		}
		if lost[c.Policy] == nil {
			lost[c.Policy] = map[float64]int{}
		}
		lost[c.Policy][c.KillFrac] = c.Report.LostEpochsPFS
	}
	for _, frac := range FaultKillFracs {
		imm, ee, wm := lost[burst.PolicyImmediate][frac], lost[burst.PolicyEpochEnd][frac], lost[burst.PolicyWatermark][frac]
		if ee <= imm {
			t.Errorf("kill@%.2f: epoch-end lost %d epochs, immediate %d — must be strictly more", frac, ee, imm)
		}
		if wm < ee {
			t.Errorf("kill@%.2f: watermark lost %d epochs, epoch-end %d — must be at least as much", frac, wm, ee)
		}
	}
	for _, c := range cells {
		if c.Report.BufferedEpochs < c.Report.DurableEpochs {
			t.Errorf("%s/%s@%.2f: durable position %d past buffered %d", c.Policy, c.QoS, c.KillFrac,
				c.Report.DurableEpochs, c.Report.BufferedEpochs)
		}
		if c.VictimDurable < c.CleanDurable {
			t.Errorf("%s/%s@%.2f: faulted durable %.4fs beat the clean run's %.4fs", c.Policy, c.QoS, c.KillFrac,
				c.VictimDurable, c.CleanDurable)
		}
	}
}

// TestFigFaultSurvival: the same kill either destroys the staged backlog
// (restart from PFS-durable state) or preserves it for redrain (restart
// from buffered state) — and the NVMe-surviving restart resumes from at
// least as late an epoch.
func TestFigFaultSurvival(t *testing.T) {
	o := Options{Seed: 1}
	sc, err := o.FigFaultSurvival()
	if err != nil {
		t.Fatal(err)
	}
	nl, nk := sc.NodeLoss.Fault, sc.NVMeKeep.Fault
	if nl.Spec.Survival != fault.SurviveNone || nk.Spec.Survival != fault.SurviveNVMe {
		t.Fatalf("comparison mislabeled: %v vs %v", nl.Spec.Survival, nk.Spec.Survival)
	}
	if nl.LostBytes == 0 || nl.RedrainBytes != 0 {
		t.Errorf("node loss: lost=%d redrain=%d, want destroyed staged bytes", nl.LostBytes, nl.RedrainBytes)
	}
	if nk.LostBytes != 0 || nk.RedrainBytes == 0 {
		t.Errorf("NVMe survival: lost=%d redrain=%d, want redrained staged bytes", nk.LostBytes, nk.RedrainBytes)
	}
	if nk.RestartEpoch < nl.RestartEpoch {
		t.Errorf("NVMe survival restarts from %d, behind node loss's %d", nk.RestartEpoch, nl.RestartEpoch)
	}
}
