package experiments

import (
	"fmt"
	"strings"

	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/sched"
	"picmcio/internal/sweep"
	"picmcio/internal/xrand"
)

// fairWeights skews the offered load across the figsched tenant
// population: one hog tenant at 6× the base rate, two heavy ones, and
// five at baseline. Under FCFS or EASY the hog simply buys more of the
// machine; fair-share is what pushes delivered usage back toward equal
// shares.
var fairWeights = []float64{6, 3, 2, 1, 1, 1, 1, 1}

// fairLoad oversubscribes the partition so the queue is persistently
// contended — share enforcement is a no-op on an idle machine.
const fairLoad = 1.2

// fairPolicies is the policy axis of the fairness campaign.
var fairPolicies = []string{"fcfs", "easy-backfill", "fair-share"}

// fairFailureMTBF maps the failure axis to a per-node MTBF in hours:
// "none" disables the failure process, "moderate" lands a handful of
// node losses inside the campaign window on the 64-node partition.
var fairFailureMTBF = map[string]float64{"none": 0, "moderate": 1500}

// fairFailureLevels orders the failure axis.
var fairFailureLevels = []string{"none", "moderate"}

// FairPoint is one (failures × policy) cell of the fairness campaign.
type FairPoint struct {
	Failures  string
	Policy    string
	Jobs      int
	MeanWaitH float64
	Util      float64
	// UsageJain is time-weighted Jain fairness over the tenants' decayed
	// delivered usage during contended intervals (1 = equal shares).
	UsageJain float64
	// ShareErr is the time-weighted mean |share − 1/n| over the same
	// intervals.
	ShareErr     float64
	Preemptions  int
	FailureKills int
	LostNH       float64
	DownNH       float64
	Tenants      []sched.TenantShare
}

// FigFair runs the fairness-under-failures campaign: one skewed
// multi-tenant stream on a contended Dardel partition, replayed under
// every policy with preemptive checkpoint-and-requeue enabled, with and
// without in-queue node failures. The axis the figure exists to show is
// delivered-usage fairness: FCFS and EASY let the hog tenant's
// submission rate buy a matching share of the machine, while fair-share
// holds delivered usage near equal shares at (acceptance-gated) nearly
// EASY's utilization — and keeps doing so when nodes start dying.
func (o Options) FigFair() (sweep.Table, error) {
	o = o.WithDefaults()
	m := cluster.Dardel()
	pr := sched.NewPricer(m, o.Seed, o.CampaignEpochHours)
	s := sched.Synth{Tenants: schedTenants, Users: schedUsers, TenantWeights: fairWeights}
	mean, err := sched.SubmitMeanForLoad(pr, m, s, fairLoad, schedPartitionNodes)
	if err != nil {
		return sweep.Table{}, fmt.Errorf("figfair calibrate: %w", err)
	}
	s.SubmitMeanHours = mean
	// Weighted tenants submit like weight× their user count, so the
	// expected-job window divides by the weighted population.
	wsum := 0.0
	for _, w := range fairWeights {
		wsum += w
	}
	s.SpanHours = float64(o.SchedJobs) * mean / (wsum * float64(schedUsers))
	// One stream for the whole campaign: the failure axis lives in the
	// scheduler config (fault arrivals are drawn from the run seed, not
	// the trace), so every cell replays the identical submission log.
	s.Seed = xrand.SeedAt(o.Seed, 0x66616972)
	stream, err := sched.Synthesize(m, s)
	if err != nil {
		return sweep.Table{}, fmt.Errorf("figfair synthesize: %w", err)
	}
	if err := pr.Prewarm(stream, o.Parallel); err != nil {
		return sweep.Table{}, fmt.Errorf("figfair prewarm: %w", err)
	}
	g := sweep.Grid{
		sweep.Strings("failures", fairFailureLevels),
		sweep.Strings("policy", fairPolicies),
	}
	title := fmt.Sprintf("Fig F: fair-share under preemption and node failures on a %d-node partition (weights %v, load %g, ~%d jobs)",
		schedPartitionNodes, fairWeights, fairLoad, o.SchedJobs)
	return sweep.Run(g, o.sweepOptions(title),
		func(c sweep.Config) (sweep.Point, error) {
			pol, err := sched.Policies(c.Str("policy"))
			if err != nil {
				return sweep.Point{}, err
			}
			cfg := sched.Config{
				Machine:    m,
				Nodes:      schedPartitionNodes,
				EpochHours: o.CampaignEpochHours,
				Seed:       o.Seed,
				Pricer:     pr,
				Preempt:    sched.PreemptConfig{MaxHeadWaitHours: 8, CheckpointHours: 0.5},
			}
			if mtbf := fairFailureMTBF[c.Str("failures")]; mtbf > 0 {
				cfg.Faults = sched.FaultConfig{
					MTBFNodeHours:        mtbf,
					RepairHours:          12,
					RestartOverheadHours: 0.5,
					Survival:             fault.SurviveNVMe,
				}
			}
			res, err := sched.Run(cfg, pol, stream)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figfair %s/%s: %w", c.Str("failures"), c.Str("policy"), err)
			}
			pt := FairPoint{
				Failures:     c.Str("failures"),
				Policy:       res.Policy,
				Jobs:         len(res.Jobs),
				MeanWaitH:    res.MeanWaitHours(),
				Util:         res.Utilization(),
				UsageJain:    res.UsageJain,
				ShareErr:     res.ShareErr,
				Preemptions:  res.Preemptions,
				FailureKills: res.FailureKills,
				LostNH:       res.LostNodeHours,
				DownNH:       res.DownNodeHours,
				Tenants:      res.TenantShares,
			}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("jobs", float64(pt.Jobs)),
					sweep.V("mean_wait_h", pt.MeanWaitH),
					sweep.V("util", pt.Util),
					sweep.V("usage_jain", pt.UsageJain),
					sweep.V("share_err", pt.ShareErr),
					sweep.V("preemptions", float64(pt.Preemptions)),
					sweep.V("fail_kills", float64(pt.FailureKills)),
					sweep.V("lost_nh", pt.LostNH),
					sweep.V("down_nh", pt.DownNH),
				},
				Extra: pt,
			}, nil
		})
}

// renderFair builds the artifact text: the sweep table plus per-failure
// comparison lines for the delta the campaign exists to show — how much
// usage fairness each policy buys and what it costs in utilization.
func renderFair(t sweep.Table) string {
	var b strings.Builder
	b.WriteString(t.Render())
	byCell := map[string]map[string]FairPoint{}
	var order []string
	for _, p := range t.Points {
		pt, ok := p.Extra.(FairPoint)
		if !ok {
			continue
		}
		if byCell[pt.Failures] == nil {
			byCell[pt.Failures] = map[string]FairPoint{}
			order = append(order, pt.Failures)
		}
		byCell[pt.Failures][pt.Policy] = pt
	}
	for _, fl := range order {
		cell := byCell[fl]
		e, okE := cell["easy-backfill"]
		fs, okF := cell["fair-share"]
		if !okE || !okF {
			continue
		}
		fmt.Fprintf(&b, "failures %-8s: usage Jain fcfs %.3f, easy %.3f -> fair-share %.3f; util %.3f -> %.3f; %d preemptions, %d kills, %.0f node-h lost\n",
			fl, cell["fcfs"].UsageJain, e.UsageJain, fs.UsageJain, e.Util, fs.Util,
			fs.Preemptions, fs.FailureKills, fs.LostNH)
	}
	b.WriteString("\n")
	return b.String()
}
