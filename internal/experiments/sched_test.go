package experiments

import (
	"strings"
	"testing"
)

// TestFigSchedAcceptance pins the campaign's headline claims at the
// default scale: every (machine × load) cell schedules a ≥200-job
// multi-tenant stream, EASY backfill beats FCFS on mean queue wait at
// equal-or-better utilization in every cell, and the per-tenant Jain
// fairness index is computed over ≥8 tenants and stays near 1.
func TestFigSchedAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scheduling campaign")
	}
	o := Options{Seed: 1}
	st, err := o.FigSched()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		machine string
		load    float64
	}
	cells := map[key]map[string]SchedPoint{}
	for _, p := range st.Points {
		pt := p.Extra.(SchedPoint)
		k := key{pt.Machine, pt.Load}
		if cells[k] == nil {
			cells[k] = map[string]SchedPoint{}
		}
		cells[k][pt.Policy] = pt
	}
	wantCells := len(schedMachines()) * len(schedLoads)
	if len(cells) != wantCells {
		t.Fatalf("campaign has %d (machine × load) cells, want %d", len(cells), wantCells)
	}
	for k, pols := range cells {
		f, okF := pols["fcfs"]
		e, okE := pols["easy-backfill"]
		if !okF || !okE {
			t.Fatalf("%v: missing a policy (have %d)", k, len(pols))
		}
		if f.Jobs < 200 || e.Jobs < 200 {
			t.Errorf("%v: only %d/%d jobs, want >= 200 per cell", k, f.Jobs, e.Jobs)
		}
		if f.Jobs != e.Jobs {
			t.Errorf("%v: policies saw different streams (%d vs %d jobs)", k, f.Jobs, e.Jobs)
		}
		if e.MeanWaitH >= f.MeanWaitH {
			t.Errorf("%v: EASY mean wait %.1fh not better than FCFS %.1fh", k, e.MeanWaitH, f.MeanWaitH)
		}
		if e.Util < f.Util-1e-9 {
			t.Errorf("%v: EASY utilization %.4f below FCFS %.4f", k, e.Util, f.Util)
		}
		if e.Backfills == 0 {
			t.Errorf("%v: EASY made no backfills", k)
		}
		for _, pt := range []SchedPoint{f, e} {
			if len(pt.Tenants) < 8 {
				t.Errorf("%v %s: Jain computed over %d tenants, want >= 8", k, pt.Policy, len(pt.Tenants))
			}
			if pt.Jain <= 0.9 || pt.Jain > 1+1e-9 {
				t.Errorf("%v %s: Jain %.4f outside (0.9, 1]", k, pt.Policy, pt.Jain)
			}
		}
	}
	// The rendered artifact carries the per-cell delta lines.
	text := renderSched(st)
	if !strings.Contains(text, "mean wait") || !strings.Contains(text, "backfills") {
		t.Fatalf("renderSched missing the delta summary:\n%s", text)
	}
}
