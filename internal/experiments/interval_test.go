package experiments

import (
	"strings"
	"testing"
)

// TestFigInterval pins the interval figure's structure: the analytic
// optimum is marked exactly once per (machine, policy, durability)
// curve, the waste curve is minimal at the mark, and the buffered
// cadence is shorter than the PFS one on every staging machine — cheap
// saves shift the Young/Daly optimum toward more frequent checkpoints,
// which is the point of the staging tier.
func TestFigInterval(t *testing.T) {
	o := Options{Seed: 1}
	st, err := o.FigIntervalSweep()
	if err != nil {
		t.Fatal(err)
	}
	type curve struct{ machine, policy, durability string }
	marks := map[curve]int{}
	atOpt := map[curve]float64{}
	minWaste := map[curve]float64{}
	numeric := map[curve]float64{}
	for _, p := range st.Points {
		cell := p.Extra.(IntervalCell)
		k := curve{cell.Machine, cell.Policy, cell.Durability}
		if cell.Scale == 1 {
			marks[k]++
			atOpt[k] = cell.WasteFrac
			numeric[k] = cell.Level.NumericSec
		}
		if w, ok := minWaste[k]; !ok || cell.WasteFrac < w {
			minWaste[k] = cell.WasteFrac
		}
		if cell.IntervalSec <= 0 || cell.WasteFrac <= 0 || cell.WasteFrac >= 1 {
			t.Errorf("%v scale %v: degenerate cell (interval %v, waste %v)",
				k, cell.Scale, cell.IntervalSec, cell.WasteFrac)
		}
		// The closed forms must bracket the numeric optimum tightly in
		// this δ ≪ M regime.
		if cell.Scale == 1 {
			for _, closed := range []float64{cell.Level.YoungSec, cell.Level.DalySec} {
				if rel := (closed - cell.Level.NumericSec) / cell.Level.NumericSec; rel > 0.02 || rel < -0.02 {
					t.Errorf("%v: closed form %v vs numeric %v diverge by %.3f", k, closed, cell.Level.NumericSec, rel)
				}
			}
		}
	}
	if len(marks) != 2*3*2 {
		t.Fatalf("expected 12 curves, saw %d", len(marks))
	}
	for k, n := range marks {
		if n != 1 {
			t.Errorf("%v: optimum marked %d times", k, n)
		}
		if atOpt[k] > minWaste[k]+1e-15 {
			t.Errorf("%v: waste at the mark (%v) above the grid minimum (%v)", k, atOpt[k], minWaste[k])
		}
	}
	for _, m := range []string{"Dardel", "Vega"} {
		for _, pol := range []string{"immediate", "epoch-end", "watermark"} {
			buf := numeric[curve{m, pol, "buffered"}]
			pfs := numeric[curve{m, pol, "pfs"}]
			if !(buf > 0 && buf < pfs) {
				t.Errorf("%s/%s: buffered optimum %v not shorter than PFS %v", m, pol, buf, pfs)
			}
		}
	}
	// Survival-weighted Young: diverged (0) on Dardel whose NVMe dies
	// with the node, equal to plain Young on Vega whose staging survives.
	for _, p := range st.Points {
		cell := p.Extra.(IntervalCell)
		if cell.Durability != "buffered" || cell.Scale != 1 {
			continue
		}
		sw, _ := p.Get("young_surv_s")
		switch cell.Machine {
		case "Dardel":
			if sw != 0 {
				t.Errorf("Dardel survival-weighted Young %v, want 0 (s=0 diverges)", sw)
			}
		case "Vega":
			if sw != cell.Level.YoungSec {
				t.Errorf("Vega survival-weighted Young %v, want plain Young %v", sw, cell.Level.YoungSec)
			}
		}
	}
}

// TestCampaignOptimalValidates is the PR's acceptance criterion: on
// both staging presets, the empirical waste at the ckptopt-recommended
// interval is no worse than every fixed-interval baseline in the grid.
// The accelerated MTBF keeps the Monte-Carlo campaign small enough for
// a unit test while still observing enough failures per cell to settle
// the comparison.
func TestCampaignOptimalValidates(t *testing.T) {
	o := Options{Seed: 1, CampaignMTBFHours: 500}
	st, err := o.CampaignOptimum()
	if err != nil {
		t.Fatal(err)
	}
	verdicts := OptimalVerdicts(st)
	if len(verdicts) != 2 {
		t.Fatalf("expected verdicts for both staging presets, got %v", verdicts)
	}
	for m, ok := range verdicts {
		if !ok {
			t.Errorf("%s: a fixed baseline beat the ckptopt recommendation", m)
		}
	}
	for _, p := range st.Points {
		cell := p.Extra.(OptimalCell)
		if cell.Failures == 0 {
			t.Errorf("%s scale %v observed no failures — the comparison is vacuous", cell.Machine, cell.Scale)
		}
		if cell.OverheadNH <= 0 || cell.WastePerKNH <= 0 {
			t.Errorf("%s scale %v: degenerate accounting %+v", cell.Machine, cell.Scale, cell)
		}
	}
	if !strings.Contains(renderOptimal(st), "recommendation validated") {
		t.Error("render lost the verdict line")
	}

	// Bit-identical under the worker pool, like every sweep artifact.
	po := o
	po.Parallel = 4
	pst, err := po.CampaignOptimum()
	if err != nil {
		t.Fatal(err)
	}
	if renderOptimal(st) != renderOptimal(pst) {
		t.Fatal("campfail -optimal diverged between serial and -parallel 4")
	}
}
