package experiments

import (
	"fmt"
	"strings"

	"picmcio/internal/cluster"
	"picmcio/internal/sched"
	"picmcio/internal/sweep"
	"picmcio/internal/xrand"
)

// schedPartitionNodes is the schedulable partition figsched runs on: big
// enough that the wide class (16 nodes) leaves room to backfill around,
// small enough that the offered load saturates it with a few hundred
// jobs.
const schedPartitionNodes = 64

// schedTenants and schedUsers shape the submitting population: 8
// tenants give the Jain fairness reading an N ≫ 2 denominator, 4 users
// each keep per-tenant arrival streams bursty rather than smooth.
const (
	schedTenants = 8
	schedUsers   = 4
)

// schedLoads are the offered-load factors swept (fraction of the
// partition's node-hour capacity): below saturation, at it, and over it
// — backfill only has room to matter once a queue forms.
var schedLoads = []float64{0.7, 1.0, 1.3}

// schedPolicies is the policy axis, resolved via sched.Policies.
var schedPolicies = []string{"fcfs", "easy-backfill"}

// schedMachines returns the presets figsched schedules on.
func schedMachines() []cluster.Machine {
	return []cluster.Machine{cluster.Dardel(), cluster.Vega()}
}

// SchedPoint is one (machine × load × policy) cell of the scheduling
// campaign.
type SchedPoint struct {
	Machine   string
	Load      float64
	Policy    string
	Jobs      int
	MeanWaitH float64
	P95WaitH  float64
	Util      float64
	// Jain is per-tenant fairness over mean bounded slowdowns (1 = every
	// tenant got the same queue treatment), at schedTenants tenants.
	Jain        float64
	Backfills   int
	MakespanH   float64
	MeanStretch float64 // mean contention stretch of the admitted jobs
	Tenants     []sched.GroupStats
	Classes     []sched.GroupStats
}

// schedCell is one pre-synthesized (machine, load) workload: the exact
// job stream every policy of that cell replays. Streams and prices are
// built before the sweep so the policy axis cannot perturb them — the
// comparison is between schedules of identical traces, and the pricer
// cache is warmed up front so parallel trials only read it.
type schedCell struct {
	machine cluster.Machine
	pricer  *sched.Pricer
	stream  []sched.Job
	span    float64
}

// FigSched runs the batch-scheduling campaign: synthetic multi-tenant
// job streams on a machine partition, each replayed under every
// scheduling policy, reporting queue waits, utilization, backfill
// counts, and per-tenant fairness (ROADMAP: datacenter-scale co-job
// scheduling over the co-schedule substrate).
func (o Options) FigSched() (sweep.Table, error) {
	o = o.WithDefaults()
	machines := schedMachines()
	names := make([]string, len(machines))
	cells := map[[2]int]*schedCell{}
	for mi, m := range machines {
		names[mi] = strings.ToLower(m.Name)
		pr := sched.NewPricer(m, o.Seed, o.CampaignEpochHours)
		for li, load := range schedLoads {
			s := sched.Synth{Tenants: schedTenants, Users: schedUsers}
			mean, err := sched.SubmitMeanForLoad(pr, m, s, load, schedPartitionNodes)
			if err != nil {
				return sweep.Table{}, fmt.Errorf("figsched calibrate %s load %g: %w", m.Name, load, err)
			}
			s.SubmitMeanHours = mean
			// Span the window so the cell expects SchedJobs submissions:
			// expected jobs = users × span / mean.
			s.SpanHours = float64(o.SchedJobs) * mean / float64(schedTenants*schedUsers)
			// The trace seed covers machine and load but NOT policy — every
			// policy must face the identical stream, or the comparison is
			// between workloads rather than schedules.
			s.Seed = xrand.SeedAt(o.Seed, uint64(mi*len(schedLoads)+li))
			stream, err := sched.Synthesize(m, s)
			if err != nil {
				return sweep.Table{}, fmt.Errorf("figsched synthesize %s load %g: %w", m.Name, load, err)
			}
			// Pre-price every distinct shape on the sweep worker pool: the
			// parallel policy trials below then only read the cache, and the
			// wall-clock cost of the probe simulations amortizes across the
			// load axis (shapes repeat between loads on the same machine).
			// Prewarm's cache is byte-identical to lazy serial pricing, so
			// the rendered artifact is unchanged.
			if err := pr.Prewarm(stream, o.Parallel); err != nil {
				return sweep.Table{}, fmt.Errorf("figsched prewarm %s load %g: %w", m.Name, load, err)
			}
			cells[[2]int{mi, li}] = &schedCell{machine: m, pricer: pr, stream: stream, span: s.SpanHours}
		}
	}
	g := sweep.Grid{
		sweep.Strings("machine", names),
		sweep.Floats("load", schedLoads),
		sweep.Strings("policy", schedPolicies),
	}
	title := fmt.Sprintf("Fig S: batch scheduling on a %d-node partition (%d tenants × %d users, ~%d jobs/cell, %g h/epoch)",
		schedPartitionNodes, schedTenants, schedUsers, o.SchedJobs, o.CampaignEpochHours)
	return sweep.Run(g, o.sweepOptions(title),
		func(c sweep.Config) (sweep.Point, error) {
			cell := cells[[2]int{c.Ordinal("machine"), c.Ordinal("load")}]
			pol, err := sched.Policies(c.Str("policy"))
			if err != nil {
				return sweep.Point{}, err
			}
			res, err := sched.Run(sched.Config{
				Machine:    cell.machine,
				Nodes:      schedPartitionNodes,
				EpochHours: o.CampaignEpochHours,
				Seed:       o.Seed,
				Pricer:     cell.pricer,
			}, pol, cell.stream)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figsched %s: %w", c.Str("policy"), err)
			}
			pt := SchedPoint{
				Machine:   cell.machine.Name,
				Load:      c.Float("load"),
				Policy:    res.Policy,
				Jobs:      len(res.Jobs),
				MeanWaitH: res.MeanWaitHours(),
				P95WaitH:  res.WaitQuantile(0.95),
				Util:      res.Utilization(),
				Jain:      res.JainTenants(),
				Backfills: res.Backfills,
				MakespanH: res.Makespan,
				Tenants:   res.TenantStats(),
				Classes:   res.ClassStats(),
			}
			for _, j := range res.Jobs {
				pt.MeanStretch += j.StretchX
			}
			if pt.Jobs > 0 {
				pt.MeanStretch /= float64(pt.Jobs)
			}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("jobs", float64(pt.Jobs)),
					sweep.V("mean_wait_h", pt.MeanWaitH),
					sweep.V("p95_wait_h", pt.P95WaitH),
					sweep.V("util", pt.Util),
					sweep.V("jain_tenants", pt.Jain),
					sweep.V("backfills", float64(pt.Backfills)),
					sweep.V("makespan_h", pt.MakespanH),
					sweep.V("mean_stretch_x", pt.MeanStretch),
				},
				Extra: pt,
			}, nil
		})
}

// renderSched builds the artifact text: the sweep table plus the
// per-cell FCFS→EASY deltas the campaign exists to show.
func renderSched(t sweep.Table) string {
	var b strings.Builder
	b.WriteString(t.Render())
	// Pair up policies per (machine, load) in table order.
	type key struct {
		machine string
		load    float64
	}
	byCell := map[key]map[string]SchedPoint{}
	var order []key
	for _, p := range t.Points {
		pt, ok := p.Extra.(SchedPoint)
		if !ok {
			continue
		}
		k := key{pt.Machine, pt.Load}
		if byCell[k] == nil {
			byCell[k] = map[string]SchedPoint{}
			order = append(order, k)
		}
		byCell[k][pt.Policy] = pt
	}
	for _, k := range order {
		f, okF := byCell[k]["fcfs"]
		e, okE := byCell[k]["easy-backfill"]
		if !okF || !okE {
			continue
		}
		delta := 0.0
		if f.MeanWaitH > 0 {
			delta = 100 * (1 - e.MeanWaitH/f.MeanWaitH)
		}
		fmt.Fprintf(&b, "%-10s load %.1f: mean wait %7.1fh -> %7.1fh (-%5.1f%%), util %.3f -> %.3f, Jain(%d tenants) %.3f -> %.3f, %d backfills\n",
			k.machine, k.load, f.MeanWaitH, e.MeanWaitH, delta, f.Util, e.Util,
			len(e.Tenants), f.Jain, e.Jain, e.Backfills)
	}
	b.WriteString("\n")
	return b.String()
}
