// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated substrate: one runner per artifact,
// shared machinery for launching BIT1 under Darshan on a simulated
// machine, and plain-text series/table output.
//
// Runs use full rank counts (128 ranks/node up to 25 600) and full payload
// sizes, but a reduced number of output epochs; quantities that accumulate
// over the whole 200 K-step production run (per-process times, metadata
// log sizes) are extrapolated by the epoch ratio and labelled as
// "full-run equivalent" — see DESIGN.md §6.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"picmcio/internal/adios2"
	"picmcio/internal/bit1"
	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/compress"
	"picmcio/internal/darshan"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
	"picmcio/internal/workload"
)

// Options scales the experiments.
type Options struct {
	Seed         uint64
	RanksPerNode int   // default 128, as on the paper's machines
	NodeCounts   []int // default: the Table II node set

	DiagEpochs       int // simulated diagnostic outputs (paper: 200)
	CheckpointEpochs int // simulated checkpoints (paper: 20)

	// ComputePerStep charges virtual compute time per PIC step between
	// output epochs (0 for pure-I/O experiments). The burst-buffer
	// figure sets it so asynchronous drain overlaps compute.
	ComputePerStep sim.Duration

	// BurstPolicy overrides the machine preset's drain policy for the
	// burst-buffer figure ("immediate", "watermark", "epoch-end";
	// "" keeps the preset).
	BurstPolicy string

	FullDiagEpochs       int // production-run diagnostic outputs
	FullCheckpointEpochs int // production-run checkpoints

	// Parallel bounds the sweep engine's trial worker pool (<= 1:
	// serial). Every artifact is bit-identical at any width: trials are
	// pure functions of their sweep.Config, and per-trial seeds derive
	// from Seed × trial index rather than evaluation order.
	Parallel int

	// CampaignRuns is the stochastic failure campaign's Monte-Carlo draw
	// count per grid cell (0: auto-size so the cell expects
	// campaignTargetFailures failures at the preset MTBF).
	CampaignRuns int
	// CampaignEpochHours is how many production hours one simulated
	// epoch stands for in the campaign's failure-arrival clock
	// (default 6: a checkpoint interval of a quarter day).
	CampaignEpochHours float64
	// CampaignMTBFHours overrides the machine preset's per-node MTBF in
	// the campaign (0: keep the preset). Accelerated MTBFs make tiny
	// smoke campaigns actually observe failures.
	CampaignMTBFHours float64
	// CampaignOptimal switches the campfail artifact to its validation
	// mode: run the stochastic campaign at the ckptopt-recommended
	// checkpoint interval and at fixed baselines bracketing it, and
	// report whether the recommendation's empirical waste wins
	// (CampaignOptimum).
	CampaignOptimal bool

	// SchedJobs is the expected job count per figsched campaign cell
	// (default 240: comfortably past the 200-job bar with Poisson
	// arrival-count jitter, still sub-second to schedule).
	SchedJobs int
}

// WithDefaults fills unset fields with the paper-faithful defaults.
func (o Options) WithDefaults() Options {
	if o.RanksPerNode == 0 {
		o.RanksPerNode = 128
	}
	if len(o.NodeCounts) == 0 {
		o.NodeCounts = []int{1, 2, 5, 10, 20, 30, 40, 50, 100, 200}
	}
	if o.DiagEpochs == 0 {
		o.DiagEpochs = 5
	}
	if o.CheckpointEpochs == 0 {
		o.CheckpointEpochs = 1
	}
	if o.FullDiagEpochs == 0 {
		o.FullDiagEpochs = 200
	}
	if o.FullCheckpointEpochs == 0 {
		o.FullCheckpointEpochs = 20
	}
	if o.CampaignEpochHours == 0 {
		o.CampaignEpochHours = 6
	}
	if o.SchedJobs == 0 {
		o.SchedJobs = 240
	}
	return o
}

// sweepOptions builds the engine options every artifact sweep shares.
func (o Options) sweepOptions(title string) sweep.Options {
	return sweep.Options{Title: title, Seed: o.Seed, Parallel: o.Parallel}
}

// EpochFactor is the full-run / simulated-run extrapolation ratio.
func (o Options) EpochFactor() float64 {
	return float64(o.FullDiagEpochs) / float64(o.DiagEpochs)
}

// deck builds the scaled input deck for the options.
func (o Options) deck() bit1.InputDeck {
	d := bit1.DefaultDeck()
	d.MVStep = 100
	d.MVFlag = 1
	d.LastStep = o.DiagEpochs * 100
	d.DMPStep = o.DiagEpochs * 100 / o.CheckpointEpochs
	return d
}

// FileStats summarizes the files a run left on the file system, in the
// shape of Table II.
type FileStats struct {
	Count      int
	TotalBytes int64
	AvgBytes   int64
	MaxBytes   int64
}

// RunResult is one (machine, nodes, config) measurement.
type RunResult struct {
	Machine string
	Nodes   int
	Ranks   int
	Label   string

	ThroughputGiBs float64 // aggregate write throughput (Darshan, elapsed window)
	Elapsed        sim.Time
	Log            *darshan.Log
	Files          FileStats

	// Full-run-equivalent per-process times (Fig. 5).
	ReadSec, MetaSec, WriteSec float64

	// BP4 profiling.json totals, if the run produced one.
	Profile *adios2.Timers

	// Burst-buffer tier accounting, when the machine has one.
	Burst *burst.Stats
	// AppEndSec is when the last rank finished its program; DrainTailSec
	// is the wall-clock write-back time left after that. DrainOverlapSec
	// is the drain busy time accrued while ranks were still running —
	// the portion of write-back genuinely overlapped with the app.
	AppEndSec, DrainTailSec, DrainOverlapSec float64
}

// RunBIT1Public runs one BIT1 configuration and returns its measurements
// (exported for ablation benches and tools).
func (o Options) RunBIT1Public(m cluster.Machine, nodes int, mode bit1.IOMode, toml string) (*RunResult, error) {
	return o.runBIT1(m, nodes, mode, toml)
}

// runBIT1 executes one full BIT1 run on machine m with the given node
// count and I/O configuration, returning the measurements.
func (o Options) runBIT1(m cluster.Machine, nodes int, mode bit1.IOMode, toml string) (*RunResult, error) {
	o = o.WithDefaults()
	k := m.NewKernel(nodes)
	sys, err := m.Build(k, nodes, o.Seed)
	if err != nil {
		return nil, err
	}
	ranks := nodes * o.RanksPerNode
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(m.NetAlpha, m.NetBeta))
	col := darshan.NewCollector()
	cfg := bit1.Config{
		Deck:           o.deck(),
		Sizing:         workload.Default(),
		OutDir:         "/scratch/bit1",
		Mode:           mode,
		OpenPMDOptions: toml,
		ComputePerStep: o.ComputePerStep,
		StdioOverhead:  sim.Duration(m.StdioWriteOverhead),
	}
	var mu sync.Mutex
	var firstErr error
	var appEnd sim.Time
	var drainBusyAtAppEnd float64
	w.Run(func(r *mpisim.Rank) {
		node := r.ID / o.RanksPerNode
		if node >= len(sys.Clients) {
			node = len(sys.Clients) - 1
		}
		env := &posix.Env{FS: sys.FS, Stage: sys.StagedFS(), Client: sys.Clients[node], Rank: r.ID, Monitor: col}
		err := bit1.Run(cfg, bit1.RankEnv{Rank: r, Env: env})
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if now := r.Proc.Now(); now > appEnd {
			appEnd = now
			if sys.Burst != nil {
				drainBusyAtAppEnd = sys.Burst.Stats().DrainBusySec
			}
		}
		mu.Unlock()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	res := &RunResult{
		Machine:   m.Name,
		Nodes:     nodes,
		Ranks:     ranks,
		Elapsed:   k.Now(),
		AppEndSec: float64(appEnd),
	}
	if sys.Burst != nil {
		st := sys.Burst.Stats()
		res.Burst = &st
		// k.Run returns only after on-demand drain workers exit, so the
		// drain tail is whatever virtual time passed after the last rank.
		res.DrainTailSec = float64(k.Now() - appEnd)
		res.DrainOverlapSec = drainBusyAtAppEnd
	}
	res.Log = col.Snapshot(darshan.JobMeta{
		Executable: "bit1." + mode.String(), NProcs: ranks,
		Machine: m.Name, RunSeconds: float64(k.Now()),
	})
	// Throughput is measured on the simulation's output files only: the
	// staged input deck is written once at t=0 and read by every rank,
	// and would otherwise stretch the Darshan write window across the
	// startup phase.
	once := func(rec *darshan.Record) bool { return strings.HasSuffix(rec.Path, ".inp") }
	res.ThroughputGiBs = units.GiBps(res.Log.Filter(func(rec *darshan.Record) bool { return !once(rec) }).WriteThroughputByElapsed())
	// Per-epoch I/O extrapolates to the full production run; one-time
	// I/O (the input deck every rank reads at startup) does not.
	r1, m1, w1 := res.Log.Filter(once).PerProcessTimes()
	rN, mN, wN := res.Log.Filter(func(rec *darshan.Record) bool { return !once(rec) }).PerProcessTimes()
	f := o.EpochFactor()
	res.ReadSec = r1 + rN*f
	res.MetaSec = m1 + mN*f
	res.WriteSec = w1 + wN*f
	res.Files = o.fileStats(sys, cfg.OutDir)
	res.Profile = profileOf(sys, "/scratch/bit1/bit1_file.bp4/profiling.json")
	return res, nil
}

// fileStats walks the output tree applying full-run extrapolation to the
// append-mode files (BP metadata, shared histories), since those grow
// linearly with epochs while snapshot files are overwritten in place.
func (o Options) fileStats(sys *cluster.System, dir string) FileStats {
	var fs FileStats
	ns := namespaceOf(sys)
	if ns == nil {
		return fs
	}
	factor := o.EpochFactor()
	ns.WalkFiles(dir, func(path string, n *pfs.Node) {
		size := n.Size
		if isAppendMode(path) {
			size = int64(float64(size) * factor)
		}
		fs.Count++
		fs.TotalBytes += size
		if size > fs.MaxBytes {
			fs.MaxBytes = size
		}
	})
	if fs.Count > 0 {
		fs.AvgBytes = fs.TotalBytes / int64(fs.Count)
	}
	return fs
}

// isAppendMode reports whether a file grows with epoch count.
func isAppendMode(path string) bool {
	return strings.HasSuffix(path, "md.0") || strings.HasSuffix(path, "md.idx") ||
		strings.Contains(path, "_global_")
}

// namespaceOf exposes the backend's file tree regardless of which file
// system the machine attaches — Lustre, NFS and CephFS all implement
// pfs.Namespacer, so FileStats and profile extraction work on every
// backend instead of silently returning zero off-Lustre.
func namespaceOf(sys *cluster.System) *pfs.Namespace {
	if n, ok := sys.FS.(pfs.Namespacer); ok {
		return n.Namespace()
	}
	return nil
}

// profileOf extracts BP4 profiling totals if present.
func profileOf(sys *cluster.System, path string) *adios2.Timers {
	ns := namespaceOf(sys)
	if ns == nil {
		return nil
	}
	n, err := ns.Lookup(path)
	if err != nil || n.Content == nil {
		return nil
	}
	_, _, total, _, err := adios2.ParseProfile(n.Content)
	if err != nil {
		return nil
	}
	return &total
}

// aggrTOML renders the adaptor TOML for a configuration.
func aggrTOML(numAgg int, codec string, ratio float64) string {
	var b strings.Builder
	b.WriteString("[adios2.engine]\ntype = \"bp4\"\n\n[adios2.engine.parameters]\n")
	if numAgg > 0 {
		fmt.Fprintf(&b, "NumAggregators = \"%d\"\n", numAgg)
	}
	if codec != "" && codec != "none" {
		fmt.Fprintf(&b, "SimCompressionRatio = \"%.4f\"\n", ratio)
		fmt.Fprintf(&b, "\n[adios2.dataset.operators]\ntype = \"%s\"\n", codec)
	}
	return b.String()
}

var ratioCache sync.Map

// MeasuredRatio compresses a real sampled PIC payload with the named
// codec and returns the compression ratio that volume-mode runs assume.
// An unknown codec is an error — silently assuming ratio 1 would make a
// typo'd configuration masquerade as "compression doesn't help".
func MeasuredRatio(codec string) (float64, error) {
	if codec == "" || codec == "none" {
		return 1, nil
	}
	if v, ok := ratioCache.Load(codec); ok {
		return v.(float64), nil
	}
	c, err := compress.New(codec, 8)
	if err != nil {
		return 0, err
	}
	payload := workload.Float64sToBytes(workload.SamplePayload(1<<16, 42))
	r := compress.Ratio(c, payload)
	ratioCache.Store(codec, r)
	return r, nil
}
