package experiments

import (
	"fmt"
	"sort"
	"strings"

	"picmcio/internal/cluster"
	"picmcio/internal/jobs"
	"picmcio/internal/sweep"
	"picmcio/internal/units"
)

// sizingWorkload is the fixed staged workload every sizing cell runs: a
// checkpoint-heavy writer whose per-node epoch output the capacity axis
// is expressed against.
func sizingWorkload() jobs.ChunkedWriter {
	return jobs.ChunkedWriter{
		Epochs:          4,
		CheckpointBytes: 96 * units.MiB,
		DiagBytes:       32 * units.MiB,
		ComputeSec:      0.02,
		ChunkBytes:      16 * units.MiB,
	}
}

// sizingEpochBytes is one node's output per epoch under sizingWorkload.
func sizingEpochBytes() int64 {
	return sizingWorkload().Shape().BytesPerNode
}

// SizingPoint is one cell of the buffer-sizing grid.
type SizingPoint struct {
	Machine        string
	CapacityEpochs float64 // NVMe capacity in units of per-node epoch output
	DrainScale     float64 // drain rate as a fraction of the preset's

	AppSpeedup   float64 // direct AppSec / staged AppSec: the staging win
	DurableX     float64 // staged DurableSec / direct DurableSec: the write-back debt
	FallbackFrac float64 // share of staged bytes that fell back to the PFS
	DrainGiBs    float64 // achieved write-back bandwidth
	StagedAppSec float64
	DirectAppSec float64
}

// FigSizing is the buffer-sizing sweep (ROADMAP: FigBurst
// generalization): per machine preset carrying sizing ranges, a burst
// capacity × drain-rate grid over a fixed staged workload, each cell
// compared against the same workload writing directly to the PFS. The
// apparent-speedup surface locates the knee where staging stops helping:
// undersized capacity sends absorbs into PFS fallback (speedup → 1),
// and a throttled drain stretches the durable tail past the direct run.
func (o Options) FigSizing() (sweep.Table, error) {
	o = o.WithDefaults()
	var machines []cluster.Machine
	for _, m := range cluster.Machines() {
		if m.Burst.Enabled() && m.Sizing.Enabled() {
			machines = append(machines, m)
		}
	}
	if len(machines) == 0 {
		return sweep.Table{}, fmt.Errorf("figsizing: no machine preset declares sizing ranges")
	}
	// The grid crosses the union of the presets' declared ranges so one
	// rectangular table covers every machine; a cell outside its own
	// machine's range stays empty rather than fabricating a measurement.
	mAxis := sweep.Axis{Name: "machine"}
	caps := map[float64]bool{}
	drains := map[float64]bool{}
	for _, m := range machines {
		mAxis.Values = append(mAxis.Values, m.Name)
		for _, c := range m.Sizing.CapacityEpochs {
			caps[c] = true
		}
		for _, d := range m.Sizing.DrainScale {
			drains[d] = true
		}
	}
	byName := map[string]cluster.Machine{}
	for _, m := range machines {
		byName[m.Name] = m
	}
	g := sweep.Grid{
		mAxis,
		sweep.Floats("capacity_epochs", sortedKeys(caps)),
		sweep.Floats("drain_scale", sortedKeys(drains)),
	}
	wl := sizingWorkload()
	epochBytes := sizingEpochBytes()
	return sweep.Run(g, o.sweepOptions("Fig S: burst capacity × drain-rate sizing grid (staged vs direct, isolated job)"),
		func(c sweep.Config) (sweep.Point, error) {
			m := byName[c.Str("machine")]
			capEpochs := c.Float("capacity_epochs")
			drainScale := c.Float("drain_scale")
			if !inRange(m.Sizing.CapacityEpochs, capEpochs) || !inRange(m.Sizing.DrainScale, drainScale) {
				// Outside the machine's declared range: an empty point keeps
				// the grid rectangular without fabricating a measurement.
				return sweep.Point{Extra: SizingPoint{Machine: m.Name, CapacityEpochs: capEpochs, DrainScale: drainScale}}, nil
			}
			spec := m.Burst
			spec.CapacityBytes = int64(capEpochs * float64(epochBytes))
			spec.DrainRate = m.Burst.DrainRate * drainScale
			staged := jobs.Spec{Name: "staged", Nodes: 2, Burst: spec, Workload: wl, StripeCount: -1}
			direct := jobs.Spec{Name: "direct", Nodes: 2, Workload: wl, StripeCount: -1}
			rs, err := jobs.Run(m, []jobs.Spec{staged}, o.Seed)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figsizing staged: %w", err)
			}
			rd, err := jobs.Run(m, []jobs.Spec{direct}, o.Seed)
			if err != nil {
				return sweep.Point{}, fmt.Errorf("figsizing direct: %w", err)
			}
			pt := SizingPoint{
				Machine:        m.Name,
				CapacityEpochs: capEpochs,
				DrainScale:     drainScale,
				StagedAppSec:   rs[0].AppSec,
				DirectAppSec:   rd[0].AppSec,
			}
			if rs[0].AppSec > 0 {
				pt.AppSpeedup = rd[0].AppSec / rs[0].AppSec
			}
			if rd[0].DurableSec > 0 {
				pt.DurableX = rs[0].DurableSec / rd[0].DurableSec
			}
			if st := rs[0].Burst; st != nil {
				if total := st.AbsorbedBytes + st.FallbackBytes; total > 0 {
					pt.FallbackFrac = float64(st.FallbackBytes) / float64(total)
				}
				pt.DrainGiBs = units.GiBps(rs[0].DrainBps)
			}
			return sweep.Point{
				Values: []sweep.Value{
					sweep.V("app_speedup_x", pt.AppSpeedup),
					sweep.V("durable_x", pt.DurableX),
					sweep.V("fallback_frac", pt.FallbackFrac),
					sweep.V("drain_gibps", pt.DrainGiBs),
				},
				Extra: pt,
			}, nil
		})
}

// SizingKnees summarizes the sizing table per machine and drain scale:
// the smallest capacity (in epochs of output) at which the staging
// speedup reaches 95% of that drain rate's best — below it, staging has
// stopped helping. Rows render in table point order.
func SizingKnees(t sweep.Table) []string {
	type key struct {
		machine string
		drain   float64
	}
	best := map[key]float64{}
	var order []key
	for _, p := range t.Points {
		pt := p.Extra.(SizingPoint)
		if pt.AppSpeedup == 0 {
			continue
		}
		k := key{pt.Machine, pt.DrainScale}
		if _, ok := best[k]; !ok {
			order = append(order, k)
		}
		if pt.AppSpeedup > best[k] {
			best[k] = pt.AppSpeedup
		}
	}
	knee := map[key]float64{}
	for _, p := range t.Points {
		pt := p.Extra.(SizingPoint)
		if pt.AppSpeedup == 0 {
			continue
		}
		k := key{pt.Machine, pt.DrainScale}
		if pt.AppSpeedup >= 0.95*best[k] {
			if cur, ok := knee[k]; !ok || pt.CapacityEpochs < cur {
				knee[k] = pt.CapacityEpochs
			}
		}
	}
	var out []string
	for _, k := range order {
		out = append(out, fmt.Sprintf("%s drain %gx: staging needs >= %g epoch(s) of capacity (best speedup %.3fx)",
			k.machine, k.drain, knee[k], best[k]))
	}
	return out
}

// sortedKeys returns the map's keys ascending.
func sortedKeys(m map[float64]bool) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}

// inRange reports whether v is one of the declared range values.
func inRange(vs []float64, v float64) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// renderSizing builds the artifact's text block: the grid table plus the
// per-machine knee summary.
func renderSizing(t sweep.Table) string {
	var b strings.Builder
	b.WriteString(t.Render())
	for _, line := range SizingKnees(t) {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}
