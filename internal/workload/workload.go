// Package workload defines the I/O payload sizing model of the paper's
// BIT1 use case (§III-C: 100K cells, three species, 30M particles, 200K
// steps) and generates representative particle payloads for measuring real
// compression ratios.
//
// Sizing is calibrated against Table II of the paper: the checkpoint
// snapshot (.dmp / openPMD iteration 0) carries the bulk of the data and
// scales as total/ranks per rank; the diagnostic snapshot (.dat) is small;
// BP4 metadata grows linearly with ranks × epochs.
package workload

import (
	"math"

	"picmcio/internal/units"
	"picmcio/internal/xrand"
)

// Sizing holds the calibrated byte model.
type Sizing struct {
	// CheckpointTotalBytes is the global size of one system-state
	// snapshot (sum over ranks). Table II: ~476 MiB at 1 node.
	CheckpointTotalBytes int64
	// DiagSnapshotTotalBytes is the global size of one diagnostic
	// snapshot (plasma profiles + distribution functions).
	DiagSnapshotTotalBytes int64
	// NVars is the number of openPMD record components the snapshot is
	// spread across (species × records).
	NVars int
	// SharedFilesOriginal is the count of rank-0 global files in the
	// original I/O mode (time histories, logs): Table II shows
	// 2·ranks + 6 files.
	SharedFilesOriginal int
	// SharedFilesOpenPMD is the count of rank-0 plain files kept in
	// openPMD mode (log + history): Table II shows nAgg + 5 files,
	// of which nAgg+3 live in the .bp4 directory.
	SharedFilesOpenPMD int
	// SharedFileBytes is the per-epoch append size of each shared file.
	SharedFileBytes int64
	// StdioChunk is the effective flush granularity of BIT1's formatted
	// stdio output (fprintf of ASCII rows ≈ line-buffered).
	StdioChunk int64
	// HeaderBytes is the fixed per-file header the original writer emits.
	HeaderBytes int64
}

// Default returns the Table II calibration.
func Default() Sizing {
	return Sizing{
		CheckpointTotalBytes:   478 * units.MiB,
		DiagSnapshotTotalBytes: 8 * units.MiB,
		NVars:                  10,
		SharedFilesOriginal:    6,
		SharedFilesOpenPMD:     2,
		SharedFileBytes:        128,
		StdioChunk:             4096,
		HeaderBytes:            256,
	}
}

// PerRankCheckpoint reports one rank's checkpoint bytes at the given
// total rank count.
func (s Sizing) PerRankCheckpoint(ranks int) int64 {
	if ranks < 1 {
		ranks = 1
	}
	return s.CheckpointTotalBytes/int64(ranks) + s.HeaderBytes
}

// PerRankDiag reports one rank's diagnostic snapshot bytes.
func (s Sizing) PerRankDiag(ranks int) int64 {
	if ranks < 1 {
		ranks = 1
	}
	return s.DiagSnapshotTotalBytes/int64(ranks) + s.HeaderBytes
}

// PerRankSnapshotElems reports one rank's openPMD snapshot as float64
// element counts per record component (checkpoint + diagnostics spread
// over NVars components).
func (s Sizing) PerRankSnapshotElems(ranks int) []int64 {
	total := (s.PerRankCheckpoint(ranks) + s.PerRankDiag(ranks)) / 8
	out := make([]int64, s.NVars)
	each := total / int64(s.NVars)
	if each < 1 {
		each = 1
	}
	for i := range out {
		out[i] = each
	}
	return out
}

// SamplePayload synthesizes a particle-like float64 buffer (positions
// drifting smoothly, Maxwellian velocities) used to measure the real
// compression ratio that volume-mode runs then assume.
func SamplePayload(n int, seed uint64) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	x := 0.0
	for i := range out {
		switch i % 4 {
		case 0: // position: smooth drift
			x += 0.001 + 1e-5*rng.NormFloat64()
			out[i] = x
		default: // velocity components: thermal
			out[i] = 1.38e5 * rng.NormFloat64()
		}
	}
	return out
}

// Float64sToBytes packs values little-endian, matching the BP payload
// encoding, for ratio measurements.
func Float64sToBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(bits >> (8 * b))
		}
	}
	return out
}
