package workload

import (
	"testing"
	"testing/quick"

	"picmcio/internal/units"
)

func TestPerRankScaling(t *testing.T) {
	s := Default()
	// Per-rank checkpoint at 128 ranks should be ~3.7 MiB (Table II max
	// file size at 1 node), and at 25600 ranks ~19 KiB.
	at128 := s.PerRankCheckpoint(128)
	if at128 < 3*units.MiB || at128 > 4*units.MiB {
		t.Fatalf("checkpoint/rank @128 = %s", units.Bytes(at128))
	}
	at25600 := s.PerRankCheckpoint(25600)
	if at25600 < 15*units.KiB || at25600 > 25*units.KiB {
		t.Fatalf("checkpoint/rank @25600 = %s", units.Bytes(at25600))
	}
}

func TestPerRankMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw%25000)+1, int(bRaw%25000)+1
		if a > b {
			a, b = b, a
		}
		s := Default()
		return s.PerRankCheckpoint(a) >= s.PerRankCheckpoint(b) &&
			s.PerRankDiag(a) >= s.PerRankDiag(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotElemsCoverVolume(t *testing.T) {
	s := Default()
	for _, ranks := range []int{1, 128, 25600} {
		elems := s.PerRankSnapshotElems(ranks)
		if len(elems) != s.NVars {
			t.Fatalf("vars=%d", len(elems))
		}
		var total int64
		for _, e := range elems {
			if e < 1 {
				t.Fatalf("empty component at %d ranks", ranks)
			}
			total += e * 8
		}
		want := s.PerRankCheckpoint(ranks) + s.PerRankDiag(ranks)
		if total > want || total < want-want/5-8*int64(s.NVars) {
			t.Fatalf("ranks=%d: snapshot %d bytes, budget %d", ranks, total, want)
		}
	}
}

func TestDegenerateRanks(t *testing.T) {
	s := Default()
	if s.PerRankCheckpoint(0) != s.PerRankCheckpoint(1) {
		t.Fatal("rank clamp broken")
	}
}

func TestSamplePayloadDeterministic(t *testing.T) {
	a := SamplePayload(1000, 7)
	b := SamplePayload(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("payload not deterministic")
		}
	}
	c := SamplePayload(1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds too similar: %d identical values", same)
	}
}

func TestFloat64sToBytes(t *testing.T) {
	b := Float64sToBytes([]float64{1.0})
	if len(b) != 8 {
		t.Fatalf("len=%d", len(b))
	}
	// 1.0 = 0x3FF0000000000000 little-endian.
	if b[7] != 0x3f || b[6] != 0xf0 || b[0] != 0 {
		t.Fatalf("encoding=%x", b)
	}
}
