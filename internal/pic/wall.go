package pic

// BIT1's home domain is the magnetised plasma-wall transition: particles
// that reach the ends of the 1D flux tube strike the divertor plates and
// are absorbed, and the code "can log particle and power fluxes to the
// wall with minor computational overhead" (§II). This file adds bounded-
// domain behaviour: absorbing walls at x=0 and x=L with per-species flux
// accounting, selected with Params.BoundedWalls.

// WallFlux accumulates one species' losses to one wall.
type WallFlux struct {
	Particles int64   // macro-particles absorbed
	Power     float64 // kinetic energy absorbed (J, weighted)
}

// WallStats tracks both walls for every species, indexed by species name.
type WallStats struct {
	Left  map[string]*WallFlux
	Right map[string]*WallFlux
}

func newWallStats() *WallStats {
	return &WallStats{Left: map[string]*WallFlux{}, Right: map[string]*WallFlux{}}
}

func (w *WallStats) flux(side map[string]*WallFlux, name string) *WallFlux {
	f := side[name]
	if f == nil {
		f = &WallFlux{}
		side[name] = f
	}
	return f
}

// TotalAbsorbed reports the macro-particles lost to both walls.
func (w *WallStats) TotalAbsorbed() int64 {
	var n int64
	for _, f := range w.Left {
		n += f.Particles
	}
	for _, f := range w.Right {
		n += f.Particles
	}
	return n
}

// PushParticlesBounded advances positions with absorbing walls instead of
// periodic wrap, recording wall fluxes. It replaces PushParticles when
// Params.BoundedWalls is set.
func (s *Sim) PushParticlesBounded() {
	if s.Walls == nil {
		s.Walls = newWallStats()
	}
	L := s.P.Length
	dt := s.P.Dt
	for _, sp := range s.Species {
		accel := s.P.UseFieldSolver && sp.Charge != 0
		qm := sp.Charge / sp.Mass
		for i := sp.N() - 1; i >= 0; i-- {
			if accel {
				sp.VX[i] += qm * s.fieldAt(sp.X[i]) * dt
			}
			x := sp.X[i] + sp.VX[i]*dt
			if x >= 0 && x < L {
				sp.X[i] = x
				continue
			}
			side := s.Walls.Left
			if x >= L {
				side = s.Walls.Right
			}
			f := s.Walls.flux(side, sp.Name)
			f.Particles++
			v2 := sp.VX[i]*sp.VX[i] + sp.VY[i]*sp.VY[i] + sp.VZ[i]*sp.VZ[i]
			f.Power += 0.5 * sp.Mass * v2 * sp.Weight
			sp.remove(i)
		}
	}
}
