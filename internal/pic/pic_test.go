package pic

import (
	"math"
	"testing"
	"testing/quick"
)

// ionizationSetup builds the paper's use case at test scale: electrons,
// D+ ions and D neutrals, no field solver.
func ionizationSetup(t *testing.T, n int, rate float64) *Sim {
	t.Helper()
	s, err := New(Params{
		Cells: 64, Length: 1.0, Dt: 1e-9, Seed: 11,
		IonizationRate: rate,
	}, []SpeciesSpec{
		{Name: "e", Mass: ElectronMass, Charge: -ElementaryQ, NParticles: n, Density: 1e18, Temperature: 10},
		{Name: "D+", Mass: DeuteronMass, Charge: ElementaryQ, NParticles: n, Density: 1e18, Temperature: 1},
		{Name: "D", Mass: DeuteronMass, Charge: 0, NParticles: n, Density: 1e18, Temperature: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Cells: 1, Length: 1, Dt: 1}, nil); err == nil {
		t.Error("1 cell accepted")
	}
	if _, err := New(Params{Cells: 8, Length: 0, Dt: 1}, nil); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := New(Params{Cells: 8, Length: 1, Dt: 0}, nil); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := New(Params{Cells: 8, Length: 1, Dt: 1}, []SpeciesSpec{{Name: "x", NParticles: -1}}); err == nil {
		t.Error("negative particles accepted")
	}
}

func TestUniformLoadIsNeutral(t *testing.T) {
	s := ionizationSetup(t, 20000, 0)
	s.DepositDensity()
	// Equal e and D+ populations with equal |q| and weight: net charge
	// density should be small relative to a single-species density.
	// Shot noise for ~312 particles/cell is ~8% per node; allow 3.5 σ
	// for the max over 63 nodes.
	var maxAbs float64
	scale := ElementaryQ * 1e18 // single-species physical charge density
	for _, r := range s.Rho[1 : len(s.Rho)-1] {
		if a := math.Abs(r); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0.35*scale {
		t.Fatalf("net charge density %.3g not small vs %.3g", maxAbs, scale)
	}
}

func TestDepositConservesCharge(t *testing.T) {
	// Single charged species, so nothing cancels.
	s, err := New(Params{Cells: 32, Length: 1, Dt: 1e-9, Seed: 5}, []SpeciesSpec{
		{Name: "e", Mass: ElectronMass, Charge: -ElementaryQ, NParticles: 5000, Density: 1e18, Temperature: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.DepositDensity()
	dx := s.P.Length / float64(s.P.Cells)
	var total float64
	for _, r := range s.Rho {
		total += r * dx
	}
	e := s.Species[0]
	want := e.Charge * e.Weight * float64(e.N())
	if math.Abs(total-want) > 1e-9*math.Abs(want) {
		t.Fatalf("deposited %g, want %g", total, want)
	}
}

func TestSmootherPreservesTotal(t *testing.T) {
	// A known positive profile: conservation in the interior plus actual
	// smoothing of the peak.
	s, _ := New(Params{Cells: 32, Length: 1, Dt: 1e-9}, nil)
	for i := range s.Rho {
		s.Rho[i] = 1
	}
	s.Rho[16] = 10 // spike
	var before float64
	for _, r := range s.Rho[1 : len(s.Rho)-1] {
		before += r
	}
	s.SmoothDensity()
	var after float64
	for _, r := range s.Rho[1 : len(s.Rho)-1] {
		after += r
	}
	if s.Rho[16] >= 10 {
		t.Fatal("spike not smoothed")
	}
	if s.Rho[15] <= 1 || s.Rho[17] <= 1 {
		t.Fatal("spike not spread to neighbours")
	}
	if math.Abs(after-before) > 0.01*before {
		t.Fatalf("smoother not conservative: %g -> %g", before, after)
	}
}

func TestTridiagonalKnownSystem(t *testing.T) {
	// [2 1 0; 1 2 1; 0 1 2] x = [4 8 8] → x = [1 2 3].
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	d := []float64{4, 8, 8}
	x, err := SolveTridiagonal(a, b, c, d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x=%v", x)
		}
	}
}

func TestTridiagonalErrors(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{1}, []float64{1, 2}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := SolveTridiagonal([]float64{0, 1}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("singular system accepted")
	}
}

// Property: the tridiagonal solver inverts the matrix product.
func TestTridiagonalProperty(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		x := make([]float64, n)
		rng := newTestRNG(uint64(seed))
		for i := 0; i < n; i++ {
			a[i] = rng()
			c[i] = rng()
			b[i] = 4 + rng() // diagonally dominant → nonsingular
			x[i] = 10 * (rng() - 0.5)
		}
		a[0], c[n-1] = 0, 0
		// d = A x.
		d := make([]float64, n)
		for i := 0; i < n; i++ {
			d[i] = b[i] * x[i]
			if i > 0 {
				d[i] += a[i] * x[i-1]
			}
			if i < n-1 {
				d[i] += c[i] * x[i+1]
			}
		}
		sol, err := SolveTridiagonal(a, b, c, d)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(sol[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newTestRNG(seed uint64) func() float64 {
	s := seed*2862933555777941757 + 3037000493
	return func() float64 {
		s = s*2862933555777941757 + 3037000493
		return float64(s>>11) / (1 << 53)
	}
}

func TestPoissonUniformDensity(t *testing.T) {
	// Uniform ρ with grounded walls: φ should be a parabola with maximum
	// at the centre; E antisymmetric about the centre.
	s, _ := New(Params{Cells: 100, Length: 1, Dt: 1e-9, UseFieldSolver: true}, nil)
	for i := range s.Rho {
		s.Rho[i] = 1e-8
	}
	if err := s.SolveFields(); err != nil {
		t.Fatal(err)
	}
	mid := len(s.Phi) / 2
	if s.Phi[mid] <= s.Phi[10] || s.Phi[mid] <= s.Phi[len(s.Phi)-10] {
		t.Fatal("potential not peaked in the centre for uniform positive charge")
	}
	// Analytic peak: ρL²/(8ε₀).
	want := 1e-8 * 1.0 / (8 * Epsilon0)
	if math.Abs(s.Phi[mid]-want)/want > 0.01 {
		t.Fatalf("phi_mid=%g, want %g", s.Phi[mid], want)
	}
	if math.Abs(s.E[mid]) > math.Abs(s.E[10]) {
		t.Fatal("field should vanish at the centre")
	}
}

func TestPushPeriodicWrap(t *testing.T) {
	s, _ := New(Params{Cells: 10, Length: 1, Dt: 0.3}, nil)
	sp := &Species{Name: "t", Mass: 1, Charge: 0, Weight: 1}
	sp.add(0.9, 1, 0, 0)  // will cross the right boundary
	sp.add(0.1, -1, 0, 0) // will cross the left boundary
	s.Species = append(s.Species, sp)
	s.PushParticles()
	for i, x := range sp.X {
		if x < 0 || x >= 1 {
			t.Fatalf("particle %d escaped: x=%v", i, x)
		}
	}
	if math.Abs(sp.X[0]-0.2) > 1e-12 || math.Abs(sp.X[1]-0.8) > 1e-12 {
		t.Fatalf("wrap positions %v", sp.X)
	}
}

func TestIonizationDecayMatchesTheory(t *testing.T) {
	// ∂n/∂t = −n·nₑ·R with fixed nₑ: after T steps the surviving neutral
	// fraction should be ≈ exp(−nₑ R T dt).
	const n0 = 30000
	rate := 2e-15
	s := ionizationSetup(t, n0, rate)
	e, _ := s.SpeciesByName("e")
	d, _ := s.SpeciesByName("D")
	ne := float64(e.N()) * e.Weight / s.P.Length
	steps := 200
	for i := 0; i < steps; i++ {
		if err := s.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	// nₑ grows as neutrals ionize, so theory with initial nₑ is an upper
	// bound for survival; use a generous tolerance band.
	got := float64(d.N()) / n0
	want := math.Exp(-ne * rate * float64(steps) * s.P.Dt)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("surviving fraction %.4f, theory %.4f", got, want)
	}
	if got >= 1 {
		t.Fatal("no ionization happened")
	}
}

func TestIonizationConservesChargeAndCount(t *testing.T) {
	s := ionizationSetup(t, 10000, 5e-15)
	e, _ := s.SpeciesByName("e")
	dp, _ := s.SpeciesByName("D+")
	d, _ := s.SpeciesByName("D")
	heavy0 := dp.N() + d.N()
	for i := 0; i < 50; i++ {
		s.Advance()
	}
	if dp.N()+d.N() != heavy0 {
		t.Fatalf("heavy particles not conserved: %d -> %d", heavy0, dp.N()+d.N())
	}
	// Every new ion must come with a new electron.
	if e.N()-10000 != dp.N()-10000 {
		t.Fatalf("charge imbalance: e=%d D+=%d", e.N(), dp.N())
	}
}

func TestEnergyConservationPlasmaOscillation(t *testing.T) {
	// With the field solver on, a perturbed two-species plasma should
	// conserve total energy to a few percent over a plasma period.
	s, err := New(Params{
		Cells: 64, Length: 0.01, Dt: 1e-11, Seed: 3,
		UseFieldSolver: true, UseSmoother: true,
	}, []SpeciesSpec{
		{Name: "e", Mass: ElectronMass, Charge: -ElementaryQ, NParticles: 40000, Density: 1e14, Temperature: 1},
		{Name: "D+", Mass: DeuteronMass, Charge: ElementaryQ, NParticles: 40000, Density: 1e14, Temperature: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.DepositDensity()
	s.SolveFields()
	e0 := s.TotalEnergy()
	for i := 0; i < 100; i++ {
		if err := s.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	e1 := s.TotalEnergy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.05 {
		t.Fatalf("energy drifted %.2f%% over 100 steps", rel*100)
	}
}

func TestDensityProfileIntegratesToCount(t *testing.T) {
	s := ionizationSetup(t, 12345, 0)
	e, _ := s.SpeciesByName("e")
	prof := s.DensityProfile(e)
	dx := s.P.Length / float64(s.P.Cells)
	var total float64
	for _, n := range prof {
		total += n * dx
	}
	want := float64(e.N()) * e.Weight
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("profile integral %g, want %g", total, want)
	}
}

func TestVelocityDistributionMoments(t *testing.T) {
	s := ionizationSetup(t, 50000, 0)
	e, _ := s.SpeciesByName("e")
	vth := math.Sqrt(10 * ElementaryQ / ElectronMass)
	h := VelocityDistribution(e.VX, 40, 5*vth)
	var count float64
	for _, c := range h {
		count += c
	}
	if count < 0.99*float64(e.N()) {
		t.Fatalf("histogram lost particles: %v of %d", count, e.N())
	}
	// Symmetric-ish: left and right halves within 5%.
	var left, right float64
	for i, c := range h {
		if i < 20 {
			left += c
		} else {
			right += c
		}
	}
	if math.Abs(left-right)/count > 0.05 {
		t.Fatalf("velocity distribution skewed: %v vs %v", left, right)
	}
}

func TestEnergyAndAngularDistributions(t *testing.T) {
	s := ionizationSetup(t, 20000, 0)
	e, _ := s.SpeciesByName("e")
	ed := e.EnergyDistribution(50, 100)
	var n float64
	for _, c := range ed {
		n += c
	}
	if n < 0.95*float64(e.N()) {
		t.Fatalf("energy histogram covers %v of %d", n, e.N())
	}
	ad := e.AngularDistribution(20)
	var an float64
	for _, c := range ad {
		an += c
	}
	if an != float64(e.N()) {
		t.Fatalf("angular histogram covers %v of %d", an, e.N())
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	s := ionizationSetup(t, 3000, 3e-15)
	for i := 0; i < 20; i++ {
		s.Advance()
	}
	ck := s.Snapshot()
	// Run ahead, then restore and re-run: trajectories must match since
	// the RNG state is independent of particle state... it is not, so we
	// compare restored state directly instead.
	e, _ := s.SpeciesByName("e")
	wantN := e.N()
	wantX := append([]float64(nil), e.X...)
	for i := 0; i < 10; i++ {
		s.Advance()
	}
	s.Restore(ck)
	e2, _ := s.SpeciesByName("e")
	if s.Step != 20 || e2.N() != wantN {
		t.Fatalf("restore: step=%d n=%d", s.Step, e2.N())
	}
	for i := range wantX {
		if e2.X[i] != wantX[i] {
			t.Fatalf("restored X[%d] differs", i)
		}
	}
}

func TestRemoveSwapsLast(t *testing.T) {
	sp := &Species{Name: "t", Weight: 1}
	sp.add(1, 10, 0, 0)
	sp.add(2, 20, 0, 0)
	sp.add(3, 30, 0, 0)
	sp.remove(0)
	if sp.N() != 2 || sp.X[0] != 3 || sp.VX[0] != 30 {
		t.Fatalf("after remove: %+v", sp)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		s := ionizationSetup(t, 5000, 4e-15)
		for i := 0; i < 30; i++ {
			s.Advance()
		}
		d, _ := s.SpeciesByName("D")
		return float64(d.N())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}

func TestBoundedWallsAbsorbAndAccount(t *testing.T) {
	s, err := New(Params{Cells: 32, Length: 1.0, Dt: 1e-7, Seed: 5, BoundedWalls: true},
		[]SpeciesSpec{
			{Name: "e", Mass: ElectronMass, Charge: -ElementaryQ, NParticles: 10000, Density: 1e18, Temperature: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	e := s.Species[0]
	n0 := e.N()
	for i := 0; i < 50; i++ {
		if err := s.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	lost := int64(n0 - e.N())
	if lost == 0 {
		t.Fatal("no particles reached the walls")
	}
	if s.Walls.TotalAbsorbed() != lost {
		t.Fatalf("flux accounting %d != losses %d", s.Walls.TotalAbsorbed(), lost)
	}
	lf, rf := s.Walls.Left["e"], s.Walls.Right["e"]
	if lf == nil || rf == nil || lf.Particles == 0 || rf.Particles == 0 {
		t.Fatalf("both walls should collect a thermal plasma: %+v %+v", lf, rf)
	}
	if lf.Power <= 0 || rf.Power <= 0 {
		t.Fatal("power flux must be positive")
	}
	// Every surviving particle stays in the domain.
	for _, x := range e.X {
		if x < 0 || x >= s.P.Length {
			t.Fatalf("particle outside bounded domain: %v", x)
		}
	}
}

func TestWallFluxSymmetry(t *testing.T) {
	// A symmetric thermal plasma loses comparable numbers to both walls.
	s, _ := New(Params{Cells: 32, Length: 1.0, Dt: 1e-7, Seed: 9, BoundedWalls: true},
		[]SpeciesSpec{
			{Name: "e", Mass: ElectronMass, Charge: -ElementaryQ, NParticles: 40000, Density: 1e18, Temperature: 10},
		})
	for i := 0; i < 30; i++ {
		s.Advance()
	}
	l := float64(s.Walls.Left["e"].Particles)
	r := float64(s.Walls.Right["e"].Particles)
	if l == 0 || r == 0 {
		t.Fatal("no wall losses")
	}
	asym := math.Abs(l-r) / (l + r)
	if asym > 0.1 {
		t.Fatalf("wall fluxes asymmetric: left=%v right=%v", l, r)
	}
}
