package pic

import "math"

// DensityProfile bins a species' macro-particles onto the cell grid and
// returns physical densities per cell — the "plasma profiles" diagnostic
// behind BIT1's slow flag.
func (s *Sim) DensityProfile(sp *Species) []float64 {
	out := make([]float64, s.P.Cells)
	dx := s.dx()
	for _, x := range sp.X {
		i := int(x / dx)
		if i >= s.P.Cells {
			i = s.P.Cells - 1
		}
		out[i] += sp.Weight / dx
	}
	return out
}

// VelocityDistribution histograms one velocity component into bins over
// [-vmax, vmax] — the velocity distribution function diagnostic.
func VelocityDistribution(vs []float64, bins int, vmax float64) []float64 {
	out := make([]float64, bins)
	if bins == 0 || vmax <= 0 {
		return out
	}
	w := 2 * vmax / float64(bins)
	for _, v := range vs {
		i := int((v + vmax) / w)
		if i < 0 || i >= bins {
			continue
		}
		out[i]++
	}
	return out
}

// EnergyDistribution histograms kinetic energies (in eV) into bins over
// [0, emax] — the energy distribution function diagnostic.
func (sp *Species) EnergyDistribution(bins int, emaxEV float64) []float64 {
	out := make([]float64, bins)
	if bins == 0 || emaxEV <= 0 {
		return out
	}
	w := emaxEV / float64(bins)
	for i := range sp.X {
		v2 := sp.VX[i]*sp.VX[i] + sp.VY[i]*sp.VY[i] + sp.VZ[i]*sp.VZ[i]
		ev := 0.5 * sp.Mass * v2 / ElementaryQ
		b := int(ev / w)
		if b >= 0 && b < bins {
			out[b]++
		}
	}
	return out
}

// AngularDistribution histograms the pitch angle cos θ = vx/|v| into bins
// over [-1, 1] — the angular distribution function diagnostic.
func (sp *Species) AngularDistribution(bins int) []float64 {
	out := make([]float64, bins)
	if bins == 0 {
		return out
	}
	w := 2.0 / float64(bins)
	for i := range sp.X {
		v := math.Sqrt(sp.VX[i]*sp.VX[i] + sp.VY[i]*sp.VY[i] + sp.VZ[i]*sp.VZ[i])
		if v == 0 {
			continue
		}
		c := sp.VX[i] / v
		b := int((c + 1) / w)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[b]++
	}
	return out
}

// Checkpoint is a full restorable snapshot of a simulation.
type Checkpoint struct {
	Step    int
	Species []SpeciesState
}

// SpeciesState is one species' complete particle state.
type SpeciesState struct {
	Name   string
	Mass   float64
	Charge float64
	Weight float64
	X      []float64
	VX     []float64
	VY     []float64
	VZ     []float64
}

// Snapshot captures the simulation state for checkpointing.
func (s *Sim) Snapshot() Checkpoint {
	ck := Checkpoint{Step: s.Step}
	for _, sp := range s.Species {
		ck.Species = append(ck.Species, SpeciesState{
			Name: sp.Name, Mass: sp.Mass, Charge: sp.Charge, Weight: sp.Weight,
			X:  append([]float64(nil), sp.X...),
			VX: append([]float64(nil), sp.VX...),
			VY: append([]float64(nil), sp.VY...),
			VZ: append([]float64(nil), sp.VZ...),
		})
	}
	return ck
}

// Restore replaces the simulation state with a checkpoint's.
func (s *Sim) Restore(ck Checkpoint) {
	s.Step = ck.Step
	s.Species = s.Species[:0]
	for _, st := range ck.Species {
		s.Species = append(s.Species, &Species{
			Name: st.Name, Mass: st.Mass, Charge: st.Charge, Weight: st.Weight,
			X:  append([]float64(nil), st.X...),
			VX: append([]float64(nil), st.VX...),
			VY: append([]float64(nil), st.VY...),
			VZ: append([]float64(nil), st.VZ...),
		})
	}
}
