// Package pic implements the 1D3V electrostatic Particle-in-Cell
// Monte-Carlo kernel that BIT1 is built around: particles move in one
// spatial dimension with three velocity components through the five phases
// of the PIC cycle — charge deposition (particle-to-grid interpolation),
// density smoothing, a tridiagonal Poisson field solve, Monte-Carlo
// collision handling, and the particle push.
//
// The package also provides the paper's §III-C use case: an unbounded,
// unmagnetized plasma of electrons, D+ ions and D neutrals in which
// neutrals ionize against the electron background at rate coefficient R,
// so the neutral density obeys ∂n/∂t = −n·nₑ·R. That scenario does not
// exercise the field solver or smoother (as the paper notes), but both
// phases are implemented and tested for completeness.
package pic

import (
	"fmt"
	"math"

	"picmcio/internal/xrand"
)

// Physical constants (SI).
const (
	ElectronMass = 9.1093837015e-31
	ProtonMass   = 1.67262192369e-27
	DeuteronMass = 2 * ProtonMass // close enough for test plasmas
	ElementaryQ  = 1.602176634e-19
	Epsilon0     = 8.8541878128e-12
)

// Species is one particle population stored as a structure of arrays:
// position X (1D) and velocity components VX, VY, VZ (3V).
type Species struct {
	Name   string
	Mass   float64
	Charge float64
	Weight float64 // physical particles per macro-particle

	X  []float64
	VX []float64
	VY []float64
	VZ []float64
}

// N reports the number of macro-particles currently in the species.
func (s *Species) N() int { return len(s.X) }

// add appends one macro-particle.
func (s *Species) add(x, vx, vy, vz float64) {
	s.X = append(s.X, x)
	s.VX = append(s.VX, vx)
	s.VY = append(s.VY, vy)
	s.VZ = append(s.VZ, vz)
}

// remove deletes particle i by swapping in the last one (O(1), the
// memory-management trick of Tskhakaya et al. 2007).
func (s *Species) remove(i int) {
	last := len(s.X) - 1
	s.X[i], s.VX[i], s.VY[i], s.VZ[i] = s.X[last], s.VX[last], s.VY[last], s.VZ[last]
	s.X = s.X[:last]
	s.VX = s.VX[:last]
	s.VY = s.VY[:last]
	s.VZ = s.VZ[:last]
}

// KineticEnergy sums ½mv² over the species (per macro-particle weight).
func (s *Species) KineticEnergy() float64 {
	var e float64
	for i := range s.X {
		v2 := s.VX[i]*s.VX[i] + s.VY[i]*s.VY[i] + s.VZ[i]*s.VZ[i]
		e += 0.5 * s.Mass * v2
	}
	return e * s.Weight
}

// Params configures a simulation.
type Params struct {
	Cells  int     // grid cells
	Length float64 // domain length in metres
	Dt     float64 // time step in seconds
	Seed   uint64

	UseFieldSolver bool // enable Poisson solve + particle acceleration
	UseSmoother    bool // enable 1-2-1 density smoothing
	BoundedWalls   bool // absorbing walls (divertor plates) instead of periodic

	IonizationRate float64 // R in ∂n/∂t = −n·nₑ·R (m³/s)
}

// SpeciesSpec describes an initial population.
type SpeciesSpec struct {
	Name        string
	Mass        float64
	Charge      float64
	NParticles  int
	Density     float64 // physical m⁻³, sets the macro-particle weight
	Temperature float64 // eV
}

// Sim is one PIC MC simulation domain (one rank's slice, in BIT1 terms).
type Sim struct {
	P       Params
	Species []*Species

	Rho []float64 // charge density at nodes (Cells+1)
	Phi []float64 // potential at nodes
	E   []float64 // electric field at nodes

	Walls *WallStats // populated when BoundedWalls is set

	Step int
	rng  *xrand.RNG
}

// New builds a simulation with the given species loaded uniformly in
// space with Maxwellian velocities.
func New(p Params, specs []SpeciesSpec) (*Sim, error) {
	if p.Cells < 2 {
		return nil, fmt.Errorf("pic: need at least 2 cells")
	}
	if p.Length <= 0 || p.Dt <= 0 {
		return nil, fmt.Errorf("pic: length and dt must be positive")
	}
	s := &Sim{
		P:   p,
		Rho: make([]float64, p.Cells+1),
		Phi: make([]float64, p.Cells+1),
		E:   make([]float64, p.Cells+1),
		rng: xrand.New(p.Seed ^ 0x9e37),
	}
	for si, spec := range specs {
		if spec.NParticles < 0 {
			return nil, fmt.Errorf("pic: negative particle count for %s", spec.Name)
		}
		sp := &Species{Name: spec.Name, Mass: spec.Mass, Charge: spec.Charge}
		if spec.NParticles > 0 {
			sp.Weight = spec.Density * p.Length / float64(spec.NParticles)
		} else {
			sp.Weight = 1
		}
		vth := math.Sqrt(spec.Temperature * ElementaryQ / spec.Mass)
		r := s.rng.Split(uint64(si) + 1)
		sp.X = make([]float64, 0, spec.NParticles)
		for i := 0; i < spec.NParticles; i++ {
			sp.add(r.Float64()*p.Length, r.Maxwellian(vth), r.Maxwellian(vth), r.Maxwellian(vth))
		}
		s.Species = append(s.Species, sp)
	}
	return s, nil
}

// SpeciesByName finds a species.
func (s *Sim) SpeciesByName(name string) (*Species, bool) {
	for _, sp := range s.Species {
		if sp.Name == name {
			return sp, true
		}
	}
	return nil, false
}

// dx reports the cell size.
func (s *Sim) dx() float64 { return s.P.Length / float64(s.P.Cells) }

// DepositDensity performs cloud-in-cell (linear) charge deposition onto
// the grid nodes, phase 1 of the PIC cycle.
func (s *Sim) DepositDensity() {
	for i := range s.Rho {
		s.Rho[i] = 0
	}
	dx := s.dx()
	for _, sp := range s.Species {
		if sp.Charge == 0 {
			continue
		}
		qw := sp.Charge * sp.Weight / dx
		for _, x := range sp.X {
			c := x / dx
			i := int(c)
			if i >= s.P.Cells {
				i = s.P.Cells - 1
			}
			frac := c - float64(i)
			s.Rho[i] += qw * (1 - frac)
			s.Rho[i+1] += qw * frac
		}
	}
}

// SmoothDensity applies one pass of the binomial 1-2-1 filter to the
// charge density, phase 2 of the PIC cycle (suppresses grid-scale noise).
func (s *Sim) SmoothDensity() {
	n := len(s.Rho)
	prev := s.Rho[0]
	for i := 1; i < n-1; i++ {
		cur := s.Rho[i]
		s.Rho[i] = 0.25*prev + 0.5*cur + 0.25*s.Rho[i+1]
		prev = cur
	}
}

// SolveTridiagonal solves a tridiagonal system (Thomas algorithm) with
// sub-diagonal a, diagonal b, super-diagonal c and right-hand side d.
// All slices must have equal length; a[0] and c[n-1] are ignored.
// The solution overwrites d, which is also returned.
func SolveTridiagonal(a, b, c, d []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("pic: tridiagonal size mismatch")
	}
	if n == 0 {
		return d, nil
	}
	cp := make([]float64, n)
	beta := b[0]
	if beta == 0 {
		return nil, fmt.Errorf("pic: singular tridiagonal system")
	}
	d[0] /= beta
	for i := 1; i < n; i++ {
		cp[i-1] = c[i-1] / beta
		beta = b[i] - a[i]*cp[i-1]
		if beta == 0 {
			return nil, fmt.Errorf("pic: singular tridiagonal system")
		}
		d[i] = (d[i] - a[i]*d[i-1]) / beta
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= cp[i] * d[i+1]
	}
	return d, nil
}

// SolveFields solves the 1D Poisson equation −φ” = ρ/ε₀ with grounded
// (Dirichlet) boundaries and differentiates for E, phase 3 of the cycle.
func (s *Sim) SolveFields() error {
	n := s.P.Cells + 1
	dx := s.dx()
	inner := n - 2
	if inner < 1 {
		return fmt.Errorf("pic: grid too small for field solve")
	}
	a := make([]float64, inner)
	b := make([]float64, inner)
	c := make([]float64, inner)
	d := make([]float64, inner)
	for i := 0; i < inner; i++ {
		a[i], b[i], c[i] = 1, -2, 1
		d[i] = -s.Rho[i+1] * dx * dx / Epsilon0
	}
	sol, err := SolveTridiagonal(a, b, c, d)
	if err != nil {
		return err
	}
	s.Phi[0], s.Phi[n-1] = 0, 0
	copy(s.Phi[1:n-1], sol)
	for i := 1; i < n-1; i++ {
		s.E[i] = -(s.Phi[i+1] - s.Phi[i-1]) / (2 * dx)
	}
	s.E[0] = -(s.Phi[1] - s.Phi[0]) / dx
	s.E[n-1] = -(s.Phi[n-1] - s.Phi[n-2]) / dx
	return nil
}

// fieldAt interpolates E to position x (linear).
func (s *Sim) fieldAt(x float64) float64 {
	dx := s.dx()
	c := x / dx
	i := int(c)
	if i >= s.P.Cells {
		i = s.P.Cells - 1
	}
	frac := c - float64(i)
	return s.E[i]*(1-frac) + s.E[i+1]*frac
}

// PushParticles advances velocities (when the field solver is active) and
// positions with periodic wrap-around, phase 5 of the cycle.
func (s *Sim) PushParticles() {
	L := s.P.Length
	dt := s.P.Dt
	for _, sp := range s.Species {
		accel := s.P.UseFieldSolver && sp.Charge != 0
		qm := sp.Charge / sp.Mass
		for i := range sp.X {
			if accel {
				sp.VX[i] += qm * s.fieldAt(sp.X[i]) * dt
			}
			x := sp.X[i] + sp.VX[i]*dt
			for x < 0 {
				x += L
			}
			for x >= L {
				x -= L
			}
			sp.X[i] = x
		}
	}
}

// CollideIonization performs the Monte-Carlo ionization step for the
// paper's use case: each D neutral ionizes with probability nₑ·R·dt,
// becoming a D+ ion and releasing a new electron that inherits the
// neutral's velocity (plus the incident electron population is unchanged
// in this simplified channel). Returns the number of ionization events.
func (s *Sim) CollideIonization() int {
	if s.P.IonizationRate <= 0 {
		return 0
	}
	e, okE := s.SpeciesByName("e")
	dplus, okI := s.SpeciesByName("D+")
	d, okN := s.SpeciesByName("D")
	if !okE || !okI || !okN || d.N() == 0 {
		return 0
	}
	ne := float64(e.N()) * e.Weight / s.P.Length // mean electron density
	prob := ne * s.P.IonizationRate * s.P.Dt
	if prob > 1 {
		prob = 1
	}
	events := 0
	for i := d.N() - 1; i >= 0; i-- {
		if s.rng.Float64() >= prob {
			continue
		}
		// The neutral becomes an ion; a secondary electron is born cold.
		dplus.add(d.X[i], d.VX[i], d.VY[i], d.VZ[i])
		e.add(d.X[i], 0, 0, 0)
		d.remove(i)
		events++
	}
	return events
}

// Advance runs one full PIC MC cycle: deposit → smooth → solve → collide
// → push.
func (s *Sim) Advance() error {
	if s.P.UseFieldSolver {
		s.DepositDensity()
		if s.P.UseSmoother {
			s.SmoothDensity()
		}
		if err := s.SolveFields(); err != nil {
			return err
		}
	}
	s.CollideIonization()
	if s.P.BoundedWalls {
		s.PushParticlesBounded()
	} else {
		s.PushParticles()
	}
	s.Step++
	return nil
}

// TotalEnergy reports kinetic plus field energy.
func (s *Sim) TotalEnergy() float64 {
	e := 0.0
	for _, sp := range s.Species {
		e += sp.KineticEnergy()
	}
	dx := s.dx()
	for _, ef := range s.E {
		e += 0.5 * Epsilon0 * ef * ef * dx
	}
	return e
}
