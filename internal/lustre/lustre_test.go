package lustre

import (
	"strings"
	"testing"
	"testing/quick"

	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

func testFS(p Params) (*sim.Kernel, *FS) {
	k := sim.NewKernel()
	return k, New(k, p)
}

func TestStripeSplitCoversAllBytes(t *testing.T) {
	f := func(offRaw uint32, nRaw uint32, cRaw, sRaw uint8) bool {
		count := int(cRaw%8) + 1
		ss := int64(sRaw%16+1) * 65536
		l := &Layout{StripeCount: count, StripeSize: ss}
		off, n := int64(offRaw), int64(nRaw)
		per := stripeSplit(l, off, n)
		var sum int64
		for _, v := range per {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeSplitRoundRobin(t *testing.T) {
	l := &Layout{StripeCount: 4, StripeSize: 100}
	per := stripeSplit(l, 0, 400)
	for i, v := range per {
		if v != 100 {
			t.Fatalf("stripe %d got %d bytes, want 100", i, v)
		}
	}
	// Offset into second stripe.
	per = stripeSplit(l, 150, 100)
	if per[1] != 50 || per[2] != 50 {
		t.Fatalf("per=%v", per)
	}
}

func TestCreateWriteStat(t *testing.T) {
	k, fs := testFS(DefaultParams())
	var size int64
	k.Spawn("r", func(p *sim.Proc) {
		c := &pfs.Client{Node: 0, NIC: sim.NewServer(k, 10e9, 0)}
		f, err := fs.Create(p, c, "/io/data.0")
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(p, c, 0, 1<<20, nil)
		f.WriteAt(p, c, 1<<20, 1<<20, nil)
		f.Close(p, c)
		fi, err := fs.Stat(p, c, "/io/data.0")
		if err != nil {
			t.Error(err)
			return
		}
		size = fi.Size
	})
	end := k.Run()
	if size != 2<<20 {
		t.Fatalf("size=%d, want 2MiB", size)
	}
	if end <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if fs.TotalBytesWritten() != 2<<20 {
		t.Fatalf("accounted bytes=%d", fs.TotalBytesWritten())
	}
}

func TestStripingParallelismSpeedsWrites(t *testing.T) {
	// A big write striped over 8 OSTs should finish much faster than on 1.
	elapsed := func(count int) sim.Time {
		k, fs := testFS(DefaultParams())
		if err := fs.SetStripe("/io", count, 4<<20); err != nil {
			t.Fatal(err)
		}
		var end sim.Time
		k.Spawn("w", func(p *sim.Proc) {
			c := &pfs.Client{NIC: sim.NewServer(k, 100e9, 0)}
			f, _ := fs.Create(p, c, "/io/big")
			f.WriteAt(p, c, 0, 512<<20, nil)
			end = p.Now()
		})
		k.Run()
		return end
	}
	t1, t8 := elapsed(1), elapsed(8)
	if t8 >= t1/4 {
		t.Fatalf("striping gave no speedup: 1 OST %v, 8 OSTs %v", t1, t8)
	}
}

func TestMDSContentionSerializesCreates(t *testing.T) {
	// N simultaneous creates through a 1-thread MDS must take ~N*create.
	p := DefaultParams()
	p.MDSThreads = 1
	p.MDSCreate = 1e-3
	p.RPCLatency = 0
	k, fs := testFS(p)
	const n = 100
	var last sim.Time
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("r", func(pr *sim.Proc) {
			c := &pfs.Client{}
			f, err := fs.Create(pr, c, pfs.Join("/out", "f", string(rune('a'+i%26)), "x"+string(rune('0'+i%10))+string(rune('0'+i/10))))
			if err != nil {
				t.Error(err)
				return
			}
			f.Close(pr, c)
			if pr.Now() > last {
				last = pr.Now()
			}
		})
	}
	k.Run()
	if last < 0.09 { // ~100 * 1ms creates serialized (+closes)
		t.Fatalf("creates were not serialized by MDS: last end %v", last)
	}
}

func TestSetStripeValidation(t *testing.T) {
	_, fs := testFS(DefaultParams())
	if err := fs.SetStripe("/d", 0, 1<<20); err == nil {
		t.Error("count 0 accepted")
	}
	if err := fs.SetStripe("/d", 100, 1<<20); err == nil {
		t.Error("count > NumOSTs accepted")
	}
	if err := fs.SetStripe("/d", 4, 12345); err == nil {
		t.Error("non-64KiB-multiple size accepted")
	}
	if err := fs.SetStripe("/d", -1, 1<<20); err != nil {
		t.Errorf("-1 (all OSTs) rejected: %v", err)
	}
}

func TestGetStripeInheritsDirDefault(t *testing.T) {
	k, fs := testFS(DefaultParams())
	if err := fs.SetStripe("/io_openPMD", 8, 16<<20); err != nil {
		t.Fatal(err)
	}
	k.Spawn("r", func(p *sim.Proc) {
		c := &pfs.Client{}
		f, err := fs.Create(p, c, "/io_openPMD/dat_file.bp4/data.0")
		if err != nil {
			t.Error(err)
			return
		}
		f.Close(p, c)
	})
	k.Run()
	l, err := fs.GetStripe("/io_openPMD/dat_file.bp4/data.0")
	if err != nil {
		t.Fatal(err)
	}
	if l.StripeCount != 8 || l.StripeSize != 16<<20 {
		t.Fatalf("layout=%+v", l)
	}
	if len(l.Objects) != 8 {
		t.Fatalf("objects=%d, want 8", len(l.Objects))
	}
	seen := map[int]bool{}
	for _, o := range l.Objects {
		if o.OBDIdx < 0 || o.OBDIdx >= fs.Params().NumOSTs {
			t.Fatalf("obdidx %d out of range", o.OBDIdx)
		}
		if seen[o.OBDIdx] {
			t.Fatalf("duplicate OST %d in layout", o.OBDIdx)
		}
		seen[o.OBDIdx] = true
	}
	out := FormatGetStripe("/io_openPMD/dat_file.bp4/data.0", l)
	for _, want := range []string{"lmm_stripe_count:  8", "lmm_stripe_size:   16777216", "raid0", "obdidx"} {
		if !strings.Contains(out, want) {
			t.Errorf("getstripe output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundRobinAllocationSpreads(t *testing.T) {
	k, fs := testFS(DefaultParams())
	k.Spawn("r", func(p *sim.Proc) {
		c := &pfs.Client{}
		for i := 0; i < fs.Params().NumOSTs; i++ {
			name := pfs.Join("/d", "f"+string(rune('A'+i%26))+string(rune('0'+i/26)))
			f, _ := fs.Create(p, c, name)
			f.Close(p, c)
		}
	})
	k.Run()
	// With stripe count 1 and round-robin allocation, each OST should
	// host exactly one of NumOSTs single-stripe files.
	used := map[int]int{}
	fs.Namespace().WalkFiles("/d", func(path string, n *pfs.Node) {
		l := n.Aux.(*Layout)
		used[l.Objects[0].OBDIdx]++
	})
	for ost, cnt := range used {
		if cnt != 1 {
			t.Fatalf("OST %d used %d times", ost, cnt)
		}
	}
	if len(used) != fs.Params().NumOSTs {
		t.Fatalf("only %d OSTs used", len(used))
	}
}

func TestReadBackContent(t *testing.T) {
	k, fs := testFS(DefaultParams())
	var got string
	k.Spawn("r", func(p *sim.Proc) {
		c := &pfs.Client{}
		f, _ := fs.Create(p, c, "/x")
		f.WriteAt(p, c, 0, 5, []byte("hello"))
		f.Close(p, c)
		g, _ := fs.Open(p, c, "/x")
		got = string(g.ReadAt(p, c, 0, 5))
		g.Close(p, c)
	})
	k.Run()
	if got != "hello" {
		t.Fatalf("read %q", got)
	}
}

func TestJitterDeterministic(t *testing.T) {
	run := func() sim.Time {
		p := DefaultParams()
		p.JitterFrac = 0.4
		p.Seed = 99
		k, fs := testFS(p)
		var end sim.Time
		k.Spawn("w", func(pr *sim.Proc) {
			c := &pfs.Client{}
			f, _ := fs.Create(pr, c, "/j")
			for i := 0; i < 10; i++ {
				f.WriteAt(pr, c, int64(i)<<20, 1<<20, nil)
			}
			end = pr.Now()
		})
		k.Run()
		return end
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered runs diverged: %v vs %v", a, b)
	}
}
