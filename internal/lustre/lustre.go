// Package lustre models a Lustre parallel file system in simulated time:
// a metadata server (MDS) served by a fixed pool of service threads, a set
// of object storage targets (OSTs) modeled as FCFS bandwidth servers, and
// RAID0 file striping with per-directory default layouts configurable via
// SetStripe — the `lfs setstripe -c <count> -S <size>` knob the paper tunes
// in §IV-E.
//
// Every data operation is split across the file's stripe objects exactly as
// Lustre's raid0 pattern would place it, so stripe-count / stripe-size
// sweeps reproduce the contention behaviour of Fig. 9, and file-per-process
// create storms queue on the MDS, reproducing the metadata collapse of the
// original BIT1 I/O path.
package lustre

import (
	"fmt"
	"strings"

	"picmcio/internal/pfs"
	"picmcio/internal/sim"
	"picmcio/internal/xrand"
)

// Params configures the simulated file system. All durations are seconds.
type Params struct {
	NumOSTs  int          // object storage targets
	OSTRate  float64      // bytes/second each OST can absorb
	OSTPerOp sim.Duration // fixed cost per OST RPC

	MDSThreads int          // metadata service concurrency
	MDSCreate  sim.Duration // service time of a create
	MDSOpen    sim.Duration // service time of an open/lookup
	MDSStat    sim.Duration // service time of a stat
	MDSClose   sim.Duration // service time of a close
	MDSUnlink  sim.Duration // service time of an unlink
	MDSMkdir   sim.Duration // service time of a mkdir

	RPCLatency sim.Duration // one-way client<->server latency added per op

	// ClientWriteLatency is the extra per-write client-side latency of a
	// synchronous small write (stdio → VFS → LNET round trip before the
	// next write can issue). It models why file-per-process formatted
	// output is slow even when OSTs are idle.
	ClientWriteLatency sim.Duration

	// BackboneRate caps the aggregate bytes/second the storage fabric
	// (LNET routers + OSS front end) can absorb across all OSTs;
	// 0 disables the cap.
	BackboneRate float64

	DefaultStripeCount int   // default layout stripe count (>=1)
	DefaultStripeSize  int64 // default layout stripe size in bytes

	// JitterFrac, if > 0, perturbs every OST service duration by a
	// uniform factor in [1-JitterFrac, 1+JitterFrac]. Used to model the
	// erratic behaviour of congested production file systems (Vega).
	JitterFrac float64
	Seed       uint64
}

// Dardel-like defaults (calibrated in internal/experiments).
func DefaultParams() Params {
	return Params{
		NumOSTs:            48,
		OSTRate:            0.45e9,
		OSTPerOp:           200e-6,
		MDSThreads:         16,
		MDSCreate:          450e-6,
		MDSOpen:            250e-6,
		MDSStat:            120e-6,
		MDSClose:           90e-6,
		MDSUnlink:          300e-6,
		MDSMkdir:           450e-6,
		RPCLatency:         30e-6,
		DefaultStripeCount: 1,
		DefaultStripeSize:  1 << 20,
	}
}

// Object is one stripe object of a file layout, mirroring the fields
// `lfs getstripe` prints (obdidx, objid, group).
type Object struct {
	OBDIdx int
	ObjID  uint64
	Group  uint64
}

// Layout is a file's raid0 striping layout.
type Layout struct {
	StripeCount  int
	StripeSize   int64
	StripeOffset int // obdidx of the first stripe
	Pattern      string
	Objects      []Object
}

// FS is a simulated Lustre file system.
type FS struct {
	k        *sim.Kernel
	ns       *pfs.Namespace
	p        Params
	osts     []*sim.Server
	mds      *sim.MultiServer
	rng      *xrand.RNG
	backbone *sim.Server // nil when BackboneRate == 0
	nextID   uint64
	nextOST  int

	dirDefaults map[string]Layout // SetStripe on directories

	// aggregate accounting
	bytesWritten uint64
	bytesRead    uint64
}

// New creates a Lustre file system on kernel k.
func New(k *sim.Kernel, p Params) *FS {
	if p.NumOSTs < 1 {
		p.NumOSTs = 1
	}
	if p.DefaultStripeCount < 1 {
		p.DefaultStripeCount = 1
	}
	if p.DefaultStripeSize <= 0 {
		p.DefaultStripeSize = 1 << 20
	}
	if p.MDSThreads < 1 {
		p.MDSThreads = 1
	}
	fs := &FS{
		k:           k,
		ns:          pfs.NewNamespace(),
		p:           p,
		mds:         sim.NewMultiServer(k, p.MDSThreads, 0, 0),
		rng:         xrand.New(p.Seed ^ 0x1f5),
		nextID:      297000000,
		dirDefaults: map[string]Layout{},
	}
	for i := 0; i < p.NumOSTs; i++ {
		fs.osts = append(fs.osts, sim.NewServer(k, p.OSTRate, p.OSTPerOp))
	}
	if p.BackboneRate > 0 {
		fs.backbone = sim.NewServer(k, p.BackboneRate, 0)
	}
	return fs
}

// Name implements pfs.FileSystem.
func (fs *FS) Name() string { return "lustre" }

// Params returns the configuration the file system was built with.
func (fs *FS) Params() Params { return fs.p }

// Namespace exposes the underlying tree for offline inspection (tools,
// tests); it must not be mutated while processes are running.
func (fs *FS) Namespace() *pfs.Namespace { return fs.ns }

// TotalBytesWritten reports cumulative bytes written across all files.
func (fs *FS) TotalBytesWritten() uint64 { return fs.bytesWritten }

// TotalBytesRead reports cumulative bytes read across all files.
func (fs *FS) TotalBytesRead() uint64 { return fs.bytesRead }

// MDSOps reports how many metadata operations the MDS has served.
func (fs *FS) MDSOps() uint64 { return fs.mds.Ops() }

// MDSBusy reports cumulative MDS busy time.
func (fs *FS) MDSBusy() sim.Duration { return fs.mds.Busy() }

// OSTStats reports per-OST (ops, bytes, busy).
func (fs *FS) OSTStats(i int) (ops, bytes uint64, busy sim.Duration) {
	return fs.osts[i].Stats()
}

// SetStripe configures the default layout for files subsequently created
// beneath dir, mirroring `lfs setstripe -c count -S size dir`.
// count -1 means "all OSTs".
func (fs *FS) SetStripe(dir string, count int, size int64) error {
	if count == -1 {
		count = fs.p.NumOSTs
	}
	if count < 1 || count > fs.p.NumOSTs {
		return fmt.Errorf("lustre: stripe count %d out of range [1,%d]", count, fs.p.NumOSTs)
	}
	if size <= 0 {
		return fmt.Errorf("lustre: stripe size must be positive")
	}
	if size%65536 != 0 {
		return fmt.Errorf("lustre: stripe size must be a multiple of 64KiB")
	}
	fs.dirDefaults[pfs.Clean(dir)] = Layout{StripeCount: count, StripeSize: size, Pattern: "raid0"}
	return nil
}

// defaultLayoutFor walks up the directory chain for a SetStripe default.
func (fs *FS) defaultLayoutFor(path string) Layout {
	dir, _ := pfs.Split(path)
	for {
		if l, ok := fs.dirDefaults[dir]; ok {
			return l
		}
		if dir == "/" {
			break
		}
		dir, _ = pfs.Split(dir)
	}
	return Layout{StripeCount: fs.p.DefaultStripeCount, StripeSize: fs.p.DefaultStripeSize, Pattern: "raid0"}
}

// allocate assigns stripe objects round-robin across OSTs.
func (fs *FS) allocate(l Layout) Layout {
	l.Pattern = "raid0"
	l.StripeOffset = fs.nextOST % fs.p.NumOSTs
	l.Objects = make([]Object, l.StripeCount)
	for i := 0; i < l.StripeCount; i++ {
		idx := (fs.nextOST + i) % fs.p.NumOSTs
		fs.nextID += 1 + uint64(fs.rng.Intn(97))
		l.Objects[i] = Object{
			OBDIdx: idx,
			ObjID:  fs.nextID,
			Group:  uint64(idx)<<34 | 0x400,
		}
	}
	fs.nextOST = (fs.nextOST + l.StripeCount) % fs.p.NumOSTs
	return l
}

func (fs *FS) jitter(d sim.Duration) sim.Duration {
	if fs.p.JitterFrac <= 0 {
		return d
	}
	f := 1 + fs.p.JitterFrac*(2*fs.rng.Float64()-1)
	return sim.Duration(float64(d) * f)
}

// metaOp charges one metadata operation of base service time d.
func (fs *FS) metaOp(p *sim.Proc, d sim.Duration) {
	end := fs.mds.ReserveDur(fs.jitter(d))
	p.SleepUntil(end + fs.p.RPCLatency)
}

// file implements pfs.File on a namespace node with a Lustre layout.
type file struct {
	fs   *FS
	node *pfs.Node
	path string
}

// Create implements pfs.FileSystem.
func (fs *FS) Create(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	fs.metaOp(p, fs.p.MDSCreate)
	n, err := fs.ns.CreateFile(path)
	if err != nil {
		return nil, err
	}
	lay := fs.allocate(fs.defaultLayoutFor(path))
	n.Aux = &lay
	return &file{fs: fs, node: n, path: pfs.Clean(path)}, nil
}

// Open implements pfs.FileSystem.
func (fs *FS) Open(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	fs.metaOp(p, fs.p.MDSOpen)
	n, err := fs.ns.OpenFile(path)
	if err != nil {
		return nil, err
	}
	if n.Aux == nil {
		lay := fs.allocate(fs.defaultLayoutFor(path))
		n.Aux = &lay
	}
	return &file{fs: fs, node: n, path: pfs.Clean(path)}, nil
}

// OpenAppend implements pfs.FileSystem.
func (fs *FS) OpenAppend(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	if _, err := fs.ns.Lookup(path); err != nil {
		return fs.Create(p, c, path)
	}
	return fs.Open(p, c, path)
}

// Stat implements pfs.FileSystem.
func (fs *FS) Stat(p *sim.Proc, c *pfs.Client, path string) (pfs.FileInfo, error) {
	fs.metaOp(p, fs.p.MDSStat)
	n, err := fs.ns.Lookup(path)
	if err != nil {
		return pfs.FileInfo{}, err
	}
	return pfs.FileInfo{Path: pfs.Clean(path), Size: n.Size, IsDir: n.Dir}, nil
}

// Unlink implements pfs.FileSystem.
func (fs *FS) Unlink(p *sim.Proc, c *pfs.Client, path string) error {
	fs.metaOp(p, fs.p.MDSUnlink)
	return fs.ns.Unlink(path)
}

// MkdirAll implements pfs.FileSystem.
func (fs *FS) MkdirAll(p *sim.Proc, c *pfs.Client, path string) error {
	fs.metaOp(p, fs.p.MDSMkdir)
	_, err := fs.ns.MkdirAll(path)
	return err
}

// ReadDir implements pfs.FileSystem.
func (fs *FS) ReadDir(p *sim.Proc, c *pfs.Client, path string) ([]pfs.FileInfo, error) {
	fs.metaOp(p, fs.p.MDSStat)
	return fs.ns.ReadDir(path)
}

// GetStripe returns the layout of the file at path, as `lfs getstripe`
// would report it.
func (fs *FS) GetStripe(path string) (Layout, error) {
	n, err := fs.ns.OpenFile(path)
	if err != nil {
		return Layout{}, err
	}
	l, ok := n.Aux.(*Layout)
	if !ok {
		return Layout{}, fmt.Errorf("lustre: %s has no layout", path)
	}
	return *l, nil
}

// FormatGetStripe renders a layout in the style of Listing 1 of the paper.
func FormatGetStripe(path string, l Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", path)
	fmt.Fprintf(&b, "lmm_stripe_count:  %d\n", l.StripeCount)
	fmt.Fprintf(&b, "lmm_stripe_size:   %d\n", l.StripeSize)
	fmt.Fprintf(&b, "lmm_pattern:       %s\n", l.Pattern)
	fmt.Fprintf(&b, "lmm_layout_gen:    0\n")
	fmt.Fprintf(&b, "lmm_stripe_offset: %d\n", l.StripeOffset)
	fmt.Fprintf(&b, "\tobdidx\t\t objid\t\t objid\t\t group\n")
	for _, o := range l.Objects {
		fmt.Fprintf(&b, "\t%6d\t%12d\t%#14x\t%#14x\n", o.OBDIdx, o.ObjID, o.ObjID, o.Group)
	}
	return b.String()
}

func (f *file) Path() string { return f.path }
func (f *file) Size() int64  { return f.node.Size }

func (f *file) layout() *Layout { return f.node.Aux.(*Layout) }

// stripeSplit apportions [off, off+n) across the layout's stripe objects,
// returning bytes per object index.
func stripeSplit(l *Layout, off, n int64) []int64 {
	per := make([]int64, l.StripeCount)
	if n <= 0 {
		return per
	}
	ss := l.StripeSize
	for n > 0 {
		stripe := off / ss
		within := off % ss
		chunk := ss - within
		if chunk > n {
			chunk = n
		}
		per[int(stripe)%l.StripeCount] += chunk
		off += chunk
		n -= chunk
	}
	return per
}

// WriteAt implements pfs.File.
func (f *file) WriteAt(p *sim.Proc, c *pfs.Client, off, n int64, data []byte) {
	fs := f.fs
	l := f.layout()
	// The client injects the payload through its node NIC while the OSTs
	// drain their stripe shares concurrently; completion is the latest
	// stage, plus an RPC latency and any configured jitter.
	end := p.Now()
	if c != nil && c.NIC != nil && n > 0 {
		end = c.NIC.Reserve(n)
	}
	if fs.backbone != nil && n > 0 {
		if e := fs.backbone.Reserve(n); e > end {
			end = e
		}
	}
	for i, bytes := range stripeSplit(l, off, n) {
		if bytes == 0 {
			continue
		}
		if e := fs.osts[l.Objects[i].OBDIdx].Reserve(bytes); e > end {
			end = e
		}
	}
	pfs.NodeWrite(f.node, off, n, data)
	fs.bytesWritten += uint64(n)
	p.SleepUntil(p.Now() + fs.jitterAround(end-p.Now()) + fs.p.RPCLatency + fs.p.ClientWriteLatency)
}

// jitterAround perturbs an elapsed duration by the configured jitter
// fraction; it never returns a negative duration.
func (fs *FS) jitterAround(d sim.Duration) sim.Duration {
	d2 := fs.jitter(d)
	if d2 < 0 {
		return 0
	}
	return d2
}

// ReadAt implements pfs.File.
func (f *file) ReadAt(p *sim.Proc, c *pfs.Client, off, n int64) []byte {
	fs := f.fs
	if off >= f.node.Size {
		return nil
	}
	if off+n > f.node.Size {
		n = f.node.Size - off
	}
	l := f.layout()
	end := p.Now() + fs.p.RPCLatency
	for i, bytes := range stripeSplit(l, off, n) {
		if bytes == 0 {
			continue
		}
		if e := fs.osts[l.Objects[i].OBDIdx].Reserve(bytes); e > end {
			end = e
		}
	}
	if c != nil && c.NIC != nil && n > 0 {
		if e := c.NIC.Reserve(n); e > end {
			end = e
		}
	}
	fs.bytesRead += uint64(n)
	p.SleepUntil(end + fs.p.RPCLatency)
	return pfs.NodeRead(f.node, off, n)
}

// Sync implements pfs.File: one RPC per stripe object.
func (f *file) Sync(p *sim.Proc, c *pfs.Client) {
	fs := f.fs
	l := f.layout()
	end := p.Now()
	for _, o := range l.Objects {
		if e := fs.osts[o.OBDIdx].Reserve(0); e > end {
			end = e
		}
	}
	p.SleepUntil(end + fs.p.RPCLatency)
}

// Close implements pfs.File: a close is an MDS operation.
func (f *file) Close(p *sim.Proc, c *pfs.Client) {
	f.fs.metaOp(p, f.fs.p.MDSClose)
}

var _ pfs.FileSystem = (*FS)(nil)
