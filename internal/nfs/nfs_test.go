package nfs

import (
	"testing"

	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

func TestSingleServerSerializesAllClients(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultParams()
	p.Rate = 1e6 // 1 MB/s so times are big
	p.PerOp = 0
	p.MetaOp = 0
	p.RPCLatency = 0
	fs := New(k, p)
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("w", func(pr *sim.Proc) {
			c := &pfs.Client{}
			f, err := fs.Create(pr, c, pfs.Join("/f", string(rune('a'+i))))
			if err != nil {
				t.Error(err)
				return
			}
			f.WriteAt(pr, c, 0, 1e6, nil)
			ends = append(ends, pr.Now())
		})
	}
	k.Run()
	// 4 MB through a 1 MB/s single server: last completion ~4 s.
	last := ends[len(ends)-1]
	if last < 3.9 || last > 4.1 {
		t.Fatalf("last end %v, want ~4s (no parallelism on NFS)", last)
	}
}

func TestAppendAndStat(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, DefaultParams())
	var size int64
	k.Spawn("w", func(pr *sim.Proc) {
		c := &pfs.Client{}
		f, _ := fs.OpenAppend(pr, c, "/log")
		f.WriteAt(pr, c, f.Size(), 100, nil)
		f.Close(pr, c)
		f2, _ := fs.OpenAppend(pr, c, "/log")
		f2.WriteAt(pr, c, f2.Size(), 100, nil)
		f2.Close(pr, c)
		fi, _ := fs.Stat(pr, c, "/log")
		size = fi.Size
	})
	k.Run()
	if size != 200 {
		t.Fatalf("size=%d, want 200", size)
	}
}

func TestContentRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, DefaultParams())
	var got string
	k.Spawn("w", func(pr *sim.Proc) {
		c := &pfs.Client{}
		f, _ := fs.Create(pr, c, "/x")
		f.WriteAt(pr, c, 0, 3, []byte("abc"))
		got = string(f.ReadAt(pr, c, 0, 3))
		f.Sync(pr, c)
		f.Close(pr, c)
	})
	k.Run()
	if got != "abc" {
		t.Fatalf("got %q", got)
	}
}
