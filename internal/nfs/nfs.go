// Package nfs models a single-server network file system: one server
// handles both metadata and data, so every operation from every client
// funnels through a single FCFS station. This is the Discoverer home
// file-system class and the degenerate baseline against which the Lustre
// model's parallelism shows up.
package nfs

import (
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

// Params configures the simulated NFS server.
type Params struct {
	Rate       float64      // server bytes/second
	PerOp      sim.Duration // per-RPC service latency
	MetaOp     sim.Duration // metadata (create/open/stat/close) service latency
	RPCLatency sim.Duration // client<->server wire latency per op
}

// DefaultParams returns a 10 GbE-class NFS appliance configuration.
func DefaultParams() Params {
	return Params{Rate: 0.9e9, PerOp: 150e-6, MetaOp: 400e-6, RPCLatency: 80e-6}
}

// FS is a simulated NFS file system.
type FS struct {
	k   *sim.Kernel
	ns  *pfs.Namespace
	p   Params
	srv *sim.Server

	bytesWritten uint64
	bytesRead    uint64
}

// New creates an NFS file system on kernel k.
func New(k *sim.Kernel, p Params) *FS {
	return &FS{k: k, ns: pfs.NewNamespace(), p: p, srv: sim.NewServer(k, p.Rate, p.PerOp)}
}

// Name implements pfs.FileSystem.
func (fs *FS) Name() string { return "nfs" }

// Namespace exposes the file tree for offline inspection.
func (fs *FS) Namespace() *pfs.Namespace { return fs.ns }

// TotalBytesWritten reports cumulative bytes written.
func (fs *FS) TotalBytesWritten() uint64 { return fs.bytesWritten }

func (fs *FS) metaOp(p *sim.Proc) {
	end := fs.srv.Reserve(0) + fs.p.MetaOp + fs.p.RPCLatency
	p.SleepUntil(end)
}

type file struct {
	fs   *FS
	node *pfs.Node
	path string
}

// Create implements pfs.FileSystem.
func (fs *FS) Create(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	fs.metaOp(p)
	n, err := fs.ns.CreateFile(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, node: n, path: pfs.Clean(path)}, nil
}

// Open implements pfs.FileSystem.
func (fs *FS) Open(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	fs.metaOp(p)
	n, err := fs.ns.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, node: n, path: pfs.Clean(path)}, nil
}

// OpenAppend implements pfs.FileSystem.
func (fs *FS) OpenAppend(p *sim.Proc, c *pfs.Client, path string) (pfs.File, error) {
	if _, err := fs.ns.Lookup(path); err != nil {
		return fs.Create(p, c, path)
	}
	return fs.Open(p, c, path)
}

// Stat implements pfs.FileSystem.
func (fs *FS) Stat(p *sim.Proc, c *pfs.Client, path string) (pfs.FileInfo, error) {
	fs.metaOp(p)
	n, err := fs.ns.Lookup(path)
	if err != nil {
		return pfs.FileInfo{}, err
	}
	return pfs.FileInfo{Path: pfs.Clean(path), Size: n.Size, IsDir: n.Dir}, nil
}

// Unlink implements pfs.FileSystem.
func (fs *FS) Unlink(p *sim.Proc, c *pfs.Client, path string) error {
	fs.metaOp(p)
	return fs.ns.Unlink(path)
}

// MkdirAll implements pfs.FileSystem.
func (fs *FS) MkdirAll(p *sim.Proc, c *pfs.Client, path string) error {
	fs.metaOp(p)
	_, err := fs.ns.MkdirAll(path)
	return err
}

// ReadDir implements pfs.FileSystem.
func (fs *FS) ReadDir(p *sim.Proc, c *pfs.Client, path string) ([]pfs.FileInfo, error) {
	fs.metaOp(p)
	return fs.ns.ReadDir(path)
}

func (f *file) Path() string { return f.path }
func (f *file) Size() int64  { return f.node.Size }

// WriteAt implements pfs.File.
func (f *file) WriteAt(p *sim.Proc, c *pfs.Client, off, n int64, data []byte) {
	end := p.Now()
	if c != nil && c.NIC != nil && n > 0 {
		end = c.NIC.Reserve(n)
	}
	if e := f.fs.srv.Reserve(n); e > end {
		end = e
	}
	pfs.NodeWrite(f.node, off, n, data)
	f.fs.bytesWritten += uint64(n)
	p.SleepUntil(end + f.fs.p.RPCLatency)
}

// ReadAt implements pfs.File.
func (f *file) ReadAt(p *sim.Proc, c *pfs.Client, off, n int64) []byte {
	if off >= f.node.Size {
		return nil
	}
	if off+n > f.node.Size {
		n = f.node.Size - off
	}
	end := f.fs.srv.Reserve(n)
	if c != nil && c.NIC != nil && n > 0 {
		if e := c.NIC.Reserve(n); e > end {
			end = e
		}
	}
	f.fs.bytesRead += uint64(n)
	p.SleepUntil(end + f.fs.p.RPCLatency)
	return pfs.NodeRead(f.node, off, n)
}

// Sync implements pfs.File.
func (f *file) Sync(p *sim.Proc, c *pfs.Client) {
	p.SleepUntil(f.fs.srv.Reserve(0) + f.fs.p.RPCLatency)
}

// Close implements pfs.File.
func (f *file) Close(p *sim.Proc, c *pfs.Client) { f.fs.metaOp(p) }

var _ pfs.FileSystem = (*FS)(nil)
