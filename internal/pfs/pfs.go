// Package pfs defines the abstraction shared by the simulated parallel
// file systems (Lustre, NFS, CephFS): a POSIX-ish namespace, files with
// offset-addressed reads and writes, and the notion of a client (a compute
// node's network endpoint) through which every operation is issued.
//
// Concrete file systems attach simulated-time cost models; the namespace
// bookkeeping itself (directories, sizes, optional contents) lives here so
// all backends behave identically at the semantic level.
package pfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"picmcio/internal/sim"
)

// Errors returned by namespace operations; they mirror the POSIX errno
// values the real code paths would see.
var (
	ErrNotExist = errors.New("pfs: no such file or directory")
	ErrExist    = errors.New("pfs: file exists")
	ErrIsDir    = errors.New("pfs: is a directory")
	ErrNotDir   = errors.New("pfs: not a directory")
)

// Client identifies the issuing side of an operation: which node it runs
// on and the node's shared NIC bandwidth server. All ranks of a node share
// one Client.
type Client struct {
	Node int
	NIC  *sim.Server
}

// FileInfo is the result of a Stat.
type FileInfo struct {
	Path  string
	Size  int64
	IsDir bool
}

// File is an open simulated file.
type File interface {
	// Path reports the absolute path the file was opened with.
	Path() string
	// Size reports the current file size in bytes.
	Size() int64
	// WriteAt writes n bytes at offset off, charging simulated time to p.
	// If data is non-nil it must have length n and the bytes are retained
	// (content mode); if nil only the size is tracked (volume mode).
	WriteAt(p *sim.Proc, c *Client, off int64, n int64, data []byte)
	// ReadAt reads up to n bytes at offset off, charging simulated time.
	// The returned slice is nil for volume-mode regions.
	ReadAt(p *sim.Proc, c *Client, off int64, n int64) []byte
	// Sync flushes the file (fsync), charging simulated time.
	Sync(p *sim.Proc, c *Client)
	// Close closes the file, charging simulated time for the metadata op.
	Close(p *sim.Proc, c *Client)
}

// FileSystem is a simulated parallel file system.
type FileSystem interface {
	// Name reports a short identifier such as "lustre" or "nfs".
	Name() string
	// Create creates (or truncates) a regular file.
	Create(p *sim.Proc, c *Client, path string) (File, error)
	// Open opens an existing regular file.
	Open(p *sim.Proc, c *Client, path string) (File, error)
	// OpenAppend opens an existing file, or creates it, for appending.
	OpenAppend(p *sim.Proc, c *Client, path string) (File, error)
	// Stat reports metadata for a path.
	Stat(p *sim.Proc, c *Client, path string) (FileInfo, error)
	// Unlink removes a regular file.
	Unlink(p *sim.Proc, c *Client, path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(p *sim.Proc, c *Client, path string) error
	// ReadDir lists the entries of a directory, sorted by name.
	ReadDir(p *sim.Proc, c *Client, path string) ([]FileInfo, error)
}

// Stager is optionally implemented by staging file systems (burst
// buffers) layered over a backing FileSystem. DrainEpoch nudges the tier
// to start writing buffered data back to the backing store without
// blocking the caller; the ADIOS2 engine calls it when a step closes.
type Stager interface {
	FileSystem
	DrainEpoch(p *sim.Proc)
}

// Namespacer is implemented by every concrete backend (Lustre, NFS,
// CephFS): it exposes the in-memory file tree for offline inspection —
// file statistics, profile extraction, tool clones — without charging
// simulated time.
type Namespacer interface {
	Namespace() *Namespace
}

// Clean normalizes a path to an absolute slash-separated form with no
// trailing slash (except for the root itself).
func Clean(path string) string {
	if path == "" {
		return "/"
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, p)
		}
	}
	return "/" + strings.Join(out, "/")
}

// Split returns the parent directory and base name of a cleaned path.
func Split(path string) (dir, base string) {
	p := Clean(path)
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// Join joins path elements and cleans the result.
func Join(elem ...string) string { return Clean(strings.Join(elem, "/")) }

// Node is an entry in a Namespace: either a directory or a regular file's
// metadata record. Concrete file systems hang their layout/extent state off
// the Aux field.
type Node struct {
	Name     string
	Dir      bool
	Size     int64
	Children map[string]*Node // directories only
	Content  []byte           // content-mode data; nil in volume mode
	Aux      any              // backend-specific state (e.g. Lustre layout)
}

// Namespace is a plain in-memory file tree with no timing model. It is the
// semantic core that every simulated file system shares.
type Namespace struct {
	root *Node
}

// NewNamespace returns a namespace containing only the root directory.
func NewNamespace() *Namespace {
	return &Namespace{root: &Node{Name: "/", Dir: true, Children: map[string]*Node{}}}
}

func (ns *Namespace) walk(path string) (*Node, error) {
	p := Clean(path)
	if p == "/" {
		return ns.root, nil
	}
	cur := ns.root
	for _, part := range strings.Split(p[1:], "/") {
		if !cur.Dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next, ok := cur.Children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		cur = next
	}
	return cur, nil
}

// Lookup returns the node at path.
func (ns *Namespace) Lookup(path string) (*Node, error) { return ns.walk(path) }

// MkdirAll creates a directory chain; existing directories are fine.
func (ns *Namespace) MkdirAll(path string) (*Node, error) {
	p := Clean(path)
	if p == "/" {
		return ns.root, nil
	}
	cur := ns.root
	for _, part := range strings.Split(p[1:], "/") {
		next, ok := cur.Children[part]
		if !ok {
			next = &Node{Name: part, Dir: true, Children: map[string]*Node{}}
			cur.Children[part] = next
		} else if !next.Dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		cur = next
	}
	return cur, nil
}

// CreateFile creates or truncates a regular file, creating parents as
// needed (matching the behaviour the simulation layers rely on).
func (ns *Namespace) CreateFile(path string) (*Node, error) {
	dir, base := Split(path)
	d, err := ns.MkdirAll(dir)
	if err != nil {
		return nil, err
	}
	if n, ok := d.Children[base]; ok {
		if n.Dir {
			return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
		}
		n.Size = 0
		n.Content = nil
		n.Aux = nil
		return n, nil
	}
	n := &Node{Name: base}
	d.Children[base] = n
	return n, nil
}

// OpenFile returns the existing regular file at path.
func (ns *Namespace) OpenFile(path string) (*Node, error) {
	n, err := ns.walk(path)
	if err != nil {
		return nil, err
	}
	if n.Dir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return n, nil
}

// Unlink removes the regular file at path.
func (ns *Namespace) Unlink(path string) error {
	dir, base := Split(path)
	d, err := ns.walk(dir)
	if err != nil {
		return err
	}
	n, ok := d.Children[base]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if n.Dir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	delete(d.Children, base)
	return nil
}

// ReadDir lists a directory's entries sorted by name.
func (ns *Namespace) ReadDir(path string) ([]FileInfo, error) {
	n, err := ns.walk(path)
	if err != nil {
		return nil, err
	}
	if !n.Dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	names := make([]string, 0, len(n.Children))
	for name := range n.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileInfo, 0, len(names))
	for _, name := range names {
		c := n.Children[name]
		out = append(out, FileInfo{Path: Join(path, name), Size: c.Size, IsDir: c.Dir})
	}
	return out, nil
}

// WalkFiles visits every regular file under root (inclusive), sorted by
// path, calling fn with the full path and node.
func (ns *Namespace) WalkFiles(root string, fn func(path string, n *Node)) error {
	start, err := ns.walk(root)
	if err != nil {
		return err
	}
	var rec func(path string, n *Node)
	rec = func(path string, n *Node) {
		if !n.Dir {
			fn(path, n)
			return
		}
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec(Join(path, name), n.Children[name])
		}
	}
	rec(Clean(root), start)
	return nil
}

// NodeWrite applies a write to a node's size/content bookkeeping.
func NodeWrite(n *Node, off, length int64, data []byte) {
	end := off + length
	if end > n.Size {
		n.Size = end
	}
	if data != nil {
		if int64(len(n.Content)) < end {
			grown := make([]byte, end)
			copy(grown, n.Content)
			n.Content = grown
		}
		copy(n.Content[off:end], data)
	}
}

// NodeRead returns content-mode bytes for [off, off+length), clipped to the
// file size; nil if the region is volume-mode.
func NodeRead(n *Node, off, length int64) []byte {
	if off >= n.Size {
		return nil
	}
	end := off + length
	if end > n.Size {
		end = n.Size
	}
	if int64(len(n.Content)) >= end {
		return n.Content[off:end]
	}
	return nil
}
