package pfs

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"a/b", "/a/b"},
		{"/a//b/", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"../../x", "/x"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	dir, base := Split("/a/b/c.txt")
	if dir != "/a/b" || base != "c.txt" {
		t.Fatalf("got %q %q", dir, base)
	}
	dir, base = Split("/top")
	if dir != "/" || base != "top" {
		t.Fatalf("got %q %q", dir, base)
	}
}

func TestNamespaceCreateOpen(t *testing.T) {
	ns := NewNamespace()
	n, err := ns.CreateFile("/out/run1/data.0")
	if err != nil {
		t.Fatal(err)
	}
	NodeWrite(n, 0, 100, nil)
	got, err := ns.OpenFile("/out/run1/data.0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 100 {
		t.Fatalf("size=%d, want 100", got.Size)
	}
	if _, err := ns.OpenFile("/out/run1"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("opening dir: err=%v, want ErrIsDir", err)
	}
	if _, err := ns.OpenFile("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing file: err=%v, want ErrNotExist", err)
	}
}

func TestCreateTruncates(t *testing.T) {
	ns := NewNamespace()
	n, _ := ns.CreateFile("/f")
	NodeWrite(n, 0, 50, []byte(make([]byte, 50)))
	n2, err := ns.CreateFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if n2.Size != 0 || n2.Content != nil {
		t.Fatalf("re-create did not truncate: size=%d", n2.Size)
	}
}

func TestUnlink(t *testing.T) {
	ns := NewNamespace()
	ns.CreateFile("/a/f")
	if err := ns.Unlink("/a/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.OpenFile("/a/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still exists after unlink")
	}
	if err := ns.Unlink("/a"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("unlink dir: err=%v, want ErrIsDir", err)
	}
	if err := ns.Unlink("/a/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("unlink missing: err=%v, want ErrNotExist", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	ns := NewNamespace()
	for _, f := range []string{"/d/c", "/d/a", "/d/b"} {
		ns.CreateFile(f)
	}
	ns.MkdirAll("/d/sub")
	ents, err := ns.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/d/a", "/d/b", "/d/c", "/d/sub"}
	if len(ents) != len(want) {
		t.Fatalf("got %d entries", len(ents))
	}
	for i, e := range ents {
		if e.Path != want[i] {
			t.Errorf("entry %d = %q, want %q", i, e.Path, want[i])
		}
	}
	if !ents[3].IsDir {
		t.Error("sub should be a dir")
	}
}

func TestWalkFiles(t *testing.T) {
	ns := NewNamespace()
	files := []string{"/x/1", "/x/sub/2", "/x/sub/deep/3"}
	for _, f := range files {
		ns.CreateFile(f)
	}
	var got []string
	if err := ns.WalkFiles("/x", func(p string, n *Node) { got = append(got, p) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("walked %v", got)
	}
}

func TestNodeWriteReadContent(t *testing.T) {
	n := &Node{}
	NodeWrite(n, 0, 4, []byte("abcd"))
	NodeWrite(n, 2, 4, []byte("WXYZ"))
	if n.Size != 6 {
		t.Fatalf("size=%d, want 6", n.Size)
	}
	if got := string(NodeRead(n, 0, 6)); got != "abWXYZ" {
		t.Fatalf("content=%q", got)
	}
	if NodeRead(n, 10, 4) != nil {
		t.Fatal("read past EOF should be nil")
	}
}

func TestNodeVolumeMode(t *testing.T) {
	n := &Node{}
	NodeWrite(n, 0, 1<<30, nil) // 1 GiB tracked, zero bytes stored
	if n.Size != 1<<30 || n.Content != nil {
		t.Fatal("volume mode should not materialize content")
	}
	if NodeRead(n, 0, 16) != nil {
		t.Fatal("volume-mode read should be nil")
	}
}

// Property: Clean is idempotent and always yields an absolute path.
func TestCleanIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		c := Clean(s)
		return c == Clean(c) && len(c) > 0 && c[0] == '/'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after a sequence of writes, Size equals the max extent end.
func TestNodeSizeProperty(t *testing.T) {
	f := func(offs []uint16, lens []uint8) bool {
		n := &Node{}
		var want int64
		for i := range offs {
			if i >= len(lens) {
				break
			}
			off, l := int64(offs[i]), int64(lens[i])
			NodeWrite(n, off, l, nil)
			if off+l > want {
				want = off + l
			}
		}
		return n.Size == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
