// Package jobs models multi-job contention: several simulated jobs
// co-scheduled on one cluster.System, each with its own node allocation,
// its own burst-buffer tier and workload, all sharing the backing
// parallel file system. Drain traffic from one job's staging tier and
// another job's direct writes meet on the same OST and backbone servers,
// so interference emerges from the queueing model rather than being
// asserted — the shared-resource scheduling problem production machines
// like Dardel and Vega face when many jobs run at once.
//
// Contention runs every job co-scheduled and then each job alone on an
// otherwise idle machine, reporting per-job slowdown (co-scheduled
// durable-completion time over isolated) and Jain's fairness index over
// the jobs' achieved drain bandwidths. The drain QoS knobs (burst.QoS:
// priority lanes, rate limit, deadline pacing) are the levers the index
// responds to.
package jobs

import (
	"fmt"
	"math"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// Spec describes one job of a co-schedule.
type Spec struct {
	Name  string
	Nodes int
	// Burst sizes the job's private staging tier; the zero value makes
	// the job write directly to the shared PFS. The spec's QoS field
	// carries the job's drain QoS policy.
	Burst burst.Spec
	// Workload is the job's application model (see workload.go):
	// BulkWriter/ChunkedWriter for the flat per-node writer, RankWorkload
	// for mpisim/BIT1 rank schedules with aggregator fan-in.
	Workload Workload

	// StripeCount widens the job's output directory striping on
	// Lustre-backed machines (-1 = all OSTs, 0 = machine default).
	// Checkpoint directories are conventionally striped wide, and wide
	// stripes are what make co-scheduled jobs share OSTs.
	StripeCount int
	StripeSize  int64 // stripe size in bytes; 0 = 4 MiB

	// Fault injects a node (or whole-job) failure into the job's epoch
	// schedule: the victim writer(s) die mid-epoch, the staged state on
	// their nodes is destroyed or preserved per the spec's survivability
	// model, and after the restart delay the victims resume from the last
	// restartable checkpoint — re-contending drain bandwidth with every
	// job that kept running. nil = no failure.
	Fault *fault.Spec
}

// dir is the job's output directory on the shared file system.
func (s Spec) dir() string { return "/scratch/" + s.Name }

// Result is one job's measurements from a co-scheduled or isolated run.
type Result struct {
	Name  string
	Nodes int

	AppSec     float64 // virtual time until the job's last writer finished its epochs
	DurableSec float64 // until every byte of the job was PFS-durable
	// BytesWritten is the job's logical output (epochs × per-node bytes ×
	// nodes) — identical for faulted and clean runs, so slowdowns and
	// fairness compare apples-to-apples. The extra traffic a recovery
	// re-issues is reported separately as Fault.ReplayedBytes.
	BytesWritten int64
	ClientBps    float64 // apparent client-side bandwidth: logical bytes / AppSec
	DrainBps     float64 // achieved write-back bandwidth (0 for direct jobs)

	Burst *burst.Stats // staging-tier accounting; nil for direct jobs
	// Fault is the injected failure's recovery accounting (lost epochs at
	// each durability level, destroyed vs redrained bytes); nil when the
	// job ran without a fault.
	Fault *fault.Report
}

// WithFault returns a copy of specs with job jobIdx carrying failure f —
// the campaign hook that stamps one sampled failure onto a co-schedule
// without mutating the caller's scenario declaration, so a failure
// campaign can reuse one spec set across thousands of draws.
func WithFault(specs []Spec, jobIdx int, f *fault.Spec) []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	if jobIdx >= 0 && jobIdx < len(out) {
		out[jobIdx].Fault = f
	}
	return out
}

// LostNodeHours converts the job's failure report into lost production
// node-hours, given what one simulated epoch stands for in production
// hours and the real reschedule delay in hours: the epochs the restart
// re-executes on each restarting node — including the kill epoch's
// partially computed phase (KillFrac of an epoch), which every restart
// redoes but the whole-epoch Report fields deliberately exclude — plus
// the time those nodes sat in reboot/reschedule. A job that ran clean
// lost nothing. This is the quantity a stochastic failure campaign
// accumulates — expected lost node-hours per run — instead of a single
// kill's epoch count; without the partial-phase term a buffered restart
// (zero whole epochs lost) would look free and the campaign's waste
// curve would reward arbitrarily long checkpoint intervals.
func (r Result) LostNodeHours(epochHours, restartHours float64) float64 {
	if r.Fault == nil {
		return 0
	}
	victims := 1
	if r.Fault.Spec.WholeJob {
		victims = r.Nodes
	}
	lost := float64(r.Fault.Spec.KillEpoch+1-r.Fault.RestartEpoch) + r.Fault.Spec.KillFrac
	if lost < 0 {
		lost = 0
	}
	return float64(victims) * (lost*epochHours + restartHours)
}

// FairShareBps is the bandwidth the fairness index weighs for this job:
// the achieved drain bandwidth for staged jobs, the apparent client
// bandwidth for direct jobs (their "drain" is the write itself).
func (r Result) FairShareBps() float64 {
	if r.Burst != nil {
		return r.DrainBps
	}
	return r.ClientBps
}

// ContentionResult compares the co-scheduled run against isolated runs.
type ContentionResult struct {
	Jobs     []Result // co-scheduled measurements, in spec order
	Isolated []Result // the same jobs each run alone on the machine

	// Slowdown is per-job DurableSec(co-scheduled)/DurableSec(isolated);
	// > 1.0 means measurable cross-job interference.
	Slowdown []float64
	// Jain is Jain's fairness index over the co-scheduled jobs'
	// FairShareBps: 1.0 = perfectly even shares, 1/n = one job has it all.
	Jain float64
}

// MaxSlowdown reports the worst per-job slowdown (0 with no jobs).
func (c *ContentionResult) MaxSlowdown() float64 {
	max := 0.0
	for _, s := range c.Slowdown {
		if s > max {
			max = s
		}
	}
	return max
}

// JainIndex computes Jain's fairness index (Σx)² / (n·Σx²) over the
// allocations: 1.0 when all shares are equal, approaching 1/n as one
// share dominates. Shares are assumed non-negative.
//
// Edge cases are pinned explicitly rather than left to 0/0:
//   - empty input returns 0 — with no allocations there is no fairness
//     to report, and 0 is an impossible value for any real population
//     (the index's range is [1/n, 1]), so it cannot be mistaken for a
//     measurement;
//   - all-zero input returns 1 — every share is equal (everyone is
//     equally starved), which is the index's defined value for equal
//     allocations and what the limit x→0 of equal shares gives.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Contention co-schedules the jobs on machine m, re-runs each job alone,
// and reports slowdowns and fairness.
func Contention(m cluster.Machine, specs []Spec, seed uint64) (*ContentionResult, error) {
	co, err := Run(m, specs, seed)
	if err != nil {
		return nil, err
	}
	res := &ContentionResult{Jobs: co, Slowdown: make([]float64, len(specs))}
	shares := make([]float64, len(specs))
	for i := range specs {
		iso, err := Run(m, specs[i:i+1], seed)
		if err != nil {
			return nil, fmt.Errorf("jobs: isolated %s: %w", specs[i].Name, err)
		}
		res.Isolated = append(res.Isolated, iso[0])
		if iso[0].DurableSec > 0 {
			res.Slowdown[i] = co[i].DurableSec / iso[0].DurableSec
		}
		shares[i] = co[i].FairShareBps()
	}
	res.Jain = JainIndex(shares)
	return res, nil
}

// Run launches the specs concurrently on one build of machine m and
// returns per-job results in spec order. Each job gets a contiguous node
// allocation and (when its burst spec is enabled) a private staging tier
// over the machine's shared file system.
func Run(m cluster.Machine, specs []Spec, seed uint64) ([]Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("jobs: no job specs")
	}
	total := 0
	names := make(map[string]int, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("jobs: spec %d has no name", i)
		}
		// Job names key the per-job output directory on the shared file
		// system; two jobs sharing a name would silently truncate each
		// other's per-epoch files in /scratch/<name>.
		if j, dup := names[s.Name]; dup {
			return nil, fmt.Errorf("jobs: specs %d and %d both named %q — their output would collide in %s", j, i, s.Name, s.dir())
		}
		names[s.Name] = i
		if s.Nodes < 1 {
			return nil, fmt.Errorf("jobs: job %s needs at least one node", s.Name)
		}
		if s.Workload == nil {
			return nil, fmt.Errorf("jobs: job %s has no workload", s.Name)
		}
		sh := s.Workload.Shape()
		if sh.Epochs < 1 {
			return nil, fmt.Errorf("jobs: job %s needs at least one epoch", s.Name)
		}
		if err := s.Workload.Validate(s.Nodes); err != nil {
			return nil, fmt.Errorf("jobs: job %s: %w", s.Name, err)
		}
		if s.Fault != nil {
			if sh.Coordinated && !s.Fault.WholeJob {
				return nil, fmt.Errorf("jobs: job %s: coordinated workloads restart whole-job only (surviving ranks block in collectives a partial restart cannot re-enter)", s.Name)
			}
			if err := s.Fault.Validate(s.Nodes, sh.Epochs); err != nil {
				return nil, fmt.Errorf("jobs: job %s: %w", s.Name, err)
			}
		}
		total += s.Nodes
	}
	k := m.NewKernel(total)
	sys, err := m.Build(k, total, seed)
	if err != nil {
		return nil, err
	}

	rts := make([]jobRT, len(specs))
	for i := range specs {
		spec := specs[i]
		rt := &rts[i]
		alloc, err := sys.Allocate(spec.Nodes)
		if err != nil {
			return nil, err
		}
		if spec.StripeCount != 0 && sys.Lustre != nil {
			size := spec.StripeSize
			if size == 0 {
				size = 4 << 20
			}
			if err := sys.Lustre.SetStripe(spec.dir(), spec.StripeCount, size); err != nil {
				return nil, fmt.Errorf("jobs: job %s: %w", spec.Name, err)
			}
		}
		if spec.Burst.Enabled() {
			rt.tier = burst.NewTier(k, spec.Burst, sys.FS)
		}
		binding := Binding{K: k, Nodes: spec.Nodes, Dir: spec.dir()}
		rt.shape = spec.Workload.Shape()
		rt.body = spec.Workload.Bind(binding)
		// The restart ledger's byte ladder assumes every node stages the
		// same bytes each epoch; aggregating workloads stage everything on
		// their writer nodes, so their ledger counts epochs instead and the
		// durable position comes from the drained closure below.
		rt.cumStep = rt.shape.BytesPerNode
		if _, staged := rt.body.(stagedWriters); staged {
			rt.cumStep = 1
		}
		rt.spawn = func(node, from int, mark bool) *sim.Proc {
			client := alloc.Clients[node]
			name := fmt.Sprintf("job.%s.%d", spec.Name, node)
			if from > 0 || !mark {
				name += ".restart"
			}
			return k.Spawn(name, func(p *sim.Proc) {
				runNode(p, sys.FS, spec, node, client, rt, from, mark)
			})
		}
		if spec.Fault != nil {
			rt.ledger = &fault.Ledger{}
			rt.epochFill = make([]int, rt.shape.Epochs)
			// arm fires when the kill epoch's writes are job-wide buffered
			// (every node is then in its compute phase): the injector kills
			// the victims KillFrac into that phase, crashes their buffers,
			// and respawns their writers from the recovery epoch.
			rt.arm = func(p *sim.Proc) {
				f := spec.Fault
				at := p.Now() + sim.Duration(f.KillFrac*float64(rt.shape.ComputeSec))
				var victims []fault.Victim
				var nodes []int
				for n := 0; n < spec.Nodes; n++ {
					if f.WholeJob || n == f.Node {
						victims = append(victims, fault.Victim{Proc: rt.writers[n], Node: alloc.Clients[n].Node})
						nodes = append(nodes, n)
					}
				}
				var drained func() int64
				if sw, ok := rt.body.(stagedWriters); ok && rt.tier != nil {
					// Epoch-unit ledger: the durable position is the minimum
					// count of whole staged epochs written back across the
					// workload's writer nodes (coordinated workloads restart
					// whole-job, so every writer node is restarting).
					wNodes, perEpoch := sw.StagedWriters()
					drained = func() int64 {
						eps := int64(math.MaxInt64)
						for wi, n := range wNodes {
							var e int64
							if perEpoch[wi] > 0 {
								e = rt.tier.NodeStats(alloc.Clients[n].Node).DrainedBytes / perEpoch[wi]
							}
							if e < eps {
								eps = e
							}
						}
						if eps == math.MaxInt64 {
							return -1
						}
						return eps
					}
				}
				rt.inj = fault.ArmWith(k, at, *f, victims, rt.tier, rt.ledger, drained, func(p *sim.Proc, from int) {
					var dead []int
					for _, n := range nodes {
						// Respawn only writers the kill actually reached: a
						// victim that finished before the kill fired (late
						// kill epoch + cross-node skew) has completed its
						// accounting, and re-running it would double-count
						// the job's output.
						if rt.writers[n].Killed() {
							dead = append(dead, n)
						}
					}
					if len(dead) == 0 {
						return
					}
					if rt.shape.Coordinated {
						if len(dead) != spec.Nodes {
							// A subset of a lockstep job cannot restart: the
							// fresh incarnation's collectives would wait for
							// ranks that already exited.
							rt.fail(fmt.Errorf("coordinated restart reached %d of %d writers — place the kill in an epoch every rank is still computing", len(dead), spec.Nodes))
							return
						}
						// Fresh incarnation: collective state must not leak
						// across the restart.
						rt.body = spec.Workload.Bind(binding)
					}
					for _, n := range dead {
						rt.writers[n] = rt.spawn(n, from, false)
					}
				})
			}
		}
		rt.writers = make([]*sim.Proc, spec.Nodes)
		for n := 0; n < spec.Nodes; n++ {
			rt.writers[n] = rt.spawn(n, 0, true)
		}
	}
	k.Run()

	out := make([]Result, len(specs))
	for i, spec := range specs {
		rt := &rts[i]
		if rt.err != nil {
			return nil, fmt.Errorf("jobs: job %s: %w", spec.Name, rt.err)
		}
		r := Result{
			Name:         spec.Name,
			Nodes:        spec.Nodes,
			AppSec:       float64(rt.appEnd),
			DurableSec:   float64(rt.durEnd),
			BytesWritten: rt.written,
		}
		if r.AppSec > 0 {
			r.ClientBps = float64(r.BytesWritten) / r.AppSec
		}
		if rt.tier != nil {
			st := rt.tier.Stats()
			r.Burst = &st
			r.DrainBps = st.DrainBandwidth()
		}
		if rt.inj != nil && rt.inj.Report != nil {
			r.Fault = rt.inj.Report
			victims := 1
			if spec.Fault.WholeJob {
				victims = spec.Nodes
			}
			if re := spec.Fault.KillEpoch + 1 - r.Fault.RestartEpoch; re > 0 {
				r.Fault.ReplayedBytes = int64(re) * rt.shape.BytesPerNode * int64(victims)
			}
		}
		out[i] = r
	}
	return out, nil
}

// jobRT accumulates one job's run-time state across its node processes.
// The sim kernel serializes processes, so plain fields are safe.
type jobRT struct {
	tier    *burst.Tier
	shape   Shape       // the workload's sizing contract
	body    EpochWriter // current bound incarnation's epoch body
	spawn   func(node, fromEpoch int, mark bool) *sim.Proc
	writers []*sim.Proc // current writer incarnation per node
	appEnd  sim.Time
	durEnd  sim.Time
	written int64
	err     error

	// Fault-injection state (nil/unused when the spec carries no fault).
	ledger    *fault.Ledger
	epochFill []int // writers that buffered each epoch so far
	// cum advances by cumStep per marked epoch: per-node staged bytes for
	// uniform workloads, 1 (epoch units) for aggregating workloads whose
	// durable position comes from the drained closure instead.
	cum     int64
	cumStep int64
	arm     func(p *sim.Proc) // schedules the injector at the kill epoch
	armed   bool
	inj     *fault.Injector
}

// markEpoch records a node's epoch completion; when the whole job has the
// epoch buffered it lands a ledger mark, and at the kill epoch arms the
// injector. Restarted writers re-execute epochs already marked, so they
// skip this.
func (rt *jobRT) markEpoch(p *sim.Proc, spec Spec, e int) {
	if rt.ledger == nil {
		return
	}
	rt.epochFill[e]++
	if rt.epochFill[e] < spec.Nodes {
		return
	}
	rt.cum += rt.cumStep
	rt.ledger.Mark(p.Now(), rt.cum)
	if !rt.armed && e == spec.Fault.KillEpoch {
		rt.armed = true
		rt.arm(p)
	}
}

// runNode is one node's writer process: per epoch, the workload body's
// writes (unique per-epoch paths, so nothing truncate-cancels pending
// write-back), an epoch-close drain nudge, then the compute phase. It
// records the job's app end (last write returned) and durable end (every
// staged byte written back) high-water marks on the shared jobRT.
//
// A restarted incarnation (mark false) re-runs the epochs lost to a
// fault: it rewrites the same per-epoch paths — the tier's truncate
// semantics discard any stale staged copy — but skips the epoch ledger,
// which froze at the kill. Checkpoint e captures the state entering
// epoch e, so a restart from checkpoint startEpoch-1 must first redo
// that epoch's compute phase before it can write checkpoint startEpoch;
// only a from-scratch restart (startEpoch 0, initial state) skips it.
func runNode(p *sim.Proc, direct pfs.FileSystem, spec Spec, node int, client *pfs.Client, rt *jobRT, startEpoch int, mark bool) {
	fsx := direct
	if rt.tier != nil {
		fsx = rt.tier.FS()
	}
	env := &posix.Env{FS: fsx, Client: client}
	sh := rt.shape
	if !mark && startEpoch > 0 && sh.ComputeSec > 0 {
		p.Sleep(sh.ComputeSec)
	}
	for e := startEpoch; e < sh.Epochs; e++ {
		if err := rt.body.WriteEpoch(p, env, node, e); err != nil {
			rt.fail(err)
			return
		}
		if rt.tier != nil {
			rt.tier.DrainEpoch(p)
		}
		if mark {
			rt.markEpoch(p, spec, e)
		}
		if sh.ComputeSec > 0 {
			p.Sleep(sh.ComputeSec)
		}
	}
	rt.written += int64(sh.Epochs) * sh.BytesPerNode
	if now := p.Now(); now > rt.appEnd {
		rt.appEnd = now
	}
	if rt.tier != nil {
		rt.tier.WaitDrained(p)
	}
	if now := p.Now(); now > rt.durEnd {
		rt.durEnd = now
	}
}

func (rt *jobRT) fail(err error) {
	if rt.err == nil {
		rt.err = err
	}
}

// writeFile creates path and writes n volume-mode bytes through it, as
// one call or as sequential chunks of chunk bytes (chunk <= 0: one call).
func writeFile(p *sim.Proc, env *posix.Env, path string, n, chunk int64) error {
	fd, err := env.Create(p, path)
	if err != nil {
		return err
	}
	if chunk <= 0 {
		chunk = n
	}
	for left := n; left > 0; left -= chunk {
		fd.Write(p, min(chunk, left), nil)
	}
	fd.Close(p)
	return nil
}
