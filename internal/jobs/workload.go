// The Workload interface: one job's application behaviour, abstracted
// so every experiment axis (burst staging, drain QoS, fault injection,
// interval optimization, batch scheduling) composes with every workload
// shape. jobs.Run owns the per-epoch driver loop — write, drain nudge,
// ledger mark, compute sleep, restart-from-checkpoint — and a Workload
// supplies the three things the driver cannot know:
//
//   - Shape: the sizing contract the pricer and the checkpoint-interval
//     optimizer consume (epochs, logical bytes per node per epoch, the
//     compute phase, whether ranks run in lockstep);
//   - Bind: an EpochWriter bound to one job incarnation, whose
//     WriteEpoch issues the epoch's output through the node's posix.Env
//     (a restart re-Binds coordinated workloads so collective state
//     starts fresh);
//   - Key: a comparable fingerprint so sched.Pricer can memoize service
//     prices per workload shape.
//
// BulkWriter and ChunkedWriter reproduce the historical flat per-node
// writer byte-for-byte; RankWorkload (rank.go) runs mpisim/BIT1 rank
// schedules with aggregator fan-in inside the same driver.
package jobs

import (
	"fmt"

	"picmcio/internal/posix"
	"picmcio/internal/sim"
)

// Shape is a workload's sizing contract: everything the driver, the
// pricer and the interval optimizer need to know without running it.
type Shape struct {
	Epochs int
	// BytesPerNode is the job's logical output per node per epoch — the
	// unit Result.BytesWritten, replay accounting and the pricer's
	// volume math are denominated in, whether or not the bytes are
	// physically written from that node (an aggregating workload funnels
	// them to its writer nodes first).
	BytesPerNode int64
	// ComputeSec is the compute phase between epochs — the knob the
	// checkpoint-interval optimizer retunes via WithCompute.
	ComputeSec sim.Duration
	// Coordinated marks lockstep (MPI-style) workloads whose nodes block
	// in collectives: a partial restart cannot re-enter a collective the
	// surviving nodes already left, so faults must be WholeJob and a
	// restart re-Binds the workload for a fresh incarnation.
	Coordinated bool
}

// Binding is the per-incarnation context a Workload binds against: the
// kernel (for workloads that build rank runtimes), the job's node count
// and its output directory on the shared file system.
type Binding struct {
	K     *sim.Kernel
	Nodes int
	Dir   string
}

// EpochWriter is one bound incarnation's epoch body. WriteEpoch runs on
// node's writer process and issues the epoch's output through env; the
// driver supplies the drain nudge, ledger mark and compute phase around
// it. Implementations may rendezvous across nodes (collectives) but
// must be deterministic for a given binding.
type EpochWriter interface {
	WriteEpoch(p *sim.Proc, env *posix.Env, node, epoch int) error
}

// Workload is one job's application model. Implementations must be
// comparable value types (or return one from Key) so scheduler pricing
// can memoize by shape.
type Workload interface {
	// Shape reports the sizing contract.
	Shape() Shape
	// Key returns a comparable fingerprint of the workload for price
	// memoization; two workloads with equal keys must behave identically.
	Key() any
	// Validate checks workload-specific constraints against the job's
	// node count before the run starts.
	Validate(nodes int) error
	// WithCompute returns a copy with the per-epoch compute phase set —
	// the hook ckptopt's interval recommendations apply through.
	WithCompute(d sim.Duration) Workload
	// Bind returns the epoch body for one job incarnation. jobs.Run
	// binds once at launch and again on whole-job restart when the
	// shape is Coordinated.
	Bind(b Binding) EpochWriter
}

// stagedWriters is an optional interface on a bound EpochWriter for
// workloads whose staged output is not uniform across the job's nodes
// (aggregating workloads stage everything on their writer nodes). It
// reports the nodes that physically write and each one's staged bytes
// per epoch; the fault path then keeps the restart ledger in epoch
// units and derives the durable position from the writer nodes' drain
// counters instead of assuming every node staged the same byte ladder.
type stagedWriters interface {
	StagedWriters() (nodes []int, bytesPerEpoch []int64)
}

// BulkWriter is the historical flat workload: every epoch each node
// writes a checkpoint file and a diagnostic file (classified into the
// matching drain lanes by name) as single calls, then computes. One
// writer process per node stands in for the node's aggregator rank,
// keeping event counts proportional to nodes rather than ranks.
type BulkWriter struct {
	Epochs          int
	CheckpointBytes int64        // checkpoint bytes per node per epoch
	DiagBytes       int64        // diagnostic bytes per node per epoch
	ComputeSec      sim.Duration // compute phase between epochs
}

// Shape implements Workload.
func (w BulkWriter) Shape() Shape {
	return Shape{Epochs: w.Epochs, BytesPerNode: w.CheckpointBytes + w.DiagBytes, ComputeSec: w.ComputeSec}
}

// Key implements Workload.
func (w BulkWriter) Key() any { return w }

// Validate implements Workload.
func (w BulkWriter) Validate(int) error { return nil }

// WithCompute implements Workload.
func (w BulkWriter) WithCompute(d sim.Duration) Workload {
	w.ComputeSec = d
	return w
}

// Bind implements Workload.
func (w BulkWriter) Bind(b Binding) EpochWriter {
	return flatWriter{dir: b.Dir, ckpt: w.CheckpointBytes, diag: w.DiagBytes}
}

// ChunkedWriter is BulkWriter with each file's bytes issued as a
// sequence of chunked writes instead of one call. Chunking is what an
// aggregator's flush loop really does, and it is load-bearing for the
// drain policies: an immediate drain overlaps write-back with the
// absorb of the remaining chunks, while an epoch-end drain cannot
// start until the nudge — the head start that separates the policies'
// durability positions under fault injection.
type ChunkedWriter struct {
	Epochs          int
	CheckpointBytes int64        // checkpoint bytes per node per epoch
	DiagBytes       int64        // diagnostic bytes per node per epoch
	ComputeSec      sim.Duration // compute phase between epochs
	ChunkBytes      int64        // per-write chunk size (<= 0: one call)
}

// Shape implements Workload.
func (w ChunkedWriter) Shape() Shape {
	return Shape{Epochs: w.Epochs, BytesPerNode: w.CheckpointBytes + w.DiagBytes, ComputeSec: w.ComputeSec}
}

// Key implements Workload.
func (w ChunkedWriter) Key() any { return w }

// Validate implements Workload.
func (w ChunkedWriter) Validate(int) error { return nil }

// WithCompute implements Workload.
func (w ChunkedWriter) WithCompute(d sim.Duration) Workload {
	w.ComputeSec = d
	return w
}

// Bind implements Workload.
func (w ChunkedWriter) Bind(b Binding) EpochWriter {
	return flatWriter{dir: b.Dir, ckpt: w.CheckpointBytes, diag: w.DiagBytes, chunk: w.ChunkBytes}
}

// flatWriter is the shared epoch body of BulkWriter and ChunkedWriter:
// per epoch, a checkpoint file and a diagnostic file per node (unique
// paths, so nothing truncate-cancels pending write-back).
type flatWriter struct {
	dir        string
	ckpt, diag int64
	chunk      int64
}

// WriteEpoch implements EpochWriter.
func (f flatWriter) WriteEpoch(p *sim.Proc, env *posix.Env, node, epoch int) error {
	if f.ckpt > 0 {
		path := fmt.Sprintf("%s/ckpt_%03d_e%03d.dmp", f.dir, node, epoch)
		if err := writeFile(p, env, path, f.ckpt, f.chunk); err != nil {
			return err
		}
	}
	if f.diag > 0 {
		path := fmt.Sprintf("%s/diag_%03d_e%03d.dat", f.dir, node, epoch)
		if err := writeFile(p, env, path, f.diag, f.chunk); err != nil {
			return err
		}
	}
	return nil
}
