package jobs_test

import (
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
)

// faultSpecs is the victim/neighbour pair: a staged checkpoint-only job
// whose node 0 dies during epoch 2's compute phase, next to a direct
// writer that keeps running. The victim's drain is capped well below its
// production rate so a write-back backlog exists at the kill — the window
// where the two durability levels diverge.
func faultSpecs(f *fault.Spec) []jobs.Spec {
	wl := jobs.BulkWriter{
		Epochs:          5,
		CheckpointBytes: 96 * units.MiB,
		ComputeSec:      0.03,
	}
	return []jobs.Spec{
		{
			Name:  "victim",
			Nodes: 2,
			Burst: burst.Spec{
				CapacityBytes: 2 << 30,
				Rate:          6e9,
				PerOp:         25e-6,
				DrainRate:     1.5e9,
				Policy:        burst.PolicyEpochEnd,
			},
			Workload:    wl,
			StripeCount: -1,
			Fault:       f,
		},
		{Name: "neighbour", Nodes: 2, Workload: wl, StripeCount: -1},
	}
}

func runFault(t *testing.T, f *fault.Spec) []jobs.Result {
	t.Helper()
	res, err := jobs.Run(cluster.Dardel(), faultSpecs(f), 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultNodeLossRollsBackToDurable kills a node whose NVMe dies with
// it: staged-only bytes must be destroyed and the restart must reach
// further back than the buffered position.
func TestFaultNodeLossRollsBackToDurable(t *testing.T) {
	f := &fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 0, Survival: fault.SurviveNone, RestartDelay: 0.05}
	res := runFault(t, f)
	rep := res[0].Fault
	if rep == nil {
		t.Fatal("victim carries no fault report")
	}
	if rep.BufferedEpochs != 3 {
		t.Errorf("buffered position %d, want 3 (kill lands mid-epoch-2 compute)", rep.BufferedEpochs)
	}
	if rep.DurableEpochs >= rep.BufferedEpochs {
		t.Errorf("durable position %d not behind buffered %d: the drain backlog must cost epochs",
			rep.DurableEpochs, rep.BufferedEpochs)
	}
	if rep.RestartEpoch != rep.DurableEpochs {
		t.Errorf("restart epoch %d, want durable position %d under node loss", rep.RestartEpoch, rep.DurableEpochs)
	}
	if rep.LostBytes == 0 || rep.RedrainBytes != 0 {
		t.Errorf("lost=%d redrain=%d, node loss must destroy staged-only bytes", rep.LostBytes, rep.RedrainBytes)
	}
	if res[0].Burst.LostBytes != rep.LostBytes {
		t.Errorf("tier lost %d != report lost %d", res[0].Burst.LostBytes, rep.LostBytes)
	}
	// The job still completes: every epoch is eventually written and
	// everything that survived or was rewritten becomes PFS-durable.
	if res[0].Burst.PendingBytes != 0 {
		t.Errorf("pending %d after run, want 0", res[0].Burst.PendingBytes)
	}
	if res[1].Fault != nil {
		t.Error("neighbour must not carry a fault report")
	}
}

// TestFaultNVMeSurvivalRestartsFromBuffered keeps the staged state across
// the failure: nothing is lost, the surviving bytes are redrained, and
// the restart resumes from the buffered position.
func TestFaultNVMeSurvivalRestartsFromBuffered(t *testing.T) {
	f := &fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 0, Survival: fault.SurviveNVMe, RestartDelay: 0.05}
	res := runFault(t, f)
	rep := res[0].Fault
	if rep == nil {
		t.Fatal("victim carries no fault report")
	}
	if rep.RestartEpoch != rep.BufferedEpochs {
		t.Errorf("restart epoch %d, want buffered position %d under NVMe survival", rep.RestartEpoch, rep.BufferedEpochs)
	}
	if rep.LostBytes != 0 || rep.RedrainBytes == 0 {
		t.Errorf("lost=%d redrain=%d, NVMe survival must preserve staged bytes", rep.LostBytes, rep.RedrainBytes)
	}
	if res[0].Burst.LostBytes != 0 || res[0].Burst.PendingBytes != 0 {
		t.Errorf("tier lost=%d pending=%d after survivable restart, want 0/0", res[0].Burst.LostBytes, res[0].Burst.PendingBytes)
	}
}

// TestFaultCostsDurableTime compares the faulted run against a clean one
// and the two survivability levels against each other: a failure must
// delay PFS durability, and losing the NVMe must cost at least as much
// as keeping it.
func TestFaultCostsDurableTime(t *testing.T) {
	clean, err := jobs.Run(cluster.Dardel(), faultSpecs(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	loss := runFault(t, &fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 0, Survival: fault.SurviveNone, RestartDelay: 0.05})
	keep := runFault(t, &fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 0, Survival: fault.SurviveNVMe, RestartDelay: 0.05})
	if loss[0].DurableSec <= clean[0].DurableSec {
		t.Errorf("faulted durable %.4fs not past clean %.4fs", loss[0].DurableSec, clean[0].DurableSec)
	}
	if loss[0].DurableSec < keep[0].DurableSec {
		t.Errorf("node loss durable %.4fs cheaper than NVMe survival %.4fs", loss[0].DurableSec, keep[0].DurableSec)
	}
	if loss[0].Fault.RestartEpoch > keep[0].Fault.RestartEpoch {
		t.Errorf("node loss restarts from %d, past NVMe survival's %d", loss[0].Fault.RestartEpoch, keep[0].Fault.RestartEpoch)
	}
	// The neighbour saw the victim's redrain/rewrite traffic but finished.
	if loss[1].BytesWritten != clean[1].BytesWritten {
		t.Errorf("neighbour wrote %d with fault vs %d clean", loss[1].BytesWritten, clean[1].BytesWritten)
	}
}

// TestFaultWholeJob kills every node of the victim job at once.
func TestFaultWholeJob(t *testing.T) {
	f := &fault.Spec{KillEpoch: 1, KillFrac: 0.25, WholeJob: true, Survival: fault.SurviveNone, RestartDelay: 0.1}
	res := runFault(t, f)
	rep := res[0].Fault
	if rep == nil {
		t.Fatal("no fault report")
	}
	if rep.BufferedEpochs != 2 {
		t.Errorf("buffered position %d, want 2", rep.BufferedEpochs)
	}
	if res[0].Burst.PendingBytes != 0 {
		t.Errorf("pending %d after whole-job restart, want 0", res[0].Burst.PendingBytes)
	}
	if res[0].DurableSec <= 0 || res[0].BytesWritten == 0 {
		t.Errorf("whole-job faulted run incomplete: %+v", res[0])
	}
}

// TestFaultOnDirectJob injects into a job with no staging tier: every
// buffered epoch is already PFS-durable, so the two positions coincide
// and nothing is lost or redrained.
func TestFaultOnDirectJob(t *testing.T) {
	specs := faultSpecs(nil)
	specs[1].Fault = &fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 1, Survival: fault.SurviveNone, RestartDelay: 0.05}
	res, err := jobs.Run(cluster.Dardel(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := res[1].Fault
	if rep == nil {
		t.Fatal("direct job carries no fault report")
	}
	if rep.DurableEpochs != rep.BufferedEpochs {
		t.Errorf("direct job positions diverge: %d durable vs %d buffered", rep.DurableEpochs, rep.BufferedEpochs)
	}
	if rep.LostBytes != 0 || rep.RedrainBytes != 0 {
		t.Errorf("direct job lost=%d redrain=%d, want 0/0", rep.LostBytes, rep.RedrainBytes)
	}
}

// TestFaultValidation rejects malformed fault specs at Run time.
func TestFaultValidation(t *testing.T) {
	for name, f := range map[string]*fault.Spec{
		"epoch past schedule": {KillEpoch: 99},
		"node outside job":    {Node: 7},
		"frac out of range":   {KillFrac: 1.5},
	} {
		if _, err := jobs.Run(cluster.Dardel(), faultSpecs(f), 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFaultDeterminism: two identical faulted runs must agree exactly.
func TestFaultDeterminism(t *testing.T) {
	f := &fault.Spec{KillEpoch: 2, KillFrac: 0.5, Node: 0, Survival: fault.SurviveNone, RestartDelay: 0.05}
	a := runFault(t, f)
	b := runFault(t, f)
	if a[0].DurableSec != b[0].DurableSec || a[0].Fault.LostBytes != b[0].Fault.LostBytes {
		t.Fatalf("faulted runs diverged: %+v vs %+v", a[0].Fault, b[0].Fault)
	}
}
