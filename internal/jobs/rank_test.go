package jobs_test

import (
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
)

// rankSpec is the canonical staged rank-workload job: nodes hosting 4
// ranks each, funnelled into aggregator groups, writing through an
// epoch-end staging tier whose drain is capped below production rate so
// the aggregator placement is visible in the drain behaviour.
func rankSpec(nodes, aggregators int) jobs.Spec {
	return jobs.Spec{
		Name:  "ranks",
		Nodes: nodes,
		Burst: burst.Spec{
			CapacityBytes: 2 << 30,
			Rate:          6e9,
			PerOp:         25e-6,
			DrainRate:     1.5e9,
			Policy:        burst.PolicyEpochEnd,
		},
		Workload: jobs.RankWorkload{
			Epochs:                 3,
			RanksPerNode:           4,
			Aggregators:            aggregators,
			CheckpointBytesPerRank: 24 * units.MiB,
			DiagBytesPerRank:       8 * units.MiB,
			ComputeSec:             0.02,
			ChunkBytes:             16 * units.MiB,
		},
		StripeCount: -1,
	}
}

// TestRankWorkloadUnevenGroups: 3 nodes over 2 aggregator groups cannot
// divide evenly ({0,1} and {2}); the run must still account every
// logical byte, classify both drain lanes, and leave nothing staged.
func TestRankWorkloadUnevenGroups(t *testing.T) {
	res, err := jobs.Run(cluster.Dardel(), []jobs.Spec{rankSpec(3, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	// Logical output: 3 nodes × 4 ranks × (24+8) MiB × 3 epochs,
	// regardless of which nodes physically wrote it.
	want := int64(3*4) * (24 + 8) * units.MiB * 3
	if r.BytesWritten != want {
		t.Errorf("BytesWritten %d, want %d", r.BytesWritten, want)
	}
	if r.Burst == nil {
		t.Fatal("staged rank job carries no tier stats")
	}
	if r.Burst.DrainedBytes != want || r.Burst.PendingBytes != 0 {
		t.Errorf("drained=%d pending=%d, want %d drained and nothing pending",
			r.Burst.DrainedBytes, r.Burst.PendingBytes, want)
	}
	// The aggregated files keep the lane classification: .dmp checkpoints
	// and .dat diagnostics in the exact per-rank proportions.
	ck := r.Burst.Class[burst.ClassCheckpoint].DrainedBytes
	dg := r.Burst.Class[burst.ClassDiagnostic].DrainedBytes
	if ck != int64(3*4)*24*units.MiB*3 || dg != int64(3*4)*8*units.MiB*3 {
		t.Errorf("lane split ckpt=%d diag=%d, want 24:8 per rank", ck, dg)
	}
	if r.AppSec <= 0 || r.DurableSec < r.AppSec {
		t.Errorf("times implausible: app=%v durable=%v", r.AppSec, r.DurableSec)
	}
}

// TestRankWorkloadAggregatorPlacementMatters: the drain device is per
// node, so funnelling every group through one aggregator must reach PFS
// durability later than spreading the same bytes over two writers —
// the axis the figworkload artifact sweeps.
func TestRankWorkloadAggregatorPlacementMatters(t *testing.T) {
	one, err := jobs.Run(cluster.Dardel(), []jobs.Spec{rankSpec(2, 1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := jobs.Run(cluster.Dardel(), []jobs.Spec{rankSpec(2, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one[0].BytesWritten != two[0].BytesWritten {
		t.Fatalf("aggregator count changed logical volume: %d vs %d",
			one[0].BytesWritten, two[0].BytesWritten)
	}
	if !(one[0].DurableSec > two[0].DurableSec) {
		t.Errorf("1 aggregator durable at %.4fs, 2 at %.4fs — one drain device must be slower than two",
			one[0].DurableSec, two[0].DurableSec)
	}
}

// TestRankWorkloadSingleRank: the degenerate 1 node × 1 rank × 1 group
// case collapses to a plain per-epoch writer (self-gather, no fan-in)
// and must still run to completion writing directly to the PFS.
func TestRankWorkloadSingleRank(t *testing.T) {
	spec := jobs.Spec{
		Name:  "solo",
		Nodes: 1,
		Workload: jobs.RankWorkload{
			Epochs:                 2,
			RanksPerNode:           1,
			CheckpointBytesPerRank: 24 * units.MiB,
			DiagBytesPerRank:       8 * units.MiB,
			ComputeSec:             0.02,
		},
	}
	res, err := jobs.Run(cluster.Dardel(), []jobs.Spec{spec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2) * (24 + 8) * units.MiB; res[0].BytesWritten != want {
		t.Errorf("BytesWritten %d, want %d", res[0].BytesWritten, want)
	}
	if res[0].Burst != nil || res[0].DrainBps != 0 {
		t.Errorf("direct rank job grew tier stats: %+v", res[0])
	}
	if res[0].AppSec <= 0 {
		t.Errorf("AppSec %v, want > 0", res[0].AppSec)
	}
}

// TestRankWorkloadWholeJobFault kills every node mid-epoch: the restart
// must resume from the epoch-unit ledger's durable position (the NVMe
// dies with the nodes), rebind a fresh mpisim world, and still deliver
// the full logical output with nothing left staged.
func TestRankWorkloadWholeJobFault(t *testing.T) {
	clean, err := jobs.Run(cluster.Dardel(), []jobs.Spec{rankSpec(2, 1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := rankSpec(2, 1)
	spec.Fault = &fault.Spec{
		KillEpoch: 1, KillFrac: 0.5, WholeJob: true,
		Survival: fault.SurviveNone, RestartDelay: 0.05,
	}
	res, err := jobs.Run(cluster.Dardel(), []jobs.Spec{spec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := res[0].Fault
	if rep == nil {
		t.Fatal("faulted rank job carries no report")
	}
	if rep.BufferedEpochs != 2 {
		t.Errorf("buffered position %d, want 2 (kill lands mid-epoch-1 compute)", rep.BufferedEpochs)
	}
	if rep.DurableEpochs > rep.BufferedEpochs {
		t.Errorf("durable position %d ahead of buffered %d", rep.DurableEpochs, rep.BufferedEpochs)
	}
	if rep.RestartEpoch != rep.DurableEpochs {
		t.Errorf("restart epoch %d, want durable position %d under node loss", rep.RestartEpoch, rep.DurableEpochs)
	}
	// The capped drain cannot keep up with the aggregator's 256 MiB/epoch
	// bursts, so the kill must catch a real write-back backlog.
	if rep.LostBytes == 0 {
		t.Error("whole-job NVMe loss destroyed no staged bytes — the backlog is gone")
	}
	if res[0].BytesWritten != clean[0].BytesWritten {
		t.Errorf("faulted run wrote %d logical bytes vs %d clean", res[0].BytesWritten, clean[0].BytesWritten)
	}
	if res[0].Burst.PendingBytes != 0 {
		t.Errorf("pending %d after restart completed, want 0", res[0].Burst.PendingBytes)
	}
	if res[0].DurableSec <= clean[0].DurableSec {
		t.Errorf("faulted durable %.4fs not past clean %.4fs", res[0].DurableSec, clean[0].DurableSec)
	}
	if re := spec.Fault.KillEpoch + 1 - rep.RestartEpoch; re > 0 {
		want := int64(re) * int64(4) * (24 + 8) * units.MiB * 2
		if rep.ReplayedBytes != want {
			t.Errorf("replayed %d bytes, want %d (%d epochs × 2 nodes)", rep.ReplayedBytes, want, re)
		}
	}
}

// TestRankWorkloadRejectsPartialFault: a coordinated workload's
// surviving ranks would block forever in collectives the restarted
// subset cannot re-enter, so single-node faults must be rejected at
// validation time rather than deadlocking the kernel.
func TestRankWorkloadRejectsPartialFault(t *testing.T) {
	spec := rankSpec(2, 1)
	spec.Fault = &fault.Spec{KillEpoch: 1, KillFrac: 0.5, Node: 0, Survival: fault.SurviveNone}
	if _, err := jobs.Run(cluster.Dardel(), []jobs.Spec{spec}, 1); err == nil {
		t.Fatal("single-node fault on a coordinated workload accepted")
	}
}

// TestRankWorkloadValidation rejects malformed rank schedules at Run
// time.
func TestRankWorkloadValidation(t *testing.T) {
	for name, wl := range map[string]jobs.RankWorkload{
		"no ranks":             {Epochs: 2, RanksPerNode: 0},
		"groups exceed nodes":  {Epochs: 2, RanksPerNode: 1, Aggregators: 3},
		"negative rank volume": {Epochs: 2, RanksPerNode: 1, CheckpointBytesPerRank: -1},
	} {
		spec := jobs.Spec{Name: "bad", Nodes: 2, Workload: wl}
		if _, err := jobs.Run(cluster.Dardel(), []jobs.Spec{spec}, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRankWorkloadDeterminism: two identical staged rank co-schedules
// must agree exactly — the property every sweep artifact leans on.
func TestRankWorkloadDeterminism(t *testing.T) {
	specs := []jobs.Spec{rankSpec(3, 2), {
		Name:  "neighbour",
		Nodes: 2,
		Workload: jobs.BulkWriter{
			Epochs: 3, CheckpointBytes: 96 * units.MiB, ComputeSec: 0.02,
		},
		StripeCount: -1,
	}}
	a, err := jobs.Run(cluster.Dardel(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := jobs.Run(cluster.Dardel(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].DurableSec != b[i].DurableSec || a[i].AppSec != b[i].AppSec ||
			a[i].BytesWritten != b[i].BytesWritten {
			t.Fatalf("job %s diverged: %+v vs %+v", a[i].Name, a[i], b[i])
		}
	}
}

// TestBIT1RankSizing: the constructor splits the paper's global snapshot
// volumes across the schedule's total rank count.
func TestBIT1RankSizing(t *testing.T) {
	wl := jobs.BIT1Rank(4, 8, 16, 2, 0.05)
	if wl.Epochs != 4 || wl.RanksPerNode != 16 || wl.Aggregators != 2 {
		t.Fatalf("schedule fields not threaded through: %+v", wl)
	}
	if wl.CheckpointBytesPerRank <= wl.DiagBytesPerRank || wl.DiagBytesPerRank <= 0 {
		t.Errorf("per-rank sizing implausible: ckpt=%d diag=%d",
			wl.CheckpointBytesPerRank, wl.DiagBytesPerRank)
	}
	// More ranks ⇒ smaller per-rank share of the fixed global snapshot.
	finer := jobs.BIT1Rank(4, 8, 32, 2, 0.05)
	if finer.CheckpointBytesPerRank >= wl.CheckpointBytesPerRank {
		t.Errorf("doubling ranks did not shrink the per-rank checkpoint: %d vs %d",
			finer.CheckpointBytesPerRank, wl.CheckpointBytesPerRank)
	}
}
