package jobs_test

import (
	"math"
	"testing"

	"picmcio/internal/burst"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/units"
)

// testSpecs is the canonical two-job contention scenario: a checkpoint-
// heavy staged job and a neighbour writing directly to the shared PFS,
// both striped across every OST so their traffic genuinely collides.
func testSpecs(qos burst.QoS) []jobs.Spec {
	staged := jobs.Spec{
		Name:  "ckpt",
		Nodes: 2,
		Burst: burst.Spec{
			CapacityBytes: 2 << 30,
			Rate:          6e9,
			PerOp:         25e-6,
			DrainRate:     3e9,
			Policy:        burst.PolicyEpochEnd,
			QoS:           qos,
		},
		Workload: jobs.BulkWriter{
			Epochs:          3,
			CheckpointBytes: 96 * units.MiB,
			DiagBytes:       32 * units.MiB,
			ComputeSec:      0.02,
		},
		StripeCount: -1,
	}
	direct := jobs.Spec{
		Name:  "direct",
		Nodes: 2,
		Workload: jobs.BulkWriter{
			Epochs:          3,
			CheckpointBytes: 96 * units.MiB,
			DiagBytes:       32 * units.MiB,
			ComputeSec:      0.02,
		},
		StripeCount: -1,
	}
	return []jobs.Spec{staged, direct}
}

func TestContentionInterferenceIsNonzero(t *testing.T) {
	res, err := jobs.Contention(cluster.Dardel(), testSpecs(burst.QoS{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 || len(res.Isolated) != 2 {
		t.Fatalf("jobs=%d isolated=%d", len(res.Jobs), len(res.Isolated))
	}
	for i, r := range res.Jobs {
		if r.BytesWritten != res.Isolated[i].BytesWritten || r.BytesWritten == 0 {
			t.Fatalf("job %s wrote %d co-scheduled vs %d isolated", r.Name, r.BytesWritten, res.Isolated[i].BytesWritten)
		}
	}
	// Co-scheduling must cost something: the direct job's writes queue
	// behind the staged job's drain traffic on the shared OSTs/backbone.
	if s := res.Slowdown[1]; s <= 1.0 {
		t.Errorf("direct job slowdown %.4f, want > 1.0 (interference must be nonzero)", s)
	}
	if res.MaxSlowdown() <= 1.0 {
		t.Errorf("max slowdown %.4f, want > 1.0", res.MaxSlowdown())
	}
}

func TestContentionFairnessIndexInUnitInterval(t *testing.T) {
	res, err := jobs.Contention(cluster.Dardel(), testSpecs(burst.QoS{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Errorf("Jain index %.4f, want in (0, 1]", res.Jain)
	}
	// Both jobs move the same bytes; shares should not be degenerate.
	if res.Jain < 1.0/float64(len(res.Jobs)) {
		t.Errorf("Jain index %.4f below the 1/n floor", res.Jain)
	}
}

func TestIsolatedRunsAreDeterministic(t *testing.T) {
	a, err := jobs.Run(cluster.Dardel(), testSpecs(burst.QoS{})[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := jobs.Run(cluster.Dardel(), testSpecs(burst.QoS{})[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].DurableSec != b[0].DurableSec || a[0].ClientBps != b[0].ClientBps {
		t.Fatalf("runs diverged: %+v vs %+v", a[0], b[0])
	}
}

func TestStagedJobAbsorbsAndDrains(t *testing.T) {
	res, err := jobs.Run(cluster.Dardel(), testSpecs(burst.QoS{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	staged := res[0]
	if staged.Burst == nil {
		t.Fatal("staged job must carry tier stats")
	}
	if staged.Burst.AbsorbedBytes == 0 || staged.Burst.DrainedBytes != staged.Burst.AbsorbedBytes {
		t.Fatalf("absorbed=%d drained=%d", staged.Burst.AbsorbedBytes, staged.Burst.DrainedBytes)
	}
	if staged.DrainBps <= 0 {
		t.Fatal("staged job must report achieved drain bandwidth")
	}
	if direct := res[1]; direct.Burst != nil || direct.DrainBps != 0 {
		t.Fatalf("direct job must not carry tier stats: %+v", direct)
	}
	// Both lanes saw traffic: checkpoints and diagnostics drained.
	ck := staged.Burst.Class[burst.ClassCheckpoint].DrainedBytes
	dg := staged.Burst.Class[burst.ClassDiagnostic].DrainedBytes
	if ck == 0 || dg == 0 || ck+dg != staged.Burst.DrainedBytes {
		t.Fatalf("lane accounting: ckpt=%d diag=%d total=%d", ck, dg, staged.Burst.DrainedBytes)
	}
}

// TestRunRejectsDuplicateNames: job names key the per-job output
// directories, so two specs sharing a name would silently truncate each
// other's per-epoch files — Run must refuse up front. An unnamed spec
// is rejected for the same reason.
func TestRunRejectsDuplicateNames(t *testing.T) {
	specs := testSpecs(burst.QoS{})
	specs[1].Name = specs[0].Name
	_, err := jobs.Run(cluster.Dardel(), specs, 1)
	if err == nil {
		t.Fatal("duplicate job names accepted")
	}
	specs[1].Name = ""
	if _, err := jobs.Run(cluster.Dardel(), specs, 1); err == nil {
		t.Fatal("unnamed job accepted")
	}
}

func TestAllocationExhaustionFails(t *testing.T) {
	specs := testSpecs(burst.QoS{})
	specs[0].Nodes = cluster.Dardel().MaxNodes
	if _, err := jobs.Run(cluster.Dardel(), specs, 1); err == nil {
		t.Fatal("over-subscribed co-schedule must fail")
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"nil", nil, 0},
		{"empty non-nil", []float64{}, 0},
		{"all zero", []float64{0, 0, 0}, 1},
		{"single zero", []float64{0}, 1},
		{"single share", []float64{7}, 1},
		{"equal shares", []float64{5, 5, 5, 5}, 1},
		{"one taker of four", []float64{1, 0, 0, 0}, 0.25},
		{"one taker of eight", []float64{3, 0, 0, 0, 0, 0, 0, 0}, 0.125},
		{"skewed pair", []float64{3, 1}, 16.0 / 20.0},
		{"scale invariant", []float64{3e9, 1e9}, 16.0 / 20.0},
	}
	for _, c := range cases {
		if got := jobs.JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// Range invariant at larger n: any mix of non-negative shares lands
	// in [1/n, 1].
	mixed := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	if j := jobs.JainIndex(mixed); j < 1.0/8 || j > 1 {
		t.Errorf("mixed shares: JainIndex = %v outside [1/8, 1]", j)
	}
}

// TestWithFault pins the campaign hook: the returned co-schedule carries
// the failure without mutating the caller's scenario declaration.
func TestWithFault(t *testing.T) {
	specs := []jobs.Spec{{Name: "victim", Nodes: 2}, {Name: "neighbour", Nodes: 2}}
	f := &fault.Spec{KillEpoch: 1, KillFrac: 0.5}
	out := jobs.WithFault(specs, 0, f)
	if out[0].Fault != f || out[1].Fault != nil {
		t.Fatalf("fault placement wrong: %+v", out)
	}
	if specs[0].Fault != nil {
		t.Fatal("WithFault mutated the caller's specs")
	}
	// An out-of-range index leaves the copy untouched rather than
	// panicking mid-campaign.
	for _, idx := range []int{-1, 2} {
		clean := jobs.WithFault(specs, idx, f)
		if clean[0].Fault != nil || clean[1].Fault != nil {
			t.Errorf("index %d stamped a fault", idx)
		}
	}
}

// TestLostNodeHours pins the campaign's loss accounting.
func TestLostNodeHours(t *testing.T) {
	// Clean run: nothing lost.
	if got := (jobs.Result{Nodes: 4}).LostNodeHours(6, 0.1); got != 0 {
		t.Errorf("clean run lost %v node-hours", got)
	}
	// One victim node redoes 3 epochs (kill in epoch 2, restart from 0)
	// at 6 h/epoch plus a 0.05 h reschedule.
	r := jobs.Result{Nodes: 4, Fault: &fault.Report{
		Spec:         fault.Spec{KillEpoch: 2},
		RestartEpoch: 0,
	}}
	if got, want := r.LostNodeHours(6, 0.05), 3*6.0+0.05; math.Abs(got-want) > 1e-12 {
		t.Errorf("single-victim loss = %v, want %v", got, want)
	}
	// Whole-job failure: every node pays.
	r.Fault.Spec.WholeJob = true
	if got, want := r.LostNodeHours(6, 0.05), 4*(3*6.0+0.05); math.Abs(got-want) > 1e-12 {
		t.Errorf("whole-job loss = %v, want %v", got, want)
	}
	// A restart position past the kill epoch (NVMe-surviving restart from
	// buffered state) cannot go negative.
	r.Fault.Spec.WholeJob = false
	r.Fault.RestartEpoch = 5
	if got := r.LostNodeHours(6, 0); got != 0 {
		t.Errorf("negative epoch loss leaked: %v", got)
	}
}
