// RankWorkload runs an mpisim/BIT1-style rank schedule inside a
// co-scheduled job: every node hosts RanksPerNode ranks whose epoch
// output funnels through an intra-node fan-in to the node-leader rank,
// the node leaders gatherv across nodes into Aggregators writer groups,
// and each group's aggregator node writes the group's combined
// checkpoint (.dmp) and diagnostic (.dat) files — so the drain lanes,
// QoS policies, fault ledger and scheduler pricing all see the traffic
// shape aggregator placement actually produces, instead of the uniform
// per-node pattern the flat writers emit.
package jobs

import (
	"fmt"

	"picmcio/internal/mpisim"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/workload"
)

// RankWorkload is a coordinated (lockstep) Workload: the job's per-node
// writer processes attach to a private mpisim world, so collectives
// synchronize the nodes exactly as MPI would. Faults against it must be
// WholeJob, and a restart binds a fresh world.
type RankWorkload struct {
	Epochs       int
	RanksPerNode int // ranks each node hosts (>= 1)
	// Aggregators is the number of writer groups the node leaders gather
	// into (<= nodes; 0 = 1). Groups are contiguous node ranges and may
	// be uneven when Aggregators does not divide the node count; the
	// lowest node of each group is its aggregator (writer).
	Aggregators int

	CheckpointBytesPerRank int64 // checkpoint bytes per rank per epoch
	DiagBytesPerRank       int64 // diagnostic bytes per rank per epoch
	ComputeSec             sim.Duration
	// ChunkBytes chunks the aggregated file writes like an ADIOS2
	// aggregator's flush loop (<= 0: one call per file).
	ChunkBytes int64

	// NetAlpha/NetBeta parameterize the alpha-beta network model for the
	// fan-in and gather collectives (0: 1 µs latency, 10 GB/s).
	NetAlpha float64
	NetBeta  float64
}

// BIT1Rank returns a RankWorkload calibrated against the paper's BIT1
// Table II sizing at the given total rank count (ranksPerNode × nodes):
// per-rank checkpoint and diagnostic snapshot bytes from the global
// snapshot sizes.
func BIT1Rank(epochs, nodes, ranksPerNode, aggregators int, compute sim.Duration) RankWorkload {
	s := workload.Default()
	ranks := nodes * ranksPerNode
	return RankWorkload{
		Epochs:                 epochs,
		RanksPerNode:           ranksPerNode,
		Aggregators:            aggregators,
		CheckpointBytesPerRank: s.PerRankCheckpoint(ranks),
		DiagBytesPerRank:       s.PerRankDiag(ranks),
		ComputeSec:             compute,
	}
}

// aggr is the effective writer-group count.
func (w RankWorkload) aggr() int {
	if w.Aggregators < 1 {
		return 1
	}
	return w.Aggregators
}

// perNodeBytes is one node's logical output per epoch.
func (w RankWorkload) perNodeBytes() int64 {
	return int64(w.RanksPerNode) * (w.CheckpointBytesPerRank + w.DiagBytesPerRank)
}

// Shape implements Workload.
func (w RankWorkload) Shape() Shape {
	return Shape{
		Epochs:       w.Epochs,
		BytesPerNode: w.perNodeBytes(),
		ComputeSec:   w.ComputeSec,
		Coordinated:  true,
	}
}

// Key implements Workload.
func (w RankWorkload) Key() any { return w }

// Validate implements Workload.
func (w RankWorkload) Validate(nodes int) error {
	if w.RanksPerNode < 1 {
		return fmt.Errorf("rank workload needs at least one rank per node, got %d", w.RanksPerNode)
	}
	if w.aggr() > nodes {
		return fmt.Errorf("rank workload has %d aggregator groups but only %d node(s)", w.aggr(), nodes)
	}
	if w.CheckpointBytesPerRank < 0 || w.DiagBytesPerRank < 0 {
		return fmt.Errorf("rank workload has negative per-rank bytes")
	}
	return nil
}

// WithCompute implements Workload.
func (w RankWorkload) WithCompute(d sim.Duration) Workload {
	w.ComputeSec = d
	return w
}

// Bind implements Workload: a fresh mpisim world per job incarnation,
// so a whole-job restart re-enters collectives from a clean slate.
func (w RankWorkload) Bind(b Binding) EpochWriter {
	alpha, beta := w.NetAlpha, w.NetBeta
	if alpha == 0 {
		alpha = 1e-6
	}
	if beta == 0 {
		beta = 1.0 / 10e9
	}
	cost := mpisim.AlphaBeta(alpha, beta)
	return &rankWriter{
		wl:     w,
		dir:    b.Dir,
		nodes:  b.Nodes,
		cost:   cost,
		world:  mpisim.NewWorld(b.K, b.Nodes, cost),
		ranks:  make([]*mpisim.Rank, b.Nodes),
		groups: make([]*mpisim.Comm, b.Nodes),
	}
}

// rankWriter is one incarnation's bound epoch body. The per-node writer
// process stands in for the node's leader rank in the mpisim world; the
// node's other ranks contribute through the fan-in cost, keeping event
// counts proportional to nodes rather than ranks.
type rankWriter struct {
	wl    RankWorkload
	dir   string
	nodes int
	cost  mpisim.CostModel
	world *mpisim.World

	ranks  []*mpisim.Rank // lazily attached node-leader ranks
	groups []*mpisim.Comm // per node: its writer-group communicator
}

// group maps a node to its contiguous writer group.
func (rw *rankWriter) group(node int) int {
	return node * rw.wl.aggr() / rw.nodes
}

// WriteEpoch implements EpochWriter. Per epoch and node: intra-node
// fan-in to the leader rank, a gatherv of checkpoint then diagnostic
// bytes onto the group's aggregator, and — on the aggregator only — the
// group's combined .dmp/.dat files through env. Non-aggregator nodes
// return after the gathers and overlap their compute with the
// aggregator's writes, exactly the skew ADIOS2 aggregation produces.
func (rw *rankWriter) WriteEpoch(p *sim.Proc, env *posix.Env, node, epoch int) error {
	r := rw.ranks[node]
	if r == nil {
		// First epoch of this incarnation: attach the writer process as
		// the node's world rank and split off the writer-group
		// communicator (a collective, so it doubles as the startup
		// barrier).
		r = rw.world.Attach(node, p)
		rw.ranks[node] = r
		rw.groups[node] = r.Comm.Split(rw.group(node), node)
	}
	gc := rw.groups[node]
	ck := rw.wl.CheckpointBytesPerRank * int64(rw.wl.RanksPerNode)
	dg := rw.wl.DiagBytesPerRank * int64(rw.wl.RanksPerNode)
	if rw.wl.RanksPerNode > 1 {
		// Intra-node fan-in: the node's ranks funnel their buffers to the
		// leader before it enters the cross-node gather.
		p.Sleep(rw.cost(rw.wl.RanksPerNode, ck+dg))
	}
	cks := gc.GathervBytes(ck, nil, 0)
	var dgs []mpisim.GatherChunk
	if dg > 0 {
		dgs = gc.GathervBytes(dg, nil, 0)
	}
	if gc.Rank() != 0 {
		return nil
	}
	var ckTotal, dgTotal int64
	for _, c := range cks {
		ckTotal += c.N
	}
	for _, c := range dgs {
		dgTotal += c.N
	}
	g := rw.group(node)
	if ckTotal > 0 {
		path := fmt.Sprintf("%s/ckpt_agg%03d_e%03d.dmp", rw.dir, g, epoch)
		if err := writeFile(p, env, path, ckTotal, rw.wl.ChunkBytes); err != nil {
			return err
		}
	}
	if dgTotal > 0 {
		path := fmt.Sprintf("%s/diag_agg%03d_e%03d.dat", rw.dir, g, epoch)
		if err := writeFile(p, env, path, dgTotal, rw.wl.ChunkBytes); err != nil {
			return err
		}
	}
	return nil
}

// StagedWriters implements the stagedWriters hook: only the aggregator
// nodes physically write, each staging its whole group's epoch bytes.
func (rw *rankWriter) StagedWriters() (nodes []int, bytesPerEpoch []int64) {
	perNode := rw.wl.perNodeBytes()
	a := rw.wl.aggr()
	nodes = make([]int, 0, a)
	bytesPerEpoch = make([]int64, 0, a)
	for n := 0; n < rw.nodes; n++ {
		g := rw.group(n)
		if len(nodes) == g {
			nodes = append(nodes, n)
			bytesPerEpoch = append(bytesPerEpoch, 0)
		}
		bytesPerEpoch[g] += perNode
	}
	return nodes, bytesPerEpoch
}
