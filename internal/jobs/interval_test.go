package jobs_test

import (
	"math"
	"testing"

	"picmcio/internal/ckptopt"
	"picmcio/internal/cluster"
	"picmcio/internal/fault"
	"picmcio/internal/jobs"
	"picmcio/internal/sim"
	"picmcio/internal/units"
)

// probeWorkload is the cost-measurement scenario: chunked checkpoint
// writes with a real compute phase, sized like the fault grid's victim.
func probeWorkload() jobs.ChunkedWriter {
	return jobs.ChunkedWriter{
		Epochs:          6,
		CheckpointBytes: 128 * units.MiB,
		ComputeSec:      0.03,
		ChunkBytes:      16 * units.MiB,
	}
}

// TestMeasureCheckpointCosts: the probes price both durability levels
// on a staged machine — buffered saves strictly cheaper than synchronous
// PFS writes, a positive drain lag folded into the buffered restart —
// and only the PFS level on a machine without a staging tier.
func TestMeasureCheckpointCosts(t *testing.T) {
	m := cluster.Dardel()
	c, err := jobs.MeasureCheckpointCosts(m, probeWorkload(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.BufferedSaveSec > 0 && c.DurableSaveSec > 0) {
		t.Fatalf("probe measured non-positive save costs: %+v", c)
	}
	if !(c.BufferedSaveSec < c.DurableSaveSec) {
		t.Errorf("buffered save %v not cheaper than PFS save %v — staging buys nothing",
			c.BufferedSaveSec, c.DurableSaveSec)
	}
	// One buffered 128 MiB save at the preset's 6 GB/s absorb rate takes
	// ~22 ms; the measurement must land in that physical neighbourhood.
	if c.BufferedSaveSec < 0.01 || c.BufferedSaveSec > 0.2 {
		t.Errorf("buffered save %v s implausible for 128 MiB at NVMe speed", c.BufferedSaveSec)
	}
	if c.DurableLagSec < 0 {
		t.Errorf("negative drain lag %v", c.DurableLagSec)
	}
	// Dardel's immediate drain keeps up inside the compute phase, so its
	// measured lag is ~0; Vega's watermark policy holds staged bytes back
	// and must show a real write-back debt.
	vc, err := jobs.MeasureCheckpointCosts(cluster.Vega(), probeWorkload(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vc.DurableLagSec <= 0 {
		t.Error("Vega watermark probe measured no drain lag")
	}
	if want := m.NodeRestartSec + c.DurableLagSec; math.Abs(c.BufferedRestartSec-want) > 1e-12 {
		t.Errorf("buffered restart %v, want reschedule + redrain %v", c.BufferedRestartSec, want)
	}
	if want := m.NodeRestartSec + c.DurableSaveSec; math.Abs(c.DurableRestartSec-want) > 1e-12 {
		t.Errorf("durable restart %v, want reschedule + re-read %v", c.DurableRestartSec, want)
	}
	if c.MTBFSec != m.MTBFNodeHours*3600/2 || c.SurvivalProb != 0 {
		t.Errorf("availability inputs not threaded through: %+v", c)
	}

	// The whole pipeline prices into a plan whose buffered cadence is
	// shorter than the PFS one (cheap saves ⇒ checkpoint more often).
	p, err := ckptopt.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Buffered == nil || !(p.Buffered.NumericSec < p.PFS.NumericSec) {
		t.Fatalf("plan did not prefer a shorter buffered cadence: %+v", p)
	}

	// No staging tier ⇒ single-level costs.
	dc, err := jobs.MeasureCheckpointCosts(cluster.Discoverer(), probeWorkload(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dc.BufferedSaveSec != 0 || dc.DurableLagSec != 0 {
		t.Errorf("direct-only machine grew staged measurements: %+v", dc)
	}

	// A probe without epochs cannot price anything, and neither can one
	// without a workload.
	if _, err := jobs.MeasureCheckpointCosts(m, jobs.BulkWriter{}, 2, 1); err == nil {
		t.Error("epoch-less probe accepted")
	}
	if _, err := jobs.MeasureCheckpointCosts(m, nil, 2, 1); err == nil {
		t.Error("nil-workload probe accepted")
	}
}

// TestIntervalFrom: the spec hook stamps the plan's recommendation onto
// the workload's compute phase without touching anything else.
func TestIntervalFrom(t *testing.T) {
	p, err := ckptopt.Optimize(ckptopt.Costs{
		MTBFSec:         9e8,
		BufferedSaveSec: 0.02,
		DurableSaveSec:  0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := jobs.Spec{Name: "campaign", Nodes: 2, Workload: probeWorkload()}
	tuned := spec.IntervalFrom(p)
	if got, want := float64(tuned.Workload.Shape().ComputeSec), p.IntervalSec(); got != want {
		t.Errorf("ComputeSec %v, want the recommended interval %v", got, want)
	}
	if tuned.Workload.Shape().Epochs != spec.Workload.Shape().Epochs || tuned.Name != spec.Name {
		t.Error("IntervalFrom disturbed unrelated spec fields")
	}
	if spec.Workload.Shape().ComputeSec != probeWorkload().ComputeSec {
		t.Error("IntervalFrom mutated the caller's spec")
	}
	if sim.Duration(p.IntervalSec()) <= 0 {
		t.Fatalf("recommended interval %v not positive", p.IntervalSec())
	}
}

// TestLostNodeHoursPartialEpoch: the campaign's loss accounting counts
// the kill epoch's partially computed phase — a buffered restart that
// loses no whole epoch still pays the work since its last checkpoint.
func TestLostNodeHoursPartialEpoch(t *testing.T) {
	r := jobs.Result{Nodes: 4, Fault: &fault.Report{
		Spec:         fault.Spec{KillEpoch: 2, KillFrac: 0.5},
		RestartEpoch: 3, // buffered restart: no whole epoch lost
	}}
	if got, want := r.LostNodeHours(6, 0.05), 0.5*6.0+0.05; math.Abs(got-want) > 1e-12 {
		t.Errorf("partial-epoch loss = %v, want %v", got, want)
	}
	// Whole epochs and the partial phase stack.
	r.Fault.RestartEpoch = 1
	if got, want := r.LostNodeHours(6, 0.05), 2.5*6.0+0.05; math.Abs(got-want) > 1e-12 {
		t.Errorf("stacked loss = %v, want %v", got, want)
	}
	// A victim that finished before the kill still reports nothing lost.
	r.Fault.RestartEpoch = 5
	if got := r.LostNodeHours(6, 0); got != 0 {
		t.Errorf("negative epoch loss leaked: %v", got)
	}
}
