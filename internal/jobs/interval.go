// Checkpoint-cost measurement and interval wiring: the bridge between
// the analytic optimizer (internal/ckptopt) and the simulated co-schedule
// runner. MeasureCheckpointCosts prices a machine's checkpoint levels by
// probe runs through the real staging and PFS code paths — the measured
// costs the ROADMAP's interval-optimization item asks for, as opposed to
// hand-fed constants — and Spec.IntervalFrom stamps a plan's recommended
// cadence back onto a workload so campaigns run *at* the optimum.
package jobs

import (
	"fmt"

	"picmcio/internal/ckptopt"
	"picmcio/internal/cluster"
	"picmcio/internal/sim"
)

// MeasureCheckpointCosts runs probe jobs of workload wl on machine m at
// the given node count and returns the optimizer's cost inputs with the
// measured fields filled in:
//
//   - DurableSaveSec from a direct-to-PFS probe: the per-epoch
//     application cost beyond compute, i.e. one synchronous checkpoint.
//   - BufferedSaveSec from a staged probe through the machine's burst
//     tier (zero when the preset has none): the same measurement at
//     buffered durability.
//   - DurableLagSec from the staged probe's durable tail
//     (DurableSec − AppSec): how far write-back trails the application
//     in steady state — the extra work a restart loses when the failure
//     destroys the staged state, and the redrain debt a surviving
//     restart must pay (added to BufferedRestartSec).
//   - DurableRestartSec additionally pays re-reading the checkpoint
//     from the PFS, priced at the measured synchronous write cost.
//
// The availability-side fields (MTBF, survival probability, base
// restart delay) come from m.CheckpointCosts. The probe honours the
// workload's chunking and epoch count, so drain-policy effects — an
// epoch-end drain's longer tail, a watermark drain's deep backlog —
// land in the measured lag exactly as the fault ledger would see them.
func MeasureCheckpointCosts(m cluster.Machine, wl Workload, nodes int, seed uint64) (ckptopt.Costs, error) {
	if wl == nil {
		return ckptopt.Costs{}, fmt.Errorf("jobs: cost probe needs a workload")
	}
	if wl.Shape().Epochs < 1 {
		return ckptopt.Costs{}, fmt.Errorf("jobs: cost probe needs at least one epoch")
	}
	costs := m.CheckpointCosts(nodes)

	direct := Spec{Name: "probe-direct", Nodes: nodes, Workload: wl, StripeCount: -1}
	rd, err := Run(m, []Spec{direct}, seed)
	if err != nil {
		return ckptopt.Costs{}, fmt.Errorf("jobs: direct cost probe: %w", err)
	}
	costs.DurableSaveSec, err = perEpochSave(rd[0], wl, "direct")
	if err != nil {
		return ckptopt.Costs{}, err
	}
	costs.DurableRestartSec += costs.DurableSaveSec

	if m.Burst.Enabled() {
		staged := Spec{Name: "probe-staged", Nodes: nodes, Burst: m.Burst, Workload: wl, StripeCount: -1}
		rs, err := Run(m, []Spec{staged}, seed)
		if err != nil {
			return ckptopt.Costs{}, fmt.Errorf("jobs: staged cost probe: %w", err)
		}
		costs.BufferedSaveSec, err = perEpochSave(rs[0], wl, "staged")
		if err != nil {
			return ckptopt.Costs{}, err
		}
		if lag := rs[0].DurableSec - rs[0].AppSec; lag > 0 {
			costs.DurableLagSec = lag
			costs.BufferedRestartSec += lag
		}
	}
	return costs, nil
}

// perEpochSave extracts one epoch's checkpoint cost from a probe
// result: the application time beyond the declared compute phases,
// divided across epochs.
func perEpochSave(r Result, wl Workload, kind string) (float64, error) {
	sh := wl.Shape()
	save := (r.AppSec - float64(sh.ComputeSec)*float64(sh.Epochs)) / float64(sh.Epochs)
	if !(save > 0) {
		return 0, fmt.Errorf("jobs: %s probe measured non-positive save cost %v", kind, save)
	}
	return save, nil
}

// IntervalFrom returns a copy of the spec whose per-epoch compute phase
// is the plan's recommended checkpoint interval — the hook that lets a
// campaign run a co-schedule *at* the ckptopt optimum instead of a
// hand-picked epoch length.
func (s Spec) IntervalFrom(p ckptopt.Plan) Spec {
	s.Workload = s.Workload.WithCompute(sim.Duration(p.IntervalSec()))
	return s
}
