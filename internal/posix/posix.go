// Package posix provides the POSIX-flavoured I/O layer the simulated
// applications program against: file descriptors with read/write/seek/
// fsync/close on top of a simulated pfs.FileSystem, with an instrumentation
// hook through which the Darshan module observes every operation — exactly
// where real Darshan interposes on the POSIX API.
package posix

import (
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

// Op identifies an instrumented operation.
type Op int

// Instrumented operation kinds.
const (
	OpOpen Op = iota
	OpCreate
	OpRead
	OpWrite
	OpSeek
	OpStat
	OpFsync
	OpClose
	OpUnlink
	OpMkdir
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSeek:
		return "seek"
	case OpStat:
		return "stat"
	case OpFsync:
		return "fsync"
	case OpClose:
		return "close"
	case OpUnlink:
		return "unlink"
	case OpMkdir:
		return "mkdir"
	}
	return "op?"
}

// IsMeta reports whether the operation counts as metadata in the Darshan
// sense (everything that is neither a data read nor a data write).
func (o Op) IsMeta() bool { return o != OpRead && o != OpWrite }

// Monitor observes instrumented operations. Implementations must be cheap;
// they run inline with the simulated operation.
type Monitor interface {
	Record(rank int, op Op, path string, bytes int64, start, end sim.Time)
}

// Env is a per-rank POSIX environment: which file system and node NIC the
// rank's syscalls go through, and which monitor observes them.
type Env struct {
	FS      pfs.FileSystem
	Client  *pfs.Client
	Rank    int
	Monitor Monitor // may be nil

	// Stage is an optional staging tier (e.g. a node-local burst buffer)
	// layered over FS. I/O paths opt in per engine via Staged; plain FS
	// operations keep going direct.
	Stage pfs.FileSystem
}

// Staged returns a copy of the environment that issues I/O through the
// staging tier, or nil when no tier is attached.
func (e *Env) Staged() *Env {
	if e.Stage == nil {
		return nil
	}
	c := *e
	c.FS = e.Stage
	return &c
}

func (e *Env) record(op Op, path string, bytes int64, start, end sim.Time) {
	if e.Monitor != nil {
		e.Monitor.Record(e.Rank, op, path, bytes, start, end)
	}
}

// FD is an open file descriptor with a position.
type FD struct {
	env  *Env
	f    pfs.File
	path string
	off  int64
}

// Create creates (or truncates) a file and returns a descriptor at offset 0.
func (e *Env) Create(p *sim.Proc, path string) (*FD, error) {
	start := p.Now()
	f, err := e.FS.Create(p, e.Client, path)
	e.record(OpCreate, path, 0, start, p.Now())
	if err != nil {
		return nil, err
	}
	return &FD{env: e, f: f, path: pfs.Clean(path)}, nil
}

// Open opens an existing file at offset 0.
func (e *Env) Open(p *sim.Proc, path string) (*FD, error) {
	start := p.Now()
	f, err := e.FS.Open(p, e.Client, path)
	e.record(OpOpen, path, 0, start, p.Now())
	if err != nil {
		return nil, err
	}
	return &FD{env: e, f: f, path: pfs.Clean(path)}, nil
}

// OpenAppend opens (creating if needed) a file positioned at its end.
func (e *Env) OpenAppend(p *sim.Proc, path string) (*FD, error) {
	start := p.Now()
	f, err := e.FS.OpenAppend(p, e.Client, path)
	e.record(OpOpen, path, 0, start, p.Now())
	if err != nil {
		return nil, err
	}
	return &FD{env: e, f: f, path: pfs.Clean(path), off: f.Size()}, nil
}

// Stat reports file metadata.
func (e *Env) Stat(p *sim.Proc, path string) (pfs.FileInfo, error) {
	start := p.Now()
	fi, err := e.FS.Stat(p, e.Client, path)
	e.record(OpStat, path, 0, start, p.Now())
	return fi, err
}

// Unlink removes a file.
func (e *Env) Unlink(p *sim.Proc, path string) error {
	start := p.Now()
	err := e.FS.Unlink(p, e.Client, path)
	e.record(OpUnlink, path, 0, start, p.Now())
	return err
}

// MkdirAll creates a directory chain.
func (e *Env) MkdirAll(p *sim.Proc, path string) error {
	start := p.Now()
	err := e.FS.MkdirAll(p, e.Client, path)
	e.record(OpMkdir, path, 0, start, p.Now())
	return err
}

// Path reports the path the descriptor was opened with.
func (fd *FD) Path() string { return fd.path }

// Offset reports the current file position.
func (fd *FD) Offset() int64 { return fd.off }

// Size reports the current size of the underlying file.
func (fd *FD) Size() int64 { return fd.f.Size() }

// Write writes n bytes at the current offset and advances it. data may be
// nil (volume mode) or must have length n.
func (fd *FD) Write(p *sim.Proc, n int64, data []byte) {
	fd.Pwrite(p, fd.off, n, data)
	fd.off += n
}

// Pwrite writes n bytes at offset off without moving the file position.
func (fd *FD) Pwrite(p *sim.Proc, off, n int64, data []byte) {
	start := p.Now()
	fd.f.WriteAt(p, fd.env.Client, off, n, data)
	fd.env.record(OpWrite, fd.path, n, start, p.Now())
}

// Read reads up to n bytes at the current offset and advances it.
func (fd *FD) Read(p *sim.Proc, n int64) []byte {
	b := fd.Pread(p, fd.off, n)
	if rem := fd.f.Size() - fd.off; rem < n {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	fd.off += n
	return b
}

// Pread reads up to n bytes at offset off without moving the position.
func (fd *FD) Pread(p *sim.Proc, off, n int64) []byte {
	start := p.Now()
	b := fd.f.ReadAt(p, fd.env.Client, off, n)
	got := n
	if rem := fd.f.Size() - off; rem < got {
		got = rem
	}
	if got < 0 {
		got = 0
	}
	fd.env.record(OpRead, fd.path, got, start, p.Now())
	return b
}

// Seek sets the absolute file position (SEEK_SET).
func (fd *FD) Seek(p *sim.Proc, off int64) {
	start := p.Now()
	fd.off = off
	fd.env.record(OpSeek, fd.path, 0, start, p.Now())
}

// Fsync flushes the file to stable storage.
func (fd *FD) Fsync(p *sim.Proc) {
	start := p.Now()
	fd.f.Sync(p, fd.env.Client)
	fd.env.record(OpFsync, fd.path, 0, start, p.Now())
}

// Close closes the descriptor.
func (fd *FD) Close(p *sim.Proc) {
	start := p.Now()
	fd.f.Close(p, fd.env.Client)
	fd.env.record(OpClose, fd.path, 0, start, p.Now())
}
