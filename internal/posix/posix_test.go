package posix

import (
	"testing"

	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/sim"
)

type opLog struct {
	ops   []Op
	bytes []int64
}

func (m *opLog) Record(rank int, op Op, path string, bytes int64, start, end sim.Time) {
	m.ops = append(m.ops, op)
	m.bytes = append(m.bytes, bytes)
}

func newEnv(t *testing.T) (*sim.Kernel, *Env, *opLog) {
	t.Helper()
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	mon := &opLog{}
	return k, &Env{FS: fs, Client: &pfs.Client{}, Rank: 0, Monitor: mon}, mon
}

func TestWriteAdvancesOffset(t *testing.T) {
	k, env, _ := newEnv(t)
	k.Spawn("r", func(p *sim.Proc) {
		fd, err := env.Create(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		fd.Write(p, 100, nil)
		fd.Write(p, 50, nil)
		if fd.Offset() != 150 {
			t.Errorf("offset=%d, want 150", fd.Offset())
		}
		if fd.Size() != 150 {
			t.Errorf("size=%d, want 150", fd.Size())
		}
		fd.Close(p)
	})
	k.Run()
}

func TestPwriteDoesNotMoveOffset(t *testing.T) {
	k, env, _ := newEnv(t)
	k.Spawn("r", func(p *sim.Proc) {
		fd, _ := env.Create(p, "/f")
		fd.Pwrite(p, 1000, 10, nil)
		if fd.Offset() != 0 {
			t.Errorf("offset moved to %d", fd.Offset())
		}
		if fd.Size() != 1010 {
			t.Errorf("size=%d", fd.Size())
		}
		fd.Close(p)
	})
	k.Run()
}

func TestOpenAppendPositionsAtEnd(t *testing.T) {
	k, env, _ := newEnv(t)
	k.Spawn("r", func(p *sim.Proc) {
		fd, _ := env.Create(p, "/log")
		fd.Write(p, 64, nil)
		fd.Close(p)
		fd2, err := env.OpenAppend(p, "/log")
		if err != nil {
			t.Error(err)
			return
		}
		if fd2.Offset() != 64 {
			t.Errorf("append offset=%d, want 64", fd2.Offset())
		}
		fd2.Write(p, 64, nil)
		fd2.Close(p)
		fi, _ := env.Stat(p, "/log")
		if fi.Size != 128 {
			t.Errorf("size=%d, want 128", fi.Size)
		}
	})
	k.Run()
}

func TestReadClipsAtEOF(t *testing.T) {
	k, env, _ := newEnv(t)
	k.Spawn("r", func(p *sim.Proc) {
		fd, _ := env.Create(p, "/f")
		fd.Write(p, 10, []byte("0123456789"))
		fd.Seek(p, 5)
		got := fd.Read(p, 100)
		if string(got) != "56789" {
			t.Errorf("read %q", got)
		}
		if fd.Offset() != 10 {
			t.Errorf("offset=%d, want 10 (clipped)", fd.Offset())
		}
		fd.Close(p)
	})
	k.Run()
}

func TestMonitorSeesEveryOp(t *testing.T) {
	k, env, mon := newEnv(t)
	k.Spawn("r", func(p *sim.Proc) {
		env.MkdirAll(p, "/d")
		fd, _ := env.Create(p, "/d/f")
		fd.Write(p, 8, nil)
		fd.Fsync(p)
		fd.Close(p)
		env.Stat(p, "/d/f")
		env.Unlink(p, "/d/f")
	})
	k.Run()
	want := []Op{OpMkdir, OpCreate, OpWrite, OpFsync, OpClose, OpStat, OpUnlink}
	if len(mon.ops) != len(want) {
		t.Fatalf("ops=%v", mon.ops)
	}
	for i, op := range want {
		if mon.ops[i] != op {
			t.Fatalf("op %d = %v, want %v", i, mon.ops[i], op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if OpWrite.IsMeta() || OpRead.IsMeta() {
		t.Fatal("read/write misclassified as metadata")
	}
	for _, op := range []Op{OpOpen, OpCreate, OpSeek, OpStat, OpFsync, OpClose, OpUnlink, OpMkdir} {
		if !op.IsMeta() {
			t.Fatalf("%v should be metadata", op)
		}
	}
}
