// Package mpisim is a simulated MPI runtime on the discrete-event kernel:
// each rank is a sim process, point-to-point messages and collectives cost
// virtual time through a pluggable alpha-beta network model, and
// communicators can be split — enough MPI surface for BIT1's I/O paths
// (offset exscan for openPMD global extents, gatherv for ADIOS2
// aggregation, barriers between phases).
//
// Collectives move real payloads when the caller provides them, so the
// compression pipeline operates on actual bytes; at extreme scale callers
// pass sizes only and the runtime charges time without copying data.
package mpisim

import (
	"fmt"
	"sort"

	"picmcio/internal/sim"
)

// CostModel evaluates the time for a p-participant operation moving the
// given total payload bytes.
type CostModel func(p int, bytes int64) sim.Duration

// AlphaBeta returns the classic latency-bandwidth model:
// alpha*ceil(log2 p) + beta*bytes.
func AlphaBeta(alpha, beta float64) CostModel {
	return func(p int, bytes int64) sim.Duration {
		if p <= 1 {
			return sim.Duration(beta * float64(bytes))
		}
		hops := 0
		for v := p - 1; v > 0; v >>= 1 {
			hops++
		}
		return sim.Duration(alpha*float64(hops) + beta*float64(bytes))
	}
}

// World is an MPI world of Size ranks.
type World struct {
	K    *sim.Kernel
	Size int
	cost CostModel

	world *commGroup
}

// NewWorld creates a world of size ranks with the given network model.
func NewWorld(k *sim.Kernel, size int, cost CostModel) *World {
	if size < 1 {
		panic("mpisim: world size must be >= 1")
	}
	if cost == nil {
		cost = AlphaBeta(1e-6, 1.0/10e9)
	}
	w := &World{K: k, Size: size, cost: cost}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	w.world = newCommGroup(w, ranks)
	return w
}

// Rank is the per-process handle passed to rank programs.
type Rank struct {
	ID   int
	Proc *sim.Proc
	W    *World
	Comm *Comm // the world communicator
}

// Spawn launches the rank programs; the caller then drives the kernel with
// K.Run(). fn runs once per rank.
func (w *World) Spawn(fn func(r *Rank)) {
	for i := 0; i < w.Size; i++ {
		i := i
		w.K.Spawn(fmt.Sprintf("rank%05d", i), func(p *sim.Proc) {
			r := &Rank{ID: i, Proc: p, W: w}
			r.Comm = &Comm{g: w.world, rank: i, r: r}
			fn(r)
		})
	}
}

// Run is a convenience that spawns the rank programs and runs the kernel
// to completion, returning the final virtual time.
func (w *World) Run(fn func(r *Rank)) sim.Time {
	w.Spawn(fn)
	return w.K.Run()
}

// Attach registers an externally managed process as world rank id and
// returns its rank handle — the hook for drivers that own their
// processes (a co-scheduled job's per-node writers, say) and want them
// to run rank programs without World.Spawn. Each rank id must be
// attached to exactly one process, and every rank of the world must
// participate before a world-communicator collective can complete.
func (w *World) Attach(id int, p *sim.Proc) *Rank {
	if id < 0 || id >= w.Size {
		panic(fmt.Sprintf("mpisim: attach rank %d outside world of size %d", id, w.Size))
	}
	r := &Rank{ID: id, Proc: p, W: w}
	r.Comm = &Comm{g: w.world, rank: id, r: r}
	return r
}

// commGroup is the shared state of one communicator.
type commGroup struct {
	w     *World
	ranks []int // world rank per comm rank
	colls map[int]*collState
	mail  map[mailKey][]*message
	recvQ map[mailKey]*recvWait
}

func newCommGroup(w *World, ranks []int) *commGroup {
	return &commGroup{
		w:     w,
		ranks: ranks,
		colls: map[int]*collState{},
		mail:  map[mailKey][]*message{},
		recvQ: map[mailKey]*recvWait{},
	}
}

type mailKey struct {
	to, from, tag int
}

type message struct {
	payload any
	bytes   int64
	arrival sim.Time
}

// recvWait is a posted receive: the arrival completion is a timed
// broadcast (sim.Completion.CompleteAt), so the matching Send releases
// the receiver at the message's arrival time.
type recvWait struct {
	arrived *sim.Completion
	msg     *message
}

type collState struct {
	arrived  int
	contribs []any
	procs    []*sim.Proc
	results  []any
	wakeAt   sim.Time
}

// Comm is a per-rank communicator handle.
type Comm struct {
	g    *commGroup
	rank int // my index within g.ranks
	r    *Rank
	seq  int // my next collective sequence number
}

// Rank reports this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the communicator size.
func (c *Comm) Size() int { return len(c.g.ranks) }

// WorldRank reports the world rank behind a communicator rank.
func (c *Comm) WorldRank(commRank int) int { return c.g.ranks[commRank] }

// collective executes one matched collective. The reduce callback runs on
// the last-arriving rank; it receives every rank's contribution in comm
// rank order and returns the per-rank results and the total bytes moved
// (for the cost model).
func (c *Comm) collective(contrib any, reduce func(contribs []any) (results []any, bytes int64)) any {
	p := c.r.Proc
	id := c.seq
	c.seq++
	st := c.g.colls[id]
	if st == nil {
		n := len(c.g.ranks)
		st = &collState{contribs: make([]any, n), procs: make([]*sim.Proc, n)}
		c.g.colls[id] = st
	}
	st.contribs[c.rank] = contrib
	st.arrived++
	if st.arrived < len(c.g.ranks) {
		st.procs[c.rank] = p
		p.Park()
	} else {
		results, bytes := reduce(st.contribs)
		st.results = results
		st.wakeAt = p.Now() + c.g.w.cost(len(c.g.ranks), bytes)
		delete(c.g.colls, id)
		// Deliberately not a sim.Completion: its broadcast resumes waiters
		// in arrival order, while ranks leaving a collective must resume in
		// comm-rank order — same-instant seq ties decide who reserves shared
		// servers first, and replay bit-identity pins that order.
		for _, q := range st.procs {
			if q != nil {
				c.g.w.K.WakeAt(st.wakeAt, q)
			}
		}
		p.SleepUntil(st.wakeAt)
	}
	if st.results == nil {
		return nil
	}
	return st.results[c.rank]
}

// Barrier blocks until every rank in the communicator has entered.
func (c *Comm) Barrier() {
	c.collective(nil, func(_ []any) ([]any, int64) {
		return make([]any, len(c.g.ranks)), 0
	})
}

// AllreduceF64 combines one float64 per rank with op ("sum", "max", "min")
// and returns the result on every rank.
func (c *Comm) AllreduceF64(v float64, op string) float64 {
	res := c.collective(v, func(contribs []any) ([]any, int64) {
		acc := contribs[0].(float64)
		for _, x := range contribs[1:] {
			f := x.(float64)
			switch op {
			case "sum":
				acc += f
			case "max":
				if f > acc {
					acc = f
				}
			case "min":
				if f < acc {
					acc = f
				}
			default:
				panic("mpisim: unknown op " + op)
			}
		}
		out := make([]any, len(contribs))
		for i := range out {
			out[i] = acc
		}
		return out, int64(8 * len(contribs))
	})
	return res.(float64)
}

// AllreduceI64 combines one int64 per rank ("sum", "max", "min").
func (c *Comm) AllreduceI64(v int64, op string) int64 {
	return int64(c.AllreduceF64(float64(v), op))
}

// ExscanI64 returns the exclusive prefix sum of v across ranks — the MPI
// call openPMD-style writers use to compute each rank's offset in the
// global extent. Rank 0 receives 0.
func (c *Comm) ExscanI64(v int64) int64 {
	res := c.collective(v, func(contribs []any) ([]any, int64) {
		out := make([]any, len(contribs))
		var run int64
		for i, x := range contribs {
			out[i] = run
			run += x.(int64)
		}
		return out, int64(8 * len(contribs))
	})
	return res.(int64)
}

// ExscanVecI64 performs an element-wise exclusive prefix sum over a
// vector of int64 (one entry per variable) and also returns the global
// sums — one collective instead of 2·len(v), which is what lets the
// openPMD adaptor compute every record component's offset and global
// extent in a single operation at 25k ranks.
func (c *Comm) ExscanVecI64(v []int64) (offsets, totals []int64) {
	res := c.collective(v, func(contribs []any) ([]any, int64) {
		m := len(v)
		run := make([]int64, m)
		out := make([]any, len(contribs))
		for i, x := range contribs {
			vec := x.([]int64)
			offs := make([]int64, m)
			copy(offs, run)
			for j := 0; j < m; j++ {
				run[j] += vec[j]
			}
			out[i] = offs
		}
		// run now holds the totals; attach them to every rank's result.
		for i := range out {
			out[i] = [2][]int64{out[i].([]int64), run}
		}
		return out, int64(8 * m * len(contribs))
	})
	pair := res.([2][]int64)
	return pair[0], pair[1]
}

// AllgatherI64 gathers one int64 from every rank onto every rank.
func (c *Comm) AllgatherI64(v int64) []int64 {
	res := c.collective(v, func(contribs []any) ([]any, int64) {
		all := make([]int64, len(contribs))
		for i, x := range contribs {
			all[i] = x.(int64)
		}
		out := make([]any, len(contribs))
		for i := range out {
			out[i] = all
		}
		return out, int64(8 * len(contribs) * len(contribs))
	})
	return res.([]int64)
}

// BcastI64 broadcasts v from root to every rank.
func (c *Comm) BcastI64(v int64, root int) int64 {
	res := c.collective(v, func(contribs []any) ([]any, int64) {
		out := make([]any, len(contribs))
		for i := range out {
			out[i] = contribs[root]
		}
		return out, int64(8 * len(contribs))
	})
	return res.(int64)
}

// GatherChunk is one rank's contribution to GathervBytes.
type GatherChunk struct {
	Rank int
	N    int64
	Data []byte // nil in volume mode
}

// GathervBytes gathers variable-size chunks onto root. Every rank passes
// its size n and optional payload; root receives all chunks in comm-rank
// order, other ranks receive nil. Cost is charged for the total volume.
func (c *Comm) GathervBytes(n int64, data []byte, root int) []GatherChunk {
	type contrib struct {
		n    int64
		data []byte
	}
	res := c.collective(contrib{n, data}, func(contribs []any) ([]any, int64) {
		chunks := make([]GatherChunk, len(contribs))
		var total int64
		for i, x := range contribs {
			ct := x.(contrib)
			chunks[i] = GatherChunk{Rank: i, N: ct.n, Data: ct.data}
			total += ct.n
		}
		out := make([]any, len(contribs))
		out[root] = chunks
		return out, total
	})
	if res == nil {
		return nil
	}
	return res.([]GatherChunk)
}

// Split partitions the communicator by color; within a color, ranks are
// ordered by (key, world rank), mirroring MPI_Comm_split.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ color, key, world, commRank int }
	res := c.collective(ck{color, key, c.g.ranks[c.rank], c.rank}, func(contribs []any) ([]any, int64) {
		byColor := map[int][]ck{}
		for _, x := range contribs {
			e := x.(ck)
			byColor[e.color] = append(byColor[e.color], e)
		}
		groups := map[int]*commGroup{}
		idxInGroup := make([]any, len(contribs))
		for color, members := range byColor {
			sort.Slice(members, func(i, j int) bool {
				if members[i].key != members[j].key {
					return members[i].key < members[j].key
				}
				return members[i].world < members[j].world
			})
			ranks := make([]int, len(members))
			for i, m := range members {
				ranks[i] = m.world
			}
			groups[color] = newCommGroup(c.g.w, ranks)
			for i, m := range members {
				idxInGroup[m.commRank] = []any{groups[color], i}
			}
		}
		return idxInGroup, int64(16 * len(contribs))
	})
	pair := res.([]any)
	return &Comm{g: pair[0].(*commGroup), rank: pair[1].(int), r: c.r}
}

// Send delivers a message of n bytes (payload optional) to comm rank `to`
// with the given tag. The sender is charged a small injection overhead;
// the message arrives after the network cost for its size.
func (c *Comm) Send(to, tag int, n int64, payload any) {
	p := c.r.Proc
	arrival := p.Now() + c.g.w.cost(2, n)
	key := mailKey{to: to, from: c.rank, tag: tag}
	msg := &message{payload: payload, bytes: n, arrival: arrival}
	if rw, ok := c.g.recvQ[key]; ok && rw.msg == nil {
		rw.msg = msg
		delete(c.g.recvQ, key)
		rw.arrived.CompleteAt(arrival)
	} else {
		c.g.mail[key] = append(c.g.mail[key], msg)
	}
	p.Sleep(c.g.w.cost(2, 0)) // injection overhead
}

// Recv blocks until a message from comm rank `from` with the given tag
// arrives and returns its payload and size.
func (c *Comm) Recv(from, tag int) (any, int64) {
	p := c.r.Proc
	key := mailKey{to: c.rank, from: from, tag: tag}
	if q := c.g.mail[key]; len(q) > 0 {
		msg := q[0]
		if len(q) == 1 {
			delete(c.g.mail, key)
		} else {
			c.g.mail[key] = q[1:]
		}
		p.SleepUntil(msg.arrival)
		return msg.payload, msg.bytes
	}
	if _, busy := c.g.recvQ[key]; busy {
		panic("mpisim: two concurrent Recv calls on the same (from, tag)")
	}
	rw := &recvWait{arrived: sim.NewCompletion(p.Kernel())}
	c.g.recvQ[key] = rw
	rw.arrived.Wait(p)
	return rw.msg.payload, rw.msg.bytes
}
