package mpisim

import (
	"testing"
	"testing/quick"

	"picmcio/internal/sim"
)

func world(size int) *World {
	return NewWorld(sim.NewKernel(), size, AlphaBeta(1e-6, 1.0/10e9))
}

func TestBarrierSynchronizes(t *testing.T) {
	w := world(8)
	var after []sim.Time
	w.Run(func(r *Rank) {
		r.Proc.Sleep(sim.Time(r.ID) * 0.01) // staggered arrivals
		r.Comm.Barrier()
		after = append(after, r.Proc.Now())
	})
	if len(after) != 8 {
		t.Fatalf("ranks finished: %d", len(after))
	}
	for _, v := range after {
		if v < 0.07 {
			t.Fatalf("rank left barrier at %v, before last arrival at 0.07", v)
		}
		if v != after[0] {
			t.Fatalf("ranks left barrier at different times: %v", after)
		}
	}
}

func TestAllreduce(t *testing.T) {
	w := world(16)
	w.Run(func(r *Rank) {
		sum := r.Comm.AllreduceF64(float64(r.ID), "sum")
		if sum != 120 {
			t.Errorf("rank %d: sum=%v, want 120", r.ID, sum)
		}
		max := r.Comm.AllreduceF64(float64(r.ID), "max")
		if max != 15 {
			t.Errorf("rank %d: max=%v", r.ID, max)
		}
		min := r.Comm.AllreduceI64(int64(r.ID+3), "min")
		if min != 3 {
			t.Errorf("rank %d: min=%v", r.ID, min)
		}
	})
}

func TestExscan(t *testing.T) {
	w := world(10)
	w.Run(func(r *Rank) {
		off := r.Comm.ExscanI64(int64(100 + r.ID))
		want := int64(0)
		for i := 0; i < r.ID; i++ {
			want += int64(100 + i)
		}
		if off != want {
			t.Errorf("rank %d: exscan=%d, want %d", r.ID, off, want)
		}
	})
}

func TestAllgather(t *testing.T) {
	w := world(5)
	w.Run(func(r *Rank) {
		all := r.Comm.AllgatherI64(int64(r.ID * r.ID))
		for i, v := range all {
			if v != int64(i*i) {
				t.Errorf("rank %d: all[%d]=%d", r.ID, i, v)
			}
		}
	})
}

func TestBcast(t *testing.T) {
	w := world(6)
	w.Run(func(r *Rank) {
		v := int64(-1)
		if r.ID == 2 {
			v = 777
		}
		got := r.Comm.BcastI64(v, 2)
		if got != 777 {
			t.Errorf("rank %d: bcast=%d", r.ID, got)
		}
	})
}

func TestGathervBytes(t *testing.T) {
	w := world(4)
	w.Run(func(r *Rank) {
		data := []byte{byte(r.ID), byte(r.ID), byte(r.ID)}
		chunks := r.Comm.GathervBytes(int64(len(data)), data, 0)
		if r.ID != 0 {
			if chunks != nil {
				t.Errorf("rank %d: non-root got chunks", r.ID)
			}
			return
		}
		if len(chunks) != 4 {
			t.Fatalf("root got %d chunks", len(chunks))
		}
		for i, ch := range chunks {
			if ch.Rank != i || ch.N != 3 || ch.Data[0] != byte(i) {
				t.Errorf("chunk %d: %+v", i, ch)
			}
		}
	})
}

func TestSplit(t *testing.T) {
	w := world(12)
	w.Run(func(r *Rank) {
		sub := r.Comm.Split(r.ID%3, r.ID)
		if sub.Size() != 4 {
			t.Errorf("rank %d: sub size=%d, want 4", r.ID, sub.Size())
		}
		// Within the color group, ranks are ordered by key = world id.
		want := r.ID / 3
		if sub.Rank() != want {
			t.Errorf("rank %d: sub rank=%d, want %d", r.ID, sub.Rank(), want)
		}
		// Collectives on the subcommunicator work.
		sum := sub.AllreduceI64(1, "sum")
		if sum != 4 {
			t.Errorf("rank %d: sub sum=%d", r.ID, sum)
		}
	})
}

func TestSendRecvBothOrders(t *testing.T) {
	// Receiver-first and sender-first must both work.
	for _, recvFirst := range []bool{true, false} {
		w := world(2)
		var got any
		w.Run(func(r *Rank) {
			if r.ID == 0 {
				if !recvFirst {
					r.Proc.Sleep(0.01)
				}
				got, _ = r.Comm.Recv(1, 7)
			} else {
				if recvFirst {
					r.Proc.Sleep(0.01)
				}
				r.Comm.Send(0, 7, 1024, "payload")
			}
		})
		if got != "payload" {
			t.Fatalf("recvFirst=%v: got %v", recvFirst, got)
		}
	}
}

func TestMessageTransferTakesTime(t *testing.T) {
	w := NewWorld(sim.NewKernel(), 2, AlphaBeta(1e-3, 1e-6))
	var recvAt sim.Time
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Comm.Send(1, 0, 1000, nil)
		} else {
			r.Comm.Recv(0, 0)
			recvAt = r.Proc.Now()
		}
	})
	// alpha + 1000*beta = 1ms + 1ms = 2ms.
	if recvAt < 0.0019 || recvAt > 0.0021 {
		t.Fatalf("message arrived at %v, want ~2ms", recvAt)
	}
}

func TestCollectiveCostScalesWithRanks(t *testing.T) {
	elapsed := func(n int) sim.Time {
		w := NewWorld(sim.NewKernel(), n, AlphaBeta(1e-3, 0))
		var end sim.Time
		w.Run(func(r *Rank) {
			r.Comm.Barrier()
			end = r.Proc.Now()
		})
		return end
	}
	if e2, e64 := elapsed(2), elapsed(64); e64 <= e2 {
		t.Fatalf("64-rank barrier (%v) not slower than 2-rank (%v)", e64, e2)
	}
}

// Property: ExscanI64 of all-ones yields each rank its own id, for any
// world size.
func TestExscanIdentityProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		ok := true
		w := world(n)
		w.Run(func(r *Rank) {
			if r.Comm.ExscanI64(1) != int64(r.ID) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := world(4096)
	total := int64(0)
	w.Run(func(r *Rank) {
		s := r.Comm.AllreduceI64(1, "sum")
		if r.ID == 0 {
			total = s
		}
	})
	if total != 4096 {
		t.Fatalf("total=%d", total)
	}
}

func TestExscanVecI64(t *testing.T) {
	w := world(6)
	w.Run(func(r *Rank) {
		// Variable i contributes rank*(i+1) elements.
		v := []int64{int64(r.ID), int64(2 * r.ID), 7}
		offs, totals := r.Comm.ExscanVecI64(v)
		wantOff := []int64{0, 0, 0}
		for i := 0; i < r.ID; i++ {
			wantOff[0] += int64(i)
			wantOff[1] += int64(2 * i)
			wantOff[2] += 7
		}
		for j := range v {
			if offs[j] != wantOff[j] {
				t.Errorf("rank %d var %d: off=%d want %d", r.ID, j, offs[j], wantOff[j])
			}
		}
		if totals[0] != 15 || totals[1] != 30 || totals[2] != 42 {
			t.Errorf("rank %d: totals=%v", r.ID, totals)
		}
	})
}

func TestExscanVecMatchesScalar(t *testing.T) {
	w := world(9)
	w.Run(func(r *Rank) {
		v := int64(r.ID*r.ID + 1)
		offs, _ := r.Comm.ExscanVecI64([]int64{v})
		scalar := r.Comm.ExscanI64(v)
		if offs[0] != scalar {
			t.Errorf("rank %d: vec %d != scalar %d", r.ID, offs[0], scalar)
		}
	})
}

// TestAttachExternalProcs: processes the caller owns (not spawned by
// World.Spawn) attach as world ranks and complete collectives together
// with identical semantics — the hook co-scheduled job writers use.
func TestAttachExternalProcs(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, 4, AlphaBeta(1e-6, 1.0/10e9))
	sums := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("ext", func(p *sim.Proc) {
			r := w.Attach(i, p)
			p.Sleep(sim.Time(i) * 0.01) // staggered arrivals
			sums[i] = r.Comm.AllreduceF64(float64(i), "sum")
		})
	}
	k.Run()
	for i, s := range sums {
		if s != 6 {
			t.Errorf("attached rank %d: sum=%v, want 6", i, s)
		}
	}
}

func TestAttachRejectsOutOfRangeRank(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, 2, nil)
	k.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("attach of rank 2 to a world of size 2 did not panic")
			}
		}()
		w.Attach(2, p)
	})
	k.Run()
}
