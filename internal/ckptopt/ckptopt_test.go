package ckptopt_test

import (
	"math"
	"testing"

	"picmcio/internal/ckptopt"
)

// TestYoungHandComputed pins the first-order closed form against
// hand-computed values.
func TestYoungHandComputed(t *testing.T) {
	cases := []struct {
		save, mtbf, want float64
	}{
		// √(2·2·10000) = √40000
		{2, 10000, 200},
		// √(2·0.5·1800) = √1800
		{0.5, 1800, 42.42640687119285},
		// √(2·30·3.6e6): a 30 s checkpoint against a 1000 h MTBF
		{30, 3.6e6, 14696.938456699068},
	}
	for _, c := range cases {
		if got := ckptopt.Young(c.save, c.mtbf); math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("Young(%v, %v) = %v, want %v", c.save, c.mtbf, got, c.want)
		}
	}
}

// TestDalyHandComputed pins the higher-order form: for δ=2, M=10⁴,
// ξ = √(δ/2M) = 0.01 and τ* = 200·(1 + 0.01/3 + 0.0001/9) − 2.
func TestDalyHandComputed(t *testing.T) {
	want := 200*(1+0.01/3+0.0001/9) - 2 // 198.66888888…
	if got := ckptopt.Daly(2, 10000); math.Abs(got-want) > 1e-9 {
		t.Errorf("Daly(2, 10000) = %v, want %v", got, want)
	}
	// Daly sits below Young (the −δ correction dominates at small δ/M).
	if y := ckptopt.Young(2, 10000); !(ckptopt.Daly(2, 10000) < y) {
		t.Errorf("Daly %v not below Young %v", ckptopt.Daly(2, 10000), y)
	}
	// Past δ = 2M the form saturates at the failure scale itself.
	if got := ckptopt.Daly(10, 5); got != 5 {
		t.Errorf("Daly(10, 5) = %v, want the MTBF 5", got)
	}
	if got := ckptopt.Daly(7, 3.5); got != 3.5 {
		t.Errorf("Daly(7, 3.5) = %v, want 3.5", got)
	}
}

// TestDegenerateInputs: zero/negative/NaN/Inf inputs return explicit
// zeros from the closed forms and errors from Optimize — nothing leaks
// NaN into a campaign.
func TestDegenerateInputs(t *testing.T) {
	for _, f := range []func(a, b float64) float64{ckptopt.Young, ckptopt.Daly} {
		for _, c := range [][2]float64{
			{0, 100}, {-1, 100}, {2, 0}, {2, -5},
			{math.NaN(), 100}, {2, math.NaN()}, {math.Inf(1), 100}, {2, math.Inf(1)},
		} {
			if got := f(c[0], c[1]); got != 0 {
				t.Errorf("closed form(%v, %v) = %v, want 0", c[0], c[1], got)
			}
		}
	}
	if got := ckptopt.OptimalNumeric(0, 1, 100); got != 0 {
		t.Errorf("OptimalNumeric with zero save = %v, want 0", got)
	}
	if got := ckptopt.Waste(0, 1, 1, 100); got != 1 {
		t.Errorf("Waste at zero interval = %v, want 1", got)
	}

	bad := []ckptopt.Costs{
		{MTBFSec: 0, DurableSaveSec: 1},                                   // zero MTBF
		{MTBFSec: math.Inf(1), DurableSaveSec: 1},                         // infinite MTBF
		{MTBFSec: 100, DurableSaveSec: 0},                                 // free checkpoints
		{MTBFSec: 100, DurableSaveSec: 1, SurvivalProb: 1.5},              // probability > 1
		{MTBFSec: 100, DurableSaveSec: 1, BufferedSaveSec: -1},            // negative save
		{MTBFSec: 100, DurableSaveSec: 1, DurableLagSec: math.Inf(1)},     // infinite lag
		{MTBFSec: 100, DurableSaveSec: 1, BufferedRestartSec: math.NaN()}, // NaN restart
		{MTBFSec: math.NaN(), DurableSaveSec: 1, BufferedSaveSec: 0.5},    // NaN MTBF
		{MTBFSec: 100, DurableSaveSec: 1, DurableRestartSec: -3},          // negative restart
		{MTBFSec: 100, DurableSaveSec: math.Inf(1), BufferedSaveSec: 1},   // infinite save
		{MTBFSec: 100, DurableSaveSec: 1, SurvivalProb: math.NaN()},       // NaN probability
		{MTBFSec: 100, DurableSaveSec: 1, BufferedSaveSec: math.Inf(1)},   // infinite buffered
	}
	for _, c := range bad {
		if _, err := ckptopt.Optimize(c); err == nil {
			t.Errorf("Optimize(%+v) accepted degenerate costs", c)
		}
	}
}

// TestRestartLargerThanMTBF: a restart cost exceeding the MTBF is a
// legitimate (grim) regime, not an error — the machine fails faster
// than it reboots, waste saturates near 1, and the recommendation stays
// finite and positive.
func TestRestartLargerThanMTBF(t *testing.T) {
	p, err := ckptopt.Optimize(ckptopt.Costs{
		MTBFSec:           100,
		DurableSaveSec:    10,
		DurableRestartSec: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := p.PFS
	if !(l.NumericSec > 0) || math.IsInf(l.NumericSec, 0) {
		t.Fatalf("numeric optimum %v not positive finite", l.NumericSec)
	}
	if l.NumericSec >= l.MTBFSec {
		t.Errorf("numeric optimum %v should sit below the MTBF %v", l.NumericSec, l.MTBFSec)
	}
	if !(l.WasteAtOpt > 0.9 && l.WasteAtOpt < 1) {
		t.Errorf("waste %v should saturate near 1 when restart > MTBF", l.WasteAtOpt)
	}
}

// TestClosedFormVsNumeric: across the practical δ/M range the numeric
// minimizer of the exact model agrees with Daly's closed form within
// tolerance (tight at small ratios, loosening as the expansion's
// assumptions fray), and Young stays in the same neighbourhood.
func TestClosedFormVsNumeric(t *testing.T) {
	cases := []struct {
		save, mtbf, tol float64
	}{
		{0.02, 9e8, 0.01}, // measured staged save vs a 500k-node-hour MTBF
		{2, 1e4, 0.01},    // δ/M = 2·10⁻⁴
		{30, 3.6e6, 0.01}, // 30 s checkpoint, 1000 h MTBF
		{10, 1e4, 0.02},   // δ/M = 10⁻³
		{100, 1e4, 0.05},  // δ/M = 10⁻², expansion strain shows
	}
	for _, c := range cases {
		num := ckptopt.OptimalNumeric(c.save, 0, c.mtbf)
		daly := ckptopt.Daly(c.save, c.mtbf)
		if rel := math.Abs(num-daly) / num; rel > c.tol {
			t.Errorf("δ=%v M=%v: numeric %v vs Daly %v diverge by %.3f (tol %.3f)",
				c.save, c.mtbf, num, daly, rel, c.tol)
		}
		young := ckptopt.Young(c.save, c.mtbf)
		if rel := math.Abs(num-young) / num; rel > 3*c.tol {
			t.Errorf("δ=%v M=%v: numeric %v vs Young %v diverge by %.3f",
				c.save, c.mtbf, num, young, rel)
		}
		// The numeric point is a genuine minimum of the waste curve.
		w := ckptopt.Waste(num, c.save, 0, c.mtbf)
		for _, x := range []float64{0.5, 0.8, 1.25, 2} {
			if wx := ckptopt.Waste(x*num, c.save, 0, c.mtbf); wx < w-1e-12 {
				t.Errorf("δ=%v M=%v: waste at %gτ* (%v) below waste at τ* (%v)", c.save, c.mtbf, x, wx, w)
			}
		}
		// The restart multiplier scales waste but never moves the argmin
		// in the exact segment model.
		numR := ckptopt.OptimalNumeric(c.save, c.mtbf/2, c.mtbf)
		if rel := math.Abs(num-numR) / num; rel > 1e-6 {
			t.Errorf("δ=%v M=%v: restart cost moved the numeric optimum by %.2g", c.save, c.mtbf, rel)
		}
	}
}

// TestTwoLevelPlan exercises the survival weighting: the buffered
// level's restart penalty interpolates between the redrain path (s=1)
// and the durable-fallback path (s=0), the survival-weighted Young
// interval diverges (reported as 0) at s=0, and the buffered level is
// recommended whenever buffered saves are cheaper.
func TestTwoLevelPlan(t *testing.T) {
	base := ckptopt.Costs{
		MTBFSec:            9e8, // 500k node-hours over 2 nodes
		BufferedSaveSec:    0.02,
		DurableSaveSec:     0.08,
		BufferedRestartSec: 120,
		DurableRestartSec:  180,
		DurableLagSec:      0.5,
	}

	surviving := base
	surviving.SurvivalProb = 1
	p1, err := ckptopt.Optimize(surviving)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Buffered == nil {
		t.Fatal("staging costs produced no buffered level")
	}
	if got := p1.Buffered.RestartSec; got != base.BufferedRestartSec {
		t.Errorf("s=1 restart penalty %v, want the pure redrain path %v", got, base.BufferedRestartSec)
	}
	if want := ckptopt.Young(base.BufferedSaveSec, base.MTBFSec); math.Abs(p1.SurvivalYoungSec-want) > 1e-9*want {
		t.Errorf("s=1 survival-weighted Young %v, want plain Young %v", p1.SurvivalYoungSec, want)
	}

	dying := base
	dying.SurvivalProb = 0
	p0, err := ckptopt.Optimize(dying)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.DurableRestartSec + base.DurableLagSec; p0.Buffered.RestartSec != want {
		t.Errorf("s=0 restart penalty %v, want durable fallback %v", p0.Buffered.RestartSec, want)
	}
	if p0.SurvivalYoungSec != 0 {
		t.Errorf("s=0 survival-weighted Young %v, want 0 (diverged)", p0.SurvivalYoungSec)
	}

	half := base
	half.SurvivalProb = 0.5
	ph, err := ckptopt.Optimize(half)
	if err != nil {
		t.Fatal(err)
	}
	if want := ckptopt.Young(base.BufferedSaveSec, 2*base.MTBFSec); math.Abs(ph.SurvivalYoungSec-want) > 1e-9*want {
		t.Errorf("s=0.5 survival-weighted Young %v, want √2-scaled %v", ph.SurvivalYoungSec, want)
	}

	// Cheaper buffered saves ⇒ shorter optimal interval, lower waste,
	// and the recommendation picks the buffered level.
	for _, p := range []ckptopt.Plan{p1, p0, ph} {
		if !(p.Buffered.NumericSec < p.PFS.NumericSec) {
			t.Errorf("buffered optimum %v not shorter than PFS %v", p.Buffered.NumericSec, p.PFS.NumericSec)
		}
		if got := p.Recommended().Name; got != "buffered" {
			t.Errorf("recommended level %q, want buffered", got)
		}
		if p.IntervalSec() != p.Buffered.NumericSec {
			t.Errorf("IntervalSec %v != buffered optimum %v", p.IntervalSec(), p.Buffered.NumericSec)
		}
		if got := len(p.Levels()); got != 2 {
			t.Errorf("Levels() returned %d levels, want 2", got)
		}
	}

	// Without staging costs the plan is single-level.
	direct := base
	direct.BufferedSaveSec = 0
	pd, err := ckptopt.Optimize(direct)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Buffered != nil || pd.SurvivalYoungSec != 0 {
		t.Error("direct-only costs grew a buffered level")
	}
	if got := pd.Recommended().Name; got != "pfs" {
		t.Errorf("recommended level %q, want pfs", got)
	}
	if got := len(pd.Levels()); got != 1 {
		t.Errorf("Levels() returned %d levels, want 1", got)
	}
}
