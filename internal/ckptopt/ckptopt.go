// Package ckptopt computes optimal checkpoint intervals from measured
// costs: the classical Young and Daly closed forms, an exact
// expected-waste model under exponential failures with a numerical
// minimizer that cross-checks the closed forms, and a two-level variant
// for burst-buffer staging where a checkpoint returns at *buffered*
// durability (cheap, node-local NVMe) but survives a node failure only
// with the machine's NVMe survival probability.
//
// The package is deliberately a leaf: it knows nothing about the
// simulator. Costs come in as plain seconds — measured by probe runs
// through the staging tier (jobs.MeasureCheckpointCosts) rather than
// hand-fed constants — and the Plan goes back out as plain seconds that
// jobs.Spec.IntervalFrom stamps onto a workload's compute phase.
//
// # The model
//
// A run alternates τ seconds of useful compute with a checkpoint of cost
// δ. Failures arrive as a Poisson process with mean time between
// failures M (job-level: the per-node MTBF divided by the node count).
// After a failure the job pays a restart cost R and re-executes the work
// lost since the last restartable checkpoint. Under exponential
// failures the expected wall-clock to finish one τ-segment is
//
//	E(τ) = e^{R/M} · M · (e^{(τ+δ)/M} − 1)
//
// (Daly's exact segment model), so the expected waste fraction is
// 1 − τ/E(τ). Young's first-order optimum is τ* = √(2δM); Daly's
// higher-order form refines it. The numerical minimizer locates the
// true argmin of E(τ)/τ, which the closed forms approximate — agreement
// within a few percent for δ ≪ M is the package's self-check.
//
// # Two levels
//
// With a staging tier the save cost the application pays is the
// *buffered* cost δ_b, but what a restart recovers depends on the
// failure: with probability s (the NVMe survival probability) the
// staged state outlives the node and the job restarts from the buffered
// position after redraining it; with probability 1−s the node takes its
// NVMe with it and the restart falls back to the PFS-durable position,
// which trails the buffered one by the measured drain lag. The
// two-level plan therefore optimizes the buffered cadence with a
// survival-weighted restart penalty
//
//	R₂ = s·R_b + (1−s)·(R_p + Λ)
//
// where Λ is the measured durable lag. The survival-weighted Young
// interval √(2·δ_b·M/s) — the cadence that would be optimal if buffered
// checkpoints only protected against the failures they can actually
// recover from — is reported alongside for the s → 0 contrast: on a
// machine whose NVMe dies with the node it diverges, because no
// buffered cadence alone protects anything.
package ckptopt

import (
	"fmt"
	"math"
)

// Costs are the measured per-level checkpoint/restart inputs the
// optimizer consumes, all in seconds. cluster.Machine.CheckpointCosts
// fills the availability-derived fields (MTBF, survival, base restart);
// jobs.MeasureCheckpointCosts fills the measured ones from probe runs.
type Costs struct {
	// MTBFSec is the job-level mean time between failures: the machine's
	// per-node MTBF divided by the job's node count.
	MTBFSec float64
	// SurvivalProb is the probability the staged NVMe state outlives a
	// node failure (0: on-board drive dies with the node, 1:
	// fabric-attached enclosure survives).
	SurvivalProb float64

	// BufferedSaveSec is the measured cost of one checkpoint at buffered
	// durability — what the application pays per save through the
	// staging tier. Zero means the machine has no staging tier and the
	// plan carries only the PFS level.
	BufferedSaveSec float64
	// DurableSaveSec is the measured cost of one checkpoint written
	// synchronously to the parallel file system.
	DurableSaveSec float64

	// BufferedRestartSec is the reboot/reschedule delay plus the redrain
	// of surviving staged state before a buffered restart can read its
	// checkpoint.
	BufferedRestartSec float64
	// DurableRestartSec is the reboot/reschedule delay plus re-reading
	// the checkpoint from the PFS.
	DurableRestartSec float64

	// DurableLagSec is the measured drain lag Λ: how far the PFS-durable
	// position trails the buffered one in steady state — the extra work
	// a restart loses when the failure destroys the staged state.
	DurableLagSec float64
}

// Validate rejects inputs the optimizer cannot price.
func (c Costs) Validate() error {
	if !(c.MTBFSec > 0) || math.IsInf(c.MTBFSec, 0) {
		return fmt.Errorf("ckptopt: MTBF must be positive and finite, got %v", c.MTBFSec)
	}
	if !(c.DurableSaveSec > 0) || math.IsInf(c.DurableSaveSec, 0) {
		return fmt.Errorf("ckptopt: durable save cost must be positive and finite, got %v", c.DurableSaveSec)
	}
	if c.BufferedSaveSec < 0 || math.IsInf(c.BufferedSaveSec, 0) || math.IsNaN(c.BufferedSaveSec) {
		return fmt.Errorf("ckptopt: buffered save cost %v outside [0, ∞)", c.BufferedSaveSec)
	}
	if c.SurvivalProb < 0 || c.SurvivalProb > 1 || math.IsNaN(c.SurvivalProb) {
		return fmt.Errorf("ckptopt: survival probability %v outside [0, 1]", c.SurvivalProb)
	}
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"buffered restart", c.BufferedRestartSec},
		{"durable restart", c.DurableRestartSec},
		{"durable lag", c.DurableLagSec},
	} {
		if v.v < 0 || math.IsInf(v.v, 0) || math.IsNaN(v.v) {
			return fmt.Errorf("ckptopt: %s %v outside [0, ∞)", v.name, v.v)
		}
	}
	return nil
}

// Young is the first-order optimal interval √(2δM) for checkpoint cost
// save and mean time between failures mtbf, both in seconds. Degenerate
// inputs (non-positive, NaN or infinite) return 0 rather than NaN.
func Young(saveSec, mtbfSec float64) float64 {
	if !(saveSec > 0) || !(mtbfSec > 0) || math.IsInf(saveSec, 0) || math.IsInf(mtbfSec, 0) {
		return 0
	}
	return math.Sqrt(2 * saveSec * mtbfSec)
}

// Daly is Daly's higher-order refinement of Young's interval: for
// δ < 2M,
//
//	τ* = √(2δM) · [1 + ⅓·√(δ/2M) + (1/9)·(δ/2M)] − δ
//
// and τ* = M once the checkpoint cost reaches 2M (checkpointing is so
// expensive the best cadence is the failure scale itself). Degenerate
// inputs return 0 as in Young.
func Daly(saveSec, mtbfSec float64) float64 {
	if !(saveSec > 0) || !(mtbfSec > 0) || math.IsInf(saveSec, 0) || math.IsInf(mtbfSec, 0) {
		return 0
	}
	if saveSec >= 2*mtbfSec {
		return mtbfSec
	}
	xi := math.Sqrt(saveSec / (2 * mtbfSec))
	return math.Sqrt(2*saveSec*mtbfSec)*(1+xi/3+xi*xi/9) - saveSec
}

// expectedStretch is E(τ)/τ: the expected wall-clock seconds per second
// of useful work under the exact exponential-failure segment model.
// Always > 1 for δ, R > 0; the numerical optimum minimizes it.
func expectedStretch(tau, save, restart, mtbf float64) float64 {
	return math.Exp(restart/mtbf) * mtbf * math.Expm1((tau+save)/mtbf) / tau
}

// Waste is the expected wasted fraction of wall-clock time — checkpoint
// overhead, lost work and restarts together — when checkpointing every
// tau seconds of compute with the given save cost, restart cost and
// MTBF (all seconds): 1 − τ/E(τ) under the exact segment model. It
// returns 1 (everything wasted) for degenerate inputs where no progress
// is possible.
func Waste(tauSec, saveSec, restartSec, mtbfSec float64) float64 {
	if !(tauSec > 0) || !(mtbfSec > 0) || !(saveSec >= 0) || !(restartSec >= 0) {
		return 1
	}
	h := expectedStretch(tauSec, saveSec, restartSec, mtbfSec)
	if math.IsInf(h, 0) || math.IsNaN(h) || h <= 0 {
		return 1
	}
	return 1 - 1/h
}

// OptimalNumeric minimizes the exact expected stretch over the
// interval by golden-section search in log space — the cross-check the
// closed forms are validated against. The optimum of the exact model
// always lies below M (at τ = M the marginal exposure already outweighs
// the saved overhead), so the bracket [tiny, 4M] is safe. Degenerate
// inputs return 0.
func OptimalNumeric(saveSec, restartSec, mtbfSec float64) float64 {
	if !(saveSec > 0) || !(mtbfSec > 0) || math.IsInf(saveSec, 0) || math.IsInf(mtbfSec, 0) {
		return 0
	}
	lo := math.Log(math.Min(saveSec, mtbfSec) * 1e-4)
	hi := math.Log(4 * mtbfSec)
	f := func(u float64) float64 {
		return expectedStretch(math.Exp(u), saveSec, restartSec, mtbfSec)
	}
	const phi = 0.6180339887498949 // (√5−1)/2
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && b-a > 1e-12; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return math.Exp((a + b) / 2)
}

// Level is one durability level's interval recommendation.
type Level struct {
	// Name is "buffered" or "pfs".
	Name string
	// SaveSec and RestartSec are the level's effective per-checkpoint
	// cost and (for the buffered level, survival-weighted) restart
	// penalty.
	SaveSec    float64
	RestartSec float64
	// MTBFSec is the job-level MTBF the level optimizes against.
	MTBFSec float64

	// YoungSec and DalySec are the closed-form intervals; NumericSec is
	// the exact-model minimizer that cross-checks them.
	YoungSec   float64
	DalySec    float64
	NumericSec float64
	// WasteAtOpt is the expected wasted fraction at NumericSec.
	WasteAtOpt float64
}

// optimize fills the level's recommendations from its cost fields.
func (l *Level) optimize() {
	l.YoungSec = Young(l.SaveSec, l.MTBFSec)
	l.DalySec = Daly(l.SaveSec, l.MTBFSec)
	l.NumericSec = OptimalNumeric(l.SaveSec, l.RestartSec, l.MTBFSec)
	l.WasteAtOpt = Waste(l.NumericSec, l.SaveSec, l.RestartSec, l.MTBFSec)
}

// Waste evaluates the level's expected waste fraction at an arbitrary
// interval — the curve FigInterval plots around the optimum.
func (l Level) Waste(tauSec float64) float64 {
	return Waste(tauSec, l.SaveSec, l.RestartSec, l.MTBFSec)
}

// Plan is a machine's interval recommendation at every durability level.
type Plan struct {
	Costs Costs

	// PFS is the single-level plan: every checkpoint synchronously
	// durable on the parallel file system.
	PFS Level
	// Buffered is the two-level plan for the staging tier — buffered
	// save cost, survival-weighted restart penalty — or nil when the
	// machine has no staging tier.
	Buffered *Level

	// SurvivalYoungSec is the survival-weighted Young interval
	// √(2·δ_b·M/s): the buffered cadence counting only the failures a
	// buffered checkpoint can actually recover from. Zero when the
	// machine has no staging tier or its NVMe never survives (s = 0, the
	// weighted optimum diverges — buffered checkpoints alone protect
	// nothing).
	SurvivalYoungSec float64
}

// Optimize prices the costs into a Plan.
func Optimize(c Costs) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Costs: c}
	p.PFS = Level{
		Name:       "pfs",
		SaveSec:    c.DurableSaveSec,
		RestartSec: c.DurableRestartSec,
		MTBFSec:    c.MTBFSec,
	}
	p.PFS.optimize()
	if c.BufferedSaveSec > 0 {
		s := c.SurvivalProb
		p.Buffered = &Level{
			Name:    "buffered",
			SaveSec: c.BufferedSaveSec,
			// A failure recovers from the buffered position with
			// probability s (restart + redrain) and falls back to the
			// PFS-durable position with probability 1−s, paying the
			// durable restart plus the lagged work.
			RestartSec: s*c.BufferedRestartSec + (1-s)*(c.DurableRestartSec+c.DurableLagSec),
			MTBFSec:    c.MTBFSec,
		}
		p.Buffered.optimize()
		if s > 0 {
			p.SurvivalYoungSec = Young(c.BufferedSaveSec, c.MTBFSec/s)
		}
	}
	return p, nil
}

// Recommended is the level with the lower expected waste at its
// optimum: the cadence campaigns should run at. With a staging tier the
// buffered level wins whenever buffered saves are genuinely cheaper
// than synchronous PFS writes.
func (p Plan) Recommended() Level {
	if p.Buffered != nil && p.Buffered.WasteAtOpt < p.PFS.WasteAtOpt {
		return *p.Buffered
	}
	return p.PFS
}

// IntervalSec is the recommended compute interval between checkpoints.
func (p Plan) IntervalSec() float64 { return p.Recommended().NumericSec }

// Levels lists the plan's levels in presentation order (buffered first
// when present).
func (p Plan) Levels() []Level {
	if p.Buffered != nil {
		return []Level{*p.Buffered, p.PFS}
	}
	return []Level{p.PFS}
}
