// Package bit1 is the application shell of the simulated BIT1 code: the
// input deck (the five critical I/O parameters of §II), the time-step
// loop, and the two output paths the paper compares — the original serial
// stdio file-per-process writer and the openPMD adaptor (internal/core).
package bit1

import (
	"fmt"
	"strconv"
	"strings"
)

// InputDeck mirrors BIT1's input parameters. The five I/O-critical ones
// are named as in the paper; physics knobs cover the §III-C use case.
type InputDeck struct {
	DatFile  string // diagnostic snapshot base name
	DMPStep  int    // checkpoint period in steps
	MVFlag   int    // >0 activates time-dependent diagnostics
	MVStep   int    // steps between time-dependent diagnostics
	LastStep int    // final step (saves state and terminates)

	Cells     int
	Particles int // macro-particles per species
	Species   int
}

// DefaultDeck returns a deck shaped like the paper's production case but
// scaled in epochs: diagnostics every MVStep, checkpoints every DMPStep.
func DefaultDeck() InputDeck {
	return InputDeck{
		DatFile:   "bit1",
		DMPStep:   10000,
		MVFlag:    1,
		MVStep:    1000,
		LastStep:  200000,
		Cells:     100000,
		Particles: 10000000,
		Species:   3,
	}
}

// ParseDeck parses a key = value deck (the 1–3 kB input file every rank
// reads). Unknown keys are rejected so typos fail loudly.
func ParseDeck(src string) (InputDeck, error) {
	d := DefaultDeck()
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return d, fmt.Errorf("bit1: input line %d: expected key = value", ln+1)
		}
		key := strings.ToLower(strings.TrimSpace(line[:eq]))
		val := strings.TrimSpace(line[eq+1:])
		setInt := func(dst *int) error {
			v, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bit1: input line %d: bad integer %q", ln+1, val)
			}
			*dst = v
			return nil
		}
		var err error
		switch key {
		case "datfile":
			d.DatFile = val
		case "dmpstep":
			err = setInt(&d.DMPStep)
		case "mvflag":
			err = setInt(&d.MVFlag)
		case "mvstep":
			err = setInt(&d.MVStep)
		case "last_step", "laststep":
			err = setInt(&d.LastStep)
		case "cells":
			err = setInt(&d.Cells)
		case "particles":
			err = setInt(&d.Particles)
		case "species":
			err = setInt(&d.Species)
		default:
			return d, fmt.Errorf("bit1: input line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return d, err
		}
	}
	return d, d.Validate()
}

// Validate checks deck consistency.
func (d InputDeck) Validate() error {
	if d.LastStep < 1 {
		return fmt.Errorf("bit1: last_step must be >= 1")
	}
	if d.MVFlag > 0 && d.MVStep < 1 {
		return fmt.Errorf("bit1: mvstep must be >= 1 when mvflag > 0")
	}
	if d.DMPStep < 1 {
		return fmt.Errorf("bit1: dmpstep must be >= 1")
	}
	if d.DatFile == "" {
		return fmt.Errorf("bit1: datfile must be set")
	}
	return nil
}

// DiagEpochs reports how many diagnostic outputs the deck produces.
func (d InputDeck) DiagEpochs() int {
	if d.MVFlag <= 0 || d.MVStep < 1 {
		return 0
	}
	return d.LastStep / d.MVStep
}

// CheckpointEpochs reports how many checkpoint outputs the deck produces
// (including the final state save at last_step).
func (d InputDeck) CheckpointEpochs() int {
	n := d.LastStep / d.DMPStep
	if d.LastStep%d.DMPStep != 0 {
		n++ // final state save
	}
	return n
}
