package bit1

import (
	"strings"
	"testing"

	"picmcio/internal/darshan"
	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/units"
	"picmcio/internal/workload"
)

func TestParseDeck(t *testing.T) {
	d, err := ParseDeck(`
# BIT1 input
datfile = run42
dmpstep = 500
mvflag  = 1
mvstep  = 100
last_step = 1000
cells = 1024
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.DatFile != "run42" || d.DMPStep != 500 || d.MVStep != 100 || d.LastStep != 1000 || d.Cells != 1024 {
		t.Fatalf("deck=%+v", d)
	}
	if d.DiagEpochs() != 10 {
		t.Fatalf("diag epochs=%d", d.DiagEpochs())
	}
	if d.CheckpointEpochs() != 2 {
		t.Fatalf("checkpoint epochs=%d", d.CheckpointEpochs())
	}
}

func TestParseDeckErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense line",
		"unknown_key = 3",
		"dmpstep = abc",
		"last_step = 0",
		"mvflag = 1\nmvstep = 0",
	} {
		if _, err := ParseDeck(bad); err == nil {
			t.Errorf("deck %q accepted", bad)
		}
	}
}

func TestEpochSchedule(t *testing.T) {
	d := InputDeck{DatFile: "x", LastStep: 1000, MVFlag: 1, MVStep: 300, DMPStep: 500}
	eps := epochs(d)
	// Diags at 300, 600, 900; checkpoints at 500, 1000 (last step).
	var steps []int
	for _, e := range eps {
		steps = append(steps, e.step)
	}
	want := []int{300, 500, 600, 900, 1000}
	if len(steps) != len(want) {
		t.Fatalf("steps=%v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps=%v, want %v", steps, want)
		}
	}
	if !eps[4].checkpoint {
		t.Fatal("final step must checkpoint")
	}
}

// runBIT1 executes a small run and returns (fs, darshan log, elapsed).
func runBIT1(t *testing.T, mode IOMode, ranks int, toml string) (*lustre.FS, *darshan.Log, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(1e-6, 1.0/10e9))
	col := darshan.NewCollector()
	cfg := Config{
		Deck: InputDeck{
			DatFile: "bit1", LastStep: 400, MVFlag: 1, MVStep: 100, DMPStep: 200,
		},
		Sizing:         workload.Default(),
		OutDir:         "/out",
		Mode:           mode,
		OpenPMDOptions: toml,
	}
	// Scale sizing down so the test is light.
	cfg.Sizing.CheckpointTotalBytes = 4 * units.MiB
	cfg.Sizing.DiagSnapshotTotalBytes = 1 * units.MiB
	w.Run(func(r *mpisim.Rank) {
		env := &posix.Env{FS: fs, Client: &pfs.Client{}, Rank: r.ID, Monitor: col}
		if err := Run(cfg, RankEnv{Rank: r, Env: env}); err != nil {
			t.Error(err)
		}
	})
	end := k.Now()
	return fs, col.Snapshot(darshan.JobMeta{NProcs: ranks, RunSeconds: float64(end)}), end
}

func countFiles(fs *lustre.FS, dir string) (n int, total, maxSize int64) {
	fs.Namespace().WalkFiles(dir, func(p string, node *pfs.Node) {
		n++
		total += node.Size
		if node.Size > maxSize {
			maxSize = node.Size
		}
	})
	return
}

func TestOriginalFileCountMatchesTableII(t *testing.T) {
	fs, _, _ := runBIT1(t, IOOriginal, 8, "")
	n, total, _ := countFiles(fs, "/out")
	// Table II: 2·ranks + 6 files.
	if n != 2*8+6 {
		t.Fatalf("files=%d, want %d", n, 2*8+6)
	}
	if total <= 0 {
		t.Fatal("no data written")
	}
}

func TestOpenPMDFileCountMatchesTableII(t *testing.T) {
	// With NumAggregators=2: data.0 data.1 md.0 md.idx profiling.json
	// inside the .bp4 dir + 2 shared logs = 7 files (nAgg + 5).
	fs, _, _ := runBIT1(t, IOOpenPMD, 8, `
[adios2.engine.parameters]
NumAggregators = "2"
`)
	n, _, _ := countFiles(fs, "/out")
	if n != 2+5 {
		var names []string
		fs.Namespace().WalkFiles("/out", func(p string, _ *pfs.Node) { names = append(names, p) })
		t.Fatalf("files=%d, want 7: %v", n, names)
	}
}

func TestOpenPMDConstantFilesWith1Aggr(t *testing.T) {
	for _, ranks := range []int{2, 4, 8} {
		fs, _, _ := runBIT1(t, IOOpenPMD, ranks, `
[adios2.engine.parameters]
NumAggregators = "1"
`)
		n, _, _ := countFiles(fs, "/out")
		if n != 6 {
			t.Fatalf("ranks=%d: files=%d, want constant 6", ranks, n)
		}
	}
}

func TestCheckpointOverwriteKeepsPayloadBounded(t *testing.T) {
	// The .bp4 data payload must stay ~one snapshot even after several
	// epochs (iteration 0 overwrite), unlike a naive append.
	fs, _, _ := runBIT1(t, IOOpenPMD, 4, `
[adios2.engine.parameters]
NumAggregators = "1"
`)
	node, err := fs.Namespace().Lookup("/out/bit1_file.bp4/data.0")
	if err != nil {
		t.Fatal(err)
	}
	sz := workload.Default()
	sz.CheckpointTotalBytes = 4 * units.MiB
	sz.DiagSnapshotTotalBytes = 1 * units.MiB
	perRank := sz.PerRankCheckpoint(4) + sz.PerRankDiag(4)
	snapshot := 4 * perRank
	if node.Size > snapshot*3/2 {
		t.Fatalf("data.0 grew to %d (snapshot is %d): overwrite broken", node.Size, snapshot)
	}
}

func TestOpenPMDFasterThanOriginal(t *testing.T) {
	// The headline result: openPMD+BP4 writes the same volume in less
	// virtual time than the original stdio path.
	_, logO, endO := runBIT1(t, IOOriginal, 16, "")
	_, logP, endP := runBIT1(t, IOOpenPMD, 16, `
[adios2.engine.parameters]
NumAggregators = "2"
`)
	if endP >= endO {
		t.Fatalf("openPMD (%v) not faster than original (%v)", endP, endO)
	}
	_, metaO, _ := logO.PerProcessTimes()
	_, metaP, _ := logP.PerProcessTimes()
	if metaP >= metaO {
		t.Fatalf("openPMD metadata time %v not below original %v", metaP, metaO)
	}
}

func TestDarshanSeesOriginalWrites(t *testing.T) {
	_, log, _ := runBIT1(t, IOOriginal, 4, "")
	if log.TotalBytesWritten() == 0 {
		t.Fatal("darshan saw no writes")
	}
	// File-per-process: at least one record per rank file.
	perFile := log.FileSummaries()
	dats := 0
	for _, f := range perFile {
		if strings.Contains(f.Path, ".dat") || strings.Contains(f.Path, ".dmp") {
			dats++
		}
	}
	if dats < 8 {
		t.Fatalf("expected per-rank records, got %d", dats)
	}
}

func TestUnknownModeRejected(t *testing.T) {
	k := sim.NewKernel()
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, 1, nil)
	w.Run(func(r *mpisim.Rank) {
		env := &posix.Env{FS: fs, Client: &pfs.Client{}}
		err := Run(Config{Deck: DefaultDeck(), Sizing: workload.Default(), OutDir: "/o", Mode: IOMode(99)}, RankEnv{Rank: r, Env: env})
		if err == nil {
			t.Error("mode 99 accepted")
		}
	})
}
