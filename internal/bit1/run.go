package bit1

import (
	"fmt"

	"picmcio/internal/core"
	"picmcio/internal/mpisim"
	"picmcio/internal/openpmd"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/stdio"
	"picmcio/internal/workload"
)

// IOMode selects the output path.
type IOMode int

// Output paths of the paper.
const (
	IOOriginal IOMode = iota // serial stdio file-per-process (baseline)
	IOOpenPMD                // openPMD adaptor → ADIOS2 BP4
)

// String implements fmt.Stringer.
func (m IOMode) String() string {
	if m == IOOpenPMD {
		return "openPMD+BP4"
	}
	return "Original I/O"
}

// Config describes one BIT1 run.
type Config struct {
	Deck   InputDeck
	Sizing workload.Sizing
	OutDir string
	Mode   IOMode
	// OpenPMDOptions is the TOML configuration handed to the adaptor
	// (engine parameters, aggregators, compression).
	OpenPMDOptions string
	// ComputePerStep charges virtual compute time per PIC step between
	// output epochs (0 for pure-I/O experiments).
	ComputePerStep sim.Duration
	// StdioOverhead is the per-flush synchronous cost of the original
	// stdio writer on the target machine (cluster.Machine.StdioWriteOverhead).
	StdioOverhead sim.Duration
}

// RankEnv supplies the per-rank simulation context.
type RankEnv struct {
	Rank *mpisim.Rank
	Env  *posix.Env
}

// Run executes the BIT1 time-step loop for one rank. It is the function
// launched once per rank under mpisim. Collective operations inside
// require every rank of the world to call Run with the same config.
func Run(cfg Config, re RankEnv) error {
	if err := cfg.Deck.Validate(); err != nil {
		return err
	}
	if err := readInputDeck(cfg, re); err != nil {
		return err
	}
	switch cfg.Mode {
	case IOOriginal:
		return runOriginal(cfg, re)
	case IOOpenPMD:
		return runOpenPMD(cfg, re)
	default:
		return fmt.Errorf("bit1: unknown I/O mode %d", cfg.Mode)
	}
}

// inputDeckBytes is the size of the input file every rank reads at start
// ("a relatively small (1-3 kB) file read by all processes", §II) — the
// only read operation in a BIT1 run, visible as the constant read bar of
// Fig. 5.
const inputDeckBytes = 2048

// readInputDeck has rank 0 stage the input file, then every rank read it.
func readInputDeck(cfg Config, re RankEnv) error {
	r, env, p := re.Rank, re.Env, re.Rank.Proc
	path := pfs.Join(cfg.OutDir, "..", cfg.Deck.DatFile+".inp")
	if r.ID == 0 {
		fd, err := env.Create(p, path)
		if err != nil {
			return err
		}
		fd.Write(p, inputDeckBytes, nil)
		fd.Close(p)
	}
	r.Comm.Barrier()
	fd, err := env.Open(p, path)
	if err != nil {
		return err
	}
	fd.Read(p, inputDeckBytes)
	fd.Close(p)
	r.Comm.Barrier()
	return nil
}

// epoch describes one output event in the step loop.
type epoch struct {
	step       int
	diag       bool
	checkpoint bool
}

// epochs enumerates the output schedule of a deck, in step order.
func epochs(d InputDeck) []epoch {
	var out []epoch
	for s := 1; s <= d.LastStep; s++ {
		diag := d.MVFlag > 0 && d.MVStep > 0 && s%d.MVStep == 0
		ck := s%d.DMPStep == 0 || s == d.LastStep
		if diag || ck {
			out = append(out, epoch{step: s, diag: diag, checkpoint: ck})
		}
	}
	return out
}

// sharedFileNames lists the rank-0 global outputs for a mode.
func sharedFileNames(cfg Config) []string {
	n := cfg.Sizing.SharedFilesOriginal
	if cfg.Mode == IOOpenPMD {
		n = cfg.Sizing.SharedFilesOpenPMD
	}
	names := make([]string, n)
	for i := range names {
		names[i] = pfs.Join(cfg.OutDir, fmt.Sprintf("%s_global_%d.dat", cfg.Deck.DatFile, i))
	}
	return names
}

// runOriginal is BIT1's baseline writer: every rank owns a .dat and a
// .dmp file, re-written at each epoch through buffered stdio, while rank 0
// additionally appends the global history files — the file-per-process
// pattern whose metadata cost collapses at scale (Figs. 2–5).
func runOriginal(cfg Config, re RankEnv) error {
	r, env, p := re.Rank, re.Env, re.Rank.Proc
	ranks := r.Comm.Size()
	sz := cfg.Sizing

	datPath := pfs.Join(cfg.OutDir, fmt.Sprintf("%s_%06d.dat", cfg.Deck.DatFile, r.ID))
	dmpPath := pfs.Join(cfg.OutDir, fmt.Sprintf("%s_%06d.dmp", cfg.Deck.DatFile, r.ID))

	var shared []*stdio.File
	if r.ID == 0 {
		if err := env.MkdirAll(p, cfg.OutDir); err != nil {
			return err
		}
		for _, name := range sharedFileNames(cfg) {
			f, err := stdio.Fopen(p, env, name, "w")
			if err != nil {
				return err
			}
			shared = append(shared, f)
		}
	}
	r.Comm.Barrier()

	prev := 0
	for _, ep := range epochs(cfg.Deck) {
		if cfg.ComputePerStep > 0 {
			p.Sleep(cfg.ComputePerStep * sim.Duration(ep.step-prev))
		}
		prev = ep.step
		if ep.diag {
			if err := writeStdioVolume(p, env, datPath, sz.PerRankDiag(ranks), sz.StdioChunk, cfg.StdioOverhead); err != nil {
				return err
			}
			for _, f := range shared {
				f.Fwrite(p, sz.SharedFileBytes, nil)
				f.Fflush(p)
			}
		}
		if ep.checkpoint {
			if err := writeStdioVolume(p, env, dmpPath, sz.PerRankCheckpoint(ranks), sz.StdioChunk, cfg.StdioOverhead); err != nil {
				return err
			}
		}
	}
	for _, f := range shared {
		f.Fclose(p)
	}
	r.Comm.Barrier()
	return nil
}

// writeStdioVolume re-creates path and streams n bytes through a stdio
// buffer of the given chunk size, mimicking BIT1's formatted output.
func writeStdioVolume(p *sim.Proc, env *posix.Env, path string, n, chunk int64, overhead sim.Duration) error {
	f, err := stdio.Fopen(p, env, path, "w")
	if err != nil {
		return err
	}
	f.SetBufSize(chunk)
	f.SetWriteOverhead(overhead)
	f.Fwrite(p, n, nil)
	f.Fclose(p)
	return nil
}

// runOpenPMD is the paper's integration: accumulate per-rank vectors,
// then save everything as openPMD iteration 0 (periodically overwritten
// with the latest system state) through the ADIOS2 BP4 engine.
func runOpenPMD(cfg Config, re RankEnv) error {
	r, env, p := re.Rank, re.Env, re.Rank.Proc
	ranks := r.Comm.Size()
	sz := cfg.Sizing

	if r.ID == 0 {
		if err := env.MkdirAll(p, cfg.OutDir); err != nil {
			return err
		}
	}
	r.Comm.Barrier()

	host := openpmd.Host{Proc: p, Env: env, Comm: r.Comm}
	ad, err := core.NewAdaptor(host, pfs.Join(cfg.OutDir, cfg.Deck.DatFile+"_file.bp4"), cfg.OpenPMDOptions)
	if err != nil {
		return err
	}

	var shared []*stdio.File
	if r.ID == 0 {
		for _, name := range sharedFileNames(cfg) {
			f, err := stdio.Fopen(p, env, name, "w")
			if err != nil {
				return err
			}
			shared = append(shared, f)
		}
	}

	varNames := snapshotVarNames(sz.NVars)
	elems := sz.PerRankSnapshotElems(ranks)

	prev := 0
	for _, ep := range epochs(cfg.Deck) {
		if cfg.ComputePerStep > 0 {
			p.Sleep(cfg.ComputePerStep * sim.Duration(ep.step-prev))
		}
		prev = ep.step
		if !ep.diag && !ep.checkpoint {
			continue
		}
		// Accumulate the latest system state (checkpoint + diagnostics)
		// into the global vectors, then flush as iteration 0.
		for i, name := range varNames {
			ad.AccumulateVolume(name, elems[i])
		}
		if err := ad.SaveIteration(0); err != nil {
			return err
		}
		if ep.diag {
			for _, f := range shared {
				f.Fwrite(p, sz.SharedFileBytes, nil)
				f.Fflush(p)
			}
		}
	}
	for _, f := range shared {
		f.Fclose(p)
	}
	if err := ad.Close(); err != nil {
		return err
	}
	r.Comm.Barrier()
	return nil
}

// snapshotVarNames builds the openPMD component names the snapshot is
// spread over: species × (position + momentum components).
func snapshotVarNames(n int) []string {
	species := []string{"e", "D+", "D"}
	records := []string{"position/x", "momentum/x", "momentum/y", "momentum/z"}
	var out []string
	for _, sp := range species {
		for _, rec := range records {
			if len(out) == n {
				return out
			}
			out = append(out, sp+"/"+rec)
		}
	}
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("meshes/profile%d", i))
	}
	return out
}
