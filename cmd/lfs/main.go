// Command lfs demonstrates Lustre striping control against the simulated
// file system, reproducing the paper's Table III command and Listing 1
// output.
//
//	lfs setstripe -c 8 -S 16M io_openPMD     # configure + create + show
//	lfs getstripe io_openPMD/dat_file.bp4/data.0
package main

import (
	"flag"
	"fmt"
	"os"

	"picmcio/internal/cluster"
	"picmcio/internal/lustre"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "setstripe":
		setstripe(os.Args[2:])
	case "getstripe":
		// getstripe needs a file to exist; this demo tool combines both
		// verbs on a fresh simulated FS, so getstripe alone re-creates
		// the default-layout file first.
		getstripe(os.Args[2:], 1, 1<<20)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lfs setstripe -c <count> -S <size> <dir>   (then shows getstripe of a file in <dir>)
  lfs getstripe <path>`)
	os.Exit(2)
}

func setstripe(args []string) {
	fs := flag.NewFlagSet("setstripe", flag.ExitOnError)
	count := fs.Int("c", 1, "stripe count (-1 = all OSTs)")
	size := fs.String("S", "1M", "stripe size")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	sz, err := units.ParseBytes(*size)
	if err != nil {
		fatal(err)
	}
	getstripe([]string{pfs.Join(fs.Arg(0), "dat_file.bp4", "data.0")}, *count, sz)
}

// getstripe creates the target on a simulated Dardel with the given
// directory layout and prints its stripe map.
func getstripe(args []string, count int, size int64) {
	if len(args) != 1 {
		usage()
	}
	path := pfs.Clean(args[0])
	dir, _ := pfs.Split(path)
	m := cluster.Dardel()
	k := m.NewKernel(1)
	sys, err := m.Build(k, 1, 1)
	if err != nil {
		fatal(err)
	}
	if err := sys.Lustre.SetStripe(dir, count, size); err != nil {
		fatal(err)
	}
	k.Spawn("w", func(p *sim.Proc) {
		env := &posix.Env{FS: sys.FS, Client: sys.Clients[0]}
		fd, err := env.Create(p, path)
		if err != nil {
			fatal(err)
		}
		fd.Write(p, 64<<20, nil)
		fd.Close(p)
	})
	k.Run()
	lay, err := sys.Lustre.GetStripe(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(lustre.FormatGetStripe(path[1:], lay))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfs:", err)
	os.Exit(1)
}
