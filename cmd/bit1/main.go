// Command bit1 runs one simulated BIT1 job on a chosen machine model and
// prints the Darshan-derived I/O summary — the quickest way to compare
// the original and openPMD output paths.
//
//	bit1 -machine dardel -nodes 10 -mode original
//	bit1 -machine dardel -nodes 10 -mode openpmd -aggregators 10 -compressor blosc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"picmcio/internal/bit1"
	"picmcio/internal/cluster"
	"picmcio/internal/compress"
	"picmcio/internal/darshan"
	"picmcio/internal/mpisim"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/units"
	"picmcio/internal/workload"
)

func main() {
	machine := flag.String("machine", "dardel", "machine model: discoverer|dardel|vega")
	nodes := flag.Int("nodes", 1, "node allocation")
	ranksPerNode := flag.Int("ranks-per-node", 128, "MPI ranks per node")
	mode := flag.String("mode", "openpmd", "I/O path: original|openpmd")
	aggregators := flag.Int("aggregators", 0, "BP4 aggregator count (0 = one per node)")
	compressor := flag.String("compressor", "", "compression operator: blosc|bzip2")
	deckPath := flag.String("input", "", "BIT1 input deck file (key = value)")
	diagEpochs := flag.Int("diag-epochs", 5, "diagnostic epochs to simulate")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var m cluster.Machine
	switch strings.ToLower(*machine) {
	case "discoverer":
		m = cluster.Discoverer()
	case "dardel":
		m = cluster.Dardel()
	case "vega":
		m = cluster.Vega()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}

	deck := bit1.DefaultDeck()
	deck.MVStep = 100
	deck.LastStep = *diagEpochs * 100
	deck.DMPStep = deck.LastStep
	if *deckPath != "" {
		src, err := os.ReadFile(*deckPath)
		if err != nil {
			fatal(err)
		}
		if deck, err = bit1.ParseDeck(string(src)); err != nil {
			fatal(err)
		}
	}

	ioMode := bit1.IOOpenPMD
	if strings.ToLower(*mode) == "original" {
		ioMode = bit1.IOOriginal
	}
	numAgg := *aggregators
	if numAgg == 0 {
		numAgg = *nodes
	}
	var toml strings.Builder
	fmt.Fprintf(&toml, "[adios2.engine.parameters]\nNumAggregators = \"%d\"\n", numAgg)
	if *compressor != "" {
		c, err := compress.New(*compressor, 8)
		if err != nil {
			fatal(err)
		}
		ratio := compress.Ratio(c, workload.Float64sToBytes(workload.SamplePayload(1<<15, *seed)))
		fmt.Fprintf(&toml, "SimCompressionRatio = \"%.4f\"\n\n[adios2.dataset.operators]\ntype = %q\n", ratio, *compressor)
	}

	k := m.NewKernel(*nodes)
	sys, err := m.Build(k, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	ranks := *nodes * *ranksPerNode
	w := mpisim.NewWorld(k, ranks, mpisim.AlphaBeta(m.NetAlpha, m.NetBeta))
	col := darshan.NewCollector()
	cfg := bit1.Config{
		Deck: deck, Sizing: workload.Default(), OutDir: "/scratch/bit1",
		Mode: ioMode, OpenPMDOptions: toml.String(),
		StdioOverhead: sim.Duration(m.StdioWriteOverhead),
	}
	var runErr error
	w.Run(func(r *mpisim.Rank) {
		node := r.ID / *ranksPerNode
		if node >= len(sys.Clients) {
			node = len(sys.Clients) - 1
		}
		env := &posix.Env{FS: sys.FS, Client: sys.Clients[node], Rank: r.ID, Monitor: col}
		if err := bit1.Run(cfg, bit1.RankEnv{Rank: r, Env: env}); err != nil && runErr == nil {
			runErr = err
		}
	})
	if runErr != nil {
		fatal(runErr)
	}
	log := col.Snapshot(darshan.JobMeta{
		Executable: "bit1 (" + ioMode.String() + ")", NProcs: ranks,
		Machine: m.Name, RunSeconds: float64(k.Now()),
	})
	fmt.Printf("machine=%s nodes=%d ranks=%d mode=%s\n", m.Name, *nodes, ranks, ioMode)
	fmt.Printf("virtual elapsed: %s\n", units.Seconds(float64(k.Now())))
	fmt.Print(log.Report())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bit1:", err)
	os.Exit(1)
}
