// Command experiments regenerates the paper's tables and figures on the
// simulated substrate. Each artifact prints as a text series or table;
// sweep-backed artifacts can emit machine-readable JSON instead.
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -list                # catalogue with descriptions
//	experiments -run fig2            # one artifact
//	experiments -run all             # everything (minutes)
//	experiments -run fig6 -nodes 200 # with explicit scale
//	experiments -json figsizing      # sweep table as JSON
//	experiments -parallel 8 figfault # bit-identical to -parallel 1
//	experiments -optimal campfail    # validate the ckptopt interval
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"picmcio/internal/experiments"
)

func main() {
	runWhat := flag.String("run", "all", "comma-separated artifact names (see -list), or all")
	list := flag.Bool("list", false, "print every artifact name with its description and exit")
	jsonOut := flag.Bool("json", false, "emit the sweep table as JSON instead of text (sweep-backed artifacts)")
	parallel := flag.Int("parallel", 1, "sweep trial worker pool size (output is bit-identical at any width)")
	nodes := flag.Int("nodes", 200, "node count for fixed-scale artifacts (fig5, fig6, fig8, fig9)")
	nodeList := flag.String("node-list", "", "comma-separated node counts for scaling artifacts (default: paper set)")
	ranksPerNode := flag.Int("ranks-per-node", 128, "MPI ranks per node")
	diagEpochs := flag.Int("diag-epochs", 5, "simulated diagnostic epochs (paper run: 200)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	burstPolicy := flag.String("burst-policy", "", "figburst drain policy override: immediate, watermark, epoch-end")
	campaignRuns := flag.Int("campaign-runs", 0, "campfail Monte-Carlo draws per cell (0 = auto-size to the expected-failure target)")
	campaignMTBF := flag.Float64("campaign-mtbf", 0, "campfail/figinterval per-node MTBF override in hours (0 = machine preset)")
	optimal := flag.Bool("optimal", false, "campfail validation mode: run at the ckptopt-recommended interval vs fixed baselines")
	schedJobs := flag.Int("sched-jobs", 0, "figsched expected jobs per campaign cell (0 = default 240)")
	flag.Parse()
	if *list {
		for _, a := range experiments.Catalog() {
			fmt.Printf("%-14s  %s\n", a.Name, a.Desc)
		}
		return
	}
	if args := flag.Args(); len(args) > 0 {
		// Positional form: `experiments figfault [figburst ...]`. Flags
		// must come first (flag parsing stops at the first positional),
		// and mixing the positional form with -run is ambiguous.
		for _, a := range args {
			if strings.HasPrefix(a, "-") {
				fatal(fmt.Errorf("flag %q after artifact names: flags must precede positional artifacts", a))
			}
		}
		if *runWhat != "all" {
			fatal(fmt.Errorf("use either -run or positional artifact names, not both"))
		}
		joined := strings.Join(args, ",")
		runWhat = &joined
	}

	o := experiments.Options{
		Seed:              *seed,
		RanksPerNode:      *ranksPerNode,
		DiagEpochs:        *diagEpochs,
		BurstPolicy:       *burstPolicy,
		Parallel:          *parallel,
		CampaignRuns:      *campaignRuns,
		CampaignMTBFHours: *campaignMTBF,
		CampaignOptimal:   *optimal,
		SchedJobs:         *schedJobs,
	}
	if *nodeList != "" {
		for _, part := range strings.Split(*nodeList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(err)
			}
			o.NodeCounts = append(o.NodeCounts, n)
		}
	}
	o = o.WithDefaults()

	names := strings.Split(*runWhat, ",")
	if *runWhat == "all" {
		names = nil
		for _, a := range experiments.Catalog() {
			names = append(names, a.Name)
		}
	}
	if *jsonOut && len(names) > 1 {
		// One table per document: concatenated top-level JSON values would
		// break any consumer doing a single parse of the output.
		fatal(fmt.Errorf("-json emits one JSON document; run one artifact per invocation (got %d)", len(names)))
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		a, ok := experiments.Lookup(name)
		if !ok {
			fatal(fmt.Errorf("unknown artifact %q (see -list)", name))
		}
		out, err := a.Run(o, *nodes)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if *jsonOut {
			if err := emitJSON(name, out); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			continue
		}
		fmt.Print(out.Text)
	}
}

// emitJSON writes the artifact's machine-readable form: the sweep table
// for sweep-backed artifacts, a {artifact, text} wrapper otherwise.
func emitJSON(name string, out experiments.Output) error {
	if out.Table != nil {
		buf, err := out.Table.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(buf)
		return nil
	}
	buf, err := json.MarshalIndent(struct {
		Artifact string `json:"artifact"`
		Text     string `json:"text"`
	}{name, out.Text}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(buf))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
