// Command experiments regenerates the paper's tables and figures on the
// simulated substrate. Each artifact prints as a text series or table;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -run fig2            # one artifact
//	experiments -run all             # everything (minutes)
//	experiments -run fig6 -nodes 200 # with explicit scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"picmcio/internal/experiments"
	"picmcio/internal/fault"
	"picmcio/internal/units"
)

func main() {
	runWhat := flag.String("run", "all", "artifact: fig2,fig3,fig4,fig5,fig6,fig7,fig8,fig9,figburst,figcontention,figfault,tab1,tab2,lst1,all")
	nodes := flag.Int("nodes", 200, "node count for fixed-scale artifacts (fig5, fig6, fig8, fig9)")
	nodeList := flag.String("node-list", "", "comma-separated node counts for scaling artifacts (default: paper set)")
	ranksPerNode := flag.Int("ranks-per-node", 128, "MPI ranks per node")
	diagEpochs := flag.Int("diag-epochs", 5, "simulated diagnostic epochs (paper run: 200)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	burstPolicy := flag.String("burst-policy", "", "figburst drain policy override: immediate, watermark, epoch-end")
	flag.Parse()
	if args := flag.Args(); len(args) > 0 {
		// Positional form: `experiments figfault [figburst ...]`. Flags
		// must come first (flag parsing stops at the first positional),
		// and mixing the positional form with -run is ambiguous.
		for _, a := range args {
			if strings.HasPrefix(a, "-") {
				fatal(fmt.Errorf("flag %q after artifact names: flags must precede positional artifacts", a))
			}
		}
		if *runWhat != "all" {
			fatal(fmt.Errorf("use either -run or positional artifact names, not both"))
		}
		joined := strings.Join(args, ",")
		runWhat = &joined
	}

	o := experiments.Options{
		Seed:         *seed,
		RanksPerNode: *ranksPerNode,
		DiagEpochs:   *diagEpochs,
		BurstPolicy:  *burstPolicy,
	}
	if *nodeList != "" {
		for _, part := range strings.Split(*nodeList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(err)
			}
			o.NodeCounts = append(o.NodeCounts, n)
		}
	}
	o = o.WithDefaults()

	artifacts := strings.Split(*runWhat, ",")
	if *runWhat == "all" {
		artifacts = []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "figburst", "figcontention", "figfault", "tab1", "tab2", "lst1"}
	}
	for _, a := range artifacts {
		if err := runArtifact(strings.TrimSpace(a), o, *nodes); err != nil {
			fatal(fmt.Errorf("%s: %w", a, err))
		}
	}
}

func runArtifact(name string, o experiments.Options, nodes int) error {
	switch name {
	case "fig2":
		ss, err := o.Fig2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeries("Fig 2: BIT1 original file I/O write throughput (GiB/s)", "nodes", ss))
	case "fig3":
		ss, err := o.Fig3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeries("Fig 3: original vs openPMD+BP4 on Dardel (GiB/s)", "nodes", ss))
	case "fig4":
		ss, err := o.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeries("Fig 4: BIT1 vs IOR on Dardel (GiB/s)", "nodes", ss))
	case "fig5":
		r, err := o.Fig5(nodes)
		if err != nil {
			return err
		}
		fmt.Printf("# Fig 5: avg I/O cost per process on Dardel, %d nodes (full-run equivalent)\n", nodes)
		fmt.Printf("%-24s  %-12s %-12s %-12s\n", "configuration", "read", "metadata", "write")
		fmt.Printf("%-24s  %-12s %-12s %-12s\n", "BIT1 Original I/O",
			units.Seconds(r.Original.ReadSec), units.Seconds(r.Original.MetaSec), units.Seconds(r.Original.WriteSec))
		fmt.Printf("%-24s  %-12s %-12s %-12s\n", "BIT1 openPMD + BP4",
			units.Seconds(r.OpenPMD.ReadSec), units.Seconds(r.OpenPMD.MetaSec), units.Seconds(r.OpenPMD.WriteSec))
		if r.Original.MetaSec > 0 {
			fmt.Printf("metadata reduction: %.2f%%\n", 100*(1-r.OpenPMD.MetaSec/r.Original.MetaSec))
		}
		if r.Original.WriteSec > 0 {
			fmt.Printf("write reduction:    %.2f%%\n\n", 100*(1-r.OpenPMD.WriteSec/r.Original.WriteSec))
		}
	case "fig6":
		s, err := o.Fig6(nodes, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeries(
			fmt.Sprintf("Fig 6: aggregator sweep on Dardel, %d nodes (GiB/s)", nodes), "aggregators", []experiments.Series{s}))
	case "fig7":
		ss, err := o.Fig7()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeries("Fig 7: Blosc + 1 AGGR vs original on Dardel (GiB/s)", "nodes", ss))
	case "fig8":
		r, err := o.Fig8(nodes)
		if err != nil {
			return err
		}
		fmt.Printf("# Fig 8: BP4 memcpy time from profiling.json, %d nodes\n", nodes)
		fmt.Printf("without compression: %.1f µs total memcpy\n", r.MemcpyMicrosNoComp)
		fmt.Printf("with Blosc:          %.1f µs total memcpy (compress: %.1f µs)\n\n",
			r.MemcpyMicrosBlosc, r.CompressMicrosBlosc)
	case "fig9":
		t, err := o.Fig9(nodes, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	case "figburst":
		ss, pts, err := o.FigBurst()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeries(
			"Fig B: direct vs burst-buffer-staged openPMD+BP4 on Dardel (GiB/s)", "nodes", ss))
		t := experiments.Table{
			Title:  "Fig B drain accounting (Dardel burst tier)",
			Header: []string{"nodes", "drain busy", "drain tail", "overlap", "absorbed", "fallback"},
		}
		for _, pt := range pts {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(pt.Nodes),
				units.Seconds(pt.DrainSec),
				units.Seconds(pt.DrainTailSec),
				fmt.Sprintf("%.1f%%", 100*pt.OverlapFrac),
				units.Bytes(pt.AbsorbedBytes),
				units.Bytes(pt.FallbackBytes),
			})
		}
		fmt.Println(t.Render())
	case "figcontention":
		t, rows, err := o.FigContention()
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		for _, row := range rows {
			res := row.Result
			fmt.Printf("%-10s  max slowdown %.3fx  Jain %.4f\n", row.Policy, res.MaxSlowdown(), res.Jain)
		}
		fmt.Println()
	case "figfault":
		t, cells, err := o.FigFault()
		if err != nil {
			return err
		}
		m := experiments.FaultMachine()
		fmt.Printf("# %s node MTBF %.0fk h: a 24 h full-machine run expects %.2f node failures\n",
			m.Name, m.MTBFNodeHours/1e3, fault.ExpectedFailures(m.MTBFNodeHours, m.MaxNodes, 24*3600))
		fmt.Println(t.Render())
		// Sanity line the grid exists to show: deferring write-back
		// raises what a node loss costs.
		lost := map[string]int{}
		for _, c := range cells {
			if c.QoS == "qos-off" {
				lost[c.Policy.String()] += c.Report.LostEpochsPFS
			}
		}
		fmt.Printf("lost epochs on node loss (qos-off, summed over kill times): immediate %d < epoch-end %d <= watermark %d\n",
			lost["immediate"], lost["epoch-end"], lost["watermark"])
		sc, err := o.FigFaultSurvival()
		if err != nil {
			return err
		}
		nl, nk := sc.NodeLoss.Fault, sc.NVMeKeep.Fault
		fmt.Printf("survivability (watermark drain, kill e%d+%.0f%%): node loss restarts from epoch %d (%s destroyed); "+
			"NVMe-surviving state restarts from epoch %d (%s redrained)\n\n",
			nl.Spec.KillEpoch, 100*nl.Spec.KillFrac, nl.RestartEpoch, units.Bytes(nl.LostBytes),
			nk.RestartEpoch, units.Bytes(nk.RedrainBytes))
	case "tab1":
		fmt.Println(experiments.Tab1().Render())
	case "tab2":
		t, err := o.Tab2()
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	case "lst1":
		out, err := experiments.Listing1()
		if err != nil {
			return err
		}
		fmt.Println("# Listing 1: lfs getstripe on simulated Dardel")
		fmt.Println("$ lfs getstripe io_openPMD/dat_file.bp4/data.0")
		fmt.Println(out)
	default:
		return fmt.Errorf("unknown artifact %q", name)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
