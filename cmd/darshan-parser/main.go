// Command darshan-parser reads a darshan-sim log (gzip-compressed JSON,
// as written by Log.Encode) from a real host file and prints the same
// summary report the experiments use, mirroring `darshan-parser --total`.
//
//	darshan-parser run.darshan.gz
package main

import (
	"fmt"
	"os"

	"picmcio/internal/darshan"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: darshan-parser <log-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	log, err := darshan.Parse(f)
	if err != nil {
		fatal(err)
	}
	fmt.Print(log.Report())
	fmt.Println("\nper-file summary:")
	for _, s := range log.FileSummaries() {
		fmt.Printf("  %-48s wrote=%-10d read=%-10d writers=%d\n",
			s.Path, s.BytesWritten, s.BytesRead, s.Writers)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "darshan-parser:", err)
	os.Exit(1)
}
