// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON results file, so CI can archive benchmark
// metrics (throughputs, slowdowns, fairness indices) across runs.
//
// Usage:
//
//	go test -bench 'BurstBuffer|Contention' -benchtime=1x -run '^$' . |
//	    go run ./cmd/benchjson -o BENCH_contention.json
//
// Each benchmark line of the form
//
//	BenchmarkName-8   1   123456 ns/op   1.886 max_slowdown_x ...
//
// becomes an entry with the iteration count and every metric pair.
//
// Compare mode is CI's bench-regression gate:
//
//	go run ./cmd/benchjson -compare -threshold 0.25 bench/BENCH_contention.json BENCH_contention.json
//
// It matches the candidate file's benchmarks against the committed
// baseline and fails (exit 1) when any gated metric — a metric whose
// unit name ends in "Bps" (GiBps, _bps, …) or in "_ratchet" (explicitly
// ratcheted better-is-bigger quantities, e.g. host-independent speedup
// ratios) — regresses by more than the threshold fraction, or when a
// baseline benchmark is missing from the candidate. Other metrics
// (seconds, counts, indices) are reported for context but do not gate:
// the simulator is deterministic, but they carry no better-is-bigger
// orientation — raw wall-clock rates in particular would gate on runner
// speed, not on the code.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file-level JSON shape.
type Report struct {
	Package    string   `json:"package,omitempty"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_contention.json", "output JSON path ('-' for stdout)")
	compare := flag.Bool("compare", false, "compare mode: benchjson -compare <baseline.json> <candidate.json>")
	threshold := flag.Float64("threshold", 0.25, "compare mode: fail when a throughput metric drops by more than this fraction")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("compare mode needs exactly two files: baseline and candidate (got %d)", flag.NArg()))
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fatal(err)
		}
		return
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}

// parse consumes go-test bench output, collecting header context lines
// (goos/goarch/pkg) and every Benchmark result line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	return rep, sc.Err()
}

// parseBench splits one result line into name, iterations and value/unit
// metric pairs.
func parseBench(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	r := Result{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, nil
}

// loadReport reads a benchjson-format JSON file.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// throughputMetric reports whether a metric gates the comparison —
// bandwidth units (GiBps, MiBps, _bps and friends, higher is better)
// and explicitly ratcheted metrics (unit ending in "_ratchet", reserved
// for host-independent better-is-bigger quantities like simulation
// speedup ratios).
func throughputMetric(unit string) bool {
	u := strings.ToLower(unit)
	return strings.HasSuffix(u, "bps") || strings.HasSuffix(u, "_ratchet")
}

// compareFiles is the regression gate: every baseline benchmark must be
// present in the candidate, and no throughput metric may drop by more
// than threshold. Regressions are collected (not first-fail) so one CI
// run shows the whole picture.
func compareFiles(basePath, candPath string, threshold float64) error {
	base, err := loadReport(basePath)
	if err != nil {
		return err
	}
	cand, err := loadReport(candPath)
	if err != nil {
		return err
	}
	byName := map[string]Result{}
	for _, b := range cand.Benchmarks {
		byName[b.Name] = b
	}
	var regressions []string
	for _, old := range base.Benchmarks {
		cur, ok := byName[old.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: benchmark missing from candidate", old.Name))
			continue
		}
		units := make([]string, 0, len(old.Metrics))
		for unit := range old.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov := old.Metrics[unit]
			nv, ok := cur.Metrics[unit]
			if !ok {
				// Only throughput metrics gate; a renamed or dropped
				// context metric is reported but does not fail the build.
				if throughputMetric(unit) {
					regressions = append(regressions, fmt.Sprintf("%s: throughput metric %s missing from candidate", old.Name, unit))
				} else {
					fmt.Printf("  %-28s %-28s %12.4f -> %12s (not gated, missing)\n", old.Name, unit, ov, "-")
				}
				continue
			}
			if !throughputMetric(unit) {
				fmt.Printf("  %-28s %-28s %12.4f -> %12.4f (not gated)\n", old.Name, unit, ov, nv)
				continue
			}
			delta := 0.0
			if ov != 0 {
				delta = (nv - ov) / ov
			}
			mark := "ok"
			if ov > 0 && nv < ov*(1-threshold) {
				mark = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4f -> %.4f (%.1f%%, limit -%.0f%%)", old.Name, unit, ov, nv, 100*delta, 100*threshold))
			}
			fmt.Printf("  %-28s %-28s %12.4f -> %12.4f (%+6.1f%%) %s\n", old.Name, unit, ov, nv, 100*delta, mark)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d throughput regression(s) vs %s:\n  %s",
			len(regressions), basePath, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s within %.0f%% of %s\n", candPath, 100*threshold, basePath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
