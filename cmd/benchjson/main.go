// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON results file, so CI can archive benchmark
// metrics (throughputs, slowdowns, fairness indices) across runs.
//
// Usage:
//
//	go test -bench 'BurstBuffer|Contention' -benchtime=1x -run '^$' . |
//	    go run ./cmd/benchjson -o BENCH_contention.json
//
// Each benchmark line of the form
//
//	BenchmarkName-8   1   123456 ns/op   1.886 max_slowdown_x ...
//
// becomes an entry with the iteration count and every metric pair.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file-level JSON shape.
type Report struct {
	Package    string   `json:"package,omitempty"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_contention.json", "output JSON path ('-' for stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}

// parse consumes go-test bench output, collecting header context lines
// (goos/goarch/pkg) and every Benchmark result line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	return rep, sc.Err()
}

// parseBench splits one result line into name, iterations and value/unit
// metric pairs.
func parseBench(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	r := Result{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
