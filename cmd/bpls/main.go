// Command bpls demonstrates the rapid metadata extraction of the BP4
// format: it writes a small openPMD series on a simulated file system,
// then lists its steps and variables by reading only md.idx and md.0 —
// never touching the data subfiles — and reports how few bytes that took.
package main

import (
	"fmt"
	"os"

	"picmcio/internal/adios2"
	"picmcio/internal/lustre"
	"picmcio/internal/mpisim"
	"picmcio/internal/pfs"
	"picmcio/internal/posix"
	"picmcio/internal/sim"
	"picmcio/internal/units"
)

func main() {
	k := sim.NewKernel(sim.WithHeapQueue())
	fs := lustre.New(k, lustre.DefaultParams())
	w := mpisim.NewWorld(k, 8, mpisim.AlphaBeta(1e-6, 1.0/10e9))

	// Write a 3-step series with two variables across 8 ranks.
	w.Run(func(r *mpisim.Rank) {
		a := adios2.New()
		io := a.DeclareIO("demo")
		io.SetParameter("NumAggregators", "2")
		h := adios2.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}, Rank: r.ID}, Comm: r.Comm}
		const slab = 1024
		pos, _ := io.DefineVariable("e/position/x", adios2.TypeFloat64,
			[]uint64{8 * slab}, []uint64{uint64(slab * r.ID)}, []uint64{slab})
		mom, _ := io.DefineVariable("e/momentum/x", adios2.TypeFloat64,
			[]uint64{8 * slab}, []uint64{uint64(slab * r.ID)}, []uint64{slab})
		e, err := io.Open(h, "/demo.bp4", adios2.ModeWrite)
		if err != nil {
			fatal(err)
		}
		vals := make([]float64, slab)
		for s := 0; s < 3; s++ {
			e.BeginStep(int64(s))
			e.PutFloat64s(pos, vals)
			e.PutFloat64s(mom, vals)
			e.EndStep()
		}
		e.Close()
	})

	// List it, counting read traffic.
	w2 := mpisim.NewWorld(k, 1, nil)
	w2.Run(func(r *mpisim.Rank) {
		before := fs.TotalBytesRead()
		a := adios2.New()
		h := adios2.Host{Proc: r.Proc, Env: &posix.Env{FS: fs, Client: &pfs.Client{}}, Comm: r.Comm}
		e, err := a.DeclareIO("ls").Open(h, "/demo.bp4", adios2.ModeRead)
		if err != nil {
			fatal(err)
		}
		steps, _ := e.Steps()
		fmt.Printf("File info:\n  of steps:     %d\n", len(steps))
		for _, s := range steps {
			vars, _ := e.VariablesAt(s)
			for _, v := range vars {
				fmt.Printf("  step %d: %-9s %-20s shape=%v chunks=%d bytes=%s\n",
					s, v.Type, v.Name, v.Shape, v.Chunks, units.Bytes(v.Bytes))
			}
		}
		e.Close()
		var dataBytes int64
		fs.Namespace().WalkFiles("/demo.bp4", func(p string, n *pfs.Node) {
			if len(p) > 5 && p[:11] == "/demo.bp4/d" {
				dataBytes += n.Size
			}
		})
		fmt.Printf("\nrapid metadata extraction: read %s of metadata; %s of data untouched\n",
			units.Bytes(int64(fs.TotalBytesRead()-before)), units.Bytes(dataBytes))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpls:", err)
	os.Exit(1)
}
